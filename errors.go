package seldel

import (
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/client"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/mempool"
)

// Sentinel errors, re-exported so applications can classify failures
// with errors.Is against this package alone, without importing
// internals. Errors surfaced through Submit receipts, chain methods,
// deletion authorization, and clients all wrap one of these.
var (
	// ErrConfig reports an invalid chain configuration (bad option
	// values, missing registry, invalid geometry).
	ErrConfig = chain.ErrConfig
	// ErrClosed is returned by Submit after the chain's submission
	// pipeline has been closed via Close.
	ErrClosed = mempool.ErrClosed
	// ErrNotFound reports a reference that does not resolve to a live
	// entry (deleted, expired, or never written).
	ErrNotFound = chain.ErrNotFound
	// ErrEntryInvalid reports a malformed or incorrectly signed entry;
	// Submit resolves the offending entry's receipt with it.
	ErrEntryInvalid = chain.ErrEntryInvalid
	// ErrDependsMissing reports an entry depending on a reference that is
	// not in the live chain.
	ErrDependsMissing = chain.ErrDependsMissing
	// ErrDependsMarked reports an entry depending on data already marked
	// for deletion (§IV-D.3).
	ErrDependsMarked = chain.ErrDependsMarked
	// ErrSummaryMismatch reports a received summary block differing from
	// the locally computed one — the fork signal of §IV-B.
	ErrSummaryMismatch = chain.ErrSummaryMismatch
	// ErrSealFailed reports a block whose consensus seal did not verify.
	ErrSealFailed = chain.ErrSealFailed
	// ErrNotNext reports a block that does not extend the current head.
	ErrNotNext = chain.ErrNotNext
	// ErrUnauthorized reports a deletion requester not authorized for the
	// target under the chain's deletion policy (§IV-D.1).
	ErrUnauthorized = deletion.ErrUnauthorized
	// ErrMissingCoSign reports a deletion lacking a required dependent
	// co-signature (§IV-D.2).
	ErrMissingCoSign = deletion.ErrMissingCoSign
	// ErrNoMajority reports that a client's queried anchors disagree on
	// the status quo (§V-B.4).
	ErrNoMajority = client.ErrNoMajority
	// ErrTimeout reports an expired client request.
	ErrTimeout = client.ErrTimeout
	// ErrBadProof reports a Merkle inclusion proof that failed to verify.
	ErrBadProof = client.ErrBadProof
	// ErrNotDeleted reports a ProveDeleted call for an entry that is
	// still live (use Lookup/Get for those).
	ErrNotDeleted = chain.ErrNotDeleted
)
