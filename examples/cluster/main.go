// Cluster: a quorum of anchor nodes replicating the selective-deletion
// chain over a simulated network, rebuilt on the concurrent submission
// pipeline and snapshot-based synchronization.
//
// The walkthrough demonstrates the full cluster lifecycle:
//
//  1. Writes flow through Node.SubmitWait — the node's proposal
//     pipeline batches them into blocks, gossips the blocks, and the
//     quorum votes each summary block in (§IV-B/C).
//  2. A partitioned node misses a whole retention cycle: the majority
//     approves a deletion and physically truncates past it. After the
//     heal, the lagging node is behind the quorum's Genesis marker, so
//     a peer answers its sync request with the snapshot-anchored
//     status quo (marker + head + live blocks) and the node adopts it
//     through the chain restore pipeline — no genesis replay, and the
//     deleted entry is gone on every replica (§IV-C, §V-B.4).
//  3. A store-backed node restarts: its chain comes back from the
//     segment store's snapshot checkpoint (live suffix only) and
//     catches up incrementally under its old name.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const anchors = 4
	net := seldel.NewNetwork(seldel.NetworkConfig{})
	defer net.Close()
	reg := seldel.NewRegistry()
	ctx := context.Background()

	// The last anchor persists its chain into a segment store, so it
	// can demonstrate the restart-from-snapshot path later.
	dir, err := os.MkdirTemp("", "seldel-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	segStore, err := seldel.NewSegmentStore(dir, seldel.SegmentOptions{})
	if err != nil {
		return err
	}
	defer segStore.Close()

	names := make([]string, anchors)
	nodes := make([]*seldel.Node, anchors)
	for i := range names {
		names[i] = fmt.Sprintf("anchor-%d", i)
	}
	quorum, err := seldel.NewQuorum(names)
	if err != nil {
		return err
	}
	// Every quorum member runs the identical chain parameters: a summary
	// block every 3rd block, at most 2 live sequences — so the Genesis
	// marker shifts (and prefixes physically die) quickly.
	nodeConfig := func(name string) (seldel.NodeConfig, error) {
		kp := seldel.DeterministicKey(name, "cluster-example")
		if err := reg.RegisterKey(kp, seldel.RoleMaster); err != nil {
			return seldel.NodeConfig{}, err
		}
		return seldel.NodeConfig{
			Key: kp,
			Chain: seldel.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Registry:       reg,
				Clock:          seldel.NewLogicalClock(0),
			},
			Quorum:  quorum,
			Network: net,
		}, nil
	}
	storedCfg := seldel.NodeConfig{}
	for i, name := range names {
		cfg, err := nodeConfig(name)
		if err != nil {
			return err
		}
		if i == anchors-1 {
			cfg.Store = segStore // the restartable member
			storedCfg = cfg
		}
		nodes[i], err = seldel.NewNode(cfg)
		if err != nil {
			return err
		}
	}

	user := seldel.DeterministicKey("alice", "cluster-example")
	if err := reg.RegisterKey(user, seldel.RoleUser); err != nil {
		return err
	}

	// Phase 1 — pipelined writes. SubmitWait batches entries into a
	// proposed block, gossips it, and resolves once sealed; the summary
	// vote runs underneath whenever a Σ slot comes due.
	write := func(payload string) (seldel.Ref, error) {
		sealed, err := nodes[0].SubmitWait(ctx,
			seldel.NewData("alice", []byte(payload)).Sign(user))
		if err != nil {
			return seldel.Ref{}, err
		}
		net.Flush() // settle gossip + votes before the next write
		return sealed[0].Ref, nil
	}
	victim, err := write("right to be forgotten")
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := write(fmt.Sprintf("record-%d", i)); err != nil {
			return err
		}
	}
	fmt.Printf("cluster heads after pipelined writes: head=%d marker=%d (victim sealed at %d/0)\n",
		nodes[0].Chain().Head().Number, nodes[0].Chain().Marker(), victim.Block)

	// Phase 2 — deletion propagation across a partition. anchor-1 is
	// isolated while the majority approves the deletion and truncates
	// past it.
	isolated := nodes[1]
	net.Partition([]string{isolated.Name()})
	fmt.Printf("\npartitioned %s; majority deletes %d/0 and keeps going …\n", isolated.Name(), victim.Block)
	if _, err := nodes[0].SubmitWait(ctx, seldel.NewDeletion("alice", victim).Sign(user)); err != nil {
		return err
	}
	net.Flush()
	for i := 0; i < 8; i++ {
		if _, err := write(fmt.Sprintf("during-%d", i)); err != nil {
			return err
		}
	}
	maj := nodes[0].Chain()
	fmt.Printf("majority: head=%d marker=%d (victim gone: %v)\n",
		maj.Head().Number, maj.Marker(), !resolves(nodes[0], victim))
	fmt.Printf("isolated: head=%d marker=%d (victim still present: %v) — behind the quorum marker\n",
		isolated.Chain().Head().Number, isolated.Chain().Marker(), resolves(isolated, victim))

	// Heal. The next gossiped block reveals the gap; since the isolated
	// node's head predates the majority's marker, a peer answers with
	// the snapshot payload and the node adopts the truncated chain.
	net.Heal()
	if _, err := write("after-heal"); err != nil {
		return err
	}
	if _, err := write("after-heal-2"); err != nil {
		return err
	}
	c := isolated.Chain()
	fmt.Printf("\nhealed: %s adopted the snapshot status quo — head=%d marker=%d, first live block=%d\n",
		isolated.Name(), c.Head().Number, c.Marker(), c.Blocks()[0].Header.Number)
	fmt.Printf("victim resolvable anywhere: %v (physically deleted cluster-wide)\n", anyResolves(nodes, victim))

	// Phase 3 — restart from the snapshot checkpoint. The store-backed
	// node leaves the network; on reopen its chain streams from the
	// segment store's SNAPSHOT marker (live suffix only, no genesis).
	stored := nodes[anchors-1]
	fmt.Printf("\nrestarting %s from its segment store …\n", stored.Name())
	if err := stored.Close(); err != nil {
		return err
	}
	if _, err := write("while-down"); err != nil {
		return err
	}
	restarted, err := seldel.NewNode(storedCfg)
	if err != nil {
		return err
	}
	nodes[anchors-1] = restarted
	rc := restarted.Chain()
	fmt.Printf("restored from snapshot: head=%d marker=%d, replayed %d live blocks (first=%d, no genesis replay)\n",
		rc.Head().Number, rc.Marker(), len(rc.Blocks()), rc.Blocks()[0].Header.Number)
	if _, err := write("after-restart"); err != nil {
		return err
	}
	fmt.Printf("caught up: head=%d matches majority=%v\n",
		restarted.Chain().Head().Number,
		restarted.Chain().HeadHash() == nodes[0].Chain().HeadHash())

	// A verifying client sees one consistent status quo across anchors.
	watcher := seldel.DeterministicKey("watcher", "cluster-example")
	if err := reg.RegisterKey(watcher, seldel.RoleUser); err != nil {
		return err
	}
	cli, err := seldel.NewClient(watcher, reg, net, names)
	if err != nil {
		return err
	}
	status, err := cli.QueryStatus()
	if err != nil {
		return err
	}
	fmt.Printf("\nclient status quo: head=%d marker=%d (%d/%d anchors agree)\n",
		status.HeadNumber, status.Marker, status.Agreeing, status.Queried)
	return nil
}

func resolves(n *seldel.Node, ref seldel.Ref) bool {
	_, _, ok := n.Chain().Lookup(ref)
	return ok
}

func anyResolves(nodes []*seldel.Node, ref seldel.Ref) bool {
	for _, n := range nodes {
		if resolves(n, ref) {
			return true
		}
	}
	return false
}
