// Cluster: a quorum of anchor nodes replicating the selective-deletion
// chain over a simulated network, with a verifying client.
//
// Demonstrates §IV-A/B (anchor nodes, locally computed summary blocks,
// quorum voting on the marker shift), §V-B.4 (clients obtaining the
// status quo from several anchors, majority-checked), and fork detection
// when one node's state is corrupted.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const anchors = 4
	net := seldel.NewNetwork(seldel.NetworkConfig{})
	defer net.Close()
	reg := seldel.NewRegistry()

	names := make([]string, anchors)
	nodes := make([]*seldel.Node, anchors)
	for i := range names {
		names[i] = fmt.Sprintf("anchor-%d", i)
	}
	quorum, err := seldel.NewQuorum(names)
	if err != nil {
		return err
	}
	for i, name := range names {
		kp := seldel.DeterministicKey(name, "cluster-example")
		if err := reg.RegisterKey(kp, seldel.RoleMaster); err != nil {
			return err
		}
		nodes[i], err = seldel.NewNode(seldel.NodeConfig{
			Key: kp,
			Chain: seldel.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Registry:       reg,
				Clock:          seldel.NewLogicalClock(0),
			},
			Quorum:  quorum,
			Network: net,
		})
		if err != nil {
			return err
		}
	}

	// A client joins, submits entries, and queries with verification.
	userKey := seldel.DeterministicKey("mallory-or-alice", "cluster-example")
	if err := reg.RegisterKey(userKey, seldel.RoleUser); err != nil {
		return err
	}
	cli, err := seldel.NewClient(userKey, reg, net, names)
	if err != nil {
		return err
	}

	ctx := context.Background()
	drive := func(payloads ...string) error {
		entries := make([]*seldel.Entry, len(payloads))
		for i, p := range payloads {
			entries[i] = cli.NewDataEntry([]byte(p))
		}
		if err := cli.Submit(ctx, entries...); err != nil {
			return err
		}
		net.Flush()
		if _, err := nodes[0].Propose(); err != nil {
			return err
		}
		net.Flush()
		return nil
	}
	for i := 0; i < 6; i++ {
		if err := drive(fmt.Sprintf("record-%d", i)); err != nil {
			return err
		}
	}

	status, err := cli.QueryStatus()
	if err != nil {
		return err
	}
	fmt.Printf("client status quo: head=%d hash=%s marker=%d (%d/%d anchors agree)\n",
		status.HeadNumber, status.HeadHash, status.Marker, status.Agreeing, status.Queried)

	// Verified lookup: the anchor returns a Merkle inclusion proof the
	// client checks locally.
	got, err := cli.Lookup(names[2], seldel.Ref{Block: 1, Entry: 0})
	if err != nil {
		return err
	}
	fmt.Printf("verified lookup 1/0: %q (carried=%v, proven against header %s)\n",
		got.Entry.Payload, got.Carried, got.Holder.Hash())

	// Corrupt one anchor: its next summary diverges, the quorum vote
	// exposes it, and the client's majority answer excludes it.
	fmt.Println("\ninjecting corrupted deletion state into anchor-3 …")
	nodes[3].CorruptForTest(seldel.Ref{Block: 1, Entry: 0})
	for i := 6; i < 12; i++ {
		if err := drive(fmt.Sprintf("record-%d", i)); err != nil {
			return err
		}
	}
	for _, n := range nodes {
		fmt.Printf("  %s: head=%d marker=%d forked=%v\n",
			n.Name(), n.Chain().Head().Number, n.Chain().Marker(), n.Forked())
	}
	status, err = cli.QueryStatus()
	if err != nil {
		return err
	}
	fmt.Printf("client majority after corruption: head=%d (%d/%d agree; the forked node is ignored)\n",
		status.HeadNumber, status.Agreeing, status.Queried)
	return nil
}
