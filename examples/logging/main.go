// Logging: the paper's §V evaluation scenario as an application — a
// tamper-evident login audit trail with GDPR-style deletion on request
// and automatic retention limits.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := seldel.NewRegistry()
	keys := make(map[string]*seldel.KeyPair)
	for _, name := range []string{"ALPHA", "BRAVO", "CHARLIE"} {
		kp := seldel.DeterministicKey(name, "logging-example")
		if err := reg.RegisterKey(kp, seldel.RoleUser); err != nil {
			return err
		}
		keys[name] = kp
	}
	chain, err := seldel.New(reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(2),
		seldel.WithShrink(seldel.ShrinkAllButNewest),
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	if err != nil {
		return err
	}
	defer chain.Close()
	logger, err := seldel.NewAuditLogger(chain)
	if err != nil {
		return err
	}
	fmt.Println("login-event schema (declared in YAML, validated per entry):")
	for _, f := range logger.Schema().Fields() {
		fmt.Printf("  %-10s %-10s required=%v\n", f.Name, f.Type, f.Required)
	}

	// Log logins: ALPHA and CHARLIE successful, BRAVO once failed.
	logins := []seldel.LoginEvent{
		{User: "ALPHA", Terminal: "tty1", Success: true, At: 1},
		{User: "BRAVO", Terminal: "tty1", Success: false, At: 2},
		{User: "BRAVO", Terminal: "tty1", Success: true, At: 3},
		{User: "CHARLIE", Terminal: "tty2", Success: true, At: 4},
	}
	var bravoRef seldel.Ref
	for _, ev := range logins {
		ref, err := logger.Log(keys[ev.User], ev)
		if err != nil {
			return err
		}
		if ev.User == "BRAVO" && ev.Success {
			bravoRef = ref
		}
		fmt.Printf("logged %-28s -> %s\n", ev.String(), ref)
	}

	// Audit queries.
	failed, err := logger.Query(seldel.AuditQuery{FailedOnly: true})
	if err != nil {
		return err
	}
	fmt.Printf("\nfailed logins on record: %d\n", len(failed))
	for _, hit := range failed {
		fmt.Printf("  %s at ref %s (authentic: %v)\n",
			hit.Event.String(), hit.Ref, logger.VerifyAuthenticity(hit.Ref) == nil)
	}

	// BRAVO exercises the right to erasure for its successful login.
	del := seldel.NewDeletion("BRAVO", bravoRef).Sign(keys["BRAVO"])
	if err := chain.CheckDeletionRequest(del); err != nil {
		return fmt.Errorf("eager validation: %w", err)
	}
	if _, err := chain.SubmitWait(context.Background(), del); err != nil {
		return err
	}
	fmt.Printf("\nBRAVO requested erasure of %s (marked=%v)\n", bravoRef, chain.IsMarked(bravoRef))

	// CHARLIE cannot delete ALPHA's entry — rejected eagerly, and even
	// if included on-chain it has no effect (§V).
	foreign := seldel.NewDeletion("CHARLIE", seldel.Ref{Block: 1, Entry: 0}).Sign(keys["CHARLIE"])
	fmt.Printf("CHARLIE deleting ALPHA's login: %v\n", chain.CheckDeletionRequest(foreign))

	// Drive until BRAVO's entry is physically forgotten.
	for chain.IsMarked(bravoRef) {
		if _, err := chain.AppendEmpty(); err != nil {
			return err
		}
	}
	bravoHits, err := logger.Query(seldel.AuditQuery{User: "BRAVO"})
	if err != nil {
		return err
	}
	fmt.Printf("\nafter retention cycle: BRAVO events on record = %d ", len(bravoHits))
	fmt.Println("(the failed attempt remains; the erased login is gone)")

	fmt.Println("\nfinal chain state:")
	if err := chain.Render(os.Stdout, seldel.AuditRenderOptions()); err != nil {
		return err
	}
	st := chain.Stats()
	fmt.Printf("stats: forgotten=%d rejected=%d live=%d marker=%d\n",
		st.ForgottenEntries, st.RejectedRequests, st.LiveBlocks, chain.Marker())
	return nil
}
