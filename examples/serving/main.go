// Serving: the HTTP front-end and the open-loop load harness end to
// end — a server over an in-memory bounded chain, client-signed
// submits over HTTP with sealed receipts, cursor pagination that stays
// stable across a deletion-driven truncation, a deletion proof fetched
// through the API, and a short open-loop burst reporting scheduled-time
// latency quantiles (the shape cmd/seldel-load measures at scale).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "serving-example")
	if err := reg.RegisterKey(alice, seldel.RoleUser); err != nil {
		return err
	}

	// A bounded chain: every 3-block sequence beyond the newest two is
	// truncated, so deletions become physical.
	c, err := seldel.New(reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(2),
	)
	if err != nil {
		return err
	}
	defer c.Close()

	srv := seldel.NewServer(c, seldel.ServerOptions{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := srv.HTTPServer(ln.Addr().String())
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", ln.Addr())

	// --- Submit client-signed entries over HTTP, waiting for seals.
	entries := make([]seldel.EntryJSON, 0, 6)
	for i := 0; i < 6; i++ {
		e := seldel.NewData("alice", fmt.Appendf(nil, "reading %d", i)).Sign(alice)
		entries = append(entries, seldel.NewEntryJSON(e))
	}
	var sr seldel.SubmitResponse
	if err := post(base+"/v1/submit?wait=1", seldel.SubmitRequest{Entries: entries}, &sr); err != nil {
		return err
	}
	victim := sr.Sealed[2].Ref.Ref()
	fmt.Printf("sealed %d entries; victim is %s\n", len(sr.Sealed), victim)

	// --- Page through the live entries, 2 per page.
	total, pages := 0, 0
	cursor := ""
	for {
		url := base + "/v1/entries?limit=2"
		if cursor != "" {
			url += "&after=" + cursor
		}
		var page seldel.EntryPage
		if err := get(url, &page); err != nil {
			return err
		}
		total += len(page.Entries)
		pages++
		if page.Next == "" {
			break
		}
		cursor = page.Next
	}
	fmt.Printf("paged %d entries in %d pages\n", total, pages)

	// --- Delete the victim over HTTP, churn until the marker passes it,
	// then fetch the deletion proof through the API.
	del := seldel.NewDeletion("alice", victim).Sign(alice)
	if err := post(base+"/v1/submit?wait=1", seldel.SubmitRequest{Entries: []seldel.EntryJSON{seldel.NewEntryJSON(del)}}, nil); err != nil {
		return err
	}
	ctx := context.Background()
	for i := 0; c.Marker() <= victim.Block; i++ {
		if i > 64 {
			return fmt.Errorf("truncation never executed")
		}
		if _, err := c.SubmitWait(ctx, seldel.NewData("alice", fmt.Appendf(nil, "churn %d", i)).Sign(alice)); err != nil {
			return err
		}
		if err := c.CompactWait(ctx); err != nil {
			return err
		}
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/prove-deleted?block=%d&entry=%d", base, victim.Block, victim.Entry))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prove-deleted: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("deletion of %s proven through the API (marker now %d)\n", victim, c.Marker())

	// --- A short open-loop burst: 200 requests at 500/s, latency
	// measured from each request's SCHEDULED time (no coordinated
	// omission — see cmd/seldel-load/README.md).
	bodies := make([][]byte, 200)
	for i := range bodies {
		e := seldel.NewData("alice", fmt.Appendf(nil, "burst %d", i)).Sign(alice)
		bodies[i], err = json.Marshal(seldel.SubmitRequest{Entries: []seldel.EntryJSON{seldel.NewEntryJSON(e)}})
		if err != nil {
			return err
		}
	}
	client := &http.Client{}
	sum := seldel.RunLoad(ctx, seldel.LoadOptions{
		Rate:     500,
		Requests: len(bodies),
		Fire: func(ctx context.Context, i int) seldel.LoadClass {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/submit?wait=1", bytes.NewReader(bodies[i]))
			if err != nil {
				return seldel.LoadErrored
			}
			resp, err := client.Do(req)
			if err != nil {
				return seldel.LoadErrored
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				return seldel.LoadOK
			case http.StatusTooManyRequests:
				return seldel.LoadShed
			default:
				return seldel.LoadErrored
			}
		},
	})
	fmt.Printf("open-loop burst: offered=%.0f/s ok=%d sheds=%d errors=%d p50=%dµs p99=%dµs\n",
		sum.Offered, sum.OKs, sum.Sheds, sum.Errors, sum.P50Micros, sum.P99Micros)
	if sum.Errors > 0 {
		return fmt.Errorf("%d burst requests errored", sum.Errors)
	}
	return nil
}

func post(url string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
