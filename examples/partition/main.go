// Partition: the sharded write path end to end — entries from several
// owners route across 4 partitioned sub-chains by consistent hash, a
// deletion fans out to the partition owning its target and truncates
// there, the resulting proof verifies through the spine chain (not
// just the owning partition), and a restart reopens every partition
// from its own snapshot checkpoint under one store root.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := seldel.NewRegistry()
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	keys := map[string]*seldel.KeyPair{}
	for _, u := range users {
		kp := seldel.DeterministicKey(u, "partition-example")
		if err := reg.RegisterKey(kp, seldel.RoleUser); err != nil {
			return err
		}
		keys[u] = kp
	}

	root := filepath.Join(os.TempDir(), "seldel-partition-example")
	if err := os.RemoveAll(root); err != nil {
		return err
	}
	open := func() (*seldel.PartitionedChain, error) {
		return seldel.NewPartitioned(reg,
			seldel.WithPartitions(4), // default key: the entry's owner
			seldel.WithSequenceLength(3),
			seldel.WithMaxSequences(2),
			seldel.WithSegmentStore(root),
		)
	}
	pc, err := open()
	if err != nil {
		return err
	}
	defer pc.Close()
	ctx := context.Background()

	// Partitioned writes: one SubmitWait, entries fan out by owner and
	// the receipts come back in submission order. Block numbers reveal
	// the stripe: partition i numbers its blocks from i * stride.
	var entries []*seldel.Entry
	for _, u := range users {
		entries = append(entries, seldel.NewData(u, []byte("reading-"+u)).Sign(keys[u]))
	}
	sealed, err := pc.SubmitWait(ctx, entries...)
	if err != nil {
		return err
	}
	perPart := map[int]int{}
	for _, s := range sealed {
		perPart[pc.Owner(s.Ref)]++
	}
	fmt.Printf("%d entries routed over %d partitions (stride %d):\n",
		len(sealed), pc.Partitions(), pc.StrideWidth())
	for p := 0; p < pc.Partitions(); p++ {
		fmt.Printf("  partition %d: %d entries\n", p, perPart[p])
	}

	// Per-partition deletion: the request routes by its target's block
	// number to the owning partition, truncates there, and the other
	// partitions never see it.
	victim := sealed[0].Ref
	owner := pc.Owner(victim)
	del, err := pc.SubmitWait(ctx, seldel.NewDeletion("alice", victim).Sign(keys["alice"]))
	if err != nil {
		return err
	}
	fmt.Printf("\ndeletion of %s: mark %s, owning partition %d\n", victim, del[0].Mark, owner)
	for i := 0; pc.Part(owner).Marker() <= victim.Block; i++ {
		if i > 64 {
			return fmt.Errorf("partition %d never truncated past the victim", owner)
		}
		churn := seldel.NewData("alice", []byte(fmt.Sprintf("churn-%02d", i))).Sign(keys["alice"])
		if _, err := pc.SubmitWait(ctx, churn); err != nil {
			return err
		}
		if err := pc.CompactWait(ctx); err != nil {
			return err
		}
	}

	// Spine-verified proof: the partition-local tombstone evidence plus
	// the spine path from its covering anchor to the head. Verify walks
	// both; the spine head hash is the only trust anchor needed.
	proof, err := pc.ProveDeleted(ctx, victim)
	if err != nil {
		return err
	}
	if err := proof.Verify(); err != nil {
		return fmt.Errorf("spine proof rejected: %w", err)
	}
	head := pc.SpineHead()
	fmt.Printf("proof verified through the spine: anchor at partition %d covers record chain %s,\n"+
		"  spine head block %d (%d anchors), head hash %s\n",
		proof.Partition, proof.Anchor.RecordChain,
		head.Number, len(head.Anchors), proof.HeadHash())
	if err := pc.VerifyIntegrity(); err != nil {
		return err
	}

	// Restart from per-partition snapshots: one root, p000/..p003/
	// beneath, each partition restoring from its own checkpoint. The
	// proof still verifies afterwards — tombstones and spine state
	// survive the round trip.
	if err := pc.Close(); err != nil {
		return err
	}
	pc2, err := open()
	if err != nil {
		return err
	}
	defer pc2.Close()
	proof2, err := pc2.ProveDeleted(ctx, victim)
	if err != nil {
		return err
	}
	if err := proof2.Verify(); err != nil {
		return fmt.Errorf("proof after restart rejected: %w", err)
	}
	recs, err := pc2.Tombstones(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nrestarted from %s: %d partitions, %d live entries, %d deletion records restored; proof still verifies\n",
		root, pc2.Partitions(), pc2.Stats().LiveEntries, len(recs))
	return pc2.VerifyIntegrity()
}
