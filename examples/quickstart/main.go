// Quickstart: create a selective-deletion chain, write entries, delete
// one on request, and watch it disappear physically — including from the
// file-backed store.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Participants: every entry is signed; the registry holds keys
	// and roles (§IV-D.1 of the paper).
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "quickstart")
	if err := reg.RegisterKey(alice, seldel.RoleUser); err != nil {
		return err
	}

	// 2. Persist to disk so physical deletion is observable.
	dir := filepath.Join(os.TempDir(), "seldel-quickstart")
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	store, err := seldel.NewFileStore(dir)
	if err != nil {
		return err
	}

	// 3. A chain with a summary block every 3rd block and at most two
	// complete sequences alive (the paper's evaluation configuration),
	// mirrored into the file store from genesis.
	chain, err := seldel.New(reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(2),
		seldel.WithClock(seldel.NewLogicalClock(0)),
		seldel.WithStore(store),
	)
	if err != nil {
		return err
	}
	defer chain.Close()

	// 4. Write some entries through the submission pipeline; each sealed
	// receipt reports the entry's stable reference.
	ctx := context.Background()
	var secret seldel.Ref
	for i := 0; i < 3; i++ {
		entry := seldel.NewData("alice", []byte(fmt.Sprintf("note #%d", i))).Sign(alice)
		sealed, err := chain.SubmitWait(ctx, entry)
		if err != nil {
			return err
		}
		if i == 1 {
			secret = sealed[0].Ref
		}
	}
	fmt.Println("chain after three notes:")
	_ = chain.Render(os.Stdout, nil)

	// 5. Alice requests deletion of note #1 (she owns it, so the request
	// is approved and the entry is marked).
	del := seldel.NewDeletion("alice", secret).Sign(alice)
	if _, err := chain.SubmitWait(ctx, del); err != nil {
		return err
	}
	fmt.Printf("\ndeletion requested for %s; marked=%v\n", secret, chain.IsMarked(secret))

	// 6. Drive the chain until the mark executes: the entry is not
	// copied into the next merging summary block, its sequence is cut,
	// and the block files are unlinked.
	for chain.IsMarked(secret) {
		if _, err := chain.AppendEmpty(); err != nil {
			return err
		}
	}
	if _, _, ok := chain.Lookup(secret); ok {
		return fmt.Errorf("entry still resolvable after deletion")
	}
	// Physical cleanup (block-file unlinking) runs on the background
	// compactor; barrier on it before measuring the directory.
	if err := chain.CompactWait(ctx); err != nil {
		return err
	}
	sizeOnDisk, err := store.SizeBytes()
	if err != nil {
		return err
	}
	stats := chain.Stats()
	fmt.Printf("\nafter the merge cycle:\n")
	fmt.Printf("  marker           = %d (genesis shifted, §IV-C)\n", chain.Marker())
	fmt.Printf("  live blocks      = %d (bounded)\n", stats.LiveBlocks)
	fmt.Printf("  forgotten        = %d (note #1 is physically gone)\n", stats.ForgottenEntries)
	fmt.Printf("  store size       = %d bytes in %s\n", sizeOnDisk, dir)

	fmt.Println("\nfinal chain (note #0 and #2 were carried with original coordinates):")
	_ = chain.Render(os.Stdout, nil)
	return chain.VerifyIntegrity()
}
