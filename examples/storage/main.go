// Storage: the segmented persistent store end to end — appends batch
// into bounded segment files, a deletion-driven truncation physically
// retires segments (SizeBytes shrinks), a snapshot checkpoint is
// written at the marker shift, and a restart restores from the
// checkpoint instead of replaying history. Finishes by migrating a
// legacy one-file-per-block directory into segments.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "storage-example")
	if err := reg.RegisterKey(alice, seldel.RoleUser); err != nil {
		return err
	}

	dir := filepath.Join(os.TempDir(), "seldel-storage-example")
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	// Open the segment store explicitly (rather than WithSegmentStore)
	// to keep the handle for SizeBytes/Snapshot observability. Tiny
	// segments so retirement is visible in a short run.
	store, err := seldel.NewSegmentStore(dir, seldel.SegmentOptions{SegmentBytes: 2048})
	if err != nil {
		return err
	}

	opts := []seldel.Option{
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(2),
		seldel.WithClock(seldel.NewLogicalClock(0)),
	}
	chain, err := seldel.New(reg, append(opts, seldel.WithStore(store))...)
	if err != nil {
		return err
	}
	defer chain.Close()

	// Write-and-delete rounds: deletion is what keeps the live chain —
	// and therefore the store — bounded. The deletion receipts carry
	// the mark outcome directly; no IsMarked polling.
	ctx := context.Background()
	var peak int64
	for i := 0; i < 30; i++ {
		entry := seldel.NewData("alice", []byte(fmt.Sprintf("measurement #%02d", i))).Sign(alice)
		sealed, err := chain.SubmitWait(ctx, entry)
		if err != nil {
			return err
		}
		del, err := chain.SubmitWait(ctx,
			seldel.NewDeletion("alice", sealed[0].Ref).Sign(alice))
		if err != nil {
			return err
		}
		if del[0].Mark.String() != "approved" {
			return fmt.Errorf("deletion of %s not approved: %v", sealed[0].Ref, del[0].Mark)
		}
		if err := chain.CompactWait(ctx); err != nil {
			return err
		}
		if sz, err := store.SizeBytes(); err == nil && sz > peak {
			peak = sz
		}
	}
	size, err := store.SizeBytes()
	if err != nil {
		return err
	}
	segments, err := store.SegmentCount()
	if err != nil {
		return err
	}
	fmt.Printf("after 30 write+delete rounds:\n")
	fmt.Printf("  marker          = %d (genesis shifted)\n", chain.Marker())
	fmt.Printf("  store size      = %d bytes in %d segment files (peak was %d — deletion reclaimed bytes)\n",
		size, segments, peak)

	snap, ok, err := store.Snapshot()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no snapshot checkpoint after truncation")
	}
	fmt.Printf("  snapshot        = marker %d, head %d, checkpoint block kind %s\n",
		snap.Marker, snap.Head, snap.Checkpoint.Header.Kind)

	// Restart: reopening the directory restores from the checkpoint —
	// only the live suffix is replayed, however long the chain lived.
	headHash := chain.HeadHash()
	if err := chain.Close(); err != nil {
		return err
	}
	if err := store.Close(); err != nil {
		return err
	}
	reopened, err := seldel.New(reg, append(opts,
		seldel.WithSegmentStore(dir, seldel.SegmentOptions{SegmentBytes: 2048}))...)
	if err != nil {
		return err
	}
	defer reopened.Close()
	if reopened.HeadHash() != headHash {
		return fmt.Errorf("restored head differs")
	}
	fmt.Printf("\nrestored from snapshot:\n")
	fmt.Printf("  replayed blocks = %d (the live suffix only, not the full history)\n",
		reopened.Stats().AppendedBlocks)
	fmt.Printf("  head            = block %d, marker %d\n",
		reopened.Head().Number, reopened.Marker())

	// Migration: a legacy one-file-per-block directory converts into a
	// fresh segment store without touching the original.
	legacyDir := filepath.Join(os.TempDir(), "seldel-storage-example-legacy")
	if err := os.RemoveAll(legacyDir); err != nil {
		return err
	}
	legacy, err := seldel.NewFileStore(legacyDir)
	if err != nil {
		return err
	}
	legacyChain, err := seldel.New(reg, append(opts, seldel.WithStore(legacy))...)
	if err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		e := seldel.NewData("alice", []byte(fmt.Sprintf("legacy #%d", i))).Sign(alice)
		if _, err := legacyChain.SubmitWait(ctx, e); err != nil {
			return err
		}
	}
	legacyHead := legacyChain.HeadHash()
	if err := legacyChain.Close(); err != nil {
		return err
	}
	migratedDir := filepath.Join(os.TempDir(), "seldel-storage-example-migrated")
	if err := os.RemoveAll(migratedDir); err != nil {
		return err
	}
	migrated, err := seldel.NewSegmentStore(migratedDir, seldel.SegmentOptions{})
	if err != nil {
		return err
	}
	if err := seldel.MigrateStore(legacy, migrated); err != nil {
		return err
	}
	migratedChain, err := seldel.New(reg, append(opts, seldel.WithStore(migrated))...)
	if err != nil {
		return err
	}
	defer migratedChain.Close()
	if migratedChain.HeadHash() != legacyHead {
		return fmt.Errorf("migrated chain head differs from legacy")
	}
	fmt.Printf("\nmigrated legacy file store (%s) -> segments (%s): head verified\n",
		legacyDir, migratedDir)
	return migratedChain.VerifyIntegrity()
}
