// Industry 4.0: product life-cycle tracking along a supply chain (the
// application domain the paper's introduction and summary motivate).
//
// Parts and assemblies are recorded on-chain with semantic dependencies
// (an assembly depends on its parts, §IV-D.2), quality measurements carry
// best-before retention deadlines (§IV-D.4), and a decommissioned
// vehicle's records are erased with co-signatures from every dependent
// party ("After a vehicle is taken out of service, the blockchain as
// database is cleaned up", §VI).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/seldel/seldel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := seldel.NewRegistry()
	keys := make(map[string]*seldel.KeyPair)
	for _, name := range []string{"steelworks", "assembly", "dealer"} {
		kp := seldel.DeterministicKey(name, "industry40")
		if err := reg.RegisterKey(kp, seldel.RoleUser); err != nil {
			return err
		}
		keys[name] = kp
	}
	chain, err := seldel.New(reg,
		seldel.WithSequenceLength(4),
		seldel.WithMaxBlocks(16),
		seldel.WithShrink(seldel.ShrinkMinimal),
		seldel.WithRedundancyReference(), // Fig. 9 hardening for long-lived records
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	if err != nil {
		return err
	}
	defer chain.Close()
	ctx := context.Background()
	commit := func(entries ...*seldel.Entry) (seldel.Ref, error) {
		sealed, err := chain.SubmitWait(ctx, entries...)
		if err != nil {
			return seldel.Ref{}, err
		}
		return sealed[0].Ref, nil
	}

	// 1. The steelworks records a chassis part.
	chassis, err := commit(seldel.NewData("steelworks",
		[]byte(`part chassis serial=CH-001 alloy=S355`)).Sign(keys["steelworks"]))
	if err != nil {
		return err
	}
	fmt.Println("chassis recorded at", chassis)

	// 2. A quality measurement with a best-before deadline: it expires
	// automatically once the chain passes block 40 — no request needed.
	if _, err := commit(seldel.NewTemporary("steelworks",
		[]byte(`qa chassis=CH-001 tensile=510MPa`), 0, 40).Sign(keys["steelworks"])); err != nil {
		return err
	}

	// 3. The assembly plant builds a vehicle FROM the chassis: the
	// record depends on the part record (semantic cohesion, §IV-D.2).
	vehicleEntry := seldel.NewData("assembly",
		[]byte(`vehicle vin=WDB123 built-from=CH-001`)).
		WithDependsOn(chassis).
		Sign(keys["assembly"])
	vehicle, err := commit(vehicleEntry)
	if err != nil {
		return err
	}
	fmt.Println("vehicle recorded at", vehicle, "(depends on", chassis, ")")

	// 4. The dealer logs mileage against the vehicle.
	mileage, err := commit(seldel.NewData("dealer",
		[]byte(`odometer vin=WDB123 km=125000`)).
		WithDependsOn(vehicle).
		Sign(keys["dealer"]))
	if err != nil {
		return err
	}
	fmt.Println("mileage recorded at", mileage)

	// 5. The steelworks alone cannot erase the chassis: the vehicle
	// still depends on it.
	solo := seldel.NewDeletion("steelworks", chassis).Sign(keys["steelworks"])
	fmt.Printf("\nsteelworks erasing the chassis alone: %v\n", chain.CheckDeletionRequest(solo))

	// 6. End of life: the vehicle is decommissioned. Every dependent
	// party co-signs the erasure chain bottom-up: first the mileage
	// (dealer's own record), then the vehicle (assembly, with the
	// dealer's co-signature), then the chassis (steelworks, with the
	// assembly's co-signature).
	if _, err := commit(seldel.NewDeletion("dealer", mileage).Sign(keys["dealer"])); err != nil {
		return err
	}
	delVehicle := seldel.NewDeletion("assembly", vehicle).
		AddCoSignature(keys["dealer"]).
		Sign(keys["assembly"])
	if _, err := commit(delVehicle); err != nil {
		return err
	}
	delChassis := seldel.NewDeletion("steelworks", chassis).
		AddCoSignature(keys["assembly"]).
		Sign(keys["steelworks"])
	if err := chain.CheckDeletionRequest(delChassis); err != nil {
		return fmt.Errorf("co-signed chassis erasure rejected: %w", err)
	}
	if _, err := commit(delChassis); err != nil {
		return err
	}
	fmt.Println("decommission requests accepted (mileage, vehicle, chassis)")

	// 7. Drive the chain: retention cycles erase everything marked, and
	// the expired QA measurement never survives a merge.
	for len(chain.Marks()) > 0 {
		if _, err := chain.AppendEmpty(); err != nil {
			return err
		}
	}
	for i := 0; i < 30; i++ { // push well past the QA deadline
		if _, err := chain.AppendEmpty(); err != nil {
			return err
		}
	}
	for _, ref := range []seldel.Ref{chassis, vehicle, mileage} {
		if _, _, ok := chain.Lookup(ref); ok {
			return fmt.Errorf("record %s survived decommissioning", ref)
		}
	}
	st := chain.Stats()
	fmt.Printf("\nafter clean-up: forgotten=%d expired=%d live_blocks=%d marker=%d\n",
		st.ForgottenEntries, st.ExpiredEntries, st.LiveBlocks, chain.Marker())
	fmt.Println("\nfinal chain (bounded, self-cleaned):")
	return chain.Render(os.Stdout, nil)
}
