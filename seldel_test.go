package seldel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the doc-comment quickstart end to end
// through the façade only: options construction, Submit, receipts.
func TestPublicAPIQuickstart(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg,
		WithSequenceLength(3),
		WithMaxSequences(2),
		WithClock(NewLogicalClock(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	sealed, err := c.SubmitWait(ctx, NewData("alice", []byte("hello")).Sign(alice))
	if err != nil {
		t.Fatal(err)
	}
	ref := sealed[0].Ref
	if _, err := c.SubmitWait(ctx, NewDeletion("alice", ref).Sign(alice)); err != nil {
		t.Fatal(err)
	}
	for c.IsMarked(ref) {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Lookup(ref); ok {
		t.Error("entry survived deletion")
	}
	if c.Stats().ForgottenEntries != 1 {
		t.Error("forgotten counter wrong")
	}
}

// TestConcurrentSubmitPipeline is the acceptance test for the submission
// pipeline at the public API: 16 producers submitting data and deletion
// entries concurrently; every receipt must resolve and the chain must
// stay verifiable. Run with -race.
func TestConcurrentSubmitPipeline(t *testing.T) {
	reg := NewRegistry()
	keys := make([]*KeyPair, 16)
	for i := range keys {
		keys[i] = DeterministicKey(fmt.Sprintf("user-%d", i), "api-test")
		if err := reg.RegisterKey(keys[i], RoleUser); err != nil {
			t.Fatal(err)
		}
	}
	c, err := New(reg, WithSequenceLength(4), WithClock(NewLogicalClock(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	const producers = 16
	const perProducer = 20
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			me := keys[p]
			var mine []Receipt
			for i := 0; i < perProducer; i++ {
				payload := []byte(fmt.Sprintf("p%d-%d", p, i))
				rs, err := c.Submit(ctx, NewData(me.Name(), payload).Sign(me))
				if err != nil {
					errs <- err
					return
				}
				mine = append(mine, rs...)
			}
			// Each producer deletes its own first entry, concurrently
			// with everyone else's writes.
			first, err := mine[0].Wait(ctx)
			if err != nil {
				errs <- err
				return
			}
			rs, err := c.Submit(ctx, NewDeletion(me.Name(), first.Ref).Sign(me))
			if err != nil {
				errs <- err
				return
			}
			mine = append(mine, rs...)
			for _, r := range mine {
				if _, err := r.Wait(ctx); err != nil {
					errs <- err
					return
				}
			}
			if !c.IsMarked(first.Ref) {
				errs <- fmt.Errorf("producer %d: own deletion did not mark", p)
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	ps := c.PipelineStats()
	want := uint64(producers * (perProducer + 1))
	if ps.Entries != want {
		t.Errorf("pipeline sealed %d entries, want %d", ps.Entries, want)
	}
	if ps.Batches >= ps.Entries {
		t.Errorf("no coalescing: %d batches for %d entries", ps.Batches, ps.Entries)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(context.Background(), NewData("alice", []byte("x")).Sign(alice))
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestOptionValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := New(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil registry: %v", err)
	}
	if _, err := New(reg, WithSequenceLength(1)); !errors.Is(err, ErrConfig) {
		t.Errorf("sequence length 1: %v", err)
	}
	if _, err := New(reg, WithEngine(nil)); !errors.Is(err, ErrConfig) {
		t.Errorf("nil engine: %v", err)
	}
	if _, err := New(reg, WithStore(nil)); !errors.Is(err, ErrConfig) {
		t.Errorf("nil store: %v", err)
	}
	if _, err := New(reg, WithMaxBatch(-1)); !errors.Is(err, ErrConfig) {
		t.Errorf("negative batch: %v", err)
	}
}

func TestPublicAPIStoreRoundTrip(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithSequenceLength(3), WithMaxSequences(1), WithShrink(ShrinkMinimal),
		WithClock(NewLogicalClock(0)), WithStore(st),
	}
	c, err := New(reg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := c.SubmitWait(ctx, NewData("alice", []byte{byte(i)}).Sign(alice)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening through the same options restores from the store.
	opts[3] = WithClock(NewLogicalClock(0))
	restored, err := New(reg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.HeadHash() != c.HeadHash() {
		t.Error("restored head differs")
	}
}

func TestPublicAPIGenerateKey(t *testing.T) {
	kp, err := GenerateKey("random")
	if err != nil {
		t.Fatal(err)
	}
	if kp.Name() != "random" {
		t.Errorf("Name = %q", kp.Name())
	}
}

func TestPublicAPIEngines(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg,
		WithSequenceLength(3),
		WithClock(NewLogicalClock(0)),
		WithEngine(NewPoW(6)),
		WithBatchLinger(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sealed, err := c.SubmitWait(context.Background(), NewData("alice", []byte("mined")).Sign(alice))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := c.Block(sealed[0].Block)
	if !ok {
		t.Fatal("sealed block missing")
	}
	if b.Hash() != sealed[0].BlockHash {
		t.Error("sealed hash mismatch")
	}
	if _, err := NewAuthority([]string{"a", "b"}, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuorum([]string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingReads(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg, WithClock(NewLogicalClock(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.SubmitWait(ctx, NewData("alice", []byte{byte(i)}).Sign(alice)); err != nil {
			t.Fatal(err)
		}
	}
	blocks := 0
	for range c.BlocksSeq() {
		blocks++
	}
	if blocks != c.Len() {
		t.Errorf("BlocksSeq yielded %d of %d blocks", blocks, c.Len())
	}
	entries := 0
	for ref, e := range c.EntriesSeq() {
		if got, _, ok := c.Lookup(ref); !ok || got.Hash() != e.Hash() {
			t.Errorf("yielded ref %s does not resolve to its entry", ref)
		}
		entries++
	}
	if entries != 5 {
		t.Errorf("EntriesSeq yielded %d entries, want 5", entries)
	}
}

func TestPublicAPIAuditAndSchema(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("ALPHA", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg, WithSequenceLength(3), WithClock(NewLogicalClock(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	logger, err := NewAuditLogger(c)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := logger.Log(alice, LoginEvent{User: "ALPHA", Terminal: "tty1", Success: true, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, _, ok := c.Lookup(ref)
	if !ok {
		t.Fatal("login not found")
	}
	ev, err := DecodeLoginEvent(e)
	if err != nil || ev.User != "ALPHA" {
		t.Errorf("decoded %+v, %v", ev, err)
	}
	out := c.RenderString(AuditRenderOptions())
	if !strings.Contains(out, "login ALPHA tty1 ok") {
		t.Errorf("audit rendering missing decoded login:\n%s", out)
	}
	if _, err := ParseSchema("name: x\nfields:\n  - name: a\n    type: int\n"); err != nil {
		t.Errorf("ParseSchema: %v", err)
	}
}

func TestGenesisPrevHashConstant(t *testing.T) {
	if GenesisPrevHash.Short() != "DEADB" {
		t.Errorf("GenesisPrevHash.Short() = %q", GenesisPrevHash.Short())
	}
}
