package seldel

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the doc-comment quickstart end to end
// through the façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := NewChain(Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          NewLogicalClock(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := c.Commit([]*Entry{NewData("alice", []byte("hello")).Sign(alice)})
	if err != nil {
		t.Fatal(err)
	}
	ref := Ref{Block: blocks[0].Header.Number, Entry: 0}
	if _, err := c.Commit([]*Entry{NewDeletion("alice", ref).Sign(alice)}); err != nil {
		t.Fatal(err)
	}
	for c.IsMarked(ref) {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Lookup(ref); ok {
		t.Error("entry survived deletion")
	}
	if c.Stats().ForgottenEntries != 1 {
		t.Error("forgotten counter wrong")
	}
}

func TestPublicAPIStoreRoundTrip(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := Config{SequenceLength: 3, MaxSequences: 1, Shrink: ShrinkMinimal, Registry: reg, Clock: NewLogicalClock(0)}
	c, err := NewChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachStore(c, st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Commit([]*Entry{NewData("alice", []byte{byte(i)}).Sign(alice)}); err != nil {
			t.Fatal(err)
		}
	}
	cfg2 := cfg
	cfg2.Clock = NewLogicalClock(0)
	restored, err := OpenStoredChain(cfg2, st)
	if err != nil {
		t.Fatal(err)
	}
	if restored.HeadHash() != c.HeadHash() {
		t.Error("restored head differs")
	}
}

func TestPublicAPIGenerateKey(t *testing.T) {
	kp, err := GenerateKey("random")
	if err != nil {
		t.Fatal(err)
	}
	if kp.Name() != "random" {
		t.Errorf("Name = %q", kp.Name())
	}
}

func TestPublicAPIEngines(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("alice", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := Config{SequenceLength: 3, Registry: reg, Clock: NewLogicalClock(0)}
	UseEngine(&cfg, NewPoW(6))
	c, err := NewChain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit([]*Entry{NewData("alice", []byte("mined")).Sign(alice)}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAuthority([]string{"a", "b"}, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewQuorum([]string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAuditAndSchema(t *testing.T) {
	reg := NewRegistry()
	alice := DeterministicKey("ALPHA", "api-test")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := NewChain(Config{SequenceLength: 3, Registry: reg, Clock: NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	logger, err := NewAuditLogger(c)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := logger.Log(alice, LoginEvent{User: "ALPHA", Terminal: "tty1", Success: true, At: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, _, ok := c.Lookup(ref)
	if !ok {
		t.Fatal("login not found")
	}
	ev, err := DecodeLoginEvent(e)
	if err != nil || ev.User != "ALPHA" {
		t.Errorf("decoded %+v, %v", ev, err)
	}
	out := c.RenderString(AuditRenderOptions())
	if !strings.Contains(out, "login ALPHA tty1 ok") {
		t.Errorf("audit rendering missing decoded login:\n%s", out)
	}
	if _, err := ParseSchema("name: x\nfields:\n  - name: a\n    type: int\n"); err != nil {
		t.Errorf("ParseSchema: %v", err)
	}
}

func TestGenesisPrevHashConstant(t *testing.T) {
	if GenesisPrevHash.Short() != "DEADB" {
		t.Errorf("GenesisPrevHash.Short() = %q", GenesisPrevHash.Short())
	}
}
