package seldel

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestDeletionManifestFullLoop is the audit-trail acceptance path over
// the public façade: an entry is deleted and physically erased, the
// chain proves the erasure was deliberate while refusing to resolve the
// entry, the proof and the resurrection floor survive a restart from
// the store directory, and `seldel doctor` pronounces the directory
// clean afterwards.
func TestDeletionManifestFullLoop(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	alice := DeterministicKey("alice", "manifest-loop")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithSequenceLength(3),
		WithMaxSequences(2),
		WithClock(NewLogicalClock(0)),
	}
	open := func() *Chain {
		t.Helper()
		c, err := New(reg, append(opts, WithSegmentStore(dir, SegmentOptions{SegmentBytes: 2048}))...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := open()
	ctx := context.Background()

	victimEntry := NewData("alice", []byte("right to be forgotten")).Sign(alice)
	victimDigest := victimEntry.Hash()
	sealed, err := c.SubmitWait(ctx, victimEntry)
	if err != nil {
		t.Fatal(err)
	}
	victim := sealed[0].Ref
	if _, err := c.SubmitWait(ctx, NewDeletion("alice", victim).Sign(alice)); err != nil {
		t.Fatal(err)
	}
	for i := 0; c.Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatal("retention never cut past the victim")
		}
		if _, err := c.SubmitWait(ctx, NewData("alice", []byte(fmt.Sprintf("churn-%02d", i))).Sign(alice)); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The entry is gone, the proof of deliberate erasure is not.
	if _, _, ok := c.Lookup(victim); ok {
		t.Fatal("victim still resolvable after physical erasure")
	}
	proof, err := c.ProveDeleted(victim)
	if err != nil {
		t.Fatalf("ProveDeleted: %v", err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("proof verification: %v", err)
	}
	if proof.Tombstone.Requester != "alice" || proof.Tombstone.EntryDigest != victimDigest {
		t.Fatalf("tombstone does not identify the erasure: %+v", proof.Tombstone)
	}
	recs, err := c.Tombstones(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no deletion records after truncation")
	}
	floor := c.ResurrectionFloor()
	if floor == 0 || floor <= victim.Block {
		t.Fatalf("resurrection floor %d does not cover victim block %d", floor, victim.Block)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the manifest is recovered from the DELETIONS log, so the
	// audit trail and the floor outlive the process that wrote them.
	c2 := open()
	recs2, err := c2.Tombstones(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("restart lost deletion records: %d -> %d", len(recs), len(recs2))
	}
	if got := c2.ResurrectionFloor(); got != floor {
		t.Fatalf("restart floor %d, want %d", got, floor)
	}
	if _, _, ok := c2.Lookup(victim); ok {
		t.Fatal("victim resurrected by restart")
	}
	proof2, err := c2.ProveDeleted(victim)
	if err != nil {
		t.Fatalf("ProveDeleted after restart: %v", err)
	}
	if err := proof2.Verify(); err != nil {
		t.Fatalf("restarted proof verification: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// The doctor cross-validates the directory the lifecycle left behind.
	rep, err := Doctor(dir, DoctorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("doctor found issues in a healthy directory: %+v", rep.Findings)
	}
	if rep.Records != len(recs) {
		t.Errorf("doctor sees %d records, chain sealed %d", rep.Records, len(recs))
	}
	if rep.Marker < floor {
		t.Errorf("doctor marker %d below the resurrection floor %d", rep.Marker, floor)
	}
}

// TestWithoutDeletionManifest covers the opt-out: truncations shift the
// marker without writing DELETIONS, and requesting the opt-out without
// a segment store is a configuration error.
func TestWithoutDeletionManifest(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	alice := DeterministicKey("alice", "manifest-optout")
	if err := reg.RegisterKey(alice, RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := New(reg,
		WithSequenceLength(3),
		WithMaxSequences(2),
		WithClock(NewLogicalClock(0)),
		WithSegmentStore(dir, SegmentOptions{SegmentBytes: 2048}),
		WithoutDeletionManifest(),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; c.Marker() == 0; i++ {
		if i > 64 {
			t.Fatal("chain never truncated")
		}
		sealed, err := c.SubmitWait(ctx, NewData("alice", []byte(fmt.Sprintf("d-%02d", i))).Sign(alice))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.SubmitWait(ctx, NewDeletion("alice", sealed[0].Ref).Sign(alice)); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "DELETIONS")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("opted-out chain wrote a DELETIONS log: %v", err)
	}

	if _, err := New(reg,
		WithSequenceLength(3),
		WithClock(NewLogicalClock(0)),
		WithoutDeletionManifest(),
	); !errors.Is(err, ErrConfig) {
		t.Errorf("WithoutDeletionManifest without a segment store: %v, want ErrConfig", err)
	}
}
