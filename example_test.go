package seldel_test

import (
	"fmt"

	"github.com/seldel/seldel"
)

// Example shows the life of an entry: written, deleted on request,
// physically forgotten after the retention cycle.
func Example() {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "example")
	_ = reg.RegisterKey(alice, seldel.RoleUser)

	chain, _ := seldel.NewChain(seldel.Config{
		SequenceLength: 3, // summary block every 3rd block
		MaxSequences:   2, // keep at most two complete sequences
		Registry:       reg,
		Clock:          seldel.NewLogicalClock(0),
	})

	blocks, _ := chain.Commit([]*seldel.Entry{
		seldel.NewData("alice", []byte("embarrassing")).Sign(alice),
	})
	ref := seldel.Ref{Block: blocks[0].Header.Number, Entry: 0}
	fmt.Println("written at", ref)

	_, _ = chain.Commit([]*seldel.Entry{
		seldel.NewDeletion("alice", ref).Sign(alice),
	})
	fmt.Println("marked:", chain.IsMarked(ref))

	for chain.IsMarked(ref) {
		_, _ = chain.AppendEmpty()
	}
	_, _, found := chain.Lookup(ref)
	fmt.Println("found after retention cycle:", found)
	fmt.Println("forgotten entries:", chain.Stats().ForgottenEntries)
	// Output:
	// written at 1/0
	// marked: true
	// found after retention cycle: false
	// forgotten entries: 1
}

// ExampleNewTemporary shows self-cleaning retention (§IV-D.4): the entry
// expires at block 4 and is dropped at the next summarization.
func ExampleNewTemporary() {
	reg := seldel.NewRegistry()
	logger := seldel.DeterministicKey("logger", "example")
	_ = reg.RegisterKey(logger, seldel.RoleUser)
	chain, _ := seldel.NewChain(seldel.Config{
		SequenceLength: 3,
		MaxSequences:   1,
		Shrink:         seldel.ShrinkMinimal,
		Registry:       reg,
		Clock:          seldel.NewLogicalClock(0),
	})

	entry := seldel.NewTemporary("logger", []byte("debug line"), 0, 4).Sign(logger)
	blocks, _ := chain.Commit([]*seldel.Entry{entry})
	ref := seldel.Ref{Block: blocks[0].Header.Number, Entry: 0}

	for i := 0; i < 8; i++ {
		_, _ = chain.AppendEmpty()
	}
	_, _, found := chain.Lookup(ref)
	fmt.Println("expired entry still on chain:", found)
	fmt.Println("expired counter:", chain.Stats().ExpiredEntries)
	// Output:
	// expired entry still on chain: false
	// expired counter: 1
}

// ExampleChain_Lookup shows that entry references survive migration into
// summary blocks: the same (block, entry) address keeps resolving.
func ExampleChain_Lookup() {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "example")
	_ = reg.RegisterKey(alice, seldel.RoleUser)
	chain, _ := seldel.NewChain(seldel.Config{
		SequenceLength: 3,
		MaxSequences:   1,
		Shrink:         seldel.ShrinkMinimal,
		Registry:       reg,
		Clock:          seldel.NewLogicalClock(0),
	})

	blocks, _ := chain.Commit([]*seldel.Entry{
		seldel.NewData("alice", []byte("durable")).Sign(alice),
	})
	ref := seldel.Ref{Block: blocks[0].Header.Number, Entry: 0}

	for i := 0; i < 6; i++ {
		_, _ = chain.AppendEmpty()
	}
	entry, loc, _ := chain.Lookup(ref)
	fmt.Printf("payload=%s carried=%v origin=%s\n", entry.Payload, loc.Carried, ref)
	// Output:
	// payload=durable carried=true origin=1/0
}

// ExampleNewAuditLogger runs the paper's §V logging use case.
func ExampleNewAuditLogger() {
	reg := seldel.NewRegistry()
	alpha := seldel.DeterministicKey("ALPHA", "example")
	_ = reg.RegisterKey(alpha, seldel.RoleUser)
	chain, _ := seldel.NewChain(seldel.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          seldel.NewLogicalClock(0),
	})
	logger, _ := seldel.NewAuditLogger(chain)

	ref, _ := logger.Log(alpha, seldel.LoginEvent{
		User: "ALPHA", Terminal: "tty1", Success: true, At: 7,
	})
	hits, _ := logger.Query(seldel.AuditQuery{User: "ALPHA"})
	fmt.Println("logged at", ref, "- events on record:", len(hits))
	fmt.Println("authentic:", logger.VerifyAuthenticity(ref) == nil)
	// Output:
	// logged at 1/0 - events on record: 1
	// authentic: true
}
