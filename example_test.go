package seldel_test

import (
	"context"
	"fmt"

	"github.com/seldel/seldel"
)

// Example shows the life of an entry: submitted through the pipeline,
// deleted on request, physically forgotten after the retention cycle.
func Example() {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "example")
	_ = reg.RegisterKey(alice, seldel.RoleUser)

	chain, _ := seldel.New(reg,
		seldel.WithSequenceLength(3), // summary block every 3rd block
		seldel.WithMaxSequences(2),   // keep at most two complete sequences
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	defer chain.Close()

	ctx := context.Background()
	sealed, _ := chain.SubmitWait(ctx,
		seldel.NewData("alice", []byte("embarrassing")).Sign(alice),
	)
	ref := sealed[0].Ref
	fmt.Println("written at", ref)

	_, _ = chain.SubmitWait(ctx,
		seldel.NewDeletion("alice", ref).Sign(alice),
	)
	fmt.Println("marked:", chain.IsMarked(ref))

	for chain.IsMarked(ref) {
		_, _ = chain.AppendEmpty()
	}
	_, _, found := chain.Lookup(ref)
	fmt.Println("found after retention cycle:", found)
	fmt.Println("forgotten entries:", chain.Stats().ForgottenEntries)
	// Output:
	// written at 1/0
	// marked: true
	// found after retention cycle: false
	// forgotten entries: 1
}

// ExampleChain_Submit shows the concurrent write path: receipts resolve
// to the entries' final coordinates once their shared block is sealed.
func ExampleChain_Submit() {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "example")
	_ = reg.RegisterKey(alice, seldel.RoleUser)
	chain, _ := seldel.New(reg, seldel.WithClock(seldel.NewLogicalClock(0)))
	defer chain.Close()

	ctx := context.Background()
	receipts, _ := chain.Submit(ctx,
		seldel.NewData("alice", []byte("first")).Sign(alice),
		seldel.NewData("alice", []byte("second")).Sign(alice),
	)
	// Entries of one Submit call always seal in the same block.
	for _, r := range receipts {
		sealed, _ := r.Wait(ctx)
		fmt.Println("sealed at", sealed.Ref)
	}
	// Output:
	// sealed at 1/0
	// sealed at 1/1
}

// ExampleChain_EntriesSeq streams the live chain without copying it.
func ExampleChain_EntriesSeq() {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "example")
	_ = reg.RegisterKey(alice, seldel.RoleUser)
	chain, _ := seldel.New(reg, seldel.WithClock(seldel.NewLogicalClock(0)))
	defer chain.Close()

	ctx := context.Background()
	for _, payload := range []string{"a", "b", "c"} {
		_, _ = chain.SubmitWait(ctx, seldel.NewData("alice", []byte(payload)).Sign(alice))
	}
	for ref, entry := range chain.EntriesSeq() {
		fmt.Printf("%s: %s\n", ref, entry.Payload)
	}
	// Output:
	// 1/0: a
	// 3/0: b
	// 4/0: c
}

// ExampleNewTemporary shows self-cleaning retention (§IV-D.4): the entry
// expires at block 4 and is dropped at the next summarization.
func ExampleNewTemporary() {
	reg := seldel.NewRegistry()
	logger := seldel.DeterministicKey("logger", "example")
	_ = reg.RegisterKey(logger, seldel.RoleUser)
	chain, _ := seldel.New(reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(1),
		seldel.WithShrink(seldel.ShrinkMinimal),
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	defer chain.Close()

	entry := seldel.NewTemporary("logger", []byte("debug line"), 0, 4).Sign(logger)
	sealed, _ := chain.SubmitWait(context.Background(), entry)
	ref := sealed[0].Ref

	for i := 0; i < 8; i++ {
		_, _ = chain.AppendEmpty()
	}
	_, _, found := chain.Lookup(ref)
	fmt.Println("expired entry still on chain:", found)
	fmt.Println("expired counter:", chain.Stats().ExpiredEntries)
	// Output:
	// expired entry still on chain: false
	// expired counter: 1
}

// ExampleChain_Lookup shows that entry references survive migration into
// summary blocks: the same (block, entry) address keeps resolving.
func ExampleChain_Lookup() {
	reg := seldel.NewRegistry()
	alice := seldel.DeterministicKey("alice", "example")
	_ = reg.RegisterKey(alice, seldel.RoleUser)
	chain, _ := seldel.New(reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(1),
		seldel.WithShrink(seldel.ShrinkMinimal),
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	defer chain.Close()

	sealed, _ := chain.SubmitWait(context.Background(),
		seldel.NewData("alice", []byte("durable")).Sign(alice),
	)
	ref := sealed[0].Ref

	for i := 0; i < 6; i++ {
		_, _ = chain.AppendEmpty()
	}
	entry, loc, _ := chain.Lookup(ref)
	fmt.Printf("payload=%s carried=%v origin=%s\n", entry.Payload, loc.Carried, ref)
	// Output:
	// payload=durable carried=true origin=1/0
}

// ExampleNewAuditLogger runs the paper's §V logging use case.
func ExampleNewAuditLogger() {
	reg := seldel.NewRegistry()
	alpha := seldel.DeterministicKey("ALPHA", "example")
	_ = reg.RegisterKey(alpha, seldel.RoleUser)
	chain, _ := seldel.New(reg,
		seldel.WithSequenceLength(3),
		seldel.WithMaxSequences(2),
		seldel.WithClock(seldel.NewLogicalClock(0)),
	)
	defer chain.Close()
	logger, _ := seldel.NewAuditLogger(chain)

	ref, _ := logger.Log(alpha, seldel.LoginEvent{
		User: "ALPHA", Terminal: "tty1", Success: true, At: 7,
	})
	hits, _ := logger.Query(seldel.AuditQuery{User: "ALPHA"})
	fmt.Println("logged at", ref, "- events on record:", len(hits))
	fmt.Println("authentic:", logger.VerifyAuthenticity(ref) == nil)
	// Output:
	// logged at 1/0 - events on record: 1
	// authentic: true
}
