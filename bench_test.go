package seldel

// Benchmark harness: one benchmark per experiment area (DESIGN.md §4).
// `go test -bench=. -benchmem` regenerates the performance side of the
// evaluation; the table/figure outputs come from `seldel-bench`.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/seldel/seldel/internal/attack"
	"github.com/seldel/seldel/internal/baseline"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

func benchEnv(b *testing.B) (*identity.Registry, *identity.KeyPair) {
	b.Helper()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("bench", "seldel-bench")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		b.Fatal(err)
	}
	return reg, kp
}

func benchChain(b *testing.B, maxBlocks int) (*chain.Chain, *identity.KeyPair) {
	b.Helper()
	reg, kp := benchEnv(b)
	c, err := chain.New(chain.Config{
		SequenceLength: 6,
		MaxBlocks:      maxBlocks,
		Shrink:         chain.ShrinkMinimal,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	return c, kp
}

// BenchmarkAppendBounded is E4's seldel arm: sustained append throughput
// on a bounded chain, merges included.
func BenchmarkAppendBounded(b *testing.B) {
	c, kp := benchChain(b, 60)
	b.ReportAllocs()
	b.ResetTimer()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		e := block.NewData("bench", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
		if _, err := c.SubmitWait(ctx, e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Stats().CutBlocks), "cut_blocks")
}

// BenchmarkAppendPlain is E4's baseline arm: the same workload on a
// conventional unbounded chain.
func BenchmarkAppendPlain(b *testing.B) {
	_, kp := benchEnv(b)
	p := baseline.NewPlain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := block.NewData("bench", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
		p.Append([]*block.Entry{e})
	}
}

// BenchmarkSummaryCreationFullCopy is E6: building a summary block that
// carries n full entries.
func BenchmarkSummaryCreationFullCopy(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			_, kp := benchEnv(b)
			carried := make([]block.CarriedEntry, n)
			for i := range carried {
				carried[i] = block.CarriedEntry{
					OriginBlock: uint64(i / 4), OriginTime: uint64(i / 4), EntryNumber: uint32(i % 4),
					Entry: block.NewData("bench", make([]byte, 256)).Sign(kp),
				}
			}
			prev := codec.HashBytes([]byte("prev"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				block.NewSummary(99, 98, prev, carried, nil)
			}
		})
	}
}

// BenchmarkSummaryCreationHashRef is E6's mitigation arm: the same
// summary with 32-byte hash references instead of payloads (§V-B.2).
func BenchmarkSummaryCreationHashRef(b *testing.B) {
	for _, n := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			_, kp := benchEnv(b)
			carried := make([]block.CarriedEntry, n)
			for i := range carried {
				h := codec.HashBytes(make([]byte, 256))
				carried[i] = block.CarriedEntry{
					OriginBlock: uint64(i / 4), OriginTime: uint64(i / 4), EntryNumber: uint32(i % 4),
					Entry: block.NewData("bench", h[:]).Sign(kp),
				}
			}
			prev := codec.HashBytes([]byte("prev"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				block.NewSummary(99, 98, prev, carried, nil)
			}
		})
	}
}

// BenchmarkDeletionRequest is E7: validating a deletion request against
// a live chain (direct (α, entry) addressing keeps this flat).
func BenchmarkDeletionRequest(b *testing.B) {
	for _, live := range []int{120, 960} {
		b.Run(fmt.Sprintf("live=%d", live), func(b *testing.B) {
			c, kp := benchChain(b, live)
			ctx := context.Background()
			var last block.Ref
			for c.Len() < live {
				sealed, err := c.SubmitWait(ctx,
					block.NewData("bench", []byte("x")).Sign(kp))
				if err != nil {
					b.Fatal(err)
				}
				last = sealed[0].Ref
			}
			req := block.NewDeletion("bench", last).Sign(kp)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.CheckDeletionRequest(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLookup is E7's addressing primitive.
func BenchmarkLookup(b *testing.B) {
	c, kp := benchChain(b, 960)
	ctx := context.Background()
	var last block.Ref
	for c.Len() < 960 {
		sealed, err := c.SubmitWait(ctx, block.NewData("bench", []byte("x")).Sign(kp))
		if err != nil {
			b.Fatal(err)
		}
		last = sealed[0].Ref
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Lookup(last); !ok {
			b.Fatal("lost entry")
		}
	}
}

// BenchmarkTTLExpiry is E9: append throughput when every entry carries a
// TTL and merges continuously expire old ones.
func BenchmarkTTLExpiry(b *testing.B) {
	c, kp := benchChain(b, 60)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := block.NewTemporary("bench", []byte("log line"), 0, c.NextNumber()+30).Sign(kp)
		if _, err := c.SubmitWait(ctx, e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Stats().ExpiredEntries), "expired")
}

// BenchmarkAttackSimulation is E5: one Monte-Carlo race batch at the
// guarded depth.
func BenchmarkAttackSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := attack.SimulateRace(attack.RaceConfig{
			AttackerPower: 0.3, Deficit: 12, Trials: 1000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChameleonRedact is E10: per-redaction cost of the
// chameleon-hash baseline (O(1) in chain length, trapdoor required).
func BenchmarkChameleonRedact(b *testing.B) {
	key, err := baseline.GenerateChameleonKey()
	if err != nil {
		b.Fatal(err)
	}
	c := baseline.NewChameleonChain(key)
	for i := 0; i < 100; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("content-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Redact(uint64(1+i%99), []byte(fmt.Sprintf("redacted-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHardFork is E10: per-deletion cost of the hard-fork baseline
// (O(chain length)).
func BenchmarkHardFork(b *testing.B) {
	_, kp := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := baseline.NewHardFork()
		for j := 0; j < 200; j++ {
			h.Append([]*block.Entry{block.NewData("bench", []byte("x")).Sign(kp)})
		}
		b.StartTimer()
		if _, err := h.Delete(block.Ref{Block: 100, Entry: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsensus is E12: commit cost under each engine.
func BenchmarkConsensus(b *testing.B) {
	engines := map[string]consensus.Engine{
		"noop":  consensus.NoOp{},
		"pow8":  consensus.NewPoW(8),
		"pow12": consensus.NewPoW(12),
	}
	for name, engine := range engines {
		b.Run(name, func(b *testing.B) {
			reg, kp := benchEnv(b)
			cfg := chain.Config{
				SequenceLength: 6,
				MaxBlocks:      60,
				Shrink:         chain.ShrinkMinimal,
				Registry:       reg,
				Clock:          simclock.NewLogical(0),
			}
			consensus.Configure(&cfg, engine)
			c, err := chain.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := block.NewData("bench", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
				if _, err := c.SubmitWait(ctx, e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyIntegrity measures the cost of the full-chain check
// that clients run after syncing from the marker (§V-B.3: nodes accept
// only chains traceable from their status quo).
func BenchmarkVerifyIntegrity(b *testing.B) {
	c, kp := benchChain(b, 240)
	ctx := context.Background()
	for c.Len() < 240 {
		if _, err := c.SubmitWait(ctx, block.NewData("bench", []byte("x")).Sign(kp)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.VerifyIntegrity(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitPipeline measures the concurrent submission pipeline
// under parallel producers (compare with BenchmarkAppendBounded, the
// single-caller Commit baseline it replaces).
func BenchmarkSubmitPipeline(b *testing.B) {
	c, kp := benchChain(b, 0)
	defer c.Close()
	ctx := context.Background()
	var n atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// b.Error, not b.Fatal: FailNow must not run on RunParallel
		// worker goroutines.
		var receipts []Receipt
		for pb.Next() {
			i := n.Add(1)
			e := block.NewData("bench", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
			rs, err := c.Submit(ctx, e)
			if err != nil {
				b.Error(err)
				return
			}
			receipts = append(receipts, rs...)
		}
		for _, r := range receipts {
			if _, err := r.Wait(ctx); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := c.PipelineStats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.Entries)/float64(st.Batches), "entries/block")
	}
}
