// Package seldel is a Go implementation of "Selective Deletion in a
// Blockchain" (Hillmann, Knüpfer, Heiland, Karcher — ICDCS 2020,
// arXiv:2101.05495): a blockchain that can forget.
//
// The chain is partitioned into sequences by periodically inserted,
// deterministically computed summary blocks Σ. When the live chain
// exceeds its configured bound, the oldest sequences are merged into the
// newest summary block — leaving out entries whose owners requested
// deletion, expired temporary entries, and deletion requests themselves —
// the Genesis marker shifts forward, and the cut prefix is physically
// deleted. References stay stable because carried entries keep their
// original block number, timestamp, and entry number.
//
// # Quickstart
//
//	reg := seldel.NewRegistry()
//	alice := seldel.DeterministicKey("alice", "demo")
//	_ = reg.RegisterKey(alice, seldel.RoleUser)
//
//	chain, _ := seldel.New(reg,
//		seldel.WithSequenceLength(3),
//		seldel.WithMaxSequences(2),
//	)
//	defer chain.Close()
//
//	ctx := context.Background()
//	sealed, _ := chain.SubmitWait(ctx,
//		seldel.NewData("alice", []byte("hello")).Sign(alice),
//	)
//	_, _ = chain.SubmitWait(ctx,
//		seldel.NewDeletion("alice", sealed[0].Ref).Sign(alice),
//	)
//	// After the retention bound passes, the entry is physically gone.
//
// # Writing concurrently
//
// Submit is the write path: entries from any number of goroutines are
// coalesced by the chain's submission pipeline into full blocks, and
// each entry's Receipt resolves to its stable Ref, block number, and
// block hash once sealed (or to a per-entry validation error):
//
//	receipts, err := chain.Submit(ctx, entryA, entryB)
//	sealed, err := receipts[0].Wait(ctx)
//
// Entries of one Submit call always seal in the same block. For reads,
// EntriesSeq and BlocksSeq stream the live chain without copying it.
//
// The subsystems are re-exported here so applications depend only on
// this package: identity management and role-based authorization,
// pluggable consensus engines (proof-of-work, proof-of-authority),
// quorum voting, persistent stores, a network simulator with anchor
// nodes and verifying clients, the audit-logging use case of the paper's
// evaluation, and the baselines and attack models used by the
// experiments. Failures can be classified with errors.Is against the
// sentinel errors re-exported in errors.go (ErrConfig, ErrUnauthorized,
// ErrNotFound, ErrClosed, …).
package seldel

import (
	"context"
	"fmt"

	"github.com/seldel/seldel/internal/audit"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/client"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/doctor"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/loadgen"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/node"
	"github.com/seldel/seldel/internal/partition"
	"github.com/seldel/seldel/internal/schema"
	"github.com/seldel/seldel/internal/serve"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
	"github.com/seldel/seldel/internal/verify"
)

// Core chain types.
type (
	// Chain is a live selective-deletion blockchain.
	Chain = chain.Chain
	// Config parameterizes a Chain.
	Config = chain.Config
	// ShrinkPolicy selects how aggressively old sequences merge.
	ShrinkPolicy = chain.ShrinkPolicy
	// Stats is a snapshot of chain size and deletion counters.
	Stats = chain.Stats
	// Location says where an entry currently lives.
	Location = chain.Location
	// Mark is an approved, not-yet-executed deletion mark.
	Mark = chain.Mark
	// Listener observes chain mutations.
	Listener = chain.Listener
	// RenderOptions controls the paper-style console rendering.
	RenderOptions = chain.RenderOptions
)

// Submission-pipeline types.
type (
	// Receipt tracks one submitted entry; it resolves to a Sealed result
	// or a per-entry error once the entry's block is sealed.
	Receipt = mempool.Receipt
	// Sealed is where a submitted entry ended up: stable Ref, block
	// number, and block hash.
	Sealed = mempool.Sealed
	// PipelineStats are the submission pipeline's cumulative counters
	// and backpressure gauges (intake-queue depth, adaptive linger,
	// verify-pool utilization, compaction progress).
	PipelineStats = mempool.Stats
	// Verifier is the parallel signature-verification pool with the
	// verified-signature cache; see NewVerifier and WithVerifier.
	Verifier = verify.Pool
	// VerifyStats is a snapshot of a Verifier's activity.
	VerifyStats = verify.Stats
	// CompactionOptions parameterize the background compactor that
	// executes the physical side of truncation off the append path;
	// see WithCompaction.
	CompactionOptions = compact.Options
	// CompactionStats is a snapshot of the compactor's progress:
	// pending truncations and blocks/bytes physically reclaimed. Use
	// Chain.CompactWait to barrier on it.
	CompactionStats = compact.Stats
)

// Block and entry types.
type (
	// Block is a full block (normal or summary).
	Block = block.Block
	// Header is a block header.
	Header = block.Header
	// Entry is one record inside a block.
	Entry = block.Entry
	// Ref addresses an entry by (block number, entry number).
	Ref = block.Ref
	// CarriedEntry is an entry migrated into a summary block.
	CarriedEntry = block.CarriedEntry
	// SequenceRef is the Fig. 9 redundancy reference.
	SequenceRef = block.SequenceRef
	// Hash is a SHA-256 content hash.
	Hash = codec.Hash
)

// Identity and authorization types.
type (
	// KeyPair is a named Ed25519 signing key.
	KeyPair = identity.KeyPair
	// Registry maps participant names to keys and roles.
	Registry = identity.Registry
	// Role is a participant privilege level.
	Role = identity.Role
	// DeletionPolicy selects requester authorization strictness.
	DeletionPolicy = deletion.Policy
	// AutoCohesionPolicy is the Bell-LaPadula-style automatic cohesion
	// decision of §IV-D.2 (set Config.AutoCohesion to enable it).
	AutoCohesionPolicy = deletion.AutoPolicy
)

// Consensus types.
type (
	// Engine seals and verifies normal blocks.
	Engine = consensus.Engine
	// Quorum is the anchor-node voting set.
	Quorum = consensus.Quorum
	// PoW is the proof-of-work engine.
	PoW = consensus.PoW
	// Authority is the round-robin proof-of-authority engine.
	Authority = consensus.Authority
	// NoOpEngine accepts blocks as built.
	NoOpEngine = consensus.NoOp
)

// Distributed-deployment types.
type (
	// Network is the in-memory network substrate.
	Network = netsim.Network
	// NetworkConfig parameterizes the network simulator.
	NetworkConfig = netsim.Config
	// Node is an anchor node.
	Node = node.Node
	// NodeConfig assembles an anchor node.
	NodeConfig = node.Config
	// Client is a verifying light participant.
	Client = client.Client
	// ClientStatus is the majority status-quo answer.
	ClientStatus = client.Status
)

// Storage types.
type (
	// Store persists live blocks.
	Store = store.Store
	// MemStore is the in-memory store.
	MemStore = store.Mem
	// FileStore is the file-backed store (one file per block).
	FileStore = store.File
	// SegmentStore is the segmented store: blocks append into bounded,
	// length-prefixed segment files; truncation physically retires
	// whole segments; a snapshot checkpoint makes restores start at the
	// Genesis marker. See README "Storage".
	SegmentStore = segment.Store
	// SegmentOptions parameterize a SegmentStore (segment size, fsync
	// policy).
	SegmentOptions = segment.Options
	// StoreSnapshot is a segment store's checkpoint: the Genesis marker,
	// the head at checkpoint time, and the marker block itself.
	StoreSnapshot = segment.Snapshot
)

// Deletion-manifest types: the durable audit trail every truncation of
// a segment-store chain writes atomically with the marker shift, and
// the tombstone/proof API built on it (Chain.Tombstones,
// Chain.ProveDeleted). See README "Audit trail".
type (
	// ManifestRecord is one deletion record: the marker shift, the
	// summary block that executed it, digests of the cut boundary, and
	// one Tombstone per deliberately forgotten entry.
	ManifestRecord = manifest.Record
	// Tombstone is the per-entry audit stub inside a ManifestRecord:
	// target reference, requester, request reference, entry digest, and
	// the co-signer set that authorized the deletion.
	Tombstone = manifest.Tombstone
	// TombstoneCoSigner is one co-signature captured in a Tombstone.
	TombstoneCoSigner = manifest.CoSigner
	// DeletedProof is Chain.ProveDeleted's result: the manifest record
	// covering the erased entry plus, while the summary block is live, a
	// Merkle non-inclusion bracket proving the entry is NOT among the
	// carried survivors. Verify checks it self-contained.
	DeletedProof = chain.DeletedProof
	// DoctorOptions configures Doctor (check vs. repair vs. archive).
	DoctorOptions = doctor.Options
	// DoctorReport is Doctor's cross-validation result.
	DoctorReport = doctor.Report
	// DoctorFinding is one issue found by Doctor.
	DoctorFinding = doctor.Finding
	// PartitionedDoctorReport aggregates per-partition doctor reports
	// over a partitioned store root.
	PartitionedDoctorReport = doctor.PartitionedReport
)

// Partitioned-chain types: the sharded write path of NewPartitioned.
// Entries route by consistent hash of a partition key across N
// sub-chains (each the full single-chain pipeline over its own
// block-number stripe), and every truncation anchors the partition's
// head into a spine chain that cross-partition deletion proofs verify
// against. See README "Partitioning" and docs/ARCHITECTURE.md §8.
type (
	// PartitionedChain is the router + sub-chains + spine aggregate
	// built by NewPartitioned.
	PartitionedChain = partition.Chain
	// SpineBlock is one block of the cross-partition spine chain.
	SpineBlock = partition.SpineBlock
	// SpineAnchor is one partition's head commitment inside a
	// SpineBlock.
	SpineAnchor = partition.Anchor
	// PartitionProof is PartitionedChain.ProveDeleted's result: the
	// owning partition's DeletedProof tied into the spine by the
	// deletion-record digest chain. Verify checks it standalone.
	PartitionProof = partition.Proof
)

// Audit use-case types (the paper's evaluation scenario).
type (
	// AuditLogger writes login events to the chain.
	AuditLogger = audit.Logger
	// LoginEvent is one audited terminal login.
	LoginEvent = audit.LoginEvent
	// AuditQuery filters audit queries.
	AuditQuery = audit.QueryOptions
	// Schema validates entry structure (YAML-declared, §V).
	Schema = schema.Schema
	// Record is a typed entry payload.
	Record = schema.Record
)

// Clock types.
type (
	// Clock yields logical timestamps.
	Clock = simclock.Clock
	// LogicalClock is the deterministic counter clock.
	LogicalClock = simclock.Logical
)

// Roles.
const (
	RoleUser   = identity.RoleUser
	RoleAdmin  = identity.RoleAdmin
	RoleMaster = identity.RoleMaster
)

// Shrink policies (Eq. 1 iteration vs. round-robin merge of Fig. 3).
const (
	ShrinkMinimal      = chain.ShrinkMinimal
	ShrinkAllButNewest = chain.ShrinkAllButNewest
)

// DurabilityMode selects when submission receipts resolve relative to
// the store's durability point (see WithDurability).
type DurabilityMode = chain.DurabilityMode

// Durability modes.
const (
	// DurabilitySeal resolves receipts at seal time (the default);
	// durability follows the store's own fsync policy.
	DurabilitySeal = chain.DurabilitySeal
	// DurabilityGroup resolves receipts only once their blocks are on
	// stable storage, amortizing one fsync over every block sealed
	// while the previous sync was in flight (group commit).
	DurabilityGroup = chain.DurabilityGroup
)

// Deletion authorization policies (§IV-D.1).
const (
	PolicyOwnerOnly = deletion.PolicyOwnerOnly
	PolicyRoleBased = deletion.PolicyRoleBased
)

// GenesisPrevHash is the previous-hash sentinel of block 0; its short
// form renders as "DEADB" exactly as in the paper's Fig. 6.
var GenesisPrevHash = block.GenesisPrevHash

// RestoreChain rebuilds a chain from persisted live blocks. Stores are
// restored as streams (see OpenStoredChain / WithStore), so this slice
// form is for blocks already in memory — adopted status-quo offers,
// test fixtures.
func RestoreChain(cfg Config, blocks []*Block) (*Chain, error) {
	return chain.Restore(cfg, blocks)
}

// NewRegistry returns an empty identity registry.
func NewRegistry() *Registry { return identity.NewRegistry() }

// GenerateKey creates a fresh random key pair.
func GenerateKey(name string) (*KeyPair, error) { return identity.Generate(name) }

// DeterministicKey derives a reproducible key pair (for tests and
// deterministic experiments).
func DeterministicKey(name, seed string) *KeyPair { return identity.Deterministic(name, seed) }

// NewData constructs an unsigned data entry; call Sign before submitting.
func NewData(owner string, payload []byte) *Entry { return block.NewData(owner, payload) }

// NewTemporary constructs an unsigned temporary entry that is forgotten
// once the chain passes expireTime or expireBlock (§IV-D.4).
func NewTemporary(owner string, payload []byte, expireTime, expireBlock uint64) *Entry {
	return block.NewTemporary(owner, payload, expireTime, expireBlock)
}

// NewDeletion constructs an unsigned deletion request for target.
func NewDeletion(requester string, target Ref) *Entry {
	return block.NewDeletion(requester, target)
}

// NewLogicalClock returns a deterministic clock starting at start.
func NewLogicalClock(start uint64) *LogicalClock { return simclock.NewLogical(start) }

// NewWallClock returns a wall-clock adapter (Unix seconds).
func NewWallClock() Clock { return simclock.NewWall() }

// NewPoW returns a proof-of-work engine with the given difficulty bits.
func NewPoW(bits int) *PoW { return consensus.NewPoW(bits) }

// NewAuthority returns a round-robin proof-of-authority engine.
func NewAuthority(authorities []string, self string) (*Authority, error) {
	return consensus.NewAuthority(authorities, self)
}

// NewQuorum creates a majority-vote quorum over the given members.
func NewQuorum(members []string) (*Quorum, error) { return consensus.NewQuorum(members) }

// NewAutoCohesionPolicy builds the clearance-level automatic cohesion
// policy (§IV-D.2); unlisted participants default to level 0.
func NewAutoCohesionPolicy(levels map[string]int) *AutoCohesionPolicy {
	return deletion.NewAutoPolicy(levels)
}

// NewNetwork creates an in-memory network.
func NewNetwork(cfg NetworkConfig) *Network { return netsim.New(cfg) }

// NewNode creates an anchor node and joins it to its network.
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// NewClient joins a verifying client to the network.
func NewClient(key *KeyPair, reg *Registry, net *Network, anchors []string) (*Client, error) {
	return client.New(key, reg, net, anchors)
}

// NewMemStore returns an in-memory block store.
func NewMemStore() *MemStore { return store.NewMem() }

// NewFileStore opens a file-backed block store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) { return store.NewFile(dir) }

// NewSegmentStore opens (or creates) a segmented block store rooted at
// dir, recovering torn tails and interrupted truncations from a crash.
// The zero Options selects 1 MiB segments synced on roll/truncate/close.
func NewSegmentStore(dir string, opts SegmentOptions) (*SegmentStore, error) {
	return segment.Open(dir, opts)
}

// MigrateStore copies the live blocks (and the persisted Genesis
// marker, when src exposes one) of an existing store into a freshly
// opened segment store — the upgrade path from a FileStore directory.
// src is left untouched so the migration can be verified before the old
// directory is deleted.
func MigrateStore(src Store, dst *SegmentStore) error { return segment.Migrate(src, dst) }

// AttachStore mirrors all chain mutations into s (and backfills the
// current live blocks). New code can pass WithStore to New instead.
func AttachStore(c *Chain, s Store) error {
	_, err := store.Attach(c, s)
	return err
}

// OpenStoredChain restores a chain from a store and keeps it mirrored.
func OpenStoredChain(cfg Config, s Store) (*Chain, error) {
	c, _, err := store.OpenChain(cfg, s)
	return c, err
}

// Doctor cross-validates a segment-store directory's durable deletion
// state — DELETIONS manifest, SNAPSHOT checkpoint, MANIFEST marker,
// segment files — and optionally repairs drift; the `seldel doctor`
// subcommand is a thin wrapper around it. Run it against a directory no
// chain has open (check mode is read-only, repair mode is not).
func Doctor(dir string, opts DoctorOptions) (*DoctorReport, error) {
	return doctor.Run(dir, opts)
}

// DoctorPartitioned runs Doctor over every partition store beneath a
// partitioned store root (a NewPartitioned + WithSegmentStore layout:
// PARTITIONS metadata plus p000/, p001/, ... segment stores).
func DoctorPartitioned(root string, opts DoctorOptions) (*PartitionedDoctorReport, error) {
	return doctor.RunPartitioned(root, opts)
}

// IsPartitionedStoreRoot reports whether dir is a partitioned store
// root; `seldel doctor` uses it to pick the aggregated audit.
func IsPartitionedStoreRoot(dir string) bool { return doctor.IsPartitionedRoot(dir) }

// NewAuditLogger builds the login-audit logger of the paper's evaluation
// scenario over an existing chain.
func NewAuditLogger(c *Chain) (*AuditLogger, error) { return audit.NewLogger(c) }

// DecodeLoginEvent parses a chain entry back into a login event.
func DecodeLoginEvent(e *Entry) (LoginEvent, error) { return audit.Decode(e) }

// AuditRenderOptions returns console-render options that decode
// login-event payloads into the "login USER tty ok" style of the paper's
// Figs. 6-8 (other payloads fall back to hex).
func AuditRenderOptions() *RenderOptions {
	return &RenderOptions{
		ShowMarks: true,
		PayloadText: func(p []byte) string {
			probe := &Entry{Kind: block.KindData, Payload: p}
			if ev, err := audit.Decode(probe); err == nil {
				return ev.String()
			}
			return fmt.Sprintf("0x%x", p)
		},
	}
}

// ParseSchema compiles a YAML-subset schema document.
func ParseSchema(src string) (*Schema, error) { return schema.Parse(src) }

// Serving-layer types: the HTTP/2 (h2c) front-end of NewServer and the
// open-loop load-generation primitives behind cmd/seldel-load. See
// docs/ARCHITECTURE.md §9.
type (
	// Server is the HTTP front-end over a chain, partitioned chain, or
	// node: client-signed submits with connection-level batching into
	// the submission pipeline, snapshot-consistent entry pagination,
	// tombstone/proof reads, stats, and admission control that sheds
	// with 429 + Retry-After before the intake queue saturates.
	Server = serve.Server
	// ServerOptions parameterize a Server.
	ServerOptions = serve.Options
	// ServerBackend is what a Server fronts; *Chain, *PartitionedChain,
	// and *Node all satisfy it.
	ServerBackend = serve.Backend
	// AdmissionOptions tune the Server's load shedding.
	AdmissionOptions = serve.AdmissionOptions
	// LoadOptions parameterize one open-loop load run.
	LoadOptions = loadgen.Options
	// LoadSummary is an open-loop run's outcome: offered vs achieved
	// rate, shed/error/drop counts, and scheduled-time latency
	// quantiles (p50/p99/p999).
	LoadSummary = loadgen.Summary
	// LatencyHist is the concurrent HDR-style histogram the load
	// generator records into.
	LatencyHist = loadgen.Hist

	// SubmitRequest is the Server's POST /v1/submit body.
	SubmitRequest = serve.SubmitRequest
	// SubmitResponse is the Server's submit reply (sealed refs with
	// ?wait=1, an acceptance count without).
	SubmitResponse = serve.SubmitResponse
	// EntryJSON is one client-signed entry on the wire.
	EntryJSON = serve.EntryJSON
	// EntryPage is one GET /v1/entries page: entries with refs, the
	// next-page cursor, and the truncation epoch (cut_blocks).
	EntryPage = serve.EntryPage

	// LoadClass is a fire function's verdict about one open-loop request.
	LoadClass = loadgen.Class
)

// Open-loop outcome classes for LoadOptions.Fire.
const (
	LoadOK      = loadgen.OK
	LoadShed    = loadgen.Shed
	LoadErrored = loadgen.Errored
)

// NewEntryJSON converts a signed entry to its wire form for submission
// to a Server.
func NewEntryJSON(e *Entry) EntryJSON { return serve.NewEntryJSON(e) }

// NewServer builds the HTTP front-end over backend (a *Chain,
// *PartitionedChain, or *Node). Close the server to stop its admission
// sampler; closing the backend stays the caller's job.
func NewServer(backend ServerBackend, opts ServerOptions) *Server {
	return serve.New(backend, opts)
}

// RunLoad drives fire open-loop (fixed schedule, scheduled-time
// latency; see internal/loadgen) and reports the run summary.
func RunLoad(ctx context.Context, opts LoadOptions) LoadSummary {
	return loadgen.Run(ctx, opts)
}
