// Package mempool implements the concurrent submission pipeline in front
// of a selective-deletion chain.
//
// Related redactable-chain designs (Deuber et al., Kuperberg) treat both
// writes and deletion requests as operations flowing through a pool of
// pending operations rather than as caller-assembled blocks. This package
// provides that pipeline in two pieces:
//
//   - Batcher coalesces entries from many concurrent producers into full
//     blocks: a dedicated flusher goroutine drains submissions, seals one
//     block per batch through the Ledger, and resolves a Receipt per entry
//     with the final reference, block number, and block hash. A batch is
//     flushed when it reaches the configured size or as soon as the
//     submission stream goes idle (optionally after a short linger that
//     trades latency for larger batches).
//
//   - Pool is the anchor-node pending set: a deduplicating holding area
//     for gossiped entries that are included when the node next proposes
//     a block (internal/node drives it explicitly so cluster simulations
//     stay deterministic).
//
// Entries submitted in one Submit call are kept in the same sealed block,
// so multi-entry invariants ("these records appear together") survive
// coalescing with other producers.
package mempool

import (
	"errors"

	"github.com/seldel/seldel/internal/block"
)

// ErrClosed is returned by Submit after the pipeline has been closed.
var ErrClosed = errors.New("mempool: pipeline closed")

// Ledger is the slice of the chain the batcher seals through. The
// chain package implements it with an internal adapter over its
// sealing primitive.
type Ledger interface {
	// Seal builds, seals, and appends one normal block holding entries
	// (plus any due summary block), returning the appended blocks and,
	// aligned with entries, the mark outcome of each deletion request
	// processed during the append (nil when the batch held none).
	Seal(entries []*block.Entry) ([]*block.Block, []MarkOutcome, error)
	// ValidateEntries checks candidate entries against the live chain
	// state without building a block.
	ValidateEntries(entries []*block.Entry) error
}
