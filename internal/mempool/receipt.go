package mempool

import (
	"context"
	"errors"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
)

// errNoTicket guards against zero-value Receipts, which are not attached
// to any submission.
var errNoTicket = errors.New("mempool: receipt not issued by Submit")

// MarkOutcome reports what a sealed deletion request achieved. The
// paper tolerates invalid requests on-chain ("wrong requests … have no
// further effects", §V), so inclusion alone says nothing — the outcome
// rides on the receipt, sparing clients an IsMarked poll after sealing.
type MarkOutcome uint8

const (
	// MarkNone: the entry was not a deletion request.
	MarkNone MarkOutcome = iota
	// MarkApproved: the request passed authorization and its target now
	// carries a deletion mark (physical deletion follows at the next
	// marker shift).
	MarkApproved
	// MarkRejected: the request was included but had no effect — the
	// target is unknown, authorization failed, or cohesion vetoed it.
	MarkRejected
)

// String returns "none", "approved", or "rejected".
func (m MarkOutcome) String() string {
	switch m {
	case MarkApproved:
		return "approved"
	case MarkRejected:
		return "rejected"
	default:
		return "none"
	}
}

// Sealed is the resolution of a successful submission: where the entry
// ended up once its block was sealed and appended.
type Sealed struct {
	// Ref is the entry's stable reference (origin block, entry number);
	// it survives migration into summary blocks.
	Ref block.Ref
	// Block is the number of the sealed block holding the entry.
	Block uint64
	// BlockHash is the hash of that block.
	BlockHash codec.Hash
	// Mark is the deletion-request outcome: MarkApproved or MarkRejected
	// for deletion entries, MarkNone otherwise.
	Mark MarkOutcome
}

// Receipt tracks one submitted entry through the pipeline. It resolves
// exactly once: either to a Sealed result or to a per-entry error (e.g.
// a validation failure that removed the entry from its batch). Receipts
// are small values and safe to copy and share across goroutines.
type Receipt struct {
	t *ticket
}

// ticket is the shared resolution state behind a Receipt. The result
// fields are written exactly once before done is closed; readers access
// them only after observing the close, which establishes the necessary
// happens-before edge.
type ticket struct {
	done   chan struct{}
	sealed Sealed
	err    error
}

func newTicket() *ticket { return &ticket{done: make(chan struct{})} }

func (t *ticket) resolve(s Sealed) {
	t.sealed = s
	close(t.done)
}

func (t *ticket) fail(err error) {
	t.err = err
	close(t.done)
}

// Done returns a channel that is closed once the receipt has resolved.
func (r Receipt) Done() <-chan struct{} {
	if r.t == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return r.t.done
}

// Resolved reports whether the receipt has already resolved.
func (r Receipt) Resolved() bool {
	if r.t == nil {
		return false
	}
	select {
	case <-r.t.done:
		return true
	default:
		return false
	}
}

// Err returns the per-entry failure, nil on success, and nil while the
// receipt is still pending (check Resolved or Done to distinguish).
func (r Receipt) Err() error {
	if r.t == nil {
		return errNoTicket
	}
	select {
	case <-r.t.done:
		return r.t.err
	default:
		return nil
	}
}

// Wait blocks until the receipt resolves or ctx is done, returning the
// sealed result or the first error.
func (r Receipt) Wait(ctx context.Context) (Sealed, error) {
	if r.t == nil {
		return Sealed{}, errNoTicket
	}
	select {
	case <-r.t.done:
		return r.t.sealed, r.t.err
	case <-ctx.Done():
		return Sealed{}, ctx.Err()
	}
}
