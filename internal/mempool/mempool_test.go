package mempool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

// fakeLedger seals batches by recording them; entries whose payload is
// "bad" fail both batch commit and stand-alone validation, a sealErr,
// when set, fails every commit without blaming any entry, and
// failCommits fails that many commits with a transient head-race error.
type fakeLedger struct {
	mu          sync.Mutex
	batches     [][]*block.Entry
	next        uint64
	sealErr     error
	failCommits int
	// partialErr is returned alongside the appended block, modelling a
	// Commit whose normal block sealed but whose summary step failed.
	partialErr error
}

var errHeadMoved = errors.New("fake: head moved")

var errBadEntry = errors.New("fake: bad entry")

func (f *fakeLedger) validate(e *block.Entry) error {
	if string(e.Payload) == "bad" {
		return errBadEntry
	}
	return nil
}

func (f *fakeLedger) Seal(entries []*block.Entry) ([]*block.Block, []MarkOutcome, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealErr != nil {
		return nil, nil, f.sealErr
	}
	if f.failCommits > 0 {
		f.failCommits--
		return nil, nil, errHeadMoved
	}
	for _, e := range entries {
		if err := f.validate(e); err != nil {
			return nil, nil, err
		}
	}
	f.next++
	f.batches = append(f.batches, append([]*block.Entry(nil), entries...))
	b := block.NewNormal(f.next, f.next, block.GenesisPrevHash, entries)
	return []*block.Block{b}, nil, f.partialErr
}

func (f *fakeLedger) ValidateEntries(entries []*block.Entry) error {
	for _, e := range entries {
		if err := f.validate(e); err != nil {
			return err
		}
	}
	return nil
}

func entry(payload string) *block.Entry {
	return block.NewData("owner", []byte(payload))
}

func TestBatcherResolvesReceipts(t *testing.T) {
	led := &fakeLedger{}
	b := NewBatcher(led, Options{})
	defer b.Close()
	receipts, err := b.Submit(context.Background(), entry("a"), entry("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(receipts) != 2 {
		t.Fatalf("got %d receipts", len(receipts))
	}
	for i, r := range receipts {
		sealed, err := r.Wait(context.Background())
		if err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
		if sealed.Ref.Entry != uint32(i) {
			t.Errorf("receipt %d: ref entry %d", i, sealed.Ref.Entry)
		}
		if sealed.Block != sealed.Ref.Block {
			t.Errorf("receipt %d: block %d != ref block %d", i, sealed.Block, sealed.Ref.Block)
		}
	}
	// One Submit call seals as one block.
	led.mu.Lock()
	defer led.mu.Unlock()
	if len(led.batches) != 1 || len(led.batches[0]) != 2 {
		t.Errorf("batches = %v", led.batches)
	}
}

func TestBatcherGroupsStayTogether(t *testing.T) {
	led := &fakeLedger{}
	b := NewBatcher(led, Options{MaxBatch: 4})
	defer b.Close()
	var wg sync.WaitGroup
	var allReceipts [][]Receipt
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rs, err := b.Submit(context.Background(),
				entry(fmt.Sprintf("g%d-0", g)), entry(fmt.Sprintf("g%d-1", g)), entry(fmt.Sprintf("g%d-2", g)))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			allReceipts = append(allReceipts, rs)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	for _, rs := range allReceipts {
		first, err := rs[0].Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs[1:] {
			s, err := r.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if s.Block != first.Block {
				t.Errorf("group split across blocks %d and %d", first.Block, s.Block)
			}
		}
	}
}

func TestBatcherRejectsBadEntryKeepsRest(t *testing.T) {
	led := &fakeLedger{}
	b := NewBatcher(led, Options{})
	defer b.Close()
	receipts, err := b.Submit(context.Background(), entry("ok1"), entry("bad"), entry("ok2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := receipts[0].Wait(context.Background()); err != nil {
		t.Errorf("good entry failed: %v", err)
	}
	if _, err := receipts[1].Wait(context.Background()); !errors.Is(err, errBadEntry) {
		t.Errorf("bad entry error = %v", err)
	}
	if _, err := receipts[2].Wait(context.Background()); err != nil {
		t.Errorf("good entry failed: %v", err)
	}
	st := b.Stats()
	if st.Rejected != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBatcherBatchLevelFailureFailsAll(t *testing.T) {
	sealErr := errors.New("fake: seal broken")
	led := &fakeLedger{sealErr: sealErr}
	b := NewBatcher(led, Options{})
	defer b.Close()
	receipts, err := b.Submit(context.Background(), entry("x"), entry("y"))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range receipts {
		if _, err := r.Wait(context.Background()); !errors.Is(err, sealErr) {
			t.Errorf("receipt %d: err = %v", i, err)
		}
	}
}

func TestBatcherCloseFlushesAndRejectsNewSubmits(t *testing.T) {
	led := &fakeLedger{}
	b := NewBatcher(led, Options{})
	receipts, err := b.Submit(context.Background(), entry("last"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-receipts[0].Done():
	default:
		t.Error("in-flight receipt did not resolve on Close")
	}
	if _, err := b.Submit(context.Background(), entry("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestBatcherSubmitContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	led := &fakeLedger{}
	b := NewBatcher(led, Options{})
	defer b.Close()
	// Fill the intake so the send path must consult ctx... a cancelled
	// ctx either enqueues nothing or wins the race; both are valid, but
	// an error must be ctx.Err.
	if _, err := b.Submit(ctx, entry("z")); err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestBatcherLingerCoalesces(t *testing.T) {
	led := &fakeLedger{}
	b := NewBatcher(led, Options{MaxBatch: 1024, Linger: 50 * time.Millisecond})
	defer b.Close()
	var rs []Receipt
	for i := 0; i < 5; i++ {
		r, err := b.Submit(context.Background(), entry(fmt.Sprintf("l%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r...)
		time.Sleep(time.Millisecond)
	}
	for _, r := range rs {
		if _, err := r.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	led.mu.Lock()
	defer led.mu.Unlock()
	if len(led.batches) > 2 {
		t.Errorf("linger did not coalesce: %d batches for 5 trickled entries", len(led.batches))
	}
}

func TestBatcherEmptySubmit(t *testing.T) {
	b := NewBatcher(&fakeLedger{}, Options{})
	defer b.Close()
	receipts, err := b.Submit(context.Background())
	if err != nil || receipts != nil {
		t.Errorf("empty submit = %v, %v", receipts, err)
	}
}

func TestZeroReceipt(t *testing.T) {
	var r Receipt
	if err := r.Err(); err == nil {
		t.Error("zero receipt Err() = nil")
	}
	if _, err := r.Wait(context.Background()); err == nil {
		t.Error("zero receipt Wait() = nil error")
	}
	if r.Resolved() {
		t.Error("zero receipt reports resolved")
	}
}

func TestPoolDedupAndDeterministicOrder(t *testing.T) {
	kp := identity.Deterministic("owner", "pool-test")
	p := NewPool()
	e1 := block.NewData("owner", []byte("one")).Sign(kp)
	e2 := block.NewData("owner", []byte("two")).Sign(kp)
	if !p.Add(e1) || !p.Add(e2) {
		t.Fatal("fresh entries rejected")
	}
	if p.Add(e1) {
		t.Error("duplicate accepted")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	got := p.Take()
	if len(got) != 2 {
		t.Fatalf("Take returned %d", len(got))
	}
	h0, h1 := got[0].Hash(), got[1].Hash()
	if string(h0[:]) >= string(h1[:]) {
		t.Error("Take order not hash-sorted")
	}
	if p.Len() != 0 {
		t.Error("pool not drained")
	}
	// Still deduplicated after Take (inclusion memory).
	if p.Add(e1) {
		t.Error("entry re-accepted after Take")
	}
}

func TestPoolRemove(t *testing.T) {
	kp := identity.Deterministic("owner", "pool-test")
	p := NewPool()
	e1 := block.NewData("owner", []byte("a")).Sign(kp)
	e2 := block.NewData("owner", []byte("b")).Sign(kp)
	p.Add(e1)
	p.Add(e2)
	p.Remove([]*block.Entry{e1})
	if p.Len() != 1 {
		t.Errorf("Len = %d after Remove", p.Len())
	}
	left := p.Take()
	if len(left) != 1 || left[0].Hash() != e2.Hash() {
		t.Error("wrong entry removed")
	}
}

func TestBatcherRetriesTransientBatchFailure(t *testing.T) {
	// A head race with a concurrent direct committer fails Commit twice
	// while every entry still validates; the flusher must retry and the
	// receipts must resolve successfully.
	led := &fakeLedger{failCommits: 2}
	b := NewBatcher(led, Options{})
	defer b.Close()
	receipts, err := b.Submit(context.Background(), entry("racy"))
	if err != nil {
		t.Fatal(err)
	}
	deadline, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := receipts[0].Wait(deadline); err != nil {
		t.Fatalf("receipt failed despite transient error: %v", err)
	}
}

func TestBatcherPartialCommitDoesNotDoubleSeal(t *testing.T) {
	// Commit appended the normal block but reports a summary-step error:
	// the entries are on-chain, so the receipts must resolve to that
	// block and the batch must NOT be committed a second time.
	led := &fakeLedger{partialErr: errors.New("fake: summary race lost")}
	b := NewBatcher(led, Options{})
	defer b.Close()
	receipts, err := b.Submit(context.Background(), entry("once"))
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := receipts[0].Wait(context.Background())
	if err != nil {
		t.Fatalf("receipt failed on partial commit: %v", err)
	}
	led.mu.Lock()
	defer led.mu.Unlock()
	if len(led.batches) != 1 {
		t.Fatalf("batch sealed %d times, want 1", len(led.batches))
	}
	if sealed.Block != 1 {
		t.Errorf("sealed block = %d, want the appended block 1", sealed.Block)
	}
}
