package mempool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/seldel/seldel/internal/block"
)

// DefaultMaxBatch is the flush threshold used when Options.MaxBatch is 0.
const DefaultMaxBatch = 256

// errLedgerContract flags a Ledger.Commit that returned neither blocks
// nor an error.
var errLedgerContract = errors.New("mempool: ledger returned no blocks and no error")

// Options parameterize a Batcher.
type Options struct {
	// MaxBatch is the soft flush threshold: a batch is sealed once it
	// holds at least this many entries. One Submit call's entries always
	// stay together, so a single oversized call may exceed it.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// Linger bounds how long the flusher waits for more submissions once
	// it holds a non-full batch. 0 flushes as soon as the submission
	// stream goes idle, which maximizes throughput under load and
	// minimizes latency when traffic is light.
	Linger time.Duration
}

// group is the unit of submission: all entries of one Submit call, each
// paired with its resolution ticket.
type group struct {
	entries []*block.Entry
	tickets []*ticket
}

// Stats are cumulative pipeline counters.
type Stats struct {
	// Batches counts sealed batches (one normal block each).
	Batches uint64
	// Entries counts entries that resolved successfully.
	Entries uint64
	// Rejected counts entries whose receipts resolved with an error.
	Rejected uint64
}

// Batcher coalesces concurrently submitted entries into blocks. All
// sealing goes through a single flusher goroutine, so producers never
// contend on the chain lock and blocks are packed as full as the offered
// load allows.
type Batcher struct {
	ledger   Ledger
	maxBatch int
	linger   time.Duration

	// mu guards closed; Submit holds it shared for the duration of its
	// channel sends so Close (exclusive) cannot observe closed=true while
	// a send is still in flight.
	mu     sync.RWMutex
	closed bool

	ch   chan group
	quit chan struct{}
	done chan struct{}

	batches  atomic.Uint64
	entries  atomic.Uint64
	rejected atomic.Uint64
}

// NewBatcher starts a pipeline sealing through ledger.
func NewBatcher(ledger Ledger, opts Options) *Batcher {
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	// The intake buffer holds at least one full batch of single-entry
	// groups, so a sealed batch can reach MaxBatch even when every
	// producer submits one entry at a time.
	depth := maxBatch
	if depth < 64 {
		depth = 64
	}
	b := &Batcher{
		ledger:   ledger,
		maxBatch: maxBatch,
		linger:   opts.Linger,
		ch:       make(chan group, depth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit enqueues entries for inclusion in an upcoming block and returns
// one Receipt per entry, in order. It blocks only while the pipeline's
// intake is full; the receipts resolve asynchronously once the entries'
// block is sealed. All entries of one call are sealed in the same block.
// Entries must already be signed, and any references they depend on must
// already be committed (in-flight dependencies are not resolved within a
// batch).
//
// On ctx cancellation nothing has been enqueued and the error is
// ctx.Err(); after Close it is ErrClosed.
func (b *Batcher) Submit(ctx context.Context, entries ...*block.Entry) ([]Receipt, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	g := group{
		entries: append([]*block.Entry(nil), entries...),
		tickets: make([]*ticket, len(entries)),
	}
	receipts := make([]Receipt, len(entries))
	for i := range entries {
		t := newTicket()
		g.tickets[i] = t
		receipts[i] = Receipt{t: t}
	}
	select {
	case b.ch <- g:
		return receipts, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the intake, flushes every submission already accepted (all
// their receipts resolve), and waits for the flusher to exit. It is
// idempotent.
func (b *Batcher) Close() error {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.quit)
	}
	<-b.done
	return nil
}

// Stats returns cumulative pipeline counters.
func (b *Batcher) Stats() Stats {
	return Stats{
		Batches:  b.batches.Load(),
		Entries:  b.entries.Load(),
		Rejected: b.rejected.Load(),
	}
}

// run is the flusher goroutine: it blocks for the first group, greedily
// drains everything else that is already queued (up to the batch
// threshold), and seals the batch as one block.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		select {
		case g := <-b.ch:
			b.flush(b.collect(g))
		case <-b.quit:
			// Drain the intake: Close set closed under the exclusive
			// lock, so no Submit is or will be sending anymore.
			for {
				select {
				case g := <-b.ch:
					b.flush(b.collect(g))
				default:
					return
				}
			}
		}
	}
}

// collect grows a batch from the first group until the threshold is
// reached or the intake goes idle (after at most one linger period).
func (b *Batcher) collect(first group) []group {
	batch := []group{first}
	size := len(first.entries)
	var lingerC <-chan time.Time
	if b.linger > 0 {
		timer := time.NewTimer(b.linger)
		defer timer.Stop()
		lingerC = timer.C
	}
	for size < b.maxBatch {
		select {
		case g := <-b.ch:
			batch = append(batch, g)
			size += len(g.entries)
		default:
			if lingerC == nil {
				return batch
			}
			select {
			case g := <-b.ch:
				batch = append(batch, g)
				size += len(g.entries)
			case <-lingerC:
				return batch
			}
		}
	}
	return batch
}

// maxFlushRetries bounds re-commits of a batch whose entries all still
// validate. One retry absorbs a head race with a concurrent Commit
// caller (e.g. a retention ticker appending empty blocks); the bound
// keeps a persistent batch-level failure (a broken sealer) from looping.
const maxFlushRetries = 3

// flush seals one batch as a single normal block and resolves its
// receipts. When the commit fails, entries that fail stand-alone
// validation are rejected through their receipts and the remainder is
// retried, so one bad entry cannot poison a batch. A failure with no
// offending entry is retried a bounded number of times (the chain's
// Commit primitive can lose a head race against concurrent direct
// committers and succeed verbatim on retry) before failing the batch.
func (b *Batcher) flush(batch []group) {
	retries := 0
	for len(batch) > 0 {
		var entries []*block.Entry
		var tickets []*ticket
		for _, g := range batch {
			entries = append(entries, g.entries...)
			tickets = append(tickets, g.tickets...)
		}
		blocks, err := b.ledger.Commit(entries)
		if len(blocks) > 0 {
			// The normal block holding the batch was appended — the
			// entries are on-chain even if err reports a later failure
			// (e.g. the summary step lost a race to a concurrent direct
			// committer, who appended the identical summary). Retrying
			// would seal duplicates, so resolve the receipts now.
			sealed := blocks[0]
			num, hash := sealed.Header.Number, sealed.Hash()
			for i, t := range tickets {
				t.resolve(Sealed{
					Ref:       block.Ref{Block: num, Entry: uint32(i)},
					Block:     num,
					BlockHash: hash,
				})
			}
			b.batches.Add(1)
			b.entries.Add(uint64(len(entries)))
			return
		}
		if err == nil {
			// Defensive: a ledger must return blocks or an error.
			for _, t := range tickets {
				t.fail(errLedgerContract)
			}
			return
		}
		kept := batch[:0]
		rejected := false
		for _, g := range batch {
			okEntries := g.entries[:0]
			okTickets := g.tickets[:0]
			for i, e := range g.entries {
				if verr := b.ledger.ValidateEntries([]*block.Entry{e}); verr != nil {
					g.tickets[i].fail(verr)
					rejected = true
					continue
				}
				okEntries = append(okEntries, e)
				okTickets = append(okTickets, g.tickets[i])
			}
			if len(okEntries) > 0 {
				kept = append(kept, group{entries: okEntries, tickets: okTickets})
			}
		}
		if !rejected {
			if retries < maxFlushRetries {
				retries++
				batch = kept
				continue
			}
			n := 0
			for _, g := range kept {
				for _, t := range g.tickets {
					t.fail(err)
					n++
				}
			}
			b.rejected.Add(uint64(n))
			return
		}
		b.rejected.Add(uint64(len(entries) - groupLen(kept)))
		batch = kept
	}
}

func groupLen(batch []group) int {
	n := 0
	for _, g := range batch {
		n += len(g.entries)
	}
	return n
}
