package mempool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/verify"
)

// DefaultMaxBatch is the flush threshold used when Options.MaxBatch is 0.
const DefaultMaxBatch = 256

// maxAutoLinger caps the adaptive linger so a mis-measured flush (a cold
// proof-of-work seal, a disk stall) never turns into a visible stall of
// the pipeline.
const maxAutoLinger = 5 * time.Millisecond

// errLedgerContract flags a Ledger.Seal that returned neither blocks
// nor an error.
var errLedgerContract = errors.New("mempool: ledger returned no blocks and no error")

// Options parameterize a Batcher.
type Options struct {
	// MaxBatch is the soft flush threshold: a batch is sealed once it
	// holds at least this many entries. One Submit call's entries always
	// stay together, so a single oversized call may exceed it.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// Linger bounds how long the flusher waits for more submissions once
	// it holds a non-full batch. 0 selects adaptive lingering: while the
	// stream is idle the flusher seals immediately (lowest latency), but
	// once concurrent producers actually coalesce, the linger is derived
	// from the observed flush latency — waiting about one flush worth of
	// time costs little and stops per-entry waiters on a loaded chain
	// from sealing near-empty blocks.
	Linger time.Duration
	// Warm, when set, is called with each submitted group's entries so
	// their signatures pre-verify (and populate the verified-signature
	// cache) while the batch is still being assembled. Failures are
	// ignored here; sealing re-validates authoritatively.
	Warm func(entries []*block.Entry)
	// Durable, when set, defers receipt resolution to the durability
	// point: after a successful seal the batch's resolution closure is
	// handed to Durable instead of running inline, and the installed
	// committer must run every closure exactly once — with nil once the
	// sealed blocks reached stable storage (receipts resolve), or with
	// the sync failure (receipts fail). Sealing is not delayed; only
	// the receipts are.
	Durable func(resolve func(err error))
}

// group is the unit of submission: all entries of one Submit call, each
// paired with its resolution ticket.
type group struct {
	entries []*block.Entry
	tickets []*ticket
}

// singleSubmission backs a one-entry Submit with a single allocation:
// the group's slices, the caller's receipt slice, and the ticket all
// point into this struct.
type singleSubmission struct {
	t        ticket
	entries  [1]*block.Entry
	tickets  [1]*ticket
	receipts [1]Receipt
}

// Stats are pipeline counters and backpressure gauges.
type Stats struct {
	// Batches counts sealed batches (one normal block each).
	Batches uint64
	// Entries counts entries that resolved successfully.
	Entries uint64
	// Rejected counts entries whose receipts resolved with an error.
	Rejected uint64
	// QueueDepth is the number of submission groups waiting in the
	// intake queue right now; QueueDepth near QueueCap means producers
	// are about to block (backpressure).
	QueueDepth int
	// QueueCap is the intake queue capacity.
	QueueCap int
	// AutoLinger is the linger the adaptive tuner is currently applying
	// (zero while idle, when disabled, or when a fixed Linger is set).
	AutoLinger time.Duration
	// Verify is the verification pool's activity snapshot — utilization
	// and cache effectiveness. Filled by Chain.PipelineStats; zero for a
	// bare Batcher, which does not own a pool.
	Verify verify.Stats
	// Compaction is the background compactor's activity snapshot —
	// pending truncations and blocks/bytes physically reclaimed off the
	// append path. Filled by Chain.PipelineStats; zero for a bare
	// Batcher, which does not own a compactor.
	Compaction compact.Stats
	// Index is the chain's entry-index map occupancy gauge. Filled by
	// Chain.PipelineStats; zero for a bare Batcher.
	Index IndexStats
}

// QueueFraction is the intake queue's fullness in [0,1]: QueueDepth
// over QueueCap, 0 when the pipeline has not started. Admission
// controllers shed ingress when it approaches 1 — producers are then
// about to block on the intake, which is the overload signal a serving
// front-end must answer with backpressure (429) instead of queueing.
func (s Stats) QueueFraction() float64 {
	if s.QueueCap <= 0 {
		return 0
	}
	return float64(s.QueueDepth) / float64(s.QueueCap)
}

// IndexStats describe the chain's entry-index map: Go maps never
// release buckets, so after a large cut Live can be a small fraction of
// the capacity Peak implies — the compactor then rebuilds the map
// (Rebuilds counts those shrinks).
type IndexStats struct {
	// Live is the number of entries currently indexed.
	Live int
	// Peak is the high-water entry count since the last rebuild — a
	// proxy for the bucket capacity the map is holding on to.
	Peak int
	// Rebuilds counts shrink rebuilds performed by the compactor.
	Rebuilds uint64
}

// Batcher coalesces concurrently submitted entries into blocks. All
// sealing goes through a single flusher goroutine, so producers never
// contend on the chain lock and blocks are packed as full as the offered
// load allows.
type Batcher struct {
	ledger   Ledger
	maxBatch int
	linger   time.Duration
	warm     func([]*block.Entry)
	durable  func(func(error))

	// mu guards closed; Submit holds it shared for the duration of its
	// channel sends so Close (exclusive) cannot observe closed=true while
	// a send is still in flight.
	mu     sync.RWMutex
	closed bool

	ch   chan group
	quit chan struct{}
	done chan struct{}

	// Adaptive-linger state, owned by the flusher goroutine: an EMA of
	// flush latency and whether the last batch showed actual coalescing
	// (≥2 groups sealed together, or groups already queued behind it).
	flushEMA time.Duration
	loaded   bool

	batches    atomic.Uint64
	entries    atomic.Uint64
	rejected   atomic.Uint64
	autoLinger atomic.Int64
}

// NewBatcher starts a pipeline sealing through ledger.
func NewBatcher(ledger Ledger, opts Options) *Batcher {
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	// The intake buffer holds at least one full batch of single-entry
	// groups, so a sealed batch can reach MaxBatch even when every
	// producer submits one entry at a time.
	depth := maxBatch
	if depth < 64 {
		depth = 64
	}
	b := &Batcher{
		ledger:   ledger,
		maxBatch: maxBatch,
		linger:   opts.Linger,
		warm:     opts.Warm,
		durable:  opts.Durable,
		ch:       make(chan group, depth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit enqueues entries for inclusion in an upcoming block and returns
// one Receipt per entry, in order. It blocks only while the pipeline's
// intake is full; the receipts resolve asynchronously once the entries'
// block is sealed. All entries of one call are sealed in the same block.
// Entries must already be signed, and any references they depend on must
// already be committed (in-flight dependencies are not resolved within a
// batch).
//
// On ctx cancellation nothing has been enqueued and the error is
// ctx.Err(); after Close it is ErrClosed.
func (b *Batcher) Submit(ctx context.Context, entries ...*block.Entry) ([]Receipt, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	var g group
	var receipts []Receipt
	if len(entries) == 1 {
		// The dominant shape — one producer, one entry per call — packs
		// every per-submit allocation into a single object: the ticket
		// and the backing arrays of the group's and the caller's slices.
		s := &singleSubmission{}
		s.t.done = make(chan struct{})
		s.entries[0] = entries[0]
		s.tickets[0] = &s.t
		s.receipts[0] = Receipt{t: &s.t}
		g = group{entries: s.entries[:], tickets: s.tickets[:]}
		receipts = s.receipts[:]
	} else {
		g = group{
			entries: append([]*block.Entry(nil), entries...),
			tickets: make([]*ticket, len(entries)),
		}
		receipts = make([]Receipt, len(entries))
		for i := range entries {
			t := newTicket()
			g.tickets[i] = t
			receipts[i] = Receipt{t: t}
		}
	}
	if b.warm != nil {
		// Pre-verify while the group waits for its batch: the warm hook
		// dispatches to the verification pool and returns immediately
		// (or helps verify inline when the pool is saturated), so the
		// sealing flush later resolves the same signatures from cache.
		b.warm(g.entries)
	}
	select {
	case b.ch <- g:
		return receipts, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops the intake, flushes every submission already accepted (all
// their receipts resolve), and waits for the flusher to exit. It is
// idempotent.
func (b *Batcher) Close() error {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.quit)
	}
	<-b.done
	return nil
}

// Stats returns the pipeline counters and backpressure gauges.
func (b *Batcher) Stats() Stats {
	return Stats{
		Batches:    b.batches.Load(),
		Entries:    b.entries.Load(),
		Rejected:   b.rejected.Load(),
		QueueDepth: len(b.ch),
		QueueCap:   cap(b.ch),
		AutoLinger: time.Duration(b.autoLinger.Load()),
	}
}

// run is the flusher goroutine: it blocks for the first group, greedily
// drains everything else that is already queued (up to the batch
// threshold), and seals the batch as one block.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		select {
		case g := <-b.ch:
			b.flush(b.collect(g))
		case <-b.quit:
			// Drain the intake: Close set closed under the exclusive
			// lock, so no Submit is or will be sending anymore.
			for {
				select {
				case g := <-b.ch:
					b.flush(b.collect(g))
				default:
					return
				}
			}
		}
	}
}

// effectiveLinger returns the linger to apply to the next batch: the
// fixed configuration when set, otherwise the adaptive value — one
// observed flush latency, but only while producers demonstrably
// coalesce. A lone producer that waits for each receipt never trips the
// load detector, so light traffic keeps its immediate-flush latency.
func (b *Batcher) effectiveLinger() time.Duration {
	if b.linger > 0 {
		return b.linger
	}
	if !b.loaded {
		b.autoLinger.Store(0)
		return 0
	}
	linger := b.flushEMA
	if linger > maxAutoLinger {
		linger = maxAutoLinger
	}
	b.autoLinger.Store(int64(linger))
	return linger
}

// collect grows a batch from the first group until the threshold is
// reached or the intake goes idle (after at most one linger period).
func (b *Batcher) collect(first group) []group {
	batch := []group{first}
	size := len(first.entries)
	var lingerC <-chan time.Time
	if linger := b.effectiveLinger(); linger > 0 {
		timer := time.NewTimer(linger)
		defer timer.Stop()
		lingerC = timer.C
	}
	for size < b.maxBatch {
		select {
		case g := <-b.ch:
			batch = append(batch, g)
			size += len(g.entries)
		default:
			if lingerC == nil {
				return batch
			}
			select {
			case g := <-b.ch:
				batch = append(batch, g)
				size += len(g.entries)
			case <-lingerC:
				return batch
			}
		}
	}
	return batch
}

// maxFlushRetries bounds re-seals of a batch whose entries all still
// validate. One retry absorbs a head race with a concurrent direct
// appender (e.g. a retention ticker appending empty blocks); the bound
// keeps a persistent batch-level failure (a broken sealer) from looping.
const maxFlushRetries = 3

// flush seals one batch as a single normal block and resolves its
// receipts. When the commit fails, entries that fail stand-alone
// validation are rejected through their receipts and the remainder is
// retried, so one bad entry cannot poison a batch. A failure with no
// offending entry is retried a bounded number of times (the chain's
// sealing primitive can lose a head race against concurrent direct
// appenders and succeed verbatim on retry) before failing the batch.
func (b *Batcher) flush(batch []group) {
	// Feed the adaptive linger: remember how long sealing takes (EMA,
	// weighted 3:1 toward history) and whether this batch showed real
	// coalescing — more than one group sealed together, or groups
	// already queued behind it.
	start := time.Now()
	groupsIn := len(batch)
	defer func() {
		d := time.Since(start)
		if b.flushEMA == 0 {
			b.flushEMA = d
		} else {
			b.flushEMA = (3*b.flushEMA + d) / 4
		}
		b.loaded = groupsIn > 1 || len(b.ch) > 0
	}()
	retries := 0
	for len(batch) > 0 {
		var entries []*block.Entry
		var tickets []*ticket
		for _, g := range batch {
			entries = append(entries, g.entries...)
			tickets = append(tickets, g.tickets...)
		}
		blocks, outcomes, err := b.ledger.Seal(entries)
		if len(blocks) > 0 {
			// The normal block holding the batch was appended — the
			// entries are on-chain even if err reports a later failure
			// (e.g. the summary step lost a race to a concurrent direct
			// committer, who appended the identical summary). Retrying
			// would seal duplicates, so resolve the receipts now.
			sealed := blocks[0]
			num, hash := sealed.Header.Number, sealed.Hash()
			resolve := func(syncErr error) {
				if syncErr != nil {
					// The blocks sealed but never became durable (the
					// group fsync failed): receipts must not claim
					// durability, so they fail with the sync error.
					for _, t := range tickets {
						t.fail(syncErr)
					}
					b.rejected.Add(uint64(len(tickets)))
					return
				}
				for i, t := range tickets {
					mark := MarkNone
					if i < len(outcomes) {
						mark = outcomes[i]
					}
					t.resolve(Sealed{
						Ref:       block.Ref{Block: num, Entry: uint32(i)},
						Block:     num,
						BlockHash: hash,
						Mark:      mark,
					})
				}
				b.entries.Add(uint64(len(tickets)))
			}
			b.batches.Add(1)
			if b.durable != nil {
				b.durable(resolve)
			} else {
				resolve(nil)
			}
			return
		}
		if err == nil {
			// Defensive: a ledger must return blocks or an error.
			for _, t := range tickets {
				t.fail(errLedgerContract)
			}
			return
		}
		kept := batch[:0]
		rejected := false
		for _, g := range batch {
			okEntries := g.entries[:0]
			okTickets := g.tickets[:0]
			for i, e := range g.entries {
				if verr := b.ledger.ValidateEntries([]*block.Entry{e}); verr != nil {
					g.tickets[i].fail(verr)
					rejected = true
					continue
				}
				okEntries = append(okEntries, e)
				okTickets = append(okTickets, g.tickets[i])
			}
			if len(okEntries) > 0 {
				kept = append(kept, group{entries: okEntries, tickets: okTickets})
			}
		}
		if !rejected {
			if retries < maxFlushRetries {
				retries++
				batch = kept
				continue
			}
			n := 0
			for _, g := range kept {
				for _, t := range g.tickets {
					t.fail(err)
					n++
				}
			}
			b.rejected.Add(uint64(n))
			return
		}
		b.rejected.Add(uint64(len(entries) - groupLen(kept)))
		batch = kept
	}
}

func groupLen(batch []group) int {
	n := 0
	for _, g := range batch {
		n += len(g.entries)
	}
	return n
}
