package mempool

import (
	"sort"
	"sync"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
)

// Pool is the deduplicating pending set of an anchor node: entries
// received from clients and peers wait here until the node proposes its
// next block. Entries are deduplicated by content hash for the lifetime
// of the pool, so re-gossiped entries are ignored even after inclusion.
// It is safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	pending []*block.Entry
	seen    map[codec.Hash]bool
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{seen: make(map[codec.Hash]bool)}
}

// Add queues an entry unless its content hash was already seen. It
// reports whether the entry was added. Shape and signature checks are
// the caller's responsibility (the node validates against its registry
// before pooling).
func (p *Pool) Add(e *block.Entry) bool {
	h := e.Hash()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen[h] {
		return false
	}
	p.seen[h] = true
	p.pending = append(p.pending, e)
	return true
}

// Len returns the number of pending entries.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Take removes and returns every pending entry in deterministic
// content-hash order, so all anchor nodes propose identical blocks from
// identical pools.
func (p *Pool) Take() []*block.Entry {
	p.mu.Lock()
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool {
		hi, hj := pending[i].Hash(), pending[j].Hash()
		return string(hi[:]) < string(hj[:])
	})
	return pending
}

// Requeue re-inserts entries that were taken but could not be sealed
// (e.g. the proposal lost to a pending summary vote), so they are not
// lost to the dedup set: Take handed them out, so they are no longer
// pending, while seen still lists them and Add would refuse them.
func (p *Pool) Requeue(entries []*block.Entry) {
	if len(entries) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range entries {
		p.seen[e.Hash()] = true
		p.pending = append(p.pending, e)
	}
}

// Remove drops pending entries that appear in included (by content
// hash), typically because another node's proposed block carried them.
func (p *Pool) Remove(included []*block.Entry) {
	if len(included) == 0 {
		return
	}
	drop := make(map[codec.Hash]bool, len(included))
	for _, e := range included {
		drop[e.Hash()] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.pending[:0]
	for _, e := range p.pending {
		if !drop[e.Hash()] {
			kept = append(kept, e)
		}
	}
	p.pending = kept
}
