// Package store persists the live suffix of a selective-deletion chain.
//
// The paper's central promise is that cut-off sequences are physically
// deleted ("the old sequence can be cut off and deleted from the
// blockchain", §IV-C). The file store therefore keeps one file per block
// and deletes files on truncation, so reclaimed disk space is directly
// observable — the growth experiments (E4) measure it.
package store

import (
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/seldel/seldel/internal/block"
)

// Errors returned by stores.
var (
	ErrNotFound = errors.New("store: block not found")
	ErrClosed   = errors.New("store: closed")
)

// Store persists blocks and the Genesis marker.
type Store interface {
	// PutBlock persists a block (idempotent per block number).
	PutBlock(b *block.Block) error
	// GetBlock loads the block with the given number.
	GetBlock(num uint64) (*block.Block, error)
	// DeleteBelow removes every block with number < marker and persists
	// marker as the new Genesis marker.
	DeleteBelow(marker uint64) error
	// Range returns the numbers of the first and last stored block.
	// ok is false when the store is empty.
	Range() (first, last uint64, ok bool, err error)
	// LoadAll returns all stored blocks in ascending number order.
	LoadAll() ([]*block.Block, error)
	// Stream yields the stored blocks in ascending number order, one
	// decoded block at a time, so a restore never materializes the
	// whole persisted chain's raw bytes at once. Iteration stops at
	// the first yielded error.
	Stream() iter.Seq2[*block.Block, error]
	// SizeBytes returns the total persisted payload size.
	SizeBytes() (int64, error)
	// Close releases resources.
	Close() error
}

// Mem is an in-memory Store, used by simulations and tests.
type Mem struct {
	mu     sync.RWMutex
	blocks map[uint64][]byte
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blocks: make(map[uint64][]byte)}
}

// PutBlock implements Store.
func (m *Mem) PutBlock(b *block.Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.blocks[b.Header.Number] = b.Encode()
	return nil
}

// GetBlock implements Store.
func (m *Mem) GetBlock(num uint64) (*block.Block, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	raw, ok := m.blocks[num]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, num)
	}
	return block.DecodeBlock(raw)
}

// DeleteBelow implements Store.
func (m *Mem) DeleteBelow(marker uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for num := range m.blocks {
		if num < marker {
			delete(m.blocks, num)
		}
	}
	return nil
}

// Range implements Store.
func (m *Mem) Range() (uint64, uint64, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, 0, false, ErrClosed
	}
	if len(m.blocks) == 0 {
		return 0, 0, false, nil
	}
	first, last := ^uint64(0), uint64(0)
	for num := range m.blocks {
		if num < first {
			first = num
		}
		if num > last {
			last = num
		}
	}
	return first, last, true, nil
}

// LoadAll implements Store. Blocks decode concurrently: decoding is
// pure CPU (canonical decode + per-entry allocation), so a restore of a
// long suffix scales with cores instead of serializing.
func (m *Mem) LoadAll() ([]*block.Block, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	nums := make([]uint64, 0, len(m.blocks))
	for num := range m.blocks {
		nums = append(nums, num)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	raws := make([][]byte, len(nums))
	for i, num := range nums {
		raws[i] = m.blocks[num]
	}
	return decodeAll(nums, raws)
}

// DecodeAll decodes raw blocks in parallel, preserving order. The
// first failure (by position) is reported. Store implementations in
// subpackages (the segment store) share it for their LoadAll fan-out.
func DecodeAll(nums []uint64, raws [][]byte) ([]*block.Block, error) {
	return decodeAll(nums, raws)
}

// decodeAll decodes raw blocks in parallel, preserving order. The first
// failure (by position) is reported.
func decodeAll(nums []uint64, raws [][]byte) ([]*block.Block, error) {
	out := make([]*block.Block, len(raws))
	errs := make([]error, len(raws))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(raws) {
		workers = len(raws)
	}
	if workers <= 1 {
		for i, raw := range raws {
			b, err := block.DecodeBlock(raw)
			if err != nil {
				return nil, fmt.Errorf("store: block %d: %w", nums[i], err)
			}
			out[i] = b
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(raws) {
					return
				}
				b, err := block.DecodeBlock(raws[i])
				if err != nil {
					errs[i] = fmt.Errorf("store: block %d: %w", nums[i], err)
					continue
				}
				out[i] = b
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stream implements Store. The number/raw snapshot is taken under the
// read lock; decoding happens lazily per yielded block, so consumers
// hold at most one decoded block beyond what they retain themselves.
func (m *Mem) Stream() iter.Seq2[*block.Block, error] {
	return func(yield func(*block.Block, error) bool) {
		m.mu.RLock()
		if m.closed {
			m.mu.RUnlock()
			yield(nil, ErrClosed)
			return
		}
		nums := make([]uint64, 0, len(m.blocks))
		for num := range m.blocks {
			nums = append(nums, num)
		}
		sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
		raws := make([][]byte, len(nums))
		for i, num := range nums {
			raws[i] = m.blocks[num]
		}
		m.mu.RUnlock()
		for i, raw := range raws {
			b, err := block.DecodeBlock(raw)
			if err != nil {
				yield(nil, fmt.Errorf("store: block %d: %w", nums[i], err))
				return
			}
			if !yield(b, nil) {
				return
			}
		}
	}
}

// SizeBytes implements Store.
func (m *Mem) SizeBytes() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, ErrClosed
	}
	var total int64
	for _, raw := range m.blocks {
		total += int64(len(raw))
	}
	return total, nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.blocks = nil
	return nil
}
