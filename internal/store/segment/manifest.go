package segment

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// manifestName is the manifest file inside a store directory.
const manifestName = "MANIFEST"

// manifestHeader is the first line of every manifest.
const manifestHeader = "seldel-segment-manifest v1"

// manifestSeg is one segment as the manifest expects it.
type manifestSeg struct {
	id    uint64
	count int
	first uint64
	last  uint64
}

// manifest is the decoded MANIFEST file: the authoritative Genesis
// marker plus the expected segment set. It is advisory about offsets —
// Open always rescans the segment files themselves — but authoritative
// about the marker and about which segments must exist: a listed
// segment missing from disk is data loss unless it lay entirely below
// the marker (an interrupted truncation).
type manifest struct {
	marker   uint64
	segments []manifestSeg
}

// readManifest loads the manifest, returning an empty one when the file
// does not exist (a fresh store, or one predating its first write).
func readManifest(dir string) (*manifest, error) {
	path := filepath.Join(dir, manifestName)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{}, nil
		}
		return nil, fmt.Errorf("segment: read manifest: %w", err)
	}
	defer f.Close()
	man := &manifest{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != manifestHeader {
				return nil, fmt.Errorf("segment: manifest: unrecognized header %q", text)
			}
			continue
		}
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "marker "):
			if _, err := fmt.Sscanf(text, "marker %d", &man.marker); err != nil {
				return nil, fmt.Errorf("segment: manifest line %d: %w", line, err)
			}
		case strings.HasPrefix(text, "segment "):
			var ms manifestSeg
			if _, err := fmt.Sscanf(text, "segment %d %d %d %d", &ms.id, &ms.count, &ms.first, &ms.last); err != nil {
				return nil, fmt.Errorf("segment: manifest line %d: %w", line, err)
			}
			man.segments = append(man.segments, ms)
		default:
			return nil, fmt.Errorf("segment: manifest line %d: unrecognized directive %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("segment: read manifest: %w", err)
	}
	return man, nil
}

// writeManifestLocked persists the current marker and segment set
// atomically (temp file + fsync + rename), so a crash leaves either the
// old or the new manifest, never a torn one.
func (s *Store) writeManifestLocked() error {
	var b strings.Builder
	fmt.Fprintln(&b, manifestHeader)
	fmt.Fprintf(&b, "marker %d\n", s.marker)
	for _, seg := range s.segs {
		fmt.Fprintf(&b, "segment %d %d %d %d\n", seg.id, seg.count, seg.first, seg.last)
	}
	return writeFileAtomic(filepath.Join(s.dir, manifestName), []byte(b.String()))
}

// writeFileAtomic writes data to path via a synced temp file, an
// atomic rename, and a parent-directory fsync — without the directory
// sync, the rename has no durable ordering against later operations
// (DeleteBelow's unlinks), and a power loss could surface the OLD
// manifest next to the NEW directory contents.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: write %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: rename %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so preceding renames/unlinks in it are
// durably ordered. Filesystems that cannot sync a directory handle
// (some platforms return EINVAL/EBADF) degrade to the old behaviour
// rather than failing the operation.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("segment: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.EBADF) {
		return fmt.Errorf("segment: sync dir %s: %w", dir, err)
	}
	return nil
}
