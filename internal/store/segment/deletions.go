package segment

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	manifestlog "github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/store"
)

// HasDeletionManifest reports whether this store keeps a deletion
// manifest (false when opened with DisableManifest).
func (s *Store) HasDeletionManifest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.del != nil
}

// DeletionRecords returns every readable deletion record, oldest
// first. Empty when the manifest is disabled or no truncation has
// executed yet.
func (s *Store) DeletionRecords() ([]manifestlog.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, store.ErrClosed
	}
	if s.del == nil {
		return nil, nil
	}
	return s.del.Records(), nil
}

// DeletionHead returns the most recent deletion record, if any.
func (s *Store) DeletionHead() (manifestlog.Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return manifestlog.Record{}, false, store.ErrClosed
	}
	if s.del == nil {
		return manifestlog.Record{}, false, nil
	}
	head, ok := s.del.Head()
	return head, ok, nil
}

// DeletionWarnings returns the recovery diagnostics the deletion
// manifest accumulated at Open (corrupt lines skipped, torn tail
// truncated); empty for a clean or disabled manifest.
func (s *Store) DeletionWarnings() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.del == nil {
		return nil
	}
	return s.del.Warnings()
}

// DeletionLog exposes the underlying manifest log (nil when disabled)
// for the doctor's repair paths — hydrating missing records and
// archiving applied ones need append/rewrite access.
func (s *Store) DeletionLog() *manifestlog.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.del
}

// SegmentInfo describes one on-disk segment file as found by Inspect.
type SegmentInfo struct {
	ID        uint64
	Path      string
	SizeBytes int64
	// Records is the number of decodable records; First and Last bound
	// their block numbers when Records > 0.
	Records int
	First   uint64
	Last    uint64
	// Torn reports undecodable bytes after the last good record — the
	// signature of a crash mid-append (Open repairs it by truncation).
	Torn bool
}

// DirInfo is a read-only view of a store directory's durable state, the
// raw material for `seldel doctor`'s cross-validation. Inspect mutates
// nothing: corrupt metadata is reported, not repaired.
type DirInfo struct {
	Dir string
	// MarkerFile is the MANIFEST's Genesis marker (0 when absent).
	MarkerFile uint64
	// MarkerErr is set when the MANIFEST exists but cannot be parsed.
	MarkerErr string
	// Snapshot is the checkpoint (nil when never truncated);
	// SnapshotErr is set when the file exists but fails validation.
	Snapshot    *Snapshot
	SnapshotErr string
	// Segments lists the segment files on disk, ascending by id.
	Segments []SegmentInfo
	// First and Last bound the block numbers across all decodable
	// records when HasBlocks (ignoring markers — the inspector reports,
	// the doctor judges).
	First     uint64
	Last      uint64
	HasBlocks bool
}

// Inspect reads a store directory's durable state without opening the
// store: no torn-tail truncation, no interrupted-truncation completion,
// no manifest rewrite. Safe to run against a directory another process
// has open only insofar as the filesystem serves consistent reads; the
// intended use is offline diagnosis.
func Inspect(dir string) (*DirInfo, error) {
	info := &DirInfo{Dir: dir}
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("segment: inspect: %w", err)
	}
	switch man, err := readManifest(dir); {
	case err == nil:
		info.MarkerFile = man.marker
	default:
		info.MarkerErr = err.Error()
	}
	switch snap, err := readSnapshot(dir); {
	case err == nil:
		info.Snapshot = &snap
	case errors.Is(err, errNoCheckpoint):
	default:
		info.SnapshotErr = err.Error()
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: inspect: %w", err)
	}
	for _, e := range names {
		id, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		si, err := scanSegmentFile(id, filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		info.Segments = append(info.Segments, si)
		if si.Records > 0 {
			if !info.HasBlocks || si.First < info.First {
				info.First = si.First
			}
			if !info.HasBlocks || si.Last > info.Last {
				info.Last = si.Last
			}
			info.HasBlocks = true
		}
	}
	sort.Slice(info.Segments, func(i, j int) bool { return info.Segments[i].ID < info.Segments[j].ID })
	return info, nil
}

// scanSegmentFile walks one segment's records read-only, using the
// same framing as openSegment but repairing nothing.
func scanSegmentFile(id uint64, path string) (SegmentInfo, error) {
	si := SegmentInfo{ID: id, Path: path}
	f, err := os.Open(path)
	if err != nil {
		return si, fmt.Errorf("segment: inspect %s: %w", path, err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return si, fmt.Errorf("segment: inspect %s: %w", path, err)
	}
	si.SizeBytes = int64(len(raw))
	if len(raw) < len(segMagic) || string(raw[:len(segMagic)]) != segMagic {
		si.Torn = len(raw) > 0
		return si, nil
	}
	good := int64(len(segMagic))
	for {
		num, _, span, ok := parseRecord(raw[good:])
		if !ok {
			break
		}
		if si.Records == 0 || num < si.First {
			si.First = num
		}
		if si.Records == 0 || num > si.Last {
			si.Last = num
		}
		si.Records++
		good += int64(span)
	}
	si.Torn = good < int64(len(raw))
	return si, nil
}
