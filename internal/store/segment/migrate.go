package segment

import (
	"fmt"

	"github.com/seldel/seldel/internal/store"
)

// Migrate copies the live contents of src into dst: every stored block
// is re-appended into dst's segments, and if src exposes a persisted
// Genesis marker (store.File and this package's Store both do), the
// marker is carried over via DeleteBelow so dst also gains a snapshot
// checkpoint. dst should be freshly opened and empty; src is not
// modified, so an operator can verify the segment store before
// deleting the one-file-per-block directory (see README "Storage").
func Migrate(src store.Store, dst *Store) error {
	for b, err := range src.Stream() {
		if err != nil {
			return fmt.Errorf("segment: migrate: %w", err)
		}
		if err := dst.PutBlock(b); err != nil {
			return fmt.Errorf("segment: migrate block %d: %w", b.Header.Number, err)
		}
	}
	if m, ok := src.(interface{ Marker() (uint64, error) }); ok {
		marker, err := m.Marker()
		if err != nil {
			return fmt.Errorf("segment: migrate marker: %w", err)
		}
		if marker > 0 {
			if err := dst.DeleteBelow(marker); err != nil {
				return fmt.Errorf("segment: migrate marker: %w", err)
			}
		}
	}
	return dst.Sync()
}
