package segment

import (
	"encoding/binary"
	"hash/crc32"
	"sync"

	"github.com/seldel/seldel/internal/block"
)

// This file is the single definition of the on-disk record format: a
// fixed little-endian header (block number u64, payload length u32,
// payload CRC-32 u32) followed by the canonical block encoding. The
// append path (PutBlock), the compaction rewrite (rewriteSegmentLocked),
// the recovery scan (openSegment), and the read-only inspector
// (scanSegmentFile) all go through the helpers here — a record written
// by any of them must be recoverable by all of them.
//
// Records are built in pooled scratch buffers: the block encodes
// in place after a reserved header (block.AppendEncode), the header is
// backfilled, and the buffer returns to the pool once the bytes are on
// disk. Steady-state appends therefore allocate nothing per record.

// recordBuf is a pooled scratch buffer for building one on-disk record.
type recordBuf struct {
	b []byte
}

// maxPooledRecordBytes caps the capacity a scratch buffer may keep when
// returned to the pool, so one oversized block does not pin megabytes
// for the lifetime of the process.
const maxPooledRecordBytes = 1 << 20

var recordBufPool = sync.Pool{New: func() any { return new(recordBuf) }}

func getRecordBuf() *recordBuf { return recordBufPool.Get().(*recordBuf) }

func putRecordBuf(rb *recordBuf) {
	if cap(rb.b) <= maxPooledRecordBytes {
		recordBufPool.Put(rb)
	}
}

// sized resizes the buffer to hold a record with an n-byte payload and
// returns the full record slice. The caller fills rec[recHeaderSize:]
// and then stamps the header with fillRecordHeader.
func (rb *recordBuf) sized(n int) []byte {
	need := recHeaderSize + n
	if cap(rb.b) < need {
		rb.b = make([]byte, need)
	}
	rb.b = rb.b[:need]
	return rb.b
}

// appendBlockRecord encodes b as one complete on-disk record into rb:
// header space is reserved up front, the block encodes directly behind
// it, and the header is backfilled from the finished payload. Returns
// the record (aliasing rb's buffer, valid until the next use of rb) and
// the payload length. Size-limit enforcement stays with the caller,
// which owns the error message.
func appendBlockRecord(rb *recordBuf, b *block.Block) (rec []byte, payloadLen int) {
	rb.b = rb.b[:0]
	rb.b = append(rb.b, make([]byte, recHeaderSize)...)
	rb.b = b.AppendEncode(rb.b)
	fillRecordHeader(rb.b, b.Header.Number)
	return rb.b, len(rb.b) - recHeaderSize
}

// fillRecordHeader stamps the fixed header over rec's first bytes,
// deriving length and checksum from the payload that follows it.
func fillRecordHeader(rec []byte, num uint64) {
	payload := rec[recHeaderSize:]
	binary.LittleEndian.PutUint64(rec[0:8], num)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(payload))
}

// parseRecord reads the record at the head of rest. The returned
// payload aliases rest — callers that retain it must copy. ok reports
// whether a complete, checksum-valid record was present; false marks a
// torn or corrupt tail and ends a scan.
func parseRecord(rest []byte) (num uint64, payload []byte, span int, ok bool) {
	if len(rest) < recHeaderSize {
		return 0, nil, 0, false
	}
	num = binary.LittleEndian.Uint64(rest[0:8])
	n := binary.LittleEndian.Uint32(rest[8:12])
	sum := binary.LittleEndian.Uint32(rest[12:16])
	if n > maxRecordBytes || len(rest) < recHeaderSize+int(n) {
		return 0, nil, 0, false
	}
	payload = rest[recHeaderSize : recHeaderSize+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, 0, false
	}
	return num, payload, recHeaderSize + int(n), true
}
