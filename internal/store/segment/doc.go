// Package segment implements the segmented persistent store: blocks
// append into bounded, length-prefixed segment files instead of one
// file per block.
//
// The one-file-per-block layout of store.File makes physical deletion
// observable, but at scale it is an inode explosion, one open/rename
// per block on the hot path, and an unbounded unlink storm when the
// compactor prunes a long prefix. The segment store keeps the paper's
// storage promise — "the old sequence can be cut off and deleted from
// the blockchain" (§IV-C) must reclaim bytes, not just unreachability —
// while amortizing the filesystem cost:
//
//   - Appends go to the tail of the active segment file: the record is
//     framed in a pooled buffer (one write syscall, no per-append heap
//     allocation at steady state) and fsynced per append only when
//     Options.SyncEvery is set. Otherwise the store syncs on segment
//     roll, truncation, snapshot, and Close — and on demand via Sync,
//     which is the hook the chain's group-commit durability mode uses
//     to make many appended blocks durable with one fsync before their
//     receipts resolve.
//   - An in-memory offset index maps block numbers to (segment,
//     offset), so reads are one pread.
//   - Sealed segments' read handles live in an LRU capped by
//     Options.MaxOpenFiles and reopen transparently on access, so a
//     long-lived store holds a bounded number of file descriptors no
//     matter how many segments accumulate (only the active segment's
//     handle is pinned).
//   - Truncation retires whole segments with a single unlink each and
//     rewrites only the boundary segment that straddles the marker, so
//     reclaimed disk space stays directly observable via SizeBytes.
//   - A crash-safe manifest (MANIFEST, written atomically) records the
//     Genesis marker and the expected segment set; Open reconciles it
//     against the directory, truncating torn record tails and
//     completing interrupted truncations.
//   - A snapshot checkpoint (SNAPSHOT) is written at every marker
//     shift: the marker, the head at checkpoint time, and the full
//     marker block (the paper's trusted anchor, §IV-C; the summary
//     blocks inside the live suffix re-seed the carried-entry ledger).
//     Stream starts at the snapshot's marker, so a restore replays
//     only the live suffix even when a crash left stale pre-marker
//     segments behind.
package segment
