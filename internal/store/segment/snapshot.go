package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/store"
)

// snapshotName is the checkpoint file inside a store directory.
const snapshotName = "SNAPSHOT"

// snapMagic heads every snapshot file.
const snapMagic = "SELSNAP1"

// Snapshot is the checkpoint written at every Genesis-marker shift: the
// restore seed that lets a reopened chain start at the marker instead
// of replaying history from scratch. Checkpoint is the marker block —
// "a trusted anchor for the left blockchain part already approved by
// the anchor nodes" (§IV-C); the carried-entry ledger re-seeds from the
// summary blocks Σ inside the replayed suffix, whose carried entries
// preserve every surviving pre-marker entry. Head records how far the
// chain reached when the checkpoint was taken, so operators can tell
// how much suffix a restore will replay.
type Snapshot struct {
	// Marker is the Genesis marker at checkpoint time.
	Marker uint64
	// Head is the highest stored block number at checkpoint time.
	Head uint64
	// Checkpoint is the block at Marker — the first live block after
	// the retention merge.
	Checkpoint *block.Block
}

// writeSnapshotLocked persists the checkpoint for the current marker.
// Callers have already advanced s.marker; the checkpoint block is read
// from the store itself (the recorder mirrors appends before the
// compactor prunes, so the marker block is always present). A marker
// shift to a block the store never saw — possible only for a store
// attached mid-life — skips the snapshot rather than failing the
// truncation.
func (s *Store) writeSnapshotLocked() error {
	loc, ok := s.index[s.marker]
	if !ok {
		return nil
	}
	f, err := s.handleLocked(loc.seg)
	if err != nil {
		return fmt.Errorf("segment: snapshot: %w", err)
	}
	payload := make([]byte, loc.n)
	if _, err := f.ReadAt(payload, loc.off); err != nil {
		return fmt.Errorf("segment: snapshot: read checkpoint block %d: %w", s.marker, err)
	}
	head := s.marker
	for num := range s.index {
		if num > head {
			head = num
		}
	}
	buf := make([]byte, 0, len(snapMagic)+8+8+4+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, s.marker)
	buf = binary.LittleEndian.AppendUint64(buf, head)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return writeFileAtomic(filepath.Join(s.dir, snapshotName), buf)
}

// Checkpoint rewrites the SNAPSHOT file for the current marker. The
// truncation path writes it as a matter of course; this explicit form
// is for repair (seldel doctor): a crash between the DELETIONS append
// and the snapshot write leaves the checkpoint one deletion behind, and
// Open reconciles the marker without rewriting the file. A marker block
// the store does not hold (never truncated, or attached mid-life)
// leaves the file untouched.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	return s.writeSnapshotLocked()
}

// Snapshot returns the last written checkpoint. ok is false when the
// store has never truncated (no checkpoint exists yet); a corrupt
// checkpoint file is an error — the store itself remains usable, but
// the caller should not trust the checkpoint.
func (s *Store) Snapshot() (Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, false, store.ErrClosed
	}
	snap, err := readSnapshot(s.dir)
	if err != nil {
		if err == errNoCheckpoint {
			return Snapshot{}, false, nil
		}
		return Snapshot{}, false, err
	}
	return snap, true, nil
}

// readSnapshot loads and validates the SNAPSHOT file.
func readSnapshot(dir string) (Snapshot, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return Snapshot{}, errNoCheckpoint
		}
		return Snapshot{}, fmt.Errorf("segment: read snapshot: %w", err)
	}
	const fixed = len(snapMagic) + 8 + 8 + 4
	if len(raw) < fixed+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return Snapshot{}, fmt.Errorf("segment: snapshot: malformed header")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return Snapshot{}, fmt.Errorf("segment: snapshot: checksum mismatch")
	}
	marker := binary.LittleEndian.Uint64(raw[len(snapMagic) : len(snapMagic)+8])
	head := binary.LittleEndian.Uint64(raw[len(snapMagic)+8 : len(snapMagic)+16])
	n := binary.LittleEndian.Uint32(raw[len(snapMagic)+16 : fixed])
	if int(n) != len(body)-fixed {
		return Snapshot{}, fmt.Errorf("segment: snapshot: length mismatch")
	}
	cp, err := block.DecodeBlock(body[fixed:])
	if err != nil {
		return Snapshot{}, fmt.Errorf("segment: snapshot: decode checkpoint: %w", err)
	}
	if cp.Header.Number != marker {
		return Snapshot{}, fmt.Errorf("segment: snapshot: checkpoint block %d does not match marker %d", cp.Header.Number, marker)
	}
	return Snapshot{Marker: marker, Head: head, Checkpoint: cp}, nil
}
