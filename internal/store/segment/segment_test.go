package segment

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
)

// testBlock builds a hash-linked normal block for store-level tests.
func testBlock(t *testing.T, num uint64, prev *block.Block) *block.Block {
	t.Helper()
	kp := identity.Deterministic("alpha", "segment-test")
	e := block.NewData("alpha", []byte(fmt.Sprintf("payload-%d", num))).Sign(kp)
	prevHash := block.GenesisPrevHash
	var prevTime uint64
	if prev != nil {
		prevHash = prev.Hash()
		prevTime = prev.Header.Time
	}
	return block.NewNormal(num, prevTime+1, prevHash, []*block.Entry{e})
}

// fill puts blocks 0..n-1 and returns them.
func fill(t *testing.T, s *Store, n int) []*block.Block {
	t.Helper()
	var blocks []*block.Block
	var prev *block.Block
	for num := uint64(0); num < uint64(n); num++ {
		b := testBlock(t, num, prev)
		blocks = append(blocks, b)
		prev = b
		if err := s.PutBlock(b); err != nil {
			t.Fatalf("PutBlock(%d): %v", num, err)
		}
	}
	return blocks
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreContract(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	if _, _, ok, err := s.Range(); err != nil || ok {
		t.Fatalf("fresh store Range = ok=%v err=%v", ok, err)
	}
	blocks := fill(t, s, 6)
	first, last, ok, err := s.Range()
	if err != nil || !ok || first != 0 || last != 5 {
		t.Fatalf("Range = %d..%d ok=%v err=%v", first, last, ok, err)
	}
	got, err := s.GetBlock(3)
	if err != nil {
		t.Fatalf("GetBlock: %v", err)
	}
	if got.Hash() != blocks[3].Hash() {
		t.Error("round-tripped block hash differs")
	}
	if _, err := s.GetBlock(99); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("GetBlock(99) = %v, want ErrNotFound", err)
	}
	sizeBefore, err := s.SizeBytes()
	if err != nil || sizeBefore <= 0 {
		t.Fatalf("SizeBytes = %d, %v", sizeBefore, err)
	}
	if err := s.DeleteBelow(3); err != nil {
		t.Fatalf("DeleteBelow: %v", err)
	}
	if _, err := s.GetBlock(2); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("block 2 survived truncation: %v", err)
	}
	if _, err := s.GetBlock(3); err != nil {
		t.Errorf("block 3 deleted by truncation: %v", err)
	}
	sizeAfter, err := s.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter >= sizeBefore {
		t.Errorf("no space reclaimed: %d -> %d", sizeBefore, sizeAfter)
	}
	all, err := s.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("LoadAll returned %d blocks, want 3", len(all))
	}
	var streamed []*block.Block
	for b, err := range s.Stream() {
		if err != nil {
			t.Fatalf("Stream: %v", err)
		}
		streamed = append(streamed, b)
	}
	if len(streamed) != 3 || streamed[0].Header.Number != 3 {
		t.Fatalf("Stream yielded %d blocks starting at %d, want 3 starting at 3",
			len(streamed), streamed[0].Header.Number)
	}
	if m, err := s.Marker(); err != nil || m != 3 {
		t.Fatalf("Marker = %d, %v; want 3", m, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.PutBlock(blocks[5]); !errors.Is(err, store.ErrClosed) {
		t.Errorf("PutBlock after Close = %v, want ErrClosed", err)
	}
}

func TestSegmentRollAndPhysicalRetirement(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every couple of blocks rolls a new file, so a
	// truncation retires whole segments.
	s := open(t, dir, Options{SegmentBytes: 512})
	defer s.Close()
	fill(t, s, 24)
	segsBefore, err := s.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if segsBefore < 4 {
		t.Fatalf("expected several segments, got %d", segsBefore)
	}
	sizeBefore, _ := s.SizeBytes()
	if err := s.DeleteBelow(18); err != nil {
		t.Fatalf("DeleteBelow: %v", err)
	}
	segsAfter, _ := s.SegmentCount()
	if segsAfter >= segsBefore {
		t.Errorf("no segments retired: %d -> %d", segsBefore, segsAfter)
	}
	sizeAfter, _ := s.SizeBytes()
	if sizeAfter >= sizeBefore {
		t.Errorf("no bytes reclaimed: %d -> %d", sizeBefore, sizeAfter)
	}
	// The boundary segment was rewritten: everything >= 18 survives.
	for num := uint64(18); num < 24; num++ {
		if _, err := s.GetBlock(num); err != nil {
			t.Errorf("GetBlock(%d) after boundary rewrite: %v", num, err)
		}
	}
}

func TestReopenPreservesBlocksAndMarker(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512})
	blocks := fill(t, s, 12)
	if err := s.DeleteBelow(6); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{SegmentBytes: 512})
	defer s2.Close()
	if m, err := s2.Marker(); err != nil || m != 6 {
		t.Fatalf("reopened Marker = %d, %v; want 6", m, err)
	}
	first, last, ok, err := s2.Range()
	if err != nil || !ok || first != 6 || last != 11 {
		t.Fatalf("reopened Range = %d..%d ok=%v err=%v", first, last, ok, err)
	}
	got, err := s2.GetBlock(9)
	if err != nil || got.Hash() != blocks[9].Hash() {
		t.Fatalf("reopened GetBlock(9) = %v (hash match=%v)", err, err == nil && got.Hash() == blocks[9].Hash())
	}
}

func TestPutBlockSupersedes(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	blocks := fill(t, s, 3)
	// Re-put block 2 with different content: the index must resolve to
	// the newest record.
	kp := identity.Deterministic("alpha", "segment-test")
	e := block.NewData("alpha", []byte("superseded")).Sign(kp)
	replacement := block.NewNormal(2, blocks[1].Header.Time+1, blocks[1].Hash(), []*block.Entry{e})
	if err := s.PutBlock(replacement); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetBlock(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Entries[0].Payload) != "superseded" {
		t.Errorf("GetBlock(2) returned stale record: %q", got.Entries[0].Payload)
	}
}

func TestSnapshotCheckpoint(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	blocks := fill(t, s, 10)
	if _, ok, err := s.Snapshot(); err != nil || ok {
		t.Fatalf("snapshot before any truncation: ok=%v err=%v", ok, err)
	}
	if err := s.DeleteBelow(4); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := s.Snapshot()
	if err != nil || !ok {
		t.Fatalf("Snapshot = ok=%v err=%v", ok, err)
	}
	if snap.Marker != 4 || snap.Head != 9 {
		t.Errorf("snapshot marker/head = %d/%d, want 4/9", snap.Marker, snap.Head)
	}
	if snap.Checkpoint.Hash() != blocks[4].Hash() {
		t.Error("snapshot checkpoint block differs from block at marker")
	}
}

// TestChainLifecycleOnSegmentStore is the end-to-end acceptance test:
// a retention-bounded chain mirrored into a segment store truncates,
// the store's physical size shrinks, a snapshot checkpoint appears,
// and a restore replays only the post-marker live suffix.
func TestChainLifecycleOnSegmentStore(t *testing.T) {
	dir := t.TempDir()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "segment-lifecycle")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	s := open(t, dir, Options{SegmentBytes: 1024})
	c, _, err := store.OpenChain(cfg, s)
	if err == nil {
		t.Fatal("OpenChain on empty store should fail; use Attach path")
	}
	c, err = chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Attach(c, s); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Entries are deleted a beat after they are written: without
	// deletion requests every entry would migrate into each summary
	// block Σ and the live chain (hence the store) would grow forever —
	// the paper's point is that deletion is what bounds it.
	shrankOnce := false
	prevSize := int64(0)
	for i := 0; i < 40; i++ {
		e := block.NewData("writer", []byte(fmt.Sprintf("entry-%02d", i))).Sign(kp)
		sealed, err := c.SubmitWait(ctx, e)
		if err != nil {
			t.Fatalf("SubmitWait(%d): %v", i, err)
		}
		if _, err := c.SubmitWait(ctx, block.NewDeletion("writer", sealed[0].Ref).Sign(kp)); err != nil {
			t.Fatalf("delete(%d): %v", i, err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
		sz, err := s.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if prevSize > 0 && sz < prevSize {
			shrankOnce = true
		}
		prevSize = sz
	}
	marker := c.Marker()
	if marker == 0 {
		t.Fatal("chain never truncated; retention config broken")
	}
	if !shrankOnce {
		t.Error("SizeBytes never decreased across truncations")
	}
	snap, ok, err := s.Snapshot()
	if err != nil || !ok {
		t.Fatalf("no snapshot after truncation: ok=%v err=%v", ok, err)
	}
	if snap.Marker != marker {
		t.Errorf("snapshot marker %d != chain marker %d", snap.Marker, marker)
	}
	headHash := c.HeadHash()
	liveBlocks := c.Len()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{SegmentBytes: 1024})
	defer s2.Close()
	c2, _, err := store.OpenChain(cfg, s2)
	if err != nil {
		t.Fatalf("restore from segment store: %v", err)
	}
	defer c2.Close()
	if c2.HeadHash() != headHash {
		t.Error("restored head hash differs")
	}
	if c2.Marker() != marker {
		t.Errorf("restored marker %d, want %d", c2.Marker(), marker)
	}
	// Restore-from-snapshot replays only the live suffix: the restored
	// chain's appended-block counter equals the live block count, not
	// the full history.
	if got := c2.Stats().AppendedBlocks; got != uint64(liveBlocks) {
		t.Errorf("restore replayed %d blocks, want live suffix %d", got, liveBlocks)
	}
	if err := c2.VerifyIntegrity(); err != nil {
		t.Errorf("restored chain integrity: %v", err)
	}
}

func TestReadHandleLRUCapsOpenFiles(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many files; a cap of 2 sealed handles means at
	// most 3 descriptors (active + 2) no matter how many segments exist.
	s := open(t, dir, Options{SegmentBytes: 256, MaxOpenFiles: 2})
	defer s.Close()
	blocks := fill(t, s, 40)
	segsN, err := s.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if segsN < 5 {
		t.Fatalf("only %d segments; shrink SegmentBytes to make the test meaningful", segsN)
	}
	checkCap := func(when string) {
		t.Helper()
		open, err := s.OpenHandles()
		if err != nil {
			t.Fatal(err)
		}
		if open > 3 {
			t.Errorf("%s: %d handles open, want <= 3 (active + MaxOpenFiles)", when, open)
		}
	}
	checkCap("after appends")
	// Random-access reads across every segment reopen evicted handles
	// transparently and stay under the cap.
	for _, want := range blocks {
		got, err := s.GetBlock(want.Header.Number)
		if err != nil {
			t.Fatalf("GetBlock(%d): %v", want.Header.Number, err)
		}
		if got.Hash() != want.Hash() {
			t.Errorf("block %d corrupted by handle eviction", want.Header.Number)
		}
	}
	checkCap("after random reads")
	// LoadAll and Stream cross every segment too.
	all, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(blocks) {
		t.Fatalf("LoadAll returned %d blocks, want %d", len(all), len(blocks))
	}
	checkCap("after LoadAll")
	n := 0
	for b, err := range s.Stream() {
		if err != nil {
			t.Fatal(err)
		}
		if b.Hash() != blocks[n].Hash() {
			t.Errorf("stream block %d differs", n)
		}
		n++
	}
	checkCap("after Stream")

	// Truncation (snapshot write reads the checkpoint block) and the
	// boundary rewrite work with evicted handles too.
	if err := s.DeleteBelow(21); err != nil {
		t.Fatalf("DeleteBelow: %v", err)
	}
	checkCap("after truncation")
	if _, err := s.GetBlock(21); err != nil {
		t.Fatalf("read after truncation: %v", err)
	}

	// Reopen: recovery scans every segment but releases handles beyond
	// the cap before returning.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{SegmentBytes: 256, MaxOpenFiles: 2})
	defer s2.Close()
	open2, err := s2.OpenHandles()
	if err != nil {
		t.Fatal(err)
	}
	if open2 > 3 {
		t.Errorf("after reopen: %d handles open, want <= 3", open2)
	}
	if _, err := s2.GetBlock(39); err != nil {
		t.Fatalf("read after reopen: %v", err)
	}
	if _, err := Open(t.TempDir(), Options{MaxOpenFiles: -1}); err == nil {
		t.Error("negative MaxOpenFiles accepted")
	}
}
