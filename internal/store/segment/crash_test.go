package segment

// Crash-recovery tests: each test produces a durable store state, then
// corrupts the directory the way a crash at a specific point would
// (torn record tail mid-append, stale segments mid-truncate, manifest
// out of step with the segment files) and asserts that Open recovers
// to the last durable block — never resurrecting cut blocks and never
// serving a partially written record.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
)

// lastSegmentPath returns the path of the highest-numbered segment file.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segment files on disk")
	}
	return filepath.Join(dir, last)
}

// liveNumbers streams the store and returns the block numbers served.
func liveNumbers(t *testing.T, s *Store) []uint64 {
	t.Helper()
	var nums []uint64
	for b, err := range s.Stream() {
		if err != nil {
			t.Fatalf("Stream: %v", err)
		}
		nums = append(nums, b.Header.Number)
	}
	return nums
}

func TestRecoverTornRecordTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	fill(t, s, 8)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a record header promising more payload than was
	// ever written lands at the tail of the active segment.
	path := lastSegmentPath(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, recHeaderSize+10)
	torn[8] = 200 // length field promises 200 payload bytes; only 10 follow
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir, Options{})
	defer s2.Close()
	nums := liveNumbers(t, s2)
	if len(nums) != 8 || nums[len(nums)-1] != 7 {
		t.Fatalf("recovered %v, want blocks 0..7", nums)
	}
	// The torn tail must be physically gone so the next append lands on
	// a clean boundary.
	b := testBlock(t, 8, nil)
	b8 := block.NewNormal(8, b.Header.Time, b.Header.PrevHash, b.Entries)
	if err := s2.PutBlock(b8); err != nil {
		t.Fatalf("PutBlock after torn-tail recovery: %v", err)
	}
	if _, err := s2.GetBlock(8); err != nil {
		t.Fatalf("GetBlock(8): %v", err)
	}
}

func TestRecoverCorruptPayloadChecksum(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	fill(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the LAST record's payload: the checksum mismatch
	// must cut the recovered segment back to the previous record.
	path := lastSegmentPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	nums := liveNumbers(t, s2)
	if len(nums) != 4 || nums[len(nums)-1] != 3 {
		t.Fatalf("recovered %v, want blocks 0..3 (corrupt block 4 dropped)", nums)
	}
}

// TestRecoverInterruptedTruncation simulates a crash after the
// truncation's durable point (snapshot + manifest carry the new marker)
// but before the file surgery: the retired segment files are still on
// disk. Open must complete the deletion instead of resurrecting the cut
// blocks.
func TestRecoverInterruptedTruncation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512})
	fill(t, s, 24)
	// Keep a pre-truncation copy of every segment file.
	preFiles := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			preFiles[e.Name()] = raw
		}
	}
	if err := s.DeleteBelow(15); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// "Un-delete" the segment files: manifest and snapshot stay at
	// marker 15, but the directory looks like the unlinks never hit
	// the disk.
	for name, raw := range preFiles {
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := open(t, dir, Options{SegmentBytes: 512})
	defer s2.Close()
	if m, err := s2.Marker(); err != nil || m != 15 {
		t.Fatalf("recovered marker = %d, %v; want 15", m, err)
	}
	nums := liveNumbers(t, s2)
	if len(nums) == 0 || nums[0] != 15 || nums[len(nums)-1] != 23 {
		t.Fatalf("recovered %v, want 15..23 (cut blocks must not resurrect)", nums)
	}
	// The stale segments must be physically gone again.
	for name := range preFiles {
		id, _ := parseSegmentName(name)
		if _, statErr := os.Stat(filepath.Join(dir, name)); statErr == nil {
			// Still on disk: acceptable only if it holds live blocks.
			found := false
			s2.mu.Lock()
			for _, seg := range s2.segs {
				if seg.id == id {
					found = true
				}
			}
			s2.mu.Unlock()
			if !found {
				t.Errorf("stale segment %s survived recovery", name)
			}
		}
	}
}

// TestRecoverManifestMissing loses the MANIFEST entirely: the snapshot
// checkpoint is the fallback marker record, so cut blocks still must
// not resurrect.
func TestRecoverManifestMissing(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512})
	fill(t, s, 20)
	if err := s.DeleteBelow(12); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{SegmentBytes: 512})
	defer s2.Close()
	if m, err := s2.Marker(); err != nil || m != 12 {
		t.Fatalf("marker after manifest loss = %d, %v; want 12 (from snapshot)", m, err)
	}
	nums := liveNumbers(t, s2)
	if nums[0] != 12 || nums[len(nums)-1] != 19 {
		t.Fatalf("recovered %v, want 12..19", nums)
	}
}

// TestCorruptSnapshotFailsLoudly: a bit-rotted SNAPSHOT is a durable
// marker record that can no longer be trusted — Open must fail instead
// of silently falling back to a marker that may resurrect cut blocks.
func TestCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512})
	fill(t, s, 20)
	if err := s.DeleteBelow(12); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapshotName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Worst case: the manifest is gone too, so the snapshot would have
	// been the only marker record.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 512}); err == nil {
		t.Fatal("Open succeeded on a corrupt snapshot")
	}
}

// TestRecoverAdoptsUnlistedSegment: a segment file created right before
// a crash (roll happened, manifest write did not) is adopted on Open.
func TestRecoverAdoptsUnlistedSegment(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512})
	fill(t, s, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest without its last segment line — as if the
	// roll's manifest update never became durable.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	segLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "segment ") {
			segLines++
		}
	}
	if segLines < 2 {
		t.Fatalf("need >=2 segments for this test, got %d", segLines)
	}
	trimmed := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{SegmentBytes: 512})
	defer s2.Close()
	nums := liveNumbers(t, s2)
	if len(nums) != 10 || nums[len(nums)-1] != 9 {
		t.Fatalf("recovered %v, want 0..9 (unlisted segment adopted)", nums)
	}
}

// TestMissingLiveSegmentFails: a manifest-listed segment holding LIVE
// blocks that vanished from disk is unrecoverable data loss and must
// fail Open loudly, not silently serve a gapped chain.
func TestMissingLiveSegmentFails(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512})
	fill(t, s, 20)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the FIRST segment (live blocks: marker is 0).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	firstSeg := ""
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok && (firstSeg == "" || e.Name() < firstSeg) {
			firstSeg = e.Name()
		}
	}
	if err := os.Remove(filepath.Join(dir, firstSeg)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 512}); err == nil {
		t.Fatal("Open succeeded despite a missing live segment")
	}
}

// TestRestoreAfterTornTailOnChain drives the full stack: a chain
// mirrored into a segment store crashes mid-append (torn tail), and the
// reopened chain restores exactly the durable prefix.
func TestRestoreAfterTornTailOnChain(t *testing.T) {
	dir := t.TempDir()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "crash-chain")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chain.Config{
		SequenceLength: 3,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	s := open(t, dir, Options{})
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Attach(c, s); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 7; i++ {
		e := block.NewData("writer", []byte(fmt.Sprintf("e-%d", i))).Sign(kp)
		if _, err := c.SubmitWait(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
	headBefore := c.Head().Number
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop bytes off the last record so the final block
	// fails its checksum.
	path := lastSegmentPath(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	c2, _, err := store.OpenChain(cfg, s2)
	if err != nil {
		t.Fatalf("restore after torn tail: %v", err)
	}
	defer c2.Close()
	if got := c2.Head().Number; got != headBefore-1 {
		t.Errorf("restored head %d, want last durable block %d", got, headBefore-1)
	}
	if err := c2.VerifyIntegrity(); err != nil {
		t.Errorf("restored chain integrity: %v", err)
	}
}

// TestGroupCommitCrashSemantics pins the group-commit receipt contract
// across a crash: receipts that resolved durable name only blocks the
// disk actually has, and blocks lost with the unsynced tail never
// resolved a receipt. The test interposes on the store's Sync so it can
// hold the group fsync in flight, crash it, and then cut the segment
// file back to the last completed sync — the state a real power cut
// between seal and fsync leaves behind.
func TestGroupCommitCrashSemantics(t *testing.T) {
	dir := t.TempDir()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "group-crash")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	ss := open(t, dir, Options{})

	var (
		gateMu  sync.Mutex
		hold    chan struct{} // non-nil: syncs block until it closes
		crashed error         // non-nil: syncs fail without touching the disk
		syncs   int
	)
	syncFn := func() error {
		gateMu.Lock()
		h := hold
		gateMu.Unlock()
		if h != nil {
			<-h
		}
		gateMu.Lock()
		err := crashed
		if err == nil {
			syncs++
		}
		gateMu.Unlock()
		if err != nil {
			return err
		}
		return ss.Sync()
	}

	cfg := chain.Config{
		SequenceLength: 100,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
		Durability: chain.Durability{
			Mode: chain.DurabilityGroup,
			Sync: syncFn,
		},
	}
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Attach(c, ss); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Phase A: in group mode a resolved receipt means the block's bytes
	// were fsynced, so everything sealed here must survive the crash.
	for i := 0; i < 5; i++ {
		e := block.NewData("writer", []byte(fmt.Sprintf("durable-%d", i))).Sign(kp)
		if _, err := c.SubmitWait(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
	gateMu.Lock()
	phaseASyncs := syncs
	gateMu.Unlock()
	if phaseASyncs == 0 {
		t.Fatal("group receipts resolved without any sync")
	}
	headDurable := c.Head().Number
	segPath := lastSegmentPath(t, dir)
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	durableSize := info.Size()

	// Phase B: hold the group fsync and submit. The block seals and its
	// record lands in the segment file, but the receipt must stay
	// pending — sealed is not durable under DurabilityGroup.
	gateMu.Lock()
	hold = make(chan struct{})
	gateMu.Unlock()
	lost := block.NewData("writer", []byte("lost-in-crash")).Sign(kp)
	receipts, err := c.Submit(ctx, lost)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Head().Number == headDurable {
		if time.Now().After(deadline) {
			t.Fatal("block never sealed while the sync was held")
		}
		time.Sleep(time.Millisecond)
	}
	sealedInfo, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if sealedInfo.Size() <= durableSize {
		t.Fatalf("sealed block not in the segment file (size %d, durable prefix %d)", sealedInfo.Size(), durableSize)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	_, werr := receipts[0].Wait(shortCtx)
	cancel()
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("receipt resolved before the group fsync: %v", werr)
	}

	// Crash: the held fsync never completes, and no later sync (including
	// the drain in Close) reaches the disk. The receipt must resolve with
	// the failure, never claiming durability for a block the disk lacks.
	errCrash := errors.New("simulated crash before group fsync")
	gateMu.Lock()
	crashed = errCrash
	close(hold)
	hold = nil
	gateMu.Unlock()
	if _, err := receipts[0].Wait(ctx); !errors.Is(err, errCrash) {
		t.Fatalf("receipt after crashed sync: %v, want %v", err, errCrash)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	// Close fsyncs whatever the OS still buffered, so restore the crash
	// state by hand: everything past the last completed group sync never
	// reached stable storage.
	if err := os.Truncate(segPath, durableSize); err != nil {
		t.Fatal(err)
	}

	cfg.Durability = chain.Durability{}
	s2 := open(t, dir, Options{})
	defer s2.Close()
	c2, _, err := store.OpenChain(cfg, s2)
	if err != nil {
		t.Fatalf("restore after group-commit crash: %v", err)
	}
	defer c2.Close()
	if got := c2.Head().Number; got != headDurable {
		t.Errorf("restored head %d, want %d (exactly the group-synced prefix)", got, headDurable)
	}
	if err := c2.VerifyIntegrity(); err != nil {
		t.Errorf("restored chain integrity: %v", err)
	}
}

// TestMigrateFromFileStore converts a one-file-per-block store.File
// directory (including its MARKER) into a segment store and verifies
// the restored chain is identical.
func TestMigrateFromFileStore(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "migrate")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	fileDir := t.TempDir()
	fs, err := store.NewFile(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Attach(c, fs); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		e := block.NewData("writer", []byte(fmt.Sprintf("m-%d", i))).Sign(kp)
		sealed, err := c.SubmitWait(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.SubmitWait(ctx, block.NewDeletion("writer", sealed[0].Ref).Sign(kp)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CompactWait(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Marker() == 0 {
		t.Fatal("file-store chain never truncated")
	}
	headHash := c.HeadHash()
	marker := c.Marker()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	segDir := t.TempDir()
	dst := open(t, segDir, Options{})
	if err := Migrate(fs, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if m, err := dst.Marker(); err != nil || m != marker {
		t.Fatalf("migrated marker = %d, %v; want %d", m, err, marker)
	}
	if _, ok, err := dst.Snapshot(); err != nil || !ok {
		t.Fatalf("migrated store has no snapshot: ok=%v err=%v", ok, err)
	}
	c2, _, err := store.OpenChain(cfg, dst)
	if err != nil {
		t.Fatalf("restore from migrated store: %v", err)
	}
	defer c2.Close()
	defer dst.Close()
	if c2.HeadHash() != headHash {
		t.Error("migrated chain head hash differs")
	}
	if c2.Marker() != marker {
		t.Errorf("migrated chain marker %d, want %d", c2.Marker(), marker)
	}
	if err := c2.VerifyIntegrity(); err != nil {
		t.Errorf("migrated chain integrity: %v", err)
	}
}
