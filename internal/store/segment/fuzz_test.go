package segment

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

// Fuzz target for the segment-file scanner and the store's recovery
// path: a segment left in any state by a crash (or an attacker with
// disk access) must scan without panicking, and opening a directory
// around it must either fail cleanly or yield a usable store.
// Regenerate the checked-in corpora with:
//
//	SELDEL_GEN_FUZZ_CORPUS=1 go test ./internal/store/segment/ -run TestGenerateFuzzCorpora

// frameRecord wraps payload in the segment record framing: block
// number, length, payload CRC, payload.
func frameRecord(num uint64, payload []byte) []byte {
	buf := make([]byte, recHeaderSize, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint64(buf[0:8], num)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// segmentSeeds builds whole-file corpora: a clean three-block segment
// built from real block encodings, plus torn and corrupted variants.
func segmentSeeds() [][]byte {
	kp := identity.Deterministic("alpha", "segment-fuzz")
	var clean bytes.Buffer
	clean.WriteString(segMagic)
	prevHash := block.GenesisPrevHash
	prevTime := uint64(0)
	for num := uint64(0); num < 3; num++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("payload-%d", num))).Sign(kp)
		b := block.NewNormal(num, prevTime+1, prevHash, []*block.Entry{e})
		clean.Write(frameRecord(num, b.Encode()))
		prevHash, prevTime = b.Hash(), b.Header.Time
	}
	full := clean.Bytes()

	torn := append([]byte(nil), full...)
	torn = torn[:len(torn)-5] // crash mid-payload of the last record

	corrupt := append([]byte(nil), full...)
	corrupt[len(segMagic)+recHeaderSize+2] ^= 0xff // flip a payload byte: CRC breaks

	badLen := append([]byte(nil), full[:len(segMagic)]...)
	badLen = append(badLen, frameRecord(0, []byte("x"))...)
	binary.LittleEndian.PutUint32(badLen[len(segMagic)+8:], 1<<30) // absurd length

	return [][]byte{
		full,
		torn,
		corrupt,
		badLen,
		[]byte(segMagic),        // header only
		[]byte("not a segment"), // foreign file
		nil,                     // empty file
		full[:len(segMagic)-2],  // truncated magic
	}
}

// recordSeeds builds single-record corpora for the shared record
// parser: a clean record from a real block encoding, plus every way a
// record can be short, lying, or corrupt.
func recordSeeds() [][]byte {
	kp := identity.Deterministic("alpha", "segment-fuzz")
	e := block.NewData("alpha", []byte("record-fuzz-payload")).Sign(kp)
	b := block.NewNormal(7, 1, block.GenesisPrevHash, []*block.Entry{e})
	clean := frameRecord(7, b.Encode())

	badCRC := append([]byte(nil), clean...)
	badCRC[len(badCRC)-1] ^= 0xff

	badLen := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint32(badLen[8:12], uint32(len(badLen))) // claims more than present

	hugeLen := append([]byte(nil), clean...)
	binary.LittleEndian.PutUint32(hugeLen[8:12], 1<<30)

	return [][]byte{
		clean,
		append(append([]byte(nil), clean...), clean...), // two records back to back
		clean[:recHeaderSize-1],                         // truncated header
		clean[:len(clean)-3],                            // truncated payload
		badCRC,
		badLen,
		hugeLen,
		frameRecord(0, nil), // empty payload is a valid record
		nil,
	}
}

func FuzzParseRecord(f *testing.F) {
	for _, s := range recordSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		num, payload, span, ok := parseRecord(raw)
		if !ok {
			if span != 0 || payload != nil {
				t.Fatalf("failed parse leaked span=%d payload=%v", span, payload != nil)
			}
			return
		}
		if span < recHeaderSize || span > len(raw) {
			t.Fatalf("span %d outside record bounds (%d bytes in)", span, len(raw))
		}
		if len(payload) != span-recHeaderSize {
			t.Fatalf("payload %d bytes, span %d", len(payload), span)
		}
		// A record the parser accepts must round-trip through the
		// writer's framing bit for bit — the append path, the rewrite,
		// and the scan share one format.
		if got := frameRecord(num, payload); !bytes.Equal(got, raw[:span]) {
			t.Fatalf("re-framed record differs from parsed bytes")
		}
	})
}

func FuzzScanSegmentFile(f *testing.F) {
	for _, s := range segmentSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "seg-00000000.seg")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		si, err := scanSegmentFile(0, path)
		if err != nil {
			t.Fatalf("scan of a readable file errored: %v", err)
		}
		if si.SizeBytes != int64(len(raw)) {
			t.Fatalf("scan reports %d bytes, file has %d", si.SizeBytes, len(raw))
		}
		if si.Records > 0 && si.First > si.Last {
			t.Fatalf("inverted live range %d..%d", si.First, si.Last)
		}
		if len(raw) > 0 && si.Records == 0 && !si.Torn {
			// Non-empty bytes that produced no records must be flagged
			// (the file is either foreign or damaged)...
			if string(raw) != segMagic {
				t.Fatalf("%d undecodable bytes not reported as torn", len(raw))
			}
		}
		// The recovery path must cope with the same bytes: open the
		// directory around the segment, then close whatever came up.
		s, err := Open(dir, Options{})
		if err != nil {
			return // a clean refusal is acceptable; a panic is not
		}
		s.Close()
	})
}

// TestGenerateFuzzCorpora rewrites the checked-in seed corpora. Guarded
// by an environment variable so a normal test run never touches them.
func TestGenerateFuzzCorpora(t *testing.T) {
	if os.Getenv("SELDEL_GEN_FUZZ_CORPUS") == "" {
		t.Skip("set SELDEL_GEN_FUZZ_CORPUS=1 to regenerate fuzz corpora")
	}
	writeFuzzCorpus(t, "FuzzScanSegmentFile", segmentSeeds())
	writeFuzzCorpus(t, "FuzzParseRecord", recordSeeds())
}

func writeFuzzCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
