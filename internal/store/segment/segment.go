package segment

import (
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/seldel/seldel/internal/block"
	manifestlog "github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/store"
)

const (
	// segMagic heads every segment file.
	segMagic = "SELSEG1\n"
	// recHeaderSize is the fixed per-record prefix: block number (u64),
	// payload length (u32), payload CRC-32 (u32), little-endian.
	recHeaderSize = 16
	// DefaultSegmentBytes is the roll threshold used when
	// Options.SegmentBytes is 0.
	DefaultSegmentBytes = 1 << 20
	// DefaultMaxOpenFiles is the sealed-segment read-handle cap used
	// when Options.MaxOpenFiles is 0.
	DefaultMaxOpenFiles = 64
	// maxRecordBytes bounds a single decoded record, so a corrupt
	// length field cannot drive allocation.
	maxRecordBytes = 64 << 20
	// PartitionsMetaName is the metadata file that marks a directory as
	// a partitioned store root (per-partition stores live in p000/,
	// p001/, ... beneath it). It is defined here rather than in the
	// partition package so Open can recognize such roots without an
	// import cycle.
	PartitionsMetaName = "PARTITIONS"
)

// Options parameterize a segment store.
type Options struct {
	// SegmentBytes is the size threshold at which the active segment is
	// sealed and a new one started. Smaller segments retire earlier
	// under truncation (bytes reclaim sooner); larger ones amortize
	// per-file cost further. 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// SyncEvery forces an fsync after every PutBlock — per-block
	// durability, the strongest (and slowest) setting. When false (the
	// default) the store syncs on segment roll, truncation, snapshot,
	// and Close, bounding loss to the unsynced tail of the active
	// segment; Open truncates any torn tail back to the last durable
	// record.
	SyncEvery bool
	// MaxOpenFiles caps how many sealed segments keep their read file
	// handle open at once. Sealed segments are read-only; their handles
	// live in an LRU and are reopened transparently on access, so a
	// very long-lived store holds O(MaxOpenFiles) descriptors instead
	// of one per segment. The active segment's handle is always open
	// and does not count against the cap. 0 means DefaultMaxOpenFiles.
	MaxOpenFiles int
	// DisableManifest turns off the durable deletion manifest (the
	// DELETIONS audit log written alongside every truncation). Off by
	// default because the manifest is the only post-erasure evidence of
	// what was deleted and the only local defense against a peer
	// resurrecting cut blocks; disable it for benchmarks isolating raw
	// truncation cost.
	DisableManifest bool
}

// recordLoc locates one block's payload inside a segment file.
type recordLoc struct {
	seg *segmentFile
	off int64 // payload offset (past the record header)
	n   int   // payload length
}

// segmentFile is one on-disk segment.
type segmentFile struct {
	id    uint64
	path  string
	f     *os.File
	size  int64
	count int    // records currently indexed in this segment
	first uint64 // lowest indexed block number (valid when count > 0)
	last  uint64 // highest indexed block number
}

// Store is a file-backed store.Store keeping blocks in bounded,
// append-only segment files. All methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	segs   []*segmentFile // ascending by id; last one is active
	index  map[uint64]recordLoc
	marker uint64
	closed bool
	// del is the durable deletion manifest (nil when disabled): one
	// audit record per executed truncation, appended before the marker
	// shift becomes durable.
	del *manifestlog.Log
	// lru holds the sealed segments whose read handle is currently
	// open, least recently used first. The active segment never enters
	// it: its handle must stay open for appends.
	lru []*segmentFile
	// fsyncs counts fsyncs issued against segment data files and the
	// store directory (metadata marker files are excluded). The bench's
	// fsyncs-per-block column divides this by blocks appended.
	fsyncs atomic.Uint64
}

var _ store.Store = (*Store)(nil)

// Open opens (or creates) a segment store rooted at dir, reconciling
// the manifest against the segment files actually present: torn tails
// are truncated to the last durable record, segments created but not
// yet recorded are adopted, and truncations interrupted mid-flight
// (manifest advanced, files not yet deleted or rewritten) are
// completed. The reconciled state is re-persisted before Open returns.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes < 0 {
		return nil, fmt.Errorf("segment: negative SegmentBytes")
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxOpenFiles < 0 {
		return nil, fmt.Errorf("segment: negative MaxOpenFiles")
	}
	if opts.MaxOpenFiles == 0 {
		opts.MaxOpenFiles = DefaultMaxOpenFiles
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: create dir: %w", err)
	}
	// A partitioned store root holds per-partition stores in p000/,
	// p001/, ... subdirectories plus a PARTITIONS metadata file; it is
	// not itself a segment store. Opening it directly would create a
	// stray empty store alongside the partitions, so refuse loudly.
	if _, err := os.Stat(filepath.Join(dir, PartitionsMetaName)); err == nil {
		return nil, fmt.Errorf("segment: %s is a partitioned store root (has %s); open its p*/ subdirectories or use the partition package", dir, PartitionsMetaName)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[uint64]recordLoc),
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	s.marker = man.marker
	// The snapshot checkpoint is a second durable marker record: if the
	// manifest was lost (or predates the last truncation), the snapshot
	// still prevents cut blocks from resurrecting into the stream. A
	// corrupt snapshot is therefore a loud failure, not a fallback —
	// silently ignoring it could replay logically deleted blocks.
	switch snap, err := readSnapshot(dir); {
	case err == nil:
		if snap.Marker > s.marker {
			s.marker = snap.Marker
		}
	case !errors.Is(err, errNoCheckpoint):
		return nil, err
	}
	// The deletion manifest is the third durable marker record, written
	// BEFORE the snapshot in the truncation sequence. A crash between
	// the manifest append and the snapshot write leaves the manifest
	// head ahead of both marker files; rolling the marker forward to it
	// completes the interrupted deletion instead of resurrecting the
	// blocks it recorded.
	if !opts.DisableManifest {
		del, err := manifestlog.Open(dir)
		if err != nil {
			return nil, err
		}
		s.del = del
		if head, ok := del.Head(); ok && head.NewMarker > s.marker {
			s.marker = head.NewMarker
		}
	}
	if err := s.recover(man); err != nil {
		s.closeFiles()
		return nil, err
	}
	if err := s.writeManifestLocked(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Marker returns the persisted Genesis marker (0 when never truncated).
func (s *Store) Marker() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, store.ErrClosed
	}
	return s.marker, nil
}

// recover scans the segment files on disk, reconciles them with the
// manifest, and rebuilds the in-memory offset index.
func (s *Store) recover(man *manifest) error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("segment: list dir: %w", err)
	}
	onDisk := make(map[uint64]string)
	for _, e := range names {
		id, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		onDisk[id] = filepath.Join(s.dir, e.Name())
	}
	// A segment the manifest expects but the directory lacks is fine
	// only when the whole segment was already logically cut: then the
	// crash hit between the manifest update and the unlink's sibling
	// operations, and the deletion simply completed. Anything else is
	// real data loss and must fail loudly.
	for _, ms := range man.segments {
		if _, ok := onDisk[ms.id]; ok {
			continue
		}
		if ms.count == 0 || ms.last < man.marker {
			continue
		}
		return fmt.Errorf("segment: segment %d (blocks %d-%d) listed in manifest but missing on disk", ms.id, ms.first, ms.last)
	}
	ids := make([]uint64, 0, len(onDisk))
	for id := range onDisk {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		seg, err := s.openSegment(id, onDisk[id])
		if err != nil {
			return err
		}
		// Interrupted truncation: every indexed block is already below
		// the marker, so the segment was due to be unlinked. Finish.
		if seg.count > 0 && seg.last < s.marker {
			for num, loc := range s.index {
				if loc.seg == seg {
					delete(s.index, num)
				}
			}
			seg.f.Close()
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("segment: remove retired segment %d: %w", id, err)
			}
			continue
		}
		s.segs = append(s.segs, seg)
	}
	// Drop index entries below the marker (the boundary segment may
	// still hold pre-marker records after a crash); rewrite boundary
	// segments so the stale bytes are physically reclaimed too.
	for num := range s.index {
		if num < s.marker {
			delete(s.index, num)
		}
	}
	for _, seg := range s.segs {
		if seg.count > 0 && seg.first < s.marker {
			if err := s.rewriteSegmentLocked(seg); err != nil {
				return err
			}
		}
	}
	if len(s.segs) == 0 {
		if err := s.startSegmentLocked(0); err != nil {
			return err
		}
	}
	// Recovery opened every segment to scan its records; hand the
	// sealed ones to the read-handle LRU so the cap holds from the
	// first moment (lruTouch deduplicates segments a boundary rewrite
	// already registered).
	for _, seg := range s.segs[:len(s.segs)-1] {
		if seg.f != nil {
			s.lruTouch(seg)
		}
	}
	return nil
}

// openSegment reads one segment file, truncating a torn tail back to
// the last record whose length and checksum verify, and registers its
// records in the index (higher segments win on duplicate numbers, so
// re-puts resolve to the newest copy).
func (s *Store) openSegment(id uint64, path string) (*segmentFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	seg := &segmentFile{id: id, path: path, f: f}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: read %s: %w", path, err)
	}
	good := int64(0)
	if len(raw) >= len(segMagic) && string(raw[:len(segMagic)]) == segMagic {
		good = int64(len(segMagic))
		for {
			num, payload, span, ok := parseRecord(raw[good:])
			if !ok {
				break // torn or corrupt tail
			}
			s.indexRecord(seg, num, good+recHeaderSize, len(payload))
			good += int64(span)
		}
	} else if len(raw) > 0 {
		f.Close()
		return nil, fmt.Errorf("segment: %s: bad magic", path)
	} else {
		// Zero-length file: a segment created right before a crash.
		// Stamp the magic so appends can proceed.
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("segment: stamp %s: %w", path, err)
		}
		good = int64(len(segMagic))
	}
	if good < int64(len(raw)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("segment: truncate torn tail of %s: %w", path, err)
		}
	}
	seg.size = good
	return seg, nil
}

// indexRecord points the index at a record and maintains the owning
// segment's block-range accounting. A record for an already-indexed
// number supersedes the older copy (its owner loses the count).
func (s *Store) indexRecord(seg *segmentFile, num uint64, off int64, n int) {
	if old, ok := s.index[num]; ok {
		old.seg.count--
	}
	s.index[num] = recordLoc{seg: seg, off: off, n: n}
	if seg.count == 0 || num < seg.first {
		seg.first = num
	}
	if seg.count == 0 || num > seg.last {
		seg.last = num
	}
	seg.count++
}

func segmentName(id uint64) string { return fmt.Sprintf("seg-%08d.seg", id) }

func parseSegmentName(name string) (uint64, bool) {
	var id uint64
	if n, err := fmt.Sscanf(name, "seg-%08d.seg", &id); err != nil || n != 1 {
		return 0, false
	}
	if name != segmentName(id) {
		return 0, false
	}
	return id, true
}

// startSegmentLocked creates and activates a fresh segment file.
func (s *Store) startSegmentLocked(id uint64) error {
	path := filepath.Join(s.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: create %s: %w", path, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("segment: stamp %s: %w", path, err)
	}
	s.segs = append(s.segs, &segmentFile{
		id:   id,
		path: path,
		f:    f,
		size: int64(len(segMagic)),
	})
	return nil
}

func (s *Store) active() *segmentFile { return s.segs[len(s.segs)-1] }

// handleLocked returns an open file handle for seg, transparently
// reopening a sealed segment whose handle was evicted from the
// read-handle LRU. The active segment is exempt: its handle stays open
// for appends and never counts against the cap. The returned handle is
// only guaranteed open until the next handleLocked call (which may
// evict it), so callers must finish their reads under the same lock
// hold without interleaving other segment accesses.
func (s *Store) handleLocked(seg *segmentFile) (*os.File, error) {
	if seg == s.active() {
		return seg.f, nil
	}
	if seg.f != nil {
		s.lruTouch(seg)
		return seg.f, nil
	}
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: reopen %s: %w", seg.path, err)
	}
	seg.f = f
	s.lruInsert(seg)
	return f, nil
}

// lruInsert registers an open sealed-segment handle as most recently
// used, closing the least recently used handles beyond the cap.
func (s *Store) lruInsert(seg *segmentFile) {
	s.lru = append(s.lru, seg)
	for len(s.lru) > s.opts.MaxOpenFiles {
		old := s.lru[0]
		s.lru = s.lru[1:]
		if old.f != nil {
			old.f.Close()
			old.f = nil
		}
	}
}

// lruTouch marks an open handle most recently used, registering it if
// it is not tracked yet (a segment freshly sealed by a roll).
func (s *Store) lruTouch(seg *segmentFile) {
	for i, e := range s.lru {
		if e == seg {
			copy(s.lru[i:], s.lru[i+1:])
			s.lru[len(s.lru)-1] = seg
			return
		}
	}
	s.lruInsert(seg)
}

// lruDrop forgets a segment whose handle the caller is closing or
// replacing.
func (s *Store) lruDrop(seg *segmentFile) {
	for i, e := range s.lru {
		if e == seg {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			return
		}
	}
}

// OpenHandles reports how many segment file handles are currently open
// (observability for the fd-cap tests; always ≥ 1 for the active
// segment).
func (s *Store) OpenHandles() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, store.ErrClosed
	}
	open := 0
	for _, seg := range s.segs {
		if seg.f != nil {
			open++
		}
	}
	return open, nil
}

// PutBlock implements store.Store: append one length-prefixed record to
// the active segment, rolling to a new segment at the size threshold.
// Re-putting a block number appends a superseding record; the index
// always resolves to the newest copy. The record is built in a pooled
// scratch buffer (records.go), so the append path allocates nothing
// per block in steady state.
func (s *Store) PutBlock(b *block.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	rb := getRecordBuf()
	defer putRecordBuf(rb)
	rec, payloadLen := appendBlockRecord(rb, b)
	// The write path must agree with the recovery scan: a record larger
	// than maxRecordBytes would append fine today and then be treated
	// as a torn tail by the next Open, truncating it AND every record
	// behind it. Reject it up front instead.
	if payloadLen > maxRecordBytes {
		return fmt.Errorf("segment: block %d encodes to %d bytes, over the %d-byte record limit",
			b.Header.Number, payloadLen, maxRecordBytes)
	}

	act := s.active()
	if act.size+int64(len(rec)) > s.opts.SegmentBytes && act.size > int64(len(segMagic)) {
		if err := s.rollLocked(); err != nil {
			return err
		}
		act = s.active()
	}
	if _, err := act.f.WriteAt(rec, act.size); err != nil {
		return fmt.Errorf("segment: append block %d: %w", b.Header.Number, err)
	}
	s.indexRecord(act, b.Header.Number, act.size+recHeaderSize, payloadLen)
	act.size += int64(len(rec))
	if s.opts.SyncEvery {
		if err := act.f.Sync(); err != nil {
			return fmt.Errorf("segment: sync: %w", err)
		}
		s.fsyncs.Add(1)
	}
	return nil
}

// rollLocked seals the active segment (fsync) and starts its successor,
// recording the new segment in the manifest so a crash between the two
// steps is recovered by the adopt-unknown-segments path.
func (s *Store) rollLocked() error {
	act := s.active()
	if err := act.f.Sync(); err != nil {
		return fmt.Errorf("segment: seal segment %d: %w", act.id, err)
	}
	s.fsyncs.Add(1)
	if err := s.startSegmentLocked(act.id + 1); err != nil {
		return err
	}
	// The sealed segment's handle becomes a read handle: track it in
	// the LRU so long-lived stores stop accumulating descriptors.
	s.lruInsert(act)
	return s.writeManifestLocked()
}

// GetBlock implements store.Store: one pread via the offset index.
func (s *Store) GetBlock(num uint64) (*block.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getBlockLocked(num)
}

func (s *Store) getBlockLocked(num uint64) (*block.Block, error) {
	if s.closed {
		return nil, store.ErrClosed
	}
	loc, ok := s.index[num]
	if !ok {
		return nil, fmt.Errorf("%w: %d", store.ErrNotFound, num)
	}
	f, err := s.handleLocked(loc.seg)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, loc.n)
	if _, err := f.ReadAt(payload, loc.off); err != nil {
		return nil, fmt.Errorf("segment: read block %d: %w", num, err)
	}
	return block.DecodeBlock(payload)
}

// Range implements store.Store.
func (s *Store) Range() (uint64, uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, false, store.ErrClosed
	}
	if len(s.index) == 0 {
		return 0, 0, false, nil
	}
	first, last := ^uint64(0), uint64(0)
	for num := range s.index {
		if num < first {
			first = num
		}
		if num > last {
			last = num
		}
	}
	return first, last, true, nil
}

// sortedNumbersLocked returns the indexed block numbers ≥ marker in
// ascending order. Stale pre-marker records (possible only transiently
// after a crash, before Open's rewrite) are never served.
func (s *Store) sortedNumbersLocked() []uint64 {
	nums := make([]uint64, 0, len(s.index))
	for num := range s.index {
		if num >= s.marker {
			nums = append(nums, num)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}

// LoadAll implements store.Store. Raw records are read under the store
// lock, then decoded concurrently via the shared decode fan-out.
func (s *Store) LoadAll() ([]*block.Block, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, store.ErrClosed
	}
	nums := s.sortedNumbersLocked()
	raws := make([][]byte, len(nums))
	for i, num := range nums {
		loc := s.index[num]
		f, err := s.handleLocked(loc.seg)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		raw := make([]byte, loc.n)
		if _, err := f.ReadAt(raw, loc.off); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("segment: read block %d: %w", num, err)
		}
		raws[i] = raw
	}
	s.mu.Unlock()
	return store.DecodeAll(nums, raws)
}

// Stream implements store.Store: blocks are yielded in ascending order
// starting at the Genesis marker — the snapshot checkpoint's promise
// that a restore replays only the live suffix. Each block is read and
// decoded lazily per yield (re-locking per read, so a concurrent Close
// is honoured mid-stream).
func (s *Store) Stream() iter.Seq2[*block.Block, error] {
	return func(yield func(*block.Block, error) bool) {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			yield(nil, store.ErrClosed)
			return
		}
		nums := s.sortedNumbersLocked()
		s.mu.Unlock()
		for _, num := range nums {
			b, err := s.GetBlock(num)
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(b, nil) {
				return
			}
		}
	}
}

// DeleteBelow implements store.Store: persist marker, write the
// snapshot checkpoint, then physically retire the cut prefix — whole
// segments below the marker are unlinked (one syscall each, however
// many blocks they held) and the boundary segment straddling the marker
// is rewritten without its dead prefix. The durable ordering (snapshot
// and manifest first, file surgery second) makes an interrupted
// truncation recoverable: Open completes the deletion instead of
// resurrecting cut blocks.
func (s *Store) DeleteBelow(marker uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteBelowLocked(marker, nil)
}

// DeleteBelowRecord is DeleteBelow with a deletion-manifest record:
// rec is appended durably to the DELETIONS log after the active
// segment syncs and before the marker files shift, so the audit trail
// exists from the first moment the deletion can become visible. The
// assigned manifest sequence number is written back into rec. On a
// store without a manifest (DisableManifest) the record is dropped and
// the call degrades to DeleteBelow.
func (s *Store) DeleteBelowRecord(marker uint64, rec *manifestlog.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteBelowLocked(marker, rec)
}

func (s *Store) deleteBelowLocked(marker uint64, rec *manifestlog.Record) error {
	if s.closed {
		return store.ErrClosed
	}
	if marker < s.marker {
		return fmt.Errorf("segment: marker moving backwards: %d < %d", marker, s.marker)
	}
	if err := s.active().f.Sync(); err != nil {
		return fmt.Errorf("segment: sync before truncate: %w", err)
	}
	s.fsyncs.Add(1)
	if rec != nil && s.del != nil {
		stored, err := s.del.Append(*rec)
		if err != nil {
			return err
		}
		rec.Seq = stored.Seq
	}
	s.marker = marker
	if err := s.writeSnapshotLocked(); err != nil {
		return err
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	for num := range s.index {
		if num < marker {
			loc := s.index[num]
			loc.seg.count--
			delete(s.index, num)
		}
	}
	// Build the surviving set in a fresh slice: a mid-loop failure
	// (ENOSPC during a rewrite, an unlink error) must leave s.segs
	// consistent — already-retired segments gone, everything else
	// intact — so Close/SizeBytes/the manifest never see duplicates.
	kept := make([]*segmentFile, 0, len(s.segs))
	for i, seg := range s.segs {
		active := i == len(s.segs)-1
		switch {
		case seg.count == 0 && !active:
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				s.segs = append(kept, s.segs[i:]...)
				return fmt.Errorf("segment: retire segment %d: %w", seg.id, err)
			}
			s.lruDrop(seg)
			if seg.f != nil {
				seg.f.Close()
				seg.f = nil
			}
		case seg.count > 0 && seg.first < marker:
			if err := s.rewriteSegmentLocked(seg); err != nil {
				s.segs = append(kept, s.segs[i:]...)
				return err
			}
			kept = append(kept, seg)
		default:
			kept = append(kept, seg)
		}
	}
	s.segs = kept
	if len(s.segs) == 0 {
		if err := s.startSegmentLocked(0); err != nil {
			return err
		}
	}
	// Make the unlinks durable before the manifest stops listing the
	// retired segments, so a power loss cannot surface a manifest that
	// expects files whose deletion already reached the disk (or vice
	// versa leave both — either ordering is recoverable, torn metadata
	// is not).
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	return s.writeManifestLocked()
}

// rewriteSegmentLocked compacts one segment down to its records that
// are still indexed and at-or-above the marker, atomically (write to a
// temp file, fsync, rename over). The segment's open handle and the
// index offsets are refreshed to the rewritten file.
func (s *Store) rewriteSegmentLocked(seg *segmentFile) error {
	type keptRec struct {
		num uint64
		off int64
		n   int
	}
	var kept []keptRec
	for num, loc := range s.index {
		if loc.seg == seg && num >= s.marker {
			kept = append(kept, keptRec{num: num, off: loc.off, n: loc.n})
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].off < kept[j].off })

	src, err := s.handleLocked(seg)
	if err != nil {
		return err
	}
	tmpPath := seg.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: rewrite %s: %w", seg.path, err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	if _, err := tmp.Write([]byte(segMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("segment: rewrite %s: %w", seg.path, err)
	}
	off := int64(len(segMagic))
	newOffsets := make(map[uint64]int64, len(kept))
	rb := getRecordBuf()
	defer putRecordBuf(rb)
	for _, r := range kept {
		// Read the payload straight into the record buffer behind the
		// reserved header, then stamp the header — one pooled buffer
		// serves the whole rewrite.
		rec := rb.sized(r.n)
		if _, err := src.ReadAt(rec[recHeaderSize:], r.off); err != nil {
			tmp.Close()
			return fmt.Errorf("segment: rewrite %s: read block %d: %w", seg.path, r.num, err)
		}
		fillRecordHeader(rec, r.num)
		if _, err := tmp.WriteAt(rec, off); err != nil {
			tmp.Close()
			return fmt.Errorf("segment: rewrite %s: %w", seg.path, err)
		}
		newOffsets[r.num] = off + recHeaderSize
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("segment: rewrite %s: sync: %w", seg.path, err)
	}
	s.fsyncs.Add(1)
	if err := os.Rename(tmpPath, seg.path); err != nil {
		tmp.Close()
		return fmt.Errorf("segment: rewrite %s: rename: %w", seg.path, err)
	}
	s.lruDrop(seg)
	if seg.f != nil {
		seg.f.Close()
	}
	seg.f = tmp
	if seg != s.active() {
		s.lruInsert(seg)
	}
	seg.size = off
	seg.count = 0
	for _, r := range kept {
		s.index[r.num] = recordLoc{seg: seg, off: newOffsets[r.num], n: r.n}
		if seg.count == 0 || r.num < seg.first {
			seg.first = r.num
		}
		if seg.count == 0 || r.num > seg.last {
			seg.last = r.num
		}
		seg.count++
	}
	return nil
}

// SizeBytes implements store.Store: the physical size of every segment
// file — the number that visibly shrinks when deletion retires
// segments, which is the whole point (E4 measures it).
func (s *Store) SizeBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, store.ErrClosed
	}
	var total int64
	for _, seg := range s.segs {
		total += seg.size
	}
	return total, nil
}

// Sync forces the active segment to stable storage, for callers that
// batch appends with SyncEvery disabled but want a durability point.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	if err := s.active().f.Sync(); err != nil {
		return fmt.Errorf("segment: sync: %w", err)
	}
	s.fsyncs.Add(1)
	return nil
}

// FsyncCount reports the number of fsyncs issued so far against
// segment data files and the store directory. Marker metadata writes
// (manifest, snapshot, deletion log) are excluded: the counter exists
// to measure append-path durability cost, where the segment data sync
// is the unit of work group commit amortizes.
func (s *Store) FsyncCount() uint64 { return s.fsyncs.Load() }

// SegmentCount returns the number of live segment files (observability
// for tests and the storage benchmark).
func (s *Store) SegmentCount() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, store.ErrClosed
	}
	return len(s.segs), nil
}

// Close implements store.Store: sync the active segment, persist the
// manifest, and release every file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.active().f.Sync()
	if err == nil {
		s.fsyncs.Add(1)
	}
	if merr := s.writeManifestLocked(); err == nil {
		err = merr
	}
	s.closeFiles()
	s.closed = true
	if err != nil {
		return fmt.Errorf("segment: close: %w", err)
	}
	return nil
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
			seg.f = nil
		}
	}
	if s.del != nil {
		s.del.Close()
	}
	s.lru = nil
}

// errNoCheckpoint distinguishes "no snapshot yet" from a read failure.
var errNoCheckpoint = errors.New("segment: no snapshot checkpoint")
