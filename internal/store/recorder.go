package store

import (
	"errors"
	"sync"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/manifest"
)

// deletionRecorder is the optional store capability behind the durable
// deletion manifest: stores implementing it (the segment store) persist
// the audit record atomically with the marker shift.
type deletionRecorder interface {
	DeleteBelowRecord(marker uint64, rec *manifest.Record) error
}

// deletionSource is the optional store capability of recovering
// previously persisted deletion records, used to re-seed a restored
// chain's tombstone index.
type deletionSource interface {
	DeletionRecords() ([]manifest.Record, error)
}

// markerSource is the optional store capability of reporting its
// persisted Genesis marker.
type markerSource interface {
	Marker() (uint64, error)
}

// Recorder is a chain.Listener that mirrors every chain mutation into a
// Store: appended blocks are persisted, truncations delete the cut
// prefix. Errors are collected rather than panicking, since listener
// callbacks have no error channel; check Err after critical sections.
type Recorder struct {
	mu    sync.Mutex
	store Store
	err   error
}

// NewRecorder returns a Recorder writing into s.
func NewRecorder(s Store) *Recorder {
	return &Recorder{store: s}
}

// OnAppend implements chain.Listener.
func (r *Recorder) OnAppend(b *block.Block) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.store.PutBlock(b)
}

// OnTruncate implements chain.Listener.
func (r *Recorder) OnTruncate(_, newMarker uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.store.DeleteBelow(newMarker)
}

// OnTruncateEvent implements chain.TruncateEventListener: when the
// event carries a deletion record and the store can persist one, the
// record is written durably in the same operation as the prune. The
// record is passed by copy so the store's sequence write-back never
// aliases chain state; a store whose DELETIONS log is further along
// than the chain's numbering (a reattached chain over an older dir)
// gets the record renumbered rather than dropped.
func (r *Recorder) OnTruncateEvent(ev compact.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	dr, ok := r.store.(deletionRecorder)
	if !ok || ev.Record == nil {
		r.err = r.store.DeleteBelow(ev.NewMarker)
		return
	}
	rec := *ev.Record
	err := dr.DeleteBelowRecord(ev.NewMarker, &rec)
	if errors.Is(err, manifest.ErrSeqOrder) {
		rec = *ev.Record
		rec.Seq = 0 // let the log assign its own next sequence
		err = dr.DeleteBelowRecord(ev.NewMarker, &rec)
	}
	r.err = err
}

// Err returns the first persistence error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Attach registers a Recorder on c and backfills the current live blocks
// into s, so the store is complete from this point on.
func Attach(c *chain.Chain, s Store) (*Recorder, error) {
	for _, b := range c.Blocks() {
		if err := s.PutBlock(b); err != nil {
			return nil, err
		}
	}
	// A store whose persisted marker is already AHEAD of the chain's
	// (blocks were lost but the DELETIONS log survived, rolling the
	// marker forward at Open) must keep it: moving it back would
	// resurrect the store's deleted range, and the segment store
	// rejects backwards moves anyway. The chain's own marker catches
	// up when it adopts a post-deletion status quo.
	target := c.Marker()
	if ms, ok := s.(markerSource); ok {
		if m, err := ms.Marker(); err == nil && m > target {
			target = m
		}
	}
	if err := s.DeleteBelow(target); err != nil {
		return nil, err
	}
	// A store directory can outlive its block files (an operator wiped
	// segments but kept the DELETIONS audit log): the surviving records
	// must still arm the fresh chain's resurrection floor.
	if err := seedTombstones(c, s); err != nil {
		return nil, err
	}
	r := NewRecorder(s)
	c.AddListener(r)
	return r, nil
}

// OpenChain restores a chain from the live blocks persisted in s and
// attaches a Recorder so future mutations stay persisted. The store is
// consumed as a stream: each block is decoded, pool-verified, and
// registered before the next is read, so memory stays bounded by the
// live chain itself even for long persisted suffixes.
func OpenChain(cfg chain.Config, s Store) (*chain.Chain, *Recorder, error) {
	c, err := chain.RestoreStream(cfg, s.Stream())
	if err != nil {
		return nil, nil, err
	}
	if err := seedTombstones(c, s); err != nil {
		return nil, nil, err
	}
	r := NewRecorder(s)
	c.AddListener(r)
	return c, r, nil
}

// seedTombstones replays the store's persisted deletion records into
// the restored chain, so audits and the sync resurrection floor survive
// the restart that erased the blocks they describe.
func seedTombstones(c *chain.Chain, s Store) error {
	ds, ok := s.(deletionSource)
	if !ok {
		return nil
	}
	recs, err := ds.DeletionRecords()
	if err != nil {
		return err
	}
	c.SeedTombstones(recs)
	return nil
}
