package store

import (
	"sync"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
)

// Recorder is a chain.Listener that mirrors every chain mutation into a
// Store: appended blocks are persisted, truncations delete the cut
// prefix. Errors are collected rather than panicking, since listener
// callbacks have no error channel; check Err after critical sections.
type Recorder struct {
	mu    sync.Mutex
	store Store
	err   error
}

// NewRecorder returns a Recorder writing into s.
func NewRecorder(s Store) *Recorder {
	return &Recorder{store: s}
}

// OnAppend implements chain.Listener.
func (r *Recorder) OnAppend(b *block.Block) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.store.PutBlock(b)
}

// OnTruncate implements chain.Listener.
func (r *Recorder) OnTruncate(_, newMarker uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.store.DeleteBelow(newMarker)
}

// Err returns the first persistence error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Attach registers a Recorder on c and backfills the current live blocks
// into s, so the store is complete from this point on.
func Attach(c *chain.Chain, s Store) (*Recorder, error) {
	for _, b := range c.Blocks() {
		if err := s.PutBlock(b); err != nil {
			return nil, err
		}
	}
	if err := s.DeleteBelow(c.Marker()); err != nil {
		return nil, err
	}
	r := NewRecorder(s)
	c.AddListener(r)
	return r, nil
}

// OpenChain restores a chain from the live blocks persisted in s and
// attaches a Recorder so future mutations stay persisted. The store is
// consumed as a stream: each block is decoded, pool-verified, and
// registered before the next is read, so memory stays bounded by the
// live chain itself even for long persisted suffixes.
func OpenChain(cfg chain.Config, s Store) (*chain.Chain, *Recorder, error) {
	c, err := chain.RestoreStream(cfg, s.Stream())
	if err != nil {
		return nil, nil, err
	}
	r := NewRecorder(s)
	c.AddListener(r)
	return c, r, nil
}
