package store

import (
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/seldel/seldel/internal/block"
)

// File is a file-backed Store keeping one file per block plus a MARKER
// file. Truncation unlinks block files, so `du` on the directory shows
// the space reclaimed by selective deletion.
type File struct {
	mu     sync.Mutex
	dir    string
	closed bool
}

const blockFileExt = ".blk"

// NewFile opens (or creates) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	return &File{dir: dir}, nil
}

// Dir returns the store's root directory.
func (f *File) Dir() string { return f.dir }

func (f *File) blockPath(num uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("%012d%s", num, blockFileExt))
}

// PutBlock implements Store. Writes are atomic (tmp file + rename).
func (f *File) PutBlock(b *block.Block) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return writeAtomic(f.blockPath(b.Header.Number), b.Encode())
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return nil
}

// GetBlock implements Store.
func (f *File) GetBlock(num uint64) (*block.Block, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	raw, err := os.ReadFile(f.blockPath(num))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %d", ErrNotFound, num)
		}
		return nil, fmt.Errorf("store: read block %d: %w", num, err)
	}
	return block.DecodeBlock(raw)
}

// DeleteBelow implements Store: unlink every block file below marker.
func (f *File) DeleteBelow(marker uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	nums, err := f.blockNumbersLocked()
	if err != nil {
		return err
	}
	for _, num := range nums {
		if num >= marker {
			continue
		}
		if err := os.Remove(f.blockPath(num)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: delete block %d: %w", num, err)
		}
	}
	return writeAtomic(filepath.Join(f.dir, "MARKER"), []byte(strconv.FormatUint(marker, 10)))
}

// Marker returns the persisted Genesis marker (0 when never truncated).
func (f *File) Marker() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	raw, err := os.ReadFile(filepath.Join(f.dir, "MARKER"))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: read marker: %w", err)
	}
	m, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: parse marker: %w", err)
	}
	return m, nil
}

func (f *File) blockNumbersLocked() ([]uint64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: list dir: %w", err)
	}
	nums := make([]uint64, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, blockFileExt) {
			continue
		}
		num, err := strconv.ParseUint(strings.TrimSuffix(name, blockFileExt), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		nums = append(nums, num)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// Range implements Store.
func (f *File) Range() (uint64, uint64, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, 0, false, ErrClosed
	}
	nums, err := f.blockNumbersLocked()
	if err != nil {
		return 0, 0, false, err
	}
	if len(nums) == 0 {
		return 0, 0, false, nil
	}
	return nums[0], nums[len(nums)-1], true, nil
}

// LoadAll implements Store. Files are read sequentially under the
// store lock (one syscall stream keeps the directory scan cheap, and a
// concurrent Close/DeleteBelow cannot race the reads) but decoded
// concurrently via the shared decode fan-out.
func (f *File) LoadAll() ([]*block.Block, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	nums, err := f.blockNumbersLocked()
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	raws := make([][]byte, len(nums))
	for i, num := range nums {
		raw, err := os.ReadFile(f.blockPath(num))
		if err != nil {
			f.mu.Unlock()
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("%w: %d", ErrNotFound, num)
			}
			return nil, fmt.Errorf("store: read block %d: %w", num, err)
		}
		raws[i] = raw
	}
	f.mu.Unlock()
	return decodeAll(nums, raws)
}

// Stream implements Store: the block-number listing is taken once
// under the store lock, then each file is read and decoded lazily per
// yielded block (re-locking per read, so a concurrent Close is
// honoured mid-stream). Memory is bounded by one raw + one decoded
// block, which is what lets long persisted chains restore without
// materializing twice.
func (f *File) Stream() iter.Seq2[*block.Block, error] {
	return func(yield func(*block.Block, error) bool) {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			yield(nil, ErrClosed)
			return
		}
		nums, err := f.blockNumbersLocked()
		f.mu.Unlock()
		if err != nil {
			yield(nil, err)
			return
		}
		for _, num := range nums {
			b, err := f.GetBlock(num)
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(b, nil) {
				return
			}
		}
	}
}

// SizeBytes implements Store: total size of all block files.
func (f *File) SizeBytes() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return 0, fmt.Errorf("store: list dir: %w", err)
	}
	var total int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), blockFileExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return 0, fmt.Errorf("store: stat %s: %w", e.Name(), err)
		}
		total += info.Size()
	}
	return total, nil
}

// Close implements Store.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}
