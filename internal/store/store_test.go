package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

// sealOne drives one entry through the chain's submission pipeline and
// returns the appended blocks (normal plus any due summary), waiting
// for pending compaction so store assertions are deterministic.
func sealOne(t *testing.T, c *chain.Chain, e *block.Entry) []*block.Block {
	t.Helper()
	blocks, err := chain.SealBlocks(context.Background(), c, e)
	if err != nil {
		t.Fatalf("SealBlocks: %v", err)
	}
	if err := c.CompactWait(context.Background()); err != nil {
		t.Fatalf("CompactWait: %v", err)
	}
	return blocks
}

func testBlock(t *testing.T, num uint64, prev *block.Block) *block.Block {
	t.Helper()
	kp := identity.Deterministic("alpha", "store-test")
	e := block.NewData("alpha", []byte(fmt.Sprintf("payload-%d", num))).Sign(kp)
	prevHash := block.GenesisPrevHash
	var prevTime uint64
	if prev != nil {
		prevHash = prev.Hash()
		prevTime = prev.Header.Time
	}
	return block.NewNormal(num, prevTime+1, prevHash, []*block.Entry{e})
}

// storeSuite runs the common Store contract against any implementation.
func storeSuite(t *testing.T, s Store) {
	t.Helper()
	if _, _, ok, err := s.Range(); err != nil || ok {
		t.Fatalf("fresh store Range = ok=%v err=%v", ok, err)
	}
	var blocks []*block.Block
	var prev *block.Block
	for num := uint64(0); num < 6; num++ {
		b := testBlock(t, num, prev)
		blocks = append(blocks, b)
		prev = b
		if err := s.PutBlock(b); err != nil {
			t.Fatalf("PutBlock(%d): %v", num, err)
		}
	}
	first, last, ok, err := s.Range()
	if err != nil || !ok || first != 0 || last != 5 {
		t.Fatalf("Range = %d..%d ok=%v err=%v", first, last, ok, err)
	}
	got, err := s.GetBlock(3)
	if err != nil {
		t.Fatalf("GetBlock: %v", err)
	}
	if got.Hash() != blocks[3].Hash() {
		t.Error("round-tripped block hash differs")
	}
	if _, err := s.GetBlock(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetBlock(99) = %v, want ErrNotFound", err)
	}
	sizeBefore, err := s.SizeBytes()
	if err != nil || sizeBefore <= 0 {
		t.Fatalf("SizeBytes = %d, %v", sizeBefore, err)
	}
	// Truncate below 3 and verify physical deletion.
	if err := s.DeleteBelow(3); err != nil {
		t.Fatalf("DeleteBelow: %v", err)
	}
	if _, err := s.GetBlock(2); !errors.Is(err, ErrNotFound) {
		t.Errorf("block 2 survived truncation: %v", err)
	}
	if _, err := s.GetBlock(3); err != nil {
		t.Errorf("block 3 deleted by truncation: %v", err)
	}
	sizeAfter, err := s.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if sizeAfter >= sizeBefore {
		t.Errorf("no space reclaimed: %d -> %d", sizeBefore, sizeAfter)
	}
	all, err := s.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("LoadAll returned %d blocks, want 3", len(all))
	}
	for i, b := range all {
		if b.Header.Number != uint64(3+i) {
			t.Errorf("LoadAll[%d] = block %d", i, b.Header.Number)
		}
	}
	// Stream must yield exactly what LoadAll returns, in order, and
	// honour early termination.
	var streamed []*block.Block
	for b, err := range s.Stream() {
		if err != nil {
			t.Fatalf("Stream: %v", err)
		}
		streamed = append(streamed, b)
	}
	if len(streamed) != len(all) {
		t.Fatalf("Stream yielded %d blocks, LoadAll %d", len(streamed), len(all))
	}
	for i := range all {
		if streamed[i].Hash() != all[i].Hash() {
			t.Errorf("Stream[%d] differs from LoadAll[%d]", i, i)
		}
	}
	for range s.Stream() {
		break // an early break must not panic or leak
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.PutBlock(blocks[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("PutBlock after Close = %v, want ErrClosed", err)
	}
	for _, err := range s.Stream() {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Stream after Close = %v, want ErrClosed", err)
		}
	}
}

func TestMemStoreContract(t *testing.T) {
	storeSuite(t, NewMem())
}

func TestFileStoreContract(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeSuite(t, s)
}

func TestFileStoreDeletesFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	var prev *block.Block
	for num := uint64(0); num < 4; num++ {
		b := testBlock(t, num, prev)
		prev = b
		if err := s.PutBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	countBlk := func() int {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".blk") {
				n++
			}
		}
		return n
	}
	if got := countBlk(); got != 4 {
		t.Fatalf("%d block files, want 4", got)
	}
	if err := s.DeleteBelow(2); err != nil {
		t.Fatal(err)
	}
	if got := countBlk(); got != 2 {
		t.Errorf("%d block files after truncation, want 2", got)
	}
	m, err := s.Marker()
	if err != nil || m != 2 {
		t.Errorf("Marker = %d, %v", m, err)
	}
	// Marker persists across reopen.
	s2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Marker()
	if err != nil || m2 != 2 {
		t.Errorf("reopened Marker = %d, %v", m2, err)
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.blk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Range(); err != nil || ok {
		t.Errorf("Range with only foreign files: ok=%v err=%v", ok, err)
	}
}

func chainConfig(reg *identity.Registry) chain.Config {
	return chain.Config{
		SequenceLength: 3,
		MaxSequences:   1,
		Shrink:         chain.ShrinkMinimal,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
}

func TestRecorderMirrorsChain(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("alpha", "store-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	c, err := chain.New(chainConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	s := NewMem()
	rec, err := Attach(c, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
		sealOne(t, c, e)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	// Store must hold exactly the live blocks.
	first, last, ok, err := s.Range()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if first != c.Marker() || last != c.Head().Number {
		t.Errorf("store range %d..%d, chain %d..%d", first, last, c.Marker(), c.Head().Number)
	}
}

func TestOpenChainRestoresState(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("alpha", "store-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chainConfig(reg)
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fs, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(c, fs); err != nil {
		t.Fatal(err)
	}
	var keepRef block.Ref
	for i := 0; i < 8; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
		blocks := sealOne(t, c, e)
		if i == 6 {
			keepRef = block.Ref{Block: blocks[0].Header.Number, Entry: 0}
		}
	}
	headBefore := c.HeadHash()
	markerBefore := c.Marker()

	// "Restart": rebuild from disk with a fresh clock.
	cfg2 := chainConfig(reg)
	cfg2.Clock = simclock.NewLogical(0)
	restored, rec, err := OpenChain(cfg2, fs)
	if err != nil {
		t.Fatalf("OpenChain: %v", err)
	}
	if restored.HeadHash() != headBefore {
		t.Error("restored head differs")
	}
	if restored.Marker() != markerBefore {
		t.Error("restored marker differs")
	}
	if err := restored.VerifyIntegrity(); err != nil {
		t.Errorf("restored integrity: %v", err)
	}
	if _, _, ok := restored.Lookup(keepRef); !ok {
		t.Error("restored chain lost a live entry")
	}
	// The restored chain keeps working and persisting.
	e := block.NewData("alpha", []byte("after restart")).Sign(kp)
	sealOne(t, restored, e)
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder after restore: %v", err)
	}
}

func TestRestoreRejectsCorruptSuffix(t *testing.T) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("alpha", "store-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chainConfig(reg)
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		e := block.NewData("alpha", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
		sealOne(t, c, e)
	}
	blocks := c.Blocks()
	if _, err := chain.Restore(cfg, nil); err == nil {
		t.Error("empty restore accepted")
	}
	// Drop a middle block: hash link broken.
	gap := append(append([]*block.Block{}, blocks[:2]...), blocks[3:]...)
	if _, err := chain.Restore(cfg, gap); err == nil {
		t.Error("gapped restore accepted")
	}
	// Misaligned start (not at a sequence boundary).
	if _, err := chain.Restore(cfg, blocks[1:]); err == nil {
		t.Error("misaligned restore accepted")
	}
}

func TestLoadAllClosedStores(t *testing.T) {
	m := NewMem()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("mem: want ErrClosed, got %v", err)
	}
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("file: want ErrClosed, got %v", err)
	}
}
