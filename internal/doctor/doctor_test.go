package doctor

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
)

// buildDir runs a real deletion lifecycle over a segment store — every
// entry is erased a beat after it is written, so retention truncates
// repeatedly — then closes everything and hands back the directory for
// the doctor to examine. The returned marker and head describe the
// store's final durable state.
func buildDir(t *testing.T, rounds int) (dir string, marker, head uint64) {
	t.Helper()
	dir = t.TempDir()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "doctor-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	s, err := segment.Open(dir, segment.Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Attach(c, s); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < rounds; i++ {
		e := block.NewData("writer", []byte(fmt.Sprintf("entry-%02d", i))).Sign(kp)
		sealed, err := c.SubmitWait(ctx, e)
		if err != nil {
			t.Fatalf("SubmitWait(%d): %v", i, err)
		}
		if _, err := c.SubmitWait(ctx, block.NewDeletion("writer", sealed[0].Ref).Sign(kp)); err != nil {
			t.Fatalf("delete(%d): %v", i, err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	marker, head = c.Marker(), c.Head().Number
	if marker == 0 {
		t.Fatal("chain never truncated; harness is vacuous")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, marker, head
}

// dirDigest fingerprints every file in dir (name, size, content hash),
// for proving check mode never writes.
func dirDigest(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		data, err := os.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s %d ", filepath.Base(n), len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func findCode(rep *Report, code string) *Finding {
	for i := range rep.Findings {
		if rep.Findings[i].Code == code {
			return &rep.Findings[i]
		}
	}
	return nil
}

func TestDoctorCleanLifecycle(t *testing.T) {
	dir, marker, head := buildDir(t, 16)
	before := dirDigest(t, dir)
	rep, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("healthy directory not clean: %+v", rep.Findings)
	}
	if rep.Marker != marker {
		t.Errorf("report marker %d, want %d", rep.Marker, marker)
	}
	if rep.MarkerFile != marker || rep.SnapshotMarker != marker || rep.ManifestMarker != marker {
		t.Errorf("marker sources disagree on a clean store: MANIFEST=%d SNAPSHOT=%d DELETIONS=%d",
			rep.MarkerFile, rep.SnapshotMarker, rep.ManifestMarker)
	}
	if !rep.HasBlocks || rep.FirstLive != marker || rep.LastLive != head {
		t.Errorf("live range %d..%d (has=%v), want %d..%d", rep.FirstLive, rep.LastLive, rep.HasBlocks, marker, head)
	}
	if rep.Records < 2 {
		t.Fatalf("only %d deletion records; lifecycle too short to exercise cross-checks", rep.Records)
	}
	// The audit trail earns its name: executed deletions carry tombstones.
	recs, _, err := manifest.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tombs int
	for _, r := range recs {
		tombs += len(r.Tombstones)
	}
	if tombs == 0 {
		t.Error("no tombstones across the whole lifecycle; deletions left no audit trail")
	}
	// Check mode is strictly read-only.
	if after := dirDigest(t, dir); after != before {
		t.Error("check mode modified the directory")
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "status: clean") {
		t.Errorf("console report missing clean status:\n%s", buf.String())
	}
}

func TestDoctorTornManifestTail(t *testing.T) {
	dir, _, _ := buildDir(t, 12)
	path := filepath.Join(dir, manifest.FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: a CRC prefix and half a record, no newline.
	if _, err := f.WriteString(`deadbeef {"seq":99,"old_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("torn manifest tail not detected")
	}
	fn := findCode(rep, "manifest-line")
	if fn == nil || !fn.Repairable || fn.Severity != Warn {
		t.Fatalf("want repairable manifest-line warning, got %+v", rep.Findings)
	}

	rep, err = Run(dir, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired || !rep.Clean() {
		t.Fatalf("repair did not heal the torn tail: %+v", rep.Findings)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("deadbeef")) {
		t.Error("torn bytes survived repair")
	}
}

func TestDoctorInterruptedTruncation(t *testing.T) {
	dir, marker, head := buildDir(t, 12)
	if head <= marker {
		t.Fatal("no live suffix above the marker; cannot stage an interrupted truncation")
	}
	// Simulate a crash between the DELETIONS append and the marker
	// shift: the manifest records a further deletion the other durable
	// state never saw.
	log, err := manifest.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	next := marker + 1
	if _, err := log.Append(manifest.Record{OldMarker: marker, NewMarker: next}); err != nil {
		t.Fatal(err)
	}
	log.Close()

	rep, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("interrupted truncation not detected")
	}
	for _, code := range []string{"truncation-interrupted", "snapshot-stale", "stale-blocks"} {
		fn := findCode(rep, code)
		if fn == nil || !fn.Repairable {
			t.Errorf("missing repairable finding %q: %+v", code, rep.Findings)
		}
	}
	if rep.Marker != next {
		t.Errorf("effective marker %d, want the manifest head %d", rep.Marker, next)
	}

	rep, err = Run(dir, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("repair did not complete the truncation: %+v", rep.Findings)
	}
	// Repair rolled every durable record forward, never back.
	if rep.MarkerFile != next || rep.SnapshotMarker != next || rep.ManifestMarker != next {
		t.Errorf("marker sources after repair: MANIFEST=%d SNAPSHOT=%d DELETIONS=%d, want all %d",
			rep.MarkerFile, rep.SnapshotMarker, rep.ManifestMarker, next)
	}
	if rep.FirstLive != next {
		t.Errorf("stale blocks below %d survived repair (first live %d)", next, rep.FirstLive)
	}
}

func TestDoctorHydratesLostManifest(t *testing.T) {
	dir, marker, _ := buildDir(t, 12)
	if err := os.Remove(filepath.Join(dir, manifest.FileName)); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn := findCode(rep, "manifest-missing-record")
	if fn == nil || !fn.Repairable {
		t.Fatalf("lost manifest not detected: %+v", rep.Findings)
	}
	if rep.Records != 0 || rep.ManifestMarker != 0 {
		t.Fatalf("phantom records after deletion: %d (marker %d)", rep.Records, rep.ManifestMarker)
	}

	rep, err = Run(dir, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("repair did not hydrate: %+v", rep.Findings)
	}
	recs, _, err := manifest.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("hydration produced %d records, want 1", len(recs))
	}
	got := recs[0]
	if !got.Hydrated {
		t.Error("hydrated record not flagged Hydrated")
	}
	if got.NewMarker != marker {
		t.Errorf("hydrated record covers up to %d, want %d", got.NewMarker, marker)
	}
	if got.SummaryBlock != marker || got.SummaryHash == (block.GenesisPrevHash) {
		t.Errorf("hydrated record missing checkpoint identity: block %d hash %x", got.SummaryBlock, got.SummaryHash)
	}
	if len(got.Tombstones) != 0 {
		t.Error("hydration invented tombstones it cannot know")
	}
}

func TestDoctorArchive(t *testing.T) {
	dir, _, _ := buildDir(t, 16)
	recs, _, err := manifest.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("only %d records; archive would be a no-op", len(recs))
	}
	headBefore := recs[len(recs)-1]

	rep, err := Run(dir, Options{Archive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("archive left the directory unclean: %+v", rep.Findings)
	}
	if rep.Records != 1 || rep.Archived != len(recs)-1 {
		t.Fatalf("after archive: %d active, %d archived; want 1 and %d", rep.Records, rep.Archived, len(recs)-1)
	}
	// The head stays in the active log — it carries the resurrection
	// floor a rejoining replica checks sync offers against.
	live, _, err := manifest.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].Seq != headBefore.Seq || live[0].NewMarker != headBefore.NewMarker {
		t.Fatalf("active head after archive = %+v, want seq %d", live, headBefore.Seq)
	}
	// Nothing was lost: active + archived re-assembles the full trail.
	archived, warns, err := manifest.ReadArchive(dir)
	if err != nil || len(warns) != 0 {
		t.Fatalf("archive unreadable: %v %v", err, warns)
	}
	if len(archived) != len(recs)-1 {
		t.Fatalf("%d archived records, want %d", len(archived), len(recs)-1)
	}
	for i, r := range archived {
		if r.Seq != recs[i].Seq || r.NewMarker != recs[i].NewMarker {
			t.Fatalf("archived record %d = seq %d marker %d, want seq %d marker %d",
				i, r.Seq, r.NewMarker, recs[i].Seq, recs[i].NewMarker)
		}
	}
	// Archiving twice is idempotent: one active record, nothing to move.
	rep, err = Run(dir, Options{Archive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 1 || rep.Archived != len(recs)-1 {
		t.Fatalf("second archive moved records: %d active, %d archived", rep.Records, rep.Archived)
	}
}

// TestDoctorStoreReopensAfterRepair proves repair leaves a directory the
// store itself accepts: the chain restores and passes integrity checks.
func TestDoctorStoreReopensAfterRepair(t *testing.T) {
	dir, marker, head := buildDir(t, 12)
	// The next marker a real truncation would have reached: one full
	// sequence further, so the repaired chain restores aligned.
	next := marker + 3
	if next > head {
		t.Fatalf("head %d too low to stage a further truncation at %d", head, next)
	}
	// Stage both failure modes at once: a torn manifest tail and a
	// manifest record ahead of the marker.
	log, err := manifest.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(manifest.Record{OldMarker: marker, NewMarker: next}); err != nil {
		t.Fatal(err)
	}
	log.Close()
	f, err := os.OpenFile(filepath.Join(dir, manifest.FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage with no newline"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if rep, err := Run(dir, Options{Repair: true}); err != nil {
		t.Fatal(err)
	} else if !rep.Clean() {
		t.Fatalf("repair left findings: %+v", rep.Findings)
	}

	s, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatalf("store rejects repaired directory: %v", err)
	}
	defer s.Close()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "doctor-test")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	c, _, err := store.OpenChain(chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}, s)
	if err != nil {
		t.Fatalf("chain restore after repair: %v", err)
	}
	defer c.Close()
	if err := c.VerifyIntegrity(); err != nil {
		t.Errorf("restored chain integrity: %v", err)
	}
	if c.Marker() != next {
		t.Errorf("restored marker %d, want the completed truncation %d", c.Marker(), next)
	}
}
