package doctor

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/seldel/seldel/internal/store/segment"
)

// PartitionedReport aggregates one doctor Report per partition store
// under a partitioned root (a directory carrying the PARTITIONS
// metadata file with per-partition segment stores in p*/ beneath it).
type PartitionedReport struct {
	Root string
	// Partitions holds one report per p*/ subdirectory, in name order.
	Partitions []*Report
	// Findings are root-level issues (missing partition directories,
	// stray files) that no single partition report can carry.
	Findings []Finding
}

// Clean reports whether the root and every partition passed.
func (r *PartitionedReport) Clean() bool {
	for _, f := range r.Findings {
		if f.Severity > Info {
			return false
		}
	}
	for _, p := range r.Partitions {
		if !p.Clean() {
			return false
		}
	}
	return true
}

// Write renders the aggregated report: a root header followed by each
// partition in the single-store console format.
func (r *PartitionedReport) Write(w io.Writer) error {
	fmt.Fprintf(w, "doctor: %s (partitioned root, %d partitions)\n", r.Root, len(r.Partitions))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  %s: %s (%s)\n", f.Severity, f.Detail, f.Code)
	}
	for _, p := range r.Partitions {
		if err := p.Write(w); err != nil {
			return err
		}
	}
	if r.Clean() {
		fmt.Fprintf(w, "doctor: partitioned root clean\n")
	} else {
		fmt.Fprintf(w, "doctor: partitioned root has issues\n")
	}
	return nil
}

// IsPartitionedRoot reports whether dir is a partitioned store root
// (carries the PARTITIONS metadata file).
func IsPartitionedRoot(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, segment.PartitionsMetaName))
	return err == nil
}

// readStride parses the root's PARTITIONS metadata for the stripe
// width. A zero stride with a non-nil finding means the meta file was
// unreadable; callers then fall back to BaseMarker 0 for every
// partition (noisy but safe — false positives, never silence).
func readStride(root string) (uint64, *Finding) {
	raw, err := os.ReadFile(filepath.Join(root, segment.PartitionsMetaName))
	if err != nil {
		return 0, &Finding{
			Code:     "partitions-meta-unreadable",
			Severity: Warn,
			Detail:   fmt.Sprintf("cannot read %s: %v", segment.PartitionsMetaName, err),
		}
	}
	var meta struct {
		Stride uint64 `json:"stride"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		return 0, &Finding{
			Code:     "partitions-meta-corrupt",
			Severity: Warn,
			Detail:   fmt.Sprintf("cannot parse %s: %v", segment.PartitionsMetaName, err),
		}
	}
	return meta.Stride, nil
}

// RunPartitioned runs the doctor over every partition store beneath a
// partitioned root, applying the same options to each. An error is
// returned only when the root itself cannot be examined; per-partition
// drift lands in the per-partition findings.
func RunPartitioned(root string, opts Options) (*PartitionedReport, error) {
	if !IsPartitionedRoot(root) {
		return nil, fmt.Errorf("doctor: %s is not a partitioned store root (no %s)", root, segment.PartitionsMetaName)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("doctor: read root: %w", err)
	}
	rep := &PartitionedReport{Root: root}
	// Block numbers are striped: partition p's genesis sits at p·stride,
	// so a pristine partition legitimately has a marker far above zero.
	// Each partition's doctor pass needs that base or it misreads the
	// stripe offset as lost manifest history.
	stride, sfind := readStride(root)
	if sfind != nil {
		rep.Findings = append(rep.Findings, *sfind)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "p") {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		rep.Findings = append(rep.Findings, Finding{
			Code:     "no-partitions",
			Severity: Error,
			Detail:   "partitioned root has no p*/ partition directories",
		})
		return rep, nil
	}
	for _, name := range dirs {
		popts := opts
		if idx, err := strconv.Atoi(name[1:]); err == nil && idx >= 0 {
			popts.BaseMarker = uint64(idx) * stride
		}
		pr, err := Run(filepath.Join(root, name), popts)
		if err != nil {
			rep.Findings = append(rep.Findings, Finding{
				Code:     "partition-unreadable",
				Severity: Error,
				Detail:   fmt.Sprintf("%s: %v", name, err),
			})
			continue
		}
		rep.Partitions = append(rep.Partitions, pr)
	}
	return rep, nil
}
