// Package doctor cross-validates the durable state of a segment store
// directory: the deletion manifest (DELETIONS), the snapshot checkpoint
// (SNAPSHOT), the marker file (MANIFEST), and the live segment files
// must all tell the same story about what was deleted and what is live.
// It backs the `seldel doctor` subcommand.
//
// Check mode is strictly read-only — it reports drift without touching
// a byte, so it is safe to run against a directory a node has open (up
// to filesystem read consistency). Repair mode opens the store through
// the normal recovery path (which completes interrupted truncations,
// truncates torn tails, and reconciles the marker forward), hydrates a
// missing deletion record from the snapshot checkpoint, and optionally
// archives applied records to DELETIONS.archive.
package doctor

import (
	"fmt"
	"io"

	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/store/segment"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are observations that need no action.
	Info Severity = iota
	// Warn findings are drift the store's own recovery (or doctor
	// repair) resolves.
	Warn
	// Error findings mean durable state the recovery path cannot fix
	// by itself (corrupt metadata files, unreadable directories).
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Finding is one cross-validation result.
type Finding struct {
	// Code is a stable machine-readable identifier (e.g.
	// "truncation-interrupted", "manifest-missing-record").
	Code     string
	Severity Severity
	Detail   string
	// Repairable reports whether Run with Options.Repair resolves it.
	Repairable bool
}

// Options configures a doctor run.
type Options struct {
	// Repair opens the store through its recovery path (completing
	// interrupted truncations and healing torn tails) and hydrates a
	// missing deletion record from the snapshot checkpoint. Without it
	// the run is strictly read-only.
	Repair bool
	// Archive moves every applied deletion record except the head to
	// DELETIONS.archive, keeping the active manifest small. Implies the
	// store open of Repair.
	Archive bool
	// BaseMarker is the store's genesis block number — zero for a
	// classic chain, the partition's stripe base (index · stride) for a
	// store under a partitioned root. A marker at the base is pristine:
	// it needs no covering deletion record and hydrate must not
	// fabricate one below it. RunPartitioned fills it per partition.
	BaseMarker uint64
}

// Report is the outcome of one doctor run.
type Report struct {
	Dir string
	// Marker is the effective Genesis marker: the maximum of the marker
	// file, the snapshot checkpoint, and the deletion-manifest head —
	// the value the store's recovery would reconcile to.
	Marker uint64
	// MarkerFile, SnapshotMarker, and ManifestMarker are the three
	// durable marker records individually (zero when absent).
	MarkerFile     uint64
	SnapshotMarker uint64
	ManifestMarker uint64
	// Records counts the readable deletion records; Archived counts the
	// records in DELETIONS.archive.
	Records  int
	Archived int
	// FirstLive/LastLive bound the block numbers found in segment files
	// when HasBlocks.
	FirstLive uint64
	LastLive  uint64
	HasBlocks bool
	Findings  []Finding
	// Actions lists the repairs applied (empty in check mode).
	Actions []string
	// Repaired reports that repair mode ran to completion.
	Repaired bool
}

// Clean reports whether the directory passed every cross-check: no
// findings above Info severity.
func (r *Report) Clean() bool {
	for _, f := range r.Findings {
		if f.Severity > Info {
			return false
		}
	}
	return true
}

func (r *Report) add(code string, sev Severity, repairable bool, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Code:       code,
		Severity:   sev,
		Detail:     fmt.Sprintf(format, args...),
		Repairable: repairable,
	})
}

// Run cross-validates dir and, when requested, repairs it. An error is
// returned only when the directory itself cannot be examined (or a
// repair failed); drift and corruption inside it are reported as
// findings.
func Run(dir string, opts Options) (*Report, error) {
	if opts.Repair || opts.Archive {
		actions, err := repair(dir, opts)
		if err != nil {
			return nil, err
		}
		rep, err := check(dir, opts.BaseMarker)
		if err != nil {
			return nil, err
		}
		rep.Actions = actions
		rep.Repaired = true
		return rep, nil
	}
	return check(dir, opts.BaseMarker)
}

// check is the read-only cross-validation pass; base is the store's
// genesis block number (Options.BaseMarker).
func check(dir string, base uint64) (*Report, error) {
	rep := &Report{Dir: dir}
	info, err := segment.Inspect(dir)
	if err != nil {
		return nil, err
	}
	rep.MarkerFile = info.MarkerFile
	rep.FirstLive, rep.LastLive, rep.HasBlocks = info.First, info.Last, info.HasBlocks
	if info.MarkerErr != "" {
		rep.add("marker-file", Error, false, "MANIFEST unreadable: %s", info.MarkerErr)
	}
	if info.SnapshotErr != "" {
		rep.add("snapshot", Error, false, "SNAPSHOT unreadable: %s", info.SnapshotErr)
	}
	if info.Snapshot != nil {
		rep.SnapshotMarker = info.Snapshot.Marker
	}

	recs, warns, err := manifest.Read(dir)
	if err != nil {
		rep.add("manifest-unreadable", Error, false, "deletion manifest unreadable: %v", err)
	}
	rep.Records = len(recs)
	for _, w := range warns {
		rep.add("manifest-line", Warn, true, "deletion manifest: %s", w)
	}
	archived, _, err := manifest.ReadArchive(dir)
	if err == nil {
		rep.Archived = len(archived)
	}

	// The effective marker is what the store's recovery reconciles to:
	// the furthest of the three durable records.
	rep.Marker = info.MarkerFile
	if rep.SnapshotMarker > rep.Marker {
		rep.Marker = rep.SnapshotMarker
	}
	if len(recs) > 0 {
		head := recs[len(recs)-1]
		rep.ManifestMarker = head.NewMarker
		if head.NewMarker > rep.Marker {
			rep.Marker = head.NewMarker
		}
	}

	checkSegments(rep, info)
	checkManifest(rep, recs, info, base)
	return rep, nil
}

// checkSegments validates the segment files against the effective
// marker.
func checkSegments(rep *Report, info *segment.DirInfo) {
	for _, seg := range info.Segments {
		if seg.Torn {
			rep.add("segment-torn", Warn, true,
				"segment %d has undecodable bytes after its last good record (crash mid-append)", seg.ID)
		}
	}
	if info.HasBlocks && info.First < rep.Marker {
		rep.add("stale-blocks", Warn, true,
			"segment files still hold blocks %d..%d below marker %d (interrupted truncation)",
			info.First, min(info.Last, rep.Marker-1), rep.Marker)
	}
}

// checkManifest validates the deletion records against each other and
// against the other marker sources.
func checkManifest(rep *Report, recs []manifest.Record, info *segment.DirInfo, base uint64) {
	if rep.ManifestMarker > info.MarkerFile && info.MarkerErr == "" {
		rep.add("truncation-interrupted", Warn, true,
			"deletion record %d shifted the marker to %d but MANIFEST still says %d",
			recs[len(recs)-1].Seq, rep.ManifestMarker, info.MarkerFile)
	}
	if info.Snapshot != nil && rep.SnapshotMarker < rep.ManifestMarker {
		rep.add("snapshot-stale", Warn, true,
			"snapshot checkpoint at marker %d predates deletion record marker %d",
			rep.SnapshotMarker, rep.ManifestMarker)
	}
	if rep.Marker > base && rep.ManifestMarker < rep.Marker {
		rep.add("manifest-missing-record", Warn, true,
			"marker %d has no covering deletion record (manifest predates it or was lost); repair hydrates one from the snapshot checkpoint",
			rep.Marker)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq == recs[i-1].Seq {
			rep.add("manifest-dup-seq", Warn, false,
				"deletion records %d and %d share sequence number %d", i-1, i, recs[i].Seq)
		}
		if recs[i].OldMarker != recs[i-1].NewMarker {
			rep.add("manifest-gap", Info, false,
				"deletion record %d starts at marker %d but its predecessor ended at %d",
				recs[i].Seq, recs[i].OldMarker, recs[i-1].NewMarker)
		}
		if recs[i].NewMarker < recs[i-1].NewMarker {
			rep.add("manifest-regress", Error, false,
				"deletion record %d moves the marker backwards (%d after %d)",
				recs[i].Seq, recs[i].NewMarker, recs[i-1].NewMarker)
		}
	}
}

// repair opens the store through its normal recovery path — completing
// interrupted truncations, truncating torn tails, reconciling the
// marker — then hydrates a missing deletion record and optionally
// archives applied ones.
func repair(dir string, opts Options) ([]string, error) {
	var actions []string
	s, err := segment.Open(dir, segment.Options{})
	if err != nil {
		return nil, fmt.Errorf("doctor: repair open: %w", err)
	}
	defer s.Close()
	actions = append(actions, "opened store through recovery (interrupted truncations completed, torn tails healed)")
	for _, w := range s.DeletionWarnings() {
		actions = append(actions, "manifest recovery: "+w)
	}
	// Refresh the checkpoint: a crash after the DELETIONS append but
	// before the snapshot write leaves SNAPSHOT one deletion behind.
	if err := s.Checkpoint(); err != nil {
		return nil, fmt.Errorf("doctor: refresh checkpoint: %w", err)
	}

	marker, err := s.Marker()
	if err != nil {
		return nil, err
	}
	log := s.DeletionLog()
	if log != nil && marker > opts.BaseMarker {
		if act, err := hydrate(s, log, marker, opts.BaseMarker); err != nil {
			return nil, err
		} else if act != "" {
			actions = append(actions, act)
		}
	}
	if opts.Archive && log != nil {
		if n, err := archive(dir, log); err != nil {
			return nil, err
		} else if n > 0 {
			actions = append(actions, fmt.Sprintf("archived %d applied deletion record(s) to %s", n, manifest.ArchiveName))
		}
	}
	return actions, nil
}

// hydrate appends a synthetic deletion record when the marker advanced
// beyond the manifest's coverage (the manifest was introduced after
// deletions already ran, or the DELETIONS file was lost). The snapshot
// checkpoint — the marker block, "a trusted anchor ... already approved
// by the anchor nodes" (§IV-C) — supplies what the lost record knew;
// the per-entry tombstones are gone for good, which Hydrated records.
func hydrate(s *segment.Store, log *manifest.Log, marker, base uint64) (string, error) {
	covered := base
	if head, ok := log.Head(); ok && head.NewMarker > covered {
		covered = head.NewMarker
	}
	if covered >= marker {
		return "", nil
	}
	rec := manifest.Record{
		OldMarker: covered,
		NewMarker: marker,
		Hydrated:  true,
	}
	if snap, ok, err := s.Snapshot(); err == nil && ok && snap.Marker == marker && snap.Checkpoint != nil {
		rec.SummaryBlock = snap.Checkpoint.Header.Number
		rec.SummaryHash = snap.Checkpoint.Hash()
		rec.Time = snap.Checkpoint.Header.Time
	}
	stored, err := log.Append(rec)
	if err != nil {
		return "", fmt.Errorf("doctor: hydrate record: %w", err)
	}
	return fmt.Sprintf("hydrated deletion record %d covering markers %d..%d from the snapshot checkpoint",
		stored.Seq, rec.OldMarker, rec.NewMarker), nil
}

// archive moves every record except the head into DELETIONS.archive.
// The head stays: it carries the resurrection floor a rejoining replica
// checks sync offers against.
func archive(dir string, log *manifest.Log) (int, error) {
	recs := log.Records()
	if len(recs) <= 1 {
		return 0, nil
	}
	applied := recs[:len(recs)-1]
	if err := manifest.AppendToArchive(dir, applied); err != nil {
		return 0, fmt.Errorf("doctor: archive: %w", err)
	}
	if err := log.Rewrite(recs[len(recs)-1:]); err != nil {
		return 0, fmt.Errorf("doctor: archive rewrite: %w", err)
	}
	return len(applied), nil
}

// Write renders the report in the doctor subcommand's console format.
func (r *Report) Write(w io.Writer) error {
	fmt.Fprintf(w, "doctor: %s\n", r.Dir)
	fmt.Fprintf(w, "  marker: %d (MANIFEST=%d SNAPSHOT=%d DELETIONS=%d)\n",
		r.Marker, r.MarkerFile, r.SnapshotMarker, r.ManifestMarker)
	if r.HasBlocks {
		fmt.Fprintf(w, "  live blocks: %d..%d\n", r.FirstLive, r.LastLive)
	} else {
		fmt.Fprintf(w, "  live blocks: none\n")
	}
	fmt.Fprintf(w, "  deletion records: %d active, %d archived\n", r.Records, r.Archived)
	for _, a := range r.Actions {
		fmt.Fprintf(w, "  repair: %s\n", a)
	}
	for _, f := range r.Findings {
		fix := ""
		if f.Repairable && !r.Repaired {
			fix = " [repairable]"
		}
		fmt.Fprintf(w, "  %s: %s (%s)%s\n", f.Severity, f.Detail, f.Code, fix)
	}
	if r.Clean() {
		fmt.Fprintf(w, "  status: clean\n")
	} else {
		fmt.Fprintf(w, "  status: issues found\n")
	}
	return nil
}
