package loadgen

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Class is a fire function's verdict about one request, counted into
// the run summary.
type Class int

const (
	// OK: the request succeeded.
	OK Class = iota
	// Shed: the server refused it with backpressure (HTTP 429). Sheds
	// are the system working as designed; they are counted, not
	// recorded as latency samples.
	Shed
	// Errored: the request failed (transport error, 5xx, bad reply).
	Errored
)

// Options configure an open-loop run.
type Options struct {
	// Rate is the offered load in requests per second. Required.
	Rate float64
	// Duration bounds the run; Requests bounds the request count.
	// Whichever is set (or hit) first ends the schedule.
	Duration time.Duration
	Requests int
	// MaxInflight is a safety valve: if this many requests are already
	// outstanding, a scheduled request is counted as Dropped instead of
	// fired, so a wedged server cannot make the harness spawn unbounded
	// goroutines. It does NOT slow the schedule down — later requests
	// still fire at their scheduled times. Default 4096.
	MaxInflight int
	// Fire issues request i and classifies the outcome. It runs on its
	// own goroutine; many can be in flight at once. Required.
	Fire func(ctx context.Context, i int) Class
}

// Summary is one run's outcome.
type Summary struct {
	Offered   float64       `json:"offered_per_sec"`  // configured rate
	Achieved  float64       `json:"achieved_per_sec"` // completed OK / wall time
	Wall      time.Duration `json:"-"`
	WallSec   float64       `json:"wall_sec"`
	Scheduled int64         `json:"scheduled"`
	OKs       int64         `json:"ok"`
	Sheds     int64         `json:"sheds"`
	Errors    int64         `json:"errors"`
	Dropped   int64         `json:"dropped"` // hit MaxInflight, never fired
	P50Micros int64         `json:"p50_us"`
	P99Micros int64         `json:"p99_us"`
	P999Micro int64         `json:"p999_us"`
	MaxMicros int64         `json:"max_us"`
	MeanMicro float64       `json:"mean_us"`
}

// ShedFraction is Sheds over Scheduled (0 when nothing was scheduled).
func (s Summary) ShedFraction() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.Sheds) / float64(s.Scheduled)
}

// Run drives opts.Fire open-loop: request i's scheduled time is
// start + i/Rate, and the scheduler sleeps to each tick and fires
// WITHOUT waiting for any earlier response. Latency for successful
// requests is measured from the SCHEDULED time, so time a request
// spent queued behind a slow server counts against the server (no
// coordinated omission). Cancelling ctx stops scheduling and waits
// for in-flight requests.
func Run(ctx context.Context, opts Options) Summary {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4096
	}
	interval := time.Duration(float64(time.Second) / opts.Rate)
	var (
		wg        sync.WaitGroup
		inflight  atomic.Int64
		oks       atomic.Int64
		sheds     atomic.Int64
		errs      atomic.Int64
		dropped   atomic.Int64
		scheduled int64
		hist      Hist
	)
	start := time.Now()
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	for i := 0; opts.Requests <= 0 || i < opts.Requests; i++ {
		due := start.Add(time.Duration(i) * interval)
		if !deadline.IsZero() && due.After(deadline) {
			break
		}
		// Sleep to the scheduled tick. A late wakeup (previous Fire spawn,
		// GC, scheduler noise) does not shift later ticks: every due time
		// is computed from start, so the offered rate holds over the run.
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		scheduled++
		if inflight.Load() >= int64(opts.MaxInflight) {
			dropped.Add(1)
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func(i int, due time.Time) {
			defer wg.Done()
			defer inflight.Add(-1)
			switch opts.Fire(ctx, i) {
			case OK:
				oks.Add(1)
				// Scheduled-time latency: includes any lag between the due
				// tick and the server's reply.
				hist.RecordDuration(time.Since(due))
			case Shed:
				sheds.Add(1)
			default:
				errs.Add(1)
			}
		}(i, due)
	}
	wg.Wait()
	wall := time.Since(start)
	s := Summary{
		Offered:   opts.Rate,
		Wall:      wall,
		WallSec:   wall.Seconds(),
		Scheduled: scheduled,
		OKs:       oks.Load(),
		Sheds:     sheds.Load(),
		Errors:    errs.Load(),
		Dropped:   dropped.Load(),
		P50Micros: hist.Quantile(0.50),
		P99Micros: hist.Quantile(0.99),
		P999Micro: hist.Quantile(0.999),
		MaxMicros: hist.Max(),
		MeanMicro: hist.Mean(),
	}
	if sec := wall.Seconds(); sec > 0 {
		s.Achieved = float64(s.OKs) / sec
	}
	return s
}
