package loadgen

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// lowOf(bucketOf(v)) must never exceed v and must stay within the
	// histogram's relative-error budget (one mantissa step, ~1.6%).
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 12345, 1 << 40, math.MaxInt64} {
		lo := lowOf(bucketOf(v))
		if lo > v {
			t.Errorf("lowOf(bucketOf(%d)) = %d > input", v, lo)
		}
		if v > 0 && float64(v-lo)/float64(v) > 1.0/64+1e-9 {
			t.Errorf("value %d mapped to bucket low %d: relative error %.4f", v, lo, float64(v-lo)/float64(v))
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1..10000 µs uniformly: p50 ≈ 5000, p99 ≈ 9900, max = 10000.
	for i := int64(1); i <= 10000; i++ {
		h.Record(i)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q, want, tol float64) {
		got := float64(h.Quantile(q))
		if math.Abs(got-want)/want > tol {
			t.Errorf("q%.3f = %.0f, want %.0f ± %.0f%%", q, got, want, tol*100)
		}
	}
	check(0.50, 5000, 0.02)
	check(0.99, 9900, 0.02)
	check(0.999, 9990, 0.02)
	if h.Max() != 10000 {
		t.Errorf("max = %d", h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-5000.5) > 100 {
		t.Errorf("mean = %.1f", mean)
	}
	// The top quantile never exceeds the recorded max.
	if h.Quantile(1.0) > h.Max() {
		t.Errorf("q1.0 = %d > max %d", h.Quantile(1.0), h.Max())
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Errorf("empty hist: count=%d q99=%d max=%d", h.Count(), h.Quantile(0.99), h.Max())
	}
}

// TestOpenLoopIndependence is the defining property of the harness: a
// stalled server must NOT slow the request schedule down. 20 requests
// at 100/s, each stalling 150ms. A closed loop would need 20 × 150ms =
// 3s of wall time; an open loop needs ~190ms of schedule + one stall.
// And because latency is charged from the SCHEDULED time, p50 must
// reflect the stall, not the (instant) send.
func TestOpenLoopIndependence(t *testing.T) {
	const stall = 150 * time.Millisecond
	var fired atomic.Int64
	start := time.Now()
	sum := Run(context.Background(), Options{
		Rate:     100,
		Requests: 20,
		Fire: func(ctx context.Context, i int) Class {
			fired.Add(1)
			select {
			case <-time.After(stall):
			case <-ctx.Done():
			}
			return OK
		},
	})
	wall := time.Since(start)
	if sum.OKs != 20 || sum.Scheduled != 20 {
		t.Fatalf("oks=%d scheduled=%d", sum.OKs, sum.Scheduled)
	}
	// Closed-loop floor would be 20 stalls = 3s; the open loop finishes
	// in schedule length (190ms) + one stall + slack.
	if wall > 1500*time.Millisecond {
		t.Errorf("wall %v: schedule was serialized behind the stalls", wall)
	}
	// Every latency includes the stall (measured from scheduled time).
	// The histogram reports bucket lower bounds, so allow its ≤1.6%
	// quantization under-shoot.
	if p50 := time.Duration(sum.P50Micros) * time.Microsecond; p50 < stall-stall/32 {
		t.Errorf("p50 %v < stall %v: latency not charged from scheduled time", p50, stall)
	}
	if sum.Offered != 100 {
		t.Errorf("offered = %.1f", sum.Offered)
	}
}

func TestRunClassesAndShedFraction(t *testing.T) {
	sum := Run(context.Background(), Options{
		Rate:     2000,
		Requests: 40,
		Fire: func(ctx context.Context, i int) Class {
			switch i % 4 {
			case 0:
				return Shed
			case 1:
				return Errored
			default:
				return OK
			}
		},
	})
	if sum.OKs != 20 || sum.Sheds != 10 || sum.Errors != 10 {
		t.Errorf("oks=%d sheds=%d errors=%d", sum.OKs, sum.Sheds, sum.Errors)
	}
	if got := sum.ShedFraction(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("shed fraction = %v", got)
	}
}

func TestRunMaxInflightDrops(t *testing.T) {
	// Fire wedges until released; the valve must count drops instead of
	// spawning unbounded goroutines, and must NOT slow the schedule.
	release := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(release) })
	sum := Run(context.Background(), Options{
		Rate:        5000,
		Requests:    32,
		MaxInflight: 4,
		Fire: func(ctx context.Context, i int) Class {
			<-release
			return OK
		},
	})
	if sum.Dropped == 0 {
		t.Error("no drops with a 4-deep valve against a wedged server")
	}
	if sum.OKs+sum.Dropped != 32 {
		t.Errorf("oks %d + dropped %d != 32", sum.OKs, sum.Dropped)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	sum := Run(ctx, Options{
		Rate:     10,
		Requests: 1000, // 100s of schedule — must be cut short
		Fire:     func(ctx context.Context, i int) Class { return OK },
	})
	if sum.Scheduled >= 1000 {
		t.Errorf("cancel did not stop the schedule: %d scheduled", sum.Scheduled)
	}
}

func TestRunDurationBound(t *testing.T) {
	sum := Run(context.Background(), Options{
		Rate:     1000,
		Duration: 100 * time.Millisecond,
		Fire:     func(ctx context.Context, i int) Class { return OK },
	})
	// ~100 ticks fit the window; allow generous slack for slow CI.
	if sum.Scheduled < 50 || sum.Scheduled > 101 {
		t.Errorf("scheduled %d requests in a 100ms window at 1000/s", sum.Scheduled)
	}
	if sum.OKs != sum.Scheduled {
		t.Errorf("oks %d != scheduled %d", sum.OKs, sum.Scheduled)
	}
}
