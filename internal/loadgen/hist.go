// Package loadgen is an open-loop load generator: requests fire on a
// fixed schedule regardless of whether earlier responses have come
// back, and every latency is measured from the request's SCHEDULED
// time, not its actual send time. Closed-loop harnesses (fire, wait,
// fire again) silently stop offering load the moment the system slows
// down, so their tail latencies omit exactly the samples that matter —
// the coordinated-omission problem. Here a stalled server keeps
// accumulating scheduled-but-unanswered requests, and the stall shows
// up in p99/p999 instead of disappearing from the record.
package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histOctaves and histMantissa shape the log-linear histogram: values
// up to 2^histOctaves-1 land in one of histMantissa linear sub-buckets
// per power-of-two octave, HdrHistogram style. 64 sub-buckets bound
// the relative quantile error at 1/64 ≈ 1.6% — plenty for gating p99
// regressions — while keeping the whole histogram 4096 lock-free
// counters (32 KiB) that concurrent responders update with one atomic
// add each.
const (
	histOctaves  = 64
	histMantissa = 64 // power of two
	histBuckets  = histOctaves * histMantissa
)

// Hist is a concurrent log-linear histogram of int64 samples
// (microseconds, in this package). The zero value is ready to use;
// Record is safe from any number of goroutines.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a sample to its bucket index. Values < histMantissa
// map to themselves (exact); beyond that, the top 6 mantissa bits
// after the leading one select the sub-bucket within the octave.
func bucketOf(v int64) int {
	if v < histMantissa {
		return int(v)
	}
	oct := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), ≥ 6
	sub := (v >> (oct - 6)) & (histMantissa - 1)
	return (oct-5)*histMantissa + int(sub)
}

// lowOf is bucketOf's inverse: the smallest value mapping to bucket i.
// Reporting the lower bound keeps quantiles conservative-but-close
// (within one sub-bucket, ≤1.6% relative).
func lowOf(i int) int64 {
	if i < histMantissa {
		return int64(i)
	}
	oct := i/histMantissa + 5
	sub := int64(i % histMantissa)
	return 1<<oct | sub<<(oct-6)
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// RecordDuration adds one duration sample in microseconds.
func (h *Hist) RecordDuration(d time.Duration) { h.Record(d.Microseconds()) }

// Count reports the number of samples recorded.
func (h *Hist) Count() int64 { return h.count.Load() }

// Max reports the largest sample recorded (0 when empty).
func (h *Hist) Max() int64 { return h.max.Load() }

// Mean reports the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile reports the q-quantile (q in [0,1]) as the lower bound of
// the bucket holding the q·count-th sample. Concurrent Records during
// the scan may or may not be included; call after the run for exact
// results.
func (h *Hist) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if c := h.max.Load(); i == histBuckets-1 || lowOf(i+1) > c {
				return c // top occupied bucket: max is exact
			}
			return lowOf(i)
		}
	}
	return h.max.Load()
}
