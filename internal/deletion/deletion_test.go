package deletion

import (
	"errors"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

func setup(t *testing.T) (*identity.Registry, map[string]*identity.KeyPair) {
	t.Helper()
	reg := identity.NewRegistry()
	keys := make(map[string]*identity.KeyPair)
	for name, role := range map[string]identity.Role{
		"alpha": identity.RoleUser, "bravo": identity.RoleUser,
		"carol": identity.RoleUser, "admin": identity.RoleAdmin,
		"quorum": identity.RoleMaster,
	} {
		kp := identity.Deterministic(name, "del-test")
		if err := reg.RegisterKey(kp, role); err != nil {
			t.Fatal(err)
		}
		keys[name] = kp
	}
	return reg, keys
}

func TestAuthorizeRequesterRoleBased(t *testing.T) {
	reg, _ := setup(t)
	a := NewAuthorizer(reg, PolicyRoleBased)
	tests := []struct {
		requester, owner string
		wantErr          error
	}{
		{"alpha", "alpha", nil},
		{"alpha", "bravo", ErrUnauthorized},
		{"admin", "bravo", nil},
		{"quorum", "bravo", nil},
		{"ghost", "bravo", ErrUnknownIdentity},
	}
	for _, tt := range tests {
		err := a.AuthorizeRequester(tt.requester, tt.owner)
		if tt.wantErr == nil && err != nil {
			t.Errorf("(%s,%s): %v", tt.requester, tt.owner, err)
		}
		if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
			t.Errorf("(%s,%s): %v, want %v", tt.requester, tt.owner, err, tt.wantErr)
		}
	}
}

func TestAuthorizeRequesterOwnerOnly(t *testing.T) {
	reg, _ := setup(t)
	a := NewAuthorizer(reg, PolicyOwnerOnly)
	if err := a.AuthorizeRequester("alpha", "alpha"); err != nil {
		t.Errorf("owner rejected: %v", err)
	}
	if err := a.AuthorizeRequester("admin", "alpha"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("admin allowed under owner-only: %v", err)
	}
	if err := a.AuthorizeRequester("ghost", "ghost"); !errors.Is(err, ErrUnknownIdentity) {
		t.Errorf("unknown owner: %v", err)
	}
}

func TestDefaultPolicyIsRoleBased(t *testing.T) {
	reg, _ := setup(t)
	a := NewAuthorizer(reg, 0)
	if err := a.AuthorizeRequester("admin", "alpha"); err != nil {
		t.Errorf("default policy rejected admin: %v", err)
	}
}

func TestCheckCohesion(t *testing.T) {
	reg, keys := setup(t)
	a := NewAuthorizer(reg, PolicyRoleBased)
	target := block.Ref{Block: 3, Entry: 1}
	targetEntry := block.NewData("alpha", []byte("base")).Sign(keys["alpha"])

	t.Run("no dependents", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		if err := a.CheckCohesion(req, targetEntry, nil); err != nil {
			t.Errorf("CheckCohesion: %v", err)
		}
	})
	t.Run("missing co-signature", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}
		if err := a.CheckCohesion(req, targetEntry, deps); !errors.Is(err, ErrMissingCoSign) {
			t.Errorf("err = %v, want ErrMissingCoSign", err)
		}
	})
	t.Run("valid co-signature", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).AddCoSignature(keys["bravo"]).Sign(keys["alpha"])
		deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}
		if err := a.CheckCohesion(req, targetEntry, deps); err != nil {
			t.Errorf("CheckCohesion: %v", err)
		}
	})
	t.Run("own dependents implicitly approved", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "alpha"}}
		if err := a.CheckCohesion(req, targetEntry, deps); err != nil {
			t.Errorf("CheckCohesion: %v", err)
		}
	})
	t.Run("multiple dependents one missing", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).AddCoSignature(keys["bravo"]).Sign(keys["alpha"])
		deps := []Dependent{
			{Ref: block.Ref{Block: 5}, Owner: "bravo"},
			{Ref: block.Ref{Block: 6}, Owner: "carol"},
		}
		err := a.CheckCohesion(req, targetEntry, deps)
		if !errors.Is(err, ErrMissingCoSign) {
			t.Errorf("err = %v, want ErrMissingCoSign", err)
		}
	})
	t.Run("forged co-signature", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		req.CoSigners = []block.CoSignature{{Name: "bravo", Signature: []byte("junk")}}
		deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}
		if err := a.CheckCohesion(req, targetEntry, deps); !errors.Is(err, ErrBadCoSignature) {
			t.Errorf("err = %v, want ErrBadCoSignature", err)
		}
	})
	t.Run("cosignature for wrong target", func(t *testing.T) {
		other := block.NewDeletion("alpha", block.Ref{Block: 9, Entry: 9}).AddCoSignature(keys["bravo"]).Sign(keys["alpha"])
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		req.CoSigners = other.CoSigners // signed for 9/9, not 3/1
		deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}
		if err := a.CheckCohesion(req, targetEntry, deps); !errors.Is(err, ErrBadCoSignature) {
			t.Errorf("err = %v, want ErrBadCoSignature", err)
		}
	})
	t.Run("self dependent rejected", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		deps := []Dependent{{Ref: target, Owner: "alpha"}}
		if err := a.CheckCohesion(req, targetEntry, deps); !errors.Is(err, ErrSelfDependent) {
			t.Errorf("err = %v, want ErrSelfDependent", err)
		}
	})
	t.Run("deletion target must be data", func(t *testing.T) {
		req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
		notData := block.NewDeletion("alpha", block.Ref{Block: 1}).Sign(keys["alpha"])
		if err := a.CheckCohesion(req, notData, nil); !errors.Is(err, ErrTargetNotData) {
			t.Errorf("err = %v, want ErrTargetNotData", err)
		}
	})
}

func TestValidateRequestPipeline(t *testing.T) {
	reg, keys := setup(t)
	a := NewAuthorizer(reg, PolicyRoleBased)
	target := block.Ref{Block: 3, Entry: 1}
	targetEntry := block.NewData("alpha", []byte("base")).Sign(keys["alpha"])

	// Wrong kind.
	notReq := block.NewData("alpha", []byte("x")).Sign(keys["alpha"])
	if err := a.ValidateRequest(notReq, targetEntry, nil); err == nil {
		t.Error("data entry accepted as deletion request")
	}
	// Unauthorized requester fails before cohesion.
	req := block.NewDeletion("bravo", target).Sign(keys["bravo"])
	if err := a.ValidateRequest(req, targetEntry, nil); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("err = %v, want ErrUnauthorized", err)
	}
	// Full pass.
	ok := block.NewDeletion("alpha", target).AddCoSignature(keys["bravo"]).Sign(keys["alpha"])
	deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}
	if err := a.ValidateRequest(ok, targetEntry, deps); err != nil {
		t.Errorf("ValidateRequest: %v", err)
	}
}
