package deletion

import (
	"fmt"

	"github.com/seldel/seldel/internal/block"
)

// AutoPolicy is the automatic semantic-cohesion decision the paper
// sketches in §IV-D.2: "An automatic approach could be designed based on
// the principle of Bell-LaPadula model or Brewer-Nash Model."
//
// Participants carry clearance levels (à la Bell–LaPadula security
// levels). A deletion request is auto-approved — no dependent
// co-signatures needed — when the requester's clearance dominates the
// clearance of every live dependent's owner: information may be
// retracted by a subject at or above the level of everyone affected,
// mirroring the *-property's control of downward information flow.
// Dependents at a strictly higher level still require explicit
// co-signatures, exactly like the manual rule.
type AutoPolicy struct {
	levels map[string]int
}

// NewAutoPolicy builds a policy from participant clearance levels.
// Unlisted participants have level 0.
func NewAutoPolicy(levels map[string]int) *AutoPolicy {
	cp := make(map[string]int, len(levels))
	for name, lvl := range levels {
		cp[name] = lvl
	}
	return &AutoPolicy{levels: cp}
}

// Level returns the clearance of name (0 when unlisted).
func (p *AutoPolicy) Level(name string) int { return p.levels[name] }

// Covers reports whether requester's clearance dominates owner's.
func (p *AutoPolicy) Covers(requester, owner string) bool {
	return p.levels[requester] >= p.levels[owner]
}

// filterUncovered returns the dependents NOT covered by the requester's
// clearance; only those still need explicit co-signatures.
func (p *AutoPolicy) filterUncovered(requester string, deps []Dependent) []Dependent {
	var out []Dependent
	for _, d := range deps {
		if !p.Covers(requester, d.Owner) {
			out = append(out, d)
		}
	}
	return out
}

// WithAutoPolicy attaches an automatic cohesion policy to the authorizer
// and returns it (builder style).
func (a *Authorizer) WithAutoPolicy(p *AutoPolicy) *Authorizer {
	a.auto = p
	return a
}

// checkCohesionWithAuto applies the auto policy before falling back to
// the manual co-signature rule.
func (a *Authorizer) effectiveDependents(req *block.Entry, dependents []Dependent) []Dependent {
	if a.auto == nil {
		return dependents
	}
	return a.auto.filterUncovered(req.Owner, dependents)
}

// String describes the policy for logs.
func (p *AutoPolicy) String() string {
	return fmt.Sprintf("bell-lapadula-auto(%d participants)", len(p.levels))
}
