// Package deletion implements the authorization and semantic-cohesion
// rules for deletion requests (§IV-D.1 and §IV-D.2).
//
// Authorization: a deletion request must be signed; a user may only
// request deletion of its own entries, while admins and the anchor-node
// quorum (master signature) may request deletion of any entry.
//
// Semantic cohesion: an entry on which later live entries depend may only
// be deleted if every dependent party approves with a co-signature;
// otherwise the dependents would become semantically orphaned without
// their owners' consent.
package deletion

import (
	"errors"
	"fmt"
	"sort"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

// Errors returned by request validation.
var (
	ErrUnauthorized    = errors.New("deletion: requester not authorized for target")
	ErrMissingCoSign   = errors.New("deletion: dependent party has not co-signed")
	ErrBadCoSignature  = errors.New("deletion: invalid co-signature")
	ErrTargetNotData   = errors.New("deletion: target is not a data entry")
	ErrSelfDependent   = errors.New("deletion: entry depends on itself")
	ErrUnknownIdentity = errors.New("deletion: unknown identity")
)

// Dependent describes one live entry that depends on the deletion target.
type Dependent struct {
	// Ref addresses the dependent entry.
	Ref block.Ref
	// Owner is the dependent entry's owner, whose co-signature is needed.
	Owner string
}

// Policy selects how strictly requester identity is checked.
type Policy uint8

const (
	// PolicyOwnerOnly allows only the entry owner itself (no role
	// escalation). Used by deployments without administrative roles.
	PolicyOwnerOnly Policy = iota + 1
	// PolicyRoleBased additionally allows Admin and Master roles to act
	// for any owner (the paper's role-based concept, §IV-D.1).
	PolicyRoleBased
)

// Authorizer validates deletion requests against an identity registry.
type Authorizer struct {
	registry *identity.Registry
	policy   Policy
	// auto, when set, is the Bell-LaPadula-style automatic cohesion
	// policy (§IV-D.2); see AutoPolicy.
	auto *AutoPolicy
}

// NewAuthorizer returns an authorizer using the given registry and policy.
func NewAuthorizer(reg *identity.Registry, policy Policy) *Authorizer {
	if policy == 0 {
		policy = PolicyRoleBased
	}
	return &Authorizer{registry: reg, policy: policy}
}

// AuthorizeRequester checks that requester may delete an entry owned by
// targetOwner (§IV-D.1: "a user is only allowed to submit delete requests
// for his own transactions", identified by comparing signatures/keys).
func (a *Authorizer) AuthorizeRequester(requester, targetOwner string) error {
	switch a.policy {
	case PolicyOwnerOnly:
		if requester != targetOwner {
			return fmt.Errorf("%w: %q is not owner %q", ErrUnauthorized, requester, targetOwner)
		}
		if _, ok := a.registry.Lookup(requester); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownIdentity, requester)
		}
		return nil
	default: // PolicyRoleBased
		ok, err := a.registry.CanActFor(requester, targetOwner)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnknownIdentity, err)
		}
		if !ok {
			return fmt.Errorf("%w: %q may not delete entry of %q", ErrUnauthorized, requester, targetOwner)
		}
		return nil
	}
}

// CheckCohesion verifies the semantic-cohesion rule for a deletion
// request req targeting target: every live dependent's owner must have
// provided a valid co-signature over the target reference. Dependents
// owned by the requester itself are implicitly approved (the requester
// already signed the request).
func (a *Authorizer) CheckCohesion(req *block.Entry, target *block.Entry, dependents []Dependent) error {
	if target.Kind != block.KindData {
		return ErrTargetNotData
	}
	// An attached auto policy clears dependents whose owners the
	// requester's clearance dominates (§IV-D.2 automatic approach).
	dependents = a.effectiveDependents(req, dependents)
	// Index the provided co-signatures by name, verifying each.
	cosigned := make(map[string]bool, len(req.CoSigners))
	for _, cs := range req.CoSigners {
		if err := a.registry.Verify(cs.Name, block.CoSigningBytes(req.Target), cs.Signature); err != nil {
			return fmt.Errorf("%w: by %q: %v", ErrBadCoSignature, cs.Name, err)
		}
		cosigned[cs.Name] = true
	}
	// Every distinct dependent owner must be covered.
	missing := make(map[string]bool)
	for _, dep := range dependents {
		if dep.Ref == req.Target {
			return fmt.Errorf("%w: %s", ErrSelfDependent, dep.Ref)
		}
		if dep.Owner == req.Owner || cosigned[dep.Owner] {
			continue
		}
		missing[dep.Owner] = true
	}
	if len(missing) > 0 {
		names := make([]string, 0, len(missing))
		for n := range missing {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("%w: %v", ErrMissingCoSign, names)
	}
	return nil
}

// ValidateRequest runs the full §IV-D pipeline for one deletion request:
// requester authorization, then semantic cohesion over the live
// dependents of the target.
func (a *Authorizer) ValidateRequest(req *block.Entry, target *block.Entry, dependents []Dependent) error {
	if req.Kind != block.KindDeletion {
		return fmt.Errorf("deletion: request entry has kind %s", req.Kind)
	}
	if err := a.AuthorizeRequester(req.Owner, target.Owner); err != nil {
		return err
	}
	return a.CheckCohesion(req, target, dependents)
}
