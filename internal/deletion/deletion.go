// Package deletion implements the authorization and semantic-cohesion
// rules for deletion requests (§IV-D.1 and §IV-D.2).
//
// Authorization: a deletion request must be signed; a user may only
// request deletion of its own entries, while admins and the anchor-node
// quorum (master signature) may request deletion of any entry.
//
// Semantic cohesion: an entry on which later live entries depend may only
// be deleted if every dependent party approves with a co-signature;
// otherwise the dependents would become semantically orphaned without
// their owners' consent.
package deletion

import (
	"errors"
	"fmt"
	"sort"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/verify"
)

// Errors returned by request validation.
var (
	ErrUnauthorized    = errors.New("deletion: requester not authorized for target")
	ErrMissingCoSign   = errors.New("deletion: dependent party has not co-signed")
	ErrBadCoSignature  = errors.New("deletion: invalid co-signature")
	ErrTargetNotData   = errors.New("deletion: target is not a data entry")
	ErrSelfDependent   = errors.New("deletion: entry depends on itself")
	ErrUnknownIdentity = errors.New("deletion: unknown identity")
)

// Dependent describes one live entry that depends on the deletion target.
type Dependent struct {
	// Ref addresses the dependent entry.
	Ref block.Ref
	// Owner is the dependent entry's owner, whose co-signature is needed.
	Owner string
}

// Policy selects how strictly requester identity is checked.
type Policy uint8

const (
	// PolicyOwnerOnly allows only the entry owner itself (no role
	// escalation). Used by deployments without administrative roles.
	PolicyOwnerOnly Policy = iota + 1
	// PolicyRoleBased additionally allows Admin and Master roles to act
	// for any owner (the paper's role-based concept, §IV-D.1).
	PolicyRoleBased
)

// Authorizer validates deletion requests against an identity registry.
type Authorizer struct {
	registry *identity.Registry
	policy   Policy
	// auto, when set, is the Bell-LaPadula-style automatic cohesion
	// policy (§IV-D.2); see AutoPolicy.
	auto *AutoPolicy
}

// NewAuthorizer returns an authorizer using the given registry and policy.
func NewAuthorizer(reg *identity.Registry, policy Policy) *Authorizer {
	if policy == 0 {
		policy = PolicyRoleBased
	}
	return &Authorizer{registry: reg, policy: policy}
}

// AuthorizeRequester checks that requester may delete an entry owned by
// targetOwner (§IV-D.1: "a user is only allowed to submit delete requests
// for his own transactions", identified by comparing signatures/keys).
func (a *Authorizer) AuthorizeRequester(requester, targetOwner string) error {
	switch a.policy {
	case PolicyOwnerOnly:
		if requester != targetOwner {
			return fmt.Errorf("%w: %q is not owner %q", ErrUnauthorized, requester, targetOwner)
		}
		if _, ok := a.registry.Lookup(requester); !ok {
			return fmt.Errorf("%w: %q", ErrUnknownIdentity, requester)
		}
		return nil
	default: // PolicyRoleBased
		ok, err := a.registry.CanActFor(requester, targetOwner)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnknownIdentity, err)
		}
		if !ok {
			return fmt.Errorf("%w: %q may not delete entry of %q", ErrUnauthorized, requester, targetOwner)
		}
		return nil
	}
}

// CoSigCheck is the signature half of deletion authorization, computed
// WITHOUT any chain state: which of a request's co-signers provided a
// valid signature over the target reference. It exists so the
// cryptographic work can run outside the chain lock (through the
// verification pool) while the stateful cohesion decision — which
// owners actually need to have co-signed — runs under it, consuming
// only these precomputed verdicts.
//
// The zero value approves nobody, so a missing precheck fails closed:
// a dependent owner without a verified co-signature is reported as
// missing, never silently accepted.
type CoSigCheck struct {
	// Approved holds the co-signer names whose signatures verified.
	Approved map[string]bool
	// BadSigner is the first co-signer (in entry order) whose identity
	// is unknown or whose signature failed; empty when all verified.
	BadSigner string
}

// PrecheckRequest batch-verifies req's co-signatures through the
// verification pool. Call it without holding any chain lock; the
// result feeds ValidateRequestPrechecked.
func PrecheckRequest(pool *verify.Pool, reg *identity.Registry, req *block.Entry) CoSigCheck {
	return cosigCheckFrom(req, pool.CoSigners(reg, req))
}

// precheckSerial is the single-threaded reference precheck, used by the
// non-pooled ValidateRequest spec path.
func (a *Authorizer) precheckSerial(req *block.Entry) CoSigCheck {
	verdicts := make([]bool, len(req.CoSigners))
	msg := block.CoSigningBytes(req.Target)
	for i, cs := range req.CoSigners {
		verdicts[i] = a.registry.Verify(cs.Name, msg, cs.Signature) == nil
	}
	return cosigCheckFrom(req, verdicts)
}

func cosigCheckFrom(req *block.Entry, verdicts []bool) CoSigCheck {
	check := CoSigCheck{}
	if len(verdicts) > 0 {
		check.Approved = make(map[string]bool, len(verdicts))
	}
	for i, ok := range verdicts {
		name := req.CoSigners[i].Name
		if !ok {
			if check.BadSigner == "" {
				check.BadSigner = name
			}
			continue
		}
		check.Approved[name] = true
	}
	return check
}

// CheckCohesion verifies the semantic-cohesion rule for a deletion
// request req targeting target: every live dependent's owner must have
// provided a valid co-signature over the target reference. Dependents
// owned by the requester itself are implicitly approved (the requester
// already signed the request). Co-signatures are verified inline and
// serially; hot paths precheck through the pool instead
// (ValidateRequestPooled / ValidateRequestPrechecked).
func (a *Authorizer) CheckCohesion(req *block.Entry, target *block.Entry, dependents []Dependent) error {
	return a.checkCohesion(req, target, dependents, a.precheckSerial(req))
}

// checkCohesion applies the cohesion rule over precomputed co-signature
// verdicts. It performs no signature verification, so it is safe to
// run while holding the chain lock.
func (a *Authorizer) checkCohesion(req *block.Entry, target *block.Entry, dependents []Dependent, pre CoSigCheck) error {
	if target.Kind != block.KindData {
		return ErrTargetNotData
	}
	if pre.BadSigner != "" {
		return fmt.Errorf("%w: by %q", ErrBadCoSignature, pre.BadSigner)
	}
	// An attached auto policy clears dependents whose owners the
	// requester's clearance dominates (§IV-D.2 automatic approach).
	dependents = a.effectiveDependents(req, dependents)
	// Every distinct dependent owner must be covered.
	missing := make(map[string]bool)
	for _, dep := range dependents {
		if dep.Ref == req.Target {
			return fmt.Errorf("%w: %s", ErrSelfDependent, dep.Ref)
		}
		if dep.Owner == req.Owner || pre.Approved[dep.Owner] {
			continue
		}
		missing[dep.Owner] = true
	}
	if len(missing) > 0 {
		names := make([]string, 0, len(missing))
		for n := range missing {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("%w: %v", ErrMissingCoSign, names)
	}
	return nil
}

// ValidateRequest runs the full §IV-D pipeline for one deletion request:
// requester authorization, then semantic cohesion over the live
// dependents of the target. Signatures verify serially on the calling
// goroutine — this is the executable spec; concurrent call sites use
// ValidateRequestPooled or the precheck/validate split.
func (a *Authorizer) ValidateRequest(req *block.Entry, target *block.Entry, dependents []Dependent) error {
	return a.ValidateRequestPrechecked(req, target, dependents, a.precheckSerial(req))
}

// ValidateRequestPooled is ValidateRequest with the co-signature work
// fanned out across the verification pool (and answered from its
// verified-signature cache): the full §IV-D pipeline for call sites
// that hold no lock.
func (a *Authorizer) ValidateRequestPooled(pool *verify.Pool, req *block.Entry, target *block.Entry, dependents []Dependent) error {
	return a.ValidateRequestPrechecked(req, target, dependents, PrecheckRequest(pool, a.registry, req))
}

// ValidateRequestPrechecked runs the stateful half of the §IV-D
// pipeline — requester authorization and semantic cohesion — against
// co-signature verdicts precomputed by PrecheckRequest. It verifies no
// signatures itself, which is what lets the chain call it while
// holding its lock.
func (a *Authorizer) ValidateRequestPrechecked(req *block.Entry, target *block.Entry, dependents []Dependent, pre CoSigCheck) error {
	if req.Kind != block.KindDeletion {
		return fmt.Errorf("deletion: request entry has kind %s", req.Kind)
	}
	if err := a.AuthorizeRequester(req.Owner, target.Owner); err != nil {
		return err
	}
	return a.checkCohesion(req, target, dependents, pre)
}
