package deletion

import (
	"errors"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/block"
)

func TestAutoPolicyLevels(t *testing.T) {
	p := NewAutoPolicy(map[string]int{"officer": 2, "clerk": 1})
	if p.Level("officer") != 2 || p.Level("clerk") != 1 || p.Level("unknown") != 0 {
		t.Error("levels wrong")
	}
	if !p.Covers("officer", "clerk") || p.Covers("clerk", "officer") {
		t.Error("dominance wrong")
	}
	if !p.Covers("clerk", "unknown") {
		t.Error("unlisted participants must default to level 0")
	}
	if !strings.Contains(p.String(), "bell-lapadula") {
		t.Errorf("String = %q", p.String())
	}
}

func TestAutoPolicyClearsDominatedDependents(t *testing.T) {
	reg, keys := setup(t)
	auto := NewAutoPolicy(map[string]int{"alpha": 2, "bravo": 1})
	a := NewAuthorizer(reg, PolicyRoleBased).WithAutoPolicy(auto)

	target := block.Ref{Block: 3, Entry: 1}
	targetEntry := block.NewData("alpha", []byte("base")).Sign(keys["alpha"])
	deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}

	// Without the auto policy this request needed bravo's co-signature;
	// alpha's clearance (2) dominates bravo (1), so it is auto-approved.
	req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
	if err := a.CheckCohesion(req, targetEntry, deps); err != nil {
		t.Errorf("dominated dependent not auto-cleared: %v", err)
	}
}

func TestAutoPolicyStillRequiresCoSignUpward(t *testing.T) {
	reg, keys := setup(t)
	auto := NewAutoPolicy(map[string]int{"alpha": 1, "bravo": 2})
	a := NewAuthorizer(reg, PolicyRoleBased).WithAutoPolicy(auto)

	target := block.Ref{Block: 3, Entry: 1}
	targetEntry := block.NewData("alpha", []byte("base")).Sign(keys["alpha"])
	deps := []Dependent{{Ref: block.Ref{Block: 5}, Owner: "bravo"}}

	// bravo outranks alpha: the co-signature rule still applies.
	req := block.NewDeletion("alpha", target).Sign(keys["alpha"])
	if err := a.CheckCohesion(req, targetEntry, deps); !errors.Is(err, ErrMissingCoSign) {
		t.Errorf("err = %v, want ErrMissingCoSign", err)
	}
	// With bravo's co-signature it passes as usual.
	signed := block.NewDeletion("alpha", target).AddCoSignature(keys["bravo"]).Sign(keys["alpha"])
	if err := a.CheckCohesion(signed, targetEntry, deps); err != nil {
		t.Errorf("co-signed upward deletion rejected: %v", err)
	}
}
