// Package simclock provides deterministic logical clocks.
//
// The paper's summary blocks reuse the timestamp of the preceding block so
// that every node can compute them independently (§IV-B); beyond that, the
// concept does not depend on wall-clock time. Using a logical clock makes
// every experiment in this repository reproducible bit-for-bit. A
// wall-clock adapter is provided for interactive demos.
package simclock

import (
	"sync"
	"time"
)

// Clock yields monotonically non-decreasing logical timestamps.
type Clock interface {
	// Now returns the current timestamp without advancing the clock.
	Now() uint64
	// Tick advances the clock by one and returns the new timestamp.
	Tick() uint64
}

// Logical is a deterministic counter clock. The zero value starts at 0.
// It is safe for concurrent use.
type Logical struct {
	mu  sync.Mutex
	now uint64
}

// NewLogical returns a logical clock whose first Tick returns start+1.
func NewLogical(start uint64) *Logical {
	return &Logical{now: start}
}

// Now returns the current timestamp.
func (c *Logical) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Tick advances the clock by one step.
func (c *Logical) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now++
	return c.now
}

// Advance moves the clock forward by d steps and returns the new time.
func (c *Logical) Advance(d uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Set moves the clock to t if t is ahead of the current time, mirroring
// how nodes adopt the maximum timestamp they observe.
func (c *Logical) Set(t uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Wall adapts the system wall clock (Unix seconds) to the Clock interface.
// Tick and Now both return the current wall time; the clock still never
// runs backwards even if the system time does.
type Wall struct {
	mu   sync.Mutex
	last uint64
}

// NewWall returns a wall-clock adapter.
func NewWall() *Wall { return &Wall{} }

func (c *Wall) read() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := uint64(time.Now().Unix())
	if t < c.last {
		t = c.last
	}
	c.last = t
	return t
}

// Now returns the current wall time in Unix seconds.
func (c *Wall) Now() uint64 { return c.read() }

// Tick returns the current wall time in Unix seconds.
func (c *Wall) Tick() uint64 { return c.read() }
