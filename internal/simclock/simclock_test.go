package simclock

import (
	"sync"
	"testing"
)

func TestLogicalBasics(t *testing.T) {
	c := NewLogical(10)
	if got := c.Now(); got != 10 {
		t.Errorf("Now = %d, want 10", got)
	}
	if got := c.Tick(); got != 11 {
		t.Errorf("Tick = %d, want 11", got)
	}
	if got := c.Advance(5); got != 16 {
		t.Errorf("Advance = %d, want 16", got)
	}
	c.Set(14) // behind: ignored
	if got := c.Now(); got != 16 {
		t.Errorf("Set backwards moved clock to %d", got)
	}
	c.Set(20)
	if got := c.Now(); got != 20 {
		t.Errorf("Set forwards = %d, want 20", got)
	}
}

func TestLogicalZeroValue(t *testing.T) {
	var c Logical
	if got := c.Tick(); got != 1 {
		t.Errorf("zero-value Tick = %d, want 1", got)
	}
}

func TestLogicalConcurrentTicksAreUnique(t *testing.T) {
	c := NewLogical(0)
	const n = 64
	var wg sync.WaitGroup
	seen := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seen[i] = c.Tick()
		}(i)
	}
	wg.Wait()
	uniq := make(map[uint64]bool, n)
	for _, v := range seen {
		if uniq[v] {
			t.Fatalf("duplicate tick value %d", v)
		}
		uniq[v] = true
	}
	if got := c.Now(); got != n {
		t.Errorf("final Now = %d, want %d", got, n)
	}
}

func TestWallMonotonic(t *testing.T) {
	c := NewWall()
	a := c.Now()
	b := c.Tick()
	if b < a {
		t.Errorf("wall clock went backwards: %d then %d", a, b)
	}
}

func TestClockInterfaceCompliance(t *testing.T) {
	var _ Clock = (*Logical)(nil)
	var _ Clock = (*Wall)(nil)
}
