// Package client implements blockchain clients: participants that submit
// entries and deletion requests to anchor nodes and query the chain.
//
// Clients do not hold the chain. They obtain "the current status quo of
// the blockchain" from the anchor nodes (§V-B.4) and guard against node
// isolation (eclipse attacks) by querying several anchors and accepting
// the majority answer. Entry lookups return Merkle inclusion proofs that
// the client verifies against the reported block header.
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/merkle"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/wire"
)

// Errors returned by the client.
var (
	ErrTimeout    = errors.New("client: request timed out")
	ErrNoMajority = errors.New("client: anchors disagree (no majority status)")
	ErrBadProof   = errors.New("client: inclusion proof rejected")
	ErrNotFound   = errors.New("client: entry not found")
)

// Status is the majority view of the chain's current state.
type Status struct {
	HeadNumber uint64
	HeadHash   codec.Hash
	Marker     uint64
	// Agreeing is the number of anchors that reported this status.
	Agreeing int
	// Queried is the number of anchors asked.
	Queried int
}

// Client is a lightweight participant.
type Client struct {
	mu      sync.Mutex
	key     *identity.KeyPair
	ep      *netsim.Endpoint
	anchors []string
	reg     *identity.Registry
	nextReq uint64
	status  map[uint64]chan wire.StatusPayload
	lookups map[uint64]chan wire.LookupRespPayload
	timeout time.Duration
}

// New joins a client to the network. The registry is used to verify
// anchor responses; anchors lists the anchor-node names to query.
func New(key *identity.KeyPair, reg *identity.Registry, net *netsim.Network, anchors []string) (*Client, error) {
	c := &Client{
		key:     key,
		reg:     reg,
		anchors: append([]string(nil), anchors...),
		status:  make(map[uint64]chan wire.StatusPayload),
		lookups: make(map[uint64]chan wire.LookupRespPayload),
		timeout: 2 * time.Second,
	}
	ep, err := net.Join(key.Name(), c.handle)
	if err != nil {
		return nil, err
	}
	c.ep = ep
	return c, nil
}

// Name returns the client's participant name.
func (c *Client) Name() string { return c.key.Name() }

// SetTimeout adjusts the per-request timeout (tests shorten it).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

func (c *Client) handle(msg netsim.Message) {
	env, err := wire.OpenEnvelope(c.reg, msg.Payload)
	if err != nil {
		return
	}
	switch env.Kind {
	case wire.KindStatusResp:
		s, err := wire.DecodeStatus(env.Body)
		if err != nil {
			return
		}
		c.mu.Lock()
		ch := c.status[s.ReqID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- s:
			default:
			}
		}
	case wire.KindLookupResp:
		r, err := wire.DecodeLookupResp(env.Body)
		if err != nil {
			return
		}
		c.mu.Lock()
		ch := c.lookups[r.ReqID]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- r:
			default:
			}
		}
	}
}

// NewDataEntry builds and signs a data entry owned by this client.
func (c *Client) NewDataEntry(payload []byte) *block.Entry {
	return block.NewData(c.Name(), payload).Sign(c.key)
}

// NewTemporaryEntry builds and signs a temporary entry (§IV-D.4).
func (c *Client) NewTemporaryEntry(payload []byte, expireTime, expireBlock uint64) *block.Entry {
	return block.NewTemporary(c.Name(), payload, expireTime, expireBlock).Sign(c.key)
}

// NewDeletionRequest builds and signs a deletion request (§IV-D).
func (c *Client) NewDeletionRequest(target block.Ref) *block.Entry {
	return block.NewDeletion(c.Name(), target).Sign(c.key)
}

// Submit sends signed entries to every anchor node for inclusion in the
// anchors' pending pools; the anchors batch them into their next
// proposed block. Sending stops early when ctx is done.
func (c *Client) Submit(ctx context.Context, entries ...*block.Entry) error {
	for _, e := range entries {
		body := e.Encode()
		for _, anchor := range c.anchors {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := c.ep.Send(anchor, wire.KindEntry, wire.SealEnvelope(c.key, wire.KindEntry, body)); err != nil {
				return fmt.Errorf("client: submit to %s: %w", anchor, err)
			}
		}
	}
	return nil
}

// QueryStatus asks all anchors for the current status quo and returns
// the majority answer (anti-eclipse, §V-B.4). Anchors reporting
// themselves forked are ignored.
func (c *Client) QueryStatus() (Status, error) {
	reqID, ch := c.newStatusWaiter()
	defer c.dropStatusWaiter(reqID)
	body := codec.NewEncoder(8)
	body.Uint64(reqID)
	for _, anchor := range c.anchors {
		_ = c.ep.Send(anchor, wire.KindStatusReq, wire.SealEnvelope(c.key, wire.KindStatusReq, body.Data()))
	}
	deadline := time.After(c.timeoutDur())
	type key struct {
		num    uint64
		hash   codec.Hash
		marker uint64
	}
	counts := make(map[key]int)
	got := 0
	for got < len(c.anchors) {
		select {
		case s := <-ch:
			got++
			if s.Forked {
				continue
			}
			counts[key{s.HeadNumber, s.HeadHash, s.Marker}]++
		case <-deadline:
			got = len(c.anchors) // stop waiting
		}
	}
	if len(counts) == 0 {
		return Status{}, ErrTimeout
	}
	best, bestCount := key{}, 0
	for k, n := range counts {
		if n > bestCount {
			best, bestCount = k, n
		}
	}
	if bestCount <= len(c.anchors)/2 {
		return Status{}, fmt.Errorf("%w: best %d of %d", ErrNoMajority, bestCount, len(c.anchors))
	}
	return Status{
		HeadNumber: best.num,
		HeadHash:   best.hash,
		Marker:     best.marker,
		Agreeing:   bestCount,
		Queried:    len(c.anchors),
	}, nil
}

func (c *Client) timeoutDur() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timeout
}

func (c *Client) newStatusWaiter() (uint64, chan wire.StatusPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextReq++
	id := c.nextReq
	ch := make(chan wire.StatusPayload, 16)
	c.status[id] = ch
	return id, ch
}

func (c *Client) dropStatusWaiter(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.status, id)
}

// VerifiedEntry is a lookup result whose inclusion proof checked out.
type VerifiedEntry struct {
	Entry *block.Entry
	// Holder is the header of the block currently containing the entry.
	Holder block.Header
	// Carried reports whether the entry lives inside a summary block.
	Carried bool
}

// Lookup resolves ref via the given anchor and verifies the returned
// Merkle inclusion proof against the holding block's header. For full
// anti-eclipse protection, callers cross-check Holder against a majority
// QueryStatus (the holder is the head summary block in the common case).
func (c *Client) Lookup(anchor string, ref block.Ref) (*VerifiedEntry, error) {
	reqID, ch := c.newLookupWaiter()
	defer c.dropLookupWaiter(reqID)
	body := wire.EncodeLookupReq(wire.LookupReqPayload{ReqID: reqID, RefBlock: ref.Block, RefEntry: ref.Entry})
	if err := c.ep.Send(anchor, wire.KindLookupReq, wire.SealEnvelope(c.key, wire.KindLookupReq, body)); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return c.verifyLookup(resp)
	case <-time.After(c.timeoutDur()):
		return nil, ErrTimeout
	}
}

func (c *Client) newLookupWaiter() (uint64, chan wire.LookupRespPayload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextReq++
	id := c.nextReq
	ch := make(chan wire.LookupRespPayload, 4)
	c.lookups[id] = ch
	return id, ch
}

func (c *Client) dropLookupWaiter(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.lookups, id)
}

func (c *Client) verifyLookup(resp wire.LookupRespPayload) (*VerifiedEntry, error) {
	if !resp.Found {
		return nil, ErrNotFound
	}
	entry, err := block.DecodeEntry(resp.Entry)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	header, err := block.DecodeHeaderBytes(resp.HolderBlock)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	proof := merkle.Proof{
		Index:     int(resp.LeafIndex),
		LeafCount: int(resp.LeafCount),
	}
	for _, raw := range resp.ProofSibs {
		if len(raw) != codec.HashSize {
			return nil, fmt.Errorf("%w: sibling size %d", ErrBadProof, len(raw))
		}
		var h codec.Hash
		copy(h[:], raw)
		proof.Siblings = append(proof.Siblings, h)
	}
	if !merkle.Verify(header.EntriesRoot, resp.LeafBytes, proof) {
		return nil, ErrBadProof
	}
	// The proven leaf must actually contain the returned entry.
	if resp.Carried {
		d, err := block.DecodeCarried(resp.LeafBytes)
		if err != nil || d.Entry.Hash() != entry.Hash() {
			return nil, ErrBadProof
		}
	} else if codec.HashBytes(resp.LeafBytes) != codec.HashBytes(resp.Entry) {
		return nil, ErrBadProof
	}
	return &VerifiedEntry{Entry: entry, Holder: header, Carried: resp.Carried}, nil
}

// Anchors returns the anchor set, sorted.
func (c *Client) Anchors() []string {
	out := append([]string(nil), c.anchors...)
	sort.Strings(out)
	return out
}
