package client_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/client"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/node"
	"github.com/seldel/seldel/internal/simclock"
)

// harness is a minimal anchor deployment for client tests.
type harness struct {
	net      *netsim.Network
	registry *identity.Registry
	nodes    []*node.Node
	cli      *client.Client
	userKey  *identity.KeyPair
}

func newHarness(t *testing.T, anchors int) *harness {
	t.Helper()
	h := &harness{
		net:      netsim.New(netsim.Config{}),
		registry: identity.NewRegistry(),
	}
	t.Cleanup(h.net.Close)
	names := make([]string, anchors)
	for i := range names {
		names[i] = fmt.Sprintf("anchor-%d", i)
	}
	quorum, err := consensus.NewQuorum(names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		kp := identity.Deterministic(name, "client-test")
		if err := h.registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			Key: kp,
			Chain: chain.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Registry:       h.registry,
				Clock:          simclock.NewLogical(0),
			},
			Quorum:  quorum,
			Network: h.net,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, nd)
	}
	h.userKey = identity.Deterministic("user", "client-test")
	if err := h.registry.RegisterKey(h.userKey, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cli, err := client.New(h.userKey, h.registry, h.net, names)
	if err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(300 * time.Millisecond)
	h.cli = cli
	return h
}

func (h *harness) propose(t *testing.T) *block.Block {
	t.Helper()
	h.net.Flush()
	b, err := h.nodes[0].Propose()
	if err != nil {
		t.Fatal(err)
	}
	h.net.Flush()
	return b
}

func TestClientEntryBuilders(t *testing.T) {
	h := newHarness(t, 1)
	data := h.cli.NewDataEntry([]byte("d"))
	if data.Kind != block.KindData || data.Owner != "user" || len(data.Signature) == 0 {
		t.Errorf("data entry = %+v", data)
	}
	tmp := h.cli.NewTemporaryEntry([]byte("t"), 5, 9)
	if tmp.ExpireTime != 5 || tmp.ExpireBlock != 9 {
		t.Errorf("temporary entry = %+v", tmp)
	}
	del := h.cli.NewDeletionRequest(block.Ref{Block: 1, Entry: 0})
	if del.Kind != block.KindDeletion || del.Target != (block.Ref{Block: 1, Entry: 0}) {
		t.Errorf("deletion entry = %+v", del)
	}
	if h.cli.Name() != "user" {
		t.Errorf("Name = %q", h.cli.Name())
	}
	if got := h.cli.Anchors(); len(got) != 1 || got[0] != "anchor-0" {
		t.Errorf("Anchors = %v", got)
	}
}

func TestSubmitReachesAllAnchors(t *testing.T) {
	h := newHarness(t, 3)
	if err := h.cli.Submit(context.Background(), h.cli.NewDataEntry([]byte("gossip me"))); err != nil {
		t.Fatal(err)
	}
	h.net.Flush()
	for _, n := range h.nodes {
		if n.MempoolSize() != 1 {
			t.Errorf("%s mempool = %d, want 1", n.Name(), n.MempoolSize())
		}
	}
}

func TestQueryStatusHappyPath(t *testing.T) {
	h := newHarness(t, 3)
	if err := h.cli.Submit(context.Background(), h.cli.NewDataEntry([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	h.propose(t)
	status, err := h.cli.QueryStatus()
	if err != nil {
		t.Fatal(err)
	}
	if status.Agreeing != 3 || status.Queried != 3 {
		t.Errorf("status = %+v", status)
	}
	if status.HeadHash != h.nodes[0].Chain().HeadHash() {
		t.Error("head mismatch")
	}
}

func TestQueryStatusTimesOutWhenIsolated(t *testing.T) {
	h := newHarness(t, 2)
	h.cli.SetTimeout(50 * time.Millisecond)
	// Put the client alone in a partition: no responses arrive.
	h.net.Partition([]string{"user"})
	if _, err := h.cli.QueryStatus(); !errors.Is(err, client.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestLookupVerifiesProofs(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.cli.Submit(context.Background(), h.cli.NewDataEntry([]byte("prove me"))); err != nil {
		t.Fatal(err)
	}
	b := h.propose(t)
	ref := block.Ref{Block: b.Header.Number, Entry: 0}
	got, err := h.cli.Lookup("anchor-1", ref)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if string(got.Entry.Payload) != "prove me" || got.Carried {
		t.Errorf("got = %+v", got)
	}
	if got.Holder.Number != ref.Block {
		t.Errorf("holder block = %d", got.Holder.Number)
	}
}

func TestLookupNotFound(t *testing.T) {
	h := newHarness(t, 1)
	h.propose(t)
	if _, err := h.cli.Lookup("anchor-0", block.Ref{Block: 77, Entry: 0}); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestLookupTimesOutOnDeadAnchor(t *testing.T) {
	h := newHarness(t, 2)
	h.cli.SetTimeout(50 * time.Millisecond)
	h.net.Partition([]string{"anchor-1"})
	if _, err := h.cli.Lookup("anchor-1", block.Ref{Block: 0, Entry: 0}); !errors.Is(err, client.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}
