// Package netsim is an in-memory message-passing network substrate and
// scenario harness for the anchor-node simulations.
//
// The paper's prototype used CORBA middleware between Python and Java
// processes; the concept itself is transport-independent (§IV, §VI).
// This substrate provides the same facility — unicast and broadcast
// between named endpoints — plus the failure injection the evaluation
// discussion needs:
//
//   - latency, globally (Config.Latency) and per endpoint
//     (SetPeerLatency, a lagging node),
//   - probabilistic message loss (Config.DropRate / SetDropRate),
//   - network partitions and heals (Partition / Heal, the
//     eclipse/isolation scenario of §V-B.4),
//   - endpoint churn (Endpoint.Leave frees the name so a restarted
//     node can rejoin).
//
// Delivery is asynchronous: each endpoint owns a queue drained by a
// dedicated goroutine, so handlers may send without deadlocking. With
// zero latency and drop rate the network is deterministic: messages
// from one sender arrive in send order. Flush blocks until the network
// is quiescent, so tests never sleep.
//
// Scenario (scenario.go) scripts fault sequences on top: each named
// step runs, the network flushes to quiescence, and the outcome is
// recorded, so multi-phase failure drills (partition → write → heal →
// converge) read as a linear script and fail with the step name.
package netsim
