// Package netsim is an in-memory message-passing network substrate and
// scenario harness for the anchor-node simulations.
//
// The paper's prototype used CORBA middleware between Python and Java
// processes; the concept itself is transport-independent (§IV, §VI).
// This substrate provides the same facility — unicast and broadcast
// between named endpoints — plus the failure injection the evaluation
// discussion needs:
//
//   - latency, globally (Config.Latency), per endpoint (SetPeerLatency,
//     a lagging node), and per directed pair (SetLink: one-way delay,
//     jitter, loss — the geo-latency matrix),
//   - region topologies (Geo, with ThreeRegions/FiveRegions WAN
//     presets installed via SetGeo),
//   - probabilistic message loss (Config.DropRate / SetDropRate and
//     LinkProfile.Loss), decided by a per-link counter hash so outcomes
//     are seed-deterministic regardless of goroutine interleaving,
//   - network partitions and heals (Partition / Heal, the
//     eclipse/isolation scenario of §V-B.4),
//   - endpoint churn (Endpoint.Leave frees the name so a restarted
//     node can rejoin; Scenario.Storm scripts whole crash-restart
//     waves).
//
// Delivery is asynchronous: each endpoint owns a queue drained by a
// dedicated goroutine, so handlers may send without deadlocking. All
// simulated delay lives on a virtual clock (internal/simclock): delayed
// messages park in a delivery heap and Flush advances the clock to each
// due instant instead of sleeping, so a 100-node drill over 80ms links
// runs at handler speed. With zero delay and loss the network is
// deterministic: messages from one sender arrive in send order. Flush
// blocks until the network is quiescent, so tests never sleep.
//
// Scenario (scenario.go) scripts fault sequences on top: each named
// step runs, the network flushes to quiescence, and the outcome is
// recorded (wall and virtual elapsed), so multi-phase failure drills
// (partition → write → heal → converge) read as a linear script and
// fail with the step name.
package netsim
