package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLinkProfileDelayAndAsymmetry(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var a2b, b2a collector
	a, err := n.Join("a", b2a.handle)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Join("b", a2b.handle)
	if err != nil {
		t.Fatal(err)
	}
	n.SetLink("a", "b", LinkProfile{Delay: 10 * time.Millisecond})
	n.SetLink("b", "a", LinkProfile{Delay: 30 * time.Millisecond})
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if v := n.Now(); v != 10*time.Millisecond {
		t.Errorf("a->b advanced clock to %v, want 10ms", v)
	}
	if err := b.Send("a", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if v := n.Now(); v != 40*time.Millisecond {
		t.Errorf("b->a advanced clock to %v, want 40ms (asymmetric return)", v)
	}
	if a2b.count() != 1 || b2a.count() != 1 {
		t.Errorf("deliveries a2b=%d b2a=%d", a2b.count(), b2a.count())
	}
	// A zero profile clears the override.
	n.SetLink("a", "b", LinkProfile{})
	before := n.Now()
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if n.Now() != before {
		t.Error("cleared link still delayed delivery")
	}
}

func TestLinkLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (delivered, dropped uint64) {
		n := New(Config{Seed: seed})
		defer n.Close()
		a, err := n.Join("a", func(Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Join("b", func(Message) {}); err != nil {
			t.Fatal(err)
		}
		n.SetLink("a", "b", LinkProfile{Loss: 0.5})
		for i := 0; i < 200; i++ {
			if err := a.Send("b", "x", nil); err != nil {
				t.Fatal(err)
			}
		}
		n.Flush()
		s := n.Stats()
		return s.Delivered, s.Dropped
	}
	d1, x1 := run(7)
	d2, x2 := run(7)
	if d1 != d2 || x1 != x2 {
		t.Errorf("same seed diverged: run1 %d/%d run2 %d/%d", d1, x1, d2, x2)
	}
	if x1 == 0 || d1 == 0 {
		t.Errorf("loss 0.5 over 200 sends gave delivered=%d dropped=%d, want both nonzero", d1, x1)
	}
	d3, x3 := run(8)
	if d3 == d1 && x3 == x1 {
		t.Log("different seeds coincided (possible but unlikely); counts:", d3, x3)
	}
}

func TestJitterIsDeterministicAndBounded(t *testing.T) {
	run := func() []time.Duration {
		n := New(Config{Seed: 42})
		defer n.Close()
		a, err := n.Join("a", func(Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Join("b", func(Message) {}); err != nil {
			t.Fatal(err)
		}
		n.SetLink("a", "b", LinkProfile{Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
		var marks []time.Duration
		for i := 0; i < 20; i++ {
			if err := a.Send("b", "x", nil); err != nil {
				t.Fatal(err)
			}
			n.Flush()
			marks = append(marks, n.Now())
		}
		return marks
	}
	m1 := run()
	m2 := run()
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("delivery %d: virtual times diverged (%v vs %v)", i, m1[i], m2[i])
		}
	}
	prev := time.Duration(0)
	varied := false
	for i, m := range m1 {
		step := m - prev
		prev = m
		if step < 10*time.Millisecond || step >= 15*time.Millisecond {
			t.Errorf("delivery %d took %v, want in [10ms, 15ms)", i, step)
		}
		if step != 10*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never added any delay over 20 sends")
	}
}

func TestGeoPresetsRouteByRegion(t *testing.T) {
	for _, tc := range []struct {
		name    string
		geo     *Geo
		regions int
	}{
		{"three", ThreeRegions(), 3},
		{"five", FiveRegions(), 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(tc.geo.Regions()); got != tc.regions {
				t.Fatalf("%d regions, want %d", got, tc.regions)
			}
			// Every directed inter-region pair has a nonzero delay.
			for _, from := range tc.geo.Regions() {
				for _, to := range tc.geo.Regions() {
					if from == to {
						continue
					}
					tc.geo.mu.Lock()
					p := tc.geo.inter[linkKey{from, to}]
					tc.geo.mu.Unlock()
					if p.Delay == 0 {
						t.Errorf("no delay for %s->%s", from, to)
					}
				}
			}
		})
	}
}

func TestGeoInstalledOnNetwork(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("c", got.handle); err != nil {
		t.Fatal(err)
	}
	g := NewGeo(LinkProfile{})
	g.SetInterRegion("east", "west", LinkProfile{Delay: 40 * time.Millisecond})
	g.SetInterRegion("west", "east", LinkProfile{Delay: 40 * time.Millisecond})
	g.Assign("a", "east")
	g.Assign("b", "west")
	g.Assign("c", "east")
	n.SetGeo(g)
	if err := a.Send("c", "x", nil); err != nil { // same region: local profile (zero)
		t.Fatal(err)
	}
	n.Flush()
	if n.Now() != 0 {
		t.Errorf("same-region send advanced clock to %v", n.Now())
	}
	if err := a.Send("b", "x", nil); err != nil { // cross region
		t.Fatal(err)
	}
	n.Flush()
	if n.Now() != 40*time.Millisecond {
		t.Errorf("cross-region send advanced clock to %v, want 40ms", n.Now())
	}
	// Explicit SetLink override beats the geo matrix.
	n.SetLink("a", "b", LinkProfile{Delay: 5 * time.Millisecond})
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if n.Now() != 45*time.Millisecond {
		t.Errorf("override send advanced clock to %v, want 45ms", n.Now())
	}
	if got.count() != 3 {
		t.Errorf("deliveries = %d, want 3", got.count())
	}
}

func TestGeoAssignRoundRobin(t *testing.T) {
	g := ThreeRegions()
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	g.AssignRoundRobin(nodes...)
	want := []string{"us-east", "eu-west", "ap-south", "us-east", "eu-west"}
	for i, node := range nodes {
		if r := g.Region(node); r != want[i] {
			t.Errorf("Region(%s) = %q, want %q", node, r, want[i])
		}
	}
	if m := g.Members("us-east"); len(m) != 2 || m[0] != "n0" || m[1] != "n3" {
		t.Errorf("Members(us-east) = %v", m)
	}
}

func TestHandlerRelayAcrossDelayedLinks(t *testing.T) {
	// A relayed message accumulates virtual delay across hops: src -> hop
	// (10ms) then hop -> dst (20ms) must land at 30ms, with the relay
	// send issued from inside a handler during Flush.
	n := New(Config{})
	defer n.Close()
	var final collector
	src, err := n.Join("src", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	var hop *Endpoint
	hop, err = n.Join("hop", func(m Message) {
		if m.Kind == "fwd" {
			_ = hop.Send("dst", "done", m.Payload)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("dst", final.handle); err != nil {
		t.Fatal(err)
	}
	n.SetLink("src", "hop", LinkProfile{Delay: 10 * time.Millisecond})
	n.SetLink("hop", "dst", LinkProfile{Delay: 20 * time.Millisecond})
	if err := src.Send("hop", "fwd", []byte("relay")); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if final.count() != 1 {
		t.Fatal("relayed message not delivered")
	}
	if v := n.Now(); v != 30*time.Millisecond {
		t.Errorf("virtual clock = %v, want 30ms across two hops", v)
	}
}

func TestStormCyclesNodes(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var mu sync.Mutex
	eps := make(map[string]*Endpoint)
	join := func(name string) error {
		ep, err := n.Join(name, func(Message) {})
		if err != nil {
			return err
		}
		mu.Lock()
		eps[name] = ep
		mu.Unlock()
		return nil
	}
	for _, name := range []string{"n0", "n1", "n2"} {
		if err := join(name); err != nil {
			t.Fatal(err)
		}
	}
	var duringWaves []int
	sc := NewScenario(n)
	err := sc.Storm("storm", Storm{
		Waves: 3,
		Nodes: func(wave int) []string { return []string{fmt.Sprintf("n%d", wave)} },
		Stop: func(name string) error {
			mu.Lock()
			ep := eps[name]
			mu.Unlock()
			ep.Leave()
			return nil
		},
		Restart: func(name string) error { return join(name) },
		During: func(wave int) error {
			duringWaves = append(duringWaves, wave)
			// The survivors can still talk while the wave's node is down.
			mu.Lock()
			survivor := eps["n"+fmt.Sprint((wave+1)%3)]
			other := "n" + fmt.Sprint((wave+2)%3)
			mu.Unlock()
			return survivor.Send(other, "ping", nil)
		},
	})
	if err != nil {
		t.Fatalf("storm failed: %v", err)
	}
	if len(duringWaves) != 3 {
		t.Errorf("During ran %d times, want 3", len(duringWaves))
	}
	hist := sc.History()
	if len(hist) != 9 { // 3 waves x (stop, during, restart)
		t.Errorf("history has %d steps, want 9: %+v", len(hist), hist)
	}
	if names := n.Names(); len(names) != 3 {
		t.Errorf("cluster has %d endpoints after storm, want 3", len(names))
	}
}

func TestStormFailsFast(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	boom := errors.New("boom")
	sc := NewScenario(n)
	stops := 0
	err := sc.Storm("storm", Storm{
		Waves: 3,
		Nodes: func(int) []string { return []string{"x"} },
		Stop: func(string) error {
			stops++
			return boom
		},
		Restart: func(string) error { return nil },
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if stops != 1 {
		t.Errorf("stop ran %d times after failure, want 1", stops)
	}
}

func TestVirtualElapsedRecordedPerStep(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	n.SetLink("a", "b", LinkProfile{Delay: 25 * time.Millisecond})
	sc := NewScenario(n)
	_ = sc.Step("send", func() error { return a.Send("b", "x", nil) })
	_ = sc.Check("noop", func() error { return nil })
	hist := sc.History()
	if hist[0].VirtualElapsed != 25*time.Millisecond {
		t.Errorf("step 0 virtual elapsed = %v, want 25ms", hist[0].VirtualElapsed)
	}
	if hist[1].VirtualElapsed != 0 {
		t.Errorf("step 1 virtual elapsed = %v, want 0", hist[1].VirtualElapsed)
	}
}

func TestScaleManyNodesVirtualBroadcast(t *testing.T) {
	// 100 endpoints on the 5-region preset: a broadcast storm settles in
	// bounded wall time because all WAN delay is virtual.
	n := New(Config{})
	defer n.Close()
	g := FiveRegions()
	names := make([]string, 100)
	for i := range names {
		names[i] = fmt.Sprintf("n%02d", i)
	}
	g.AssignRoundRobin(names...)
	n.SetGeo(g)
	var handled atomic.Int64
	eps := make([]*Endpoint, len(names))
	for i, name := range names {
		ep, err := n.Join(name, func(Message) { handled.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	start := time.Now()
	for _, ep := range eps {
		ep.Broadcast("gossip", []byte("x"))
	}
	n.Flush()
	wall := time.Since(start)
	s := n.Stats()
	if want := uint64(100 * 99); s.Delivered != want || handled.Load() != int64(want) {
		t.Errorf("delivered %d handled %d, want %d", s.Delivered, handled.Load(), want)
	}
	if n.Now() < 30*time.Millisecond {
		t.Errorf("virtual clock only advanced to %v over a 5-region broadcast", n.Now())
	}
	// Generous bound: the point is that we did not sleep ~100ms x many
	// batches of real time.
	if wall > 30*time.Second {
		t.Errorf("broadcast storm took %v of wall time", wall)
	}
}
