package netsim

import (
	"fmt"
	"time"
)

// StepResult records one executed scenario step.
type StepResult struct {
	// Name identifies the step in failure reports and transcripts.
	Name string
	// Err is the step's outcome (nil on success).
	Err error
	// Elapsed is the wall-clock duration of the step including the
	// flush to quiescence.
	Elapsed time.Duration
}

// Scenario scripts a fault-injection sequence against a Network. Each
// step runs its action, then flushes the network to quiescence, so the
// next step always observes a settled cluster — the property that keeps
// multi-phase drills (partition → write → heal → converge) deterministic
// without sleeps. Steps after a failed step are skipped, so a transcript
// reads like a stack trace: the first Err is the step that broke.
//
// Scenario is a sequencing tool, not a synchronization one: it must be
// driven from a single goroutine (the actions themselves may spawn
// concurrency freely).
type Scenario struct {
	net     *Network
	history []StepResult
	failed  error
}

// NewScenario starts an empty scenario on net.
func NewScenario(net *Network) *Scenario {
	return &Scenario{net: net}
}

// Step runs one named action and flushes the network to quiescence.
// After a previous step failed, Step records a skip and does nothing.
// It returns the step's error so callers may also fail fast.
func (s *Scenario) Step(name string, do func() error) error {
	if s.failed != nil {
		s.history = append(s.history, StepResult{
			Name: name,
			Err:  fmt.Errorf("netsim: step %q skipped after earlier failure: %w", name, s.failed),
		})
		return s.history[len(s.history)-1].Err
	}
	start := time.Now()
	err := do()
	s.net.Flush()
	if err != nil {
		err = fmt.Errorf("netsim: step %q: %w", name, err)
		s.failed = err
	}
	s.history = append(s.history, StepResult{Name: name, Err: err, Elapsed: time.Since(start)})
	return err
}

// Partition splits the endpoints into isolated groups as one recorded
// step (see Network.Partition for the grouping rules).
func (s *Scenario) Partition(name string, groups ...[]string) error {
	return s.Step(name, func() error {
		s.net.Partition(groups...)
		return nil
	})
}

// Heal removes all partitions as one recorded step.
func (s *Scenario) Heal(name string) error {
	return s.Step(name, func() error {
		s.net.Heal()
		return nil
	})
}

// Check runs an assertion step: like Step, but the name conventionally
// describes the invariant being verified rather than an action.
func (s *Scenario) Check(name string, verify func() error) error {
	return s.Step(name, verify)
}

// Err returns the first step failure, or nil while the scenario is
// still clean.
func (s *Scenario) Err() error { return s.failed }

// History returns the executed (and skipped) steps in order.
func (s *Scenario) History() []StepResult {
	out := make([]StepResult, len(s.history))
	copy(out, s.history)
	return out
}
