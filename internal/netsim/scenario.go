package netsim

import (
	"fmt"
	"time"
)

// StepResult records one executed scenario step.
type StepResult struct {
	// Name identifies the step in failure reports and transcripts.
	Name string
	// Err is the step's outcome (nil on success).
	Err error
	// Elapsed is the wall-clock duration of the step including the
	// flush to quiescence.
	Elapsed time.Duration
	// VirtualElapsed is how far the network's virtual clock advanced
	// during the step — the simulated WAN time the step consumed, which
	// is deterministic even when Elapsed is not.
	VirtualElapsed time.Duration
}

// Scenario scripts a fault-injection sequence against a Network. Each
// step runs its action, then flushes the network to quiescence, so the
// next step always observes a settled cluster — the property that keeps
// multi-phase drills (partition → write → heal → converge) deterministic
// without sleeps. Steps after a failed step are skipped, so a transcript
// reads like a stack trace: the first Err is the step that broke.
//
// All simulated delay is virtual (see Network.Flush): a scenario over
// 80ms WAN links runs in milliseconds of wall time and its
// VirtualElapsed column is reproducible bit-for-bit.
//
// Scenario is a sequencing tool, not a synchronization one: it must be
// driven from a single goroutine (the actions themselves may spawn
// concurrency freely).
type Scenario struct {
	net     *Network
	history []StepResult
	failed  error
}

// NewScenario starts an empty scenario on net.
func NewScenario(net *Network) *Scenario {
	return &Scenario{net: net}
}

// Step runs one named action and flushes the network to quiescence.
// After a previous step failed, Step records a skip and does nothing.
// It returns the step's error so callers may also fail fast.
func (s *Scenario) Step(name string, do func() error) error {
	if s.failed != nil {
		s.history = append(s.history, StepResult{
			Name: name,
			Err:  fmt.Errorf("netsim: step %q skipped after earlier failure: %w", name, s.failed),
		})
		return s.history[len(s.history)-1].Err
	}
	start := time.Now()
	vstart := s.net.Now()
	err := do()
	s.net.Flush()
	if err != nil {
		err = fmt.Errorf("netsim: step %q: %w", name, err)
		s.failed = err
	}
	s.history = append(s.history, StepResult{
		Name:           name,
		Err:            err,
		Elapsed:        time.Since(start),
		VirtualElapsed: s.net.Now() - vstart,
	})
	return err
}

// Partition splits the endpoints into isolated groups as one recorded
// step (see Network.Partition for the grouping rules).
func (s *Scenario) Partition(name string, groups ...[]string) error {
	return s.Step(name, func() error {
		s.net.Partition(groups...)
		return nil
	})
}

// Heal removes all partitions as one recorded step.
func (s *Scenario) Heal(name string) error {
	return s.Step(name, func() error {
		s.net.Heal()
		return nil
	})
}

// Check runs an assertion step: like Step, but the name conventionally
// describes the invariant being verified rather than an action.
func (s *Scenario) Check(name string, verify func() error) error {
	return s.Step(name, verify)
}

// Storm scripts a crash-restart storm: repeated waves where a subset of
// nodes is stopped, optional work runs against the degraded cluster,
// and the subset is restarted. The harness stays agnostic of what a
// "node" is — the callbacks own process lifecycle (typically
// Node.Close and a rejoin-under-the-same-name constructor).
type Storm struct {
	// Waves is how many stop/restart cycles to run.
	Waves int
	// Nodes picks the endpoint names cycled in the given wave
	// (0-based). Returning nil makes the wave a no-op.
	Nodes func(wave int) []string
	// Stop crashes one node. Called for each name in the wave's subset.
	Stop func(name string) error
	// Restart brings one crashed node back under its old name.
	Restart func(name string) error
	// During, if non-nil, runs while the wave's subset is down — the
	// load the survivors must absorb.
	During func(wave int) error
}

// Storm runs the storm as a series of recorded sub-steps
// ("name/wave2/stop", "name/wave2/during", "name/wave2/restart"),
// flushing to quiescence between phases so every wave observes a
// settled cluster. It fails fast on the first erroring phase and
// returns the scenario's first error.
func (s *Scenario) Storm(name string, st Storm) error {
	for wave := 0; wave < st.Waves; wave++ {
		targets := st.Nodes(wave)
		if len(targets) == 0 {
			continue
		}
		s.Step(fmt.Sprintf("%s/wave%d/stop", name, wave), func() error {
			for _, t := range targets {
				if err := st.Stop(t); err != nil {
					return fmt.Errorf("stop %s: %w", t, err)
				}
			}
			return nil
		})
		if st.During != nil {
			s.Step(fmt.Sprintf("%s/wave%d/during", name, wave), func() error {
				return st.During(wave)
			})
		}
		s.Step(fmt.Sprintf("%s/wave%d/restart", name, wave), func() error {
			for _, t := range targets {
				if err := st.Restart(t); err != nil {
					return fmt.Errorf("restart %s: %w", t, err)
				}
			}
			return nil
		})
		if s.failed != nil {
			break
		}
	}
	return s.failed
}

// Err returns the first step failure, or nil while the scenario is
// still clean.
func (s *Scenario) Err() error { return s.failed }

// History returns the executed (and skipped) steps in order.
func (s *Scenario) History() []StepResult {
	out := make([]StepResult, len(s.history))
	copy(out, s.history)
	return out
}
