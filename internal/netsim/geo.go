package netsim

import (
	"sort"
	"sync"
	"time"
)

// Geo maps endpoints to named regions and directed region pairs to link
// profiles — the geo-latency matrix of a WAN deployment. Install it on a
// Network with SetGeo; explicit SetLink overrides still win per pair.
//
// Inter-region profiles are directed, so asymmetric routes (a congested
// return path, a satellite uplink) are expressible. Pairs with no
// profile in either direction fall back to the zero profile.
type Geo struct {
	mu       sync.Mutex
	regions  []string
	regionOf map[string]string
	inter    map[linkKey]LinkProfile
	local    LinkProfile
}

// NewGeo creates an empty topology whose same-region links use local.
func NewGeo(local LinkProfile) *Geo {
	return &Geo{
		regionOf: make(map[string]string),
		inter:    make(map[linkKey]LinkProfile),
		local:    local,
	}
}

// AddRegion declares a region. Declaration order drives AssignRoundRobin.
func (g *Geo) AddRegion(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.regions {
		if r == name {
			return
		}
	}
	g.regions = append(g.regions, name)
}

// Regions returns the declared regions in declaration order.
func (g *Geo) Regions() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.regions))
	copy(out, g.regions)
	return out
}

// SetInterRegion installs the directed profile from one region to
// another (declaring both regions if needed).
func (g *Geo) SetInterRegion(from, to string, p LinkProfile) {
	g.AddRegion(from)
	g.AddRegion(to)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inter[linkKey{from, to}] = p
}

// SymmetricInterRegion installs the same profile in both directions.
func (g *Geo) SymmetricInterRegion(a, b string, p LinkProfile) {
	g.SetInterRegion(a, b, p)
	g.SetInterRegion(b, a, p)
}

// Assign places an endpoint in a region (declaring the region if
// needed). Assignments are by name, so a crashed node that rejoins under
// its old name keeps its region.
func (g *Geo) Assign(node, region string) {
	g.AddRegion(region)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.regionOf[node] = region
}

// AssignRoundRobin spreads the nodes across the declared regions in
// order — the quickest way to place a 50-node cluster on a preset.
func (g *Geo) AssignRoundRobin(nodes ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, node := range nodes {
		g.regionOf[node] = g.regions[i%len(g.regions)]
	}
}

// Region reports the region an endpoint is assigned to ("" if none).
func (g *Geo) Region(node string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.regionOf[node]
}

// Members returns the nodes assigned to a region, sorted by name.
func (g *Geo) Members(region string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for node, r := range g.regionOf {
		if r == region {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// profile resolves the directed profile between two endpoints. The
// second return is false when either endpoint has no region assignment.
func (g *Geo) profile(from, to string) (LinkProfile, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rf, okF := g.regionOf[from]
	rt, okT := g.regionOf[to]
	if !okF || !okT {
		return LinkProfile{}, false
	}
	if rf == rt {
		return g.local, true
	}
	return g.inter[linkKey{rf, rt}], true
}

// ThreeRegions is a 3-region WAN preset (us-east, eu-west, ap-south)
// with asymmetric one-way delays in the ballpark of public-cloud
// inter-region routes and a small deterministic jitter. Loss is zero so
// drills add it explicitly where wanted.
func ThreeRegions() *Geo {
	g := NewGeo(LinkProfile{Delay: 500 * time.Microsecond, Jitter: 200 * time.Microsecond})
	g.AddRegion("us-east")
	g.AddRegion("eu-west")
	g.AddRegion("ap-south")
	g.SetInterRegion("us-east", "eu-west", LinkProfile{Delay: 38 * time.Millisecond, Jitter: 4 * time.Millisecond})
	g.SetInterRegion("eu-west", "us-east", LinkProfile{Delay: 42 * time.Millisecond, Jitter: 4 * time.Millisecond})
	g.SetInterRegion("us-east", "ap-south", LinkProfile{Delay: 92 * time.Millisecond, Jitter: 8 * time.Millisecond})
	g.SetInterRegion("ap-south", "us-east", LinkProfile{Delay: 98 * time.Millisecond, Jitter: 8 * time.Millisecond})
	g.SetInterRegion("eu-west", "ap-south", LinkProfile{Delay: 61 * time.Millisecond, Jitter: 6 * time.Millisecond})
	g.SetInterRegion("ap-south", "eu-west", LinkProfile{Delay: 67 * time.Millisecond, Jitter: 6 * time.Millisecond})
	return g
}

// FiveRegions extends the 3-region preset with us-west and ap-ne,
// giving a topology where the slowest pair is ~3.5x the fastest — the
// shape that exposes convergence protocols tuned on uniform latency.
func FiveRegions() *Geo {
	g := ThreeRegions()
	g.AddRegion("us-west")
	g.AddRegion("ap-ne")
	g.SetInterRegion("us-west", "us-east", LinkProfile{Delay: 31 * time.Millisecond, Jitter: 3 * time.Millisecond})
	g.SetInterRegion("us-east", "us-west", LinkProfile{Delay: 33 * time.Millisecond, Jitter: 3 * time.Millisecond})
	g.SetInterRegion("us-west", "eu-west", LinkProfile{Delay: 66 * time.Millisecond, Jitter: 6 * time.Millisecond})
	g.SetInterRegion("eu-west", "us-west", LinkProfile{Delay: 71 * time.Millisecond, Jitter: 6 * time.Millisecond})
	g.SetInterRegion("us-west", "ap-south", LinkProfile{Delay: 108 * time.Millisecond, Jitter: 10 * time.Millisecond})
	g.SetInterRegion("ap-south", "us-west", LinkProfile{Delay: 112 * time.Millisecond, Jitter: 10 * time.Millisecond})
	g.SetInterRegion("us-west", "ap-ne", LinkProfile{Delay: 54 * time.Millisecond, Jitter: 5 * time.Millisecond})
	g.SetInterRegion("ap-ne", "us-west", LinkProfile{Delay: 57 * time.Millisecond, Jitter: 5 * time.Millisecond})
	g.SetInterRegion("ap-ne", "us-east", LinkProfile{Delay: 74 * time.Millisecond, Jitter: 7 * time.Millisecond})
	g.SetInterRegion("us-east", "ap-ne", LinkProfile{Delay: 78 * time.Millisecond, Jitter: 7 * time.Millisecond})
	g.SetInterRegion("ap-ne", "eu-west", LinkProfile{Delay: 104 * time.Millisecond, Jitter: 9 * time.Millisecond})
	g.SetInterRegion("eu-west", "ap-ne", LinkProfile{Delay: 110 * time.Millisecond, Jitter: 9 * time.Millisecond})
	g.SetInterRegion("ap-ne", "ap-south", LinkProfile{Delay: 48 * time.Millisecond, Jitter: 5 * time.Millisecond})
	g.SetInterRegion("ap-south", "ap-ne", LinkProfile{Delay: 51 * time.Millisecond, Jitter: 5 * time.Millisecond})
	return g
}
