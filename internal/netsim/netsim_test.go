package netsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector records delivered messages.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) handle(m Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) last() (Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.msgs) == 0 {
		return Message{}, false
	}
	return c.msgs[len(c.msgs)-1], true
}

func TestUnicastDelivery(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "ping", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	msg, ok := got.last()
	if !ok {
		t.Fatal("no message delivered")
	}
	if msg.From != "a" || msg.To != "b" || msg.Kind != "ping" || string(msg.Payload) != "hello" {
		t.Errorf("msg = %+v", msg)
	}
}

func TestSendErrors(t *testing.T) {
	n := New(Config{})
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", "x", nil); !errors.Is(err, ErrUnknownTarget) {
		t.Errorf("err = %v, want ErrUnknownTarget", err)
	}
	if _, err := n.Join("a", func(Message) {}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("err = %v, want ErrDuplicateName", err)
	}
	n.Close()
	if err := a.Send("a", "x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err after close = %v, want ErrClosed", err)
	}
	if _, err := n.Join("c", func(Message) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("join after close = %v, want ErrClosed", err)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var b, c collector
	var selfCount atomic.Int64
	a, err := n.Join("a", func(Message) { selfCount.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", b.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("c", c.handle); err != nil {
		t.Fatal(err)
	}
	a.Broadcast("gossip", []byte("x"))
	n.Flush()
	if b.count() != 1 || c.count() != 1 {
		t.Errorf("deliveries b=%d c=%d, want 1 each", b.count(), c.count())
	}
	if selfCount.Load() != 0 {
		t.Error("broadcast delivered to sender")
	}
}

func TestFIFOOrderPerSenderPair(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := a.Send("b", "seq", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n.Flush()
	got.mu.Lock()
	defer got.mu.Unlock()
	if len(got.msgs) != 100 {
		t.Fatalf("%d messages, want 100", len(got.msgs))
	}
	for i, m := range got.msgs {
		if m.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order (payload %d)", i, m.Payload[0])
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	n.Partition([]string{"b"})
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if got.count() != 0 {
		t.Error("message crossed partition")
	}
	stats := n.Stats()
	if stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", stats.Dropped)
	}
	n.Heal()
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if got.count() != 1 {
		t.Error("message lost after heal")
	}
	// Same-group members of a named partition still talk to each other.
	n.Partition([]string{"a", "b"})
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if got.count() != 2 {
		t.Error("same-partition message lost")
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{DropRate: 1.0, Seed: 42})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send("b", "x", nil); err != nil {
			t.Fatal(err)
		}
	}
	n.Flush()
	if got.count() != 0 {
		t.Errorf("%d messages delivered at drop rate 1.0", got.count())
	}
	n.SetDropRate(0)
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if got.count() != 1 {
		t.Error("message lost at drop rate 0")
	}
}

func TestLatencyDelaysDeliveryOnVirtualClock(t *testing.T) {
	n := New(Config{Latency: 20 * time.Millisecond})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "x", nil); err != nil {
		t.Fatal(err)
	}
	if got.count() != 0 {
		t.Fatal("latent message delivered before Flush advanced the clock")
	}
	n.Flush()
	if got.count() != 1 {
		t.Fatal("message not delivered")
	}
	// The delay is simulated: the virtual clock advanced by the latency,
	// without the wall-clock sleep the old implementation paid.
	if v := n.Now(); v != 20*time.Millisecond {
		t.Errorf("virtual clock = %v, want 20ms", v)
	}
}

func TestHandlersMaySendWithoutDeadlock(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var final collector
	// a -> b -> c chain: b's handler forwards.
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Join("b", func(m Message) {
		_ = a // silence unused in closure pattern
	})
	_ = b
	if err != nil {
		t.Fatal(err)
	}
	// Re-join with forwarding handler requires a fresh network; instead
	// wire the forwarding through a third endpoint.
	nfwd := New(Config{})
	defer nfwd.Close()
	src, err := nfwd.Join("src", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	var hop *Endpoint
	hop, err = nfwd.Join("hop", func(m Message) {
		if m.Kind == "fwd" {
			_ = hop.Send("dst", "done", m.Payload)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nfwd.Join("dst", final.handle); err != nil {
		t.Fatal(err)
	}
	if err := src.Send("hop", "fwd", []byte("relay")); err != nil {
		t.Fatal(err)
	}
	nfwd.Flush()
	if final.count() != 1 {
		t.Error("relayed message not delivered")
	}
}

func TestStatsCounting(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "x", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	s := n.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Bytes != 10 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNamesAndEndpointName(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	ep, err := n.Join("solo", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Name() != "solo" {
		t.Errorf("Name = %q", ep.Name())
	}
	names := n.Names()
	if len(names) != 1 || names[0] != "solo" {
		t.Errorf("Names = %v", names)
	}
}

func TestCloseIsIdempotentAndWaits(t *testing.T) {
	n := New(Config{Latency: 5 * time.Millisecond})
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send("b", "x", nil); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	n.Close() // idempotent
	// After Close returns, no goroutines are running; whatever was
	// delivered was handled without panic. (Messages in flight during
	// shutdown may be dropped; that is acceptable UDP-like behaviour.)
}

func TestLeaveFreesNameForRejoin(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var first, second collector
	ep, err := n.Join("node", first.handle)
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("node", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	ep.Leave()
	ep.Leave() // idempotent
	if err := a.Send("node", "x", nil); !errors.Is(err, ErrUnknownTarget) {
		t.Errorf("send to departed endpoint = %v, want ErrUnknownTarget", err)
	}
	// The name is free again: a restarted node rejoins and receives.
	if _, err := n.Join("node", second.handle); err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
	if err := a.Send("node", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if first.count() != 1 || second.count() != 1 {
		t.Errorf("delivery counts: first=%d second=%d, want 1/1", first.count(), second.count())
	}
}

func TestPeerLatencyLagsOneEndpoint(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var fast, slow collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("fast", fast.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("slow", slow.handle); err != nil {
		t.Fatal(err)
	}
	n.SetPeerLatency("slow", 20*time.Millisecond)
	if err := a.Send("fast", "x", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("slow", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if v := n.Now(); v != 20*time.Millisecond {
		t.Errorf("virtual clock = %v, lagged delivery should advance it to 20ms", v)
	}
	if fast.count() != 1 || slow.count() != 1 {
		t.Errorf("delivery counts: fast=%d slow=%d", fast.count(), slow.count())
	}
	// Clearing the lag restores immediate delivery: no further virtual
	// time passes.
	n.SetPeerLatency("slow", 0)
	before := n.Now()
	if err := a.Send("slow", "x", nil); err != nil {
		t.Fatal(err)
	}
	n.Flush()
	if v := n.Now(); v != before {
		t.Errorf("cleared lag still advanced the clock by %v", v-before)
	}
	if slow.count() != 2 {
		t.Errorf("slow count = %d, want 2", slow.count())
	}
}

func TestScenarioRunsStepsAndSkipsAfterFailure(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	sc := NewScenario(n)
	_ = sc.Step("send", func() error { return a.Send("b", "x", nil) })
	// The step flushed: the message is already handled, no Flush needed.
	_ = sc.Check("delivered", func() error {
		if got.count() != 1 {
			return errors.New("not delivered")
		}
		return nil
	})
	if sc.Err() != nil {
		t.Fatalf("clean scenario reports error: %v", sc.Err())
	}
	boom := errors.New("boom")
	if err := sc.Step("fails", func() error { return boom }); !errors.Is(err, boom) {
		t.Errorf("failing step returned %v", err)
	}
	if err := sc.Step("after", func() error { return nil }); !errors.Is(err, boom) {
		t.Error("step after a failure was not skipped")
	}
	hist := sc.History()
	if len(hist) != 4 || hist[0].Name != "send" || hist[2].Err == nil || hist[3].Err == nil {
		t.Errorf("history = %+v", hist)
	}
	if !errors.Is(sc.Err(), boom) {
		t.Errorf("scenario error = %v", sc.Err())
	}
}

func TestScenarioPartitionHeal(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var got collector
	a, err := n.Join("a", func(Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("b", got.handle); err != nil {
		t.Fatal(err)
	}
	sc := NewScenario(n)
	_ = sc.Partition("isolate b", []string{"b"})
	_ = sc.Step("send into partition", func() error { return a.Send("b", "x", nil) })
	_ = sc.Heal("heal")
	_ = sc.Step("send after heal", func() error { return a.Send("b", "x", nil) })
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if got.count() != 1 {
		t.Errorf("delivered %d, want 1 (partitioned send dropped)", got.count())
	}
}
