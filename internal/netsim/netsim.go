package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the network.
var (
	ErrClosed        = errors.New("netsim: network closed")
	ErrUnknownTarget = errors.New("netsim: unknown endpoint")
	ErrDuplicateName = errors.New("netsim: endpoint name taken")
)

// Message is one delivered datagram.
type Message struct {
	// From and To are endpoint names.
	From, To string
	// Kind is an application-defined message type tag.
	Kind string
	// Payload is the opaque message body.
	Payload []byte
}

// Handler consumes messages delivered to an endpoint. Handlers run on the
// endpoint's delivery goroutine, one message at a time.
type Handler func(Message)

// Config parameterizes a Network.
type Config struct {
	// Latency delays every delivery; zero keeps the network synchronous
	// enough for deterministic tests.
	Latency time.Duration
	// DropRate is the probability in [0,1) of silently dropping a
	// message (broadcast copies drop independently).
	DropRate float64
	// Seed drives the deterministic drop decisions.
	Seed int64
	// QueueSize bounds each endpoint's inbox (default 1024).
	QueueSize int
}

// Stats counts network activity.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// Network routes messages between named endpoints.
type Network struct {
	mu        sync.Mutex
	cfg       Config
	endpoints map[string]*Endpoint
	groups    map[string]int // partition group per endpoint; same group = reachable
	lag       map[string]time.Duration
	rng       *rand.Rand
	stats     Stats
	closed    bool
	wg        sync.WaitGroup
	// inFlight counts messages from the moment they are accepted for
	// delivery until their handler returns (covering latency delay, inbox
	// residence, and handler execution); Flush waits for it to hit zero.
	inFlight atomic.Int64
}

// New creates a network.
func New(cfg Config) *Network {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	return &Network{
		cfg:       cfg,
		endpoints: make(map[string]*Endpoint),
		groups:    make(map[string]int),
		lag:       make(map[string]time.Duration),
		rng:       rand.New(rand.NewSource(cfg.Seed)), //nolint:gosec // simulation determinism, not crypto
	}
}

// Endpoint is one attached participant.
type Endpoint struct {
	name    string
	net     *Network
	inbox   chan Message
	handler Handler
	done    chan struct{}
	stop    sync.Once
	// sendMu orders enqueues against shutdown: dead flips to true
	// strictly before done closes, so any message that entered the
	// inbox while alive is guaranteed to be consumed by run's final
	// drain — inFlight can never leak into a reader-less channel.
	sendMu sync.Mutex
	dead   bool
}

// shutdown marks the endpoint dead (no new enqueues) and then releases
// its delivery goroutine. The ordering is the crux: every producer
// holds sendMu while enqueueing, so after shutdown acquires it, no
// message can enter the inbox anymore — whatever is already there is
// handled by run's drain, and later senders see dead and drop.
func (ep *Endpoint) shutdown() {
	ep.sendMu.Lock()
	ep.dead = true
	ep.sendMu.Unlock()
	ep.stop.Do(func() { close(ep.done) })
}

// Join attaches a named endpoint with the given handler.
func (n *Network) Join(name string, handler Handler) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	ep := &Endpoint{
		name:    name,
		net:     n,
		inbox:   make(chan Message, n.cfg.QueueSize),
		handler: handler,
		done:    make(chan struct{}),
	}
	n.endpoints[name] = ep
	n.groups[name] = 0
	n.wg.Add(1)
	go ep.run(&n.wg)
	return ep, nil
}

func (ep *Endpoint) run(wg *sync.WaitGroup) {
	defer wg.Done()
	handle := func(msg Message) {
		defer ep.net.inFlight.Add(-1) // accepted at send time
		ep.handler(msg)
	}
	for {
		select {
		case msg := <-ep.inbox:
			handle(msg)
		case <-ep.done:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case msg := <-ep.inbox:
					handle(msg)
				default:
					return
				}
			}
		}
	}
}

// Name returns the endpoint name.
func (ep *Endpoint) Name() string { return ep.name }

// Send sends a unicast message from this endpoint.
func (ep *Endpoint) Send(to, kind string, payload []byte) error {
	return ep.net.send(ep.name, to, kind, payload)
}

// Broadcast sends to every other endpoint reachable from this one.
func (ep *Endpoint) Broadcast(kind string, payload []byte) {
	ep.net.broadcast(ep.name, kind, payload)
}

// Leave detaches the endpoint from the network: messages already queued
// are still handled, new messages addressed to the name fail with
// ErrUnknownTarget, and the name becomes free for a future Join — the
// node-restart scenario. Leave is idempotent and safe to race with a
// network Close.
func (ep *Endpoint) Leave() {
	n := ep.net
	n.mu.Lock()
	if n.endpoints[ep.name] == ep {
		delete(n.endpoints, ep.name)
		delete(n.groups, ep.name)
		delete(n.lag, ep.name)
	}
	n.mu.Unlock()
	ep.shutdown()
}

func (n *Network) send(from, to, kind string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	target, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownTarget, to)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(payload))
	if n.groups[from] != n.groups[to] {
		// Partitioned: message silently lost, like a real partition.
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	// A lagging endpoint is slow on both directions of its link: its
	// uplink and downlink delays stack on the network-wide latency.
	latency := n.cfg.Latency + n.lag[from] + n.lag[to]
	n.mu.Unlock()

	msg := Message{From: from, To: to, Kind: kind, Payload: payload}
	n.inFlight.Add(1) // released by the receiver's handler (or on drop)
	deliver := func() error {
		target.sendMu.Lock()
		defer target.sendMu.Unlock()
		if target.dead {
			n.inFlight.Add(-1) // receiver left; treat as drop
			return nil
		}
		// Not dead, so run() is still draining: this send cannot block
		// forever, and the message is guaranteed to be handled.
		target.inbox <- msg
		n.mu.Lock()
		n.stats.Delivered++
		n.mu.Unlock()
		return nil
	}
	if latency == 0 {
		return deliver()
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		time.Sleep(latency)
		_ = deliver()
	}()
	return nil
}

func (n *Network) broadcast(from, kind string, payload []byte) {
	n.mu.Lock()
	names := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		if name != from {
			names = append(names, name)
		}
	}
	n.mu.Unlock()
	for _, to := range names {
		// Errors (unknown target after a concurrent leave) are ignored;
		// broadcast is best-effort like UDP gossip.
		_ = n.send(from, to, kind, payload)
	}
}

// Partition splits the endpoints into isolated groups. Endpoints not
// mentioned in any group join group 0. Messages only flow within a group
// (the eclipse/isolation scenario of §V-B.4).
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.groups {
		n.groups[name] = 0
	}
	for i, group := range groups {
		for _, name := range group {
			n.groups[name] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.groups {
		n.groups[name] = 0
	}
}

// SetDropRate changes the drop probability.
func (n *Network) SetDropRate(r float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DropRate = r
}

// SetPeerLatency adds a delivery delay to every message sent to or from
// the named endpoint — the lagging-node scenario. Zero removes the lag.
func (n *Network) SetPeerLatency(name string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.lag, name)
		return
	}
	n.lag[name] = d
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Names returns the attached endpoint names.
func (n *Network) Names() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		out = append(out, name)
	}
	return out
}

// Close shuts the network down and waits for all deliveries to finish.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	n.wg.Wait()
}

// Flush blocks until all queues are empty and no handler or delayed
// delivery is in flight, i.e. the network reached quiescence. Tests use
// it instead of sleeping.
func (n *Network) Flush() {
	for !n.quiet() {
		time.Sleep(100 * time.Microsecond)
	}
}

func (n *Network) quiet() bool {
	return n.inFlight.Load() == 0
}
