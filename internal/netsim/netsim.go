package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/seldel/seldel/internal/simclock"
)

// Errors returned by the network.
var (
	ErrClosed        = errors.New("netsim: network closed")
	ErrUnknownTarget = errors.New("netsim: unknown endpoint")
	ErrDuplicateName = errors.New("netsim: endpoint name taken")
)

// Message is one delivered datagram.
type Message struct {
	// From and To are endpoint names.
	From, To string
	// Kind is an application-defined message type tag.
	Kind string
	// Payload is the opaque message body.
	Payload []byte
}

// Handler consumes messages delivered to an endpoint. Handlers run on the
// endpoint's delivery goroutine, one message at a time.
type Handler func(Message)

// Config parameterizes a Network.
type Config struct {
	// Latency delays every delivery on the virtual clock; zero keeps the
	// network synchronous enough for deterministic tests.
	Latency time.Duration
	// DropRate is the probability in [0,1) of silently dropping a
	// message (broadcast copies drop independently).
	DropRate float64
	// Seed drives the deterministic drop, loss, and jitter decisions.
	// Decisions are keyed per directed link and per-link sequence number,
	// not by global draw order, so they do not depend on goroutine
	// interleaving.
	Seed int64
	// QueueSize bounds each endpoint's inbox (default 1024).
	QueueSize int
	// Clock is the virtual timebase, in nanoseconds. All latency, lag,
	// and link delays are simulated by advancing this clock during
	// Flush — the harness never sleeps for simulated time, so a
	// 100-node WAN drill with 80ms links runs as fast as the handlers
	// can go. Nil gets a private clock starting at zero.
	Clock *simclock.Logical
}

// LinkProfile shapes one directed link of the simulated WAN.
type LinkProfile struct {
	// Delay is the one-way propagation delay (virtual time).
	Delay time.Duration
	// Jitter adds a deterministic per-message extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1) of dropping a message on this
	// link, independent of the network-wide DropRate.
	Loss float64
}

func (p LinkProfile) zero() bool {
	return p.Delay == 0 && p.Jitter == 0 && p.Loss == 0
}

// Stats counts network activity.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

type linkKey struct{ from, to string }

// pendingMsg is a message waiting in the virtual-time delay heap.
type pendingMsg struct {
	due    uint64 // virtual nanoseconds at which the message arrives
	seq    uint64 // tie-break: FIFO among equal due times
	target *Endpoint
	msg    Message
}

type delayHeap []pendingMsg

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(pendingMsg)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Network routes messages between named endpoints.
type Network struct {
	mu        sync.Mutex
	cfg       Config
	endpoints map[string]*Endpoint
	groups    map[string]int // partition group per endpoint; same group = reachable
	lag       map[string]time.Duration
	links     map[linkKey]LinkProfile
	linkSeq   map[linkKey]uint64
	geo       *Geo
	pending   delayHeap
	pendSeq   uint64
	clock     *simclock.Logical
	stats     Stats
	closed    bool
	wg        sync.WaitGroup
	// inFlight counts messages from the moment they are accepted for
	// immediate delivery until their handler returns (covering inbox
	// residence and handler execution); Flush waits for it to hit zero
	// before advancing virtual time. Messages waiting in the delay heap
	// are NOT counted here — they are released by Flush. Guarded by
	// flightMu; flightZero signals the zero crossing so Flush can wake
	// immediately instead of sleep-polling (the virtual clock releases
	// one due-instant batch per quiescent window, so this wait is on the
	// drill hot path at WAN scale).
	flightMu   sync.Mutex
	flightCond *sync.Cond
	inFlight   int64
}

// New creates a network.
func New(cfg Config) *Network {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.NewLogical(0)
	}
	n := &Network{
		cfg:       cfg,
		endpoints: make(map[string]*Endpoint),
		groups:    make(map[string]int),
		lag:       make(map[string]time.Duration),
		links:     make(map[linkKey]LinkProfile),
		linkSeq:   make(map[linkKey]uint64),
		clock:     clock,
	}
	n.flightCond = sync.NewCond(&n.flightMu)
	return n
}

// addFlight adjusts the in-flight message count, waking Flush when the
// count returns to zero.
func (n *Network) addFlight(d int64) {
	n.flightMu.Lock()
	n.inFlight += d
	if n.inFlight == 0 {
		n.flightCond.Broadcast()
	}
	n.flightMu.Unlock()
}

func (n *Network) flightZero() bool {
	n.flightMu.Lock()
	defer n.flightMu.Unlock()
	return n.inFlight == 0
}

// Clock returns the network's virtual timebase (nanosecond units).
func (n *Network) Clock() *simclock.Logical { return n.clock }

// Now returns the elapsed virtual time since the clock's zero point.
func (n *Network) Now() time.Duration { return time.Duration(n.clock.Now()) }

// Endpoint is one attached participant.
type Endpoint struct {
	name    string
	net     *Network
	inbox   chan Message
	handler Handler
	done    chan struct{}
	stop    sync.Once
	// sendMu orders enqueues against shutdown: dead flips to true
	// strictly before done closes, so any message that entered the
	// inbox while alive is guaranteed to be consumed by run's final
	// drain — inFlight can never leak into a reader-less channel.
	sendMu sync.Mutex
	dead   bool
}

// shutdown marks the endpoint dead (no new enqueues) and then releases
// its delivery goroutine. The ordering is the crux: every producer
// holds sendMu while enqueueing, so after shutdown acquires it, no
// message can enter the inbox anymore — whatever is already there is
// handled by run's drain, and later senders see dead and drop.
func (ep *Endpoint) shutdown() {
	ep.sendMu.Lock()
	ep.dead = true
	ep.sendMu.Unlock()
	ep.stop.Do(func() { close(ep.done) })
}

// Join attaches a named endpoint with the given handler.
func (n *Network) Join(name string, handler Handler) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	ep := &Endpoint{
		name:    name,
		net:     n,
		inbox:   make(chan Message, n.cfg.QueueSize),
		handler: handler,
		done:    make(chan struct{}),
	}
	n.endpoints[name] = ep
	n.groups[name] = 0
	n.wg.Add(1)
	go ep.run(&n.wg)
	return ep, nil
}

func (ep *Endpoint) run(wg *sync.WaitGroup) {
	defer wg.Done()
	handle := func(msg Message) {
		defer ep.net.addFlight(-1) // accepted at send/release time
		ep.handler(msg)
	}
	for {
		select {
		case msg := <-ep.inbox:
			handle(msg)
		case <-ep.done:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case msg := <-ep.inbox:
					handle(msg)
				default:
					return
				}
			}
		}
	}
}

// Name returns the endpoint name.
func (ep *Endpoint) Name() string { return ep.name }

// Send sends a unicast message from this endpoint.
func (ep *Endpoint) Send(to, kind string, payload []byte) error {
	return ep.net.send(ep.name, to, kind, payload)
}

// Broadcast sends to every other endpoint reachable from this one.
func (ep *Endpoint) Broadcast(kind string, payload []byte) {
	ep.net.broadcast(ep.name, kind, payload)
}

// Leave detaches the endpoint from the network: messages already queued
// are still handled, new messages addressed to the name fail with
// ErrUnknownTarget, and the name becomes free for a future Join — the
// node-restart scenario. Leave is idempotent and safe to race with a
// network Close.
func (ep *Endpoint) Leave() {
	n := ep.net
	n.mu.Lock()
	if n.endpoints[ep.name] == ep {
		delete(n.endpoints, ep.name)
		delete(n.groups, ep.name)
		delete(n.lag, ep.name)
	}
	n.mu.Unlock()
	ep.shutdown()
}

// splitmix64 is the SplitMix64 finalizer — a strong 64-bit mixer used to
// derive per-message pseudo-random decisions from (seed, link, counter)
// keys so that drop and jitter outcomes depend only on the link's own
// message sequence, never on cross-link goroutine interleaving.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// linkDraw returns a deterministic uniform value in [0,1) for the seq-th
// message on the directed link, per salt (distinct salts give independent
// decision streams: network drop, link loss, jitter).
func (n *Network) linkDraw(key linkKey, seq, salt uint64) float64 {
	h := splitmix64(uint64(n.cfg.Seed) ^ hashString(key.from))
	h = splitmix64(h ^ hashString(key.to))
	h = splitmix64(h ^ seq)
	h = splitmix64(h ^ salt)
	return float64(h>>11) / (1 << 53)
}

const (
	saltDrop   = 0x01
	saltLoss   = 0x02
	saltJitter = 0x03
)

// profileFor resolves the directed link profile: explicit SetLink
// overrides win, then the installed Geo topology, then the zero profile.
// Caller holds n.mu.
func (n *Network) profileFor(key linkKey) LinkProfile {
	if p, ok := n.links[key]; ok {
		return p
	}
	if n.geo != nil {
		if p, ok := n.geo.profile(key.from, key.to); ok {
			return p
		}
	}
	return LinkProfile{}
}

func (n *Network) send(from, to, kind string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	target, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownTarget, to)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(payload))
	if n.groups[from] != n.groups[to] {
		// Partitioned: message silently lost, like a real partition.
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	key := linkKey{from, to}
	seq := n.linkSeq[key]
	n.linkSeq[key] = seq + 1
	profile := n.profileFor(key)
	if n.cfg.DropRate > 0 && n.linkDraw(key, seq, saltDrop) < n.cfg.DropRate {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	if profile.Loss > 0 && n.linkDraw(key, seq, saltLoss) < profile.Loss {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	// A lagging endpoint is slow on both directions of its link: its
	// uplink and downlink delays stack on the network-wide latency and
	// the directed link profile.
	latency := n.cfg.Latency + n.lag[from] + n.lag[to] + profile.Delay
	if profile.Jitter > 0 {
		latency += time.Duration(n.linkDraw(key, seq, saltJitter) * float64(profile.Jitter))
	}
	msg := Message{From: from, To: to, Kind: kind, Payload: payload}
	if latency > 0 {
		// Park in the virtual-time heap; Flush advances the clock and
		// releases it. No wall time passes for simulated delay.
		heap.Push(&n.pending, pendingMsg{
			due:    n.clock.Now() + uint64(latency),
			seq:    n.pendSeq,
			target: target,
			msg:    msg,
		})
		n.pendSeq++
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	n.addFlight(1) // released by the receiver's handler (or on drop)
	n.deliver(target, msg)
	return nil
}

// deliver hands msg to the target's inbox, accounting for a concurrent
// leave. The caller must already have incremented inFlight.
func (n *Network) deliver(target *Endpoint, msg Message) {
	target.sendMu.Lock()
	defer target.sendMu.Unlock()
	if target.dead {
		n.addFlight(-1) // receiver left; treat as drop
		return
	}
	// Not dead, so run() is still draining: this send cannot block
	// forever, and the message is guaranteed to be handled.
	target.inbox <- msg
	n.mu.Lock()
	n.stats.Delivered++
	n.mu.Unlock()
}

func (n *Network) broadcast(from, kind string, payload []byte) {
	n.mu.Lock()
	names := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		if name != from {
			names = append(names, name)
		}
	}
	n.mu.Unlock()
	for _, to := range names {
		// Errors (unknown target after a concurrent leave) are ignored;
		// broadcast is best-effort like UDP gossip.
		_ = n.send(from, to, kind, payload)
	}
}

// Partition splits the endpoints into isolated groups. Endpoints not
// mentioned in any group join group 0. Messages only flow within a group
// (the eclipse/isolation scenario of §V-B.4).
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.groups {
		n.groups[name] = 0
	}
	for i, group := range groups {
		for _, name := range group {
			n.groups[name] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range n.groups {
		n.groups[name] = 0
	}
}

// SetDropRate changes the network-wide drop probability.
func (n *Network) SetDropRate(r float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DropRate = r
}

// SetPeerLatency adds a delivery delay to every message sent to or from
// the named endpoint — the lagging-node scenario. Zero removes the lag.
// The delay is virtual: Flush advances the clock past it without
// sleeping.
func (n *Network) SetPeerLatency(name string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.lag, name)
		return
	}
	n.lag[name] = d
}

// SetLink installs a directed link profile between two endpoints,
// overriding any installed Geo topology for that pair. A zero profile
// removes the override.
func (n *Network) SetLink(from, to string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := linkKey{from, to}
	if p.zero() {
		delete(n.links, key)
		return
	}
	n.links[key] = p
}

// SetGeo installs (or, with nil, removes) a geographic topology: every
// directed pair of endpoints not covered by an explicit SetLink override
// takes its profile from the regions the endpoints are assigned to.
func (n *Network) SetGeo(g *Geo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.geo = g
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Names returns the attached endpoint names.
func (n *Network) Names() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.endpoints))
	for name := range n.endpoints {
		out = append(out, name)
	}
	return out
}

// Close shuts the network down and waits for all deliveries to finish.
// Messages still parked in the virtual-time heap are discarded (UDP-like
// shutdown semantics, matching the in-flight drop behaviour).
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.pending = nil
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	n.wg.Wait()
}

// Flush blocks until the network reaches quiescence: all inboxes are
// empty, no handler is running, and the virtual-time heap is drained.
// It alternates two phases — wait for running handlers to finish, then
// advance the virtual clock to the next delivery time and release that
// batch — so simulated WAN latency costs no wall-clock time. Tests use
// Flush instead of sleeping.
func (n *Network) Flush() {
	for {
		n.waitHandlers()
		if n.releaseNextDue() {
			continue
		}
		// Nothing due; if a handler snuck a zero-latency send in after
		// the wait, loop once more, otherwise the network is quiet.
		if n.flightZero() && !n.hasPending() {
			return
		}
	}
}

func (n *Network) waitHandlers() {
	n.flightMu.Lock()
	for n.inFlight != 0 {
		n.flightCond.Wait()
	}
	n.flightMu.Unlock()
}

func (n *Network) hasPending() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending) > 0
}

// releaseNextDue pops every parked message sharing the earliest due
// time, advances the virtual clock to that instant, and delivers the
// batch in send order. It reports whether anything was released.
func (n *Network) releaseNextDue() bool {
	n.mu.Lock()
	if len(n.pending) == 0 {
		n.mu.Unlock()
		return false
	}
	due := n.pending[0].due
	var batch []pendingMsg
	for len(n.pending) > 0 && n.pending[0].due == due {
		batch = append(batch, heap.Pop(&n.pending).(pendingMsg))
	}
	n.mu.Unlock()
	n.clock.Set(due)
	for _, pm := range batch {
		n.addFlight(1)
		n.deliver(pm.target, pm.msg)
	}
	return true
}
