package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/node"
	"github.com/seldel/seldel/internal/partition"
	"github.com/seldel/seldel/internal/simclock"
)

// env bundles one test's registry and signing keys.
type env struct {
	registry *identity.Registry
	keys     map[string]*identity.KeyPair
}

func newTestEnv(t *testing.T, users ...string) *env {
	t.Helper()
	e := &env{registry: identity.NewRegistry(), keys: map[string]*identity.KeyPair{}}
	for _, u := range users {
		kp := identity.Deterministic(u, "serve-test")
		if err := e.registry.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
		e.keys[u] = kp
	}
	return e
}

func (e *env) data(user, payload string) EntryJSON {
	return NewEntryJSON(block.NewData(user, []byte(payload)).Sign(e.keys[user]))
}

func (e *env) del(user string, target block.Ref) EntryJSON {
	return NewEntryJSON(block.NewDeletion(user, target).Sign(e.keys[user]))
}

// boundedChain builds an in-memory chain with the retention bound on,
// so deletions become physical truncations.
func boundedChain(t *testing.T, e *env, mutate ...func(*chain.Config)) *chain.Chain {
	t.Helper()
	cfg := chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Shrink:         chain.ShrinkAllButNewest,
		Registry:       e.registry,
		Clock:          simclock.NewLogical(0),
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := chain.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testServer exposes backend over a real HTTP listener.
func testServer(t *testing.T, backend Backend, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(backend, opts)
	t.Cleanup(func() { s.Close() })
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postSubmit round-trips one submit request and decodes the reply.
func postSubmit(t *testing.T, url string, wait bool, entries ...EntryJSON) (*http.Response, SubmitResponse) {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/v1/submit"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, sr
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestSubmitWaitRoundTrip(t *testing.T) {
	e := newTestEnv(t, "alpha", "beta")
	c := boundedChain(t, e)
	_, hs := testServer(t, c, Options{})

	resp, sr := postSubmit(t, hs.URL, true,
		e.data("alpha", "one"), e.data("beta", "two"), e.data("alpha", "three"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if sr.Accepted != 3 || len(sr.Sealed) != 3 {
		t.Fatalf("accepted=%d sealed=%d", sr.Accepted, len(sr.Sealed))
	}
	for i, s := range sr.Sealed {
		if s.Error != "" {
			t.Fatalf("entry %d: %s", i, s.Error)
		}
		if s.BlockHash == "" {
			t.Errorf("entry %d: no block hash", i)
		}
	}
	// One submit call seals in one block.
	if sr.Sealed[0].Block != sr.Sealed[2].Block {
		t.Errorf("entries of one submit split across blocks %d and %d",
			sr.Sealed[0].Block, sr.Sealed[2].Block)
	}

	var page EntryPage
	getJSON(t, hs.URL+"/v1/entries", &page)
	if len(page.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(page.Entries))
	}
	if page.Entries[0].Entry.Owner != "alpha" || string(page.Entries[0].Entry.Payload) != "one" {
		t.Errorf("first entry = %+v", page.Entries[0].Entry)
	}

	var stats StatsResponse
	getJSON(t, hs.URL+"/v1/stats", &stats)
	if stats.Server.AcceptedEntries != 3 || stats.Server.SealedEntries != 3 {
		t.Errorf("server stats = %+v", stats.Server)
	}
	if stats.Chain.LiveEntries != 3 {
		t.Errorf("chain live entries = %d", stats.Chain.LiveEntries)
	}
	if stats.Server.MaxPendingEntries <= 0 {
		t.Errorf("derived admission budget = %d", stats.Server.MaxPendingEntries)
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	e := newTestEnv(t, "alpha")
	c := boundedChain(t, e)
	_, hs := testServer(t, c, Options{MaxEntriesPerRequest: 2, MaxPayloadBytes: 16})

	// Unknown kind.
	bad := e.data("alpha", "x")
	bad.Kind = "mystery"
	resp, _ := postSubmit(t, hs.URL, true, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: HTTP %d", resp.StatusCode)
	}
	// Payload over the per-entry cap.
	resp, _ = postSubmit(t, hs.URL, true, e.data("alpha", strings.Repeat("x", 64)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized payload: HTTP %d", resp.StatusCode)
	}
	// Too many entries in one request.
	resp, _ = postSubmit(t, hs.URL, true, e.data("alpha", "a"), e.data("alpha", "b"), e.data("alpha", "c"))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized request: HTTP %d", resp.StatusCode)
	}
	// Empty body.
	resp, _ = postSubmit(t, hs.URL, true)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request: HTTP %d", resp.StatusCode)
	}
	// A signature forged over different bytes fails chain validation and
	// surfaces as a per-entry error, not a sealed ref.
	forged := e.data("alpha", "real")
	forged.Payload = []byte("tampered-payload")
	resp, sr := postSubmit(t, hs.URL, true, forged)
	if resp.StatusCode != http.StatusOK || len(sr.Sealed) != 1 || sr.Sealed[0].Error == "" {
		t.Errorf("tampered entry: HTTP %d sealed=%+v", resp.StatusCode, sr.Sealed)
	}
}

func TestSubmitAsyncReleasesBudget(t *testing.T) {
	e := newTestEnv(t, "alpha")
	c := boundedChain(t, e)
	s, hs := testServer(t, c, Options{})

	resp, sr := postSubmit(t, hs.URL, false, e.data("alpha", "fire"), e.data("alpha", "forget"))
	if resp.StatusCode != http.StatusAccepted || sr.Accepted != 2 {
		t.Fatalf("async submit: HTTP %d accepted=%d", resp.StatusCode, sr.Accepted)
	}
	// Receipts resolve in the background; the pending budget must drain
	// back to zero and the seal counters must catch up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.adm.pending.Load() == 0 && s.sealed.Load() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget never drained: pending=%d sealed=%d",
				s.adm.pending.Load(), s.sealed.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedsHappenBeforeQueueOverflow saturates the front-end with
// concurrent submits against a tiny admission budget and asserts the
// overload answer is 429 + Retry-After BEFORE the pipeline's intake
// queue ever reaches capacity — no handler parks on a full queue.
// Run with -race (CI does): the sampler races the handlers by design.
func TestShedsHappenBeforeQueueOverflow(t *testing.T) {
	e := newTestEnv(t, "alpha")
	// A lingering, small-batch pipeline: receipts resolve slowly enough
	// for pending submissions to pile onto the admission budget.
	c := boundedChain(t, e, func(cfg *chain.Config) {
		cfg.MaxSequences = 0 // no truncation churn in this test
		cfg.BatchLinger = 5 * time.Millisecond
	})
	s, hs := testServer(t, c, Options{Admission: AdmissionOptions{MaxPending: 12}})

	// The pipeline starts lazily; one warm-up submit makes QueueCap real.
	if _, err := c.SubmitWait(context.Background(), block.NewData("alpha", []byte("warm-up")).Sign(e.keys["alpha"])); err != nil {
		t.Fatal(err)
	}
	queueCap := c.PipelineStats().QueueCap
	if queueCap <= 12 {
		t.Fatalf("queue cap %d not above the admission budget; test is vacuous", queueCap)
	}

	// Sample the intake depth at high frequency for the whole run.
	var maxDepth atomic.Int64
	samplerDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := int64(c.PipelineStats().QueueDepth)
			for {
				old := maxDepth.Load()
				if d <= old || maxDepth.CompareAndSwap(old, d) {
					break
				}
			}
		}
	}()

	const clients = 32
	var wg sync.WaitGroup
	var sheds, oks atomic.Int64
	var retryAfterSeen atomic.Bool
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				entries := []EntryJSON{
					e.data("alpha", fmt.Sprintf("flood-%d-%d-a", g, i)),
					e.data("alpha", fmt.Sprintf("flood-%d-%d-b", g, i)),
				}
				body, _ := json.Marshal(SubmitRequest{Entries: entries})
				resp, err := http.Post(hs.URL+"/v1/submit?wait=1", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					sheds.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						retryAfterSeen.Store(true)
					}
				case http.StatusOK:
					oks.Add(1)
				default:
					t.Errorf("unexpected HTTP %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-samplerDone

	if sheds.Load() == 0 {
		t.Fatal("no sheds under 32-way flood with budget 12; admission control inert")
	}
	if oks.Load() == 0 {
		t.Fatal("every request shed; server never admitted anything")
	}
	if !retryAfterSeen.Load() {
		t.Error("no 429 carried a Retry-After header")
	}
	if got := maxDepth.Load(); got >= int64(queueCap) {
		t.Errorf("intake queue reached capacity (%d of %d) despite admission control", got, queueCap)
	}
	if s.ShedCount() != uint64(sheds.Load()) {
		t.Errorf("server counted %d sheds, clients saw %d", s.ShedCount(), sheds.Load())
	}
	// The shed answer includes the machine-readable backoff hint.
	var stats StatsResponse
	getJSON(t, hs.URL+"/v1/stats", &stats)
	if stats.Server.ShedRequests == 0 {
		t.Error("stats endpoint lost the shed counter")
	}
}

// collectPages pages through /v1/entries with the given limit,
// returning every (ref, payload) in order and failing on duplicates.
func collectPages(t *testing.T, base string, limit int, between func(pageNo int)) map[string]string {
	t.Helper()
	seen := map[string]string{}
	cursor := ""
	for pageNo := 0; ; pageNo++ {
		if pageNo > 1000 {
			t.Fatal("pagination never terminated")
		}
		url := fmt.Sprintf("%s/v1/entries?limit=%d", base, limit)
		if cursor != "" {
			url += "&after=" + cursor
		}
		var page EntryPage
		getJSON(t, url, &page)
		for _, it := range page.Entries {
			key := it.Ref.Ref().String()
			if _, dup := seen[key]; dup {
				t.Fatalf("duplicate ref %s across pages", key)
			}
			seen[key] = string(it.Entry.Payload)
		}
		if page.Next == "" {
			return seen
		}
		cursor = page.Next
		if between != nil {
			between(pageNo)
		}
	}
}

// TestPaginationCursorStableAcrossTruncation starts a paginated scan,
// fires a deletion-driven truncation between pages, and asserts the
// cursor semantics hold: no reference is ever returned twice, and
// every entry that stayed live through the whole scan is returned.
func TestPaginationCursorStableAcrossTruncation(t *testing.T) {
	e := newTestEnv(t, "alpha")
	c := boundedChain(t, e)
	_, hs := testServer(t, c, Options{})
	ctx := context.Background()

	// Seed: 12 keepers and one victim.
	keepers := map[string]bool{}
	for i := 0; i < 12; i++ {
		sealed, err := c.SubmitWait(ctx, block.NewData("alpha", fmt.Appendf(nil, "keep-%02d", i)).Sign(e.keys["alpha"]))
		if err != nil {
			t.Fatal(err)
		}
		keepers[sealed[0].Ref.String()] = true
	}
	victim, err := c.SubmitWait(ctx, block.NewData("alpha", []byte("victim")).Sign(e.keys["alpha"]))
	if err != nil {
		t.Fatal(err)
	}

	truncated := false
	truncate := func(pageNo int) {
		if truncated || pageNo != 1 {
			return
		}
		truncated = true
		if _, err := c.SubmitWait(ctx, block.NewDeletion("alpha", victim[0].Ref).Sign(e.keys["alpha"])); err != nil {
			t.Fatal(err)
		}
		// Churn until the marker passes the victim: the deletion has
		// physically executed and carried survivors moved into the
		// summary block — mid-scan.
		for i := 0; c.Marker() <= victim[0].Ref.Block; i++ {
			if i > 64 {
				t.Fatal("truncation never executed")
			}
			if _, err := c.SubmitWait(ctx, block.NewData("alpha", fmt.Appendf(nil, "churn-%02d", i)).Sign(e.keys["alpha"])); err != nil {
				t.Fatal(err)
			}
			if err := c.CompactWait(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	seen := collectPages(t, hs.URL, 3, truncate)
	for ref := range keepers {
		if _, ok := seen[ref]; !ok {
			t.Errorf("keeper %s missing from the paginated scan after truncation", ref)
		}
	}
	if !truncated {
		t.Fatal("scan finished before the truncation hook ran; test is vacuous")
	}

	// Under concurrent churn (readers racing writers and truncations,
	// -race coverage): duplicates must still never appear. The churner
	// is bounded so the scan terminates once it catches up.
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; i < 100; i++ {
			if _, err := c.SubmitWait(ctx, block.NewData("alpha", fmt.Appendf(nil, "live-%04d", i)).Sign(e.keys["alpha"])); err != nil {
				return
			}
		}
	}()
	collectPages(t, hs.URL, 5, nil)
	churn.Wait()
}

func TestTombstonesAndProveDeleted(t *testing.T) {
	e := newTestEnv(t, "alpha")
	c := boundedChain(t, e)
	_, hs := testServer(t, c, Options{})
	ctx := context.Background()

	sealed, err := c.SubmitWait(ctx, block.NewData("alpha", []byte("doomed")).Sign(e.keys["alpha"]))
	if err != nil {
		t.Fatal(err)
	}
	victim := sealed[0].Ref
	if _, err := c.SubmitWait(ctx, block.NewDeletion("alpha", victim).Sign(e.keys["alpha"])); err != nil {
		t.Fatal(err)
	}
	for i := 0; c.Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatal("truncation never executed")
		}
		if _, err := c.SubmitWait(ctx, block.NewData("alpha", fmt.Appendf(nil, "churn-%02d", i)).Sign(e.keys["alpha"])); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	var tombs struct {
		Records []json.RawMessage `json:"records"`
	}
	getJSON(t, hs.URL+"/v1/tombstones", &tombs)
	if len(tombs.Records) == 0 {
		t.Fatal("no tombstone records after truncation")
	}

	resp := getJSON(t, fmt.Sprintf("%s/v1/prove-deleted?block=%d&entry=%d", hs.URL, victim.Block, victim.Entry), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prove-deleted: HTTP %d", resp.StatusCode)
	}
	// A live entry draws 409 (exists, not deleted); a never-existed ref 404.
	live, err := c.SubmitWait(ctx, block.NewData("alpha", []byte("alive")).Sign(e.keys["alpha"]))
	if err != nil {
		t.Fatal(err)
	}
	resp = getJSON(t, fmt.Sprintf("%s/v1/prove-deleted?block=%d&entry=%d", hs.URL, live[0].Ref.Block, live[0].Ref.Entry), nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("live entry: HTTP %d, want 409", resp.StatusCode)
	}
	resp = getJSON(t, hs.URL+"/v1/prove-deleted?block=999999&entry=7", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ref: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestStreamingEntries(t *testing.T) {
	e := newTestEnv(t, "alpha")
	c := boundedChain(t, e, func(cfg *chain.Config) { cfg.MaxSequences = 0 })
	_, hs := testServer(t, c, Options{})
	ctx := context.Background()
	for i := 0; i < 9; i++ {
		if _, err := c.SubmitWait(ctx, block.NewData("alpha", fmt.Appendf(nil, "s-%02d", i)).Sign(e.keys["alpha"])); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/entries?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	n := 0
	for dec.More() {
		var it EntryWithRef
		if err := dec.Decode(&it); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 9 {
		t.Errorf("streamed %d entries, want 9", n)
	}
}

func TestPartitionedBackend(t *testing.T) {
	e := newTestEnv(t, "alpha", "beta", "gamma")
	pc, err := partition.New(partition.Config{
		Partitions: 2,
		Chain: chain.Config{
			SequenceLength: 3,
			MaxSequences:   2,
			Shrink:         chain.ShrinkAllButNewest,
			Registry:       e.registry,
			Clock:          simclock.NewLogical(0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	_, hs := testServer(t, pc, Options{})

	resp, sr := postSubmit(t, hs.URL, true,
		e.data("alpha", "p1"), e.data("beta", "p2"), e.data("gamma", "p3"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned submit: HTTP %d", resp.StatusCode)
	}
	for i, s := range sr.Sealed {
		if s.Error != "" {
			t.Fatalf("entry %d: %s", i, s.Error)
		}
	}
	seen := collectPages(t, hs.URL, 2, nil)
	if len(seen) != 3 {
		t.Fatalf("partitioned scan saw %d entries, want 3", len(seen))
	}

	// Delete alpha's entry and truncate its partition, then fetch the
	// spine-tied proof through the PartitionProver dispatch.
	ctx := context.Background()
	var victim block.Ref
	for ref, ent := range pc.EntriesSeq() {
		if ent.Owner == "alpha" {
			victim = ref
			break
		}
	}
	if _, err := pc.SubmitWait(ctx, block.NewDeletion("alpha", victim).Sign(e.keys["alpha"])); err != nil {
		t.Fatal(err)
	}
	p := pc.Part(pc.Owner(victim))
	for i := 0; p.Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatal("partition truncation never executed")
		}
		if _, err := pc.SubmitWait(ctx, block.NewData("alpha", fmt.Appendf(nil, "churn-%02d", i)).Sign(e.keys["alpha"])); err != nil {
			t.Fatal(err)
		}
		if err := pc.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	resp = getJSON(t, fmt.Sprintf("%s/v1/prove-deleted?block=%d&entry=%d", hs.URL, victim.Block, victim.Entry), nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("partitioned prove-deleted: HTTP %d", resp.StatusCode)
	}
}

func TestNodeBackend(t *testing.T) {
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	reg := identity.NewRegistry()
	anchor := identity.Deterministic("anchor-0", "serve-test")
	if err := reg.RegisterKey(anchor, identity.RoleMaster); err != nil {
		t.Fatal(err)
	}
	user := identity.Deterministic("alpha", "serve-test")
	if err := reg.RegisterKey(user, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	quorum, err := consensus.NewQuorum([]string{"anchor-0"})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := node.New(node.Config{
		Key: anchor,
		Chain: chain.Config{
			SequenceLength: 3,
			Registry:       reg,
			Clock:          simclock.NewLogical(0),
		},
		Quorum:  quorum,
		Network: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	_, hs := testServer(t, nd, Options{})

	kp := user
	resp, sr := postSubmit(t, hs.URL, true, NewEntryJSON(block.NewData("alpha", []byte("via-node")).Sign(kp)))
	if resp.StatusCode != http.StatusOK || len(sr.Sealed) != 1 || sr.Sealed[0].Error != "" {
		t.Fatalf("node submit: HTTP %d sealed=%+v", resp.StatusCode, sr.Sealed)
	}
	var stats StatsResponse
	getJSON(t, hs.URL+"/v1/stats", &stats)
	if stats.Chain.LiveEntries != 1 {
		t.Errorf("node chain live entries = %d", stats.Chain.LiveEntries)
	}
}

func TestCursorParsing(t *testing.T) {
	if _, have, err := parseCursor(""); err != nil || have {
		t.Errorf("empty cursor: have=%v err=%v", have, err)
	}
	ref, have, err := parseCursor("12/3")
	if err != nil || !have || ref != (block.Ref{Block: 12, Entry: 3}) {
		t.Errorf("12/3 -> %v have=%v err=%v", ref, have, err)
	}
	for _, bad := range []string{"12", "a/b", "1/-2", "/", "1/2/3"} {
		if _, _, err := parseCursor(bad); err == nil {
			t.Errorf("cursor %q accepted", bad)
		}
	}
}

func TestAdmissionBudgetDerivation(t *testing.T) {
	// Derived budget sits strictly below a small queue's capacity.
	a := newAdmission(AdmissionOptions{}, 32, func() float64 { return 0 })
	defer a.close()
	if a.maxPending >= 32 {
		t.Errorf("derived budget %d not below queue cap 32", a.maxPending)
	}
	// Large queues derive ShedFraction * cap.
	b := newAdmission(AdmissionOptions{}, 1000, func() float64 { return 0 })
	defer b.close()
	if b.maxPending != 750 {
		t.Errorf("derived budget %d, want 750", b.maxPending)
	}
	// The sampled gauge sheds on its own once it crosses ShedFraction,
	// even with the pending budget idle.
	frac := atomic.Uint64{}
	c := newAdmission(AdmissionOptions{Poll: time.Millisecond}, 1000,
		func() float64 { return float64(frac.Load()) })
	defer c.close()
	if !c.admit(1) {
		t.Error("idle admission refused")
	}
	c.release(1)
	frac.Store(1)
	deadline := time.Now().Add(2 * time.Second)
	for c.admit(1) {
		c.release(1)
		if time.Now().After(deadline) {
			t.Fatal("saturated gauge never tripped admission")
		}
		time.Sleep(time.Millisecond)
	}
}
