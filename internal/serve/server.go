package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/mempool"
)

// Options parameterize a Server.
type Options struct {
	// Admission tunes load shedding; see AdmissionOptions.
	Admission AdmissionOptions
	// MaxEntriesPerRequest caps one submit body (default 512).
	MaxEntriesPerRequest int
	// MaxPayloadBytes caps one entry's payload (default 1 MiB).
	MaxPayloadBytes int
	// MaxBodyBytes caps a request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxPageEntries caps (and defaults) the /v1/entries page size
	// (default cap 1000, default page 256).
	MaxPageEntries int
}

func (o Options) withDefaults() Options {
	if o.MaxEntriesPerRequest <= 0 {
		o.MaxEntriesPerRequest = 512
	}
	if o.MaxPayloadBytes <= 0 {
		o.MaxPayloadBytes = 1 << 20
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.MaxPageEntries <= 0 {
		o.MaxPageEntries = 1000
	}
	return o
}

// ServerStats are the front-end's own counters, reported next to the
// chain and pipeline snapshots under /v1/stats.
type ServerStats struct {
	// AcceptedEntries counts entries admitted into the pipeline.
	AcceptedEntries uint64 `json:"accepted_entries"`
	// SealedEntries counts accepted entries whose receipts resolved
	// successfully.
	SealedEntries uint64 `json:"sealed_entries"`
	// RejectedEntries counts accepted entries whose receipts resolved
	// with a per-entry error.
	RejectedEntries uint64 `json:"rejected_entries"`
	// ShedRequests counts submits answered 429 by admission control.
	ShedRequests uint64 `json:"shed_requests"`
	// PendingEntries is the current accepted-but-unsealed gauge.
	PendingEntries int64 `json:"pending_entries"`
	// MaxPendingEntries is the admission budget behind PendingEntries.
	MaxPendingEntries int64 `json:"max_pending_entries"`
	// ReadPages counts /v1/entries pages served.
	ReadPages uint64 `json:"read_pages"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Chain    chain.Stats   `json:"chain"`
	Pipeline mempool.Stats `json:"pipeline"`
	// QueueFraction is the intake fullness the admission controller
	// sheds on (Pipeline.QueueDepth / Pipeline.QueueCap).
	QueueFraction float64     `json:"queue_fraction"`
	Server        ServerStats `json:"server"`
}

// Server is the HTTP front-end over a Backend. Create with New, expose
// via Handler (or HTTPServer for an h2c-enabled http.Server), and Close
// when done to stop the admission sampler.
type Server struct {
	b    Backend
	opts Options
	adm  *admission
	mux  *http.ServeMux

	sealed    atomic.Uint64
	rejected  atomic.Uint64
	accepted  atomic.Uint64
	readPages atomic.Uint64
}

// New builds a Server fronting b.
func New(b Backend, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{b: b, opts: opts}
	s.adm = newAdmission(opts.Admission, b.PipelineStats().QueueCap,
		func() float64 { return b.PipelineStats().QueueFraction() })
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/entries", s.handleEntries)
	mux.HandleFunc("GET /v1/tombstones", s.handleTombstones)
	mux.HandleFunc("GET /v1/prove-deleted", s.handleProveDeleted)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	s.mux = mux
	return s
}

// Handler returns the route set as an http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// HTTPServer wraps the handler in an http.Server listening on addr,
// with HTTP/2 over cleartext (h2c) enabled when the toolchain supports
// it (go1.24+; earlier builds serve HTTP/1.1 — see protocols_go123.go).
func (s *Server) HTTPServer(addr string) *http.Server {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	configureProtocols(srv)
	return srv
}

// Close stops the admission sampler. It does not close the backend.
func (s *Server) Close() error {
	s.adm.close()
	return nil
}

// ShedCount reports submits answered 429 so far.
func (s *Server) ShedCount() uint64 { return s.adm.sheds.Load() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is the write path: decode, admit (or shed), hand the
// whole request to the mempool as one group, and either return 202
// immediately or wait out the receipts with ?wait=1.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode submit body: %v", err)
		return
	}
	if len(req.Entries) == 0 {
		writeError(w, http.StatusBadRequest, "no entries")
		return
	}
	if len(req.Entries) > s.opts.MaxEntriesPerRequest {
		writeError(w, http.StatusRequestEntityTooLarge, "%d entries exceeds per-request limit %d",
			len(req.Entries), s.opts.MaxEntriesPerRequest)
		return
	}
	entries := make([]*block.Entry, len(req.Entries))
	for i := range req.Entries {
		e, err := req.Entries[i].Entry(s.opts.MaxPayloadBytes)
		if err != nil {
			writeError(w, http.StatusBadRequest, "entry %d: %v", i, err)
			return
		}
		entries[i] = e
	}
	// Admission: shed BEFORE touching the pipeline. A shed request has
	// cost us JSON decoding but no intake-queue slot; the pending budget
	// and the sampled queue gauge both sit below saturation, so the
	// Submit below never blocks on a full intake.
	if !s.adm.admit(len(entries)) {
		sec := s.adm.retryAfterSec()
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:         "overloaded: submission pipeline is saturated",
			RetryAfterSec: sec,
		})
		return
	}
	receipts, err := s.b.Submit(r.Context(), entries...)
	if err != nil {
		s.adm.release(len(entries))
		if r.Context().Err() != nil {
			// Client went away mid-enqueue; nothing was submitted.
			return
		}
		writeError(w, http.StatusServiceUnavailable, "submit: %v", err)
		return
	}
	s.accepted.Add(uint64(len(entries)))
	if r.URL.Query().Get("wait") == "" {
		// Fire-and-forget: receipts resolve in the background; the
		// admission budget is released as they do.
		go s.drainReceipts(receipts)
		writeJSON(w, http.StatusAccepted, SubmitResponse{Accepted: len(entries)})
		return
	}
	resp := SubmitResponse{Accepted: len(entries), Sealed: make([]SealedJSON, len(receipts))}
	for i, rec := range receipts {
		sealed, werr := rec.Wait(r.Context())
		if werr != nil {
			if r.Context().Err() != nil {
				// Client gone; keep draining so the budget is released.
				go s.drainReceipts(receipts[i:])
				return
			}
			s.rejected.Add(1)
			s.adm.release(1)
			resp.Sealed[i] = SealedJSON{Error: werr.Error()}
			continue
		}
		s.sealed.Add(1)
		s.adm.release(1)
		resp.Sealed[i] = sealedJSON(sealed)
	}
	writeJSON(w, http.StatusOK, resp)
}

// drainReceipts releases the admission budget as background receipts
// resolve. Wait never blocks forever: every receipt resolves at seal,
// validation failure, or pipeline close.
func (s *Server) drainReceipts(receipts []mempool.Receipt) {
	for _, rec := range receipts {
		if _, err := rec.Wait(context.Background()); err != nil {
			s.rejected.Add(1)
		} else {
			s.sealed.Add(1)
		}
		s.adm.release(1)
	}
}

// parseCursor reads an "after" cursor of the form "block/entry" (the
// Ref rendering returned in EntryPage.Next). Empty means start.
func parseCursor(raw string) (block.Ref, bool, error) {
	if raw == "" {
		return block.Ref{}, false, nil
	}
	b, e, ok := strings.Cut(raw, "/")
	if !ok {
		return block.Ref{}, false, fmt.Errorf("cursor %q: want block/entry", raw)
	}
	bn, err := strconv.ParseUint(b, 10, 64)
	if err != nil {
		return block.Ref{}, false, fmt.Errorf("cursor block: %v", err)
	}
	en, err := strconv.ParseUint(e, 10, 32)
	if err != nil {
		return block.Ref{}, false, fmt.Errorf("cursor entry: %v", err)
	}
	return block.Ref{Block: bn, Entry: uint32(en)}, true, nil
}

// refAfter orders references: the pagination cursor admits exactly the
// refs strictly greater than it.
func refAfter(r, cursor block.Ref) bool {
	if r.Block != cursor.Block {
		return r.Block > cursor.Block
	}
	return r.Entry > cursor.Entry
}

// liveAfter snapshots the live entries with ref strictly greater than
// the cursor, sorted ascending by ref. EntriesSeq yields blocks in
// physical order, and a summary block sits at the HEAD of the window
// while its carried entries keep their small origin refs — so the raw
// iteration is NOT ref-ordered once a truncation has happened. Sorting
// restores the total order the cursor contract needs: refs are stable
// for the life of an entry (a carried entry keeps its origin ref), new
// blocks only ever mint higher refs, and pages ascend strictly, so a
// monotone cursor never yields a duplicate and never skips an entry
// that stays live for the whole scan — even when a truncation moves
// the live window between pages.
func (s *Server) liveAfter(cursor block.Ref, haveCursor bool) []EntryWithRef {
	var out []EntryWithRef
	for ref, e := range s.b.EntriesSeq() {
		if haveCursor && !refAfter(ref, cursor) {
			continue
		}
		out = append(out, EntryWithRef{Ref: refJSON(ref), Entry: entryJSON(e)})
	}
	sort.Slice(out, func(i, j int) bool {
		return refAfter(out[j].Ref.Ref(), out[i].Ref.Ref())
	})
	return out
}

// handleEntries serves the read path. Each page is snapshot-consistent
// (EntriesSeq snapshots the live blocks under the chain's read lock)
// and the cursor is stable across pages; see liveAfter for why. With
// ?stream=1 the remaining entries stream as NDJSON instead of one page.
func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor, haveCursor, err := parseCursor(q.Get("after"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q.Get("stream") != "" {
		s.streamEntries(w, cursor, haveCursor)
		return
	}
	limit := s.opts.MaxPageEntries
	if limit > 256 {
		limit = 256
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		limit = min(n, s.opts.MaxPageEntries)
	}
	page := EntryPage{CutBlocks: s.b.Stats().CutBlocks}
	items := s.liveAfter(cursor, haveCursor)
	if len(items) > limit {
		items = items[:limit]
		page.Next = items[limit-1].Ref.Ref().String()
	}
	page.Entries = items
	s.readPages.Add(1)
	writeJSON(w, http.StatusOK, page)
}

// streamEntries writes every remaining live entry as one NDJSON line,
// flushing as it goes — the restore-churn read path.
func (s *Server) streamEntries(w http.ResponseWriter, cursor block.Ref, haveCursor bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	n := 0
	for _, it := range s.liveAfter(cursor, haveCursor) {
		if err := enc.Encode(it); err != nil {
			return // client gone
		}
		if n++; n%256 == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	s.readPages.Add(1)
}

func (s *Server) handleTombstones(w http.ResponseWriter, r *http.Request) {
	recs, err := s.b.Tombstones(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "tombstones: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"records": recs})
}

// handleProveDeleted answers with the backend's deletion proof for one
// reference: the single-chain DeletedProof, or the spine-tied partition
// proof for a partitioned backend.
func (s *Server) handleProveDeleted(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bn, err1 := strconv.ParseUint(q.Get("block"), 10, 64)
	en, err2 := strconv.ParseUint(q.Get("entry"), 10, 32)
	if err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest, "want ?block=N&entry=M")
		return
	}
	ref := block.Ref{Block: bn, Entry: uint32(en)}
	var proof any
	var err error
	switch p := s.b.(type) {
	case PartitionProver:
		proof, err = p.ProveDeleted(r.Context(), ref)
	case DeletedProver:
		proof, err = p.ProveDeleted(ref)
	default:
		writeError(w, http.StatusNotImplemented, "backend does not expose deletion proofs")
		return
	}
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, chain.ErrNotDeleted) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ref": refJSON(ref), "proof": proof})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ps := s.b.PipelineStats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Chain:         s.b.Stats(),
		Pipeline:      ps,
		QueueFraction: ps.QueueFraction(),
		Server: ServerStats{
			AcceptedEntries:   s.accepted.Load(),
			SealedEntries:     s.sealed.Load(),
			RejectedEntries:   s.rejected.Load(),
			ShedRequests:      s.adm.sheds.Load(),
			PendingEntries:    s.adm.pending.Load(),
			MaxPendingEntries: s.adm.maxPending,
			ReadPages:         s.readPages.Load(),
		},
	})
}
