package serve

import (
	"context"
	"iter"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/node"
	"github.com/seldel/seldel/internal/partition"
)

// Backend is the engine surface a Server fronts. *chain.Chain,
// *partition.Chain, and *node.Node all satisfy it, so the same handler
// set serves a single store, a sharded write path, or a replicating
// cluster member.
type Backend interface {
	// Submit enqueues signed entries into the submission pipeline,
	// returning one receipt per entry.
	Submit(ctx context.Context, entries ...*block.Entry) ([]mempool.Receipt, error)
	// SubmitWait submits and blocks until every receipt resolves.
	SubmitWait(ctx context.Context, entries ...*block.Entry) ([]mempool.Sealed, error)
	// EntriesSeq streams the live entries with their stable references,
	// ascending by reference.
	EntriesSeq() iter.Seq2[block.Ref, *block.Entry]
	// Tombstones returns the deletion audit records, oldest first.
	Tombstones(ctx context.Context) ([]manifest.Record, error)
	// Stats is the chain-size and deletion-counter snapshot.
	Stats() chain.Stats
	// PipelineStats exposes the submission pipeline's backpressure
	// gauges — the admission controller's signal.
	PipelineStats() mempool.Stats
}

// DeletedProver is the optional single-chain proof surface; chains and
// nodes implement it.
type DeletedProver interface {
	ProveDeleted(ref block.Ref) (*chain.DeletedProof, error)
}

// PartitionProver is the optional partitioned proof surface; a
// partitioned chain's proofs tie into its spine, so the result type
// (and signature) differ from the single-chain form.
type PartitionProver interface {
	ProveDeleted(ctx context.Context, ref block.Ref) (*partition.Proof, error)
}

// Interface conformance pins: every engine shape the façade builds can
// back a Server.
var (
	_ Backend         = (*chain.Chain)(nil)
	_ Backend         = (*partition.Chain)(nil)
	_ Backend         = (*node.Node)(nil)
	_ DeletedProver   = (*chain.Chain)(nil)
	_ DeletedProver   = (*node.Node)(nil)
	_ PartitionProver = (*partition.Chain)(nil)
)
