// Package serve is the network front-end of the selective-deletion
// engine: an HTTP (h2c-capable) API over the concurrent submission
// pipeline and the chain's read surface, built so the first byte of
// backpressure is an explicit 429 instead of a silently growing queue.
//
// The handler set mirrors the Go façade:
//
//	POST /v1/submit            enqueue signed entries (202) or, with
//	                           ?wait=1, block until sealed and return
//	                           each entry's stable Ref
//	GET  /v1/entries           snapshot-consistent pagination over the
//	                           live entries (?after=CURSOR&limit=N), or
//	                           an NDJSON stream with ?stream=1
//	GET  /v1/tombstones        the durable deletion audit records
//	GET  /v1/prove-deleted     a self-contained deletion proof for one
//	                           erased reference
//	GET  /v1/stats             chain, pipeline, and server counters
//	GET  /healthz              liveness
//
// A Server fronts any Backend: a single chain, a partitioned chain, or
// a cluster node — all three satisfy the interface. Submitted entries
// are signed by the CLIENT; the server never holds keys. One request's
// entries are handed to the mempool as one group, so connection-level
// batching composes with the pipeline's own coalescing: concurrent
// requests still seal together in full blocks.
//
// Admission control is wired to the pipeline's backpressure gauges
// (mempool.Stats): requests are shed with 429 + Retry-After BEFORE the
// intake queue saturates — via a server-local pending-entry budget that
// tracks accepted-but-unsealed entries exactly, plus a sampled
// queue-depth gauge that covers producers outside this server (gossip
// intake, in-process writers). Producers therefore never block on a
// full intake through this front-end, which is what keeps tail latency
// bounded under hostile offered load. See docs/ARCHITECTURE.md §9.
package serve
