//go:build go1.24

package serve

import "net/http"

// configureProtocols enables HTTP/2 over cleartext TCP (h2c) next to
// HTTP/1.1, using the net/http protocol switch introduced in Go 1.24.
// h2c lets a single load-generator connection multiplex many in-flight
// submits without head-of-line blocking, which is what an open-loop
// harness needs when responses stall.
func configureProtocols(srv *http.Server) {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	srv.Protocols = p
}
