package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionOptions tune when the server starts shedding writes.
type AdmissionOptions struct {
	// ShedFraction is the intake-queue fullness (mempool
	// Stats.QueueFraction) at which submits are shed. It also derives
	// the default MaxPending. Default 0.75; values outside (0,1] are
	// replaced by the default.
	ShedFraction float64
	// MaxPending caps entries this server has accepted whose receipts
	// have not yet resolved — the exact, server-local admission budget.
	// 0 derives it from the backend's intake capacity at startup
	// (ShedFraction × QueueCap, floor 64); negative disables the cap.
	MaxPending int
	// Poll is the backpressure-gauge sampling interval. The pending
	// budget is exact and per-request; the sampled queue gauge covers
	// OTHER producers feeding the same pipeline (gossip intake,
	// in-process writers), for which a short staleness window is fine.
	// Default 2ms.
	Poll time.Duration
	// RetryAfter is the client backoff hint on 429 responses.
	// Default 1s.
	RetryAfter time.Duration
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.ShedFraction <= 0 || o.ShedFraction > 1 {
		o.ShedFraction = 0.75
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// admission is the server's load shedder. Two signals compose:
//
//   - pending: an exact atomic count of entries accepted by THIS server
//     whose receipts have not resolved. It bounds how much unsealed work
//     the front-end can have outstanding, independent of gauge staleness,
//     and is what guarantees sheds happen before the intake saturates —
//     the budget is set below the queue's capacity.
//   - queueFrac: the pipeline's sampled intake-queue fullness. This
//     covers producers the pending count cannot see (gossip intake,
//     other in-process writers sharing the chain), at the cost of one
//     poll interval of staleness.
//
// Both trip the same answer: 429 with Retry-After, before the queue is
// full, so no HTTP handler ever parks on a saturated intake.
type admission struct {
	opts       AdmissionOptions
	maxPending int64

	pending   atomic.Int64
	queueFrac atomic.Uint64 // math.Float64bits
	sheds     atomic.Uint64
	admitted  atomic.Uint64

	poll func() float64 // reads the live queue fraction

	quit chan struct{}
	done sync.WaitGroup
}

func newAdmission(opts AdmissionOptions, queueCap int, poll func() float64) *admission {
	opts = opts.withDefaults()
	a := &admission{opts: opts, poll: poll, quit: make(chan struct{})}
	switch {
	case opts.MaxPending > 0:
		a.maxPending = int64(opts.MaxPending)
	case opts.MaxPending == 0:
		mp := int64(opts.ShedFraction * float64(queueCap))
		if mp < 64 {
			mp = 64
		}
		// The derived budget must sit strictly below the intake capacity:
		// every HTTP submit is one queue group of >= 1 entries, so pending
		// entries < QueueCap groups means the front-end alone can never
		// fill the intake — handlers shed instead of parking on it.
		if queueCap > 0 && mp >= int64(queueCap) {
			mp = max(int64(queueCap)-1, 1)
		}
		a.maxPending = mp
	default:
		a.maxPending = math.MaxInt64
	}
	a.done.Add(1)
	go a.run()
	return a
}

func (a *admission) run() {
	defer a.done.Done()
	t := time.NewTicker(a.opts.Poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.queueFrac.Store(math.Float64bits(a.poll()))
		case <-a.quit:
			return
		}
	}
}

func (a *admission) close() {
	close(a.quit)
	a.done.Wait()
}

// admit reserves n entries of the pending budget. ok=false means the
// request must be shed (nothing was reserved); otherwise the caller
// must release(n) once every receipt resolved (or the submit failed).
func (a *admission) admit(n int) bool {
	if math.Float64frombits(a.queueFrac.Load()) >= a.opts.ShedFraction {
		a.sheds.Add(1)
		return false
	}
	if a.pending.Add(int64(n)) > a.maxPending {
		a.pending.Add(int64(-n))
		a.sheds.Add(1)
		return false
	}
	a.admitted.Add(1)
	return true
}

func (a *admission) release(n int) { a.pending.Add(int64(-n)) }

// retryAfterSec is the Retry-After header value in whole seconds (≥ 1).
func (a *admission) retryAfterSec() int {
	s := int(a.opts.RetryAfter / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
