package serve

import (
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/mempool"
)

// RefJSON is the wire form of a stable entry reference.
type RefJSON struct {
	Block uint64 `json:"block"`
	Entry uint32 `json:"entry"`
}

// Ref converts to the internal form.
func (r RefJSON) Ref() block.Ref { return block.Ref{Block: r.Block, Entry: r.Entry} }

func refJSON(r block.Ref) RefJSON { return RefJSON{Block: r.Block, Entry: r.Entry} }

// CoSignerJSON is one dependent-party approval on a deletion entry.
type CoSignerJSON struct {
	Name      string `json:"name"`
	Signature []byte `json:"signature"`
}

// EntryJSON is the wire form of a signed entry. Payload and signature
// bytes ride as base64 (encoding/json's []byte convention). The server
// never signs: SigningBytes are produced and signed client-side, and
// the chain's validation rejects anything whose signature does not
// verify against the registry.
type EntryJSON struct {
	// Kind is "data" or "delete".
	Kind string `json:"kind"`
	// Owner is the submitting participant (the requester, for
	// deletions).
	Owner string `json:"owner"`
	// Payload is the data record (data entries only).
	Payload []byte `json:"payload,omitempty"`
	// Signature is Owner's Ed25519 signature over the entry's canonical
	// signing bytes.
	Signature []byte `json:"signature"`
	// ExpireTime/ExpireBlock are the temporary-entry deadlines; 0
	// disables the respective one.
	ExpireTime  uint64 `json:"expire_time,omitempty"`
	ExpireBlock uint64 `json:"expire_block,omitempty"`
	// DependsOn lists semantic-cohesion dependencies.
	DependsOn []RefJSON `json:"depends_on,omitempty"`
	// Target is the entry to delete (deletion entries only).
	Target *RefJSON `json:"target,omitempty"`
	// CoSigners hold dependent-party approvals (deletion entries only).
	CoSigners []CoSignerJSON `json:"co_signers,omitempty"`
}

// Entry converts the wire form into a chain entry, enforcing the
// request-level caps; the chain's own validation (shape, signatures,
// authorization) still runs at sealing.
func (j *EntryJSON) Entry(maxPayload int) (*block.Entry, error) {
	e := &block.Entry{
		Owner:       j.Owner,
		Payload:     j.Payload,
		Signature:   j.Signature,
		ExpireTime:  j.ExpireTime,
		ExpireBlock: j.ExpireBlock,
	}
	switch j.Kind {
	case "data":
		e.Kind = block.KindData
	case "delete":
		e.Kind = block.KindDeletion
	default:
		return nil, fmt.Errorf("unknown entry kind %q", j.Kind)
	}
	if maxPayload > 0 && len(j.Payload) > maxPayload {
		return nil, fmt.Errorf("payload %d bytes exceeds limit %d", len(j.Payload), maxPayload)
	}
	if j.Target != nil {
		e.Target = j.Target.Ref()
	}
	for _, d := range j.DependsOn {
		e.DependsOn = append(e.DependsOn, d.Ref())
	}
	for _, cs := range j.CoSigners {
		e.CoSigners = append(e.CoSigners, block.CoSignature{Name: cs.Name, Signature: cs.Signature})
	}
	if err := e.CheckShape(); err != nil {
		return nil, err
	}
	return e, nil
}

// NewEntryJSON converts a signed entry into its wire form — what a
// client (cmd/seldel-load, tests) puts in a SubmitRequest.
func NewEntryJSON(e *block.Entry) EntryJSON { return entryJSON(e) }

// entryJSON converts a live entry into its wire form (reads).
func entryJSON(e *block.Entry) EntryJSON {
	j := EntryJSON{
		Kind:        e.Kind.String(),
		Owner:       e.Owner,
		Payload:     e.Payload,
		Signature:   e.Signature,
		ExpireTime:  e.ExpireTime,
		ExpireBlock: e.ExpireBlock,
	}
	if e.Kind == block.KindDeletion {
		t := refJSON(e.Target)
		j.Target = &t
	}
	for _, d := range e.DependsOn {
		j.DependsOn = append(j.DependsOn, refJSON(d))
	}
	for _, cs := range e.CoSigners {
		j.CoSigners = append(j.CoSigners, CoSignerJSON{Name: cs.Name, Signature: cs.Signature})
	}
	return j
}

// SubmitRequest is the POST /v1/submit body.
type SubmitRequest struct {
	Entries []EntryJSON `json:"entries"`
}

// SealedJSON is one entry's seal result: its stable reference, the
// holding block, and — for deletion entries — the mark outcome.
type SealedJSON struct {
	Ref       RefJSON `json:"ref"`
	Block     uint64  `json:"block"`
	BlockHash string  `json:"block_hash"`
	Mark      string  `json:"mark,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func sealedJSON(s mempool.Sealed) SealedJSON {
	out := SealedJSON{
		Ref:       refJSON(s.Ref),
		Block:     s.Block,
		BlockHash: s.BlockHash.Hex(),
	}
	if s.Mark != mempool.MarkNone {
		out.Mark = s.Mark.String()
	}
	return out
}

// SubmitResponse is the POST /v1/submit reply. Without ?wait=1 only
// Accepted is set (the entries are enqueued; receipts resolve in the
// background). With ?wait=1, Sealed carries one result per entry in
// submission order; entries that failed validation carry Error instead
// of a reference.
type SubmitResponse struct {
	Accepted int          `json:"accepted"`
	Sealed   []SealedJSON `json:"sealed,omitempty"`
}

// EntryPage is one GET /v1/entries page: entries with refs strictly
// above the request cursor, and the cursor to pass for the next page.
// Next is empty when the scan reached the head — no live entries
// remained beyond this page at snapshot time.
type EntryPage struct {
	Entries []EntryWithRef `json:"entries"`
	Next    string         `json:"next,omitempty"`
	// CutBlocks is the backend's cumulative truncation counter observed
	// for this page, so a paginating client can tell when a concurrent
	// truncation moved the live window under its scan (refs remain
	// stable either way).
	CutBlocks uint64 `json:"cut_blocks"`
}

// EntryWithRef pairs a live entry with its stable reference.
type EntryWithRef struct {
	Ref   RefJSON   `json:"ref"`
	Entry EntryJSON `json:"entry"`
}

// ErrorResponse is the JSON error body for non-2xx replies.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429 sheds.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}
