//go:build !go1.24

package serve

import "net/http"

// configureProtocols is a no-op before Go 1.24: net/http has no h2c
// switch there, so the server speaks HTTP/1.1 with keep-alive. The
// endpoint set and semantics are identical; only connection
// multiplexing differs.
func configureProtocols(*http.Server) {}
