package codec

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint64(42)
	e.Uint32(7)
	e.Int64(-13)
	e.Bool(true)
	e.Bool(false)
	e.Byte(0xAB)
	e.Bytes([]byte{1, 2, 3})
	e.String("hello, κόσμε")
	var h Hash
	h[0] = 0xDE
	e.Hash(h)

	d := NewDecoder(e.Data())
	if got := d.Uint64(); got != 42 {
		t.Errorf("Uint64 = %d, want 42", got)
	}
	if got := d.Uint32(); got != 7 {
		t.Errorf("Uint32 = %d, want 7", got)
	}
	if got := d.Int64(); got != -13 {
		t.Errorf("Int64 = %d, want -13", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool #1 = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool #2 = true, want false")
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x, want 0xAB", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v, want [1 2 3]", got)
	}
	if got := d.ReadString(); got != "hello, κόσμε" {
		t.Errorf("String = %q", got)
	}
	if got := d.Hash(); got != h {
		t.Errorf("Hash = %v, want %v", got, h)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderTruncated(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		read func(d *Decoder)
	}{
		{"uint64 short", []byte{1, 2, 3}, func(d *Decoder) { d.Uint64() }},
		{"uint32 short", []byte{1}, func(d *Decoder) { d.Uint32() }},
		{"bytes header short", []byte{0, 0}, func(d *Decoder) { d.Bytes() }},
		{"bytes body short", []byte{0, 0, 0, 9, 1}, func(d *Decoder) { d.Bytes() }},
		{"string body short", []byte{0, 0, 0, 5, 'a'}, func(d *Decoder) { d.ReadString() }},
		{"hash short", make([]byte, 10), func(d *Decoder) { d.Hash() }},
		{"byte empty", nil, func(d *Decoder) { d.Byte() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDecoder(tt.data)
			tt.read(d)
			if !errors.Is(d.Err(), ErrTruncated) {
				t.Errorf("Err = %v, want ErrTruncated", d.Err())
			}
		})
	}
}

func TestDecoderErrorsAreSticky(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.Uint64() // fails
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = d.Uint32()
	_ = d.ReadString()
	if d.Err() != first { //nolint:errorlint // identity check is intended
		t.Errorf("error changed after further reads: %v vs %v", d.Err(), first)
	}
}

func TestDecoderTrailing(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0xFF})
	if got := d.Uint64(); got != 1 {
		t.Fatalf("Uint64 = %d", got)
	}
	if err := d.Finish(); !errors.Is(err, ErrTrailing) {
		t.Errorf("Finish = %v, want ErrTrailing", err)
	}
}

func TestDecoderRejectsInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Error("Bool(2) accepted, want error")
	}
}

func TestDecoderRejectsHugeLengthPrefix(t *testing.T) {
	d := NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	_ = d.Bytes()
	if d.Err() == nil {
		t.Error("huge length prefix accepted, want error")
	}
}

func TestHashConcatLengthSeparation(t *testing.T) {
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a == b {
		t.Error("HashConcat does not separate part boundaries")
	}
	if HashConcat() == HashConcat([]byte{}) {
		t.Error("zero parts and one empty part should differ")
	}
}

func TestHashShortStyle(t *testing.T) {
	h := HashBytes([]byte("x"))
	s := h.Short()
	if len(s) != 5 {
		t.Fatalf("Short length = %d, want 5", len(s))
	}
	if s != strings.ToUpper(s) {
		t.Errorf("Short not upper-cased: %q", s)
	}
}

func TestHashTextRoundTrip(t *testing.T) {
	h := HashBytes([]byte("round trip"))
	text, err := h.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	var back Hash
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	if back != h {
		t.Errorf("round trip mismatch: %v vs %v", back, h)
	}
	parsed, err := ParseHash(string(text))
	if err != nil || parsed != h {
		t.Errorf("ParseHash = %v, %v", parsed, err)
	}
}

func TestHashUnmarshalErrors(t *testing.T) {
	var h Hash
	if err := h.UnmarshalText([]byte("zz")); err == nil {
		t.Error("accepted invalid hex")
	}
	if err := h.UnmarshalText([]byte("abcd")); err == nil {
		t.Error("accepted short hash")
	}
}

func TestZeroHash(t *testing.T) {
	var h Hash
	if !h.IsZero() {
		t.Error("zero value not IsZero")
	}
	if HashBytes(nil).IsZero() {
		t.Error("hash of empty input reported zero")
	}
}

// Property: every (uint64, bytes, string, bool) tuple round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, b []byte, s string, v bool, i int64) bool {
		e := NewEncoder(0)
		e.Uint64(u)
		e.Bytes(b)
		e.String(s)
		e.Bool(v)
		e.Int64(i)
		d := NewDecoder(e.Data())
		gu := d.Uint64()
		gb := d.Bytes()
		gs := d.ReadString()
		gv := d.Bool()
		gi := d.Int64()
		if err := d.Finish(); err != nil {
			return false
		}
		return gu == u && bytes.Equal(gb, b) && gs == s && gv == v && gi == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is injective for (bytes, bytes) pairs — distinct
// pairs yield distinct encodings (length prefixes prevent ambiguity).
func TestQuickInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 []byte) bool {
		e1 := NewEncoder(0)
		e1.Bytes(a1)
		e1.Bytes(a2)
		e2 := NewEncoder(0)
		e2.Bytes(b1)
		e2.Bytes(b2)
		same := bytes.Equal(a1, b1) && bytes.Equal(a2, b2)
		return bytes.Equal(e1.Data(), e2.Data()) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecoderBytesCopies(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes([]byte{1, 2, 3})
	data := e.Data()
	d := NewDecoder(data)
	got := d.Bytes()
	data[4] = 99 // mutate the underlying buffer
	if got[0] != 1 {
		t.Error("decoded bytes alias the input buffer")
	}
}

func TestEncoderLen(t *testing.T) {
	e := NewEncoder(8)
	if e.Len() != 0 {
		t.Errorf("fresh encoder Len = %d", e.Len())
	}
	e.Uint32(1)
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
}

func TestEncoderSumMatchesHashBytes(t *testing.T) {
	e := NewEncoder(0)
	e.String("payload")
	if e.Sum() != HashBytes(e.Data()) {
		t.Error("Sum differs from HashBytes(Data)")
	}
}
