// Package codec implements the canonical, deterministic binary encoding
// used for every hashed structure in the system.
//
// The paper's summary blocks must be bit-identical across independently
// operating nodes (§IV-B), which requires that every encoded structure has
// exactly one serialization. The codec therefore uses fixed-endian,
// length-prefixed primitives with no optional or implementation-defined
// fields: big-endian fixed-width integers and uint32-length-prefixed byte
// strings.
package codec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// HashSize is the size in bytes of all content hashes (SHA-256).
const HashSize = 32

// Hash is a SHA-256 content hash.
type Hash [HashSize]byte

// ZeroHash is the all-zero hash, used as "no hash" sentinel.
var ZeroHash Hash

// HashBytes returns the SHA-256 hash of b.
func HashBytes(b []byte) Hash {
	return sha256.Sum256(b)
}

// HashConcat hashes the concatenation of the given parts with a
// length-prefix per part, so that ("ab","c") and ("a","bc") differ.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	var lenBuf [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Hex returns the full lowercase hex encoding of the hash.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// Short returns the first five hex characters, upper-cased, matching the
// abbreviated hash style of the paper's console output (e.g. "DEADB").
func (h Hash) Short() string {
	s := hex.EncodeToString(h[:3])
	out := make([]byte, 5)
	for i := 0; i < 5; i++ {
		c := s[i]
		if c >= 'a' && c <= 'f' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// String implements fmt.Stringer using the short form.
func (h Hash) String() string { return h.Short() }

// MarshalText implements encoding.TextMarshaler (full hex).
func (h Hash) MarshalText() ([]byte, error) {
	return []byte(h.Hex()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *Hash) UnmarshalText(text []byte) error {
	b, err := hex.DecodeString(string(text))
	if err != nil {
		return fmt.Errorf("codec: decode hash hex: %w", err)
	}
	if len(b) != HashSize {
		return fmt.Errorf("codec: hash length %d, want %d", len(b), HashSize)
	}
	copy(h[:], b)
	return nil
}

// ParseHash parses a full hex hash string.
func ParseHash(s string) (Hash, error) {
	var h Hash
	err := h.UnmarshalText([]byte(s))
	return h, err
}

// Encoder accumulates a canonical binary encoding.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// NewEncoderBuf returns an encoder that appends to buf, reusing its
// capacity — the bring-your-own-buffer constructor for pooled encode
// paths. Data returns buf extended with everything encoded.
func NewEncoderBuf(buf []byte) *Encoder {
	return &Encoder{buf: buf}
}

// Uint64 appends v as 8 big-endian bytes.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Uint32 appends v as 4 big-endian bytes.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Int64 appends v as 8 big-endian bytes (two's complement).
func (e *Encoder) Int64(v int64) {
	e.Uint64(uint64(v))
}

// Byte appends a single raw byte.
func (e *Encoder) Byte(b byte) {
	e.buf = append(e.buf, b)
}

// Bool appends 0x01 for true and 0x00 for false.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Bytes appends b with a uint32 length prefix.
func (e *Encoder) Bytes(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Nested appends a uint32-length-prefixed field whose content fn
// encodes directly into this encoder's buffer — the in-place form of
// Bytes(sub.Encode()) for nested structures: the length prefix is
// reserved up front and backfilled once fn returns, so the nested
// encoding never materializes in a separate allocation. The resulting
// bytes are identical to Bytes over the separately encoded content.
func (e *Encoder) Nested(fn func(*Encoder)) {
	at := len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0)
	fn(e)
	binary.BigEndian.PutUint32(e.buf[at:at+4], uint32(len(e.buf)-at-4))
}

// String appends s with a uint32 length prefix.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Hash appends a fixed-width hash with no length prefix.
func (e *Encoder) Hash(h Hash) {
	e.buf = append(e.buf, h[:]...)
}

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded bytes, keeping the buffer's capacity for
// reuse. Any slice previously returned by Data is invalidated.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Data returns the encoded bytes. The returned slice aliases the
// encoder's internal buffer; callers must not mutate it.
func (e *Encoder) Data() []byte { return e.buf }

// Sum returns the SHA-256 hash of the encoded bytes.
func (e *Encoder) Sum() Hash { return HashBytes(e.buf) }

// ErrTruncated is returned by Decoder methods when the input is shorter
// than the requested field.
var ErrTruncated = errors.New("codec: truncated input")

// ErrTrailing is returned by Decoder.Finish when input remains.
var ErrTrailing = errors.New("codec: trailing bytes after decode")

// maxFieldLen bounds length prefixes so a corrupted prefix cannot force a
// huge allocation.
const maxFieldLen = 1 << 30

// Decoder reads a canonical binary encoding. Errors are sticky: after the
// first failure all subsequent reads return zero values and Err reports
// the original error.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data. The decoder does not copy data.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{data: data}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.data))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads 8 big-endian bytes.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Uint32 reads 4 big-endian bytes.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Int64 reads 8 big-endian bytes as a signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Byte reads a single raw byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte and rejects values other than 0 and 1.
func (d *Decoder) Bool() bool {
	b := d.Byte()
	if d.err == nil && b > 1 {
		d.err = fmt.Errorf("codec: invalid bool byte %#x", b)
		return false
	}
	return b == 1
}

// Bytes reads a uint32 length prefix followed by that many bytes.
// The returned slice is a copy and safe to retain.
func (d *Decoder) Bytes() []byte {
	b := d.View()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// View reads a uint32 length prefix followed by that many bytes,
// returning a view into the decoder's input with no copy. The view
// aliases (and keeps alive) the decoded data; use it for nested
// structures that are immediately re-decoded — the inner decoder copies
// whatever it retains — and fall back to Bytes for fields stored as-is.
func (d *Decoder) View() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > maxFieldLen {
		d.err = fmt.Errorf("codec: field length %d exceeds limit", n)
		return nil
	}
	return d.take(int(n))
}

// ReadString reads a uint32 length prefix followed by that many bytes.
// (Named ReadString rather than String so Decoder is not a fmt.Stringer.)
func (d *Decoder) ReadString() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	if n > maxFieldLen {
		d.err = fmt.Errorf("codec: field length %d exceeds limit", n)
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

// Hash reads a fixed-width hash.
func (d *Decoder) Hash() Hash {
	var h Hash
	b := d.take(HashSize)
	if b != nil {
		copy(h[:], b)
	}
	return h
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Finish returns an error if decoding failed or bytes remain unread.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.data)-d.off)
	}
	return nil
}
