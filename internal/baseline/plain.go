// Package baseline implements the comparison systems for the
// experiments: a conventional append-only blockchain (unbounded growth),
// local pruning (ref [20] of the paper), the hard-fork approach
// (ref [21]), and a chameleon-hash redactable chain (refs [21–23]).
//
// None of these achieve what the paper's concept does — global, selective,
// authorized physical deletion — and the experiments quantify the gaps:
// growth (E4), redaction effort and trust (E10).
package baseline

import (
	"errors"
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
)

// Errors returned by the baselines.
var (
	ErrOutOfRange = errors.New("baseline: block number out of range")
	ErrNoEntry    = errors.New("baseline: entry not found")
)

// PlainChain is a conventional blockchain: append-only, no summary
// blocks, no deletion. Its size grows without bound — the growth problem
// of §I ("Bitcoin … has almost reached a blockchain size of 300 GB").
type PlainChain struct {
	blocks []*block.Block
	bytes  int64
}

// NewPlain creates a plain chain with an empty genesis block.
func NewPlain() *PlainChain {
	genesis := block.NewNormal(0, 1, block.GenesisPrevHash, nil)
	return &PlainChain{
		blocks: []*block.Block{genesis},
		bytes:  int64(genesis.EncodedSize()),
	}
}

// Append adds a block holding the given entries.
func (p *PlainChain) Append(entries []*block.Entry) *block.Block {
	head := p.blocks[len(p.blocks)-1]
	b := block.NewNormal(head.Header.Number+1, head.Header.Time+1, head.Hash(), entries)
	p.blocks = append(p.blocks, b)
	p.bytes += int64(b.EncodedSize())
	return b
}

// Len returns the chain length in blocks.
func (p *PlainChain) Len() int { return len(p.blocks) }

// Bytes returns the total encoded size.
func (p *PlainChain) Bytes() int64 { return p.bytes }

// Lookup fetches an entry by (block, entry) coordinates.
func (p *PlainChain) Lookup(ref block.Ref) (*block.Entry, error) {
	if ref.Block >= uint64(len(p.blocks)) {
		return nil, fmt.Errorf("%w: block %d", ErrOutOfRange, ref.Block)
	}
	b := p.blocks[ref.Block]
	if int(ref.Entry) >= len(b.Entries) {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, ref)
	}
	return b.Entries[ref.Entry], nil
}

// Verify walks the hash links.
func (p *PlainChain) Verify() error {
	for i := 1; i < len(p.blocks); i++ {
		if p.blocks[i].Header.PrevHash != p.blocks[i-1].Hash() {
			return fmt.Errorf("plain chain: broken link at %d", i)
		}
	}
	return nil
}

// LocalPrune models pruning as deployed by existing nodes (paper §III:
// "the simple solution of pruning locally stored parts does not solve the
// problem for the global, distributed blockchain"): a node discards old
// block bodies locally but the network as a whole still stores, serves,
// and replicates everything.
type LocalPrune struct {
	chain *PlainChain
	// keepBlocks is the local retention window.
	keepBlocks int
	// localFrom is the first block whose body is still held locally.
	localFrom uint64
	// headers are always kept (header-only sync).
	headerBytes int64
}

// NewLocalPrune wraps a plain chain with a local retention window.
func NewLocalPrune(keep int) *LocalPrune {
	return &LocalPrune{chain: NewPlain(), keepBlocks: keep}
}

// Append adds a block and prunes the local window.
func (l *LocalPrune) Append(entries []*block.Entry) *block.Block {
	b := l.chain.Append(entries)
	l.headerBytes += int64(len(b.Header.Encode()))
	if l.keepBlocks > 0 {
		for int(uint64(l.chain.Len())-l.localFrom) > l.keepBlocks {
			l.localFrom++
		}
	}
	return b
}

// GlobalBytes is what the network still stores — identical to the plain
// chain, because pruning is local only.
func (l *LocalPrune) GlobalBytes() int64 { return l.chain.Bytes() }

// LocalBytes is this node's disk footprint: pruned bodies plus all
// headers.
func (l *LocalPrune) LocalBytes() int64 {
	var bodies int64
	for _, b := range l.chain.blocks[l.localFrom:] {
		bodies += int64(b.EncodedSize())
	}
	return bodies + l.headerBytes
}

// GloballyDeleted reports whether an entry is gone from the network.
// For local pruning the answer is always false: any full node still
// serves it (§III).
func (l *LocalPrune) GloballyDeleted(block.Ref) bool { return false }

// Len returns the global chain length.
func (l *LocalPrune) Len() int { return l.chain.Len() }

// HardFork models deletion by forking: to remove content, the whole
// history from the offending block onward is rebuilt and the network
// migrates to the new chain (§III: "very time inefficient as it can take
// place on every transaction").
type HardFork struct {
	chain *PlainChain
	// RebuiltBlocks counts blocks re-created across all forks (the
	// dominant cost driver).
	RebuiltBlocks uint64
}

// NewHardFork creates the baseline.
func NewHardFork() *HardFork {
	return &HardFork{chain: NewPlain()}
}

// Append adds a block holding the given entries.
func (h *HardFork) Append(entries []*block.Entry) *block.Block {
	return h.chain.Append(entries)
}

// Len returns the chain length.
func (h *HardFork) Len() int { return h.chain.Len() }

// Bytes returns the chain size.
func (h *HardFork) Bytes() int64 { return h.chain.Bytes() }

// Delete removes the entry at ref by rebuilding every block from ref
// onward (new hashes, new links) — the hard fork. Returns the number of
// rebuilt blocks.
func (h *HardFork) Delete(ref block.Ref) (int, error) {
	if ref.Block >= uint64(len(h.chain.blocks)) || ref.Block == 0 {
		return 0, fmt.Errorf("%w: block %d", ErrOutOfRange, ref.Block)
	}
	target := h.chain.blocks[ref.Block]
	if int(ref.Entry) >= len(target.Entries) {
		return 0, fmt.Errorf("%w: %s", ErrNoEntry, ref)
	}
	rebuilt := 0
	var newBytes int64
	for _, b := range h.chain.blocks[:ref.Block] {
		newBytes += int64(b.EncodedSize())
	}
	prevHash := h.chain.blocks[ref.Block-1].Hash()
	for num := ref.Block; num < uint64(len(h.chain.blocks)); num++ {
		old := h.chain.blocks[num]
		entries := old.Entries
		if num == ref.Block {
			entries = make([]*block.Entry, 0, len(old.Entries)-1)
			for i, e := range old.Entries {
				if uint32(i) != ref.Entry {
					entries = append(entries, e)
				}
			}
		}
		nb := block.NewNormal(old.Header.Number, old.Header.Time, prevHash, entries)
		h.chain.blocks[num] = nb
		prevHash = nb.Hash()
		rebuilt++
		newBytes += int64(nb.EncodedSize())
	}
	h.chain.bytes = newBytes
	h.RebuiltBlocks += uint64(rebuilt)
	return rebuilt, nil
}

// Verify walks the hash links of the (possibly rebuilt) chain.
func (h *HardFork) Verify() error { return h.chain.Verify() }

// HeadHash returns the current head hash — every hard fork changes it,
// which is exactly why all participants must migrate.
func (h *HardFork) HeadHash() codec.Hash {
	return h.chain.blocks[len(h.chain.blocks)-1].Hash()
}
