package baseline

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// This file implements a chameleon-hash redactable blockchain, the
// closest related-work family to the paper (refs [21] Ateniese et al.,
// [22] Camenisch et al., [23] µchain). A chameleon hash is a collision-
// resistant hash with a trapdoor: whoever holds the trapdoor can compute
// collisions, i.e. rewrite a block's content without changing its hash —
// and therefore without breaking the hash chain.
//
// The paper's criticism (§III): these approaches "leave the
// responsibility with the key owners and produce a lot effort". The
// experiments (E10) quantify the per-redaction cost and make the trust
// asymmetry observable: the trapdoor holder can rewrite ANY block
// undetectably, not just entries it owns.
//
// Construction (Krawczyk–Rabin over a Schnorr group):
//
//	CH(m, r) = g^H(m) · y^r  mod p      with y = g^x, trapdoor x
//
// Collision for new message m': r' = r + (H(m) − H(m')) / x  mod q.

// chameleonGroup is the 1024-bit MODP group from RFC 2409 §6.2 (Oakley
// group 2), a safe prime p = 2q+1. Fixed parameters keep the baseline
// deterministic and dependency-free; the security level is irrelevant
// for the cost comparison.
const modp1024Hex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381" +
	"FFFFFFFFFFFFFFFF"

// ErrNoTrapdoor is returned when a redaction is attempted without the
// trapdoor key.
var ErrNoTrapdoor = errors.New("baseline: chameleon redaction requires the trapdoor")

// ChameleonParams hold the public group and public key.
type ChameleonParams struct {
	P, Q, G, Y *big.Int
}

// ChameleonKey is the trapdoor.
type ChameleonKey struct {
	Params ChameleonParams
	X      *big.Int // trapdoor: y = g^x mod p
}

// GenerateChameleonKey samples a trapdoor over the fixed group.
func GenerateChameleonKey() (*ChameleonKey, error) {
	p, ok := new(big.Int).SetString(modp1024Hex, 16)
	if !ok {
		return nil, errors.New("baseline: bad group constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1) // (p-1)/2
	g := big.NewInt(2)
	x, err := rand.Int(rand.Reader, new(big.Int).Sub(q, big.NewInt(2)))
	if err != nil {
		return nil, fmt.Errorf("baseline: sample trapdoor: %w", err)
	}
	x.Add(x, big.NewInt(2)) // x in [2, q)
	y := new(big.Int).Exp(g, x, p)
	return &ChameleonKey{
		Params: ChameleonParams{P: p, Q: q, G: g, Y: y},
		X:      x,
	}, nil
}

// digestToScalar maps a message into Z_q.
func (cp *ChameleonParams) digestToScalar(msg []byte) *big.Int {
	sum := sha256.Sum256(msg)
	return new(big.Int).Mod(new(big.Int).SetBytes(sum[:]), cp.Q)
}

// Hash computes CH(m, r) = g^H(m) · y^r mod p.
func (cp *ChameleonParams) Hash(msg []byte, r *big.Int) *big.Int {
	gm := new(big.Int).Exp(cp.G, cp.digestToScalar(msg), cp.P)
	yr := new(big.Int).Exp(cp.Y, r, cp.P)
	return gm.Mul(gm, yr).Mod(gm, cp.P)
}

// Collide finds r' such that CH(m', r') == CH(m, r), using the trapdoor:
// r' = r + (H(m) − H(m')) / x mod q.
func (ck *ChameleonKey) Collide(oldMsg []byte, r *big.Int, newMsg []byte) (*big.Int, error) {
	if ck.X == nil {
		return nil, ErrNoTrapdoor
	}
	cp := &ck.Params
	diff := new(big.Int).Sub(cp.digestToScalar(oldMsg), cp.digestToScalar(newMsg))
	diff.Mod(diff, cp.Q)
	xInv := new(big.Int).ModInverse(ck.X, cp.Q)
	if xInv == nil {
		return nil, errors.New("baseline: trapdoor not invertible")
	}
	delta := diff.Mul(diff, xInv).Mod(diff, cp.Q)
	return new(big.Int).Mod(new(big.Int).Add(r, delta), cp.Q), nil
}

// ChameleonBlock is a block whose identity is a chameleon hash of its
// content, making it rewritable by the trapdoor holder.
type ChameleonBlock struct {
	Number   uint64
	Content  []byte
	R        *big.Int // randomness of the chameleon hash
	PrevHash *big.Int
	hash     *big.Int // cached CH(content, r)
}

// ChameleonChain is the redactable chain.
type ChameleonChain struct {
	params *ChameleonParams
	key    *ChameleonKey // nil on verifier-only instances
	blocks []*ChameleonBlock
	// Redactions counts trapdoor uses (for the trust discussion: every
	// one is an undetectable rewrite).
	Redactions uint64
}

// NewChameleonChain creates a redactable chain. key may be nil for a
// verifier without redaction capability.
func NewChameleonChain(key *ChameleonKey) *ChameleonChain {
	c := &ChameleonChain{params: &key.Params, key: key}
	genesis := &ChameleonBlock{Number: 0, Content: []byte("genesis"), R: big.NewInt(1), PrevHash: big.NewInt(0)}
	genesis.hash = c.params.Hash(c.blockBytes(genesis), genesis.R)
	c.blocks = append(c.blocks, genesis)
	return c
}

// blockBytes is the hashed portion of a block: number, content, prev.
func (c *ChameleonChain) blockBytes(b *ChameleonBlock) []byte {
	out := make([]byte, 0, 16+len(b.Content)+len(b.PrevHash.Bytes()))
	var num [8]byte
	for i := 0; i < 8; i++ {
		num[i] = byte(b.Number >> (56 - 8*i))
	}
	out = append(out, num[:]...)
	out = append(out, b.Content...)
	out = append(out, b.PrevHash.Bytes()...)
	return out
}

// Append adds a block with fresh randomness.
func (c *ChameleonChain) Append(content []byte) (*ChameleonBlock, error) {
	r, err := rand.Int(rand.Reader, c.params.Q)
	if err != nil {
		return nil, fmt.Errorf("baseline: sample randomness: %w", err)
	}
	head := c.blocks[len(c.blocks)-1]
	b := &ChameleonBlock{
		Number:   head.Number + 1,
		Content:  content,
		R:        r,
		PrevHash: head.hash,
	}
	b.hash = c.params.Hash(c.blockBytes(b), b.R)
	c.blocks = append(c.blocks, b)
	return b, nil
}

// Len returns the chain length.
func (c *ChameleonChain) Len() int { return len(c.blocks) }

// Redact rewrites the content of block num in place, finding a hash
// collision with the trapdoor so every subsequent link stays valid. This
// is O(1) in chain length — but only the trapdoor holder can do it, for
// ANY block, including other users' data.
func (c *ChameleonChain) Redact(num uint64, newContent []byte) error {
	if c.key == nil {
		return ErrNoTrapdoor
	}
	if num == 0 || num >= uint64(len(c.blocks)) {
		return fmt.Errorf("%w: block %d", ErrOutOfRange, num)
	}
	b := c.blocks[num]
	oldBytes := c.blockBytes(b)
	updated := &ChameleonBlock{Number: b.Number, Content: newContent, PrevHash: b.PrevHash}
	newR, err := c.key.Collide(oldBytes, b.R, c.blockBytes(updated))
	if err != nil {
		return err
	}
	b.Content = newContent
	b.R = newR
	b.hash = c.params.Hash(c.blockBytes(b), b.R)
	c.Redactions++
	return nil
}

// Verify checks every chameleon hash and link. A redaction performed
// with the trapdoor passes verification — the rewrite is undetectable,
// which is precisely the trust problem.
func (c *ChameleonChain) Verify() error {
	for i, b := range c.blocks {
		if got := c.params.Hash(c.blockBytes(b), b.R); got.Cmp(b.hash) != 0 {
			return fmt.Errorf("baseline: chameleon hash mismatch at %d", i)
		}
		if i > 0 && b.PrevHash.Cmp(c.blocks[i-1].hash) != 0 {
			return fmt.Errorf("baseline: broken chameleon link at %d", i)
		}
	}
	return nil
}

// Content returns the current content of block num.
func (c *ChameleonChain) Content(num uint64) ([]byte, error) {
	if num >= uint64(len(c.blocks)) {
		return nil, fmt.Errorf("%w: block %d", ErrOutOfRange, num)
	}
	return c.blocks[num].Content, nil
}
