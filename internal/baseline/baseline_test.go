package baseline

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
)

func entries(t *testing.T, n int, tag string) []*block.Entry {
	t.Helper()
	kp := identity.Deterministic("alpha", "baseline-test")
	out := make([]*block.Entry, n)
	for i := range out {
		out[i] = block.NewData("alpha", []byte(fmt.Sprintf("%s-%d", tag, i))).Sign(kp)
	}
	return out
}

func TestPlainChainGrowsWithoutBound(t *testing.T) {
	p := NewPlain()
	sizes := make([]int64, 0, 5)
	for i := 0; i < 50; i++ {
		p.Append(entries(t, 2, fmt.Sprintf("b%d", i)))
		if i%10 == 9 {
			sizes = append(sizes, p.Bytes())
		}
	}
	if p.Len() != 51 {
		t.Errorf("Len = %d", p.Len())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Error("plain chain size did not grow monotonically")
		}
	}
	if err := p.Verify(); err != nil {
		t.Error(err)
	}
}

func TestPlainChainLookup(t *testing.T) {
	p := NewPlain()
	es := entries(t, 3, "x")
	p.Append(es)
	got, err := p.Lookup(block.Ref{Block: 1, Entry: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, es[2].Payload) {
		t.Error("lookup returned wrong entry")
	}
	if _, err := p.Lookup(block.Ref{Block: 9}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := p.Lookup(block.Ref{Block: 1, Entry: 9}); !errors.Is(err, ErrNoEntry) {
		t.Errorf("err = %v", err)
	}
}

func TestLocalPruneGlobalVsLocal(t *testing.T) {
	l := NewLocalPrune(5)
	for i := 0; i < 40; i++ {
		l.Append(entries(t, 2, fmt.Sprintf("b%d", i)))
	}
	if l.Len() != 41 {
		t.Errorf("Len = %d", l.Len())
	}
	global, local := l.GlobalBytes(), l.LocalBytes()
	if local >= global {
		t.Errorf("local %d not smaller than global %d", local, global)
	}
	// The paper's point (§III): pruning does not delete anything from
	// the network.
	if l.GloballyDeleted(block.Ref{Block: 1, Entry: 0}) {
		t.Error("local pruning claimed global deletion")
	}
}

func TestHardForkDeletion(t *testing.T) {
	h := NewHardFork()
	for i := 0; i < 20; i++ {
		h.Append(entries(t, 2, fmt.Sprintf("b%d", i)))
	}
	headBefore := h.HeadHash()
	sizeBefore := h.Bytes()

	// Delete an entry early in the chain: nearly everything rebuilds.
	rebuilt, err := h.Delete(block.Ref{Block: 3, Entry: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 18 { // blocks 3..20
		t.Errorf("rebuilt = %d, want 18", rebuilt)
	}
	if h.HeadHash() == headBefore {
		t.Error("hard fork did not change the head (no migration signal)")
	}
	if h.Bytes() >= sizeBefore {
		t.Error("size did not shrink after deletion")
	}
	if err := h.Verify(); err != nil {
		t.Errorf("rebuilt chain invalid: %v", err)
	}
	// The entry is gone; its sibling survived.
	b3Entries := h.chain.blocks[3].Entries
	if len(b3Entries) != 1 {
		t.Fatalf("block 3 has %d entries, want 1", len(b3Entries))
	}
	if !bytes.HasPrefix(b3Entries[0].Payload, []byte("b2-0")) {
		t.Errorf("surviving entry = %q", b3Entries[0].Payload)
	}
}

func TestHardForkCostGrowsWithChainLength(t *testing.T) {
	shortChain := NewHardFork()
	for i := 0; i < 10; i++ {
		shortChain.Append(entries(t, 1, "s"))
	}
	longChain := NewHardFork()
	for i := 0; i < 100; i++ {
		longChain.Append(entries(t, 1, "l"))
	}
	rs, err := shortChain.Delete(block.Ref{Block: 1, Entry: 0})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := longChain.Delete(block.Ref{Block: 1, Entry: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rl <= rs {
		t.Errorf("rebuild cost did not grow with length: %d vs %d", rs, rl)
	}
}

func TestHardForkDeleteValidation(t *testing.T) {
	h := NewHardFork()
	h.Append(entries(t, 1, "x"))
	if _, err := h.Delete(block.Ref{Block: 0}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("genesis delete: %v", err)
	}
	if _, err := h.Delete(block.Ref{Block: 9}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := h.Delete(block.Ref{Block: 1, Entry: 5}); !errors.Is(err, ErrNoEntry) {
		t.Errorf("missing entry: %v", err)
	}
}

func TestChameleonHashCollision(t *testing.T) {
	key, err := GenerateChameleonKey()
	if err != nil {
		t.Fatal(err)
	}
	cp := &key.Params
	r := big.NewInt(123456789)
	oldMsg := []byte("original content")
	newMsg := []byte("rewritten content")
	h1 := cp.Hash(oldMsg, r)
	r2, err := key.Collide(oldMsg, r, newMsg)
	if err != nil {
		t.Fatal(err)
	}
	h2 := cp.Hash(newMsg, r2)
	if h1.Cmp(h2) != 0 {
		t.Error("collision does not preserve the chameleon hash")
	}
	// Without the collision the hashes differ.
	if cp.Hash(newMsg, r).Cmp(h1) == 0 {
		t.Error("different messages hash equal with same randomness")
	}
}

func TestChameleonChainRedaction(t *testing.T) {
	key, err := GenerateChameleonKey()
	if err != nil {
		t.Fatal(err)
	}
	c := NewChameleonChain(key)
	for i := 0; i < 10; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("content-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// Redact block 4: O(1), chain stays valid, rewrite is undetectable.
	if err := c.Redact(4, []byte("REDACTED")); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Errorf("chain invalid after redaction: %v", err)
	}
	got, err := c.Content(4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "REDACTED" {
		t.Errorf("content = %q", got)
	}
	if c.Redactions != 1 {
		t.Errorf("Redactions = %d", c.Redactions)
	}
}

func TestChameleonTrapdoorTrustProblem(t *testing.T) {
	// The trapdoor holder can rewrite ANY block — including data it does
	// not own. The paper's approach requires owner signatures instead.
	key, err := GenerateChameleonKey()
	if err != nil {
		t.Fatal(err)
	}
	c := NewChameleonChain(key)
	if _, err := c.Append([]byte("alice's data")); err != nil {
		t.Fatal(err)
	}
	if err := c.Redact(1, []byte("forged by trapdoor holder")); err != nil {
		t.Fatalf("trapdoor holder blocked: %v", err)
	}
	// Verification CANNOT detect the rewrite.
	if err := c.Verify(); err != nil {
		t.Errorf("undetectability violated: %v", err)
	}
}

func TestChameleonRedactValidation(t *testing.T) {
	key, err := GenerateChameleonKey()
	if err != nil {
		t.Fatal(err)
	}
	c := NewChameleonChain(key)
	if _, err := c.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Redact(0, []byte("y")); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("genesis redact: %v", err)
	}
	if err := c.Redact(7, []byte("y")); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range: %v", err)
	}
	// Verifier-only instance cannot redact.
	verifier := &ChameleonChain{params: &key.Params, blocks: c.blocks}
	if err := verifier.Redact(1, []byte("z")); !errors.Is(err, ErrNoTrapdoor) {
		t.Errorf("no-trapdoor redact: %v", err)
	}
}

func TestChameleonTamperWithoutTrapdoorDetected(t *testing.T) {
	key, err := GenerateChameleonKey()
	if err != nil {
		t.Fatal(err)
	}
	c := NewChameleonChain(key)
	if _, err := c.Append([]byte("honest")); err != nil {
		t.Fatal(err)
	}
	// Rewrite content without finding a collision: detected.
	c.blocks[1].Content = []byte("tampered")
	if err := c.Verify(); err == nil {
		t.Error("naive tampering passed verification")
	}
}
