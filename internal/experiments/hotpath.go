package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
	"github.com/seldel/seldel/internal/verify"
)

// This file is the hot-path dimension of `seldel-bench -json` (PR 7):
// where the other dimensions report blocks/sec, this one measures the
// costs that compound underneath throughput — heap allocations per
// appended entry and fsyncs per appended block — so a regression in
// either is visible even when wall-clock numbers stay flat.

// HotPathResult is one measured hot-path configuration.
type HotPathResult struct {
	// Op is "append-allocs" (allocations per entry through the full
	// submit→seal→store pipeline) or "durability" (fsyncs per block
	// under a durability mode).
	Op string `json:"op"`
	// Mode distinguishes durability rows: "roll-only" (fsync on segment
	// roll only — fast, receipts resolve before durability),
	// "sync-every" (fsync per block), "group" (group commit: many
	// blocks per fsync, receipts resolve at the durability point).
	// Allocation rows use "pipelined".
	Mode string `json:"mode"`
	// Producers is the number of concurrent submitting goroutines.
	Producers int `json:"producers"`
	// Entries is the number of entries in the measured section.
	Entries int `json:"entries"`
	// Blocks is the number of blocks appended during the measurement.
	Blocks uint64 `json:"blocks"`
	// AllocsPerEntry / BytesPerEntry are heap allocations (count and
	// bytes) per submitted entry across the whole process — producers,
	// mempool, verify pool, sealing, and store append included.
	AllocsPerEntry float64 `json:"allocs_per_entry,omitempty"`
	BytesPerEntry  float64 `json:"bytes_per_entry,omitempty"`
	// Fsyncs is the segment store's data-fsync count over the measured
	// section; FsyncsPerBlock divides it by Blocks.
	Fsyncs         uint64  `json:"fsyncs,omitempty"`
	FsyncsPerBlock float64 `json:"fsyncs_per_block,omitempty"`
	// GroupWindowMillis is the group-commit accumulation window the
	// "group" row ran with (the bound on extra receipt latency).
	GroupWindowMillis float64 `json:"group_window_millis,omitempty"`
	// Seconds / OpsPerSec time the measured section.
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// HotPathBaseline pins the numbers this same harness measured at the
// PR 6 HEAD (before the zero-copy and group-commit work), so the
// report carries its own before/after comparison on hardware where
// both were measured identically.
type HotPathBaseline struct {
	// Commit is the git commit the baseline was measured at.
	Commit string `json:"commit"`
	// AllocsPerEntry / BytesPerEntry are the pipelined single-producer
	// append-path allocation costs per entry.
	AllocsPerEntry float64 `json:"allocs_per_entry"`
	BytesPerEntry  float64 `json:"bytes_per_entry"`
	// FsyncsPerBlockSyncEvery / FsyncsPerBlockRollOnly are the two
	// pre-group-commit durability points: per-block fsync (durable
	// receipts, one fsync per block) and roll-only (near-zero fsyncs,
	// receipts resolve before durability).
	FsyncsPerBlockSyncEvery float64 `json:"fsyncs_per_block_sync_every"`
	FsyncsPerBlockRollOnly  float64 `json:"fsyncs_per_block_roll_only"`
}

// hotPathBaselinePR6 was measured on the dev box at PR 6 HEAD
// (commit 4c6a91e, plus only the fsync counter and this harness) over
// the 4000-entry workload, before any PR 7 optimization landed. The
// "≥50% allocs/op reduction" acceptance bar is judged against
// AllocsPerEntry here.
var hotPathBaselinePR6 = HotPathBaseline{
	Commit:                  "4c6a91e",
	AllocsPerEntry:          27.5,
	BytesPerEntry:           4696,
	FsyncsPerBlockSyncEvery: 1.0,
	FsyncsPerBlockRollOnly:  0,
}

// hotPathStore opens a fresh segment store in a temp dir.
func hotPathStore(opts segment.Options) (*segment.Store, string, error) {
	dir, err := os.MkdirTemp("", "seldel-bench-hot-*")
	if err != nil {
		return nil, "", err
	}
	ss, err := segment.Open(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	return ss, dir, nil
}

// hotPathChain builds the measured chain: the pipeline geometry the
// submission benchmark uses, mirrored into ss.
func hotPathChain(e *env, pool *verify.Pool, ss *segment.Store, durability chain.Durability) (*chain.Chain, error) {
	c, err := chain.New(chain.Config{
		SequenceLength: 8,
		Registry:       e.registry,
		Clock:          simclock.NewLogical(0),
		Verifier:       pool,
		Durability:     durability,
	})
	if err != nil {
		return nil, err
	}
	if _, err := store.Attach(c, ss); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// submitAll fans entries over p producers (the measureSubmitWith
// pattern: pipelined Submit, wait all receipts at the end).
func submitAll(c *chain.Chain, entries []*block.Entry, p int) error {
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			receipts := make([]mempool.Receipt, 0, len(entries)/p+1)
			for i := w; i < len(entries); i += p {
				// Re-slice rather than passing the entry alone: variadic
				// boxing would charge one harness allocation per submission
				// to the measured section.
				rs, err := c.Submit(ctx, entries[i:i+1]...)
				if err != nil {
					errCh <- err
					return
				}
				receipts = append(receipts, rs...)
			}
			for _, r := range receipts {
				if _, err := r.Wait(ctx); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

// measureHotPathAllocs measures heap allocations per entry on the
// single-producer pipelined append path. The warmup slice spins up the
// lazy pipeline (batcher goroutine, verify workers, first segment) so
// the measured section sees steady state only.
func measureHotPathAllocs(e *env, warmup, entries []*block.Entry) (HotPathResult, error) {
	pool := freshPool(0, true)
	defer pool.Close()
	ss, dir, err := hotPathStore(segment.Options{})
	if err != nil {
		return HotPathResult{}, err
	}
	defer os.RemoveAll(dir)
	defer ss.Close()
	c, err := hotPathChain(e, pool, ss, chain.Durability{})
	if err != nil {
		return HotPathResult{}, err
	}
	defer c.Close()
	if err := submitAll(c, warmup, 1); err != nil {
		return HotPathResult{}, fmt.Errorf("hotpath allocs warmup: %w", err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := submitAll(c, entries, 1); err != nil {
		return HotPathResult{}, fmt.Errorf("hotpath allocs: %w", err)
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	n := float64(len(entries))
	return HotPathResult{
		Op:             "append-allocs",
		Mode:           "pipelined",
		Producers:      1,
		Entries:        len(entries),
		Blocks:         c.Stats().AppendedBlocks,
		AllocsPerEntry: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerEntry:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		Seconds:        elapsed,
		OpsPerSec:      n / elapsed,
	}, nil
}

// measureHotPathDurability runs the 16-producer submission workload
// against a segment store in one durability mode and reports fsyncs
// per appended block.
func measureHotPathDurability(e *env, entries []*block.Entry, p int, mode string) (HotPathResult, error) {
	var opts segment.Options
	group := false
	switch mode {
	case "roll-only":
	case "sync-every":
		opts.SyncEvery = true
	case "group":
		group = true
	default:
		return HotPathResult{}, fmt.Errorf("hotpath: unknown durability mode %q", mode)
	}
	pool := freshPool(0, true)
	defer pool.Close()
	ss, dir, err := hotPathStore(opts)
	if err != nil {
		return HotPathResult{}, err
	}
	defer os.RemoveAll(dir)
	defer ss.Close()
	var durability chain.Durability
	if group {
		// The window is sized for the dev box's sealing cadence
		// (~10-15ms per 256-entry block, verify-bound): a slow disk's
		// fsync latency groups blocks by itself, a fast one needs the
		// explicit window to amortize.
		durability = chain.Durability{
			Mode:        chain.DurabilityGroup,
			Sync:        ss.Sync,
			GroupWindow: hotPathGroupWindow,
		}
	}
	c, err := hotPathChain(e, pool, ss, durability)
	if err != nil {
		return HotPathResult{}, err
	}
	defer c.Close()
	// Count only the measured section's fsyncs: store attachment costs
	// a marker reconciliation (2 syncs) and Close a final one — both
	// shutdown/startup, not append path.
	f0 := ss.FsyncCount()
	blocks0 := c.Stats().AppendedBlocks
	start := time.Now()
	if err := submitAll(c, entries, p); err != nil {
		return HotPathResult{}, fmt.Errorf("hotpath durability (%s): %w", mode, err)
	}
	elapsed := time.Since(start).Seconds()
	fsyncs := ss.FsyncCount() - f0
	blocks := c.Stats().AppendedBlocks - blocks0
	r := HotPathResult{
		Op:        "durability",
		Mode:      mode,
		Producers: p,
		Entries:   len(entries),
		Blocks:    blocks,
		Fsyncs:    fsyncs,
		Seconds:   elapsed,
		OpsPerSec: float64(len(entries)) / elapsed,
	}
	if blocks > 0 {
		r.FsyncsPerBlock = float64(fsyncs) / float64(blocks)
	}
	if group {
		r.GroupWindowMillis = float64(hotPathGroupWindow.Milliseconds())
	}
	return r, nil
}

// hotPathGroupWindow is the group-commit accumulation window the bench
// row runs with.
const hotPathGroupWindow = 50 * time.Millisecond

// hotPathModes are the measured durability configurations.
var hotPathModes = []string{"roll-only", "sync-every", "group"}

// measureHotPathDimension runs the full hot-path dimension over n
// entries: the allocation profile of the pipelined append path, then
// fsyncs/block at 16 producers for each durability mode.
func measureHotPathDimension(n int) ([]HotPathResult, error) {
	e, err := newEnv("hotpath")
	if err != nil {
		return nil, err
	}
	warmN := n / 8
	if warmN < 64 {
		warmN = 64
	}
	all := pipelineEntries(e.keys["hotpath"], n+warmN)
	warmup, entries := all[:warmN], all[warmN:]

	out := make([]HotPathResult, 0, 1+len(hotPathModes))
	// Best of three like every other dimension; for allocations "best"
	// means fewest allocs/entry (GC timing jitters the counters).
	var alloc HotPathResult
	for i := 0; i < 3; i++ {
		r, err := measureHotPathAllocs(e, warmup, entries)
		if err != nil {
			return nil, err
		}
		if alloc.Entries == 0 || r.AllocsPerEntry < alloc.AllocsPerEntry {
			alloc = r
		}
	}
	out = append(out, alloc)

	for _, mode := range hotPathModes {
		var best HotPathResult
		for i := 0; i < 3; i++ {
			r, err := measureHotPathDurability(e, entries, 16, mode)
			if err != nil {
				return nil, err
			}
			if best.Entries == 0 || r.OpsPerSec > best.OpsPerSec {
				best = r
			}
		}
		out = append(out, best)
	}
	return out, nil
}
