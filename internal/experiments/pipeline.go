package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/verify"
)

// This file benchmarks the concurrent submission pipeline (PR 1): the
// same pre-signed workload is pushed through SubmitWait by one serial
// caller (the synchronous baseline that replaced the retired Commit
// facade) and through Chain.Submit by 1, 4, and 16 concurrent
// producers. PR 2 adds the verify-parallelism dimension: the
// 16-producer submission workload is re-measured at GOMAXPROCS 1, 4,
// and 16 with the verified-signature cache on and off, isolating how
// much of the throughput comes from the parallel verification pool
// versus the cache. PR 3 adds the deletion-lifecycle dimension
// (deletionbench.go): deletions/sec and append latency while the
// background compactor truncates. Unlike the paper reproductions this
// experiment measures wall-clock throughput, so its numbers vary run to
// run; the JSON output (`seldel-bench -json`) feeds the repository's
// performance trajectory.

// PipelineResult is one measured configuration.
type PipelineResult struct {
	// API is "serial" (one blocking SubmitWait caller) or "submit"
	// (concurrent pipeline producers).
	API string `json:"api"`
	// Producers is the number of concurrent submitting goroutines.
	Producers int `json:"producers"`
	// Entries is the total number of entries written.
	Entries int `json:"entries"`
	// Blocks is the number of normal+summary blocks appended.
	Blocks uint64 `json:"blocks"`
	// Seconds is the measured wall-clock time.
	Seconds float64 `json:"seconds"`
	// OpsPerSec is Entries / Seconds.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// VerifyResult is one measured verify-parallelism configuration: the
// 16-producer submission workload at a pinned GOMAXPROCS, with the
// verified-signature cache on or off.
type VerifyResult struct {
	// GOMAXPROCS is the pinned scheduler width (and verify-pool size).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Cache reports whether the verified-signature cache was enabled.
	Cache bool `json:"cache"`
	// Producers is the number of concurrent submitting goroutines.
	Producers int `json:"producers"`
	// Entries is the total number of entries written.
	Entries int `json:"entries"`
	// Seconds is the measured wall-clock time.
	Seconds float64 `json:"seconds"`
	// OpsPerSec is Entries / Seconds.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Verified counts real Ed25519 verifications performed.
	Verified uint64 `json:"verified"`
	// CacheHits counts verifications answered from the cache.
	CacheHits uint64 `json:"cache_hits"`
}

// PipelineReport is the machine-readable result set written by
// `seldel-bench -json`.
type PipelineReport struct {
	Bench      string           `json:"bench"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	UnixTime   int64            `json:"unix_time"`
	Results    []PipelineResult `json:"results"`
	SpeedupX16 float64          `json:"speedup_submit16_vs_serial"`
	// VerifyResults is the verify-parallelism dimension (PR 2).
	VerifyResults []VerifyResult `json:"verify_results"`
	// DeletionResults is the deletion-lifecycle dimension (PR 3):
	// deletions/sec through the pooled authorization path and append
	// latency while the background compactor truncates.
	DeletionResults []DeletionResult `json:"deletion_results"`
	// StorageResults is the storage dimension (PR 4): segment-store
	// append throughput vs the one-file-per-block layout, restore time
	// from the snapshot checkpoint vs a full genesis replay, and bytes
	// physically reclaimed by a truncating deletion run.
	StorageResults []StorageResult `json:"storage_results"`
	// ClusterResults is the cluster dimension (PR 5): replicated
	// blocks/sec and deletion-convergence latency at 3/7/15 anchor
	// nodes on the in-memory network.
	ClusterResults []ClusterResult `json:"cluster_results"`
	// ManifestResults is the deletion-manifest dimension (PR 6): the
	// write+delete lifecycle with the durable audit log on vs off (the
	// fsynced record append's overhead) and tombstone proofs built and
	// verified per second.
	ManifestResults []ManifestResult `json:"manifest_results"`
	// BatchVerifyResults is the batch-verification dimension (PR 7):
	// signature-check throughput through the per-signature path vs the
	// accumulate-then-verify Batch under cold, cache-warmed, and
	// duplicate-heavy traffic.
	BatchVerifyResults []BatchVerifyResult `json:"batch_verify_results,omitempty"`
	// BatchVerifySpeedup is the headline batch win: the 16-signature
	// warm-0.5 batch row's throughput over the single-signature row.
	BatchVerifySpeedup float64 `json:"batch_verify_speedup,omitempty"`
	// HotPathResults is the hot-path dimension (PR 7): allocations per
	// entry through the pipelined append path, and fsyncs per block at
	// 16 producers under each durability mode (roll-only, per-block
	// sync, group commit).
	HotPathResults []HotPathResult `json:"hotpath_results,omitempty"`
	// HotPathBaselinePR6 pins the same harness's numbers at the PR 6
	// HEAD, so the report carries its own before/after comparison.
	HotPathBaselinePR6 *HotPathBaseline `json:"hotpath_baseline_pr6,omitempty"`
	// PartitionResults is the partitioned-chain dimension (PR 8): the
	// 16-producer submission workload through the partition router at
	// 1, 2, and 4 sub-chains sharing one verification pool.
	PartitionResults []PartitionResult `json:"partition_results,omitempty"`
	// PartitionScaling4x is the 4-partition row's throughput over the
	// single-partition row — the headline sharding win the bench gate
	// guards on multi-core hardware.
	PartitionScaling4x float64 `json:"partition_scaling_4x,omitempty"`
	// LoadResults is the serving dimension (PR 9): the HTTP front-end
	// driven open-loop at a fixed offered rate (scheduled-time latency,
	// so coordinated omission is counted, not hidden). cmd/seldel-load
	// -json emits the same rows standalone.
	LoadResults []LoadResult `json:"load_results,omitempty"`
	// ServeAppendP99Micros is the serving dimension's headline: p99
	// append latency (µs) through the HTTP front-end at the fixed
	// open-loop rate (lower is better).
	ServeAppendP99Micros float64 `json:"serve_append_p99_us,omitempty"`
	// AppendAllocsPerOp is the pipelined append path's allocations per
	// entry — the headline the bench gate guards (lower is better).
	AppendAllocsPerOp float64 `json:"append_allocs_per_op,omitempty"`
	// GroupFsyncsPerBlock is the group-commit durability row's fsyncs
	// per block at 16 producers (lower is better; receipts resolve only
	// at the durability point in this mode).
	GroupFsyncsPerBlock float64 `json:"group_fsyncs_per_block,omitempty"`
	// TombstoneProofsPerSec is the manifest proofs row's rate — the
	// headline audit-query metric the bench gate guards.
	TombstoneProofsPerSec float64 `json:"tombstone_proofs_per_sec"`
	// RestoreSnapshotSpeedup is restore-from-genesis seconds over
	// restore-from-snapshot seconds on the storage workload.
	RestoreSnapshotSpeedup float64 `json:"restore_snapshot_speedup"`
	// VerifyPoolSpeedup is submit@16 ops/s at the widest GOMAXPROCS over
	// GOMAXPROCS=1, cache enabled in both: the parallel-verification win.
	VerifyPoolSpeedup float64 `json:"verify_pool_speedup"`
	// VerifyCacheSpeedup is submit@16 ops/s cache-on over cache-off at
	// the widest GOMAXPROCS: the verified-signature-cache win.
	VerifyCacheSpeedup float64 `json:"verify_cache_speedup"`
}

// pipelineEntries pre-signs n entries so signing cost stays out of the
// measured section (verification happens on-chain in both paths).
func pipelineEntries(kp *identity.KeyPair, n int) []*block.Entry {
	entries := make([]*block.Entry, n)
	for i := range entries {
		entries[i] = block.NewData(kp.Name(), []byte(fmt.Sprintf("load-%06d", i))).Sign(kp)
	}
	return entries
}

// pipelineChain builds a bench chain verifying through pool. A fresh
// pool per measurement keeps runs independent: the verified-signature
// cache never carries results from one configuration into the next.
func pipelineChain(reg *identity.Registry, pool *verify.Pool) (*chain.Chain, error) {
	return chain.New(chain.Config{
		SequenceLength: 8,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
		Verifier:       pool,
	})
}

// freshPool builds one measurement's verification pool.
func freshPool(workers int, cache bool) *verify.Pool {
	size := 0
	if !cache {
		size = -1
	}
	return verify.New(verify.Options{Workers: workers, CacheSize: size})
}

// measureSerial drives the synchronous baseline: one goroutine, one
// blocking SubmitWait per entry — one block per call, zero batching.
func measureSerial(reg *identity.Registry, entries []*block.Entry) (PipelineResult, error) {
	pool := freshPool(0, true)
	defer pool.Close()
	c, err := pipelineChain(reg, pool)
	if err != nil {
		return PipelineResult{}, err
	}
	defer c.Close()
	ctx := context.Background()
	start := time.Now()
	for _, e := range entries {
		if _, err := c.SubmitWait(ctx, e); err != nil {
			return PipelineResult{}, err
		}
	}
	elapsed := time.Since(start).Seconds()
	return PipelineResult{
		API:       "serial",
		Producers: 1,
		Entries:   len(entries),
		Blocks:    c.Stats().AppendedBlocks,
		Seconds:   elapsed,
		OpsPerSec: float64(len(entries)) / elapsed,
	}, nil
}

// measureSubmit fans the same workload out over p producers. Each
// producer streams its share one Submit call per entry (stressing the
// concurrent intake), keeps the receipts, and waits for all of them to
// seal at the end — the pipelined usage pattern the API is for.
func measureSubmit(reg *identity.Registry, entries []*block.Entry, p int) (PipelineResult, error) {
	r, _, err := measureSubmitWith(reg, entries, p, freshPool(0, true))
	return r, err
}

// measureSubmitWith runs the p-producer submission workload through a
// specific verification pool, returning the pool's final stats alongside
// the throughput result.
func measureSubmitWith(reg *identity.Registry, entries []*block.Entry, p int, pool *verify.Pool) (PipelineResult, verify.Stats, error) {
	defer pool.Close()
	c, err := pipelineChain(reg, pool)
	if err != nil {
		return PipelineResult{}, verify.Stats{}, err
	}
	defer c.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	start := time.Now()
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			receipts := make([]mempool.Receipt, 0, len(entries)/p+1)
			for i := w; i < len(entries); i += p {
				rs, err := c.Submit(ctx, entries[i])
				if err != nil {
					errCh <- err
					return
				}
				receipts = append(receipts, rs...)
			}
			for _, r := range receipts {
				if _, err := r.Wait(ctx); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		return PipelineResult{}, verify.Stats{}, err
	}
	if err := c.VerifyIntegrity(); err != nil {
		return PipelineResult{}, verify.Stats{}, fmt.Errorf("pipeline: integrity after submit(%d): %w", p, err)
	}
	return PipelineResult{
		API:       "submit",
		Producers: p,
		Entries:   len(entries),
		Blocks:    c.Stats().AppendedBlocks,
		Seconds:   elapsed,
		OpsPerSec: float64(len(entries)) / elapsed,
	}, pool.Stats(), nil
}

// verifyConfigs are the measured verify-parallelism configurations.
var verifyConfigs = []struct {
	procs int
	cache bool
}{
	{1, false}, {1, true},
	{4, false}, {4, true},
	{16, false}, {16, true},
}

// measureVerifyDimension re-runs the 16-producer submission workload at
// pinned GOMAXPROCS values with the cache on and off. GOMAXPROCS is
// restored before returning.
func measureVerifyDimension(reg *identity.Registry, entries []*block.Entry) ([]VerifyResult, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	const producers = 16
	out := make([]VerifyResult, 0, len(verifyConfigs))
	for _, cfg := range verifyConfigs {
		runtime.GOMAXPROCS(cfg.procs)
		// Best of three, like the commit/submit rows: wall-clock noise
		// on a shared box would otherwise bias this dimension.
		var r PipelineResult
		var vs verify.Stats
		for i := 0; i < 3; i++ {
			ri, vsi, err := measureSubmitWith(reg, entries, producers, freshPool(cfg.procs, cfg.cache))
			if err != nil {
				return nil, fmt.Errorf("verify dimension (procs=%d cache=%v): %w", cfg.procs, cfg.cache, err)
			}
			if ri.OpsPerSec > r.OpsPerSec {
				r, vs = ri, vsi
			}
		}
		out = append(out, VerifyResult{
			GOMAXPROCS: cfg.procs,
			Cache:      cfg.cache,
			Producers:  producers,
			Entries:    r.Entries,
			Seconds:    r.Seconds,
			OpsPerSec:  r.OpsPerSec,
			Verified:   vs.Verified,
			CacheHits:  vs.CacheHits,
		})
	}
	return out, nil
}

// RunPipelineBench measures serial SubmitWait (1 caller) vs Submit
// (1, 4, 16 producers) over n entries each, plus the verify and
// deletion-lifecycle dimensions.
func RunPipelineBench(n int) (*PipelineReport, error) {
	e, err := newEnv("writer")
	if err != nil {
		return nil, err
	}
	entries := pipelineEntries(e.keys["writer"], n)
	report := &PipelineReport{
		Bench:     "submission-pipeline",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		UnixTime:  time.Now().Unix(),
	}
	// Best of three runs per configuration: wall-clock throughput on a
	// shared machine is noisy, and the best run is closest to the cost
	// of the code itself.
	const repeats = 3
	best := func(measure func() (PipelineResult, error)) (PipelineResult, error) {
		var top PipelineResult
		for i := 0; i < repeats; i++ {
			r, err := measure()
			if err != nil {
				return PipelineResult{}, err
			}
			if r.OpsPerSec > top.OpsPerSec {
				top = r
			}
		}
		return top, nil
	}
	serial, err := best(func() (PipelineResult, error) { return measureSerial(e.registry, entries) })
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, serial)
	for _, p := range []int{1, 4, 16} {
		r, err := best(func() (PipelineResult, error) { return measureSubmit(e.registry, entries, p) })
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, r)
	}
	last := report.Results[len(report.Results)-1]
	report.SpeedupX16 = last.OpsPerSec / serial.OpsPerSec

	vr, err := measureVerifyDimension(e.registry, entries)
	if err != nil {
		return nil, err
	}
	report.VerifyResults = vr
	opsAt := func(procs int, cache bool) float64 {
		for _, r := range vr {
			if r.GOMAXPROCS == procs && r.Cache == cache {
				return r.OpsPerSec
			}
		}
		return 0
	}
	widest := vr[len(vr)-1].GOMAXPROCS
	if base := opsAt(1, true); base > 0 {
		report.VerifyPoolSpeedup = opsAt(widest, true) / base
	}
	if off := opsAt(widest, false); off > 0 {
		report.VerifyCacheSpeedup = opsAt(widest, true) / off
	}

	dr, err := measureDeletionDimension(n / 4)
	if err != nil {
		return nil, err
	}
	report.DeletionResults = dr

	sr, speedup, err := measureStorageDimension(n)
	if err != nil {
		return nil, err
	}
	report.StorageResults = sr
	report.RestoreSnapshotSpeedup = speedup

	cr, err := measureClusterDimension(n)
	if err != nil {
		return nil, err
	}
	report.ClusterResults = cr

	mr, proofRate, err := measureManifestDimension(n)
	if err != nil {
		return nil, err
	}
	report.ManifestResults = mr
	report.TombstoneProofsPerSec = proofRate

	br, batchSpeedup, err := measureBatchVerifyDimension(n)
	if err != nil {
		return nil, err
	}
	report.BatchVerifyResults = br
	report.BatchVerifySpeedup = batchSpeedup

	pr, scaling, err := measurePartitionDimension(n)
	if err != nil {
		return nil, err
	}
	report.PartitionResults = pr
	report.PartitionScaling4x = scaling

	lr, err := measureServeDimension(n / 2)
	if err != nil {
		return nil, err
	}
	report.SetLoadResults(lr)

	hr, err := measureHotPathDimension(n)
	if err != nil {
		return nil, err
	}
	report.HotPathResults = hr
	report.HotPathBaselinePR6 = &hotPathBaselinePR6
	for _, r := range hr {
		switch {
		case r.Op == "append-allocs":
			report.AppendAllocsPerOp = r.AllocsPerEntry
		case r.Op == "durability" && r.Mode == "group":
			report.GroupFsyncsPerBlock = r.FsyncsPerBlock
		}
	}
	return report, nil
}

// WritePipelineJSON runs the pipeline benchmark and writes the report to
// path (used by `seldel-bench -json`).
func WritePipelineJSON(path string, n int) (*PipelineReport, error) {
	report, err := RunPipelineBench(n)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return report, nil
}

// runPipeline is the experiment-table entry point.
func runPipeline(w io.Writer) error {
	report, err := RunPipelineBench(4000)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "api\tproducers\tentries\tblocks\tops/sec")
	for _, r := range report.Results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f\n", r.API, r.Producers, r.Entries, r.Blocks, r.OpsPerSec)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "submit@16 vs commit@1: %.2fx\n", report.SpeedupX16)
	tw = newTable(w)
	fmt.Fprintln(tw, "gomaxprocs\tcache\tops/sec\tverified\thits")
	for _, r := range report.VerifyResults {
		fmt.Fprintf(tw, "%d\t%v\t%.0f\t%d\t%d\n", r.GOMAXPROCS, r.Cache, r.OpsPerSec, r.Verified, r.CacheHits)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "verify pool %dx procs: %.2fx; cache: %.2fx\n",
		report.VerifyResults[len(report.VerifyResults)-1].GOMAXPROCS,
		report.VerifyPoolSpeedup, report.VerifyCacheSpeedup)
	tw = newTable(w)
	fmt.Fprintln(tw, "producers\tdeletions\tdel/sec\tappend_us\ttruncations\tcompacted")
	for _, r := range report.DeletionResults {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t%d\t%d\n",
			r.Producers, r.Deletions, r.DeletionsPerSec, r.AvgAppendMicros,
			r.Truncations, r.BlocksCompacted)
	}
	return tw.Flush()
}
