package experiments

import (
	"fmt"
	"io"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/simclock"
)

// runTTL is E9: §IV-D.4 temporary entries — "If the blockchain exceeds
// the timestamp or block number given, the entry will not be transferred
// to the new summary block. … The system cleans up its own content."
// Expected shape: every expired entry disappears at its first post-
// deadline summarization with zero authorization traffic; unexpired
// entries survive merges indefinitely.
func runTTL(w io.Writer) error {
	e, err := newEnv("logger")
	if err != nil {
		return err
	}
	kp := e.keys["logger"]
	c, err := chain.New(chain.Config{
		SequenceLength: 4,
		MaxBlocks:      12,
		Shrink:         chain.ShrinkMinimal,
		Registry:       e.registry,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		return err
	}
	defer c.Close()

	type probe struct {
		ref      block.Ref
		deadline uint64 // block-number deadline (0 = durable)
	}
	var probes []probe

	// Mix: one durable and one expiring entry per block, deadlines
	// staggered so they expire across different merge cycles.
	const writes = 30
	for i := 0; i < writes; i++ {
		deadline := uint64(0)
		next := c.NextNumber()
		if i%2 == 0 {
			deadline = next + uint64(4+i%12)
		}
		var entry *block.Entry
		if deadline > 0 {
			entry = block.NewTemporary("logger", []byte(fmt.Sprintf("log-%d", i)), 0, deadline).Sign(kp)
		} else {
			entry = block.NewData("logger", []byte(fmt.Sprintf("log-%d", i))).Sign(kp)
		}
		blocks, err := sealBlocks(c, entry)
		if err != nil {
			return err
		}
		probes = append(probes, probe{
			ref:      block.Ref{Block: blocks[0].Header.Number, Entry: 0},
			deadline: deadline,
		})
	}
	// Drive several merge cycles past every deadline.
	for i := 0; i < 40; i++ {
		if _, err := c.AppendEmpty(); err != nil {
			return err
		}
	}

	head := c.Head().Number
	var expiredGone, expiredAlive, durableAlive, durableGone int
	for _, p := range probes {
		_, _, alive := c.Lookup(p.ref)
		switch {
		case p.deadline == 0 && alive:
			durableAlive++
		case p.deadline == 0 && !alive:
			durableGone++
		case p.deadline > 0 && alive:
			expiredAlive++
		default:
			expiredGone++
		}
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "category\tcount")
	fmt.Fprintf(tw, "temporary, past deadline, physically gone\t%d\n", expiredGone)
	fmt.Fprintf(tw, "temporary, past deadline, still alive (MUST be 0)\t%d\n", expiredAlive)
	fmt.Fprintf(tw, "durable, still alive (MUST equal durable writes)\t%d\n", durableAlive)
	fmt.Fprintf(tw, "durable, lost (MUST be 0)\t%d\n", durableGone)
	if err := tw.Flush(); err != nil {
		return err
	}
	s := c.Stats()
	fmt.Fprintf(w, "chain head=%d expired_counter=%d live_blocks=%d (self-cleaning, §IV-D.4)\n",
		head, s.ExpiredEntries, s.LiveBlocks)
	if expiredAlive != 0 || durableGone != 0 {
		return fmt.Errorf("TTL invariant violated: expiredAlive=%d durableGone=%d", expiredAlive, durableGone)
	}
	return nil
}
