package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/node"
	"github.com/seldel/seldel/internal/simclock"
)

// This file is the cluster dimension of `seldel-bench -json` (PR 5):
// the same replicated write workload driven through 3-, 7-, and 15-node
// anchor deployments on the in-memory network, plus a 50-node WAN row
// (PR 10) over the three-region geo-latency matrix. Two rates are reported
// per width: replicated blocks per second (proposal + gossip + quorum
// summary votes, measured to full network quiescence every round) and
// the deletion-convergence latency — the wall-clock time from
// submitting a deletion request until the target entry is physically
// unresolvable on EVERY node, which exercises the entire distributed
// lifecycle: request gossip, co-signature precheck, mark adoption,
// summary vote, marker shift, and physical truncation on each replica.

// ClusterResult is one measured cluster configuration.
type ClusterResult struct {
	// Nodes is the anchor-node count (quorum width).
	Nodes int `json:"nodes"`
	// Rounds is the number of proposal rounds driven for the
	// throughput phase.
	Rounds int `json:"rounds"`
	// Blocks is the number of blocks the cluster replicated during the
	// throughput phase (normal + voted summary blocks).
	Blocks uint64 `json:"blocks"`
	// Seconds is the throughput phase wall-clock time.
	Seconds float64 `json:"seconds"`
	// BlocksPerSec is Blocks / Seconds: cluster-replicated blocks per
	// second, every round driven to quiescence on every node.
	BlocksPerSec float64 `json:"blocks_per_sec"`
	// DeletionRounds is how many proposal rounds the deletion needed to
	// converge (mark → summary vote → marker shift → physical cut).
	DeletionRounds int `json:"deletion_rounds"`
	// DeletionConvergeMillis is the wall-clock time from submitting the
	// deletion request to the entry being physically unresolvable on
	// every node.
	DeletionConvergeMillis float64 `json:"deletion_converge_millis"`
}

// clusterSizes are the measured deployment widths.
var clusterSizes = []int{3, 7, 15}

// wanClusterSize is the WAN-scale row (PR 10): the same workload at 50
// nodes spread round-robin across the three-region geo-latency matrix,
// with the registry's verify cache enabled (the deployment posture at
// that width — without it every broadcast is verified 49 times). Its
// guarded metric is DeletionRounds: how many proposal rounds a deletion
// needs to converge across the WAN, which the gate watches as a cost.
const wanClusterSize = 50

// wanClusterRounds is the (fixed, small) throughput-phase length for
// the WAN row; the row exists for its convergence-round count, not its
// block rate, so it does not scale with the -json-entries budget.
const wanClusterRounds = 8

// deletionConvergeCap bounds the convergence drive; a healthy cluster
// with SequenceLength 3 and MaxSequences 2 converges in well under ten
// rounds.
const deletionConvergeCap = 60

// measureClusterDimension runs the cluster workload at each width.
// n is the -json-entries budget; rounds derive from it so the smoke
// run stays fast.
func measureClusterDimension(n int) ([]ClusterResult, error) {
	rounds := n / 25
	if rounds < 12 {
		rounds = 12
	}
	if rounds > 200 {
		rounds = 200
	}
	out := make([]ClusterResult, 0, len(clusterSizes)+1)
	for _, size := range clusterSizes {
		r, err := measureCluster(size, rounds, false)
		if err != nil {
			return nil, fmt.Errorf("cluster dimension (nodes=%d): %w", size, err)
		}
		out = append(out, r)
	}
	r, err := measureCluster(wanClusterSize, wanClusterRounds, true)
	if err != nil {
		return nil, fmt.Errorf("cluster dimension (nodes=%d, wan): %w", wanClusterSize, err)
	}
	out = append(out, r)
	return out, nil
}

// benchCluster is one assembled deployment.
type benchCluster struct {
	net   *netsim.Network
	nodes []*node.Node
	user  *identity.KeyPair
}

func (bc *benchCluster) close() {
	for _, nd := range bc.nodes {
		nd.Close()
	}
	bc.net.Close()
}

// drive submits one signed entry through node 0 and proposes, retrying
// while the summary vote settles, then waits for quiescence. It
// returns the sealed normal block holding the entry.
func (bc *benchCluster) drive(payload []byte) (*block.Block, error) {
	bc.nodes[0].SubmitLocal(block.NewData("user", payload).Sign(bc.user))
	bc.net.Flush()
	for attempt := 0; ; attempt++ {
		b, err := bc.nodes[0].Propose()
		bc.net.Flush()
		if err == nil {
			return b, nil
		}
		if !errors.Is(err, node.ErrSummaryPending) {
			return nil, err
		}
		if attempt > 200 {
			return nil, fmt.Errorf("summary vote never completed")
		}
	}
}

// newBenchCluster assembles one deployment. With wan set the nodes are
// spread round-robin across the three-region geo matrix (asymmetric
// virtual latency, delivered deterministically under the fixed seed)
// and signature verification is cached across the quorum.
func newBenchCluster(size int, wan bool) (*benchCluster, error) {
	bc := &benchCluster{net: netsim.New(netsim.Config{Seed: 1})}
	registry := identity.NewRegistry()
	if wan {
		registry.EnableVerifyCache(1 << 16)
	}
	names := make([]string, size)
	for i := range names {
		names[i] = fmt.Sprintf("anchor-%d", i)
	}
	if wan {
		geo := netsim.ThreeRegions()
		geo.AssignRoundRobin(names...)
		bc.net.SetGeo(geo)
	}
	quorum, err := consensus.NewQuorum(names)
	if err != nil {
		bc.net.Close()
		return nil, err
	}
	for _, name := range names {
		kp := identity.Deterministic(name, "cluster-bench")
		if err := registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			bc.close()
			return nil, err
		}
		nd, err := node.New(node.Config{
			Key: kp,
			Chain: chain.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Shrink:         chain.ShrinkAllButNewest,
				Registry:       registry,
				Clock:          simclock.NewLogical(0),
			},
			Quorum:  quorum,
			Network: bc.net,
		})
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.nodes = append(bc.nodes, nd)
	}
	bc.user = identity.Deterministic("user", "cluster-bench")
	if err := registry.RegisterKey(bc.user, identity.RoleUser); err != nil {
		bc.close()
		return nil, err
	}
	return bc, nil
}

// resolvableOnAll reports whether every node still resolves ref.
func resolvableOnAll(bc *benchCluster, ref block.Ref) bool {
	for _, nd := range bc.nodes {
		if _, _, ok := nd.Chain().Lookup(ref); !ok {
			return false
		}
	}
	return true
}

// resolvableOnAny reports whether any node still resolves ref.
func resolvableOnAny(bc *benchCluster, ref block.Ref) bool {
	for _, nd := range bc.nodes {
		if _, _, ok := nd.Chain().Lookup(ref); ok {
			return true
		}
	}
	return false
}

// measureCluster drives one deployment: rounds of replicated proposals
// for the throughput rate, then one deletion to full physical
// convergence.
func measureCluster(size, rounds int, wan bool) (ClusterResult, error) {
	bc, err := newBenchCluster(size, wan)
	if err != nil {
		return ClusterResult{}, err
	}
	defer bc.close()

	// Warm-up round; also the deletion target, so the convergence phase
	// deletes an entry that by then lives in a summary block.
	vb, err := bc.drive([]byte("victim"))
	if err != nil {
		return ClusterResult{}, err
	}
	victim := block.Ref{Block: vb.Header.Number, Entry: 0}

	headBefore := bc.nodes[0].Chain().Head().Number
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := bc.drive([]byte(fmt.Sprintf("load-%06d", i))); err != nil {
			return ClusterResult{}, err
		}
	}
	elapsed := time.Since(start).Seconds()
	blocks := bc.nodes[0].Chain().Head().Number - headBefore
	// The throughput phase must have replicated everywhere, or the rate
	// is fiction.
	headHash := bc.nodes[0].Chain().HeadHash()
	for _, nd := range bc.nodes[1:] {
		if nd.Chain().HeadHash() != headHash {
			return ClusterResult{}, fmt.Errorf("cluster diverged during throughput phase at %s", nd.Name())
		}
	}

	gone := func() bool { return !resolvableOnAny(bc, victim) }
	if !resolvableOnAll(bc, victim) {
		return ClusterResult{}, fmt.Errorf("victim %v not carried to every node before deletion", victim)
	}
	delStart := time.Now()
	bc.nodes[0].SubmitLocal(block.NewDeletion("user", victim).Sign(bc.user))
	bc.net.Flush()
	delRounds := 0
	for ; !gone() && delRounds < deletionConvergeCap; delRounds++ {
		if _, err := bc.drive([]byte(fmt.Sprintf("fill-%06d", delRounds))); err != nil {
			return ClusterResult{}, err
		}
	}
	if !gone() {
		return ClusterResult{}, fmt.Errorf("deletion did not converge within %d rounds", deletionConvergeCap)
	}
	converge := time.Since(delStart)

	return ClusterResult{
		Nodes:                  size,
		Rounds:                 rounds,
		Blocks:                 blocks,
		Seconds:                elapsed,
		BlocksPerSec:           float64(blocks) / elapsed,
		DeletionRounds:         delRounds,
		DeletionConvergeMillis: float64(converge.Microseconds()) / 1000.0,
	}, nil
}
