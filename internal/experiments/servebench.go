package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/loadgen"
	"github.com/seldel/seldel/internal/serve"
	"github.com/seldel/seldel/internal/simclock"
)

// This file adds the serving dimension (PR 9): the full HTTP front-end
// driven open-loop at a FIXED offered rate. Unlike the other
// dimensions, which measure saturated throughput, this one measures
// tail latency under a constant schedule — the number a latency SLO is
// written against. The rate is pinned (serveOfferedRate) rather than
// derived from -json-entries so the p99 is comparable across runs and
// against the committed baseline regardless of how many entries a run
// writes.

// serveOfferedRate is the fixed open-loop schedule, requests/second.
const serveOfferedRate = 1000

// LoadResult is one open-loop load measurement through the serving
// front-end: offered vs achieved rate, shed/error accounting, and
// scheduled-time latency quantiles. cmd/seldel-load emits the same
// shape, so the bench gate reads both.
type LoadResult struct {
	// Workload names the request mix ("append", "deletion-storm",
	// "read-churn", "mixed").
	Workload string `json:"workload"`
	// OfferedPerSec is the configured open-loop schedule.
	OfferedPerSec float64 `json:"offered_per_sec"`
	// AchievedPerSec is successful requests over wall time.
	AchievedPerSec float64 `json:"achieved_per_sec"`
	// Scheduled/OK/Sheds/Errors/Dropped account for every scheduled
	// request: completed, refused with 429, failed, or never fired
	// because the in-flight safety valve was hit.
	Scheduled int64 `json:"scheduled"`
	OK        int64 `json:"ok"`
	Sheds     int64 `json:"sheds"`
	Errors    int64 `json:"errors"`
	Dropped   int64 `json:"dropped"`
	// ShedFraction is Sheds / Scheduled.
	ShedFraction float64 `json:"shed_fraction"`
	// Latency quantiles in microseconds, measured from each request's
	// SCHEDULED time (coordinated omission counted, not hidden).
	P50Micros  int64 `json:"p50_us"`
	P99Micros  int64 `json:"p99_us"`
	P999Micros int64 `json:"p999_us"`
	MaxMicros  int64 `json:"max_us"`
}

// LoadResultFrom folds a load-generator summary into the report row.
func LoadResultFrom(workload string, s loadgen.Summary) LoadResult {
	return LoadResult{
		Workload:       workload,
		OfferedPerSec:  s.Offered,
		AchievedPerSec: s.Achieved,
		Scheduled:      s.Scheduled,
		OK:             s.OKs,
		Sheds:          s.Sheds,
		Errors:         s.Errors,
		Dropped:        s.Dropped,
		ShedFraction:   s.ShedFraction(),
		P50Micros:      s.P50Micros,
		P99Micros:      s.P99Micros,
		P999Micros:     s.P999Micro,
		MaxMicros:      s.MaxMicros,
	}
}

// NewLoadReport wraps load rows in the PipelineReport envelope (same
// hardware fingerprint fields the gate's runner-match check reads);
// cmd/seldel-load -json writes this.
func NewLoadReport(rows []LoadResult) *PipelineReport {
	r := &PipelineReport{
		Bench:     "serve-load",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		UnixTime:  time.Now().Unix(),
	}
	r.SetLoadResults(rows)
	return r
}

// SetLoadResults installs the serving dimension and its headline (the
// append row's p99).
func (r *PipelineReport) SetLoadResults(rows []LoadResult) {
	r.LoadResults = rows
	for _, row := range rows {
		if row.Workload == "append" {
			r.ServeAppendP99Micros = float64(row.P99Micros)
		}
	}
}

// measureServeDimension stands up the real HTTP front-end over an
// in-memory chain on a loopback listener and drives single-entry
// submit?wait=1 requests open-loop at serveOfferedRate for n requests.
func measureServeDimension(n int) ([]LoadResult, error) {
	if n > 2000 {
		n = 2000 // 2s at the fixed rate is plenty of samples for p99
	}
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "servebench")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		return nil, err
	}
	c, err := chain.New(chain.Config{
		SequenceLength: 8,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	srv := serve.New(c, serve.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := srv.HTTPServer(ln.Addr().String())
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	// Pre-sign and pre-encode every request body so the measured section
	// holds only transport + pipeline + seal time.
	bodies := make([][]byte, n)
	for i := range bodies {
		e := block.NewData(kp.Name(), fmt.Appendf(nil, "serve-%06d", i)).Sign(kp)
		body, err := json.Marshal(serve.SubmitRequest{Entries: []serve.EntryJSON{serve.NewEntryJSON(e)}})
		if err != nil {
			return nil, err
		}
		bodies[i] = body
	}
	url := "http://" + ln.Addr().String() + "/v1/submit?wait=1"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	sum := loadgen.Run(context.Background(), loadgen.Options{
		Rate:     serveOfferedRate,
		Requests: n,
		Fire: func(ctx context.Context, i int) loadgen.Class {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(bodies[i]))
			if err != nil {
				return loadgen.Errored
			}
			resp, err := client.Do(req)
			if err != nil {
				return loadgen.Errored
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				return loadgen.OK
			case http.StatusTooManyRequests:
				return loadgen.Shed
			default:
				return loadgen.Errored
			}
		},
	})
	if sum.Errors > 0 {
		return nil, fmt.Errorf("serve dimension: %d/%d requests errored", sum.Errors, sum.Scheduled)
	}
	return []LoadResult{LoadResultFrom("append", sum)}, nil
}
