package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/merkle"
)

// runSumCost is E6: §V-B.2 — "by adding up the information in summary
// blocks, they become larger over time. The creation of these summary
// blocks can take a long time, depending on the amount of data to be
// copied." The paper proposes hash references as mitigation ("the
// copying of much information can be avoided by working with hash
// references"). Expected shape: full-copy cost and size grow linearly
// with carried volume; hash-reference mode is near-constant per entry
// (32-byte commitment instead of the payload).
func runSumCost(w io.Writer) error {
	kp := identity.Deterministic("writer", "seldel-experiments")
	const payloadBytes = 256

	mkCarried := func(n int) []block.CarriedEntry {
		out := make([]block.CarriedEntry, n)
		for i := range out {
			payload := make([]byte, payloadBytes)
			for k := range payload {
				payload[k] = byte(i + k)
			}
			out[i] = block.CarriedEntry{
				OriginBlock: uint64(i / 4),
				OriginTime:  uint64(i / 4),
				EntryNumber: uint32(i % 4),
				Entry:       block.NewData("writer", payload).Sign(kp),
			}
		}
		return out
	}

	// Hash-reference mode: replace each payload by its 32-byte hash; the
	// payload itself would live off-chain, retrievable and verifiable
	// against the on-chain hash.
	toHashRefs := func(carried []block.CarriedEntry) []block.CarriedEntry {
		out := make([]block.CarriedEntry, len(carried))
		for i, ce := range carried {
			h := codec.HashBytes(ce.Entry.Payload)
			ref := *ce.Entry
			ref.Payload = h[:]
			out[i] = block.CarriedEntry{
				OriginBlock: ce.OriginBlock,
				OriginTime:  ce.OriginTime,
				EntryNumber: ce.EntryNumber,
				Entry:       &ref,
			}
		}
		return out
	}

	timeBuild := func(carried []block.CarriedEntry) (time.Duration, int) {
		const reps = 20
		var blk *block.Block
		start := time.Now()
		for r := 0; r < reps; r++ {
			blk = block.NewSummary(99, 98, codec.HashBytes([]byte("prev")), carried, nil)
		}
		return time.Since(start) / reps, blk.EncodedSize()
	}

	tw := newTable(w)
	fmt.Fprintln(tw, "carried_entries\tfull_copy_us\tfull_copy_bytes\thash_ref_us\thash_ref_bytes\tsize_ratio")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		carried := mkCarried(n)
		fullDur, fullSize := timeBuild(carried)
		refDur, refSize := timeBuild(toHashRefs(carried))
		fmt.Fprintf(tw, "%d\t%.1f\t%d\t%.1f\t%d\t%.1fx\n",
			n,
			float64(fullDur.Microseconds()), fullSize,
			float64(refDur.Microseconds()), refSize,
			float64(fullSize)/float64(refSize))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape: both linear in entry count; hash-reference mode cuts bytes by")
	fmt.Fprintf(w, "~payload/32 (here %d/32) and time proportionally (§V-B.2 mitigation).\n", payloadBytes)

	// Second mitigation from §V-B.2: "structure the information logically
	// and build packages" — carrying one aggregate entry per origin block
	// instead of every single entry.
	fmt.Fprintln(w, "\npackaging (one Merkle-committed package per origin block):")
	tw = newTable(w)
	fmt.Fprintln(tw, "carried_entries\tpackages\tpackaged_bytes\tper_entry_overhead_bytes")
	for _, n := range []int{64, 256, 1024} {
		carried := mkCarried(n)
		perBlock := make(map[uint64][][]byte)
		for _, ce := range carried {
			perBlock[ce.OriginBlock] = append(perBlock[ce.OriginBlock], ce.Entry.Encode())
		}
		packaged := make([]block.CarriedEntry, 0, len(perBlock))
		for origin, leaves := range perBlock {
			root := merkle.Build(leaves).Root()
			packaged = append(packaged, block.CarriedEntry{
				OriginBlock: origin,
				OriginTime:  origin,
				EntryNumber: 0,
				Entry:       block.NewData("writer", root[:]).Sign(kp),
			})
		}
		blk := block.NewSummary(99, 98, codec.HashBytes([]byte("prev")), packaged, nil)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\n",
			n, len(packaged), blk.EncodedSize(), float64(blk.EncodedSize())/float64(n))
	}
	return tw.Flush()
}
