package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/simclock"
)

// This file is the deletion-lifecycle dimension of `seldel-bench -json`
// (PR 3): concurrent producers each write data entries and immediately
// request their deletion on a retention-bounded chain, so the whole
// asynchronous lifecycle runs at once — pooled co-signature-free
// authorization at sealing time, marks, summary merges, and background
// compaction. Reported per producer count: deletions sealed per second
// and the mean data-append round-trip latency while the compactor is
// truncating behind the appends.

// DeletionResult is one measured deletion-lifecycle configuration.
type DeletionResult struct {
	// Producers is the number of concurrent submitting goroutines.
	Producers int `json:"producers"`
	// Deletions is the number of deletion requests sealed.
	Deletions int `json:"deletions"`
	// Seconds is the measured wall-clock time.
	Seconds float64 `json:"seconds"`
	// DeletionsPerSec is Deletions / Seconds.
	DeletionsPerSec float64 `json:"deletions_per_sec"`
	// AvgAppendMicros is the mean SubmitWait round trip of the data
	// entries written between deletion requests — append latency while
	// compaction runs.
	AvgAppendMicros float64 `json:"avg_append_micros"`
	// Truncations counts marker shifts executed by the compactor.
	Truncations uint64 `json:"truncations"`
	// BlocksCompacted counts blocks physically reclaimed.
	BlocksCompacted uint64 `json:"blocks_compacted"`
	// Forgotten counts entries physically deleted on request.
	Forgotten uint64 `json:"forgotten"`
}

// deletionConfigs are the measured producer counts, matching the
// submit dimension.
var deletionConfigs = []int{1, 4, 16}

// measureDeletionDimension runs the deletion-lifecycle workload (n
// deletions per configuration) at each producer count.
func measureDeletionDimension(n int) ([]DeletionResult, error) {
	out := make([]DeletionResult, 0, len(deletionConfigs))
	for _, p := range deletionConfigs {
		r, err := measureDeletions(n, p)
		if err != nil {
			return nil, fmt.Errorf("deletion dimension (producers=%d): %w", p, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// measureDeletions drives p producers, each alternating data appends
// with deletion requests for its own previous entries, on a bounded
// chain that truncates continuously.
func measureDeletions(n, p int) (DeletionResult, error) {
	reg := identity.NewRegistry()
	keys := make([]*identity.KeyPair, p)
	for i := range keys {
		keys[i] = identity.Deterministic(fmt.Sprintf("del-bench-%d", i), "seldel-delbench")
		if err := reg.RegisterKey(keys[i], identity.RoleUser); err != nil {
			return DeletionResult{}, err
		}
	}
	pool := freshPool(0, true)
	defer pool.Close()
	c, err := chain.New(chain.Config{
		SequenceLength: 6,
		MaxBlocks:      24,
		Shrink:         chain.ShrinkMinimal,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
		Verifier:       pool,
	})
	if err != nil {
		return DeletionResult{}, err
	}
	defer c.Close()

	ctx := context.Background()
	// Each producer runs at least minRounds write+delete rounds: the
	// pipeline coalesces concurrent submissions into shared blocks, so
	// block count tracks ROUNDS, not entries, and the chain must
	// overrun its 24-block bound to exercise truncation + compaction.
	const minRounds = 36
	perProducer := n / p
	if perProducer < minRounds {
		perProducer = minRounds
	}
	var (
		wg          sync.WaitGroup
		appendNanos atomic.Int64
		appends     atomic.Int64
		errCh       = make(chan error, p)
	)
	start := time.Now()
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kp := keys[w]
			receipts := make([]mempool.Receipt, 0, perProducer)
			for i := 0; i < perProducer; i++ {
				t0 := time.Now()
				sealed, err := c.SubmitWait(ctx,
					block.NewData(kp.Name(), []byte(fmt.Sprintf("victim-%d-%d", w, i))).Sign(kp))
				if err != nil {
					errCh <- err
					return
				}
				appendNanos.Add(time.Since(t0).Nanoseconds())
				appends.Add(1)
				rs, err := c.Submit(ctx, block.NewDeletion(kp.Name(), sealed[0].Ref).Sign(kp))
				if err != nil {
					errCh <- err
					return
				}
				receipts = append(receipts, rs...)
			}
			for _, r := range receipts {
				if _, err := r.Wait(ctx); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		return DeletionResult{}, err
	}
	if err := c.CompactWait(ctx); err != nil {
		return DeletionResult{}, err
	}
	if err := c.VerifyIntegrity(); err != nil {
		return DeletionResult{}, fmt.Errorf("integrity after deletion storm: %w", err)
	}
	deletions := perProducer * p
	ps := c.PipelineStats()
	res := DeletionResult{
		Producers:       p,
		Deletions:       deletions,
		Seconds:         elapsed,
		DeletionsPerSec: float64(deletions) / elapsed,
		Truncations:     ps.Compaction.Truncations,
		BlocksCompacted: ps.Compaction.BlocksCompacted,
		Forgotten:       c.Stats().ForgottenEntries,
	}
	if a := appends.Load(); a > 0 {
		res.AvgAppendMicros = float64(appendNanos.Load()) / float64(a) / 1e3
	}
	return res, nil
}
