package experiments

import (
	"fmt"
	"io"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/netsim"
	"github.com/seldel/seldel/internal/node"
	"github.com/seldel/seldel/internal/simclock"
)

// runCluster is E11: §IV-B — every node creates summary blocks itself
// ("the block do not need to be propagated by itself"); identical state
// yields bit-identical summaries, and "in case of a failure, the hash of
// the blocks are different, which would result in a fork". Expected
// shape: N honest nodes stay hash-identical across merge cycles; a node
// with corrupted deletion state diverges at the next summary and flags
// itself forked while the majority proceeds.
func runCluster(w io.Writer) error {
	const anchors = 4
	net := netsim.New(netsim.Config{})
	defer net.Close()
	registry := identity.NewRegistry()

	names := make([]string, anchors)
	keys := make(map[string]*identity.KeyPair, anchors)
	for i := range names {
		names[i] = fmt.Sprintf("anchor-%d", i)
		kp := identity.Deterministic(names[i], "seldel-experiments")
		if err := registry.RegisterKey(kp, identity.RoleMaster); err != nil {
			return err
		}
		keys[names[i]] = kp
	}
	userKey := identity.Deterministic("user", "seldel-experiments")
	if err := registry.RegisterKey(userKey, identity.RoleUser); err != nil {
		return err
	}
	quorum, err := consensus.NewQuorum(names)
	if err != nil {
		return err
	}
	nodes := make([]*node.Node, anchors)
	for i, name := range names {
		nodes[i], err = node.New(node.Config{
			Key: keys[name],
			Chain: chain.Config{
				SequenceLength: 3,
				MaxSequences:   2,
				Shrink:         chain.ShrinkAllButNewest,
				Registry:       registry,
				Clock:          simclock.NewLogical(0),
			},
			Quorum:  quorum,
			Network: net,
		})
		if err != nil {
			return err
		}
	}

	drive := func(payload string) error {
		nodes[0].SubmitLocal(block.NewData("user", []byte(payload)).Sign(userKey))
		net.Flush()
		if _, err := nodes[0].Propose(); err != nil {
			return err
		}
		net.Flush()
		return nil
	}

	tw := newTable(w)
	fmt.Fprintln(tw, "round\thead\tidentical_heads\tmarker\tsummaries_built_locally")
	summaries := 0
	for round := 1; round <= 8; round++ {
		if err := drive(fmt.Sprintf("round-%d", round)); err != nil {
			return err
		}
		identical := true
		h := nodes[0].Chain().HeadHash()
		for _, n := range nodes[1:] {
			if n.Chain().HeadHash() != h {
				identical = false
			}
		}
		if nodes[0].Chain().Head().Kind == block.KindSummary {
			summaries++
		}
		fmt.Fprintf(tw, "%d\t%d\t%v\t%d\t%d\n",
			round, nodes[0].Chain().Head().Number, identical, nodes[0].Chain().Marker(), summaries)
		if !identical {
			return fmt.Errorf("honest cluster diverged at round %d", round)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Fault injection: corrupt one node's deletion state.
	fmt.Fprintln(w, "\nfault injection: anchor-3 gets an unauthorized deletion mark")
	nodes[3].CorruptForTest(block.Ref{Block: 7, Entry: 0})
	for round := 9; round <= 12; round++ {
		if err := drive(fmt.Sprintf("round-%d", round)); err != nil {
			return err
		}
	}
	tw = newTable(w)
	fmt.Fprintln(tw, "node\tforked\thead\tmarker")
	for _, n := range nodes {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\n",
			n.Name(), n.Forked(), n.Chain().Head().Number, n.Chain().Marker())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !nodes[3].Forked() {
		return fmt.Errorf("corrupted node failed to detect its fork")
	}
	for _, n := range nodes[:3] {
		if n.Forked() {
			return fmt.Errorf("honest node %s reports forked", n.Name())
		}
	}
	fmt.Fprintln(w, "shape: honest nodes bit-identical every round; the corrupted node's")
	fmt.Fprintln(w, "summary hash loses the quorum vote and it flags itself forked (§IV-B).")
	return nil
}
