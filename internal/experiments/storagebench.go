package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
)

// This file is the storage dimension of `seldel-bench -json` (PR 4):
// it measures the segmented persistent store against the
// one-file-per-block baseline along the three axes the store exists
// for — append throughput under different durability settings,
// restore time from the snapshot checkpoint versus replaying a full
// unbounded history, and bytes physically reclaimed when a deletion
// retires segments.

// StorageResult is one measured storage configuration.
type StorageResult struct {
	// Op is "append", "restore", or "reclaim".
	Op string `json:"op"`
	// Store is "file", "segment", or "segment-syncevery".
	Store string `json:"store"`
	// Detail distinguishes restore sources: "snapshot" (truncated
	// segment store, replay starts at the marker) vs "genesis"
	// (unbounded history, replay starts at block 0).
	Detail string `json:"detail,omitempty"`
	// Blocks is the number of blocks written (append), replayed
	// (restore), or stored before truncation (reclaim).
	Blocks int `json:"blocks"`
	// Seconds is the measured wall-clock time.
	Seconds float64 `json:"seconds,omitempty"`
	// BlocksPerSec is Blocks / Seconds.
	BlocksPerSec float64 `json:"blocks_per_sec,omitempty"`
	// BytesBefore/BytesAfter/BytesReclaimed report the physical store
	// size around a truncation (reclaim rows only).
	BytesBefore    int64 `json:"bytes_before,omitempty"`
	BytesAfter     int64 `json:"bytes_after,omitempty"`
	BytesReclaimed int64 `json:"bytes_reclaimed,omitempty"`
	// Segments is the live segment-file count after the operation
	// (segment stores only).
	Segments int `json:"segments,omitempty"`
}

// storageBlocks builds n hash-linked normal blocks of e signed entries
// each, outside the measured section.
func storageBlocks(kp *identity.KeyPair, n, e int) []*block.Block {
	blocks := make([]*block.Block, 0, n)
	prevHash := block.GenesisPrevHash
	for num := 0; num < n; num++ {
		entries := make([]*block.Entry, e)
		for j := range entries {
			entries[j] = block.NewData(kp.Name(), []byte(fmt.Sprintf("blk-%05d-%02d", num, j))).Sign(kp)
		}
		b := block.NewNormal(uint64(num), uint64(num+1), prevHash, entries)
		prevHash = b.Hash()
		blocks = append(blocks, b)
	}
	return blocks
}

// measureAppend times PutBlock over a prebuilt block sequence.
func measureAppend(name string, s store.Store, blocks []*block.Block) (StorageResult, error) {
	start := time.Now()
	for _, b := range blocks {
		if err := s.PutBlock(b); err != nil {
			return StorageResult{}, fmt.Errorf("storage append (%s): %w", name, err)
		}
	}
	elapsed := time.Since(start).Seconds()
	r := StorageResult{
		Op:           "append",
		Store:        name,
		Blocks:       len(blocks),
		Seconds:      elapsed,
		BlocksPerSec: float64(len(blocks)) / elapsed,
	}
	if seg, ok := s.(*segment.Store); ok {
		r.Segments, _ = seg.SegmentCount()
	}
	return r, nil
}

// measureAppendDimension compares append throughput: one file per block
// (the pre-PR-4 layout) vs segment appends, batched and per-block
// fsync.
func measureAppendDimension(n int) ([]StorageResult, error) {
	kp := identity.Deterministic("storage-bench", "seldel-storage")
	blocks := storageBlocks(kp, n, 4)
	out := make([]StorageResult, 0, 3)

	fileDir, err := os.MkdirTemp("", "seldel-bench-file-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(fileDir)
	fs, err := store.NewFile(fileDir)
	if err != nil {
		return nil, err
	}
	r, err := measureAppend("file", fs, blocks)
	if err != nil {
		return nil, err
	}
	fs.Close()
	out = append(out, r)

	for _, cfg := range []struct {
		name string
		opts segment.Options
	}{
		{"segment", segment.Options{}},
		{"segment-syncevery", segment.Options{SyncEvery: true}},
	} {
		dir, err := os.MkdirTemp("", "seldel-bench-seg-*")
		if err != nil {
			return nil, err
		}
		ss, err := segment.Open(dir, cfg.opts)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		r, err := measureAppend(cfg.name, ss, blocks)
		if err == nil {
			err = ss.Close()
		}
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// storageChainConfig is the restore workload's chain geometry.
func storageChainConfig(reg *identity.Registry, bounded bool) chain.Config {
	cfg := chain.Config{
		SequenceLength: 6,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	if bounded {
		cfg.MaxBlocks = 24
		cfg.Shrink = chain.ShrinkMinimal
	}
	return cfg
}

// runRestoreWorkload writes `rounds` write+delete rounds through a
// chain mirrored into s, waits out compaction, and returns the
// store's peak observed size.
func runRestoreWorkload(reg *identity.Registry, kp *identity.KeyPair, s store.Store, bounded bool, rounds int) (int64, error) {
	cfg := storageChainConfig(reg, bounded)
	c, err := chain.New(cfg)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if _, err := store.Attach(c, s); err != nil {
		return 0, err
	}
	ctx := context.Background()
	var peak int64
	for i := 0; i < rounds; i++ {
		sealed, err := c.SubmitWait(ctx,
			block.NewData(kp.Name(), []byte(fmt.Sprintf("rs-%05d", i))).Sign(kp))
		if err != nil {
			return 0, err
		}
		if _, err := c.SubmitWait(ctx, block.NewDeletion(kp.Name(), sealed[0].Ref).Sign(kp)); err != nil {
			return 0, err
		}
		if i%8 == 7 {
			if err := c.CompactWait(ctx); err != nil {
				return 0, err
			}
			if sz, err := s.SizeBytes(); err == nil && sz > peak {
				peak = sz
			}
		}
	}
	if err := c.CompactWait(ctx); err != nil {
		return 0, err
	}
	if sz, err := s.SizeBytes(); err == nil && sz > peak {
		peak = sz
	}
	return peak, nil
}

// measureRestore times OpenChain over a populated store.
func measureRestore(name, detail string, reg *identity.Registry, s store.Store, bounded bool) (StorageResult, error) {
	cfg := storageChainConfig(reg, bounded)
	cfg.Clock = simclock.NewLogical(0)
	start := time.Now()
	c, _, err := store.OpenChain(cfg, s)
	if err != nil {
		return StorageResult{}, fmt.Errorf("storage restore (%s): %w", detail, err)
	}
	elapsed := time.Since(start).Seconds()
	replayed := int(c.Stats().AppendedBlocks)
	if err := c.Close(); err != nil {
		return StorageResult{}, err
	}
	return StorageResult{
		Op:           "restore",
		Store:        name,
		Detail:       detail,
		Blocks:       replayed,
		Seconds:      elapsed,
		BlocksPerSec: float64(replayed) / elapsed,
	}, nil
}

// measureStorageDimension runs the full storage dimension: append
// throughput, restore from snapshot vs from genesis, and reclaimed
// bytes after a truncating deletion run.
func measureStorageDimension(n int) ([]StorageResult, float64, error) {
	appendN := n / 4
	if appendN < 64 {
		appendN = 64
	}
	out, err := measureAppendDimension(appendN)
	if err != nil {
		return nil, 0, err
	}

	// Restore: the same write+delete workload on a retention-bounded
	// chain (segment store keeps only the live suffix; restore starts
	// at the snapshot checkpoint) vs an unbounded chain (restore
	// replays the full history from genesis).
	reg := identity.NewRegistry()
	kp := identity.Deterministic("storage-restore", "seldel-storage")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		return nil, 0, err
	}
	rounds := n / 4
	if rounds < 96 {
		rounds = 96
	}
	segDir, err := os.MkdirTemp("", "seldel-bench-restore-seg-*")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(segDir)
	segStore, err := segment.Open(segDir, segment.Options{SegmentBytes: 16 << 10})
	if err != nil {
		return nil, 0, err
	}
	peak, err := runRestoreWorkload(reg, kp, segStore, true, rounds)
	if err != nil {
		return nil, 0, err
	}
	final, err := segStore.SizeBytes()
	if err != nil {
		return nil, 0, err
	}
	segsLeft, _ := segStore.SegmentCount()
	liveBlocks := 0
	for _, err := range segStore.Stream() {
		if err != nil {
			return nil, 0, fmt.Errorf("storage reclaim: %w", err)
		}
		liveBlocks++
	}
	out = append(out, StorageResult{
		Op:             "reclaim",
		Store:          "segment",
		Blocks:         liveBlocks,
		BytesBefore:    peak,
		BytesAfter:     final,
		BytesReclaimed: peak - final,
		Segments:       segsLeft,
	})
	snapRestore, err := measureRestore("segment", "snapshot", reg, segStore, true)
	if err != nil {
		return nil, 0, err
	}
	out = append(out, snapRestore)
	if err := segStore.Close(); err != nil {
		return nil, 0, err
	}

	genDir, err := os.MkdirTemp("", "seldel-bench-restore-gen-*")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(genDir)
	genStore, err := segment.Open(genDir, segment.Options{SegmentBytes: 16 << 10})
	if err != nil {
		return nil, 0, err
	}
	if _, err := runRestoreWorkload(reg, kp, genStore, false, rounds); err != nil {
		return nil, 0, err
	}
	genRestore, err := measureRestore("segment", "genesis", reg, genStore, false)
	if err != nil {
		return nil, 0, err
	}
	out = append(out, genRestore)
	if err := genStore.Close(); err != nil {
		return nil, 0, err
	}

	speedup := 0.0
	if snapRestore.Seconds > 0 {
		speedup = genRestore.Seconds / snapRestore.Seconds
	}
	return out, speedup, nil
}
