package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/consensus"
	"github.com/seldel/seldel/internal/simclock"
)

// runConsensus is E12: §V-B.3 — "Any consensus algorithm can be extended
// by the described behavior." The identical summary/deletion extension
// runs over no-op, proof-of-authority, and proof-of-work engines.
// Expected shape: summary content identical across engines; throughput
// dominated by the engine (PoW cost grows ~2^bits); the extension itself
// adds a small, constant overhead per sequence.
func runConsensus(w io.Writer) error {
	const blocks = 120
	e, err := newEnv("writer")
	if err != nil {
		return err
	}
	kp := e.keys["writer"]

	poa, err := consensus.NewAuthority([]string{"writer-node"}, "writer-node")
	if err != nil {
		return err
	}
	engines := []consensus.Engine{
		consensus.NoOp{},
		poa,
		consensus.NewPoW(8),
		consensus.NewPoW(12),
	}

	type outcome struct {
		name         string
		total        time.Duration
		carriedAtEnd int
		marker       uint64
		forgotten    uint64
	}
	var results []outcome
	for _, engine := range engines {
		cfg := chain.Config{
			SequenceLength: 6,
			MaxBlocks:      30,
			Shrink:         chain.ShrinkMinimal,
			Registry:       e.registry,
			Clock:          simclock.NewLogical(0),
		}
		consensus.Configure(&cfg, engine)
		c, err := chain.New(cfg)
		if err != nil {
			return err
		}
		var victim block.Ref
		start := time.Now()
		for i := 0; i < blocks; i++ {
			entry := block.NewData("writer", []byte(fmt.Sprintf("p%d", i))).Sign(kp)
			committed, err := sealBlocks(c, entry)
			if err != nil {
				return err
			}
			if i == 40 {
				victim = block.Ref{Block: committed[0].Header.Number, Entry: 0}
				if _, err := sealBlocks(c,
					block.NewDeletion("writer", victim).Sign(kp)); err != nil {
					return err
				}
			}
		}
		total := time.Since(start)
		carried := 0
		for _, b := range c.Blocks() {
			carried += len(b.Carried)
		}
		results = append(results, outcome{
			name:         engine.Name(),
			total:        total,
			carriedAtEnd: carried,
			marker:       c.Marker(),
			forgotten:    c.Stats().ForgottenEntries,
		})
		_ = c.Close()
	}

	tw := newTable(w)
	fmt.Fprintln(tw, "engine\ttotal_time\tus_per_block\tmarker\tcarried_entries\tforgotten")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%v\t%.0f\t%d\t%d\t%d\n",
			r.name, r.total.Round(time.Millisecond),
			float64(r.total.Microseconds())/float64(blocks),
			r.marker, r.carriedAtEnd, r.forgotten)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// The extension's own behaviour must be engine-independent.
	for _, r := range results[1:] {
		if r.marker != results[0].marker || r.carriedAtEnd != results[0].carriedAtEnd || r.forgotten != results[0].forgotten {
			return fmt.Errorf("extension behaviour differs across engines: %+v vs %+v", results[0], r)
		}
	}
	fmt.Fprintln(w, "shape: identical marker/carried/forgotten columns across engines —")
	fmt.Fprintln(w, "the extension is consensus-independent (§V-B.3); time scales with the")
	fmt.Fprintln(w, "engine alone (pow-12 ≈ 16x pow-8 sealing cost).")
	return nil
}
