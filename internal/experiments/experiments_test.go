package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func runByID(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(&buf, id); err != nil {
		t.Fatalf("Run(%s): %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("%d experiments, want 13 (E1–E12 plus the PR 1 pipeline bench)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("fig7"); !ok {
		t.Error("Lookup(fig7) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if err := Run(&bytes.Buffer{}, "nope"); err == nil {
		t.Error("Run(nope) did not fail")
	}
	if len(IDs()) != 13 {
		t.Error("IDs incomplete")
	}
}

func TestFigure6Output(t *testing.T) {
	out := runByID(t, "fig6")
	for _, want := range []string{
		"m -> 0",     // marker at genesis
		"DEADB",      // genesis prev hash (paper Fig. 6)
		"S2;", "S5;", // two summary blocks
		"login ALPHA", // the three users' logins
		"login BRAVO",
		"login CHARLIE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7Output(t *testing.T) {
	out := runByID(t, "fig7")
	for _, want := range []string{
		"m -> 6",      // marker shifted to block 6 (paper Fig. 7)
		"S8;",         // merging summary
		"3/0@",        // surviving entry with original coordinates
		"forgotten=1", // BRAVO's entry physically gone
		"DEL 3/1",     // the deletion request itself, still live in block 6
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "login BRAVO tty1") {
		t.Errorf("fig7 output still shows the deleted login:\n%s", out)
	}
}

func TestFigure8Output(t *testing.T) {
	out := runByID(t, "fig8")
	if !strings.Contains(out, "m -> 12") {
		t.Errorf("fig8 marker not at 12:\n%s", out)
	}
	if strings.Contains(out, "DEL ") {
		t.Errorf("fig8 still shows a deletion entry:\n%s", out)
	}
	if !strings.Contains(out, "no deletion entry present in any live block — OK") {
		t.Errorf("fig8 check line missing:\n%s", out)
	}
}

func TestGrowthShape(t *testing.T) {
	// E4's headline claim: seldel bounded, plain unbounded.
	small, err := MeasureGrowth(200)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeasureGrowth(800)
	if err != nil {
		t.Fatal(err)
	}
	// Length bound: live blocks never exceed lmax plus the in-progress
	// sequence overshoot (retention applies at summary slots).
	if large.SeldelLiveBlocks > 60+5 {
		t.Errorf("seldel live blocks %d exceed lmax+l-1", large.SeldelLiveBlocks)
	}
	// TTL workload: bytes fully bounded (the §IV-D.4 self-cleaning case).
	if large.SeldelTTLBytes > small.SeldelTTLBytes*2 {
		t.Errorf("seldel TTL bytes grew %d -> %d (not bounded)", small.SeldelTTLBytes, large.SeldelTTLBytes)
	}
	// Durable workload: data accumulates in Σ blocks (§V-B.2) but stays
	// below the plain chain (no per-block overhead for old data).
	if large.SeldelDurableByte >= large.PlainBytes {
		t.Errorf("durable seldel bytes %d not below plain %d", large.SeldelDurableByte, large.PlainBytes)
	}
	// Plain grows linearly: 4x blocks ≈ 4x bytes.
	ratio := float64(large.PlainBytes) / float64(small.PlainBytes)
	if ratio < 3 || ratio > 5 {
		t.Errorf("plain growth ratio %.2f, want ~4", ratio)
	}
	// Local pruning: local bounded, global linear.
	if large.PruneGlobalBytes <= large.PruneLocalBytes {
		t.Error("prune global not larger than local")
	}
	gRatio := float64(large.PruneGlobalBytes) / float64(small.PruneGlobalBytes)
	if gRatio < 3 {
		t.Errorf("prune global growth ratio %.2f, want ~4", gRatio)
	}
	out := runByID(t, "growth")
	if !strings.Contains(out, "sel_live_blocks") {
		t.Error("growth table header missing")
	}
}

func TestAttack51Output(t *testing.T) {
	out := runByID(t, "attack51")
	if !strings.Contains(out, "guarded(z=12)") {
		t.Errorf("attack table missing guarded depth column:\n%s", out)
	}
	if !strings.Contains(out, "0.51") {
		t.Error("majority row missing")
	}
}

func TestSumCostOutput(t *testing.T) {
	out := runByID(t, "sumcost")
	for _, want := range []string{"full_copy_bytes", "hash_ref_bytes", "packaging"} {
		if !strings.Contains(out, want) {
			t.Errorf("sumcost output missing %q", want)
		}
	}
}

func TestDelCostOutput(t *testing.T) {
	out := runByID(t, "delcost")
	if !strings.Contains(out, "direct_lookup_ns") {
		t.Errorf("delcost table missing:\n%s", out)
	}
}

func TestDelayOutput(t *testing.T) {
	out := runByID(t, "delay")
	for _, want := range []string{"delete_delay_blocks", "filler-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("delay output missing %q:\n%s", want, out)
		}
	}
}

func TestTTLOutput(t *testing.T) {
	out := runByID(t, "ttl")
	if !strings.Contains(out, "still alive (MUST be 0)\t0") &&
		!strings.Contains(out, "still alive (MUST be 0)  0") {
		t.Errorf("ttl output shows surviving expired entries:\n%s", out)
	}
}

func TestBaselinesOutput(t *testing.T) {
	out := runByID(t, "baselines")
	for _, want := range []string{"selective deletion (ours)", "hard fork", "chameleon", "local pruning"} {
		if !strings.Contains(out, want) {
			t.Errorf("baselines output missing %q", want)
		}
	}
}

func TestClusterOutput(t *testing.T) {
	out := runByID(t, "cluster")
	for _, want := range []string{"identical_heads", "fault injection", "anchor-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}
}

func TestConsensusOutput(t *testing.T) {
	out := runByID(t, "consensus")
	for _, want := range []string{"noop", "poa", "pow-8", "pow-12"} {
		if !strings.Contains(out, want) {
			t.Errorf("consensus output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), "=== "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Wall-time columns vary; the figure outputs must be bit-identical.
	for _, id := range []string{"fig6", "fig7", "fig8", "growth", "ttl"} {
		a := runByID(t, id)
		b := runByID(t, id)
		if a != b {
			t.Errorf("%s output not deterministic", id)
		}
	}
}

func TestPipelineBenchStructure(t *testing.T) {
	report, err := RunPipelineBench(160)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 4 {
		t.Fatalf("%d results, want 4 (serial@1, submit@1/4/16)", len(report.Results))
	}
	if report.Results[0].API != "serial" || report.Results[0].Producers != 1 {
		t.Errorf("first result must be the serial baseline, got %+v", report.Results[0])
	}
	wantProducers := []int{1, 1, 4, 16}
	for i, r := range report.Results {
		if r.Entries != 160 || r.OpsPerSec <= 0 || r.Blocks == 0 {
			t.Errorf("result %d implausible: %+v", i, r)
		}
		if r.Producers != wantProducers[i] {
			t.Errorf("result %d producers = %d, want %d", i, r.Producers, wantProducers[i])
		}
	}
	// Concurrent submission must coalesce: strictly fewer blocks than the
	// one-block-per-entry serial baseline.
	if last := report.Results[3]; last.Blocks >= report.Results[0].Blocks {
		t.Errorf("submit@16 did not batch: %d blocks vs serial's %d", last.Blocks, report.Results[0].Blocks)
	}
	// The deletion-lifecycle dimension must cover 1/4/16 producers, have
	// actually compacted, and have physically forgotten what it deleted.
	if len(report.DeletionResults) != 3 {
		t.Fatalf("%d deletion results, want 3", len(report.DeletionResults))
	}
	for i, r := range report.DeletionResults {
		if r.Producers != wantProducers[i+1] {
			t.Errorf("deletion result %d producers = %d, want %d", i, r.Producers, wantProducers[i+1])
		}
		if r.Deletions == 0 || r.DeletionsPerSec <= 0 {
			t.Errorf("deletion result %d implausible: %+v", i, r)
		}
		if r.Truncations == 0 || r.BlocksCompacted == 0 {
			t.Errorf("deletion result %d never compacted: %+v", i, r)
		}
		if r.Forgotten == 0 {
			t.Errorf("deletion result %d forgot nothing: %+v", i, r)
		}
	}
	// The cluster dimension must cover 3/7/15 nodes plus the 50-node
	// WAN row, replicate at a positive rate, and drive its deletion to
	// physical convergence.
	if len(report.ClusterResults) != 4 {
		t.Fatalf("%d cluster results, want 4", len(report.ClusterResults))
	}
	wantNodes := []int{3, 7, 15, 50}
	for i, r := range report.ClusterResults {
		if r.Nodes != wantNodes[i] {
			t.Errorf("cluster result %d nodes = %d, want %d", i, r.Nodes, wantNodes[i])
		}
		if r.Blocks == 0 || r.BlocksPerSec <= 0 {
			t.Errorf("cluster result %d implausible: %+v", i, r)
		}
		if r.DeletionRounds == 0 || r.DeletionConvergeMillis <= 0 {
			t.Errorf("cluster result %d deletion never converged: %+v", i, r)
		}
	}
	// The manifest dimension must pair an off/on lifecycle run with a
	// proofs row, each having sealed records at a positive rate, and
	// the headline gate metric must mirror the proofs row.
	if len(report.ManifestResults) != 3 {
		t.Fatalf("%d manifest results, want 3", len(report.ManifestResults))
	}
	wantManifest := []struct {
		op      string
		enabled bool
	}{{"lifecycle", false}, {"lifecycle", true}, {"proofs", true}}
	for i, r := range report.ManifestResults {
		if r.Op != wantManifest[i].op || r.Manifest != wantManifest[i].enabled {
			t.Errorf("manifest result %d = %s/%v, want %s/%v",
				i, r.Op, r.Manifest, wantManifest[i].op, wantManifest[i].enabled)
		}
		if r.Rounds == 0 || r.RatePerSec <= 0 || r.Records == 0 {
			t.Errorf("manifest result %d implausible: %+v", i, r)
		}
	}
	if report.TombstoneProofsPerSec != report.ManifestResults[2].RatePerSec {
		t.Errorf("headline proofs rate %f does not mirror proofs row %f",
			report.TombstoneProofsPerSec, report.ManifestResults[2].RatePerSec)
	}
	// The partition dimension must cover 1/2/4 sub-chains at 16
	// producers, and the headline scaling factor must mirror the rows.
	if len(report.PartitionResults) != 3 {
		t.Fatalf("%d partition results, want 3", len(report.PartitionResults))
	}
	wantParts := []int{1, 2, 4}
	for i, r := range report.PartitionResults {
		if r.Partitions != wantParts[i] {
			t.Errorf("partition result %d partitions = %d, want %d", i, r.Partitions, wantParts[i])
		}
		if r.Producers != 16 || r.Entries == 0 || r.OpsPerSec <= 0 {
			t.Errorf("partition result %d implausible: %+v", i, r)
		}
	}
	if want := report.PartitionResults[2].OpsPerSec / report.PartitionResults[0].OpsPerSec; report.PartitionScaling4x != want {
		t.Errorf("scaling headline %f does not mirror rows (%f)", report.PartitionScaling4x, want)
	}
}

func TestPipelineJSONWritten(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if _, err := WritePipelineJSON(path, 64); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report PipelineReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if report.Bench != "submission-pipeline" || len(report.Results) != 4 {
		t.Errorf("unexpected report: %+v", report)
	}
}
