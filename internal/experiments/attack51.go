package experiments

import (
	"fmt"
	"io"

	"github.com/seldel/seldel/internal/attack"
)

// runAttack51 is E5: Fig. 9 quantified. On a conventional chain an
// attacker rewriting the newest block needs to win a depth-1 race; with
// the summary-block redundancy reference every entry older than lβ/2 has
// at least lβ/2 confirmations, so the race depth is lβ/2. Expected
// shape: success probability decays exponentially with depth, so the
// guarded column is orders of magnitude below the plain column for every
// minority attacker, and both hit 1.0 at q ≥ 0.5 (the concept hampers,
// not prevents, majority attacks).
func runAttack51(w io.Writer) error {
	const (
		liveLen = 24 // lβ → guarded depth 12
		trials  = 30_000
		seed    = 2020
	)
	powers := []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.45, 0.51}
	rows, err := attack.CompareDepths(powers, liveLen, trials, seed)
	if err != nil {
		return err
	}
	tw := newTable(w)
	fmt.Fprintf(tw, "q\tplain(z=1) analytic\tplain sim\tguarded(z=%d) analytic\tguarded sim\tprotection×\n",
		rows[0].GuardedDepth)
	for _, r := range rows {
		protection := "∞"
		if r.GuardedAnalytic > 0 {
			protection = fmt.Sprintf("%.3g", r.PlainAnalytic/r.GuardedAnalytic)
		}
		fmt.Fprintf(tw, "%.2f\t%.6f\t%.6f\t%.3g\t%.6f\t%s\n",
			r.Power, r.PlainAnalytic, r.PlainSimulated, r.GuardedAnalytic, r.GuardedSim, protection)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape: exponential decay in depth; guarded column ~ (q/(1-q))^12;")
	fmt.Fprintln(w, "at q>=0.5 both reach 1.0 — Σ-redundancy hampers, not prevents (§V-B.1).")

	// Nakamoto confirmation-count view: how deep must an entry be buried
	// for <0.1% success, with and without the redundancy floor.
	fmt.Fprintln(w, "\nconfirmations needed for <0.1% attacker success (Nakamoto):")
	tw = newTable(w)
	fmt.Fprintln(tw, "q\tz(plain required)\tz(guaranteed by Σ-ref at lβ=24)")
	for _, q := range []float64{0.10, 0.20, 0.30, 0.40} {
		z := 0
		for z = 1; z < 1_000; z++ {
			if attack.NakamotoSuccessProbability(q, z) < 0.001 {
				break
			}
		}
		fmt.Fprintf(tw, "%.2f\t%d\t%d\n", q, z, attack.RequiredRewriteDepth(liveLen, true))
	}
	return tw.Flush()
}
