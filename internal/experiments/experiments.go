// Package experiments regenerates every figure and quantitative claim of
// the paper's evaluation (see DESIGN.md §4 for the full index E1–E12).
// Each experiment is deterministic: fixed seeds, logical clocks, and
// deterministic keys, so repeated runs print identical tables.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the short name used by `seldel-bench -run <id>`.
	ID string
	// Title is a one-line description.
	Title string
	// Paper names the artefact reproduced (figure/section).
	Paper string
	// Run executes the experiment, writing its table/figure to w.
	Run func(w io.Writer) error
}

// All returns every experiment in index order (E1–E12).
func All() []Experiment {
	return []Experiment{
		{ID: "fig6", Title: "Console state after three logins", Paper: "Fig. 6", Run: runFig6},
		{ID: "fig7", Title: "Deletion request, merge, marker shift", Paper: "Fig. 7", Run: runFig7},
		{ID: "fig8", Title: "One cycle ahead: deletion request forgotten", Paper: "Fig. 8", Run: runFig8},
		{ID: "growth", Title: "Bounded vs. unbounded chain growth", Paper: "§I, §V-A, Eq. 1", Run: runGrowth},
		{ID: "attack51", Title: "Majority-attack success vs. rewrite depth", Paper: "Fig. 9, §V-B.1", Run: runAttack51},
		{ID: "sumcost", Title: "Summary-block creation cost", Paper: "§V-B.2", Run: runSumCost},
		{ID: "delcost", Title: "Deletion-request processing cost vs. chain length", Paper: "§IV-D", Run: runDelCost},
		{ID: "delay", Title: "Delayed-deletion latency vs. lmax and l", Paper: "§IV-D.3, Eq. 1", Run: runDelay},
		{ID: "ttl", Title: "Temporary entries expire at summarization", Paper: "§IV-D.4", Run: runTTL},
		{ID: "baselines", Title: "Redaction effort: ours vs. chameleon vs. hard fork", Paper: "§III", Run: runBaselines},
		{ID: "cluster", Title: "Summary determinism and fork detection across nodes", Paper: "§IV-B", Run: runCluster},
		{ID: "consensus", Title: "Engine independence and extension overhead", Paper: "§V-B.3", Run: runConsensus},
		{ID: "pipeline", Title: "Submission-pipeline, verify, and deletion-lifecycle throughput", Paper: "PR 1-3", Run: runPipeline},
	}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted by index order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// Run executes one experiment by id.
func Run(w io.Writer, id string) error {
	e, ok := Lookup(id)
	if !ok {
		ids := IDs()
		sort.Strings(ids)
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
	}
	fmt.Fprintf(w, "=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
	return e.Run(w)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// env is the deterministic participant setup shared by experiments.
type env struct {
	registry *identity.Registry
	keys     map[string]*identity.KeyPair
}

// newEnv registers the given users (plus roles by well-known names).
func newEnv(users ...string) (*env, error) {
	e := &env{
		registry: identity.NewRegistry(),
		keys:     make(map[string]*identity.KeyPair),
	}
	for _, u := range users {
		kp := identity.Deterministic(u, "seldel-experiments")
		role := identity.RoleUser
		if u == "admin" {
			role = identity.RoleAdmin
		}
		if err := e.registry.RegisterKey(kp, role); err != nil {
			return nil, err
		}
		e.keys[u] = kp
	}
	return e, nil
}

// paperChain builds the evaluation-scenario chain (l=3, 2 sequences,
// merge-all policy) with a fresh logical clock.
func (e *env) paperChain() (*chain.Chain, error) {
	return chain.New(chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Shrink:         chain.ShrinkAllButNewest,
		Registry:       e.registry,
		Clock:          simclock.NewLogical(0),
	})
}

// sealBlocks is the deterministic drivers' synchronous write: one
// block per call through the submission pipeline, plus any due summary
// (chain.SealBlocks), so experiment output stays reproducible.
func sealBlocks(c *chain.Chain, entries ...*block.Entry) ([]*block.Block, error) {
	return chain.SealBlocks(context.Background(), c, entries...)
}

// newTable returns a tabwriter suitable for aligned experiment tables.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
