package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/seldel/seldel/internal/baseline"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/simclock"
)

// runBaselines is E10: deletion effort and trust model across the
// related-work families of §III. Expected shape: chameleon redaction is
// O(1) but needs a global trapdoor (undetectable rewrites by its
// holder); hard forks cost O(chain length) per deletion and change the
// head (forced migration); selective deletion costs one entry plus
// bounded merge work and needs only the owner's signature, with global
// physical deletion after the retention delay.
func runBaselines(w io.Writer) error {
	const chainLen = 300
	e, err := newEnv("owner")
	if err != nil {
		return err
	}
	kp := e.keys["owner"]

	// --- Selective deletion (ours) -----------------------------------
	sel, err := chain.New(chain.Config{
		SequenceLength: 6,
		MaxBlocks:      60,
		Shrink:         chain.ShrinkMinimal,
		Registry:       e.registry,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		return err
	}
	defer sel.Close()
	var victims []block.Ref
	for i := 0; i < chainLen; i++ {
		blocks, err := sealBlocks(sel,
			block.NewData("owner", []byte(fmt.Sprintf("data-%d", i))).Sign(kp))
		if err != nil {
			return err
		}
		victims = append(victims, block.Ref{Block: blocks[0].Header.Number, Entry: 0})
	}
	victim := victims[len(victims)-10]
	start := time.Now()
	if _, err := sealBlocks(sel, block.NewDeletion("owner", victim).Sign(kp)); err != nil {
		return err
	}
	selRequest := time.Since(start)
	driveBlocks := 0
	for {
		if _, _, ok := sel.Lookup(victim); !ok {
			break
		}
		if _, err := sel.AppendEmpty(); err != nil {
			return err
		}
		driveBlocks++
	}

	// --- Hard fork -----------------------------------------------------
	hf := baseline.NewHardFork()
	for i := 0; i < chainLen; i++ {
		hf.Append([]*block.Entry{block.NewData("owner", []byte(fmt.Sprintf("data-%d", i))).Sign(kp)})
	}
	// Delete an EARLY entry: the hard fork must rebuild nearly the whole
	// history ("very time inefficient", §III).
	start = time.Now()
	rebuilt, err := hf.Delete(block.Ref{Block: 10, Entry: 0})
	if err != nil {
		return err
	}
	hfDur := time.Since(start)

	// --- Chameleon hash -------------------------------------------------
	key, err := baseline.GenerateChameleonKey()
	if err != nil {
		return err
	}
	cham := baseline.NewChameleonChain(key)
	for i := 0; i < chainLen; i++ {
		if _, err := cham.Append([]byte(fmt.Sprintf("data-%d", i))); err != nil {
			return err
		}
	}
	start = time.Now()
	if err := cham.Redact(10, []byte("REDACTED")); err != nil {
		return err
	}
	chamDur := time.Since(start)

	tw := newTable(w)
	fmt.Fprintln(tw, "system\tper-deletion work\twall time\tauthorization\tglobally deleted\tside effects")
	fmt.Fprintf(tw, "selective deletion (ours)\t1 request entry + bounded merge\t%v (+%d filler blocks to physical cut)\towner signature + quorum\tyes, after retention delay\tnone (refs stay valid)\n",
		selRequest.Round(time.Microsecond), driveBlocks)
	fmt.Fprintf(tw, "hard fork [21]\trebuild %d blocks\t%v\tout-of-band community decision\tyes, if ALL nodes migrate\thead hash changes; full re-sync\n",
		rebuilt, hfDur.Round(time.Microsecond))
	fmt.Fprintf(tw, "chameleon hash [21-23]\tO(1) trapdoor collision\t%v\ttrapdoor holder ONLY (any block, undetectable)\trewrite, not deletion\tglobal trust in trapdoor\n",
		chamDur.Round(time.Microsecond))
	fmt.Fprintf(tw, "local pruning [20]\tlocal disk op\t~0\tnone\tno — network keeps data\tnone\n")
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape: chameleon is fastest but centralizes rewrite power (§III:")
	fmt.Fprintln(w, "'leave the responsibility with the key owners'); hard fork scales with")
	fmt.Fprintln(w, "history; ours pays a bounded, decentralized, authorized delay.")
	return nil
}
