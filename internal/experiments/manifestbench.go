package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
)

// This file is the deletion-manifest dimension of `seldel-bench -json`
// (PR 6): it prices the durable audit trail. The lifecycle rows run the
// same write+delete+compact workload against a segment store with the
// DELETIONS log enabled and disabled, so the delta is the fsynced
// record append on every marker shift. The proofs row measures the
// audit-query side: tombstone proofs built by ProveDeleted and checked
// by Verify, per second, over a chain whose deletions have already
// compacted away.

// ManifestResult is one measured manifest configuration.
type ManifestResult struct {
	// Op is "lifecycle" (write+delete rounds against a persistent
	// store) or "proofs" (ProveDeleted+Verify over sealed tombstones).
	Op string `json:"op"`
	// Manifest reports whether the durable deletion manifest was
	// enabled; always true for proofs rows.
	Manifest bool `json:"manifest"`
	// Rounds is the number of write+delete rounds driven (lifecycle)
	// or proofs built and verified (proofs).
	Rounds int `json:"rounds"`
	// Records is the number of deletion records the chain sealed.
	Records int `json:"records"`
	// Seconds is the measured wall-clock time.
	Seconds float64 `json:"seconds"`
	// RatePerSec is Rounds / Seconds.
	RatePerSec float64 `json:"rate_per_sec"`
}

// manifestChain builds a bounded chain over a segment store in a fresh
// temp dir. Callers must call the returned cleanup.
func manifestChain(enabled bool) (*chain.Chain, func(), error) {
	reg := identity.NewRegistry()
	kp := identity.Deterministic("manifest-bench", "seldel-manifest")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "seldel-bench-manifest-*")
	if err != nil {
		return nil, nil, err
	}
	ss, err := segment.Open(dir, segment.Options{DisableManifest: !enabled})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	c, err := chain.New(chain.Config{
		SequenceLength: 6,
		MaxBlocks:      24,
		Shrink:         chain.ShrinkMinimal,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		ss.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		c.Close()
		ss.Close()
		os.RemoveAll(dir)
	}
	if _, err := store.Attach(c, ss); err != nil {
		cleanup()
		return nil, nil, err
	}
	return c, cleanup, nil
}

// driveManifestRounds runs write+delete rounds on c, compacting every
// eighth round, and returns the refs of the entries it deleted.
func driveManifestRounds(c *chain.Chain, rounds int) ([]block.Ref, error) {
	kp := identity.Deterministic("manifest-bench", "seldel-manifest")
	ctx := context.Background()
	refs := make([]block.Ref, 0, rounds)
	for i := 0; i < rounds; i++ {
		sealed, err := c.SubmitWait(ctx,
			block.NewData(kp.Name(), []byte(fmt.Sprintf("mb-%05d", i))).Sign(kp))
		if err != nil {
			return nil, err
		}
		refs = append(refs, sealed[0].Ref)
		if _, err := c.SubmitWait(ctx, block.NewDeletion(kp.Name(), sealed[0].Ref).Sign(kp)); err != nil {
			return nil, err
		}
		if i%8 == 7 {
			if err := c.CompactWait(ctx); err != nil {
				return nil, err
			}
		}
	}
	if err := c.CompactWait(ctx); err != nil {
		return nil, err
	}
	return refs, nil
}

// measureManifestLifecycle times the write+delete workload with the
// durable manifest on or off; the on/off rate ratio is the audit
// trail's append overhead.
func measureManifestLifecycle(rounds int, enabled bool) (ManifestResult, error) {
	c, cleanup, err := manifestChain(enabled)
	if err != nil {
		return ManifestResult{}, err
	}
	defer cleanup()
	start := time.Now()
	if _, err := driveManifestRounds(c, rounds); err != nil {
		return ManifestResult{}, fmt.Errorf("manifest lifecycle (manifest=%v): %w", enabled, err)
	}
	elapsed := time.Since(start).Seconds()
	recs, err := c.Tombstones(context.Background())
	if err != nil {
		return ManifestResult{}, err
	}
	return ManifestResult{
		Op:         "lifecycle",
		Manifest:   enabled,
		Rounds:     rounds,
		Records:    len(recs),
		Seconds:    elapsed,
		RatePerSec: float64(rounds) / elapsed,
	}, nil
}

// measureTombstoneProofs builds a compacted chain, then times
// ProveDeleted+Verify cycles over its tombstoned entries — the
// audit-query hot loop.
func measureTombstoneProofs(n int) (ManifestResult, error) {
	c, cleanup, err := manifestChain(true)
	if err != nil {
		return ManifestResult{}, err
	}
	defer cleanup()
	refs, err := driveManifestRounds(c, 48)
	if err != nil {
		return ManifestResult{}, fmt.Errorf("manifest proofs setup: %w", err)
	}
	// Keep the refs whose deletions have compacted into a record;
	// entries still ahead of the marker have no tombstone yet.
	proved := refs[:0]
	for _, ref := range refs {
		if _, err := c.ProveDeleted(ref); err == nil {
			proved = append(proved, ref)
		}
	}
	if len(proved) == 0 {
		return ManifestResult{}, fmt.Errorf("manifest proofs: no tombstoned entries after %d rounds", len(refs))
	}
	recs, err := c.Tombstones(context.Background())
	if err != nil {
		return ManifestResult{}, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		p, err := c.ProveDeleted(proved[i%len(proved)])
		if err != nil {
			return ManifestResult{}, fmt.Errorf("manifest proofs: %w", err)
		}
		if err := p.Verify(); err != nil {
			return ManifestResult{}, fmt.Errorf("manifest proofs: verify: %w", err)
		}
	}
	elapsed := time.Since(start).Seconds()
	return ManifestResult{
		Op:         "proofs",
		Manifest:   true,
		Rounds:     n,
		Records:    len(recs),
		Seconds:    elapsed,
		RatePerSec: float64(n) / elapsed,
	}, nil
}

// measureManifestDimension runs the lifecycle pair and the proof loop;
// the returned rate is the proofs row's RatePerSec, the headline
// audit-query metric guarded by the bench gate.
func measureManifestDimension(n int) ([]ManifestResult, float64, error) {
	rounds := n / 8
	if rounds < 24 {
		rounds = 24
	}
	out := make([]ManifestResult, 0, 3)
	for _, enabled := range []bool{false, true} {
		r, err := measureManifestLifecycle(rounds, enabled)
		if err != nil {
			return nil, 0, fmt.Errorf("manifest dimension: %w", err)
		}
		out = append(out, r)
	}
	pr, err := measureTombstoneProofs(n)
	if err != nil {
		return nil, 0, fmt.Errorf("manifest dimension: %w", err)
	}
	out = append(out, pr)
	return out, pr.RatePerSec, nil
}
