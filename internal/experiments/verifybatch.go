package experiments

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"github.com/seldel/seldel/internal/identity"
)

// This file is the batch-verification dimension of `seldel-bench -json`
// (PR 7): raw signature-check throughput through the per-signature path
// versus the accumulate-then-verify Batch, under the traffic shapes the
// chain actually sees. The "single" row is the floor — one cache-less
// VerifySig per signature, the cost a naive verifier pays. Batch rows
// run the deployed machinery (cache screen, in-batch dedup, chunked
// aggregate verify) against workloads with a warm fraction (mempool
// Warm pre-verified the entries before sealing re-checks them) and a
// duplicate fraction (gossip re-delivers the same signed entry within
// one intake batch). Cold distinct-signature batches are expected to
// sit near 1.0x — Ed25519 dominates and the batch then only amortizes
// dispatch — and are reported as-is; the speedups come from the screen
// and the dedup, which only the batch path can apply wholesale.

// BatchVerifyResult is one measured batch-verification configuration.
type BatchVerifyResult struct {
	// Mode is "single" (per-signature VerifySig, cache off) or "batch"
	// (Batch accumulate-then-verify, cache on).
	Mode string `json:"mode"`
	// BatchSize is the signatures accumulated per Verify call (1 for
	// the single row).
	BatchSize int `json:"batch_size"`
	// WarmFrac is the fraction of the workload pre-verified into the
	// cache before the measured section (0 = cold).
	WarmFrac float64 `json:"warm_frac"`
	// DupFrac is the fraction of each batch that repeats an earlier
	// tuple of the same batch (gossip re-delivery).
	DupFrac float64 `json:"dup_frac"`
	// Sigs is the number of signature checks resolved in the measured
	// section.
	Sigs int `json:"sigs"`
	// Verified / CacheHits are the pool's counters over the measured
	// section: curve operations actually paid and checks answered by
	// the cache screen.
	Verified  uint64 `json:"verified"`
	CacheHits uint64 `json:"cache_hits"`
	// Seconds / SigsPerSec time the measured section.
	Seconds    float64 `json:"seconds"`
	SigsPerSec float64 `json:"sigs_per_sec"`
	// Speedup is SigsPerSec over the single row's.
	Speedup float64 `json:"speedup,omitempty"`
}

// batchSig is one pre-signed check of the bench workload.
type batchSig struct {
	pub ed25519.PublicKey
	msg []byte
	sig []byte
}

// batchVerifySigs pre-signs n distinct messages across 32 deterministic
// signers, keeping signing cost out of every measured section.
func batchVerifySigs(n int) []batchSig {
	const signers = 32
	keys := make([]*identity.KeyPair, signers)
	for i := range keys {
		keys[i] = identity.Deterministic(fmt.Sprintf("batch-signer-%d", i), "seldel-experiments")
	}
	out := make([]batchSig, n)
	for i := range out {
		kp := keys[i%signers]
		msg := []byte(fmt.Sprintf("batch-load-%06d", i))
		out[i] = batchSig{pub: kp.Public(), msg: msg, sig: kp.Sign(msg)}
	}
	return out
}

// batchVerifyConfigs are the measured configurations. batch=16 matches
// the chunk size (one aggregate call per batch); batch=64 is the
// restore/intake shape (several chunks fan out per batch).
var batchVerifyConfigs = []struct {
	mode  string
	batch int
	warm  float64
	dup   float64
}{
	{"single", 1, 0, 0},
	{"batch", 16, 0, 0},
	{"batch", 64, 0, 0},
	{"batch", 16, 0.5, 0},
	{"batch", 64, 0.5, 0},
	{"batch", 64, 0, 0.5},
}

// runBatchVerify drives one configuration once and returns the row.
// The pool is fresh per run so no configuration inherits another's
// cache; the warm fraction is re-verified into it before timing starts.
func runBatchVerify(sigs []batchSig, mode string, batchSize int, warm, dup float64) (BatchVerifyResult, error) {
	pool := freshPool(0, mode != "single")
	defer pool.Close()
	warmN := int(warm * float64(len(sigs)))
	for _, s := range sigs[:warmN] {
		if !pool.VerifySig(s.pub, s.msg, s.sig) {
			return BatchVerifyResult{}, fmt.Errorf("verifybatch: warm signature rejected")
		}
	}
	s0 := pool.Stats()
	var n int
	start := time.Now()
	switch mode {
	case "single":
		for _, s := range sigs {
			if !pool.VerifySig(s.pub, s.msg, s.sig) {
				return BatchVerifyResult{}, fmt.Errorf("verifybatch: single-path signature rejected")
			}
			n++
		}
	case "batch":
		// dup > 0 replaces the tail of each batch with re-deliveries of
		// its own head, keeping the adds-per-batch constant.
		fresh := batchSize - int(dup*float64(batchSize))
		for lo := 0; lo < len(sigs); lo += fresh {
			hi := lo + fresh
			if hi > len(sigs) {
				hi = len(sigs)
			}
			b := pool.NewBatch(batchSize)
			for _, s := range sigs[lo:hi] {
				b.Add(s.pub, s.msg, s.sig)
			}
			for i := b.Len(); i < batchSize && dup > 0; i++ {
				s := sigs[lo+i%(hi-lo)]
				b.Add(s.pub, s.msg, s.sig)
			}
			n += b.Len()
			for i, ok := range b.Verify() {
				if !ok {
					return BatchVerifyResult{}, fmt.Errorf("verifybatch: batch signature %d rejected", i)
				}
			}
		}
	default:
		return BatchVerifyResult{}, fmt.Errorf("verifybatch: unknown mode %q", mode)
	}
	elapsed := time.Since(start).Seconds()
	s1 := pool.Stats()
	return BatchVerifyResult{
		Mode:       mode,
		BatchSize:  batchSize,
		WarmFrac:   warm,
		DupFrac:    dup,
		Sigs:       n,
		Verified:   s1.Verified - s0.Verified,
		CacheHits:  s1.CacheHits - s0.CacheHits,
		Seconds:    elapsed,
		SigsPerSec: float64(n) / elapsed,
	}, nil
}

// measureBatchVerifyDimension runs every configuration best-of-three
// over n signatures and returns the rows plus the headline speedup:
// the 16-signature warm-0.5 batch over the single row — the production
// shape (mempool-warmed sealing validation) at the acceptance bar's
// minimum batch width.
func measureBatchVerifyDimension(n int) ([]BatchVerifyResult, float64, error) {
	sigs := batchVerifySigs(n)
	out := make([]BatchVerifyResult, 0, len(batchVerifyConfigs))
	var single float64
	var headline float64
	for _, cfg := range batchVerifyConfigs {
		var best BatchVerifyResult
		for i := 0; i < 3; i++ {
			r, err := runBatchVerify(sigs, cfg.mode, cfg.batch, cfg.warm, cfg.dup)
			if err != nil {
				return nil, 0, err
			}
			if r.SigsPerSec > best.SigsPerSec {
				best = r
			}
		}
		if cfg.mode == "single" {
			single = best.SigsPerSec
		}
		if single > 0 {
			best.Speedup = best.SigsPerSec / single
		}
		if cfg.mode == "batch" && cfg.batch == 16 && cfg.warm == 0.5 {
			headline = best.Speedup
		}
		out = append(out, best)
	}
	return out, headline, nil
}
