package experiments

import (
	"fmt"
	"io"

	"github.com/seldel/seldel/internal/baseline"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

// runGrowth is E4: the growth problem of §I quantified.
//
// The concept bounds the chain LENGTH (Eq. 1): live blocks never exceed
// lmax. Retained durable data still accumulates inside summary blocks —
// exactly the effect §V-B.2 discusses ("by adding up the information in
// summary blocks, they become larger over time") — so E4 shows both
// workloads: durable entries (blocks bounded, bytes grow more slowly
// than the plain chain) and retention-limited entries (temporary TTLs,
// §IV-D.4: bytes fully bounded, the self-cleaning case motivating the
// logging scenario). The plain chain and the global view of a
// locally-pruning node grow linearly without bound.
func runGrowth(w io.Writer) error {
	const (
		totalBlocks  = 1200
		sampleEvery  = 150
		payloadBytes = 96
		ttlWindow    = 120 // logical retention for the TTL workload
	)
	e, err := newEnv("writer")
	if err != nil {
		return err
	}
	kp := e.keys["writer"]

	mkChain := func() (*chain.Chain, error) {
		return chain.New(chain.Config{
			SequenceLength: 6,
			MaxBlocks:      60,
			Shrink:         chain.ShrinkMinimal,
			Registry:       e.registry,
			Clock:          simclock.NewLogical(0),
		})
	}
	selDurable, err := mkChain()
	if err != nil {
		return err
	}
	defer selDurable.Close()
	selTTL, err := mkChain()
	if err != nil {
		return err
	}
	defer selTTL.Close()
	plain := baseline.NewPlain()
	pruned := baseline.NewLocalPrune(60)

	payload := func(i int) []byte {
		p := make([]byte, payloadBytes)
		for k := range p {
			p[k] = byte(i + k)
		}
		return p
	}

	tw := newTable(w)
	fmt.Fprintln(tw, "appended\tsel_live_blocks\tsel_durable_bytes\tsel_ttl_bytes\tplain_bytes\tprune_local\tprune_global")
	for i := 1; i <= totalBlocks; i++ {
		durable := block.NewData("writer", payload(i)).Sign(kp)
		if _, err := sealBlocks(selDurable, durable); err != nil {
			return err
		}
		ttlEntry := block.NewTemporary("writer", payload(i), 0, selTTL.NextNumber()+ttlWindow).Sign(kp)
		if _, err := sealBlocks(selTTL, ttlEntry); err != nil {
			return err
		}
		plain.Append([]*block.Entry{durable})
		pruned.Append([]*block.Entry{durable})
		if i%sampleEvery == 0 {
			sd, st := selDurable.Stats(), selTTL.Stats()
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				i, sd.LiveBlocks, sd.LiveBytes, st.LiveBytes, plain.Bytes(),
				pruned.LocalBytes(), pruned.GlobalBytes())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	sd, st := selDurable.Stats(), selTTL.Stats()
	fmt.Fprintf(w, "durable: appended=%d cut=%d live_blocks=%d (length bound lmax=60 holds)\n",
		sd.AppendedBlocks, sd.CutBlocks, sd.LiveBlocks)
	fmt.Fprintf(w, "ttl:     expired=%d live_bytes bounded by the %d-block retention window\n",
		st.ExpiredEntries, ttlWindow)
	fmt.Fprintln(w, "shape: chain LENGTH bounded in both variants (Eq. 1); retained durable")
	fmt.Fprintln(w, "data accumulates in Σ blocks (§V-B.2) yet stays below the plain chain;")
	fmt.Fprintln(w, "with retention TTLs bytes are fully bounded; plain & prune-global linear.")
	return nil
}

// GrowthSummary is the machine-readable result used by tests.
type GrowthSummary struct {
	SeldelLiveBlocks  int
	SeldelDurableByte int64
	SeldelTTLBytes    int64
	PlainBytes        int64
	PruneLocalBytes   int64
	PruneGlobalBytes  int64
}

// MeasureGrowth runs a compact version of E4 and returns the end state
// (used by tests and the benchmark harness).
func MeasureGrowth(totalBlocks int) (GrowthSummary, error) {
	var out GrowthSummary
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "seldel-experiments")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		return out, err
	}
	mkChain := func() (*chain.Chain, error) {
		return chain.New(chain.Config{
			SequenceLength: 6,
			MaxBlocks:      60,
			Shrink:         chain.ShrinkMinimal,
			Registry:       reg,
			Clock:          simclock.NewLogical(0),
		})
	}
	selDurable, err := mkChain()
	if err != nil {
		return out, err
	}
	defer selDurable.Close()
	selTTL, err := mkChain()
	if err != nil {
		return out, err
	}
	defer selTTL.Close()
	plain := baseline.NewPlain()
	pruned := baseline.NewLocalPrune(60)
	for i := 0; i < totalBlocks; i++ {
		durable := block.NewData("writer", []byte(fmt.Sprintf("payload-%d", i))).Sign(kp)
		if _, err := sealBlocks(selDurable, durable); err != nil {
			return out, err
		}
		ttlEntry := block.NewTemporary("writer", []byte(fmt.Sprintf("payload-%d", i)), 0, selTTL.NextNumber()+120).Sign(kp)
		if _, err := sealBlocks(selTTL, ttlEntry); err != nil {
			return out, err
		}
		plain.Append([]*block.Entry{durable})
		pruned.Append([]*block.Entry{durable})
	}
	out.SeldelLiveBlocks = selDurable.Stats().LiveBlocks
	out.SeldelDurableByte = selDurable.Stats().LiveBytes
	out.SeldelTTLBytes = selTTL.Stats().LiveBytes
	out.PlainBytes = plain.Bytes()
	out.PruneLocalBytes = pruned.LocalBytes()
	out.PruneGlobalBytes = pruned.GlobalBytes()
	return out, nil
}
