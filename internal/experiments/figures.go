package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/seldel/seldel/internal/audit"
	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
)

// This file reproduces the console outputs of the paper's evaluation:
// Fig. 6 (state after three logins), Fig. 7 (deletion request + merge of
// the first two sequences + marker shift to block 6), and Fig. 8 (one
// cycle ahead, deletion request no longer stored).
//
// Scenario (§V): logins of ALPHA, BRAVO, CHARLIE are logged to the
// chain; a summary block is created every third block; BRAVO requests
// deletion of its entry in block 3, entry 1.

// figureScenario drives the shared §V scenario to the requested stage.
//
//	stage 1 → Fig. 6 state (blocks 0..Σ5)
//	stage 2 → Fig. 7 state (deletion in 6, merge at Σ8, marker → 6)
//	stage 3 → Fig. 8 state (one merge cycle ahead, marker → 12)
func figureScenario(stage int) (*chain.Chain, *env, error) {
	e, err := newEnv("ALPHA", "BRAVO", "CHARLIE")
	if err != nil {
		return nil, nil, err
	}
	c, err := e.paperChain()
	if err != nil {
		return nil, nil, err
	}
	logger, err := audit.NewLogger(c)
	if err != nil {
		return nil, nil, err
	}
	login := func(user, terminal string) (*block.Entry, error) {
		return logger.EntryFor(e.keys[user], audit.LoginEvent{
			User: user, Terminal: terminal, Success: true,
		})
	}
	// One SubmitWait per scenario step: entries of a step share a block
	// (the pipeline never splits one call), and waiting between steps
	// keeps the block layout identical to the paper's figures.
	commit := func(entries ...*block.Entry) error {
		_, err := c.SubmitWait(context.Background(), entries...)
		return err
	}

	// Block 1: ALPHA; Σ2. Block 3: ALPHA+BRAVO; block 4: CHARLIE; Σ5.
	a1, err := login("ALPHA", "tty1")
	if err != nil {
		return nil, nil, err
	}
	if err := commit(a1); err != nil {
		return nil, nil, err
	}
	a2, err := login("ALPHA", "tty2")
	if err != nil {
		return nil, nil, err
	}
	b1, err := login("BRAVO", "tty1")
	if err != nil {
		return nil, nil, err
	}
	if err := commit(a2, b1); err != nil {
		return nil, nil, err
	}
	c1, err := login("CHARLIE", "tty1")
	if err != nil {
		return nil, nil, err
	}
	if err := commit(c1); err != nil {
		return nil, nil, err
	}
	if stage <= 1 {
		return c, e, nil
	}

	// Block 6: BRAVO's deletion request for 3/1. Block 7: ALPHA. Σ8
	// merges sequences 0 and 1, marker → 6.
	del := block.NewDeletion("BRAVO", block.Ref{Block: 3, Entry: 1}).Sign(e.keys["BRAVO"])
	if err := commit(del); err != nil {
		return nil, nil, err
	}
	a3, err := login("ALPHA", "tty3")
	if err != nil {
		return nil, nil, err
	}
	if err := commit(a3); err != nil {
		return nil, nil, err
	}
	if stage <= 2 {
		return c, e, nil
	}

	// One cycle ahead: blocks 9, 10+Σ11, 12, 13+Σ14 (merge, marker → 12).
	for i, pair := range [][2]string{
		{"ALPHA", "tty4"}, {"BRAVO", "tty2"}, {"CHARLIE", "tty2"}, {"ALPHA", "tty5"},
	} {
		ev, err := login(pair[0], pair[1])
		if err != nil {
			return nil, nil, fmt.Errorf("login %d: %w", i, err)
		}
		if err := commit(ev); err != nil {
			return nil, nil, err
		}
	}
	return c, e, nil
}

// renderOptions decodes audit payloads for the console dump.
func renderOptions() *chain.RenderOptions {
	return &chain.RenderOptions{
		ShowMarks: true,
		PayloadText: func(p []byte) string {
			e := &block.Entry{Kind: block.KindData, Payload: p}
			if ev, err := audit.Decode(e); err == nil {
				return ev.String()
			}
			return fmt.Sprintf("0x%x", p)
		},
	}
}

func runFig6(w io.Writer) error {
	c, _, err := figureScenario(1)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintln(w, "state after three logins (summaries S2, S5 empty; nothing deleted):")
	return c.Render(w, renderOptions())
}

func runFig7(w io.Writer) error {
	c, _, err := figureScenario(2)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintln(w, "BRAVO requested deletion of 3/1 in block 6; S8 merged sequences 0+1,")
	fmt.Fprintln(w, "entry 3/1 was not copied, marker shifted to block 6:")
	if err := c.Render(w, renderOptions()); err != nil {
		return err
	}
	s := c.Stats()
	fmt.Fprintf(w, "forgotten=%d cut_blocks=%d live=%d marker=%d\n",
		s.ForgottenEntries, s.CutBlocks, s.LiveBlocks, c.Marker())
	return nil
}

func runFig8(w io.Writer) error {
	c, _, err := figureScenario(3)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintln(w, "one cycle ahead: the deletion request (block 6) was never copied")
	fmt.Fprintln(w, "into a summary block and is gone; survivors were re-carried:")
	if err := c.Render(w, renderOptions()); err != nil {
		return err
	}
	// Assert the Fig. 8 property programmatically as well, streaming
	// every live entry (normal and carried) with its stable reference.
	for ref, e := range c.EntriesSeq() {
		if e.Kind == block.KindDeletion {
			return fmt.Errorf("deletion entry %s still live", ref)
		}
	}
	fmt.Fprintln(w, "check: no deletion entry present in any live block — OK")
	return nil
}
