package experiments

import "testing"

// TestBatchVerifyDimension sanity-checks the batch-verification bench:
// every configured row must appear with consistent counters, the
// cache-warmed rows must actually answer from the cache, the duplicate
// row must collapse re-deliveries before the curve, and the headline
// (batch-16 at warm 0.5 vs the single path) must show a real win —
// the 1.5x acceptance bar is asserted loosely here (>1.2) to keep CI
// robust to noise; BENCH_PR7.json carries the measured number.
func TestBatchVerifyDimension(t *testing.T) {
	rows, headline, err := measureBatchVerifyDimension(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(batchVerifyConfigs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(batchVerifyConfigs))
	}
	for _, r := range rows {
		t.Logf("%s batch=%d warm=%.1f dup=%.1f sigs=%d verified=%d hits=%d sigs/sec=%.0f speedup=%.2f",
			r.Mode, r.BatchSize, r.WarmFrac, r.DupFrac, r.Sigs, r.Verified, r.CacheHits, r.SigsPerSec, r.Speedup)
		if r.Sigs == 0 || r.SigsPerSec <= 0 {
			t.Fatalf("empty measurement: %+v", r)
		}
		if r.Mode == "single" && r.Verified != uint64(r.Sigs) {
			t.Fatalf("single row must pay the curve per signature: %+v", r)
		}
		if r.WarmFrac > 0 && r.CacheHits == 0 {
			t.Fatalf("warm row saw no cache hits: %+v", r)
		}
		if r.DupFrac > 0 && r.Verified >= uint64(r.Sigs) {
			t.Fatalf("duplicate row did not collapse re-deliveries: %+v", r)
		}
	}
	if headline <= 1.2 {
		t.Fatalf("batch-16 warm-0.5 speedup %.2f, want > 1.2 (acceptance bar is 1.5)", headline)
	}
}
