package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/partition"
	"github.com/seldel/seldel/internal/simclock"
)

// This file benchmarks the partitioned write path (PR 8): the same
// 16-producer submission workload is pushed through a partition.Chain
// at 1, 2, and 4 partitions. Each producer writes under its own owner
// key, so the consistent-hash router spreads the load across the
// sub-chains; the single-partition row goes through the same façade so
// the comparison isolates the sharding win, not router overhead. All
// rows share one verification pool, matching production wiring.

// PartitionResult is one measured partitioned-submission configuration.
type PartitionResult struct {
	// Partitions is the number of sub-chains the router spread over.
	Partitions int `json:"partitions"`
	// Producers is the number of concurrent submitting goroutines.
	Producers int `json:"producers"`
	// Entries is the total number of entries written.
	Entries int `json:"entries"`
	// Seconds is the measured wall-clock time.
	Seconds float64 `json:"seconds"`
	// OpsPerSec is Entries / Seconds.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// partitionOwners builds one registry with `producers` distinct owner
// keys and pre-signs each producer's share of the workload, keeping
// signing cost out of the measured section.
func partitionOwners(producers, perProducer int) (*identity.Registry, [][]*block.Entry, error) {
	reg := identity.NewRegistry()
	shares := make([][]*block.Entry, producers)
	for w := 0; w < producers; w++ {
		name := fmt.Sprintf("owner-%02d", w)
		kp := identity.Deterministic(name, "seldel-partition-bench")
		if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
			return nil, nil, err
		}
		share := make([]*block.Entry, perProducer)
		for i := range share {
			share[i] = block.NewData(name, []byte(fmt.Sprintf("part-load-%02d-%06d", w, i))).Sign(kp)
		}
		shares[w] = share
	}
	return reg, shares, nil
}

// measurePartitions runs the pre-signed shares through a fresh
// partition.Chain with p sub-chains, one producer goroutine per share.
func measurePartitions(reg *identity.Registry, shares [][]*block.Entry, p int) (PartitionResult, error) {
	pool := freshPool(0, true)
	defer pool.Close()
	pc, err := partition.New(partition.Config{
		Partitions: p,
		Chain: chain.Config{
			SequenceLength: 8,
			Registry:       reg,
			Clock:          simclock.NewLogical(0),
			Verifier:       pool,
		},
	})
	if err != nil {
		return PartitionResult{}, err
	}
	defer pc.Close()
	ctx := context.Background()
	total := 0
	for _, s := range shares {
		total += len(s)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(shares))
	start := time.Now()
	for _, share := range shares {
		wg.Add(1)
		go func(share []*block.Entry) {
			defer wg.Done()
			receipts := make([]mempool.Receipt, 0, len(share))
			for _, e := range share {
				rs, err := pc.Submit(ctx, e)
				if err != nil {
					errCh <- err
					return
				}
				receipts = append(receipts, rs...)
			}
			for _, r := range receipts {
				if _, err := r.Wait(ctx); err != nil {
					errCh <- err
					return
				}
			}
		}(share)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		return PartitionResult{}, err
	}
	if err := pc.VerifyIntegrity(); err != nil {
		return PartitionResult{}, fmt.Errorf("partition bench: integrity at %d partitions: %w", p, err)
	}
	return PartitionResult{
		Partitions: p,
		Producers:  len(shares),
		Entries:    total,
		Seconds:    elapsed,
		OpsPerSec:  float64(total) / elapsed,
	}, nil
}

// measurePartitionDimension measures submit@16 at 1, 2, and 4
// partitions (best of three per row) and returns the rows plus the
// 4-partition-over-1 scaling factor.
func measurePartitionDimension(n int) ([]PartitionResult, float64, error) {
	const producers = 16
	perProducer := n / producers
	if perProducer == 0 {
		perProducer = 1
	}
	reg, shares, err := partitionOwners(producers, perProducer)
	if err != nil {
		return nil, 0, err
	}
	var out []PartitionResult
	for _, p := range []int{1, 2, 4} {
		var top PartitionResult
		for i := 0; i < 3; i++ {
			r, err := measurePartitions(reg, shares, p)
			if err != nil {
				return nil, 0, fmt.Errorf("partition dimension (%d partitions): %w", p, err)
			}
			if r.OpsPerSec > top.OpsPerSec {
				top = r
			}
		}
		out = append(out, top)
	}
	scaling := 0.0
	if out[0].OpsPerSec > 0 {
		scaling = out[len(out)-1].OpsPerSec / out[0].OpsPerSec
	}
	return out, scaling, nil
}
