package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/simclock"
)

// runDelCost is E7: §IV-D — "The complexity of the procedure is linear
// and very low as blocks are referenced directly by number." Expected
// shape: per-request validation cost flat in chain length (direct
// (α, entry) addressing), compared against a linear scan.
func runDelCost(w io.Writer) error {
	e, err := newEnv("writer")
	if err != nil {
		return err
	}
	kp := e.keys["writer"]

	tw := newTable(w)
	fmt.Fprintln(tw, "live_blocks\tdirect_lookup_ns\tcheck_request_ns\tlinear_scan_ns")
	for _, liveTarget := range []int{120, 480, 1920} {
		c, err := chain.New(chain.Config{
			SequenceLength: 6,
			MaxBlocks:      liveTarget,
			Shrink:         chain.ShrinkMinimal,
			Registry:       e.registry,
			Clock:          simclock.NewLogical(0),
		})
		if err != nil {
			return err
		}
		defer c.Close()
		var refs []block.Ref
		for i := 0; c.Len() < liveTarget; i++ {
			blocks, err := sealBlocks(c,
				block.NewData("writer", []byte(fmt.Sprintf("p%d", i))).Sign(kp))
			if err != nil {
				return err
			}
			refs = append(refs, block.Ref{Block: blocks[0].Header.Number, Entry: 0})
		}
		target := refs[len(refs)/2]
		if _, _, ok := c.Lookup(target); !ok {
			// The midpoint may have been cut; pick the newest live ref.
			target = refs[len(refs)-1]
		}
		req := block.NewDeletion("writer", target).Sign(kp)

		const reps = 2000
		start := time.Now()
		for r := 0; r < reps; r++ {
			c.Lookup(target)
		}
		lookupNs := time.Since(start).Nanoseconds() / reps

		start = time.Now()
		for r := 0; r < reps; r++ {
			if err := c.CheckDeletionRequest(req); err != nil {
				return err
			}
		}
		checkNs := time.Since(start).Nanoseconds() / reps

		// Strawman: a chain without the (α, entry) index would scan.
		start = time.Now()
		for r := 0; r < reps; r++ {
			scanForRef(c, target)
		}
		scanNs := time.Since(start).Nanoseconds() / reps

		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n", c.Len(), lookupNs, checkNs, scanNs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape: direct lookup and request validation flat in chain length;")
	fmt.Fprintln(w, "the scan strawman grows linearly — the paper's 'referenced directly")
	fmt.Fprintln(w, "by number' claim (§IV-D).")
	return nil
}

// scanForRef is the no-index strawman: walk every live block.
func scanForRef(c *chain.Chain, ref block.Ref) *block.Entry {
	for _, b := range c.Blocks() {
		if b.IsSummary() {
			for _, ce := range b.Carried {
				if ce.Ref() == ref {
					return ce.Entry
				}
			}
			continue
		}
		if b.Header.Number == ref.Block && int(ref.Entry) < len(b.Entries) {
			return b.Entries[ref.Entry]
		}
	}
	return nil
}

// runDelay is E8: §IV-D.3 — deletion is delayed until the marked entry's
// sequence reaches the beginning of the chain and is merged away (Eq. 1).
// Expected shape: delay (in blocks) grows with lmax and shrinks as the
// request targets older entries; the empty-block filler bounds the delay
// even without traffic.
func runDelay(w io.Writer) error {
	e, err := newEnv("writer")
	if err != nil {
		return err
	}
	kp := e.keys["writer"]

	measure := func(seqLen, maxBlocks int, fillerOnly bool) (int, error) {
		c, err := chain.New(chain.Config{
			SequenceLength: seqLen,
			MaxBlocks:      maxBlocks,
			Shrink:         chain.ShrinkMinimal,
			Registry:       e.registry,
			Clock:          simclock.NewLogical(0),
		})
		if err != nil {
			return 0, err
		}
		defer c.Close()
		// Fill to steady state.
		for c.Stats().CutBlocks == 0 {
			if _, err := sealBlocks(c,
				block.NewData("writer", []byte(fmt.Sprintf("warm%d", c.NextNumber()))).Sign(kp)); err != nil {
				return 0, err
			}
		}
		// Write the victim entry, then request deletion immediately.
		blocks, err := sealBlocks(c, block.NewData("writer", []byte("victim")).Sign(kp))
		if err != nil {
			return 0, err
		}
		victim := block.Ref{Block: blocks[0].Header.Number, Entry: 0}
		if _, err := sealBlocks(c, block.NewDeletion("writer", victim).Sign(kp)); err != nil {
			return 0, err
		}
		requestedAt := c.Head().Number
		// Drive until physical deletion.
		for i := 0; i < 100_000; i++ {
			if _, _, ok := c.Lookup(victim); !ok {
				return int(c.Head().Number - requestedAt), nil
			}
			if fillerOnly {
				if _, err := c.AppendEmpty(); err != nil {
					return 0, err
				}
			} else {
				if _, err := sealBlocks(c,
					block.NewData("writer", []byte(fmt.Sprintf("drive%d", i))).Sign(kp)); err != nil {
					return 0, err
				}
			}
		}
		return 0, fmt.Errorf("victim never deleted (l=%d lmax=%d)", seqLen, maxBlocks)
	}

	tw := newTable(w)
	fmt.Fprintln(tw, "l\tlmax\ttraffic\tdelete_delay_blocks")
	for _, cfg := range []struct {
		l, lmax int
		filler  bool
	}{
		{3, 6, false}, {3, 12, false}, {3, 24, false},
		{6, 24, false}, {12, 24, false},
		{3, 12, true}, // idle chain: only empty-block filler drives deletion
	} {
		delay, err := measure(cfg.l, cfg.lmax, cfg.filler)
		if err != nil {
			return err
		}
		traffic := "normal"
		if cfg.filler {
			traffic = "filler-only"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%d\n", cfg.l, cfg.lmax, traffic, delay)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "shape: delay ≈ lmax (the victim's sequence must travel to the chain")
	fmt.Fprintln(w, "start, Eq. 1); smaller lmax → faster forgetting; the empty-block")
	fmt.Fprintln(w, "filler (§IV-D.3) bounds the delay on idle chains.")
	return nil
}
