package experiments

import (
	"os"
	"strconv"
	"testing"
)

// TestHotPathDimension sanity-checks the hot-path measurement harness:
// the allocation row must report a positive per-entry cost, per-block
// sync must fsync at least once per block, and the group-commit row
// must both keep receipts durable (fsyncs > 0) and amortize — strictly
// fewer fsyncs per block than sync-every. SELDEL_HOTPATH_N overrides
// the workload size for manual baseline runs.
func TestHotPathDimension(t *testing.T) {
	n := 600
	if s := os.Getenv("SELDEL_HOTPATH_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SELDEL_HOTPATH_N=%q: %v", s, err)
		}
		n = v
	}
	rows, err := measureHotPathDimension(n)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]HotPathResult{}
	var alloc HotPathResult
	for _, r := range rows {
		t.Logf("%s %s producers=%d entries=%d blocks=%d allocs/entry=%.1f bytes/entry=%.0f fsyncs=%d fsyncs/block=%.3f ops/sec=%.0f",
			r.Op, r.Mode, r.Producers, r.Entries, r.Blocks, r.AllocsPerEntry, r.BytesPerEntry, r.Fsyncs, r.FsyncsPerBlock, r.OpsPerSec)
		if r.Op == "durability" {
			byMode[r.Mode] = r
		} else {
			alloc = r
		}
	}
	if alloc.Entries == 0 || alloc.AllocsPerEntry <= 0 {
		t.Fatalf("allocation row missing or non-positive: %+v", alloc)
	}
	se, ok := byMode["sync-every"]
	if !ok || se.FsyncsPerBlock < 1 {
		t.Fatalf("sync-every should fsync at least once per block: %+v", se)
	}
	g, ok := byMode["group"]
	if !ok || g.Fsyncs == 0 {
		t.Fatalf("group mode must still fsync (receipts resolve at durability): %+v", g)
	}
	if g.FsyncsPerBlock >= se.FsyncsPerBlock {
		t.Fatalf("group commit did not amortize: group %.3f vs sync-every %.3f fsyncs/block",
			g.FsyncsPerBlock, se.FsyncsPerBlock)
	}
}
