package partition

import (
	"encoding/json"
	"fmt"
	"sync"

	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/manifest"
)

// Anchor is one partition's state commitment inside a spine block: the
// partition's head, its current Σ summary (the block at the Genesis
// marker), and a running digest chain over its deletion records. A
// partitioned ProveDeleted ties the per-partition deletion record into
// RecordChain, so the proof verifies against the spine without access
// to the partition itself.
type Anchor struct {
	// Partition is the anchored partition's index.
	Partition int `json:"partition"`
	// Marker is the partition's Genesis marker at anchor time.
	Marker uint64 `json:"marker"`
	// Head is the partition's head block number.
	Head uint64 `json:"head"`
	// HeadHash is the hash of that head block.
	HeadHash codec.Hash `json:"head_hash"`
	// SummaryHash is the hash of the block at Marker — the partition's
	// current Σ summary (its genesis before any truncation).
	SummaryHash codec.Hash `json:"summary_hash"`
	// Records is the number of deletion records folded into RecordChain.
	Records uint64 `json:"records"`
	// RecordChain is the running digest chain over the partition's
	// deletion records, oldest first: chain₀ = 0³², chainₙ =
	// H(chainₙ₋₁ ‖ H(recordₙ)).
	RecordChain codec.Hash `json:"record_chain"`
	// Floor is the partition's sync resurrection floor.
	Floor uint64 `json:"floor"`
}

// SpineBlock is one block of the spine chain: a hash-linked batch of
// partition anchors. The spine is in-memory, append-only, and rebuilt
// on restart from the partitions' durable deletion manifests, so it
// carries no payload of its own — it exists to give cross-partition
// proofs a single head hash to verify against.
type SpineBlock struct {
	// Number is the spine block's height, starting at 0.
	Number uint64 `json:"number"`
	// PrevHash links to the previous spine block (zero for block 0).
	PrevHash codec.Hash `json:"prev_hash"`
	// Anchors are the partition commitments this block seals.
	Anchors []Anchor `json:"anchors"`
}

// Hash returns the spine block's content hash.
func (b SpineBlock) Hash() codec.Hash {
	raw, err := json.Marshal(b)
	if err != nil {
		// Marshalling a struct of integers and hashes cannot fail.
		panic(fmt.Sprintf("partition: spine block marshal: %v", err))
	}
	return codec.HashBytes(raw)
}

// recordDigest is the leaf digest of one deletion record inside an
// anchor's RecordChain.
func recordDigest(rec *manifest.Record) codec.Hash {
	raw, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("partition: record marshal: %v", err))
	}
	return codec.HashBytes(raw)
}

// recTracker accumulates one partition's deletion-record digests in the
// order they were observed. Tracking is positional rather than keyed by
// the record's manifest sequence number, because doctor repairs can
// rewrite the on-disk log with renumbered sequences — positions in the
// observed stream stay stable.
type recTracker struct {
	// digests holds the record digests, oldest first.
	digests []codec.Hash
	// prefix[i] is the digest chain after folding i records;
	// prefix[0] is the zero hash.
	prefix []codec.Hash
	// pos maps a digest to its position in digests (dedupe on ingest).
	pos map[codec.Hash]int
}

func newRecTracker() *recTracker {
	return &recTracker{
		prefix: []codec.Hash{codec.ZeroHash},
		pos:    make(map[codec.Hash]int),
	}
}

// ingest appends d to the tracked stream (idempotent) and returns its
// position.
func (t *recTracker) ingest(d codec.Hash) int {
	if i, ok := t.pos[d]; ok {
		return i
	}
	i := len(t.digests)
	t.digests = append(t.digests, d)
	t.prefix = append(t.prefix, codec.HashConcat(t.prefix[i][:], d[:]))
	t.pos[d] = i
	return i
}

// count returns the number of tracked records.
func (t *recTracker) count() uint64 { return uint64(len(t.digests)) }

// spine is the cross-partition anchor chain plus its per-partition
// record trackers. All fields are guarded by mu; nothing here ever
// holds a partition chain's lock (anchor state is snapshotted before mu
// is taken), so the lock order chain.mu → spine.mu never inverts.
type spine struct {
	mu       sync.Mutex
	blocks   []SpineBlock
	trackers []*recTracker
	// anchored[p] is trackers[p].count() at the last anchor of p —
	// the "is there anything new to anchor" watermark.
	anchored []uint64
}

func newSpine(partitions int) *spine {
	s := &spine{
		trackers: make([]*recTracker, partitions),
		anchored: make([]uint64, partitions),
	}
	for i := range s.trackers {
		s.trackers[i] = newRecTracker()
	}
	return s
}

// appendLocked seals anchors into a new spine block. Caller holds mu.
func (s *spine) appendLocked(anchors []Anchor) {
	b := SpineBlock{Number: uint64(len(s.blocks)), Anchors: anchors}
	if n := len(s.blocks); n > 0 {
		b.PrevHash = s.blocks[n-1].Hash()
	}
	s.blocks = append(s.blocks, b)
	for _, a := range anchors {
		s.anchored[a.Partition] = a.Records
	}
}

// snapshot returns a copy of the spine blocks. Anchor slices are shared
// but never mutated after append.
func (s *spine) snapshot() []SpineBlock {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpineBlock(nil), s.blocks...)
}

// verify checks the spine's hash links and every anchor's record chain
// against the tracked digest stream.
func (s *spine) verify() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := make([]uint64, len(s.trackers))
	for i, b := range s.blocks {
		if b.Number != uint64(i) {
			return fmt.Errorf("partition: spine block %d numbered %d", i, b.Number)
		}
		if i == 0 {
			if !b.PrevHash.IsZero() {
				return fmt.Errorf("partition: spine genesis has a previous hash")
			}
		} else if b.PrevHash != s.blocks[i-1].Hash() {
			return fmt.Errorf("partition: spine link broken at block %d", i)
		}
		for _, a := range b.Anchors {
			if a.Partition < 0 || a.Partition >= len(s.trackers) {
				return fmt.Errorf("partition: spine block %d anchors unknown partition %d", i, a.Partition)
			}
			t := s.trackers[a.Partition]
			if a.Records > t.count() {
				return fmt.Errorf("partition: spine block %d anchors %d records of partition %d, tracker has %d",
					i, a.Records, a.Partition, t.count())
			}
			if a.RecordChain != t.prefix[a.Records] {
				return fmt.Errorf("partition: spine block %d record chain of partition %d does not match the record stream",
					i, a.Partition)
			}
			if a.Records < last[a.Partition] {
				return fmt.Errorf("partition: spine block %d anchors partition %d backwards (%d after %d)",
					i, a.Partition, a.Records, last[a.Partition])
			}
			last[a.Partition] = a.Records
		}
	}
	return nil
}
