package partition

import (
	"context"
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/codec"
)

// Proof is the partitioned deletion proof: the owning partition's
// self-contained DeletedProof, tied into the spine by the record digest
// chain. Verify needs no chain access — it recomputes the record chain
// from the inner proof's deletion record and the surrounding digests,
// matches it against the embedded anchor, checks the anchor's
// membership in its spine block, and walks the spine links up to the
// proof's head. An auditor then only needs HeadHash() to match a spine
// head obtained out of band (or a later one that links back to it).
type Proof struct {
	// Partition is the partition that owned (and erased) the entry.
	Partition int
	// Stride is the block-number stripe width, tying Inner.Ref's block
	// number to Partition.
	Stride uint64
	// Inner is the owning partition's self-contained deletion proof.
	Inner *chain.DeletedProof
	// PriorChain is the record digest chain over the records preceding
	// Inner.Record in the partition's deletion stream.
	PriorChain codec.Hash
	// LaterDigests are the digests of the records between Inner.Record
	// and the anchor, oldest first.
	LaterDigests []codec.Hash
	// Anchor is the spine anchor covering Inner.Record: folding
	// PriorChain, Inner.Record's digest, and LaterDigests must
	// reproduce Anchor.RecordChain.
	Anchor Anchor
	// AnchorBlock is the spine block sealing Anchor.
	AnchorBlock SpineBlock
	// Path are the spine blocks after AnchorBlock up to the proof-time
	// head, hash-linked; empty when AnchorBlock was the head.
	Path []SpineBlock
}

// ProveDeleted builds the cross-partition deletion proof for ref: the
// owning partition's DeletedProof plus the spine linkage showing the
// deletion record is anchored. The partition is synced into the spine
// first, so a record sealed moments ago is anchored before proving.
func (pc *Chain) ProveDeleted(ctx context.Context, ref block.Ref) (*Proof, error) {
	p := pc.Owner(ref)
	if p < 0 {
		return nil, fmt.Errorf("%w: %s is outside every partition stripe", chain.ErrNotFound, ref)
	}
	inner, err := pc.parts[p].ProveDeleted(ref)
	if err != nil {
		return nil, err
	}
	if err := pc.syncPartition(ctx, p); err != nil {
		return nil, err
	}
	d := recordDigest(&inner.Record)
	pc.spine.mu.Lock()
	defer pc.spine.mu.Unlock()
	t := pc.spine.trackers[p]
	k, ok := t.pos[d]
	if !ok {
		return nil, fmt.Errorf("%w: record of %s not in spine tracker", errProofState, ref)
	}
	// The earliest spine block whose anchor for p covers position k.
	bi, anchor, ok := pc.spine.coveringAnchorLocked(p, uint64(k))
	if !ok {
		return nil, fmt.Errorf("%w: no anchor covers record %d of partition %d", errProofState, k, p)
	}
	proof := &Proof{
		Partition:    p,
		Stride:       pc.stride,
		Inner:        inner,
		PriorChain:   t.prefix[k],
		LaterDigests: append([]codec.Hash(nil), t.digests[k+1:anchor.Records]...),
		Anchor:       anchor,
		AnchorBlock:  pc.spine.blocks[bi],
		Path:         append([]SpineBlock(nil), pc.spine.blocks[bi+1:]...),
	}
	return proof, nil
}

// coveringAnchorLocked finds the earliest spine block carrying an
// anchor of partition p whose record chain covers position k. Caller
// holds the spine lock.
func (s *spine) coveringAnchorLocked(p int, k uint64) (int, Anchor, bool) {
	for bi := range s.blocks {
		for _, a := range s.blocks[bi].Anchors {
			if a.Partition == p && a.Records > k {
				return bi, a, true
			}
		}
	}
	return 0, Anchor{}, false
}

// Verify checks the proof's internal consistency: the inner proof
// verifies on its own, the reference's block stripe matches the claimed
// partition, the record digest chain reproduces the anchor's
// RecordChain, the anchor is sealed in AnchorBlock, and Path hash-links
// AnchorBlock to the proof's head. Compare HeadHash() against a spine
// head obtained out of band to pin the proof to a live deployment.
func (p *Proof) Verify() error {
	if p.Inner == nil {
		return fmt.Errorf("partition: proof has no inner deletion proof")
	}
	if err := p.Inner.Verify(); err != nil {
		return err
	}
	if p.Stride == 0 || int(p.Inner.Ref.Block/p.Stride) != p.Partition {
		return fmt.Errorf("partition: ref %s is not in partition %d's stripe", p.Inner.Ref, p.Partition)
	}
	if p.Anchor.Partition != p.Partition {
		return fmt.Errorf("partition: anchor is for partition %d, proof claims %d", p.Anchor.Partition, p.Partition)
	}
	d := recordDigest(&p.Inner.Record)
	chainHash := codec.HashConcat(p.PriorChain[:], d[:])
	for _, ld := range p.LaterDigests {
		chainHash = codec.HashConcat(chainHash[:], ld[:])
	}
	if chainHash != p.Anchor.RecordChain {
		return fmt.Errorf("partition: record chain does not reproduce the anchored digest")
	}
	found := false
	for _, a := range p.AnchorBlock.Anchors {
		if a == p.Anchor {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("partition: anchor not sealed in the proof's spine block")
	}
	prev := p.AnchorBlock
	for i, b := range p.Path {
		if b.Number != prev.Number+1 || b.PrevHash != prev.Hash() {
			return fmt.Errorf("partition: spine path broken at step %d (block %d)", i, b.Number)
		}
		prev = b
	}
	return nil
}

// HeadHash returns the hash of the newest spine block the proof links
// to — the value to compare against an out-of-band spine head.
func (p *Proof) HeadHash() codec.Hash {
	if len(p.Path) > 0 {
		return p.Path[len(p.Path)-1].Hash()
	}
	return p.AnchorBlock.Hash()
}
