package partition

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/store/segment"
)

// meta is the PARTITIONS metadata file at a partitioned store root. It
// pins the layout parameters a reopen must match: routing and block
// striping are deterministic functions of (partitions, sequence
// length), so silently reopening with different values would route
// owners to the wrong partition and mis-assign Ref ownership.
type meta struct {
	Version        int    `json:"version"`
	Partitions     int    `json:"partitions"`
	Stride         uint64 `json:"stride"`
	SequenceLength int    `json:"sequence_length"`
}

const metaVersion = 1

// subdirName returns the per-partition store directory name under the
// root: p000, p001, ...
func subdirName(p int) string { return fmt.Sprintf("p%03d", p) }

// loadOrInitMeta reads the PARTITIONS file at root, creating it when
// absent, and validates it against the requested layout.
func loadOrInitMeta(root string, want meta) error {
	path := filepath.Join(root, segment.PartitionsMetaName)
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		want.Version = metaVersion
		out, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return fmt.Errorf("partition: encode meta: %w", err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("partition: write meta: %w", err)
		}
		return nil
	case err != nil:
		return fmt.Errorf("partition: read meta: %w", err)
	}
	var got meta
	if err := json.Unmarshal(raw, &got); err != nil {
		return fmt.Errorf("partition: parse %s: %w", path, err)
	}
	if got.Version != metaVersion {
		return fmt.Errorf("%w: %s version %d, this build understands %d",
			chain.ErrConfig, path, got.Version, metaVersion)
	}
	if got.Partitions != want.Partitions || got.SequenceLength != want.SequenceLength || got.Stride != want.Stride {
		return fmt.Errorf("%w: store at %s was created with partitions=%d l=%d stride=%d, reopened with partitions=%d l=%d stride=%d",
			chain.ErrConfig, root, got.Partitions, got.SequenceLength, got.Stride,
			want.Partitions, want.SequenceLength, want.Stride)
	}
	return nil
}

// IsStoreRoot reports whether dir is a partitioned store root (has a
// PARTITIONS metadata file).
func IsStoreRoot(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, segment.PartitionsMetaName))
	return err == nil
}
