package partition

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/store/segment"
)

// testEnv bundles a registry with deterministic participants.
type testEnv struct {
	registry *identity.Registry
	keys     map[string]*identity.KeyPair
}

func newEnv(t *testing.T, users ...string) *testEnv {
	t.Helper()
	env := &testEnv{
		registry: identity.NewRegistry(),
		keys:     make(map[string]*identity.KeyPair),
	}
	for _, u := range users {
		kp := identity.Deterministic(u, "partition-test")
		role := identity.RoleUser
		if u == "admin" {
			role = identity.RoleAdmin
		}
		if err := env.registry.RegisterKey(kp, role); err != nil {
			t.Fatal(err)
		}
		env.keys[u] = kp
	}
	return env
}

func (e *testEnv) data(user, payload string) *block.Entry {
	return block.NewData(user, []byte(payload)).Sign(e.keys[user])
}

func (e *testEnv) del(user string, target block.Ref) *block.Entry {
	return block.NewDeletion(user, target).Sign(e.keys[user])
}

// owners is a user set large enough that jump hashing spreads it over
// every partition in the 4-way tests.
var owners = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}

func testConfig(env *testEnv, partitions int) Config {
	return Config{
		Partitions: partitions,
		Chain: chain.Config{
			SequenceLength: 3,
			MaxSequences:   2,
			Registry:       env.registry,
		},
	}
}

func newPartitioned(t *testing.T, cfg Config) *Chain {
	t.Helper()
	pc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc
}

// deleteAndTruncate seals one entry on its owner's partition, deletes
// it, and churns that partition until the truncation physically erases
// it.
func deleteAndTruncate(t *testing.T, pc *Chain, env *testEnv, user, tag string) block.Ref {
	t.Helper()
	ctx := context.Background()
	sealed, err := pc.SubmitWait(ctx, env.data(user, "victim-"+tag))
	if err != nil {
		t.Fatal(err)
	}
	victim := sealed[0].Ref
	if _, err := pc.SubmitWait(ctx, env.del(user, victim)); err != nil {
		t.Fatal(err)
	}
	p := pc.Owner(victim)
	for i := 0; pc.Part(p).Marker() <= victim.Block; i++ {
		if i > 64 {
			t.Fatalf("truncation never passed the victim on partition %d", p)
		}
		if _, err := pc.SubmitWait(ctx, env.data(user, fmt.Sprintf("churn-%s-%d", tag, i))); err != nil {
			t.Fatal(err)
		}
		if err := pc.Part(p).CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return victim
}

func TestRoutingIsDeterministicAndStriped(t *testing.T) {
	env := newEnv(t, owners...)
	pc := newPartitioned(t, testConfig(env, 4))

	seen := make(map[int]bool)
	for _, u := range owners {
		e := env.data(u, "probe")
		p := pc.Route(e)
		if p < 0 || p >= 4 {
			t.Fatalf("route(%s) = %d out of range", u, p)
		}
		if pc.Route(env.data(u, "other-payload")) != p {
			t.Errorf("owner %s routes inconsistently", u)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Errorf("8 owners landed on %d partition(s); hash is not spreading", len(seen))
	}
	// A deletion request routes by its target's stripe, not the
	// requester's hash.
	stride := pc.StrideWidth()
	for p := 0; p < 4; p++ {
		target := block.Ref{Block: uint64(p)*stride + 5, Entry: 0}
		if got := pc.Route(env.del("alice", target)); got != p {
			t.Errorf("deletion targeting stripe %d routed to %d", p, got)
		}
	}
	// Block numbering: partition i's genesis sits at i·stride.
	for p := 0; p < 4; p++ {
		if got := pc.Part(p).Marker(); got != uint64(p)*stride {
			t.Errorf("partition %d marker %d, want %d", p, got, uint64(p)*stride)
		}
	}
}

func TestSubmitFansOutAndRefsStayUnique(t *testing.T) {
	env := newEnv(t, owners...)
	pc := newPartitioned(t, testConfig(env, 4))
	ctx := context.Background()

	var entries []*block.Entry
	for round := 0; round < 4; round++ {
		for _, u := range owners {
			entries = append(entries, env.data(u, fmt.Sprintf("%s-%d", u, round)))
		}
	}
	sealed, err := pc.SubmitWait(ctx, entries...)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(entries) {
		t.Fatalf("%d seal results for %d entries", len(sealed), len(entries))
	}
	refs := make(map[block.Ref]bool)
	for i, s := range sealed {
		if s.Ref.IsZero() {
			t.Fatalf("entry %d has no ref", i)
		}
		if refs[s.Ref] {
			t.Fatalf("duplicate ref %s across partitions", s.Ref)
		}
		refs[s.Ref] = true
		// The sealed ref must live in the partition the router chose.
		if want, got := pc.Route(entries[i]), pc.Owner(s.Ref); want != got {
			t.Errorf("entry %d routed to %d but sealed in stripe %d", i, want, got)
		}
	}
	// The merged iterator yields every live entry exactly once.
	count := 0
	for ref := range pc.EntriesSeq() {
		if !refs[ref] {
			continue // carried genesis-side entries etc.
		}
		count++
	}
	if count != len(entries) {
		t.Errorf("EntriesSeq yielded %d of %d submitted entries", count, len(entries))
	}
	if err := pc.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestProveDeletedVerifiesAcrossPartitions(t *testing.T) {
	env := newEnv(t, owners...)
	pc := newPartitioned(t, testConfig(env, 4))
	ctx := context.Background()

	victims := make([]block.Ref, 0, len(owners))
	for _, u := range owners {
		victims = append(victims, deleteAndTruncate(t, pc, env, u, u))
	}
	parts := make(map[int]bool)
	for _, v := range victims {
		parts[pc.Owner(v)] = true
		proof, err := pc.ProveDeleted(ctx, v)
		if err != nil {
			t.Fatalf("prove %s: %v", v, err)
		}
		if err := proof.Verify(); err != nil {
			t.Fatalf("verify %s: %v", v, err)
		}
		if proof.Partition != pc.Owner(v) {
			t.Errorf("proof claims partition %d, stripe says %d", proof.Partition, pc.Owner(v))
		}
		// The proof chains to the spine head (or a prefix of it).
		heads := pc.SpineBlocks()
		found := false
		for _, b := range heads {
			if b.Hash() == proof.HeadHash() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("proof head %s not on the spine", proof.HeadHash().Short())
		}
		// Tampering with the record chain must break verification.
		bad := *proof
		bad.PriorChain[0] ^= 1
		if bad.Verify() == nil {
			t.Error("tampered PriorChain still verifies")
		}
		bad = *proof
		bad.Anchor.RecordChain[0] ^= 1
		if bad.Verify() == nil {
			t.Error("tampered anchor still verifies")
		}
	}
	if len(parts) < 2 {
		t.Fatalf("victims landed on %d partition(s); cross-partition property untested", len(parts))
	}
	if err := pc.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Merged tombstones cover every victim, ordered by time.
	recs, err := pc.Tombstones(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range victims {
		covered := false
		for _, r := range recs {
			if r.Covers(v.Block) {
				if _, ok := r.FindTombstone(v); ok {
					covered = true
					break
				}
			}
		}
		if !covered {
			t.Errorf("merged tombstones miss victim %s", v)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Errorf("merged records out of time order at %d", i)
		}
	}
	floors := pc.ResurrectionFloors()
	if len(floors) != 4 {
		t.Fatalf("%d floors for 4 partitions", len(floors))
	}
}

func TestRestartFromPartitionedStore(t *testing.T) {
	env := newEnv(t, owners...)
	dir := t.TempDir()
	cfg := testConfig(env, 3)
	cfg.Dir = dir
	cfg.Chain.Clock = simclock.NewLogical(0)
	pc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	victim := deleteAndTruncate(t, pc, env, "alice", "persisted")
	sealed, err := pc.SubmitWait(ctx, env.data("bob", "survivor"))
	if err != nil {
		t.Fatal(err)
	}
	survivor := sealed[0].Ref
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening with a different layout is refused.
	bad := testConfig(env, 4)
	bad.Dir = dir
	if _, err := New(bad); !errors.Is(err, chain.ErrConfig) {
		t.Fatalf("layout mismatch accepted: %v", err)
	}

	// Reopening with the same layout restores chains, tombstones, and
	// the spine's record trackers.
	cfg2 := testConfig(env, 3)
	cfg2.Dir = dir
	cfg2.Chain.Clock = simclock.NewLogical(1 << 20)
	pc2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	found := false
	for ref := range pc2.EntriesSeq() {
		if ref == survivor {
			found = true
		}
	}
	if !found {
		t.Error("survivor entry lost across restart")
	}
	proof, err := pc2.ProveDeleted(ctx, victim)
	if err != nil {
		t.Fatalf("prove after restart: %v", err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("verify after restart: %v", err)
	}
	if err := pc2.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentOpenRefusesPartitionedRoot(t *testing.T) {
	env := newEnv(t, "alice")
	dir := t.TempDir()
	cfg := testConfig(env, 2)
	cfg.Dir = dir
	pc := newPartitioned(t, cfg)
	if !IsStoreRoot(dir) {
		t.Fatal("root not marked partitioned")
	}
	_ = pc
	if _, err := segment.Open(dir, segment.Options{}); err == nil ||
		!strings.Contains(err.Error(), "partitioned store root") {
		t.Fatalf("segment.Open on a partitioned root: %v", err)
	}
}

func TestStatsAndPipelineStatsMerge(t *testing.T) {
	env := newEnv(t, owners...)
	pc := newPartitioned(t, testConfig(env, 4))
	ctx := context.Background()
	var entries []*block.Entry
	for _, u := range owners {
		entries = append(entries, env.data(u, "stats-"+u))
	}
	if _, err := pc.SubmitWait(ctx, entries...); err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.LiveEntries < len(owners) {
		t.Errorf("merged LiveEntries %d < %d submitted", st.LiveEntries, len(owners))
	}
	var appended uint64
	for p := 0; p < 4; p++ {
		appended += pc.Part(p).Stats().AppendedBlocks
	}
	if st.AppendedBlocks != appended {
		t.Errorf("merged AppendedBlocks %d, per-partition sum %d", st.AppendedBlocks, appended)
	}
	ps := pc.PipelineStats()
	if ps.Entries < uint64(len(owners)) {
		t.Errorf("merged pipeline Entries %d < %d", ps.Entries, len(owners))
	}
	// The verify snapshot is the shared pool's, not a per-partition sum:
	// it must equal one partition's snapshot counters, not four times it.
	single := pc.Part(0).PipelineStats().Verify
	if ps.Verify.Workers != single.Workers {
		t.Errorf("merged Verify.Workers %d, single-pool snapshot %d", ps.Verify.Workers, single.Workers)
	}
	var depth, capSum int
	for p := 0; p < 4; p++ {
		s := pc.Part(p).PipelineStats()
		depth += s.QueueDepth
		capSum += s.QueueCap
	}
	if ps.QueueCap != capSum {
		t.Errorf("merged QueueCap %d, sum %d", ps.QueueCap, capSum)
	}
	_ = depth
}

func TestFacadeLevelErrors(t *testing.T) {
	if _, err := New(Config{Partitions: 0}); !errors.Is(err, chain.ErrConfig) {
		t.Errorf("zero partitions accepted: %v", err)
	}
	env := newEnv(t, "alice")
	cfg := testConfig(env, 2)
	cfg.Chain.Durability = chain.Durability{Mode: chain.DurabilityGroup}
	if _, err := New(cfg); !errors.Is(err, chain.ErrConfig) {
		t.Errorf("group durability without Dir accepted: %v", err)
	}
}
