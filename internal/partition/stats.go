package partition

import (
	"github.com/seldel/seldel/internal/mempool"
)

// mergePipelineStats folds the per-partition pipeline snapshots into
// one view. mempool.Stats was designed for a single pipeline, so each
// gauge needs an explicit merge rule:
//
//   - Batches, Entries, Rejected: summed — they are monotonic counters
//     of disjoint work.
//   - QueueDepth, QueueCap: summed — total staged work and total intake
//     capacity across partitions; depth near cap still means producers
//     are about to block somewhere.
//   - AutoLinger: maximum — the worst adaptive linger any partition is
//     currently applying (averaging would hide a hot partition).
//   - Verify: taken from one partition, NOT summed. All partitions
//     share a single verification pool, so each per-partition snapshot
//     already describes the whole pool; summing would multiply every
//     pool counter by the partition count.
//   - Compaction: Pending, Truncations, BlocksCompacted, and
//     BytesReclaimed are summed (disjoint physical work); LastMarker is
//     the maximum (markers live in disjoint stripes, so the max is the
//     most recent high-stripe truncation; recover the partition as
//     LastMarker / StrideWidth()); Synchronous is the logical AND —
//     the merged pipeline is only synchronous if every partition is.
//   - Index: Live, Peak, and Rebuilds are summed. Peak is summed too,
//     which makes the merged Peak an upper bound on any instantaneous
//     global peak (partitions peak at different times).
func mergePipelineStats(all []mempool.Stats) mempool.Stats {
	var out mempool.Stats
	for i, s := range all {
		out.Batches += s.Batches
		out.Entries += s.Entries
		out.Rejected += s.Rejected
		out.QueueDepth += s.QueueDepth
		out.QueueCap += s.QueueCap
		if s.AutoLinger > out.AutoLinger {
			out.AutoLinger = s.AutoLinger
		}
		if i == 0 {
			out.Verify = s.Verify
			out.Compaction.Synchronous = s.Compaction.Synchronous
		}
		out.Compaction.Pending += s.Compaction.Pending
		out.Compaction.Truncations += s.Compaction.Truncations
		out.Compaction.BlocksCompacted += s.Compaction.BlocksCompacted
		out.Compaction.BytesReclaimed += s.Compaction.BytesReclaimed
		if s.Compaction.LastMarker > out.Compaction.LastMarker {
			out.Compaction.LastMarker = s.Compaction.LastMarker
		}
		out.Compaction.Synchronous = out.Compaction.Synchronous && s.Compaction.Synchronous
		out.Index.Live += s.Index.Live
		out.Index.Peak += s.Index.Peak
		out.Index.Rebuilds += s.Index.Rebuilds
	}
	return out
}
