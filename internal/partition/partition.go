// Package partition shards the selective-deletion chain's write path
// across N independent sub-chains — the PatChain model adapted to the
// paper's summary-block geometry. Each partition runs the full existing
// pipeline (its own mempool batcher, sealer, carried-entry ledger,
// compactor, and segment-store directory) behind one shared verify
// pool, so Submit throughput scales with partition count instead of
// serializing on a single chain mutex.
//
// Global integrity survives the split through two mechanisms. First,
// block numbers are striped: partition i numbers its blocks from
// i·Stride(l), so every entry Ref stays globally unique and the owning
// partition of any Ref is Ref.Block / Stride(l). Second, every
// truncation anchors the partition's head — height, head hash, current
// Σ summary hash, and a running digest chain over its deletion records
// — into a lightweight spine chain, so a deletion proof issued by one
// partition verifies against a cross-partition commitment (see Proof).
//
// Entries route by consistent hash (jump hash over 64-bit FNV-1a) of a
// partition key, the entry Owner by default, so one participant's data
// and the deletion requests that target it land on the same partition.
// Deletion requests route by their target's stripe, making fan-out a
// single-partition operation.
package partition

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"os"
	"sort"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/store"
	"github.com/seldel/seldel/internal/store/segment"
)

// Config parameterizes a partitioned chain.
type Config struct {
	// Partitions is the number of sub-chains (≥ 1).
	Partitions int
	// Chain is the per-partition chain configuration template.
	// BaseBlock is overwritten per partition (i·Stride(l)); everything
	// else applies to every partition. A nil Verifier resolves to the
	// shared pool — either way all partitions verify through the same
	// pool. A nil Clock gives each partition its own logical clock.
	Chain chain.Config
	// Key extracts the partition key from a non-deletion entry; nil
	// routes by Entry.Owner. Deletion entries ignore it and route by
	// their target's block stripe.
	Key func(*block.Entry) string
	// Dir, when non-empty, persists each partition into a segment
	// store under Dir/p000, Dir/p001, ... with a PARTITIONS metadata
	// file at the root. Populated partition stores are restored.
	Dir string
	// Segment configures the per-partition segment stores (Dir only).
	Segment segment.Options
	// Listeners are registered on every partition chain.
	Listeners []chain.Listener
}

// Chain is a partitioned selective-deletion chain: N sub-chains behind
// a router plus the spine that cross-links their heads. All methods are
// safe for concurrent use.
type Chain struct {
	cfg    Config
	stride uint64
	keyFn  func(*block.Entry) string
	parts  []*chain.Chain
	spine  *spine
}

// New builds a partitioned chain. With cfg.Dir set, per-partition
// segment stores are opened (or created) under it; partitions that
// already hold blocks are restored, and the spine is re-seeded from
// their durable deletion manifests before the initial anchor.
func New(cfg Config) (*Chain, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("%w: partitions must be ≥ 1, got %d", chain.ErrConfig, cfg.Partitions)
	}
	if cfg.Chain.SequenceLength == 0 {
		cfg.Chain.SequenceLength = 3
	}
	if cfg.Chain.SequenceLength < 2 {
		return nil, fmt.Errorf("%w: sequence length must be ≥ 2", chain.ErrConfig)
	}
	if cfg.Chain.Durability.Mode == chain.DurabilityGroup && cfg.Dir == "" {
		return nil, fmt.Errorf("%w: group durability needs per-partition stores (set Dir)", chain.ErrConfig)
	}
	stride := Stride(cfg.Chain.SequenceLength)
	pc := &Chain{
		cfg:    cfg,
		stride: stride,
		keyFn:  cfg.Key,
		spine:  newSpine(cfg.Partitions),
	}
	if pc.keyFn == nil {
		pc.keyFn = func(e *block.Entry) string { return e.Owner }
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("partition: create root: %w", err)
		}
		want := meta{
			Partitions:     cfg.Partitions,
			Stride:         stride,
			SequenceLength: cfg.Chain.SequenceLength,
		}
		if err := loadOrInitMeta(cfg.Dir, want); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Partitions; i++ {
		c, err := pc.openPartition(i)
		if err != nil {
			pc.closeParts()
			return nil, fmt.Errorf("partition %d: %w", i, err)
		}
		pc.parts = append(pc.parts, c)
	}
	// Seed the spine's record trackers from whatever deletion records
	// the partitions already carry (restored manifests), then seal the
	// genesis spine block anchoring every partition's starting state.
	anchors := make([]Anchor, cfg.Partitions)
	pc.spine.mu.Lock()
	for p, c := range pc.parts {
		recs, err := c.Tombstones(context.Background())
		if err != nil {
			pc.spine.mu.Unlock()
			pc.closeParts()
			return nil, fmt.Errorf("partition %d: seed spine: %w", p, err)
		}
		t := pc.spine.trackers[p]
		for j := range recs {
			t.ingest(recordDigest(&recs[j]))
		}
		a := pc.anchorState(p)
		a.Records = t.count()
		a.RecordChain = t.prefix[a.Records]
		anchors[p] = a
	}
	pc.spine.appendLocked(anchors)
	pc.spine.mu.Unlock()
	// Anchor listeners go on last, so the genesis spine block above is
	// unambiguously first and restore replay cannot race it.
	for p, c := range pc.parts {
		c.AddListener(&anchorListener{pc: pc, p: p})
	}
	return pc, nil
}

// openPartition builds (or restores) sub-chain i with its block-number
// stripe and, when Dir is set, its segment store.
func (pc *Chain) openPartition(i int) (*chain.Chain, error) {
	cc := pc.cfg.Chain
	cc.BaseBlock = uint64(i) * pc.stride
	if pc.cfg.Dir == "" {
		c, err := chain.New(cc)
		if err != nil {
			return nil, err
		}
		for _, l := range pc.cfg.Listeners {
			c.AddListener(l)
		}
		return c, nil
	}
	s, err := segment.Open(subdirPath(pc.cfg.Dir, i), pc.cfg.Segment)
	if err != nil {
		return nil, err
	}
	if cc.Durability.Mode == chain.DurabilityGroup {
		cc.Durability.Sync = s.Sync
	}
	var c *chain.Chain
	_, _, populated, rerr := s.Range()
	if rerr != nil {
		s.Close()
		return nil, fmt.Errorf("probing store: %w", rerr)
	}
	if populated {
		c, _, err = store.OpenChain(cc, s)
	} else {
		c, err = chain.New(cc)
		if err == nil {
			_, err = store.Attach(c, s)
		}
	}
	if err != nil {
		s.Close()
		return nil, err
	}
	c.Own(s)
	for _, l := range pc.cfg.Listeners {
		c.AddListener(l)
	}
	return c, nil
}

func subdirPath(root string, p int) string {
	return root + string(os.PathSeparator) + subdirName(p)
}

func (pc *Chain) closeParts() {
	for _, c := range pc.parts {
		c.Close()
	}
}

// anchorListener turns every truncation of one partition into a spine
// anchor, so each deletion record is bracketed by an anchor sealed
// after it. OnTruncateEvent runs on the partition's compactor goroutine
// with no chain lock held; it snapshots the chain state before taking
// the spine lock, keeping the lock order acyclic.
type anchorListener struct {
	pc *Chain
	p  int
}

func (a *anchorListener) OnAppend(*block.Block)  {}
func (a *anchorListener) OnTruncate(_, _ uint64) {}
func (a *anchorListener) OnTruncateEvent(ev compact.Event) {
	if ev.Record == nil {
		return
	}
	a.pc.anchorAfterTruncate(a.p, *ev.Record)
}

var _ chain.Listener = (*anchorListener)(nil)
var _ chain.TruncateEventListener = (*anchorListener)(nil)

// anchorAfterTruncate folds rec into partition p's record chain and
// seals a spine block anchoring p's post-truncation head.
func (pc *Chain) anchorAfterTruncate(p int, rec manifest.Record) {
	st := pc.anchorState(p)
	d := recordDigest(&rec)
	pc.spine.mu.Lock()
	defer pc.spine.mu.Unlock()
	t := pc.spine.trackers[p]
	t.ingest(d)
	st.Records = t.count()
	st.RecordChain = t.prefix[st.Records]
	pc.spine.appendLocked([]Anchor{st})
}

// anchorState snapshots partition p's anchorable head state. Records
// and RecordChain are filled by the caller under the spine lock.
func (pc *Chain) anchorState(p int) Anchor {
	c := pc.parts[p]
	a := Anchor{
		Partition: p,
		Marker:    c.Marker(),
		HeadHash:  c.HeadHash(),
		Floor:     c.ResurrectionFloor(),
	}
	a.Head = c.Head().Number
	if mb, ok := c.Block(a.Marker); ok {
		a.SummaryHash = mb.Hash()
	}
	return a
}

// syncPartition folds every deletion record partition p has sealed into
// the spine (waiting out pending compactions first) and, when new
// records arrived since the last anchor, seals a fresh anchor covering
// them. It is the on-demand complement to the truncation listener:
// after it returns, every record of p is anchored.
func (pc *Chain) syncPartition(ctx context.Context, p int) error {
	recs, err := pc.parts[p].Tombstones(ctx)
	if err != nil {
		return err
	}
	st := pc.anchorState(p)
	pc.spine.mu.Lock()
	defer pc.spine.mu.Unlock()
	t := pc.spine.trackers[p]
	for i := range recs {
		t.ingest(recordDigest(&recs[i]))
	}
	if t.count() > pc.spine.anchored[p] {
		st.Records = t.count()
		st.RecordChain = t.prefix[st.Records]
		pc.spine.appendLocked([]Anchor{st})
	}
	return nil
}

// Partitions returns the number of sub-chains.
func (pc *Chain) Partitions() int { return len(pc.parts) }

// StrideWidth returns the block-number stripe width between partitions.
func (pc *Chain) StrideWidth() uint64 { return pc.stride }

// Part exposes sub-chain p for inspection (per-partition stats, head,
// rendering). Mutating through it bypasses the router; don't.
func (pc *Chain) Part(p int) *chain.Chain { return pc.parts[p] }

// Route returns the partition an entry would be submitted to: the
// target's block stripe for deletion requests, the consistent hash of
// the partition key otherwise.
func (pc *Chain) Route(e *block.Entry) int {
	if e.Kind == block.KindDeletion && !e.Target.IsZero() {
		if p := int(e.Target.Block / pc.stride); p < len(pc.parts) {
			return p
		}
		// A target outside every stripe cannot exist anywhere; route it
		// to the last partition, whose validation rejects it normally.
		return len(pc.parts) - 1
	}
	return jumpHash(hashKey(pc.keyFn(e)), len(pc.parts))
}

// Owner returns the partition owning block-number ref, or -1 when the
// stripe is out of range.
func (pc *Chain) Owner(ref block.Ref) int {
	if p := int(ref.Block / pc.stride); p < len(pc.parts) {
		return p
	}
	return -1
}

// Submit routes entries to their partitions and submits each group
// through that partition's pipeline, returning receipts in the original
// entry order. Unlike the single chain, entries of one call are NOT
// guaranteed to seal in the same block once they route to different
// partitions. On error, groups already handed to earlier partitions
// stay submitted; their receipts are lost with the error.
func (pc *Chain) Submit(ctx context.Context, entries ...*block.Entry) ([]mempool.Receipt, error) {
	if len(pc.parts) == 1 {
		return pc.parts[0].Submit(ctx, entries...)
	}
	groups := pc.group(entries)
	out := make([]mempool.Receipt, len(entries))
	for p, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		sub := make([]*block.Entry, len(idx))
		for j, k := range idx {
			sub[j] = entries[k]
		}
		recs, err := pc.parts[p].Submit(ctx, sub...)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
		for j, r := range recs {
			out[idx[j]] = r
		}
	}
	return out, nil
}

// SubmitWait routes entries like Submit and waits for every receipt,
// returning seal results in the original entry order.
func (pc *Chain) SubmitWait(ctx context.Context, entries ...*block.Entry) ([]mempool.Sealed, error) {
	if len(pc.parts) == 1 {
		return pc.parts[0].SubmitWait(ctx, entries...)
	}
	groups := pc.group(entries)
	out := make([]mempool.Sealed, len(entries))
	var firstErr error
	for p, idx := range groups {
		if len(idx) == 0 {
			continue
		}
		sub := make([]*block.Entry, len(idx))
		for j, k := range idx {
			sub[j] = entries[k]
		}
		sealed, err := pc.parts[p].SubmitWait(ctx, sub...)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("partition %d: %w", p, err)
			}
			continue
		}
		for j, s := range sealed {
			out[idx[j]] = s
		}
	}
	return out, firstErr
}

// group maps entries to per-partition index lists (original positions).
func (pc *Chain) group(entries []*block.Entry) [][]int {
	groups := make([][]int, len(pc.parts))
	for i, e := range entries {
		p := pc.Route(e)
		groups[p] = append(groups[p], i)
	}
	return groups
}

// EntriesSeq iterates all live entries across partitions, partition 0
// first, chain order within each partition. References remain globally
// unique thanks to block striping.
func (pc *Chain) EntriesSeq() iter.Seq2[block.Ref, *block.Entry] {
	return func(yield func(block.Ref, *block.Entry) bool) {
		for _, c := range pc.parts {
			for ref, e := range c.EntriesSeq() {
				if !yield(ref, e) {
					return
				}
			}
		}
	}
}

// Tombstones returns the deletion records of every partition merged
// into one audit stream, ordered by (logical time, old marker). The
// owning partition of any record is recoverable as
// OldMarker / StrideWidth().
func (pc *Chain) Tombstones(ctx context.Context) ([]manifest.Record, error) {
	var all []manifest.Record
	for p, c := range pc.parts {
		recs, err := c.Tombstones(ctx)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Time != all[j].Time {
			return all[i].Time < all[j].Time
		}
		return all[i].OldMarker < all[j].OldMarker
	})
	return all, nil
}

// ResurrectionFloors returns each partition's sync resurrection floor,
// indexed by partition.
func (pc *Chain) ResurrectionFloors() []uint64 {
	floors := make([]uint64, len(pc.parts))
	for p, c := range pc.parts {
		floors[p] = c.ResurrectionFloor()
	}
	return floors
}

// Stats sums the per-partition chain statistics; every chain.Stats
// field is a count, so the merge is additive across partitions.
func (pc *Chain) Stats() chain.Stats {
	var out chain.Stats
	for _, c := range pc.parts {
		s := c.Stats()
		out.LiveBlocks += s.LiveBlocks
		out.LiveBytes += s.LiveBytes
		out.LiveEntries += s.LiveEntries
		out.CarriedEntries += s.CarriedEntries
		out.AppendedBlocks += s.AppendedBlocks
		out.CutBlocks += s.CutBlocks
		out.ActiveMarks += s.ActiveMarks
		out.ForgottenEntries += s.ForgottenEntries
		out.ExpiredEntries += s.ExpiredEntries
		out.RejectedRequests += s.RejectedRequests
	}
	return out
}

// PipelineStats merges the per-partition submission-pipeline snapshots;
// see mergePipelineStats for the per-gauge semantics.
func (pc *Chain) PipelineStats() mempool.Stats {
	all := make([]mempool.Stats, len(pc.parts))
	for p, c := range pc.parts {
		all[p] = c.PipelineStats()
	}
	return mergePipelineStats(all)
}

// CompactWait blocks until every partition's pending compactions are
// physically executed (or ctx is cancelled).
func (pc *Chain) CompactWait(ctx context.Context) error {
	for p, c := range pc.parts {
		if err := c.CompactWait(ctx); err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
	}
	return nil
}

// AnchorAll folds every partition's deletion records into the spine and
// seals one spine block anchoring all current heads — the periodic
// anchor for deployments that want fresh head commitments between
// truncations.
func (pc *Chain) AnchorAll(ctx context.Context) error {
	// Wait for pending truncation records first, so the combined anchor
	// covers them.
	for p, c := range pc.parts {
		if err := c.CompactWait(ctx); err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
	}
	anchors := make([]Anchor, len(pc.parts))
	states := make([]Anchor, len(pc.parts))
	recs := make([][]manifest.Record, len(pc.parts))
	for p, c := range pc.parts {
		rs, err := c.Tombstones(ctx)
		if err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
		recs[p] = rs
		states[p] = pc.anchorState(p)
	}
	pc.spine.mu.Lock()
	defer pc.spine.mu.Unlock()
	for p := range pc.parts {
		t := pc.spine.trackers[p]
		for i := range recs[p] {
			t.ingest(recordDigest(&recs[p][i]))
		}
		a := states[p]
		a.Records = t.count()
		a.RecordChain = t.prefix[a.Records]
		anchors[p] = a
	}
	pc.spine.appendLocked(anchors)
	return nil
}

// SpineBlocks returns a copy of the spine chain, genesis first.
func (pc *Chain) SpineBlocks() []SpineBlock { return pc.spine.snapshot() }

// SpineHead returns the newest spine block.
func (pc *Chain) SpineHead() SpineBlock {
	blocks := pc.spine.snapshot()
	return blocks[len(blocks)-1]
}

// VerifyIntegrity re-validates every partition chain and the spine:
// per-partition hash links and summaries, spine hash links, and every
// anchor's record chain against the observed record stream.
func (pc *Chain) VerifyIntegrity() error {
	for p, c := range pc.parts {
		if err := c.VerifyIntegrity(); err != nil {
			return fmt.Errorf("partition %d: %w", p, err)
		}
	}
	return pc.spine.verify()
}

// Close drains and closes every partition (pipelines, compactors, and
// owned stores), returning the first error.
func (pc *Chain) Close() error {
	var firstErr error
	for p, c := range pc.parts {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("partition %d: %w", p, err)
		}
	}
	return firstErr
}

// errProofState signals an internal inconsistency while assembling a
// partitioned proof (never expected after a successful syncPartition).
var errProofState = errors.New("partition: proof assembly state inconsistent")
