package partition

// hashKey is 64-bit FNV-1a over the partition key. Deterministic across
// processes and platforms, so a restarted deployment routes every owner
// to the same partition it wrote to before.
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// jumpHash is the Lamping–Veach jump consistent hash: it maps key to a
// bucket in [0, buckets) such that growing the bucket count moves only
// ~1/buckets of the keys — the property that would let a future PR add
// partitions without reshuffling every owner.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Stride returns the block-number stripe width for sequence length l:
// the largest multiple of l not exceeding 2^44. Partition i numbers its
// blocks from i·Stride(l), so every block number (and therefore every
// entry Ref) is globally unique and the owning partition of a Ref is
// recovered as Ref.Block / Stride(l). Keeping the stride a multiple of
// l preserves the chain's summary-slot rule and restore alignment; 2^44
// blocks per partition is far beyond any realistic chain lifetime while
// leaving room for 2^20 partitions below uint64 overflow.
func Stride(l int) uint64 {
	return (uint64(1) << 44) / uint64(l) * uint64(l)
}
