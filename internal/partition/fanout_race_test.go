package partition

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/seldel/seldel/internal/block"
)

// TestConcurrentDeletionFanOut is the cross-partition race check (run
// under -race in CI): deletion requests for entries spread over 4
// partitions execute concurrently with an ongoing submit load, and
// afterwards every partition that truncated has its own tombstone
// records with a spine anchor bracketing every one of them.
func TestConcurrentDeletionFanOut(t *testing.T) {
	env := newEnv(t, owners...)
	pc := newPartitioned(t, testConfig(env, 4))
	ctx := context.Background()

	// Phase 1: seed victims across the partitions.
	victims := make(map[string]block.Ref)
	for _, u := range owners {
		sealed, err := pc.SubmitWait(ctx, env.data(u, "victim-"+u))
		if err != nil {
			t.Fatal(err)
		}
		victims[u] = sealed[0].Ref
	}
	parts := make(map[int]bool)
	for _, v := range victims {
		parts[pc.Owner(v)] = true
	}
	if len(parts) < 2 {
		t.Fatalf("victims on %d partition(s); fan-out untested", len(parts))
	}

	// Phase 2: deletions fan out concurrently with submit churn. The
	// churn drives each partition past its retention bound, so the
	// deletions truncate while other goroutines keep writing.
	var wg sync.WaitGroup
	errs := make(chan error, len(owners)*2)
	for _, u := range owners {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			if _, err := pc.SubmitWait(ctx, env.del(u, victims[u])); err != nil {
				errs <- fmt.Errorf("delete %s: %w", u, err)
			}
		}(u)
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				if _, err := pc.SubmitWait(ctx, env.data(u, fmt.Sprintf("churn-%s-%d", u, i))); err != nil {
					errs <- fmt.Errorf("churn %s: %w", u, err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Push every victim's partition past its victim if churn alone was
	// not enough, then let compaction settle.
	for u, v := range victims {
		p := pc.Owner(v)
		for i := 0; pc.Part(p).Marker() <= v.Block; i++ {
			if i > 64 {
				t.Fatalf("partition %d never truncated past %s", p, v)
			}
			if _, err := pc.SubmitWait(ctx, env.data(u, fmt.Sprintf("push-%s-%d", u, i))); err != nil {
				t.Fatal(err)
			}
			if err := pc.Part(p).CompactWait(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := pc.CompactWait(ctx); err != nil {
		t.Fatal(err)
	}

	// Per-partition tombstone records exist for every truncating
	// partition, and every victim's tombstone is in its own partition's
	// records (not another partition's).
	for p := range parts {
		recs, err := pc.Part(p).Tombstones(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Errorf("partition %d truncated but has no deletion records", p)
		}
		stride := pc.StrideWidth()
		for _, r := range recs {
			if r.OldMarker/stride != uint64(p) && r.OldMarker != 0 {
				t.Errorf("partition %d record covers stripe %d", p, r.OldMarker/stride)
			}
		}
	}
	for u, v := range victims {
		recs, err := pc.Part(pc.Owner(v)).Tombstones(ctx)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range recs {
			if _, ok := r.FindTombstone(v); ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("victim %s (%s) has no tombstone on its partition", u, v)
		}
	}

	// Spine bracket: every deletion record of every partition is
	// covered by an anchor sealed at or after it — syncing first so
	// records whose truncation just executed are anchored too.
	if err := pc.AnchorAll(ctx); err != nil {
		t.Fatal(err)
	}
	pc.spine.mu.Lock()
	for p := range pc.parts {
		tr := pc.spine.trackers[p]
		for k := uint64(0); k < tr.count(); k++ {
			if _, _, ok := pc.spine.coveringAnchorLocked(p, k); !ok {
				t.Errorf("record %d of partition %d has no bracketing anchor", k, p)
			}
		}
	}
	pc.spine.mu.Unlock()
	if err := pc.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}

	// And the proofs the spine exists for still verify, concurrently.
	var pwg sync.WaitGroup
	perr := make(chan error, len(victims))
	for _, v := range victims {
		pwg.Add(1)
		go func(v block.Ref) {
			defer pwg.Done()
			proof, err := pc.ProveDeleted(ctx, v)
			if err != nil {
				perr <- err
				return
			}
			if err := proof.Verify(); err != nil {
				perr <- err
			}
		}(v)
	}
	pwg.Wait()
	close(perr)
	for err := range perr {
		t.Fatal(err)
	}
}
