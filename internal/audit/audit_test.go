package audit

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

func setup(t *testing.T) (*chain.Chain, *Logger, map[string]*identity.KeyPair) {
	t.Helper()
	reg := identity.NewRegistry()
	keys := make(map[string]*identity.KeyPair)
	for _, name := range []string{"ALPHA", "BRAVO", "CHARLIE"} {
		kp := identity.Deterministic(name, "audit-test")
		if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
		keys[name] = kp
	}
	c, err := chain.New(chain.Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	logger, err := NewLogger(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, logger, keys
}

func TestLogAndDecode(t *testing.T) {
	c, logger, keys := setup(t)
	ev := LoginEvent{User: "ALPHA", Terminal: "tty1", Success: true, At: 42}
	ref, err := logger.Log(keys["ALPHA"], ev)
	if err != nil {
		t.Fatalf("Log: %v", err)
	}
	entry, _, ok := c.Lookup(ref)
	if !ok {
		t.Fatal("logged entry not found")
	}
	back, err := Decode(entry)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back != ev {
		t.Errorf("decoded %+v, want %+v", back, ev)
	}
	if back.String() != "login ALPHA tty1 ok" {
		t.Errorf("String = %q", back.String())
	}
}

func TestEventStringFail(t *testing.T) {
	ev := LoginEvent{User: "BRAVO", Terminal: "tty9", Success: false}
	if ev.String() != "login BRAVO tty9 fail" {
		t.Errorf("String = %q", ev.String())
	}
}

func TestSchemaValidationRejectsOversizedUser(t *testing.T) {
	_, logger, keys := setup(t)
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'x'
	}
	_, err := logger.EntryFor(keys["ALPHA"], LoginEvent{User: string(long), Terminal: "tty"})
	if !errors.Is(err, ErrSchema) {
		t.Errorf("err = %v, want ErrSchema", err)
	}
}

func TestVerifyAuthenticity(t *testing.T) {
	c, logger, keys := setup(t)
	ref, err := logger.Log(keys["BRAVO"], LoginEvent{User: "BRAVO", Terminal: "tty1", Success: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := logger.VerifyAuthenticity(ref); err != nil {
		t.Errorf("VerifyAuthenticity: %v", err)
	}
	if err := logger.VerifyAuthenticity(block.Ref{Block: 99}); err == nil {
		t.Error("missing ref verified")
	}
	_ = c
}

func TestQueryFilters(t *testing.T) {
	_, logger, keys := setup(t)
	events := []LoginEvent{
		{User: "ALPHA", Terminal: "tty1", Success: true},
		{User: "ALPHA", Terminal: "tty2", Success: false},
		{User: "BRAVO", Terminal: "tty1", Success: false},
		{User: "CHARLIE", Terminal: "tty3", Success: true},
	}
	for _, ev := range events {
		if _, err := logger.Log(keys[ev.User], ev); err != nil {
			t.Fatal(err)
		}
	}
	all, err := logger.Query(QueryOptions{})
	if err != nil || len(all) != 4 {
		t.Fatalf("all = %d, %v", len(all), err)
	}
	alpha, err := logger.Query(QueryOptions{User: "ALPHA"})
	if err != nil || len(alpha) != 2 {
		t.Fatalf("alpha = %d, %v", len(alpha), err)
	}
	failed, err := logger.Query(QueryOptions{FailedOnly: true})
	if err != nil || len(failed) != 2 {
		t.Fatalf("failed = %d, %v", len(failed), err)
	}
	tty1, err := logger.Query(QueryOptions{Terminal: "tty1"})
	if err != nil || len(tty1) != 2 {
		t.Fatalf("tty1 = %d, %v", len(tty1), err)
	}
	both, err := logger.Query(QueryOptions{User: "ALPHA", FailedOnly: true})
	if err != nil || len(both) != 1 {
		t.Fatalf("both = %d, %v", len(both), err)
	}
}

func TestQueryCoversCarriedEntriesAndSkipsMarked(t *testing.T) {
	c, logger, keys := setup(t)
	ref, err := logger.Log(keys["ALPHA"], LoginEvent{User: "ALPHA", Terminal: "tty1", Success: true})
	if err != nil {
		t.Fatal(err)
	}
	bravoRef, err := logger.Log(keys["BRAVO"], LoginEvent{User: "BRAVO", Terminal: "tty1", Success: true})
	if err != nil {
		t.Fatal(err)
	}
	// Drive into a merge so both logins are carried.
	for i := 0; i < 6; i++ {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, loc, ok := c.Lookup(ref); !ok || !loc.Carried {
		t.Fatalf("precondition: entry not carried (ok=%v loc=%+v)", ok, loc)
	}
	hits, err := logger.Query(QueryOptions{})
	if err != nil || len(hits) != 2 {
		t.Fatalf("hits = %d, %v", len(hits), err)
	}
	if !hits[0].Carried {
		t.Error("carried flag not set on summary hit")
	}
	// Mark BRAVO's entry: it must vanish from queries immediately.
	del := block.NewDeletion("BRAVO", bravoRef).Sign(keys["BRAVO"])
	if _, err := c.SubmitWait(context.Background(), del); err != nil {
		t.Fatal(err)
	}
	hits, err = logger.Query(QueryOptions{})
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits after mark = %d, %v", len(hits), err)
	}
	if hits[0].Event.User != "ALPHA" {
		t.Errorf("surviving hit = %+v", hits[0])
	}
}

func TestTemporaryEntryExpires(t *testing.T) {
	c, logger, keys := setup(t)
	entry, err := logger.TemporaryEntryFor(keys["ALPHA"],
		LoginEvent{User: "ALPHA", Terminal: "tty1", Success: true}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := c.SubmitWait(context.Background(), entry)
	if err != nil {
		t.Fatal(err)
	}
	ref := sealed[0].Ref
	for i := 0; i < 10; i++ {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Lookup(ref); ok {
		t.Error("temporary login survived its deadline")
	}
}

func TestDecodeRejectsNonLogin(t *testing.T) {
	kp := identity.Deterministic("x", "audit-test")
	cases := []*block.Entry{
		block.NewDeletion("x", block.Ref{Block: 1}).Sign(kp),
		block.NewData("x", []byte("not a record")).Sign(kp),
	}
	for i, e := range cases {
		if _, err := Decode(e); !errors.Is(err, ErrNotLogin) {
			t.Errorf("case %d: err = %v, want ErrNotLogin", i, err)
		}
	}
}

func TestLoggerSurvivesRetentionCycles(t *testing.T) {
	c, logger, keys := setup(t)
	var refs []block.Ref
	for i := 0; i < 12; i++ {
		ref, err := logger.Log(keys["ALPHA"], LoginEvent{
			User: "ALPHA", Terminal: fmt.Sprintf("tty%d", i), Success: true, At: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	// All logins must still be queryable (durable entries survive merges).
	hits, err := logger.Query(QueryOptions{User: "ALPHA"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(refs) {
		t.Errorf("hits = %d, want %d", len(hits), len(refs))
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Error(err)
	}
}
