// Package audit implements the paper's evaluation use case (§II, §V):
// tamper-evident logging of terminal logins to the blockchain, with
// selective deletion once retention ends.
//
// "All logins to a terminal are logged to the blockchain. Therefore, the
// signature of each specific user login is stored in a block. In this
// way, the authentication of the user can be monitored and audited."
package audit

import (
	"context"
	"errors"
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/chain"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/schema"
)

// LoginSchemaYAML is the YAML schema declaring the login-event entry
// structure ("the structure of a data entry is specified beforehand by a
// YAML schema", §V).
const LoginSchemaYAML = `
name: login_event
doc: "terminal login audit record"
fields:
  - name: user
    type: string
    required: true
    max_length: 64
  - name: terminal
    type: string
    required: true
    max_length: 64
  - name: success
    type: bool
  - name: at
    type: timestamp
`

// Errors returned by the audit logger.
var (
	ErrSchema   = errors.New("audit: record does not match login schema")
	ErrNotLogin = errors.New("audit: entry is not a login event")
)

// LoginEvent is one audited terminal login.
type LoginEvent struct {
	User     string
	Terminal string
	Success  bool
	At       uint64
}

// Record converts the event to a schema record.
func (ev LoginEvent) Record() schema.Record {
	return schema.Record{
		"user":     schema.String(ev.User),
		"terminal": schema.String(ev.Terminal),
		"success":  schema.Bool(ev.Success),
		"at":       schema.Timestamp(ev.At),
	}
}

// String renders the event in the console style of Figs. 6–8.
func (ev LoginEvent) String() string {
	status := "ok"
	if !ev.Success {
		status = "fail"
	}
	return fmt.Sprintf("login %s %s %s", ev.User, ev.Terminal, status)
}

// Logger writes signed login events into a selective-deletion chain and
// answers audit queries.
type Logger struct {
	chain  *chain.Chain
	schema *schema.Schema
}

// NewLogger builds a logger over an existing chain.
func NewLogger(c *chain.Chain) (*Logger, error) {
	s, err := schema.Parse(LoginSchemaYAML)
	if err != nil {
		return nil, fmt.Errorf("audit: parse login schema: %w", err)
	}
	return &Logger{chain: c, schema: s}, nil
}

// Schema returns the compiled login-event schema.
func (l *Logger) Schema() *schema.Schema { return l.schema }

// EntryFor builds and signs a login-event entry for the given key. The
// record is validated against the schema before signing.
func (l *Logger) EntryFor(key *identity.KeyPair, ev LoginEvent) (*block.Entry, error) {
	rec := ev.Record()
	if err := l.schema.Validate(rec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSchema, err)
	}
	return block.NewData(key.Name(), rec.Encode()).Sign(key), nil
}

// TemporaryEntryFor builds a login entry with a retention deadline: the
// event is automatically forgotten once the chain passes expireTime or
// expireBlock (§IV-D.4, "use cases … include log files of operating
// systems").
func (l *Logger) TemporaryEntryFor(key *identity.KeyPair, ev LoginEvent, expireTime, expireBlock uint64) (*block.Entry, error) {
	rec := ev.Record()
	if err := l.schema.Validate(rec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSchema, err)
	}
	return block.NewTemporary(key.Name(), rec.Encode(), expireTime, expireBlock).Sign(key), nil
}

// Log submits a login event through the chain's submission pipeline,
// waits for it to seal, and returns its stable reference. Concurrent
// loggers share blocks; the returned reference accounts for coalescing.
func (l *Logger) Log(key *identity.KeyPair, ev LoginEvent) (block.Ref, error) {
	return l.LogContext(context.Background(), key, ev)
}

// LogContext is Log with submission and sealing bounded by ctx.
func (l *Logger) LogContext(ctx context.Context, key *identity.KeyPair, ev LoginEvent) (block.Ref, error) {
	entry, err := l.EntryFor(key, ev)
	if err != nil {
		return block.Ref{}, err
	}
	sealed, err := l.chain.SubmitWait(ctx, entry)
	if err != nil {
		return block.Ref{}, err
	}
	return sealed[0].Ref, nil
}

// Submit enqueues a login event without waiting for it to seal; the
// receipt resolves to the event's stable reference once its block is
// sealed. High-throughput audit sources submit many events and wait on
// the receipts afterwards.
func (l *Logger) Submit(ctx context.Context, key *identity.KeyPair, ev LoginEvent) (mempool.Receipt, error) {
	entry, err := l.EntryFor(key, ev)
	if err != nil {
		return mempool.Receipt{}, err
	}
	receipts, err := l.chain.Submit(ctx, entry)
	if err != nil {
		return mempool.Receipt{}, err
	}
	return receipts[0], nil
}

// Decode parses a chain entry back into a login event.
func Decode(e *block.Entry) (LoginEvent, error) {
	var ev LoginEvent
	if e.Kind != block.KindData {
		return ev, ErrNotLogin
	}
	rec, err := schema.DecodeRecord(e.Payload)
	if err != nil {
		return ev, fmt.Errorf("%w: %v", ErrNotLogin, err)
	}
	user, ok := rec["user"]
	if !ok || user.Type != schema.TypeString {
		return ev, ErrNotLogin
	}
	terminal, ok := rec["terminal"]
	if !ok || terminal.Type != schema.TypeString {
		return ev, ErrNotLogin
	}
	ev.User = user.Str
	ev.Terminal = terminal.Str
	if v, ok := rec["success"]; ok && v.Type == schema.TypeBool {
		ev.Success = v.Flag
	}
	if v, ok := rec["at"]; ok && v.Type == schema.TypeTimestamp {
		ev.At = v.U64
	}
	return ev, nil
}

// QueryOptions filter audit queries.
type QueryOptions struct {
	// User restricts results to one participant; empty matches all.
	User string
	// Terminal restricts results to one terminal; empty matches all.
	Terminal string
	// FailedOnly keeps only unsuccessful logins.
	FailedOnly bool
}

// Result is one audit hit.
type Result struct {
	Ref   block.Ref
	Event LoginEvent
	// Carried reports whether the event already migrated into a summary
	// block.
	Carried bool
}

// Query streams the live chain for login events matching the options.
// The scan covers normal entries and carried entries in summary blocks;
// it skips entries marked for deletion (they are already "forgotten"
// logically even before physical deletion).
func (l *Logger) Query(opts QueryOptions) ([]Result, error) {
	var out []Result
	appendHit := func(ref block.Ref, e *block.Entry, carried bool) {
		if l.chain.IsMarked(ref) {
			return
		}
		ev, err := Decode(e)
		if err != nil {
			return // foreign entry kind in a mixed chain
		}
		if opts.User != "" && ev.User != opts.User {
			return
		}
		if opts.Terminal != "" && ev.Terminal != opts.Terminal {
			return
		}
		if opts.FailedOnly && ev.Success {
			return
		}
		out = append(out, Result{Ref: ref, Event: ev, Carried: carried})
	}
	for b := range l.chain.BlocksSeq() {
		if b.IsSummary() {
			for _, ce := range b.Carried {
				appendHit(ce.Ref(), ce.Entry, true)
			}
			continue
		}
		for i, e := range b.Entries {
			if e.Kind != block.KindData {
				continue
			}
			appendHit(block.Ref{Block: b.Header.Number, Entry: uint32(i)}, e, false)
		}
	}
	return out, nil
}

// VerifyAuthenticity re-checks the signature of the login event at ref
// against the registry — the audit property of §II ("it is mandatory
// that the authenticity of the log files is given").
func (l *Logger) VerifyAuthenticity(ref block.Ref) error {
	e, _, ok := l.chain.Lookup(ref)
	if !ok {
		return fmt.Errorf("audit: %w", chain.ErrNotFound)
	}
	return l.chain.Registry().Verify(e.Owner, e.SigningBytes(), e.Signature)
}
