// Package block defines the block structures of the selective-deletion
// blockchain: ordinary blocks, and the summary blocks Σ introduced by the
// paper (§IV-B) whose data part carries earlier entries with their
// original block number, timestamp, and entry number (Fig. 4).
package block

import (
	"errors"
	"fmt"
	"sync"

	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/merkle"
)

// BlockKind distinguishes ordinary blocks from summary blocks.
type BlockKind uint8

const (
	// KindNormal is an ordinary block holding freshly submitted entries.
	KindNormal BlockKind = iota + 1
	// KindSummary is a summary block Σ: deterministic content only,
	// carrying entries from merged sequences (§IV-B, §IV-C).
	KindSummary
)

// String returns "normal" or "summary".
func (k BlockKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindSummary:
		return "summary"
	default:
		return fmt.Sprintf("blockkind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined block kind.
func (k BlockKind) Valid() bool { return k == KindNormal || k == KindSummary }

// GenesisPrevHash is the previous-hash sentinel of the very first block.
// Its five-character short form is "DEADB", matching the Genesis Block
// shown in the paper's console output (Fig. 6).
var GenesisPrevHash = codec.Hash{0xDE, 0xAD, 0xBE}

// Header is the block header. The block hash is the hash of the canonical
// header encoding; the header commits to the body through EntriesRoot and
// SeqRefHash.
type Header struct {
	// Kind distinguishes normal from summary blocks.
	Kind BlockKind
	// Number is the block number α.
	Number uint64
	// Time is the logical timestamp τ. A summary block reuses the
	// timestamp of the block before it (§IV-B) so every node derives an
	// identical header.
	Time uint64
	// PrevHash links to the previous block (GenesisPrevHash for block 0).
	PrevHash codec.Hash
	// EntriesRoot is the Merkle root over the block's entries (normal
	// blocks) or carried entries (summary blocks).
	EntriesRoot codec.Hash
	// SeqRefHash commits to the redundancy sequence reference (Fig. 9);
	// zero when absent.
	SeqRefHash codec.Hash
	// Nonce is the consensus work field (used by proof-of-work; zero
	// under other engines and in summary blocks, which are computed, not
	// mined).
	Nonce uint64
}

// Encode returns the canonical header encoding.
func (h *Header) Encode() []byte {
	e := codec.NewEncoder(128)
	h.encodeTo(e)
	return e.Data()
}

// encodeTo appends the canonical header encoding to e.
func (h *Header) encodeTo(e *codec.Encoder) {
	e.String("seldel/header/v1")
	e.Byte(byte(h.Kind))
	e.Uint64(h.Number)
	e.Uint64(h.Time)
	e.Hash(h.PrevHash)
	e.Hash(h.EntriesRoot)
	e.Hash(h.SeqRefHash)
	e.Uint64(h.Nonce)
}

// Hash returns the block hash (hash of the canonical header encoding).
func (h *Header) Hash() codec.Hash { return codec.HashBytes(h.Encode()) }

// CarriedEntry is an entry copied into a summary block during
// summarization. Per Fig. 4, the original block number, timestamp, and
// entry number are preserved; nonce and previous hash of the origin block
// are dropped ("not needed anymore", §IV-C).
type CarriedEntry struct {
	// OriginBlock is the block number α the entry was first stored in.
	OriginBlock uint64
	// OriginTime is the timestamp τ of the origin block.
	OriginTime uint64
	// EntryNumber is the entry's index within its origin block.
	EntryNumber uint32
	// Entry is the original data entry, signature included.
	Entry *Entry
}

// Ref returns the stable (origin block, entry number) address.
func (c CarriedEntry) Ref() Ref {
	return Ref{Block: c.OriginBlock, Entry: c.EntryNumber}
}

// Encode returns the canonical encoding of the carried entry.
func (c CarriedEntry) Encode() []byte {
	e := codec.NewEncoder(64)
	c.encodeTo(e)
	return e.Data()
}

// AppendEncode appends the canonical carried-entry encoding to dst,
// reusing its capacity.
func (c CarriedEntry) AppendEncode(dst []byte) []byte {
	e := codec.NewEncoderBuf(dst)
	c.encodeTo(e)
	return e.Data()
}

// encodeTo appends the canonical carried-entry encoding to e.
func (c CarriedEntry) encodeTo(e *codec.Encoder) {
	e.Uint64(c.OriginBlock)
	e.Uint64(c.OriginTime)
	e.Uint32(c.EntryNumber)
	e.Nested(c.Entry.encodeTo)
}

func decodeCarriedFrom(d *codec.Decoder) (CarriedEntry, error) {
	var c CarriedEntry
	c.OriginBlock = d.Uint64()
	c.OriginTime = d.Uint64()
	c.EntryNumber = d.Uint32()
	// A view suffices: DecodeEntry copies every field it retains.
	raw := d.View()
	if err := d.Err(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	entry, err := DecodeEntry(raw)
	if err != nil {
		return c, err
	}
	c.Entry = entry
	return c, nil
}

// SequenceRef is the redundancy reference of Fig. 9: a summary block
// stores (at least) the Merkle root over the block hashes of a middle
// sequence ω_{lβ/2}, so every entry older than lβ/2 has ≥ lβ/2
// confirmations and a history rewrite must span at least that many blocks.
type SequenceRef struct {
	// FirstBlock and LastBlock delimit the referenced sequence.
	FirstBlock uint64
	LastBlock  uint64
	// Root is the Merkle root over the referenced blocks' hashes.
	Root codec.Hash
}

// Encode returns the canonical encoding.
func (s *SequenceRef) Encode() []byte {
	e := codec.NewEncoder(64)
	s.encodeTo(e)
	return e.Data()
}

// encodeTo appends the canonical sequence-reference encoding to e.
func (s *SequenceRef) encodeTo(e *codec.Encoder) {
	e.String("seldel/seqref/v1")
	e.Uint64(s.FirstBlock)
	e.Uint64(s.LastBlock)
	e.Hash(s.Root)
}

// Hash returns the commitment stored in Header.SeqRefHash.
func (s *SequenceRef) Hash() codec.Hash { return codec.HashBytes(s.Encode()) }

// Block is a full block: header plus body. Normal blocks hold Entries;
// summary blocks hold Carried entries and an optional SeqRef.
type Block struct {
	Header  Header
	Entries []*Entry
	Carried []CarriedEntry
	SeqRef  *SequenceRef
}

// Errors returned by block validation.
var (
	ErrBadBlock     = errors.New("block: malformed block")
	ErrRootMismatch = errors.New("block: entries root mismatch")
)

// rootThreshold is the entry count below which fanning commitment
// building across a Runner costs more than it saves.
const rootThreshold = 32

// EntriesRoot computes the Merkle root over the canonical encodings of a
// normal block's entries.
func EntriesRoot(entries []*Entry) codec.Hash { return EntriesRootWith(nil, entries) }

// EntriesRootWith is EntriesRoot with the per-entry encoding and leaf
// hashing fanned out across r (nil runs serially). The root is
// identical to EntriesRoot's.
func EntriesRootWith(r merkle.Runner, entries []*Entry) codec.Hash {
	// The leaf encodings exist only to be hashed: encode each entry into
	// a pooled scratch buffer, hash it, and hand the buffer on — no
	// per-leaf allocation survives the loop.
	hashes := make([]codec.Hash, len(entries))
	if r != nil && len(entries) >= rootThreshold {
		r.Each(len(entries), func(i int) {
			bp := leafScratchPool.Get().(*[]byte)
			*bp = entries[i].AppendEncode((*bp)[:0])
			hashes[i] = merkle.HashLeaf(*bp)
			leafScratchPool.Put(bp)
		})
	} else {
		bp := leafScratchPool.Get().(*[]byte)
		for i, e := range entries {
			*bp = e.AppendEncode((*bp)[:0])
			hashes[i] = merkle.HashLeaf(*bp)
		}
		leafScratchPool.Put(bp)
	}
	return merkle.BuildFromHashes(hashes).Root()
}

// leafScratchPool holds encode buffers for commitment-root leaf
// hashing; one buffer per worker in the fanned-out path.
var leafScratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// CarriedRoot computes the Merkle root over the canonical encodings of a
// summary block's carried entries.
func CarriedRoot(carried []CarriedEntry) codec.Hash { return CarriedRootWith(nil, carried) }

// CarriedRootWith is CarriedRoot fanned out across r, like
// EntriesRootWith.
func CarriedRootWith(r merkle.Runner, carried []CarriedEntry) codec.Hash {
	hashes := make([]codec.Hash, len(carried))
	if r != nil && len(carried) >= rootThreshold {
		r.Each(len(carried), func(i int) {
			bp := leafScratchPool.Get().(*[]byte)
			*bp = carried[i].AppendEncode((*bp)[:0])
			hashes[i] = merkle.HashLeaf(*bp)
			leafScratchPool.Put(bp)
		})
	} else {
		bp := leafScratchPool.Get().(*[]byte)
		for i, c := range carried {
			*bp = c.AppendEncode((*bp)[:0])
			hashes[i] = merkle.HashLeaf(*bp)
		}
		leafScratchPool.Put(bp)
	}
	return merkle.BuildFromHashes(hashes).Root()
}

// NewNormal assembles an unmined normal block on top of the given
// predecessor hash. The caller (consensus engine) seals it afterwards.
func NewNormal(number, time uint64, prevHash codec.Hash, entries []*Entry) *Block {
	return NewNormalWith(nil, number, time, prevHash, entries)
}

// NewNormalWith is NewNormal with the entries commitment built across
// r — the chain passes its verification pool so block assembly under
// load uses every core.
func NewNormalWith(r merkle.Runner, number, time uint64, prevHash codec.Hash, entries []*Entry) *Block {
	return &Block{
		Header: Header{
			Kind:        KindNormal,
			Number:      number,
			Time:        time,
			PrevHash:    prevHash,
			EntriesRoot: EntriesRootWith(r, entries),
		},
		Entries: entries,
	}
}

// NewSummary assembles a summary block Σ. Per §IV-B the summary block's
// timestamp equals the timestamp of the preceding block (prevTime), its
// content is fully deterministic, and it is never mined (zero nonce).
func NewSummary(number, prevTime uint64, prevHash codec.Hash, carried []CarriedEntry, seqRef *SequenceRef) *Block {
	return NewSummaryWith(nil, number, prevTime, prevHash, carried, seqRef)
}

// NewSummaryWith is NewSummary with the carried commitment built across
// r. The block is bit-identical to NewSummary's — parallelism never
// changes Σ, which the golden tests pin.
func NewSummaryWith(r merkle.Runner, number, prevTime uint64, prevHash codec.Hash, carried []CarriedEntry, seqRef *SequenceRef) *Block {
	b := &Block{
		Header: Header{
			Kind:        KindSummary,
			Number:      number,
			Time:        prevTime,
			PrevHash:    prevHash,
			EntriesRoot: CarriedRootWith(r, carried),
		},
		Carried: carried,
		SeqRef:  seqRef,
	}
	if seqRef != nil {
		b.Header.SeqRefHash = seqRef.Hash()
	}
	return b
}

// Hash returns the block hash.
func (b *Block) Hash() codec.Hash { return b.Header.Hash() }

// IsSummary reports whether the block is a summary block Σ.
func (b *Block) IsSummary() bool { return b.Header.Kind == KindSummary }

// CheckShape validates structural invariants: kind-consistent body, body
// committed by the header, and well-formed entries. Signature validation
// happens at the chain layer, where the identity registry lives.
func (b *Block) CheckShape() error {
	if !b.Header.Kind.Valid() {
		return fmt.Errorf("%w: kind %d", ErrBadBlock, b.Header.Kind)
	}
	switch b.Header.Kind {
	case KindNormal:
		if len(b.Carried) != 0 || b.SeqRef != nil {
			return fmt.Errorf("%w: normal block carries summary content", ErrBadBlock)
		}
		if got := EntriesRoot(b.Entries); got != b.Header.EntriesRoot {
			return fmt.Errorf("%w: header %s, body %s", ErrRootMismatch, b.Header.EntriesRoot, got)
		}
		if !b.Header.SeqRefHash.IsZero() {
			return fmt.Errorf("%w: normal block commits to a sequence reference", ErrBadBlock)
		}
		for i, e := range b.Entries {
			if err := e.CheckShape(); err != nil {
				return fmt.Errorf("entry %d: %w", i, err)
			}
		}
	case KindSummary:
		if len(b.Entries) != 0 {
			return fmt.Errorf("%w: summary block holds fresh entries", ErrBadBlock)
		}
		if b.Header.Nonce != 0 {
			return fmt.Errorf("%w: summary block has a nonce", ErrBadBlock)
		}
		if got := CarriedRoot(b.Carried); got != b.Header.EntriesRoot {
			return fmt.Errorf("%w: header %s, carried %s", ErrRootMismatch, b.Header.EntriesRoot, got)
		}
		switch {
		case b.SeqRef == nil && !b.Header.SeqRefHash.IsZero():
			return fmt.Errorf("%w: header commits to a missing sequence reference", ErrBadBlock)
		case b.SeqRef != nil && b.Header.SeqRefHash != b.SeqRef.Hash():
			return fmt.Errorf("%w: sequence reference hash mismatch", ErrBadBlock)
		}
		for i, c := range b.Carried {
			if c.Entry == nil {
				return fmt.Errorf("%w: carried %d is nil", ErrBadBlock, i)
			}
			if err := c.Entry.CheckShape(); err != nil {
				return fmt.Errorf("carried %d (%s): %w", i, c.Ref(), err)
			}
			if c.Entry.Kind == KindDeletion {
				// §IV-D.3: deletion requests are never copied forward.
				return fmt.Errorf("%w: carried %d is a deletion entry", ErrBadBlock, i)
			}
		}
	}
	return nil
}

// Encode returns the full canonical block encoding (for gossip/storage).
func (b *Block) Encode() []byte {
	return b.AppendEncode(nil)
}

// AppendEncode appends the full canonical block encoding to dst and
// returns the extended slice — the allocation-free form of Encode for
// callers that bring their own (typically pooled) buffer. The bytes are
// identical to Encode's: every nested structure is length-prefixed in
// place instead of encoded separately and copied in.
func (b *Block) AppendEncode(dst []byte) []byte {
	e := codec.NewEncoderBuf(dst)
	e.Nested(b.Header.encodeTo)
	e.Uint32(uint32(len(b.Entries)))
	for _, en := range b.Entries {
		e.Nested(en.encodeTo)
	}
	e.Uint32(uint32(len(b.Carried)))
	for _, c := range b.Carried {
		e.Nested(c.encodeTo)
	}
	if b.SeqRef != nil {
		e.Bool(true)
		e.Nested(b.SeqRef.encodeTo)
	} else {
		e.Bool(false)
	}
	return e.Data()
}

// DecodeBlock parses a canonical block encoding and verifies the header
// commitments. The nested structures are decoded through views into
// data — each inner decoder copies what it retains, so the returned
// block never aliases data and the input buffer may be pooled.
func DecodeBlock(data []byte) (*Block, error) {
	d := codec.NewDecoder(data)
	rawHeader := d.View()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	h, err := decodeHeader(rawHeader)
	if err != nil {
		return nil, err
	}
	b := &Block{Header: h}
	nEntries := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if nEntries > maxSliceLen {
		return nil, fmt.Errorf("%w: %d entries", ErrDecode, nEntries)
	}
	for i := uint32(0); i < nEntries; i++ {
		raw := d.View()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		en, err := DecodeEntry(raw)
		if err != nil {
			return nil, err
		}
		b.Entries = append(b.Entries, en)
	}
	nCarried := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if nCarried > maxSliceLen {
		return nil, fmt.Errorf("%w: %d carried entries", ErrDecode, nCarried)
	}
	for i := uint32(0); i < nCarried; i++ {
		raw := d.View()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		c, err := decodeCarriedFrom(codec.NewDecoder(raw))
		if err != nil {
			return nil, err
		}
		b.Carried = append(b.Carried, c)
	}
	if d.Bool() {
		raw := d.View()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		ref, err := decodeSeqRef(raw)
		if err != nil {
			return nil, err
		}
		b.SeqRef = ref
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if err := b.CheckShape(); err != nil {
		return nil, err
	}
	return b, nil
}

func decodeHeader(data []byte) (Header, error) {
	var h Header
	d := codec.NewDecoder(data)
	if domain := d.ReadString(); domain != "seldel/header/v1" {
		if d.Err() == nil {
			return h, fmt.Errorf("%w: bad header domain %q", ErrDecode, domain)
		}
		return h, fmt.Errorf("%w: %v", ErrDecode, d.Err())
	}
	h.Kind = BlockKind(d.Byte())
	h.Number = d.Uint64()
	h.Time = d.Uint64()
	h.PrevHash = d.Hash()
	h.EntriesRoot = d.Hash()
	h.SeqRefHash = d.Hash()
	h.Nonce = d.Uint64()
	if err := d.Finish(); err != nil {
		return h, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if !h.Kind.Valid() {
		return h, fmt.Errorf("%w: kind %d", ErrDecode, h.Kind)
	}
	return h, nil
}

func decodeSeqRef(data []byte) (*SequenceRef, error) {
	d := codec.NewDecoder(data)
	if domain := d.ReadString(); domain != "seldel/seqref/v1" {
		if d.Err() == nil {
			return nil, fmt.Errorf("%w: bad seqref domain %q", ErrDecode, domain)
		}
		return nil, fmt.Errorf("%w: %v", ErrDecode, d.Err())
	}
	var s SequenceRef
	s.FirstBlock = d.Uint64()
	s.LastBlock = d.Uint64()
	s.Root = d.Hash()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return &s, nil
}

// EncodedSize returns the byte size of the canonical encoding, used by
// the growth experiments (E4).
func (b *Block) EncodedSize() int { return len(b.Encode()) }

// EntryProof returns a Merkle inclusion proof for entry i of a normal
// block, or carried entry i of a summary block.
func (b *Block) EntryProof(i int) (merkle.Proof, error) {
	if b.IsSummary() {
		leaves := make([][]byte, len(b.Carried))
		for j, c := range b.Carried {
			leaves[j] = c.Encode()
		}
		return merkle.Build(leaves).Proof(i)
	}
	leaves := make([][]byte, len(b.Entries))
	for j, e := range b.Entries {
		leaves[j] = e.Encode()
	}
	return merkle.Build(leaves).Proof(i)
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	cp := &Block{Header: b.Header}
	cp.Entries = make([]*Entry, len(b.Entries))
	for i, e := range b.Entries {
		cp.Entries[i] = e.Clone()
	}
	cp.Carried = make([]CarriedEntry, len(b.Carried))
	for i, c := range b.Carried {
		cp.Carried[i] = CarriedEntry{
			OriginBlock: c.OriginBlock,
			OriginTime:  c.OriginTime,
			EntryNumber: c.EntryNumber,
			Entry:       c.Entry.Clone(),
		}
	}
	if b.SeqRef != nil {
		ref := *b.SeqRef
		cp.SeqRef = &ref
	}
	return cp
}

// DecodeHeaderBytes parses a canonical header encoding (used by clients
// verifying lookup responses).
func DecodeHeaderBytes(data []byte) (Header, error) {
	return decodeHeader(data)
}

// DecodeCarried parses a canonical carried-entry encoding.
func DecodeCarried(data []byte) (CarriedEntry, error) {
	d := codec.NewDecoder(data)
	c, err := decodeCarriedFrom(d)
	if err != nil {
		return c, err
	}
	if err := d.Finish(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return c, nil
}
