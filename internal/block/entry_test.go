package block

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/seldel/seldel/internal/identity"
)

func signedData(t *testing.T, owner, payload string) *Entry {
	t.Helper()
	kp := identity.Deterministic(owner, "block-test")
	return NewData(owner, []byte(payload)).Sign(kp)
}

func TestEntrySignAndShape(t *testing.T) {
	e := signedData(t, "alpha", "login alpha tty1")
	if err := e.CheckShape(); err != nil {
		t.Fatalf("CheckShape: %v", err)
	}
	reg := identity.NewRegistry()
	if err := reg.RegisterKey(identity.Deterministic("alpha", "block-test"), identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	if err := reg.Verify(e.Owner, e.SigningBytes(), e.Signature); err != nil {
		t.Errorf("signature invalid: %v", err)
	}
}

func TestSignFillsOwnerFromSigner(t *testing.T) {
	kp := identity.Deterministic("bravo", "block-test")
	e := (&Entry{Kind: KindData, Payload: []byte("x")}).Sign(kp)
	if e.Owner != "bravo" {
		t.Errorf("Owner = %q, want bravo", e.Owner)
	}
}

func TestEntryShapeErrors(t *testing.T) {
	kp := identity.Deterministic("alpha", "block-test")
	tests := []struct {
		name  string
		entry *Entry
		want  error
	}{
		{"bad kind", &Entry{Kind: Kind(9), Owner: "a", Signature: []byte{1}}, ErrBadKind},
		{"no owner", &Entry{Kind: KindData, Signature: []byte{1}}, ErrNoOwner},
		{"unsigned", &Entry{Kind: KindData, Owner: "a"}, ErrUnsigned},
		{"deletion without target", NewDeletion("alpha", Ref{}).Sign(kp), ErrBadTarget},
		{
			"data with target",
			&Entry{Kind: KindData, Owner: "a", Signature: []byte{1}, Target: Ref{Block: 1}},
			ErrBadEntry,
		},
		{
			"data with cosigners",
			&Entry{Kind: KindData, Owner: "a", Signature: []byte{1}, CoSigners: []CoSignature{{Name: "x"}}},
			ErrBadEntry,
		},
		{
			"deletion with payload",
			&Entry{Kind: KindDeletion, Owner: "a", Signature: []byte{1}, Target: Ref{Block: 1}, Payload: []byte("x")},
			ErrBadEntry,
		},
		{
			"deletion with expiry",
			&Entry{Kind: KindDeletion, Owner: "a", Signature: []byte{1}, Target: Ref{Block: 1}, ExpireTime: 5},
			ErrBadEntry,
		},
		{
			"deletion with deps",
			&Entry{Kind: KindDeletion, Owner: "a", Signature: []byte{1}, Target: Ref{Block: 1}, DependsOn: []Ref{{Block: 1}}},
			ErrBadEntry,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.entry.CheckShape(); !errors.Is(err, tt.want) {
				t.Errorf("CheckShape = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestEntryEncodeRoundTrip(t *testing.T) {
	kp := identity.Deterministic("alpha", "block-test")
	dep := identity.Deterministic("dep", "block-test")
	entries := []*Entry{
		NewData("alpha", []byte("plain")).Sign(kp),
		NewTemporary("alpha", []byte("temp"), 88, 42).Sign(kp),
		NewData("alpha", []byte("linked")).WithDependsOn(Ref{Block: 3, Entry: 1}).Sign(kp),
		NewDeletion("alpha", Ref{Block: 3, Entry: 1}).AddCoSignature(dep).Sign(kp),
	}
	for i, e := range entries {
		back, err := DecodeEntry(e.Encode())
		if err != nil {
			t.Fatalf("entry %d: DecodeEntry: %v", i, err)
		}
		if !bytes.Equal(back.Encode(), e.Encode()) {
			t.Errorf("entry %d: round trip changed encoding", i)
		}
		if back.Hash() != e.Hash() {
			t.Errorf("entry %d: hash changed", i)
		}
	}
}

func TestDecodeEntryRejectsGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{1},
		bytes.Repeat([]byte{0xFF}, 40),
	}
	for i, in := range inputs {
		if _, err := DecodeEntry(in); err == nil {
			t.Errorf("input %d accepted", i)
		}
	}
	// Trailing bytes must be rejected.
	e := signedData(t, "alpha", "x")
	enc := append(e.Encode(), 0x00)
	if _, err := DecodeEntry(enc); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestTemporaryExpiry(t *testing.T) {
	tests := []struct {
		name        string
		expT, expB  uint64
		now, blk    uint64
		wantTmp     bool
		wantExpired bool
	}{
		{"no deadlines", 0, 0, 1000, 1000, false, false},
		{"time not reached", 50, 0, 49, 0, true, false},
		{"time reached", 50, 0, 50, 0, true, true},
		{"block not reached", 0, 10, 0, 9, true, false},
		{"block reached", 0, 10, 0, 10, true, true},
		{"either deadline fires", 50, 10, 0, 10, true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := NewTemporary("a", []byte("x"), tt.expT, tt.expB)
			if got := e.IsTemporary(); got != tt.wantTmp {
				t.Errorf("IsTemporary = %v, want %v", got, tt.wantTmp)
			}
			if got := e.ExpiredAt(tt.now, tt.blk); got != tt.wantExpired {
				t.Errorf("ExpiredAt = %v, want %v", got, tt.wantExpired)
			}
		})
	}
}

func TestSigningBytesExcludeSignature(t *testing.T) {
	kp := identity.Deterministic("alpha", "block-test")
	e := NewData("alpha", []byte("x"))
	before := append([]byte(nil), e.SigningBytes()...)
	e.Sign(kp)
	if !bytes.Equal(before, e.SigningBytes()) {
		t.Error("signing bytes changed after signing")
	}
	// Co-signatures must not affect the owner's signing bytes either.
	d := NewDeletion("alpha", Ref{Block: 1, Entry: 0})
	db := append([]byte(nil), d.SigningBytes()...)
	d.AddCoSignature(kp)
	if !bytes.Equal(db, d.SigningBytes()) {
		t.Error("co-signature changed signing bytes")
	}
}

func TestSigningBytesBindAllFields(t *testing.T) {
	base := func() *Entry {
		return &Entry{Kind: KindData, Owner: "a", Payload: []byte("p"), ExpireTime: 1, ExpireBlock: 2, DependsOn: []Ref{{Block: 3, Entry: 4}}}
	}
	mutations := map[string]func(*Entry){
		"payload":     func(e *Entry) { e.Payload = []byte("q") },
		"owner":       func(e *Entry) { e.Owner = "b" },
		"expireTime":  func(e *Entry) { e.ExpireTime = 9 },
		"expireBlock": func(e *Entry) { e.ExpireBlock = 9 },
		"dependsOn":   func(e *Entry) { e.DependsOn[0].Entry = 9 },
		"kind":        func(e *Entry) { e.Kind = KindDeletion },
		"target":      func(e *Entry) { e.Target = Ref{Block: 7} },
	}
	ref := base().SigningBytes()
	for name, mutate := range mutations {
		e := base()
		mutate(e)
		if bytes.Equal(ref, e.SigningBytes()) {
			t.Errorf("mutation %q not reflected in signing bytes", name)
		}
	}
}

func TestCoSignatureVerifies(t *testing.T) {
	reg := identity.NewRegistry()
	dep := identity.Deterministic("dep", "block-test")
	if err := reg.RegisterKey(dep, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	target := Ref{Block: 5, Entry: 2}
	e := NewDeletion("alpha", target).AddCoSignature(dep)
	cs := e.CoSigners[0]
	if err := reg.Verify(cs.Name, CoSigningBytes(target), cs.Signature); err != nil {
		t.Errorf("co-signature invalid: %v", err)
	}
	if err := reg.Verify(cs.Name, CoSigningBytes(Ref{Block: 6}), cs.Signature); err == nil {
		t.Error("co-signature verified for wrong target")
	}
}

func TestCloneIsDeep(t *testing.T) {
	kp := identity.Deterministic("alpha", "block-test")
	e := NewData("alpha", []byte("payload")).WithDependsOn(Ref{Block: 1}).Sign(kp)
	cp := e.Clone()
	cp.Payload[0] = 'X'
	cp.DependsOn[0].Block = 99
	cp.Signature[0] ^= 0xFF
	if e.Payload[0] == 'X' || e.DependsOn[0].Block == 99 {
		t.Error("Clone shares mutable state")
	}
	if e.Hash() == cp.Hash() {
		t.Error("mutated clone still hashes equal")
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Block: 3, Entry: 1}
	if r.String() != "3/1" {
		t.Errorf("String = %q", r.String())
	}
	if r.IsZero() {
		t.Error("non-zero ref IsZero")
	}
	if !(Ref{}).IsZero() {
		t.Error("zero ref not IsZero")
	}
}

func TestKindStrings(t *testing.T) {
	if KindData.String() != "data" || KindDeletion.String() != "delete" {
		t.Error("kind strings wrong")
	}
	if Kind(9).Valid() || !KindData.Valid() {
		t.Error("kind validity wrong")
	}
}

// Property: entry encoding round-trips for arbitrary payload/owner and
// expiry combinations.
func TestQuickEntryRoundTrip(t *testing.T) {
	kp := identity.Deterministic("q", "block-test")
	f := func(payload []byte, expT, expB uint64, depBlock uint64, depEntry uint32) bool {
		e := NewTemporary("q", payload, expT, expB)
		if depBlock%2 == 0 {
			e.WithDependsOn(Ref{Block: depBlock, Entry: depEntry})
		}
		e.Sign(kp)
		back, err := DecodeEntry(e.Encode())
		if err != nil {
			return false
		}
		return back.Hash() == e.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
