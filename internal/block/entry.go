package block

import (
	"errors"
	"fmt"

	"github.com/seldel/seldel/internal/codec"
)

// Kind is the entry kind discriminator.
type Kind uint8

const (
	// KindData is an ordinary signed data record ("D … K … S …" in the
	// paper's console output).
	KindData Kind = iota + 1
	// KindDeletion is a deletion request referencing an earlier entry by
	// (block number, entry number) (§IV-D).
	KindDeletion
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindDeletion:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k == KindData || k == KindDeletion }

// Ref addresses a single entry by block number α and entry number within
// that block. References stay valid after the entry migrates into a
// summary block, because carried entries keep their origin coordinates
// (Fig. 4).
type Ref struct {
	Block uint64
	Entry uint32
}

// String renders the reference as "α/e".
func (r Ref) String() string { return fmt.Sprintf("%d/%d", r.Block, r.Entry) }

// IsZero reports whether the reference is unset.
func (r Ref) IsZero() bool { return r == Ref{} }

// CoSignature is an approval by a dependent party for a deletion request
// (§IV-D.2: "a deletion request of such a chain part … can be approved by
// the signatures of all dependent parties").
type CoSignature struct {
	Name      string
	Signature []byte
}

// Entry is one record inside a block. Exactly one kind is active:
//
//   - KindData: Payload (D), Owner (K), Signature (S), optional expiry
//     deadlines for temporary entries (§IV-D.4), and optional DependsOn
//     references for semantic cohesion (§IV-D.2).
//   - KindDeletion: Target, Owner (requester), Signature, and optional
//     CoSigners from dependent parties.
type Entry struct {
	Kind Kind

	// Payload is the data record (canonical schema.Record encoding or
	// opaque application bytes). Data entries only.
	Payload []byte
	// Owner is the submitting participant (K), or the requester for a
	// deletion entry.
	Owner string
	// Signature is Owner's Ed25519 signature over SigningBytes (S).
	Signature []byte

	// ExpireTime is a logical-timestamp deadline τ after which the entry
	// is not carried into summary blocks; 0 means no time expiry.
	ExpireTime uint64
	// ExpireBlock is a block-number deadline α with the same semantics;
	// 0 means no block expiry.
	ExpireBlock uint64

	// DependsOn lists entries this entry semantically depends on.
	DependsOn []Ref

	// Target is the entry to delete (deletion entries only).
	Target Ref
	// CoSigners hold dependent-party approvals (deletion entries only).
	CoSigners []CoSignature
}

// Errors returned by entry validation and decoding.
var (
	ErrBadEntry  = errors.New("block: malformed entry")
	ErrBadKind   = errors.New("block: invalid entry kind")
	ErrDecode    = errors.New("block: decode failed")
	ErrNoOwner   = errors.New("block: entry has no owner")
	ErrUnsigned  = errors.New("block: entry is unsigned")
	ErrBadTarget = errors.New("block: deletion entry has no target")
)

// NewData constructs an unsigned data entry.
func NewData(owner string, payload []byte) *Entry {
	return &Entry{Kind: KindData, Owner: owner, Payload: payload}
}

// NewTemporary constructs an unsigned temporary data entry (§IV-D.4) that
// expires at logical time expireTime and/or block expireBlock (0 disables
// the respective deadline).
func NewTemporary(owner string, payload []byte, expireTime, expireBlock uint64) *Entry {
	return &Entry{
		Kind:        KindData,
		Owner:       owner,
		Payload:     payload,
		ExpireTime:  expireTime,
		ExpireBlock: expireBlock,
	}
}

// NewDeletion constructs an unsigned deletion request by requester for the
// entry at target.
func NewDeletion(requester string, target Ref) *Entry {
	return &Entry{Kind: KindDeletion, Owner: requester, Target: target}
}

// WithDependsOn records semantic-cohesion dependencies and returns e.
func (e *Entry) WithDependsOn(refs ...Ref) *Entry {
	e.DependsOn = append(e.DependsOn, refs...)
	return e
}

// signingDomain domain-separates entry signatures from any other use of
// the keys.
const signingDomain = "seldel/entry/v1"

// SigningBytes returns the canonical bytes signed by the entry owner:
// everything except Signature and CoSigners. The capacity covers every
// fixed field plus the variable ones, so the buffer is allocated once
// and never grows — this runs twice per entry on the hot path (mempool
// warm, then sealing validation).
func (e *Entry) SigningBytes() []byte {
	enc := codec.NewEncoder(96 + len(e.Payload) + len(e.Owner) + 12*len(e.DependsOn))
	enc.String(signingDomain)
	enc.Byte(byte(e.Kind))
	enc.Bytes(e.Payload)
	enc.String(e.Owner)
	enc.Uint64(e.ExpireTime)
	enc.Uint64(e.ExpireBlock)
	enc.Uint32(uint32(len(e.DependsOn)))
	for _, r := range e.DependsOn {
		enc.Uint64(r.Block)
		enc.Uint32(r.Entry)
	}
	enc.Uint64(e.Target.Block)
	enc.Uint32(e.Target.Entry)
	return enc.Data()
}

// CoSigningBytes returns the canonical bytes a dependent party signs to
// approve the deletion of target.
func CoSigningBytes(target Ref) []byte {
	enc := codec.NewEncoder(32)
	enc.String("seldel/cosign/v1")
	enc.Uint64(target.Block)
	enc.Uint32(target.Entry)
	return enc.Data()
}

// Signer signs messages on behalf of a named participant. Implemented by
// identity.KeyPair.
type Signer interface {
	Name() string
	Sign(msg []byte) []byte
}

// Sign sets Owner to the signer's name (if unset) and fills Signature.
func (e *Entry) Sign(s Signer) *Entry {
	if e.Owner == "" {
		e.Owner = s.Name()
	}
	e.Signature = s.Sign(e.SigningBytes())
	return e
}

// AddCoSignature appends a dependent-party approval for a deletion entry.
func (e *Entry) AddCoSignature(s Signer) *Entry {
	e.CoSigners = append(e.CoSigners, CoSignature{
		Name:      s.Name(),
		Signature: s.Sign(CoSigningBytes(e.Target)),
	})
	return e
}

// CheckShape validates kind-specific structural invariants (not
// signatures; signature checks need a registry and happen at the chain
// layer).
func (e *Entry) CheckShape() error {
	if !e.Kind.Valid() {
		return fmt.Errorf("%w: %d", ErrBadKind, e.Kind)
	}
	if e.Owner == "" {
		return ErrNoOwner
	}
	if len(e.Signature) == 0 {
		return ErrUnsigned
	}
	switch e.Kind {
	case KindData:
		if !e.Target.IsZero() {
			return fmt.Errorf("%w: data entry carries a deletion target", ErrBadEntry)
		}
		if len(e.CoSigners) != 0 {
			return fmt.Errorf("%w: data entry carries co-signatures", ErrBadEntry)
		}
	case KindDeletion:
		if e.Target.IsZero() {
			return ErrBadTarget
		}
		if len(e.Payload) != 0 {
			return fmt.Errorf("%w: deletion entry carries a payload", ErrBadEntry)
		}
		if e.ExpireTime != 0 || e.ExpireBlock != 0 {
			return fmt.Errorf("%w: deletion entry carries expiry deadlines", ErrBadEntry)
		}
		if len(e.DependsOn) != 0 {
			return fmt.Errorf("%w: deletion entry carries dependencies", ErrBadEntry)
		}
	}
	return nil
}

// IsTemporary reports whether the entry has any expiry deadline (§IV-D.4).
func (e *Entry) IsTemporary() bool { return e.ExpireTime != 0 || e.ExpireBlock != 0 }

// ExpiredAt reports whether the entry's deadlines have passed at the given
// logical time and block number.
func (e *Entry) ExpiredAt(now uint64, blockNum uint64) bool {
	if e.ExpireTime != 0 && now >= e.ExpireTime {
		return true
	}
	if e.ExpireBlock != 0 && blockNum >= e.ExpireBlock {
		return true
	}
	return false
}

// Encode returns the full canonical encoding including signatures.
func (e *Entry) Encode() []byte {
	enc := codec.NewEncoder(encodedCap(e))
	e.encodeTo(enc)
	return enc.Data()
}

// AppendEncode appends the full canonical encoding to dst, reusing its
// capacity — the allocation-free form of Encode for callers that hash
// or copy the bytes before dst is reused.
func (e *Entry) AppendEncode(dst []byte) []byte {
	enc := codec.NewEncoderBuf(dst)
	e.encodeTo(enc)
	return enc.Data()
}

// encodedCap over-estimates the encoded size so Encode's buffer never
// grows mid-encode.
func encodedCap(e *Entry) int {
	n := 192 + len(e.Payload) + len(e.Owner) + 12*len(e.DependsOn)
	for _, cs := range e.CoSigners {
		n += 80 + len(cs.Name)
	}
	return n
}

// encodeTo appends the full canonical entry encoding to enc.
func (e *Entry) encodeTo(enc *codec.Encoder) {
	enc.Byte(byte(e.Kind))
	enc.Bytes(e.Payload)
	enc.String(e.Owner)
	enc.Bytes(e.Signature)
	enc.Uint64(e.ExpireTime)
	enc.Uint64(e.ExpireBlock)
	enc.Uint32(uint32(len(e.DependsOn)))
	for _, r := range e.DependsOn {
		enc.Uint64(r.Block)
		enc.Uint32(r.Entry)
	}
	enc.Uint64(e.Target.Block)
	enc.Uint32(e.Target.Entry)
	enc.Uint32(uint32(len(e.CoSigners)))
	for _, cs := range e.CoSigners {
		enc.String(cs.Name)
		enc.Bytes(cs.Signature)
	}
}

// decodeEntryFrom reads one entry from d.
func decodeEntryFrom(d *codec.Decoder) (*Entry, error) {
	e := &Entry{}
	e.Kind = Kind(d.Byte())
	e.Payload = d.Bytes()
	e.Owner = d.ReadString()
	e.Signature = d.Bytes()
	e.ExpireTime = d.Uint64()
	e.ExpireBlock = d.Uint64()
	nDeps := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if nDeps > maxSliceLen {
		return nil, fmt.Errorf("%w: %d dependencies", ErrDecode, nDeps)
	}
	for i := uint32(0); i < nDeps; i++ {
		var r Ref
		r.Block = d.Uint64()
		r.Entry = d.Uint32()
		e.DependsOn = append(e.DependsOn, r)
	}
	e.Target.Block = d.Uint64()
	e.Target.Entry = d.Uint32()
	nCo := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if nCo > maxSliceLen {
		return nil, fmt.Errorf("%w: %d co-signatures", ErrDecode, nCo)
	}
	for i := uint32(0); i < nCo; i++ {
		var cs CoSignature
		cs.Name = d.ReadString()
		cs.Signature = d.Bytes()
		e.CoSigners = append(e.CoSigners, cs)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return e, nil
}

// DecodeEntry parses a canonical entry encoding.
func DecodeEntry(data []byte) (*Entry, error) {
	d := codec.NewDecoder(data)
	e, err := decodeEntryFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return e, nil
}

// Hash returns the content hash of the encoded entry.
func (e *Entry) Hash() codec.Hash { return codec.HashBytes(e.Encode()) }

// Clone returns a deep copy of the entry.
func (e *Entry) Clone() *Entry {
	cp := *e
	cp.Payload = append([]byte(nil), e.Payload...)
	cp.Signature = append([]byte(nil), e.Signature...)
	cp.DependsOn = append([]Ref(nil), e.DependsOn...)
	cp.CoSigners = make([]CoSignature, len(e.CoSigners))
	for i, cs := range e.CoSigners {
		cp.CoSigners[i] = CoSignature{
			Name:      cs.Name,
			Signature: append([]byte(nil), cs.Signature...),
		}
	}
	return &cp
}

// maxSliceLen bounds decoded slice lengths to keep corrupted input from
// forcing huge allocations.
const maxSliceLen = 1 << 20
