package block

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/merkle"
)

func testEntries(t *testing.T, n int) []*Entry {
	t.Helper()
	kp := identity.Deterministic("alpha", "block-test")
	out := make([]*Entry, n)
	for i := range out {
		out[i] = NewData("alpha", []byte{byte(i), 'd'}).Sign(kp)
	}
	return out
}

func TestGenesisPrevHashShortForm(t *testing.T) {
	if got := GenesisPrevHash.Short(); got != "DEADB" {
		t.Errorf("GenesisPrevHash.Short = %q, want DEADB (paper Fig. 6)", got)
	}
}

func TestNewNormalBlock(t *testing.T) {
	entries := testEntries(t, 3)
	b := NewNormal(1, 10, GenesisPrevHash, entries)
	if err := b.CheckShape(); err != nil {
		t.Fatalf("CheckShape: %v", err)
	}
	if b.IsSummary() {
		t.Error("normal block reports IsSummary")
	}
	if b.Header.EntriesRoot != EntriesRoot(entries) {
		t.Error("EntriesRoot not set")
	}
}

func TestNewSummaryBlock(t *testing.T) {
	entries := testEntries(t, 2)
	carried := []CarriedEntry{
		{OriginBlock: 1, OriginTime: 10, EntryNumber: 0, Entry: entries[0]},
		{OriginBlock: 3, OriginTime: 12, EntryNumber: 1, Entry: entries[1]},
	}
	ref := &SequenceRef{FirstBlock: 4, LastBlock: 6, Root: codec.HashBytes([]byte("root"))}
	b := NewSummary(7, 13, codec.HashBytes([]byte("prev")), carried, ref)
	if err := b.CheckShape(); err != nil {
		t.Fatalf("CheckShape: %v", err)
	}
	if !b.IsSummary() {
		t.Error("summary block not IsSummary")
	}
	if b.Header.Time != 13 {
		t.Errorf("summary must reuse prev timestamp, got %d", b.Header.Time)
	}
	if b.Header.SeqRefHash != ref.Hash() {
		t.Error("SeqRefHash not committed")
	}
}

func TestSummaryDeterminism(t *testing.T) {
	// Two independent constructions from the same inputs must be
	// bit-identical (§IV-B).
	entries := testEntries(t, 2)
	mk := func() *Block {
		carried := []CarriedEntry{{OriginBlock: 1, OriginTime: 10, EntryNumber: 0, Entry: entries[0].Clone()}}
		return NewSummary(5, 11, codec.HashBytes([]byte("p")), carried, nil)
	}
	a, b := mk(), mk()
	if a.Hash() != b.Hash() {
		t.Error("summary construction not deterministic")
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("summary encoding not deterministic")
	}
}

func TestCheckShapeRejections(t *testing.T) {
	entries := testEntries(t, 2)
	kp := identity.Deterministic("alpha", "block-test")
	deletion := NewDeletion("alpha", Ref{Block: 1, Entry: 0}).Sign(kp)

	tests := []struct {
		name string
		blk  func() *Block
		want error
	}{
		{
			"normal with carried",
			func() *Block {
				b := NewNormal(1, 10, GenesisPrevHash, entries)
				b.Carried = []CarriedEntry{{Entry: entries[0]}}
				return b
			},
			ErrBadBlock,
		},
		{
			"normal root mismatch",
			func() *Block {
				b := NewNormal(1, 10, GenesisPrevHash, entries)
				b.Header.EntriesRoot = codec.HashBytes([]byte("wrong"))
				return b
			},
			ErrRootMismatch,
		},
		{
			"normal with seqref hash",
			func() *Block {
				b := NewNormal(1, 10, GenesisPrevHash, entries)
				b.Header.SeqRefHash = codec.HashBytes([]byte("x"))
				return b
			},
			ErrBadBlock,
		},
		{
			"summary with entries",
			func() *Block {
				b := NewSummary(2, 10, GenesisPrevHash, nil, nil)
				b.Entries = entries
				return b
			},
			ErrBadBlock,
		},
		{
			"summary with nonce",
			func() *Block {
				b := NewSummary(2, 10, GenesisPrevHash, nil, nil)
				b.Header.Nonce = 7
				return b
			},
			ErrBadBlock,
		},
		{
			"summary carrying deletion entry",
			func() *Block {
				c := []CarriedEntry{{OriginBlock: 1, EntryNumber: 0, Entry: deletion}}
				return NewSummary(2, 10, GenesisPrevHash, c, nil)
			},
			ErrBadBlock,
		},
		{
			"summary carried root mismatch",
			func() *Block {
				c := []CarriedEntry{{OriginBlock: 1, EntryNumber: 0, Entry: entries[0]}}
				b := NewSummary(2, 10, GenesisPrevHash, c, nil)
				b.Carried[0].OriginTime = 99 // mutate after root computed
				return b
			},
			ErrRootMismatch,
		},
		{
			"summary seqref hash mismatch",
			func() *Block {
				ref := &SequenceRef{FirstBlock: 1, LastBlock: 2, Root: codec.HashBytes([]byte("r"))}
				b := NewSummary(2, 10, GenesisPrevHash, nil, ref)
				b.SeqRef.LastBlock = 3 // breaks the committed hash
				return b
			},
			ErrBadBlock,
		},
		{
			"summary header commits to missing ref",
			func() *Block {
				ref := &SequenceRef{FirstBlock: 1, LastBlock: 2, Root: codec.HashBytes([]byte("r"))}
				b := NewSummary(2, 10, GenesisPrevHash, nil, ref)
				b.SeqRef = nil
				return b
			},
			ErrBadBlock,
		},
		{
			"bad block kind",
			func() *Block {
				b := NewNormal(1, 10, GenesisPrevHash, entries)
				b.Header.Kind = BlockKind(9)
				return b
			},
			ErrBadBlock,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.blk().CheckShape(); !errors.Is(err, tt.want) {
				t.Errorf("CheckShape = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestBlockEncodeRoundTrip(t *testing.T) {
	entries := testEntries(t, 3)
	normal := NewNormal(1, 10, GenesisPrevHash, entries)
	carried := []CarriedEntry{
		{OriginBlock: 1, OriginTime: 10, EntryNumber: 0, Entry: entries[0]},
	}
	ref := &SequenceRef{FirstBlock: 2, LastBlock: 4, Root: codec.HashBytes([]byte("seq"))}
	summary := NewSummary(5, 12, normal.Hash(), carried, ref)
	emptySummary := NewSummary(2, 10, normal.Hash(), nil, nil)

	for i, b := range []*Block{normal, summary, emptySummary} {
		back, err := DecodeBlock(b.Encode())
		if err != nil {
			t.Fatalf("block %d: DecodeBlock: %v", i, err)
		}
		if back.Hash() != b.Hash() {
			t.Errorf("block %d: hash changed after round trip", i)
		}
		if !bytes.Equal(back.Encode(), b.Encode()) {
			t.Errorf("block %d: encoding changed after round trip", i)
		}
	}
}

func TestDecodeBlockRejectsCorruption(t *testing.T) {
	entries := testEntries(t, 2)
	b := NewNormal(1, 10, GenesisPrevHash, entries)
	enc := b.Encode()

	if _, err := DecodeBlock(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := DecodeBlock(enc[:len(enc)/2]); err == nil {
		t.Error("truncated block accepted")
	}
	trailing := append(append([]byte(nil), enc...), 0xAA)
	if _, err := DecodeBlock(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Flip a byte inside an entry payload: the root check must catch it.
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)-10] ^= 0xFF
	if _, err := DecodeBlock(corrupt); err == nil {
		t.Error("corrupted body accepted")
	}
}

func TestHeaderHashBindsAllFields(t *testing.T) {
	base := func() Header {
		return Header{
			Kind: KindNormal, Number: 4, Time: 9,
			PrevHash:    codec.HashBytes([]byte("p")),
			EntriesRoot: codec.HashBytes([]byte("e")),
			SeqRefHash:  codec.HashBytes([]byte("s")),
			Nonce:       7,
		}
	}
	bh := base()
	ref := bh.Hash()
	mutations := map[string]func(*Header){
		"kind":   func(h *Header) { h.Kind = KindSummary },
		"number": func(h *Header) { h.Number++ },
		"time":   func(h *Header) { h.Time++ },
		"prev":   func(h *Header) { h.PrevHash[0] ^= 1 },
		"root":   func(h *Header) { h.EntriesRoot[0] ^= 1 },
		"seqref": func(h *Header) { h.SeqRefHash[0] ^= 1 },
		"nonce":  func(h *Header) { h.Nonce++ },
	}
	for name, mutate := range mutations {
		h := base()
		mutate(&h)
		if h.Hash() == ref {
			t.Errorf("mutation %q not reflected in header hash", name)
		}
	}
}

func TestEntryProof(t *testing.T) {
	entries := testEntries(t, 5)
	b := NewNormal(1, 10, GenesisPrevHash, entries)
	for i, e := range entries {
		p, err := b.EntryProof(i)
		if err != nil {
			t.Fatalf("EntryProof(%d): %v", i, err)
		}
		if !merkle.Verify(b.Header.EntriesRoot, e.Encode(), p) {
			t.Errorf("proof for entry %d rejected", i)
		}
	}
	carried := []CarriedEntry{
		{OriginBlock: 1, OriginTime: 10, EntryNumber: 0, Entry: entries[0]},
		{OriginBlock: 1, OriginTime: 10, EntryNumber: 1, Entry: entries[1]},
	}
	s := NewSummary(6, 12, b.Hash(), carried, nil)
	p, err := s.EntryProof(1)
	if err != nil {
		t.Fatal(err)
	}
	if !merkle.Verify(s.Header.EntriesRoot, carried[1].Encode(), p) {
		t.Error("carried-entry proof rejected")
	}
}

func TestBlockCloneIsDeep(t *testing.T) {
	entries := testEntries(t, 2)
	ref := &SequenceRef{FirstBlock: 1, LastBlock: 2, Root: codec.HashBytes([]byte("r"))}
	carried := []CarriedEntry{{OriginBlock: 1, OriginTime: 1, EntryNumber: 0, Entry: entries[0]}}
	b := NewSummary(3, 5, GenesisPrevHash, carried, ref)
	cp := b.Clone()
	cp.Carried[0].Entry.Payload[0] = 'Z'
	cp.SeqRef.FirstBlock = 99
	if b.Carried[0].Entry.Payload[0] == 'Z' {
		t.Error("Clone shares carried entries")
	}
	if b.SeqRef.FirstBlock == 99 {
		t.Error("Clone shares SeqRef")
	}
}

func TestCarriedEntryRef(t *testing.T) {
	c := CarriedEntry{OriginBlock: 3, EntryNumber: 1}
	if c.Ref() != (Ref{Block: 3, Entry: 1}) {
		t.Errorf("Ref = %v", c.Ref())
	}
}

func TestEncodedSizeGrowsWithContent(t *testing.T) {
	small := NewNormal(1, 10, GenesisPrevHash, testEntries(t, 1))
	big := NewNormal(1, 10, GenesisPrevHash, testEntries(t, 10))
	if small.EncodedSize() >= big.EncodedSize() {
		t.Error("EncodedSize not monotone in entry count")
	}
}

func TestBlockKindString(t *testing.T) {
	if KindNormal.String() != "normal" || KindSummary.String() != "summary" {
		t.Error("block kind strings wrong")
	}
	if BlockKind(9).Valid() {
		t.Error("invalid kind reported valid")
	}
}

// TestQuickDecodeBlockNeverPanics feeds arbitrary bytes into the block
// decoder: it must reject or accept, never panic or hang.
func TestQuickDecodeBlockNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = DecodeBlock(data)
		_, _ = DecodeEntry(data)
		_, _ = DecodeHeaderBytes(data)
		_, _ = DecodeCarried(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeMutatedBlock flips bytes in valid encodings: decoding
// must never panic, and any accepted result must re-encode consistently.
func TestQuickDecodeMutatedBlock(t *testing.T) {
	entries := testEntries(t, 3)
	base := NewNormal(1, 10, GenesisPrevHash, entries).Encode()
	f := func(pos uint16, flip byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] ^= flip
		b, err := DecodeBlock(mutated)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted (flip==0 or a benign bit): must round-trip.
		return bytes.Equal(b.Encode(), mutated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
