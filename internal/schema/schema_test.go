package schema

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

const loginSchema = `
# Login audit schema (paper §V evaluation scenario).
name: login_event
doc: "terminal login records"
fields:
  - name: user
    type: string
    required: true
    max_length: 64
  - name: terminal
    type: string
    required: true
  - name: success
    type: bool
  - name: at
    type: timestamp
`

func TestParseLoginSchema(t *testing.T) {
	s, err := Parse(loginSchema)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name() != "login_event" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Doc() != "terminal login records" {
		t.Errorf("Doc = %q", s.Doc())
	}
	fields := s.Fields()
	if len(fields) != 4 {
		t.Fatalf("Fields = %d, want 4", len(fields))
	}
	user, ok := s.Field("user")
	if !ok || user.Type != TypeString || !user.Required || user.MaxLength != 64 {
		t.Errorf("user field = %+v, %v", user, ok)
	}
	success, ok := s.Field("success")
	if !ok || success.Type != TypeBool || success.Required {
		t.Errorf("success field = %+v, %v", success, ok)
	}
}

func TestValidate(t *testing.T) {
	s, err := Parse(loginSchema)
	if err != nil {
		t.Fatal(err)
	}
	valid := Record{
		"user":     String("ALPHA"),
		"terminal": String("tty1"),
		"success":  Bool(true),
		"at":       Timestamp(42),
	}
	if err := s.Validate(valid); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}

	tests := []struct {
		name string
		rec  Record
		want error
	}{
		{
			"missing required",
			Record{"user": String("ALPHA")},
			ErrMissingField,
		},
		{
			"unknown field",
			Record{"user": String("A"), "terminal": String("t"), "extra": Int(1)},
			ErrUnknownField,
		},
		{
			"type mismatch",
			Record{"user": Int(3), "terminal": String("t")},
			ErrTypeMismatch,
		},
		{
			"too long",
			Record{"user": String(string(make([]byte, 100))), "terminal": String("t")},
			ErrLengthExceeds,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.Validate(tt.rec); !errors.Is(err, tt.want) {
				t.Errorf("Validate = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestOptionalFieldsMayBeAbsent(t *testing.T) {
	s, err := Parse(loginSchema)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{"user": String("BRAVO"), "terminal": String("tty2")}
	if err := s.Validate(rec); err != nil {
		t.Errorf("record without optional fields rejected: %v", err)
	}
}

func TestNewRejectsBadSchemas(t *testing.T) {
	cases := []struct {
		name   string
		make   func() (*Schema, error)
		wanted error
	}{
		{"empty name", func() (*Schema, error) { return New("", Field{Name: "a", Type: TypeInt}) }, ErrBadSchema},
		{"no fields", func() (*Schema, error) { return New("x") }, ErrBadSchema},
		{"empty field name", func() (*Schema, error) { return New("x", Field{Type: TypeInt}) }, ErrBadSchema},
		{"bad type", func() (*Schema, error) { return New("x", Field{Name: "a", Type: Type(77)}) }, ErrBadSchema},
		{"dup field", func() (*Schema, error) {
			return New("x", Field{Name: "a", Type: TypeInt}, Field{Name: "a", Type: TypeInt})
		}, ErrBadSchema},
		{"max_length on int", func() (*Schema, error) {
			return New("x", Field{Name: "a", Type: TypeInt, MaxLength: 4})
		}, ErrBadSchema},
		{"negative max_length", func() (*Schema, error) {
			return New("x", Field{Name: "a", Type: TypeString, MaxLength: -1})
		}, ErrBadSchema},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.make(); !errors.Is(err, tt.wanted) {
				t.Errorf("err = %v, want %v", err, tt.wanted)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no name", "fields:\n  - name: a\n    type: int\n"},
		{"no fields", "name: x\n"},
		{"fields not list", "name: x\nfields: 3\n"},
		{"unknown type", "name: x\nfields:\n  - name: a\n    type: float\n"},
		{"bad required", "name: x\nfields:\n  - name: a\n    type: int\n    required: yes\n"},
		{"bad max_length", "name: x\nfields:\n  - name: a\n    type: string\n    max_length: ten\n"},
		{"tab indent", "name: x\n\tfields: 3\n"},
		{"scalar field item", "name: x\nfields:\n  - justscalar\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Error("Parse accepted invalid schema")
			}
		})
	}
}

func TestRecordEncodeDeterministic(t *testing.T) {
	r1 := Record{"b": Int(2), "a": String("x"), "c": Bool(true)}
	r2 := Record{"c": Bool(true), "a": String("x"), "b": Int(2)}
	if !bytes.Equal(r1.Encode(), r2.Encode()) {
		t.Error("same record content encodes differently")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{
		"user":  String("ALPHA"),
		"n":     Int(-7),
		"u":     Uint(9),
		"blob":  Bytes([]byte{1, 2, 3}),
		"flag":  Bool(true),
		"stamp": Timestamp(1234),
	}
	back, err := DecodeRecord(r.Encode())
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if !r.Equal(back) {
		t.Errorf("round trip mismatch: %v vs %v", r, back)
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecord([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	// Non-canonical order must be rejected.
	e := Record{"a": Int(1)}.Encode()
	f := Record{"b": Int(2)}.Encode()
	// splice: count=2, then fields b then a (wrong order)
	spliced := append([]byte{0, 0, 0, 2}, append(f[4:], e[4:]...)...)
	if _, err := DecodeRecord(spliced); err == nil {
		t.Error("non-canonical field order accepted")
	}
}

func TestRecordEqual(t *testing.T) {
	a := Record{"x": String("1"), "y": Bytes([]byte{5})}
	b := Record{"x": String("1"), "y": Bytes([]byte{5})}
	if !a.Equal(b) {
		t.Error("equal records not Equal")
	}
	c := Record{"x": String("1"), "y": Bytes([]byte{6})}
	if a.Equal(c) {
		t.Error("different records Equal")
	}
	d := Record{"x": String("1")}
	if a.Equal(d) || d.Equal(a) {
		t.Error("different sizes Equal")
	}
	e := Record{"x": Int(1), "y": Bytes([]byte{5})}
	if a.Equal(e) {
		t.Error("different types Equal")
	}
}

func TestValueDisplay(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{String("hi"), "hi"},
		{Int(-3), "-3"},
		{Uint(8), "8"},
		{Timestamp(99), "99"},
		{Bytes([]byte{0xAB}), "0xab"},
		{Bool(true), "true"},
	}
	for _, tt := range tests {
		if got := tt.v.Display(); got != tt.want {
			t.Errorf("Display(%+v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestYAMLQuotedScalarsAndComments(t *testing.T) {
	src := `
name: "with # hash"      # trailing comment
doc: "line\nbreak \"q\" \\ \t"
fields:
  - name: a
    type: string
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name() != "with # hash" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Doc() != "line\nbreak \"q\" \\ \t" {
		t.Errorf("Doc = %q", s.Doc())
	}
}

func TestYAMLDuplicateKeyRejected(t *testing.T) {
	if _, err := ParseYAML("a: 1\na: 2\n"); !errors.Is(err, ErrSyntax) {
		t.Errorf("duplicate key: %v, want ErrSyntax", err)
	}
}

func TestYAMLScalarList(t *testing.T) {
	n, err := ParseYAML("items:\n  - one\n  - \"two three\"\n")
	if err != nil {
		t.Fatalf("ParseYAML: %v", err)
	}
	items, ok := n.Get("items")
	if !ok || items.Kind != KindList || len(items.List) != 2 {
		t.Fatalf("items = %+v", items)
	}
	if items.List[0].Scalar != "one" || items.List[1].Scalar != "two three" {
		t.Errorf("list = %q, %q", items.List[0].Scalar, items.List[1].Scalar)
	}
}

func TestYAMLNestedMaps(t *testing.T) {
	n, err := ParseYAML("outer:\n  inner:\n    leaf: v\n")
	if err != nil {
		t.Fatalf("ParseYAML: %v", err)
	}
	outer, _ := n.Get("outer")
	inner, ok := outer.Get("inner")
	if !ok {
		t.Fatal("no inner")
	}
	if got := inner.ScalarOr("leaf", ""); got != "v" {
		t.Errorf("leaf = %q", got)
	}
}

func TestYAMLKeyOrderPreserved(t *testing.T) {
	n, err := ParseYAML("b: 1\na: 2\nc: 3\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "a", "c"}
	for i, k := range n.Keys {
		if k != want[i] {
			t.Fatalf("Keys = %v, want %v", n.Keys, want)
		}
	}
}

// Property: record encode/decode round-trips for arbitrary string fields.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(a, b string, n int64, u uint64, blob []byte, flag bool) bool {
		if a == b || a == "" || b == "" {
			return true
		}
		r := Record{
			a:      String(b),
			b:      Int(n),
			"_u":   Uint(u),
			"_bl":  Bytes(blob),
			"_fl":  Bool(flag),
			"_ts_": Timestamp(u / 2),
		}
		back, err := DecodeRecord(r.Encode())
		if err != nil {
			return false
		}
		return r.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
