package schema

import (
	"errors"
	"fmt"
	"strings"
)

// This file implements the YAML subset used for schema documents. The
// paper (§V) specifies entry structure "beforehand by a YAML schema"; the
// subset implemented here covers indentation-based mappings, lists of
// mappings, scalars (plain or double-quoted), and '#' comments — enough
// for schema documents while staying stdlib-only.

// Node is a parsed YAML-subset value: a scalar string, a mapping, or a
// sequence.
type Node struct {
	// Kind discriminates the union.
	Kind NodeKind
	// Scalar holds the value for KindScalar.
	Scalar string
	// Map holds key→child for KindMap. Keys preserves insertion order.
	Map  map[string]*Node
	Keys []string
	// List holds the items for KindList.
	List []*Node
	// Line is the 1-based source line the node started on (for errors).
	Line int
}

// NodeKind identifies the variant held by a Node.
type NodeKind uint8

// Node kinds.
const (
	KindScalar NodeKind = iota + 1
	KindMap
	KindList
)

// ErrSyntax wraps all parse errors.
var ErrSyntax = errors.New("schema: yaml syntax error")

func syntaxErr(line int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, line, fmt.Sprintf(format, args...))
}

type yamlLine struct {
	num    int // 1-based line number
	indent int // count of leading spaces
	text   string
}

// lexLines strips comments and blank lines and measures indentation.
func lexLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.ContainsRune(raw, '\t') {
			return nil, syntaxErr(num, "tabs are not allowed for indentation")
		}
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " ")
		indent := len(trimmed) - len(strings.TrimLeft(trimmed, " "))
		body := strings.TrimSpace(trimmed)
		if body == "" {
			continue
		}
		out = append(out, yamlLine{num: num, indent: indent, text: body})
	}
	return out, nil
}

// stripComment removes a trailing '#' comment that is not inside a
// double-quoted scalar.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			// A backslash-escaped quote stays inside the scalar.
			if i > 0 && s[i-1] == '\\' {
				continue
			}
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return s[:i]
			}
		}
	}
	return s
}

// ParseYAML parses a YAML-subset document into a Node tree. The top level
// must be a mapping.
func ParseYAML(src string) (*Node, error) {
	lines, err := lexLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, syntaxErr(1, "empty document")
	}
	p := &yamlParser{lines: lines}
	node, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, syntaxErr(p.lines[p.pos].num, "unexpected de-indented content")
	}
	if node.Kind != KindMap {
		return nil, syntaxErr(lines[0].num, "document root must be a mapping")
	}
	return node, nil
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func (p *yamlParser) peek() (yamlLine, bool) {
	if p.pos >= len(p.lines) {
		return yamlLine{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses a mapping or list whose items sit at exactly `indent`.
func (p *yamlParser) parseBlock(indent int) (*Node, error) {
	first, ok := p.peek()
	if !ok {
		return nil, syntaxErr(0, "unexpected end of document")
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (*Node, error) {
	node := &Node{Kind: KindMap, Map: make(map[string]*Node)}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			return node, nil
		}
		if ln.indent > indent {
			return nil, syntaxErr(ln.num, "unexpected indentation (got %d, expected %d)", ln.indent, indent)
		}
		if node.Line == 0 {
			node.Line = ln.num
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, syntaxErr(ln.num, "list item in mapping context")
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := node.Map[key]; dup {
			return nil, syntaxErr(ln.num, "duplicate key %q", key)
		}
		p.pos++
		var child *Node
		if rest != "" {
			scalar, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, err
			}
			child = &Node{Kind: KindScalar, Scalar: scalar, Line: ln.num}
		} else {
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				// "key:" with nothing nested — empty scalar.
				child = &Node{Kind: KindScalar, Scalar: "", Line: ln.num}
			} else {
				child, err = p.parseBlock(next.indent)
				if err != nil {
					return nil, err
				}
			}
		}
		node.Map[key] = child
		node.Keys = append(node.Keys, key)
	}
}

func (p *yamlParser) parseList(indent int) (*Node, error) {
	node := &Node{Kind: KindList}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			return node, nil
		}
		if ln.indent > indent {
			return nil, syntaxErr(ln.num, "unexpected indentation in list")
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, syntaxErr(ln.num, "expected list item, got %q", ln.text)
		}
		if node.Line == 0 {
			node.Line = ln.num
		}
		body := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		// The item body behaves as if it started at indent+2.
		itemIndent := indent + 2
		if body == "" {
			// "-" alone: nested block follows.
			p.pos++
			next, ok := p.peek()
			if !ok || next.indent < itemIndent {
				node.List = append(node.List, &Node{Kind: KindScalar, Scalar: "", Line: ln.num})
				continue
			}
			child, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
			continue
		}
		if isKeyValue(body) {
			// Inline map item: rewrite the current line as the first key
			// of a mapping at itemIndent and parse the mapping.
			p.lines[p.pos] = yamlLine{num: ln.num, indent: itemIndent, text: body}
			child, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
			continue
		}
		// Scalar list item.
		p.pos++
		scalar, err := parseScalar(body, ln.num)
		if err != nil {
			return nil, err
		}
		node.List = append(node.List, &Node{Kind: KindScalar, Scalar: scalar, Line: ln.num})
	}
}

// isKeyValue reports whether body looks like "key:" or "key: value" with a
// plain (unquoted) key.
func isKeyValue(body string) bool {
	idx := strings.Index(body, ":")
	if idx <= 0 {
		return false
	}
	if strings.HasPrefix(body, "\"") {
		return false
	}
	// "key:" must be followed by end or a space.
	return idx == len(body)-1 || body[idx+1] == ' '
}

func splitKey(ln yamlLine) (key, rest string, err error) {
	idx := strings.Index(ln.text, ":")
	if idx <= 0 {
		return "", "", syntaxErr(ln.num, "expected 'key: value', got %q", ln.text)
	}
	key = strings.TrimSpace(ln.text[:idx])
	if key == "" || strings.ContainsAny(key, "\"{}[]") {
		return "", "", syntaxErr(ln.num, "invalid key %q", key)
	}
	rest = strings.TrimSpace(ln.text[idx+1:])
	return key, rest, nil
}

// parseScalar handles plain scalars and double-quoted scalars with \" \\
// \n \t escapes.
func parseScalar(s string, line int) (string, error) {
	if !strings.HasPrefix(s, "\"") {
		return s, nil
	}
	if len(s) < 2 || !strings.HasSuffix(s, "\"") {
		return "", syntaxErr(line, "unterminated quoted scalar %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			if c == '"' {
				return "", syntaxErr(line, "unescaped quote inside scalar %q", s)
			}
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", syntaxErr(line, "dangling escape in scalar %q", s)
		}
		switch body[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", syntaxErr(line, "unsupported escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// Get returns the child node for key in a mapping node.
func (n *Node) Get(key string) (*Node, bool) {
	if n == nil || n.Kind != KindMap {
		return nil, false
	}
	c, ok := n.Map[key]
	return c, ok
}

// ScalarOr returns the scalar value of the child at key, or def if absent.
func (n *Node) ScalarOr(key, def string) string {
	c, ok := n.Get(key)
	if !ok || c.Kind != KindScalar {
		return def
	}
	return c.Scalar
}
