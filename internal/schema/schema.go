// Package schema declares and validates the structure of data entries.
//
// The paper's prototype specifies the structure of a data entry
// "beforehand by a YAML schema" (§V). This package implements a
// YAML-subset parser (yaml.go), a small type system for entry fields, and
// a canonical record encoding so that validated entries hash
// deterministically.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/seldel/seldel/internal/codec"
)

// Type is the type of a schema field.
type Type uint8

// Field types supported by the schema language.
const (
	TypeString Type = iota + 1
	TypeInt
	TypeUint
	TypeBytes
	TypeBool
	TypeTimestamp // logical timestamp (uint64), see internal/simclock
)

var typeNames = map[Type]string{
	TypeString:    "string",
	TypeInt:       "int",
	TypeUint:      "uint",
	TypeBytes:     "bytes",
	TypeBool:      "bool",
	TypeTimestamp: "timestamp",
}

var typeByName = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// String returns the schema-language name of the type.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Valid reports whether t is a defined type.
func (t Type) Valid() bool { _, ok := typeNames[t]; return ok }

// Field is one declared field of an entry schema.
type Field struct {
	Name     string
	Type     Type
	Required bool
	// MaxLength bounds string/bytes fields; 0 means unbounded.
	MaxLength int
}

// Schema is a compiled entry schema.
type Schema struct {
	name   string
	doc    string
	fields []Field
	byName map[string]int
}

// Errors returned by schema compilation and validation.
var (
	ErrBadSchema     = errors.New("schema: invalid schema definition")
	ErrValidation    = errors.New("schema: record does not match schema")
	ErrUnknownField  = errors.New("schema: unknown field")
	ErrMissingField  = errors.New("schema: missing required field")
	ErrTypeMismatch  = errors.New("schema: field type mismatch")
	ErrLengthExceeds = errors.New("schema: field exceeds max_length")
)

// New compiles a schema from explicit fields.
func New(name string, fields ...Field) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty schema name", ErrBadSchema)
	}
	s := &Schema{name: name, byName: make(map[string]int, len(fields))}
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("%w: field with empty name", ErrBadSchema)
		}
		if !f.Type.Valid() {
			return nil, fmt.Errorf("%w: field %q has invalid type", ErrBadSchema, f.Name)
		}
		if f.MaxLength < 0 {
			return nil, fmt.Errorf("%w: field %q has negative max_length", ErrBadSchema, f.Name)
		}
		if f.MaxLength > 0 && f.Type != TypeString && f.Type != TypeBytes {
			return nil, fmt.Errorf("%w: field %q: max_length only applies to string/bytes", ErrBadSchema, f.Name)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrBadSchema, f.Name)
		}
		s.byName[f.Name] = len(s.fields)
		s.fields = append(s.fields, f)
	}
	if len(s.fields) == 0 {
		return nil, fmt.Errorf("%w: schema %q has no fields", ErrBadSchema, name)
	}
	return s, nil
}

// Parse compiles a schema from a YAML-subset document of the form:
//
//	name: login_event
//	doc: optional description
//	fields:
//	  - name: user
//	    type: string
//	    required: true
//	    max_length: 64
//	  - name: success
//	    type: bool
func Parse(src string) (*Schema, error) {
	root, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	name := root.ScalarOr("name", "")
	if name == "" {
		return nil, fmt.Errorf("%w: missing 'name'", ErrBadSchema)
	}
	fieldsNode, ok := root.Get("fields")
	if !ok || fieldsNode.Kind != KindList {
		return nil, fmt.Errorf("%w: missing 'fields' list", ErrBadSchema)
	}
	fields := make([]Field, 0, len(fieldsNode.List))
	for i, item := range fieldsNode.List {
		if item.Kind != KindMap {
			return nil, fmt.Errorf("%w: fields[%d] is not a mapping", ErrBadSchema, i)
		}
		f := Field{
			Name: item.ScalarOr("name", ""),
		}
		typeName := item.ScalarOr("type", "")
		t, ok := typeByName[typeName]
		if !ok {
			return nil, fmt.Errorf("%w: fields[%d] (%q): unknown type %q", ErrBadSchema, i, f.Name, typeName)
		}
		f.Type = t
		switch req := item.ScalarOr("required", "false"); req {
		case "true":
			f.Required = true
		case "false":
		default:
			return nil, fmt.Errorf("%w: fields[%d] (%q): required must be true/false, got %q", ErrBadSchema, i, f.Name, req)
		}
		if ml := item.ScalarOr("max_length", ""); ml != "" {
			n, err := strconv.Atoi(ml)
			if err != nil {
				return nil, fmt.Errorf("%w: fields[%d] (%q): bad max_length: %v", ErrBadSchema, i, f.Name, err)
			}
			f.MaxLength = n
		}
		fields = append(fields, f)
	}
	s, err := New(name, fields...)
	if err != nil {
		return nil, err
	}
	s.doc = root.ScalarOr("doc", "")
	return s, nil
}

// Name returns the schema name.
func (s *Schema) Name() string { return s.name }

// Doc returns the optional schema description.
func (s *Schema) Doc() string { return s.doc }

// Fields returns a copy of the declared fields in declaration order.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Field returns the declaration of the named field.
func (s *Schema) Field(name string) (Field, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Field{}, false
	}
	return s.fields[i], true
}

// Validate checks r against the schema: all required fields present, no
// unknown fields, types match, and length bounds hold.
func (s *Schema) Validate(r Record) error {
	for name := range r {
		if _, ok := s.byName[name]; !ok {
			return fmt.Errorf("%w: %q (schema %s)", ErrUnknownField, name, s.name)
		}
	}
	for _, f := range s.fields {
		v, present := r[f.Name]
		if !present {
			if f.Required {
				return fmt.Errorf("%w: %q (schema %s)", ErrMissingField, f.Name, s.name)
			}
			continue
		}
		if v.Type != f.Type {
			return fmt.Errorf("%w: field %q is %s, schema wants %s", ErrTypeMismatch, f.Name, v.Type, f.Type)
		}
		if f.MaxLength > 0 {
			var n int
			switch f.Type {
			case TypeString:
				n = len(v.Str)
			case TypeBytes:
				n = len(v.Blob)
			}
			if n > f.MaxLength {
				return fmt.Errorf("%w: field %q length %d > %d", ErrLengthExceeds, f.Name, n, f.MaxLength)
			}
		}
	}
	return nil
}

// Value is a dynamically typed field value.
type Value struct {
	Type Type
	Str  string
	I64  int64
	U64  uint64
	Blob []byte
	Flag bool
}

// String constructs a string value.
func String(s string) Value { return Value{Type: TypeString, Str: s} }

// Int constructs an int value.
func Int(v int64) Value { return Value{Type: TypeInt, I64: v} }

// Uint constructs a uint value.
func Uint(v uint64) Value { return Value{Type: TypeUint, U64: v} }

// Bytes constructs a bytes value (the slice is not copied).
func Bytes(b []byte) Value { return Value{Type: TypeBytes, Blob: b} }

// Bool constructs a bool value.
func Bool(v bool) Value { return Value{Type: TypeBool, Flag: v} }

// Timestamp constructs a logical-timestamp value.
func Timestamp(t uint64) Value { return Value{Type: TypeTimestamp, U64: t} }

// Display renders the value for console output (Figs. 6–8 style).
func (v Value) Display() string {
	switch v.Type {
	case TypeString:
		return v.Str
	case TypeInt:
		return strconv.FormatInt(v.I64, 10)
	case TypeUint, TypeTimestamp:
		return strconv.FormatUint(v.U64, 10)
	case TypeBytes:
		return fmt.Sprintf("0x%x", v.Blob)
	case TypeBool:
		return strconv.FormatBool(v.Flag)
	default:
		return fmt.Sprintf("?%d", v.Type)
	}
}

// Record is a set of named field values.
type Record map[string]Value

// Encode produces the canonical binary encoding of the record: fields
// sorted by name, each as (name, type tag, value). Two records with equal
// content always encode identically.
func (r Record) Encode() []byte {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	e := codec.NewEncoder(64 * (len(r) + 1))
	e.Uint32(uint32(len(names)))
	for _, n := range names {
		v := r[n]
		e.String(n)
		e.Byte(byte(v.Type))
		switch v.Type {
		case TypeString:
			e.String(v.Str)
		case TypeInt:
			e.Int64(v.I64)
		case TypeUint, TypeTimestamp:
			e.Uint64(v.U64)
		case TypeBytes:
			e.Bytes(v.Blob)
		case TypeBool:
			e.Bool(v.Flag)
		}
	}
	return e.Data()
}

// maxRecordFields bounds the declared field count so corrupted input
// cannot force a huge allocation.
const maxRecordFields = 1 << 16

// DecodeRecord parses a canonical record encoding.
func DecodeRecord(data []byte) (Record, error) {
	d := codec.NewDecoder(data)
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > maxRecordFields {
		return nil, fmt.Errorf("%w: field count %d exceeds limit", ErrValidation, n)
	}
	r := make(Record, n)
	var prev string
	for i := uint32(0); i < n; i++ {
		name := d.ReadString()
		t := Type(d.Byte())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if i > 0 && name <= prev {
			return nil, fmt.Errorf("%w: field order not canonical (%q after %q)", ErrValidation, name, prev)
		}
		prev = name
		var v Value
		v.Type = t
		switch t {
		case TypeString:
			v.Str = d.ReadString()
		case TypeInt:
			v.I64 = d.Int64()
		case TypeUint, TypeTimestamp:
			v.U64 = d.Uint64()
		case TypeBytes:
			v.Blob = d.Bytes()
		case TypeBool:
			v.Flag = d.Bool()
		default:
			return nil, fmt.Errorf("%w: unknown type tag %d for field %q", ErrValidation, t, name)
		}
		r[name] = v
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return r, nil
}

// Equal reports deep equality of two records.
func (r Record) Equal(other Record) bool {
	if len(r) != len(other) {
		return false
	}
	for k, v := range r {
		w, ok := other[k]
		if !ok || v.Type != w.Type {
			return false
		}
		switch v.Type {
		case TypeString:
			if v.Str != w.Str {
				return false
			}
		case TypeInt:
			if v.I64 != w.I64 {
				return false
			}
		case TypeUint, TypeTimestamp:
			if v.U64 != w.U64 {
				return false
			}
		case TypeBytes:
			if string(v.Blob) != string(w.Blob) {
				return false
			}
		case TypeBool:
			if v.Flag != w.Flag {
				return false
			}
		}
	}
	return true
}
