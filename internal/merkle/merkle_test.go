package merkle

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/seldel/seldel/internal/codec"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if tr.Root().IsZero() {
		t.Error("empty root should not be zero hash")
	}
	if _, err := tr.Proof(0); !errors.Is(err, ErrEmptyTree) {
		t.Errorf("Proof on empty tree: %v, want ErrEmptyTree", err)
	}
	if Build(nil).Root() != Build([][]byte{}).Root() {
		t.Error("empty roots differ")
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := Build(leaves(1))
	if tr.Root() != HashLeaf([]byte("leaf-0")) {
		t.Error("single-leaf root should equal the leaf hash")
	}
	p, err := tr.Proof(0)
	if err != nil {
		t.Fatalf("Proof: %v", err)
	}
	if len(p.Siblings) != 0 {
		t.Errorf("single-leaf proof has %d siblings", len(p.Siblings))
	}
	if !Verify(tr.Root(), []byte("leaf-0"), p) {
		t.Error("single-leaf proof rejected")
	}
}

func TestProofsAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		tr := Build(ls)
		for i := 0; i < n; i++ {
			p, err := tr.Proof(i)
			if err != nil {
				t.Fatalf("n=%d Proof(%d): %v", n, i, err)
			}
			if !Verify(tr.Root(), ls[i], p) {
				t.Errorf("n=%d proof for leaf %d rejected", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	ls := leaves(7)
	tr := Build(ls)
	p, err := tr.Proof(3)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(tr.Root(), []byte("forged"), p) {
		t.Error("forged leaf accepted")
	}
	// Wrong index with right data must also fail.
	p.Index = 4
	if Verify(tr.Root(), ls[3], p) {
		t.Error("proof accepted at wrong index")
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	ls := leaves(5)
	tr := Build(ls)
	p, _ := tr.Proof(2)
	other := Build(leaves(6)).Root()
	if Verify(other, ls[2], p) {
		t.Error("proof accepted under wrong root")
	}
}

func TestProofRejectsTamperedSiblings(t *testing.T) {
	ls := leaves(8)
	tr := Build(ls)
	p, _ := tr.Proof(5)
	p.Siblings[0][0] ^= 0xFF
	if Verify(tr.Root(), ls[5], p) {
		t.Error("tampered proof accepted")
	}
}

func TestProofRejectsExtraSiblings(t *testing.T) {
	ls := leaves(4)
	tr := Build(ls)
	p, _ := tr.Proof(1)
	p.Siblings = append(p.Siblings, codec.HashBytes([]byte("extra")))
	if Verify(tr.Root(), ls[1], p) {
		t.Error("proof with extra siblings accepted")
	}
}

func TestProofIndexRange(t *testing.T) {
	tr := Build(leaves(4))
	for _, i := range []int{-1, 4, 100} {
		if _, err := tr.Proof(i); !errors.Is(err, ErrIndexRange) {
			t.Errorf("Proof(%d): %v, want ErrIndexRange", i, err)
		}
	}
}

func TestDistinctLeafSetsDistinctRoots(t *testing.T) {
	r1 := Build(leaves(4)).Root()
	r2 := Build(leaves(5)).Root()
	if r1 == r2 {
		t.Error("trees of different sizes share a root")
	}
	ls := leaves(4)
	ls[2] = []byte("mutated")
	if Build(ls).Root() == r1 {
		t.Error("mutated leaf set shares root")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A two-leaf tree's root must not equal the leaf hash of the
	// concatenated children (classic second-preimage construction).
	a, b := []byte("a"), []byte("b")
	tr := Build([][]byte{a, b})
	ha, hb := HashLeaf(a), HashLeaf(b)
	concat := append(append([]byte{}, ha[:]...), hb[:]...)
	if tr.Root() == HashLeaf(concat) {
		t.Error("interior node collides with a leaf hash")
	}
}

func TestBuildFromHashes(t *testing.T) {
	hs := []codec.Hash{
		codec.HashBytes([]byte("h0")),
		codec.HashBytes([]byte("h1")),
		codec.HashBytes([]byte("h2")),
	}
	tr := BuildFromHashes(hs)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	p, err := tr.Proof(1)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyLeafHash(tr.Root(), hs[1], p) {
		t.Error("hash-leaf proof rejected")
	}
	if BuildFromHashes(nil).Root() != Build(nil).Root() {
		t.Error("empty BuildFromHashes root differs from Build")
	}
}

func TestBuildFromHashesCopiesInput(t *testing.T) {
	hs := []codec.Hash{codec.HashBytes([]byte("a")), codec.HashBytes([]byte("b"))}
	tr := BuildFromHashes(hs)
	root := tr.Root()
	hs[0][0] ^= 0xFF
	if tr.Root() != root {
		t.Error("tree aliases caller's hash slice")
	}
}

// Property: for random leaf sets, every leaf's proof verifies and a
// mutated leaf's proof does not.
func TestQuickProofSoundness(t *testing.T) {
	f := func(raw [][]byte, pick uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		tr := Build(raw)
		i := int(pick) % len(raw)
		p, err := tr.Proof(i)
		if err != nil {
			return false
		}
		if !Verify(tr.Root(), raw[i], p) {
			return false
		}
		mutated := append(append([]byte{}, raw[i]...), 0x55)
		return !Verify(tr.Root(), mutated, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild1024(b *testing.B) {
	ls := leaves(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ls)
	}
}

func BenchmarkProofVerify1024(b *testing.B) {
	ls := leaves(1024)
	tr := Build(ls)
	p, _ := tr.Proof(511)
	root := tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(root, ls[511], p) {
			b.Fatal("proof rejected")
		}
	}
}
