// Package merkle implements binary Merkle trees with inclusion proofs.
//
// Merkle roots serve two purposes in the reproduction:
//
//  1. Each block commits to its entries via a Merkle root, so clients can
//     verify inclusion against anchor nodes without the full block.
//  2. Summary blocks store the Merkle root of a middle sequence ω_{lβ/2}
//     as a redundancy reference (Fig. 9), which is what forces a majority
//     attacker to rewrite at least lβ/2 blocks instead of one.
//
// Leaf and interior hashes use distinct domain-separation prefixes so a
// leaf can never be confused with an interior node (second-preimage
// hardening, as in RFC 6962).
package merkle

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"github.com/seldel/seldel/internal/codec"
)

var (
	// ErrIndexRange is returned for proofs of out-of-range leaves.
	ErrIndexRange = errors.New("merkle: leaf index out of range")
	// ErrEmptyTree is returned when a proof is requested from an empty tree.
	ErrEmptyTree = errors.New("merkle: empty tree has no proofs")
)

const (
	leafPrefix     = 0x00
	interiorPrefix = 0x01
)

// emptyRoot is the root of a tree with zero leaves: H(0x02).
func emptyRoot() codec.Hash {
	return codec.HashBytes([]byte{0x02})
}

// HashLeaf returns the domain-separated hash of a leaf payload.
func HashLeaf(data []byte) codec.Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out codec.Hash
	h.Sum(out[:0])
	return out
}

// hashInterior combines two child hashes.
func hashInterior(left, right codec.Hash) codec.Hash {
	h := sha256.New()
	h.Write([]byte{interiorPrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out codec.Hash
	h.Sum(out[:0])
	return out
}

// Tree is an immutable Merkle tree over a list of leaf payloads.
type Tree struct {
	// levels[0] holds the leaf hashes; levels[len-1] holds the root.
	// An odd node at the end of a level is promoted unchanged (Bitcoin
	// duplicates it instead; promotion avoids the CVE-2012-2459 ambiguity).
	levels [][]codec.Hash
}

// Runner fans independent units of work across workers: Each runs
// fn(i) for every i in [0, n) and waits for all of them. verify.Pool
// satisfies it, so batch-level tree building shares the chain's
// verification workers. A nil Runner runs serially.
type Runner interface {
	Each(n int, fn func(int))
}

// parallelThreshold is the leaf count below which fan-out overhead
// exceeds the hashing it saves.
const parallelThreshold = 64

// Build constructs a tree over the given leaf payloads. A nil or empty
// leaf list yields the canonical empty-tree root.
func Build(leaves [][]byte) *Tree { return BuildWith(nil, leaves) }

// BuildWith is Build with the leaf hashing fanned out across r (the
// dominant cost; interior levels halve geometrically and stay serial).
// The resulting tree is identical to Build's.
func BuildWith(r Runner, leaves [][]byte) *Tree {
	if len(leaves) == 0 {
		return &Tree{}
	}
	level := make([]codec.Hash, len(leaves))
	if r != nil && len(leaves) >= parallelThreshold {
		r.Each(len(leaves), func(i int) { level[i] = HashLeaf(leaves[i]) })
	} else {
		for i, l := range leaves {
			level[i] = HashLeaf(l)
		}
	}
	return grow(level)
}

// BuildFromHashes constructs a tree whose leaves are pre-computed hashes
// (already domain-separated by the caller, e.g. block hashes when
// committing to a whole sequence).
func BuildFromHashes(hashes []codec.Hash) *Tree {
	if len(hashes) == 0 {
		return &Tree{}
	}
	level := make([]codec.Hash, len(hashes))
	copy(level, hashes)
	return grow(level)
}

// grow reduces a leaf level to the root, recording every level.
func grow(level []codec.Hash) *Tree {
	t := &Tree{levels: [][]codec.Hash{level}}
	for len(level) > 1 {
		next := make([]codec.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashInterior(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Len returns the number of leaves.
func (t *Tree) Len() int {
	if len(t.levels) == 0 {
		return 0
	}
	return len(t.levels[0])
}

// Root returns the Merkle root. The empty tree has a well-defined root.
func (t *Tree) Root() codec.Hash {
	if len(t.levels) == 0 {
		return emptyRoot()
	}
	return t.levels[len(t.levels)-1][0]
}

// Proof is an inclusion proof for a single leaf.
type Proof struct {
	// Index is the zero-based position of the proven leaf.
	Index int
	// LeafCount is the total number of leaves in the tree, needed to
	// replay the odd-node promotion rule during verification.
	LeafCount int
	// Siblings are the sibling hashes from leaf level towards the root.
	// Levels where the node had no sibling (odd promotion) are omitted.
	Siblings []codec.Hash
}

// Proof returns the inclusion proof for leaf i.
func (t *Tree) Proof(i int) (Proof, error) {
	n := t.Len()
	if n == 0 {
		return Proof{}, ErrEmptyTree
	}
	if i < 0 || i >= n {
		return Proof{}, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, n)
	}
	p := Proof{Index: i, LeafCount: n}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib < len(level) {
			p.Siblings = append(p.Siblings, level[sib])
		}
		idx /= 2
	}
	return p, nil
}

// VerifyLeafHash checks a proof for an already-hashed leaf.
func VerifyLeafHash(root codec.Hash, leafHash codec.Hash, p Proof) bool {
	if p.LeafCount <= 0 || p.Index < 0 || p.Index >= p.LeafCount {
		return false
	}
	cur := leafHash
	idx := p.Index
	width := p.LeafCount
	sibUsed := 0
	for width > 1 {
		sib := idx ^ 1
		if sib < width {
			if sibUsed >= len(p.Siblings) {
				return false
			}
			s := p.Siblings[sibUsed]
			sibUsed++
			if idx%2 == 0 {
				cur = hashInterior(cur, s)
			} else {
				cur = hashInterior(s, cur)
			}
		}
		idx /= 2
		width = (width + 1) / 2
	}
	return sibUsed == len(p.Siblings) && cur == root
}

// Verify checks that data is the leaf at p.Index under root.
func Verify(root codec.Hash, data []byte, p Proof) bool {
	return VerifyLeafHash(root, HashLeaf(data), p)
}
