package manifest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/seldel/seldel/internal/block"
)

// Fuzz targets for the manifest's durable line format and its recovery
// path: arbitrary file contents must never panic Open, and whatever
// Open salvages must leave a log that still accepts appends — the
// property the whole audit trail rests on after a crash. Regenerate the
// checked-in corpora with:
//
//	SELDEL_GEN_FUZZ_CORPUS=1 go test ./internal/manifest/ -run TestGenerateFuzzCorpora

func lineSeeds() [][]byte {
	rec := &Record{
		Seq:          3,
		OldMarker:    6,
		NewMarker:    9,
		SummaryBlock: 9,
		Time:         41,
		Tombstones: []Tombstone{{
			Target:        block.Ref{Block: 7, Entry: 1},
			Requester:     "alice",
			RequestRef:    block.Ref{Block: 8, Entry: 0},
			MarkedAtBlock: 8,
			CoSigners:     []CoSigner{{Name: "bob", Signature: []byte{1, 2, 3}}},
		}},
	}
	valid, err := EncodeLine(rec)
	if err != nil {
		panic(err)
	}
	seeds := [][]byte{valid}
	// CRC mismatch: body edited after the prefix was computed.
	tampered := append([]byte(nil), valid...)
	tampered[len(tampered)/2] ^= 0x20
	seeds = append(seeds,
		tampered,
		valid[:len(valid)/2],                       // torn mid-record
		[]byte("deadbeef not-json\n"),              // CRC prefix, garbage body
		[]byte("zzzzzzzz {}\n"),                    // malformed CRC prefix
		[]byte(`00000000 {"seq":1}`),               // wrong CRC for the body
		append(append([]byte(nil), valid...), 'x'), // trailing data
		[]byte{},                       //
		bytes.Repeat([]byte{0xff}, 24), // binary noise
	)
	if inv, err := EncodeLine(&Record{Seq: 1, OldMarker: 9, NewMarker: 3}); err == nil {
		seeds = append(seeds, inv) // valid CRC, inverted marker range
	}
	return seeds
}

func FuzzDecodeLine(f *testing.F) {
	for _, s := range lineSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := DecodeLine(raw)
		if err != nil {
			return
		}
		if r.NewMarker < r.OldMarker {
			t.Fatalf("accepted inverted range [%d,%d)", r.OldMarker, r.NewMarker)
		}
		line, err := EncodeLine(r)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rt, err := DecodeLine(line)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if rt.Seq != r.Seq || rt.OldMarker != r.OldMarker || rt.NewMarker != r.NewMarker ||
			len(rt.Tombstones) != len(r.Tombstones) {
			t.Fatalf("round trip changed record: %+v != %+v", rt, r)
		}
	})
}

// FuzzOpenRecovery feeds arbitrary bytes to the log's crash-recovery
// path as if they were a DELETIONS file left by a dead process.
func FuzzOpenRecovery(f *testing.F) {
	for _, s := range logSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, FileName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir)
		if err != nil {
			return // unreadable is acceptable; panicking is not
		}
		defer l.Close()
		// Whatever was salvaged, the log must still take appends and
		// survive a clean reopen with the appended record intact.
		before := l.Len()
		stored, err := l.Append(Record{OldMarker: 0, NewMarker: 1})
		if err != nil {
			t.Fatalf("recovered log rejects appends: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer l2.Close()
		if l2.Len() != before+1 {
			t.Fatalf("reopen sees %d records, want %d", l2.Len(), before+1)
		}
		if head, ok := l2.Head(); !ok || head.Seq != stored.Seq {
			t.Fatalf("appended record lost across reopen: %+v ok=%v", head, ok)
		}
	})
}

// logSeeds builds whole-file corpora: multi-record logs with clean,
// torn, and interleaved-corruption shapes.
func logSeeds() [][]byte {
	var clean bytes.Buffer
	for seq := uint64(1); seq <= 3; seq++ {
		line, err := EncodeLine(&Record{Seq: seq, OldMarker: (seq - 1) * 3, NewMarker: seq * 3})
		if err != nil {
			panic(err)
		}
		clean.Write(line)
	}
	full := clean.Bytes()
	torn := append(append([]byte(nil), full...), []byte(`deadbeef {"seq":4,"old_`)...)
	var holed bytes.Buffer
	holed.Write(full[:len(full)/3])
	holed.WriteString("garbage line\n")
	holed.Write(full[len(full)/3:])
	return [][]byte{
		full,
		torn,
		holed.Bytes(),
		nil,
		[]byte("\n\n\n"),
		bytes.Repeat([]byte{0x00}, 64),
	}
}

// TestGenerateFuzzCorpora rewrites the checked-in seed corpora. Guarded
// by an environment variable so a normal test run never touches them.
func TestGenerateFuzzCorpora(t *testing.T) {
	if os.Getenv("SELDEL_GEN_FUZZ_CORPUS") == "" {
		t.Skip("set SELDEL_GEN_FUZZ_CORPUS=1 to regenerate fuzz corpora")
	}
	for name, seeds := range map[string][][]byte{
		"FuzzDecodeLine":   lineSeeds(),
		"FuzzOpenRecovery": logSeeds(),
	} {
		writeFuzzCorpus(t, name, seeds)
	}
}

func writeFuzzCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
