// Package manifest implements the durable deletion manifest: an
// append-only, CRC-checked log of deletion records that survives the
// blocks it describes.
//
// The paper's scheme erases chain prefixes physically (§IV-C/D), which
// is exactly what makes erasure unauditable after the fact: once the
// segment store unlinks a cut prefix, a bare truncation marker cannot
// answer "what was deleted, when, by whom, under whose co-signatures",
// nor arm a rejoining replica against a peer replaying the deleted
// blocks. The manifest closes that gap. Every executed truncation
// appends one Record — height range, per-entry tombstones with the
// requester identity and co-signer set, and the hash of the summary
// block that replaced the cut — written durably in the same critical
// sequence as the marker shift, before the blocks are unlinked.
//
// The file format is deliberately line-oriented (one CRC-prefixed JSON
// record per line, in the style of beads' deletions manifest) rather
// than length-prefixed binary: a torn or corrupted line never poisons
// the records after it, because recovery can resynchronize on the next
// newline. Open skips corrupt interior lines with warnings and
// truncates a torn tail, so a crash mid-append costs at most the
// record being written — which the store will regenerate, since the
// marker shift it describes did not become durable either.
package manifest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
)

const (
	// FileName is the manifest log file inside a store directory.
	FileName = "DELETIONS"
	// ArchiveName holds records moved aside by `seldel doctor -archive`.
	ArchiveName = "DELETIONS.archive"
)

// Errors returned by the manifest log.
var (
	// ErrBadLine is returned when a single line fails CRC or JSON
	// validation. Open converts it into a warning; DecodeLine returns it.
	ErrBadLine = errors.New("manifest: corrupt record line")
	// ErrClosed is returned for operations on a closed log.
	ErrClosed = errors.New("manifest: log is closed")
	// ErrSeqOrder is returned when an appended record would move the
	// sequence number backwards.
	ErrSeqOrder = errors.New("manifest: record sequence out of order")
)

// CoSigner is one dependent-party approval carried into a tombstone,
// preserved verbatim from the deletion request entry (§IV-D.2).
type CoSigner struct {
	Name      string `json:"name"`
	Signature []byte `json:"sig"`
}

// Tombstone records the erasure of a single entry: what was deleted,
// who asked, and which co-signers approved. EntryDigest is the content
// hash of the erased entry, so an auditor holding the original bytes
// can still match them to the tombstone without the chain retaining
// anything recoverable.
type Tombstone struct {
	// Target is the erased entry's origin reference (α/e).
	Target block.Ref `json:"target"`
	// Requester is the identity that signed the deletion request.
	Requester string `json:"requester"`
	// RequestRef locates the deletion request entry that authorized
	// this erasure. The request block itself may since have been cut.
	RequestRef block.Ref `json:"request"`
	// MarkedAtBlock is the chain height at which the request was
	// admitted and the mark placed.
	MarkedAtBlock uint64 `json:"marked_at"`
	// EntryDigest is the content hash of the erased entry's canonical
	// encoding, or zero when the entry bytes were no longer reachable
	// at record time.
	EntryDigest codec.Hash `json:"entry_digest"`
	// CoSigners are the dependent-party approvals from the request.
	CoSigners []CoSigner `json:"cosigners,omitempty"`
}

// Record is one durable deletion record: the audit trail for a single
// executed truncation (marker shift) of the chain.
type Record struct {
	// Seq is the manifest sequence number, assigned by Append,
	// strictly increasing within one log.
	Seq uint64 `json:"seq"`
	// OldMarker and NewMarker bound the deleted height range:
	// blocks with OldMarker <= number < NewMarker were cut.
	OldMarker uint64 `json:"old_marker"`
	NewMarker uint64 `json:"new_marker"`
	// SummaryBlock and SummaryHash identify the summary block Σ that
	// replaced the cut prefix; its carried set plus these tombstones
	// account for every entry of the deleted range.
	SummaryBlock uint64     `json:"summary_block"`
	SummaryHash  codec.Hash `json:"summary_hash"`
	// FirstCutHash and LastCutHash are the block digests bounding the
	// cut range (the former oldest live block and the last block below
	// the new marker), pinning exactly which chain section vanished.
	FirstCutHash codec.Hash `json:"first_cut_hash"`
	LastCutHash  codec.Hash `json:"last_cut_hash"`
	// Time is the chain's logical timestamp at execution.
	Time uint64 `json:"time"`
	// Tombstones lists the entries whose deletion marks were executed
	// by this truncation (deliberately dropped, not merely expired).
	Tombstones []Tombstone `json:"tombstones,omitempty"`
	// Hydrated marks records reconstructed after the fact by
	// `seldel doctor` from the snapshot checkpoint, which can recover
	// the height range but not the per-entry tombstones.
	Hydrated bool `json:"hydrated,omitempty"`
}

// Covers reports whether blockNum falls inside the deleted range.
func (r *Record) Covers(blockNum uint64) bool {
	return blockNum >= r.OldMarker && blockNum < r.NewMarker
}

// FindTombstone returns the tombstone for ref, if this record holds one.
func (r *Record) FindTombstone(ref block.Ref) (Tombstone, bool) {
	for _, t := range r.Tombstones {
		if t.Target == ref {
			return t, true
		}
	}
	return Tombstone{}, false
}

// clone deep-copies a record so callers cannot alias log internals.
func (r Record) clone() Record {
	cp := r
	cp.Tombstones = make([]Tombstone, len(r.Tombstones))
	for i, t := range r.Tombstones {
		cp.Tombstones[i] = t
		cp.Tombstones[i].CoSigners = append([]CoSigner(nil), t.CoSigners...)
	}
	return cp
}

// EncodeLine renders one record as its durable line: an 8-hex-digit
// CRC-32 (IEEE) of the JSON body, a space, the JSON, a newline.
func EncodeLine(r *Record) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("manifest: encode record: %w", err)
	}
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(body))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// DecodeLine parses one line (without requiring the trailing newline)
// back into a record, verifying the CRC.
func DecodeLine(line []byte) (*Record, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("%w: missing crc prefix", ErrBadLine)
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("%w: bad crc prefix: %v", ErrBadLine, err)
	}
	body := line[9:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (have %08x, want %08x)", ErrBadLine, got, want)
	}
	var r Record
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLine, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after record", ErrBadLine)
	}
	if r.NewMarker < r.OldMarker {
		return nil, fmt.Errorf("%w: inverted marker range [%d,%d)", ErrBadLine, r.OldMarker, r.NewMarker)
	}
	return &r, nil
}

// Read parses the manifest log in dir without mutating it: no torn-tail
// truncation, no append handle. This is the inspection path (`seldel
// doctor` in check mode must not repair as a side effect of looking).
// A missing log yields an empty slice. Records are returned oldest
// first by sequence number.
func Read(dir string) ([]Record, []string, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("manifest: read: %w", err)
	}
	var recs []Record
	var warnings []string
	if n := bytes.LastIndexByte(data, '\n'); n < len(data)-1 {
		warnings = append(warnings, fmt.Sprintf(
			"torn tail (%d bytes after last complete record)", len(data)-(n+1)))
		data = data[:n+1]
	}
	for lineNo, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		r, err := DecodeLine(line)
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("line %d: %v (skipped)", lineNo+1, err))
			continue
		}
		recs = append(recs, *r)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, warnings, nil
}

// Log is the append-only deletion-record log backing one store
// directory. All methods are safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	recs     []Record
	warnings []string
	nextSeq  uint64
	closed   bool
}

// Open loads (or creates) the manifest log in dir. Corrupt interior
// lines are skipped and reported via Warnings; a torn tail — bytes
// after the last complete line, the signature of a crash mid-append —
// is truncated away so future appends start on a line boundary.
func Open(dir string) (*Log, error) {
	path := filepath.Join(dir, FileName)
	l := &Log{path: path, nextSeq: 1}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("manifest: read %s: %w", path, err)
	}
	keep := len(data) // bytes to retain: end of the last complete line
	if n := bytes.LastIndexByte(data, '\n'); n < len(data)-1 {
		keep = n + 1 // drop the torn, never-terminated tail
		l.warnings = append(l.warnings, fmt.Sprintf(
			"truncated torn tail (%d bytes after last complete record)", len(data)-keep))
	}
	for lineNo, line := range bytes.Split(data[:keep], []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		r, err := DecodeLine(line)
		if err != nil {
			l.warnings = append(l.warnings, fmt.Sprintf("line %d: %v (skipped)", lineNo+1, err))
			continue
		}
		if r.Seq < l.nextSeq {
			l.warnings = append(l.warnings, fmt.Sprintf(
				"line %d: sequence %d not after %d (kept)", lineNo+1, r.Seq, l.nextSeq-1))
		}
		l.recs = append(l.recs, *r)
		if r.Seq >= l.nextSeq {
			l.nextSeq = r.Seq + 1
		}
	}
	sort.SliceStable(l.recs, func(i, j int) bool { return l.recs[i].Seq < l.recs[j].Seq })
	if keep < len(data) {
		if err := os.WriteFile(path+".tmp", data[:keep], 0o644); err != nil {
			return nil, fmt.Errorf("manifest: rewrite torn log: %w", err)
		}
		if err := os.Rename(path+".tmp", path); err != nil {
			return nil, fmt.Errorf("manifest: rewrite torn log: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("manifest: open %s: %w", path, err)
	}
	l.f = f
	return l, nil
}

// Append assigns the next sequence number to r (unless the caller
// pre-assigned a higher one), writes it durably (write + fsync), and
// returns the record as stored.
func (l *Log) Append(r Record) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, ErrClosed
	}
	if r.Seq == 0 {
		r.Seq = l.nextSeq
	} else if r.Seq < l.nextSeq {
		return Record{}, fmt.Errorf("%w: %d < %d", ErrSeqOrder, r.Seq, l.nextSeq)
	}
	line, err := EncodeLine(&r)
	if err != nil {
		return Record{}, err
	}
	if _, err := l.f.Write(line); err != nil {
		return Record{}, fmt.Errorf("manifest: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return Record{}, fmt.Errorf("manifest: sync: %w", err)
	}
	l.recs = append(l.recs, r.clone())
	l.nextSeq = r.Seq + 1
	return r, nil
}

// Records returns a deep copy of all readable records, oldest first.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.recs))
	for i, r := range l.recs {
		out[i] = r.clone()
	}
	return out
}

// Head returns the most recent record, if any.
func (l *Log) Head() (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return Record{}, false
	}
	return l.recs[len(l.recs)-1].clone(), true
}

// Len returns the number of readable records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Warnings returns recovery diagnostics accumulated by Open (corrupt
// lines skipped, torn tail truncated). Empty for a clean log.
func (l *Log) Warnings() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.warnings...)
}

// Rewrite atomically replaces the log contents with recs (doctor's
// archive path: the head record stays, applied history moves aside).
// The in-memory view and next sequence number follow the new contents;
// the sequence counter never moves backwards.
func (l *Log) Rewrite(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var buf bytes.Buffer
	for i := range recs {
		line, err := EncodeLine(&recs[i])
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	tmp := l.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("manifest: rewrite: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("manifest: rewrite: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("manifest: rewrite: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("manifest: reopen after rewrite: %w", err)
	}
	l.f = f
	l.recs = make([]Record, len(recs))
	for i, r := range recs {
		l.recs[i] = r.clone()
		if r.Seq >= l.nextSeq {
			l.nextSeq = r.Seq + 1
		}
	}
	return nil
}

// Close releases the underlying file handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// AppendToArchive appends recs to the archive file in dir, creating it
// if needed. Archived records use the same durable line format, so the
// archive remains readable with DecodeLine.
func AppendToArchive(dir string, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	f, err := os.OpenFile(filepath.Join(dir, ArchiveName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("manifest: open archive: %w", err)
	}
	defer f.Close()
	for i := range recs {
		line, err := EncodeLine(&recs[i])
		if err != nil {
			return err
		}
		if _, err := f.Write(line); err != nil {
			return fmt.Errorf("manifest: append archive: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("manifest: sync archive: %w", err)
	}
	return nil
}

// ReadArchive loads the archived records in dir, oldest first. A
// missing archive yields an empty slice.
func ReadArchive(dir string) ([]Record, []string, error) {
	data, err := os.ReadFile(filepath.Join(dir, ArchiveName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("manifest: read archive: %w", err)
	}
	var recs []Record
	var warnings []string
	for lineNo, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		r, err := DecodeLine(line)
		if err != nil {
			warnings = append(warnings, fmt.Sprintf("archive line %d: %v (skipped)", lineNo+1, err))
			continue
		}
		recs = append(recs, *r)
	}
	return recs, warnings, nil
}
