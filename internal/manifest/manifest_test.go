package manifest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
)

func sampleRecord(seq, old, newMarker uint64) Record {
	return Record{
		Seq:          seq,
		OldMarker:    old,
		NewMarker:    newMarker,
		SummaryBlock: newMarker,
		SummaryHash:  codec.HashBytes([]byte{byte(newMarker)}),
		FirstCutHash: codec.HashBytes([]byte{byte(old)}),
		LastCutHash:  codec.HashBytes([]byte{byte(newMarker - 1)}),
		Time:         seq * 10,
		Tombstones: []Tombstone{{
			Target:        block.Ref{Block: old + 1, Entry: 0},
			Requester:     "alice",
			RequestRef:    block.Ref{Block: old + 2, Entry: 1},
			MarkedAtBlock: old + 2,
			EntryDigest:   codec.HashBytes([]byte("entry")),
			CoSigners:     []CoSigner{{Name: "bob", Signature: []byte{1, 2, 3}}},
		}},
	}
}

func TestLineRoundTrip(t *testing.T) {
	r := sampleRecord(3, 0, 6)
	line, err := EncodeLine(&r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeLine(line)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seq != r.Seq || got.NewMarker != r.NewMarker || len(got.Tombstones) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	ts := got.Tombstones[0]
	if ts.Requester != "alice" || ts.Target != (block.Ref{Block: 1}) || len(ts.CoSigners) != 1 {
		t.Fatalf("tombstone mismatch: %+v", ts)
	}
	if ts.CoSigners[0].Name != "bob" || !bytes.Equal(ts.CoSigners[0].Signature, []byte{1, 2, 3}) {
		t.Fatalf("cosigner mismatch: %+v", ts.CoSigners[0])
	}
}

func TestDecodeLineRejectsCorruption(t *testing.T) {
	r := sampleRecord(1, 0, 3)
	line, err := EncodeLine(&r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Flip one byte inside the JSON body.
	bad := append([]byte(nil), line...)
	bad[len(bad)/2] ^= 0xff
	if _, err := DecodeLine(bad); err == nil {
		t.Fatal("corrupted body accepted")
	}
	if _, err := DecodeLine([]byte("short")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := DecodeLine([]byte("zzzzzzzz {}")); err == nil {
		t.Fatal("bad crc prefix accepted")
	}
}

func TestLogAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(sampleRecord(0, (i-1)*3, i*3)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	head, ok := l.Head()
	if !ok || head.Seq != 3 || head.NewMarker != 9 {
		t.Fatalf("head = %+v ok=%v", head, ok)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(l2.Warnings()) != 0 {
		t.Fatalf("clean log has warnings: %v", l2.Warnings())
	}
	recs := l2.Records()
	if len(recs) != 3 || recs[0].Seq != 1 || recs[2].Seq != 3 {
		t.Fatalf("records after reopen: %+v", recs)
	}
	// Sequence numbering continues where it left off.
	r, err := l2.Append(sampleRecord(0, 9, 12))
	if err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if r.Seq != 4 {
		t.Fatalf("seq after reopen = %d, want 4", r.Seq)
	}
}

func TestOpenSkipsCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(sampleRecord(0, (i-1)*3, i*3)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	l.Close()

	// Corrupt the middle line in place, keeping its length and newline.
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	mid := lines[1]
	mid[len(mid)/2] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 2 {
		t.Fatalf("len = %d, want 2 (middle skipped)", l2.Len())
	}
	warns := l2.Warnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "line 2") {
		t.Fatalf("warnings = %v", warns)
	}
	head, _ := l2.Head()
	if head.Seq != 3 {
		t.Fatalf("head seq = %d, want 3", head.Seq)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := l.Append(sampleRecord(0, 0, 3)); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Close()

	// Simulate a crash mid-append: half a record, no newline.
	path := filepath.Join(dir, FileName)
	full, err := EncodeLine(&Record{Seq: 2, OldMarker: 3, NewMarker: 6})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open for torn write: %v", err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatalf("torn write: %v", err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Len() != 1 {
		t.Fatalf("len = %d, want 1", l2.Len())
	}
	if warns := l2.Warnings(); len(warns) != 1 || !strings.Contains(warns[0], "torn tail") {
		t.Fatalf("warnings = %v", warns)
	}
	// Appending after recovery lands on a clean line boundary.
	if _, err := l2.Append(sampleRecord(0, 3, 6)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	l2.Close()
	l3, err := Open(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	if l3.Len() != 2 || len(l3.Warnings()) != 0 {
		t.Fatalf("after recovery: len=%d warnings=%v", l3.Len(), l3.Warnings())
	}
}

func TestRewriteAndArchive(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(sampleRecord(0, (i-1)*3, i*3)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	recs := l.Records()
	applied, head := recs[:2], recs[2:]
	if err := AppendToArchive(dir, applied); err != nil {
		t.Fatalf("archive: %v", err)
	}
	if err := l.Rewrite(head); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("len after rewrite = %d", l.Len())
	}
	// Sequence counter must not regress after archiving.
	r, err := l.Append(sampleRecord(0, 9, 12))
	if err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if r.Seq != 4 {
		t.Fatalf("seq after rewrite = %d, want 4", r.Seq)
	}
	arch, warns, err := ReadArchive(dir)
	if err != nil || len(warns) != 0 {
		t.Fatalf("read archive: %v %v", err, warns)
	}
	if len(arch) != 2 || arch[0].Seq != 1 || arch[1].Seq != 2 {
		t.Fatalf("archive contents: %+v", arch)
	}
}

func TestCoversAndFindTombstone(t *testing.T) {
	r := sampleRecord(1, 3, 9)
	if !r.Covers(3) || !r.Covers(8) || r.Covers(9) || r.Covers(2) {
		t.Fatal("Covers range wrong")
	}
	if _, ok := r.FindTombstone(block.Ref{Block: 4, Entry: 0}); !ok {
		t.Fatal("tombstone not found")
	}
	if _, ok := r.FindTombstone(block.Ref{Block: 4, Entry: 9}); ok {
		t.Fatal("phantom tombstone found")
	}
}
