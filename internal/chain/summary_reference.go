package chain

import (
	"sort"

	"github.com/seldel/seldel/internal/block"
)

// planSummaryReferenceLocked is the naive summary planner retained as
// the executable specification of planSummaryLocked: it rescans every
// merged block — and every entry already carried inside a previous
// summary — at each summary slot. The incremental planner must produce
// a bit-identical block for identical chain state; the golden tests
// (summary_golden_test.go) assert that across every retention scenario.
// Callers must hold the chain lock (read or write) and must have
// verified that the next slot is a summary slot.
func (c *Chain) planSummaryReferenceLocked() (*block.Block, summaryPlan) {
	head := c.head()
	num := head.Header.Number + 1
	currentSeq := c.seqOf(num)

	plan := c.retentionPlanLocked(num, head.Header.Time)

	// Copy the content of the merged prefix into the new summary block
	// (Fig. 4): original block number, timestamp, and entry number are
	// preserved; deletion entries, marked entries, and expired temporary
	// entries are not copied (§IV-C, §IV-D).
	var carried []block.CarriedEntry
	for _, b := range c.blocks {
		if b.Header.Number >= plan.newMarker {
			break
		}
		if b.IsSummary() {
			for _, ce := range b.Carried {
				if _, marked := c.marks[ce.Ref()]; marked {
					continue
				}
				if ce.Entry.ExpiredAt(head.Header.Time, num) {
					plan.expired++
					continue
				}
				carried = append(carried, ce)
			}
			continue
		}
		for i, e := range b.Entries {
			if e.Kind == block.KindDeletion {
				// §IV-D.3: deletion requests are never copied forward.
				continue
			}
			ref := block.Ref{Block: b.Header.Number, Entry: uint32(i)}
			if _, marked := c.marks[ref]; marked {
				continue
			}
			if e.ExpiredAt(head.Header.Time, num) {
				plan.expired++
				continue
			}
			carried = append(carried, block.CarriedEntry{
				OriginBlock: b.Header.Number,
				OriginTime:  b.Header.Time,
				EntryNumber: uint32(i),
				Entry:       e,
			})
		}
	}

	// Fig. 4 orders the summary data part by origin block and entry
	// number; sorting also keeps the layout stable as entries migrate
	// through multiple summary generations.
	sort.Slice(carried, func(i, j int) bool {
		if carried[i].OriginBlock != carried[j].OriginBlock {
			return carried[i].OriginBlock < carried[j].OriginBlock
		}
		return carried[i].EntryNumber < carried[j].EntryNumber
	})

	var seqRef *block.SequenceRef
	if c.cfg.RedundancyReference {
		seqRef = c.middleSequenceRef(c.seqOf(plan.newMarker), currentSeq)
	}

	return block.NewSummary(num, head.Header.Time, head.Hash(), carried, seqRef), plan
}
