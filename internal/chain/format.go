package chain

import (
	"fmt"
	"io"
	"unicode/utf8"

	"github.com/seldel/seldel/internal/block"
)

// RenderOptions controls the console rendering of the chain, which
// mirrors the prototype output of the paper's evaluation (Figs. 6–8):
// one line per block with "block number; timestamp; previous block hash;
// own block hash", entry lines with "D" (data record), "K" (user), and
// "S" (signature), and summary blocks prefixed with "S".
type RenderOptions struct {
	// PayloadText renders a data payload; defaults to a printable-string
	// heuristic (UTF-8 text as-is, binary as hex).
	PayloadText func([]byte) string
	// HideMarker suppresses the leading "m -> <block>" marker line.
	HideMarker bool
	// ShowMarks annotates entries that carry an active deletion mark.
	ShowMarks bool
}

func defaultPayloadText(p []byte) string {
	if len(p) == 0 {
		return "-"
	}
	if utf8.Valid(p) {
		printable := true
		for _, r := range string(p) {
			if r < 0x20 && r != '\t' {
				printable = false
				break
			}
		}
		if printable {
			return string(p)
		}
	}
	return fmt.Sprintf("0x%x", p)
}

// sigShort abbreviates a signature like the paper's simplified output.
func sigShort(sig []byte) string {
	if len(sig) == 0 {
		return "-"
	}
	const n = 5
	s := fmt.Sprintf("%X", sig)
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// Render writes the live chain in the paper's console format.
func (c *Chain) Render(w io.Writer, opts *RenderOptions) error {
	var o RenderOptions
	if opts != nil {
		o = *opts
	}
	if o.PayloadText == nil {
		o.PayloadText = defaultPayloadText
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	if !o.HideMarker {
		if _, err := fmt.Fprintf(w, "m -> %d\n", c.marker); err != nil {
			return err
		}
	}
	for _, b := range c.blocks {
		if err := c.renderBlock(w, b, &o); err != nil {
			return err
		}
	}
	return nil
}

func (c *Chain) renderBlock(w io.Writer, b *block.Block, o *RenderOptions) error {
	prefix := ""
	if b.IsSummary() {
		prefix = "S"
	}
	if _, err := fmt.Fprintf(w, "%s%d; t%d; %s; %s\n",
		prefix, b.Header.Number, b.Header.Time, b.Header.PrevHash.Short(), b.Hash().Short()); err != nil {
		return err
	}
	if b.IsSummary() {
		for _, ce := range b.Carried {
			mark := ""
			if o.ShowMarks {
				if _, ok := c.marks[ce.Ref()]; ok {
					mark = " *marked*"
				}
			}
			if _, err := fmt.Fprintf(w, "  %d/%d@t%d: D %s K %s S %s%s\n",
				ce.OriginBlock, ce.EntryNumber, ce.OriginTime,
				o.PayloadText(ce.Entry.Payload), ce.Entry.Owner, sigShort(ce.Entry.Signature), mark); err != nil {
				return err
			}
		}
		if b.SeqRef != nil {
			if _, err := fmt.Fprintf(w, "  ref w[%d..%d] %s\n",
				b.SeqRef.FirstBlock, b.SeqRef.LastBlock, b.SeqRef.Root.Short()); err != nil {
				return err
			}
		}
		return nil
	}
	for i, e := range b.Entries {
		switch e.Kind {
		case block.KindDeletion:
			if _, err := fmt.Fprintf(w, "  %d: DEL %s K %s S %s\n",
				i, e.Target, e.Owner, sigShort(e.Signature)); err != nil {
				return err
			}
		default:
			mark := ""
			if o.ShowMarks {
				ref := block.Ref{Block: b.Header.Number, Entry: uint32(i)}
				if _, ok := c.marks[ref]; ok {
					mark = " *marked*"
				}
			}
			ttl := ""
			if e.IsTemporary() {
				switch {
				case e.ExpireTime != 0 && e.ExpireBlock != 0:
					ttl = fmt.Sprintf(" T t%d/a%d", e.ExpireTime, e.ExpireBlock)
				case e.ExpireTime != 0:
					ttl = fmt.Sprintf(" T t%d", e.ExpireTime)
				default:
					ttl = fmt.Sprintf(" T a%d", e.ExpireBlock)
				}
			}
			if _, err := fmt.Fprintf(w, "  %d: D %s K %s S %s%s%s\n",
				i, o.PayloadText(e.Payload), e.Owner, sigShort(e.Signature), ttl, mark); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderString returns Render output as a string (convenience for tests
// and examples).
func (c *Chain) RenderString(opts *RenderOptions) string {
	var sb writerBuilder
	_ = c.Render(&sb, opts)
	return sb.String()
}

// writerBuilder is a minimal strings.Builder alias avoiding an extra
// import in callers; it implements io.Writer.
type writerBuilder struct {
	buf []byte
}

func (w *writerBuilder) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *writerBuilder) String() string { return string(w.buf) }
