package chain

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

// testEnv bundles a registry with deterministic participants.
type testEnv struct {
	registry *identity.Registry
	keys     map[string]*identity.KeyPair
}

func newEnv(t *testing.T, users ...string) *testEnv {
	t.Helper()
	env := &testEnv{
		registry: identity.NewRegistry(),
		keys:     make(map[string]*identity.KeyPair),
	}
	for _, u := range users {
		kp := identity.Deterministic(u, "chain-test")
		role := identity.RoleUser
		switch u {
		case "admin":
			role = identity.RoleAdmin
		case "quorum":
			role = identity.RoleMaster
		}
		if err := env.registry.RegisterKey(kp, role); err != nil {
			t.Fatal(err)
		}
		env.keys[u] = kp
	}
	return env
}

func (e *testEnv) data(user, payload string) *block.Entry {
	return block.NewData(user, []byte(payload)).Sign(e.keys[user])
}

func (e *testEnv) temp(user, payload string, expT, expB uint64) *block.Entry {
	return block.NewTemporary(user, []byte(payload), expT, expB).Sign(e.keys[user])
}

func (e *testEnv) del(user string, target block.Ref) *block.Entry {
	return block.NewDeletion(user, target).Sign(e.keys[user])
}

func defaultConfig(e *testEnv) Config {
	return Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Registry:       e.registry,
		Clock:          simclock.NewLogical(0),
	}
}

func newChain(t *testing.T, cfg Config) *Chain {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func mustSeal(t *testing.T, c *Chain, entries ...*block.Entry) []*block.Block {
	t.Helper()
	blocks, _, err := c.commit(entries)
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	return blocks
}

func TestNewGenesis(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	head := c.Head()
	if head.Number != 0 {
		t.Errorf("genesis number = %d", head.Number)
	}
	if head.PrevHash != block.GenesisPrevHash {
		t.Error("genesis prev hash is not DEADB sentinel")
	}
	if c.Len() != 1 || c.Marker() != 0 {
		t.Errorf("Len=%d Marker=%d", c.Len(), c.Marker())
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Errorf("VerifyIntegrity: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	env := newEnv(t, "alpha")
	tests := []struct {
		name string
		mod  func(*Config)
	}{
		{"short sequence", func(c *Config) { c.SequenceLength = 1 }},
		{"nil registry", func(c *Config) { c.Registry = nil }},
		{"bad shrink", func(c *Config) { c.Shrink = ShrinkPolicy(9) }},
		{"negative max", func(c *Config) { c.MaxBlocks = -1 }},
		{"maxblocks below seq", func(c *Config) { c.MaxBlocks = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := defaultConfig(env)
			tt.mod(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("New = %v, want ErrConfig", err)
			}
		})
	}
}

func TestSealCreatesSummaryAtSlot(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	// Block 1 (normal) then block 2 must be the summary slot for l=3.
	blocks := mustSeal(t, c, env.data("alpha", "first"))
	if len(blocks) != 2 {
		t.Fatalf("seal returned %d blocks, want normal+summary", len(blocks))
	}
	if blocks[0].IsSummary() || !blocks[1].IsSummary() {
		t.Error("block kinds wrong")
	}
	if blocks[1].Header.Number != 2 {
		t.Errorf("summary number = %d, want 2", blocks[1].Header.Number)
	}
	if blocks[1].Header.Time != blocks[0].Header.Time {
		t.Error("summary timestamp must equal preceding block's (§IV-B)")
	}
	if len(blocks[1].Carried) != 0 {
		t.Error("first summary should be empty (nothing to merge yet)")
	}
}

func TestSummarySlotArithmetic(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env)) // l = 3
	for _, want := range []struct {
		num     uint64
		summary bool
	}{{1, false}, {2, true}, {3, false}, {4, false}, {5, true}, {8, true}, {9, false}} {
		if got := c.isSummarySlot(want.num); got != want.summary {
			t.Errorf("isSummarySlot(%d) = %v, want %v", want.num, got, want.summary)
		}
	}
}

func TestLookupAndConfirmations(t *testing.T) {
	env := newEnv(t, "alpha", "bravo")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c, env.data("alpha", "a1"), env.data("bravo", "b1"))

	ref := block.Ref{Block: 1, Entry: 1}
	e, loc, ok := c.Lookup(ref)
	if !ok {
		t.Fatal("entry not found")
	}
	if e.Owner != "bravo" || loc.Carried {
		t.Errorf("entry = %+v loc = %+v", e, loc)
	}
	conf, err := c.Confirmations(ref)
	if err != nil {
		t.Fatal(err)
	}
	if conf != 1 { // head is summary block 2
		t.Errorf("Confirmations = %d, want 1", conf)
	}
	if _, err := c.Confirmations(block.Ref{Block: 99}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing ref: %v", err)
	}
}

func TestAppendBlockRejections(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	c := newChain(t, cfg)

	okBlock, err := c.BuildNormal([]*block.Entry{env.data("alpha", "x")})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong number", func(t *testing.T) {
		b := okBlock.Clone()
		b.Header.Number = 7
		if err := c.AppendBlock(b); !errors.Is(err, ErrNotNext) {
			t.Errorf("err = %v, want ErrNotNext", err)
		}
	})
	t.Run("wrong prev", func(t *testing.T) {
		b := okBlock.Clone()
		b.Header.PrevHash[0] ^= 0xFF
		if err := c.AppendBlock(b); !errors.Is(err, ErrNotNext) {
			t.Errorf("err = %v, want ErrNotNext", err)
		}
	})
	t.Run("time regression", func(t *testing.T) {
		head := c.Head()
		b := block.NewNormal(1, head.Time-1, c.HeadHash(), nil)
		if err := c.AppendBlock(b); !errors.Is(err, ErrTimeRegression) {
			t.Errorf("err = %v, want ErrTimeRegression", err)
		}
	})
	t.Run("summary in normal slot", func(t *testing.T) {
		s := block.NewSummary(1, c.Head().Time, c.HeadHash(), nil, nil)
		if err := c.AppendBlock(s); !errors.Is(err, ErrWrongSlot) {
			t.Errorf("err = %v, want ErrWrongSlot", err)
		}
	})
	t.Run("unsigned entry", func(t *testing.T) {
		bad := block.NewData("alpha", []byte("x")) // never signed
		b := block.NewNormal(1, c.Head().Time+1, c.HeadHash(), []*block.Entry{bad})
		// The block-level shape check catches this before the chain-level
		// entry validation does.
		if err := c.AppendBlock(b); !errors.Is(err, block.ErrUnsigned) {
			t.Errorf("err = %v, want block.ErrUnsigned", err)
		}
	})
	t.Run("forged signature", func(t *testing.T) {
		forged := env.data("alpha", "x")
		forged.Payload = []byte("tampered")
		b := block.NewNormal(1, c.Head().Time+1, c.HeadHash(), []*block.Entry{forged})
		if err := c.AppendBlock(b); !errors.Is(err, ErrEntryInvalid) {
			t.Errorf("err = %v, want ErrEntryInvalid", err)
		}
	})
	// Finally the valid block must append.
	if err := c.AppendBlock(okBlock); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	t.Run("normal in summary slot", func(t *testing.T) {
		b := block.NewNormal(2, c.Head().Time+1, c.HeadHash(), nil)
		if err := c.AppendBlock(b); !errors.Is(err, ErrWrongSlot) {
			t.Errorf("err = %v, want ErrWrongSlot", err)
		}
	})
}

func TestSummaryMismatchDetected(t *testing.T) {
	// A node whose summary differs from the locally computed one has
	// forked (§IV-B); AppendBlock must reject it.
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	if err := c.AppendBlock(mustBuildNormal(t, c, env.data("alpha", "x"))); err != nil {
		t.Fatal(err)
	}
	s, err := c.BuildSummary()
	if err != nil {
		t.Fatal(err)
	}
	forged := block.NewSummary(s.Header.Number, s.Header.Time, s.Header.PrevHash,
		[]block.CarriedEntry{{OriginBlock: 1, OriginTime: 2, EntryNumber: 0, Entry: env.data("alpha", "fake")}}, nil)
	if err := c.AppendBlock(forged); !errors.Is(err, ErrSummaryMismatch) {
		t.Errorf("err = %v, want ErrSummaryMismatch", err)
	}
	if err := c.AppendBlock(s); err != nil {
		t.Fatalf("correct summary rejected: %v", err)
	}
}

func mustBuildNormal(t *testing.T, c *Chain, entries ...*block.Entry) *block.Block {
	t.Helper()
	b, err := c.BuildNormal(entries)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildNormalRejectsSummarySlot(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	if err := c.AppendBlock(mustBuildNormal(t, c, env.data("alpha", "x"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BuildNormal(nil); !errors.Is(err, ErrWrongSlot) {
		t.Errorf("BuildNormal in summary slot: %v", err)
	}
	if _, err := c.BuildSummary(); err != nil {
		t.Errorf("BuildSummary: %v", err)
	}
}

func TestBuildSummaryRejectsNormalSlot(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	if _, err := c.BuildSummary(); !errors.Is(err, ErrWrongSlot) {
		t.Errorf("BuildSummary in normal slot: %v", err)
	}
}

func TestDeterministicAcrossChains(t *testing.T) {
	// Two chains fed the same committed blocks end with identical heads;
	// summary blocks are computed independently on the second chain.
	env := newEnv(t, "alpha", "bravo")
	c1 := newChain(t, defaultConfig(env))
	cfg2 := defaultConfig(env)
	cfg2.Clock = simclock.NewLogical(0)
	c2 := newChain(t, cfg2)

	for i := 0; i < 10; i++ {
		entries := []*block.Entry{env.data("alpha", fmt.Sprintf("payload-%d", i))}
		blocks, _, err := c1.commit(entries)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if b.IsSummary() {
				// The receiving node builds its own summary (§IV-B: the
				// block "does not need to be propagated by itself"), then
				// cross-checks against the gossiped one.
				local, err := c2.BuildSummary()
				if err != nil {
					t.Fatal(err)
				}
				if local.Hash() != b.Hash() {
					t.Fatalf("independently built summary differs at block %d", b.Header.Number)
				}
			}
			if err := c2.AppendBlock(b); err != nil {
				t.Fatalf("replicate block %d: %v", b.Header.Number, err)
			}
		}
	}
	if c1.HeadHash() != c2.HeadHash() {
		t.Error("replicated chain head differs")
	}
	if c1.Marker() != c2.Marker() {
		t.Error("replicated chain marker differs")
	}
}

func TestListenerEvents(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 1
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)

	var appended, truncated int
	var lastShift [2]uint64
	c.AddListener(&funcListener{
		onAppend:   func(b *block.Block) { appended++ },
		onTruncate: func(oldM, newM uint64) { truncated++; lastShift = [2]uint64{oldM, newM} },
	})
	// Drive past the first merge: with l=3, MaxSequences=1, the summary
	// at block 5 must merge sequence 0 and shift the marker to 3.
	for i := 0; i < 4; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("p%d", i)))
	}
	// OnTruncate fires on the compactor goroutine; barrier before
	// asserting (the barrier also orders the listener's writes).
	if err := c.CompactWait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if appended == 0 {
		t.Error("no OnAppend events")
	}
	if truncated == 0 {
		t.Fatal("no OnTruncate events")
	}
	if lastShift[0] >= lastShift[1] {
		t.Errorf("marker shift %v not increasing", lastShift)
	}
	if c.Marker() != lastShift[1] {
		t.Errorf("marker %d != last shift %d", c.Marker(), lastShift[1])
	}
}

type funcListener struct {
	onAppend   func(*block.Block)
	onTruncate func(uint64, uint64)
}

func (l *funcListener) OnAppend(b *block.Block)      { l.onAppend(b) }
func (l *funcListener) OnTruncate(oldM, newM uint64) { l.onTruncate(oldM, newM) }

func TestSealHooks(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	sealed := 0
	cfg.Seal = func(b *block.Block) error {
		b.Header.Nonce = 42
		sealed++
		return nil
	}
	cfg.VerifySeal = func(b *block.Block) error {
		if b.Header.Nonce != 42 {
			return errors.New("bad nonce")
		}
		return nil
	}
	c := newChain(t, cfg)
	blocks := mustSeal(t, c, env.data("alpha", "x"))
	if sealed != 1 {
		t.Errorf("sealed %d blocks, want 1 (summaries are never sealed)", sealed)
	}
	if blocks[1].Header.Nonce != 0 {
		t.Error("summary block was sealed")
	}
	// A block violating VerifySeal must be rejected.
	bad := mustBuildNormal(t, c, env.data("alpha", "y"))
	bad.Header.Nonce = 0
	// Recompute nothing: nonce is in the header hash, so we just append.
	if err := c.AppendBlock(bad); !errors.Is(err, ErrSealFailed) {
		t.Errorf("err = %v, want ErrSealFailed", err)
	}
}

func TestStatsCounters(t *testing.T) {
	env := newEnv(t, "alpha", "bravo")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 1
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)

	mustSeal(t, c, env.data("alpha", "keep"), env.data("bravo", "kill"))
	target := block.Ref{Block: 1, Entry: 1}
	mustSeal(t, c, env.del("bravo", target))

	s := c.Stats()
	if s.ActiveMarks != 1 {
		t.Errorf("ActiveMarks = %d, want 1", s.ActiveMarks)
	}
	// Drive until the mark executes.
	for i := 0; i < 6 && c.Stats().ActiveMarks > 0; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("f%d", i)))
	}
	s = c.Stats()
	if s.ActiveMarks != 0 {
		t.Fatalf("mark never executed; stats %+v", s)
	}
	if s.ForgottenEntries != 1 {
		t.Errorf("ForgottenEntries = %d, want 1", s.ForgottenEntries)
	}
	if s.CutBlocks == 0 {
		t.Error("CutBlocks = 0 after merges")
	}
	if s.LiveBlocks != c.Len() {
		t.Errorf("LiveBlocks %d != Len %d", s.LiveBlocks, c.Len())
	}
	if s.LiveBytes <= 0 {
		t.Errorf("LiveBytes = %d", s.LiveBytes)
	}
	// The forgotten entry must be gone; the kept entry must survive.
	if _, _, ok := c.Lookup(target); ok {
		t.Error("deleted entry still resolvable")
	}
	if _, _, ok := c.Lookup(block.Ref{Block: 1, Entry: 0}); !ok {
		t.Error("surviving entry lost")
	}
}

func TestCheckDeletionRequestEagerValidation(t *testing.T) {
	env := newEnv(t, "alpha", "bravo")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c, env.data("alpha", "mine"))

	// Bravo may not delete alpha's entry.
	bad := env.del("bravo", block.Ref{Block: 1, Entry: 0})
	if err := c.CheckDeletionRequest(bad); !errors.Is(err, deletion.ErrUnauthorized) {
		t.Errorf("err = %v, want ErrUnauthorized", err)
	}
	// Alpha may.
	good := env.del("alpha", block.Ref{Block: 1, Entry: 0})
	if err := c.CheckDeletionRequest(good); err != nil {
		t.Errorf("CheckDeletionRequest: %v", err)
	}
	// Missing target.
	missing := env.del("alpha", block.Ref{Block: 77, Entry: 0})
	if err := c.CheckDeletionRequest(missing); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	// Non-deletion entry.
	if err := c.CheckDeletionRequest(env.data("alpha", "not a request")); !errors.Is(err, ErrEntryInvalid) {
		t.Errorf("err = %v, want ErrEntryInvalid", err)
	}
}

func TestHeadAndNextNumber(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	if c.NextNumber() != 1 {
		t.Errorf("NextNumber = %d", c.NextNumber())
	}
	if c.NextIsSummary() {
		t.Error("block 1 must not be a summary slot")
	}
	mustSeal(t, c, env.data("alpha", "x"))
	if c.NextNumber() != 3 {
		t.Errorf("NextNumber after summary = %d, want 3", c.NextNumber())
	}
}

func TestBlocksSnapshotIsolation(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	snap := c.Blocks()
	mustSeal(t, c, env.data("alpha", "x"))
	if len(snap) != 1 {
		t.Error("snapshot mutated by later append")
	}
}
