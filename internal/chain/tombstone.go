package chain

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/merkle"
)

// This file is the chain side of the deletion manifest: every executed
// truncation seals one manifest.Record while the cut blocks are still
// reachable (applyPlanLocked), the chain retains the records as its
// tombstone index, and auditors query them through Tombstones and
// ProveDeleted. The records double as the resurrection floor consulted
// by sync (ResurrectionFloor): no honest offer may contain blocks below
// a recorded deletion.

// ErrNotDeleted is returned by ProveDeleted when the entry is still
// live (or marked but not yet physically erased).
var ErrNotDeleted = errors.New("chain: entry has not been deleted")

// tombstoneLocked records the erasure of one marked entry during a
// truncation sweep: the entry's content digest is resolved from the cut
// prefix (still aliased by cutBlocks) and the authorizing co-signatures
// from the deletion request entry, which may itself sit in the cut
// prefix or still be live. Callers hold the write lock.
func (c *Chain) tombstoneLocked(m Mark, loc Location, cutBlocks []*block.Block, oldMarker uint64) {
	t := manifest.Tombstone{
		Target:        m.Target,
		Requester:     m.Requester,
		RequestRef:    m.RequestRef,
		MarkedAtBlock: m.MarkedAtBlock,
	}
	if b := blockIn(cutBlocks, oldMarker, loc.Block); b != nil {
		var e *block.Entry
		if loc.Carried {
			if loc.Index < len(b.Carried) {
				e = b.Carried[loc.Index].Entry
			}
		} else if loc.Index < len(b.Entries) {
			e = b.Entries[loc.Index]
		}
		if e != nil {
			t.EntryDigest = e.Hash()
		}
	}
	if !m.RequestRef.IsZero() {
		rb := blockIn(cutBlocks, oldMarker, m.RequestRef.Block)
		if rb == nil {
			if live, ok := c.blockAt(m.RequestRef.Block); ok {
				rb = live
			}
		}
		if rb != nil && int(m.RequestRef.Entry) < len(rb.Entries) {
			if req := rb.Entries[m.RequestRef.Entry]; req.Kind == block.KindDeletion {
				for _, cs := range req.CoSigners {
					t.CoSigners = append(t.CoSigners, manifest.CoSigner{
						Name:      cs.Name,
						Signature: append([]byte(nil), cs.Signature...),
					})
				}
			}
		}
	}
	c.pendingTombs = append(c.pendingTombs, t)
}

// blockIn resolves block number num from the aliased cut prefix whose
// first block is oldMarker; nil when num lies outside it.
func blockIn(cutBlocks []*block.Block, oldMarker, num uint64) *block.Block {
	if num < oldMarker || num >= oldMarker+uint64(len(cutBlocks)) {
		return nil
	}
	return cutBlocks[num-oldMarker]
}

// sealDeletionRecordLocked finalizes the deletion record of the
// truncation that just executed: the marker shift [old, c.marker), the
// summary block that replaced the cut (the head — applyPlanLocked runs
// right after pushBlock appended it), the digests of the cut range's
// boundary blocks, and the tombstones the sweep accumulated. The record
// is retained in the chain's tombstone index and returned for the
// compact event, so persistent stores write the identical record
// durably; pendingTombs holds exactly the marks the sweep executed.
func (c *Chain) sealDeletionRecordLocked(old uint64, cutBlocks []*block.Block) *manifest.Record {
	head := c.head()
	tombs := c.pendingTombs
	c.pendingTombs = nil
	// The sweep iterates a map; order the tombstones by target so every
	// honest node seals a bit-identical record.
	sort.Slice(tombs, func(i, j int) bool { return refLess(tombs[i].Target, tombs[j].Target) })
	rec := manifest.Record{
		Seq:          c.nextTombSeq,
		OldMarker:    old,
		NewMarker:    c.marker,
		SummaryBlock: head.Header.Number,
		SummaryHash:  head.Hash(),
		Time:         head.Header.Time,
		Tombstones:   tombs,
	}
	if len(cutBlocks) > 0 {
		rec.FirstCutHash = cutBlocks[0].Hash()
		rec.LastCutHash = cutBlocks[len(cutBlocks)-1].Hash()
	}
	c.nextTombSeq++
	c.tombRecs = append(c.tombRecs, rec)
	for _, t := range tombs {
		c.tombIndex[t.Target] = len(c.tombRecs) - 1
	}
	if rec.NewMarker > c.tombFloor {
		c.tombFloor = rec.NewMarker
	}
	out := rec
	return &out
}

// refLess orders entry references by (block, entry) — the origin order
// carried entries keep inside summary blocks.
func refLess(a, b block.Ref) bool {
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	return a.Entry < b.Entry
}

// SeedTombstones installs deletion records recovered from a persistent
// store (its DELETIONS log) into the chain's tombstone index, so a
// restored chain answers audits for — and refuses resurrection of —
// deletions that executed in earlier lifetimes. Records already seeded
// or sealed are kept; recs only extends.
func (c *Chain) SeedTombstones(recs []manifest.Record) {
	if len(recs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sorted := append([]manifest.Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	for _, r := range sorted {
		c.tombRecs = append(c.tombRecs, r)
		for _, t := range r.Tombstones {
			c.tombIndex[t.Target] = len(c.tombRecs) - 1
		}
		if r.NewMarker > c.tombFloor {
			c.tombFloor = r.NewMarker
		}
		if r.Seq >= c.nextTombSeq {
			c.nextTombSeq = r.Seq + 1
		}
	}
}

// Tombstones returns the chain's deletion records, oldest first. It
// waits for pending compactions first, so a caller that just observed a
// truncation sees its record with the matching store state (stores
// pruned, audit log written).
func (c *Chain) Tombstones(ctx context.Context) ([]manifest.Record, error) {
	if err := c.CompactWait(ctx); err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]manifest.Record(nil), c.tombRecs...), nil
}

// TombstoneHead returns the most recent deletion record, if any.
func (c *Chain) TombstoneHead() (manifest.Record, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.tombRecs) == 0 {
		return manifest.Record{}, false
	}
	return c.tombRecs[len(c.tombRecs)-1], true
}

// ResurrectionFloor returns the highest NewMarker across the chain's
// deletion records: the boundary below which no block may re-enter via
// sync, whatever a peer claims. 0 when no deletion was ever recorded.
func (c *Chain) ResurrectionFloor() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tombFloor
}

// DeletedProof is the auditor-facing evidence that an entry was
// deliberately erased: the deletion record covering its origin, its
// tombstone (requester, co-signers, content digest), and — when the
// summary block that replaced the cut was still live at proof time — a
// Merkle non-inclusion bracket showing the entry was NOT carried
// forward: its origin-ordered neighbors in the summary's carried set,
// adjacent by index, both proven against the summary header's
// EntriesRoot. Together with the record's summary hash this shows the
// erasure was the chain's decision, not data loss.
type DeletedProof struct {
	// Ref is the erased entry's origin reference.
	Ref block.Ref
	// Record is the deletion record whose range covers Ref.
	Record manifest.Record
	// Tombstone is Ref's tombstone within Record.
	Tombstone manifest.Tombstone
	// SummaryHeader is the header of the summary block Record points
	// at; nil when that block was no longer live at proof time (the
	// record alone remains the evidence).
	SummaryHeader *block.Header
	// CarriedCount is the number of carried entries in that summary.
	CarriedCount int
	// LeftLeaf/LeftProof prove the greatest carried entry with origin
	// ref < Ref (absent when Ref precedes the whole carried set);
	// RightLeaf/RightProof the smallest with origin ref > Ref (absent
	// when Ref follows it). Leaves are canonical carried encodings.
	LeftLeaf   []byte
	LeftProof  *merkle.Proof
	RightLeaf  []byte
	RightProof *merkle.Proof
}

// ProveDeleted builds the deletion proof for ref. Fails with
// ErrNotDeleted when the entry is still live and ErrNotFound when no
// tombstone covers it (never existed, expired, or predates the
// manifest).
func (c *Chain) ProveDeleted(ref block.Ref) (*DeletedProof, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.tombIndex[ref]
	if !ok {
		if _, live := c.index[ref]; live {
			return nil, fmt.Errorf("%w: %s is live", ErrNotDeleted, ref)
		}
		return nil, fmt.Errorf("%w: no tombstone for %s", ErrNotFound, ref)
	}
	rec := c.tombRecs[i]
	tomb, ok := rec.FindTombstone(ref)
	if !ok {
		return nil, fmt.Errorf("chain: tombstone index inconsistent for %s", ref)
	}
	p := &DeletedProof{Ref: ref, Record: rec, Tombstone: tomb}
	sum, ok := c.blockAt(rec.SummaryBlock)
	if !ok || !sum.IsSummary() || sum.Hash() != rec.SummaryHash {
		return p, nil
	}
	p.SummaryHeader = &sum.Header
	p.CarriedCount = len(sum.Carried)
	// Carried entries are origin-ordered, so non-inclusion is an
	// adjacency bracket: the first carried ref past the target on the
	// right, its predecessor on the left.
	right := sort.Search(len(sum.Carried), func(j int) bool {
		return refLess(ref, sum.Carried[j].Ref())
	})
	if right < len(sum.Carried) {
		proof, err := sum.EntryProof(right)
		if err != nil {
			return nil, fmt.Errorf("chain: deleted proof: %w", err)
		}
		p.RightLeaf = sum.Carried[right].Encode()
		p.RightProof = &proof
	}
	if left := right - 1; left >= 0 {
		if !refLess(sum.Carried[left].Ref(), ref) {
			// The target itself is carried: it was never erased.
			return nil, fmt.Errorf("%w: %s is carried in summary %d", ErrNotDeleted, ref, rec.SummaryBlock)
		}
		proof, err := sum.EntryProof(left)
		if err != nil {
			return nil, fmt.Errorf("chain: deleted proof: %w", err)
		}
		p.LeftLeaf = sum.Carried[left].Encode()
		p.LeftProof = &proof
	}
	return p, nil
}

// Verify checks the proof's internal consistency: the record covers the
// reference, the tombstone matches, and — when the summary bracket is
// present — the header hashes to the record's summary hash and the
// bracket proves the entry absent from the carried set. It needs no
// chain: the proof is self-contained against the recorded summary hash.
func (p *DeletedProof) Verify() error {
	// The record's range covers the origin block — or the origin
	// predates it entirely: an entry carried forward through summaries
	// is erased when its carrier is cut, so its origin ref can sit
	// below OldMarker. What can never happen is a tombstone for a block
	// at or above the record's new marker (not yet cut).
	if p.Ref.Block >= p.Record.NewMarker {
		return fmt.Errorf("chain: proof record [%d,%d) cannot tombstone %s (at or above the new marker)",
			p.Record.OldMarker, p.Record.NewMarker, p.Ref)
	}
	if p.Tombstone.Target != p.Ref {
		return fmt.Errorf("chain: proof tombstone targets %s, not %s", p.Tombstone.Target, p.Ref)
	}
	if rt, ok := p.Record.FindTombstone(p.Ref); !ok || rt.Requester != p.Tombstone.Requester {
		return fmt.Errorf("chain: proof tombstone not in record")
	}
	if p.SummaryHeader == nil {
		return nil // record-only proof: nothing further to check
	}
	h := p.SummaryHeader
	if h.Hash() != p.Record.SummaryHash {
		return fmt.Errorf("chain: proof summary header does not hash to the recorded summary")
	}
	if h.Number != p.Record.SummaryBlock {
		return fmt.Errorf("chain: proof summary number %d, record says %d", h.Number, p.Record.SummaryBlock)
	}
	if p.CarriedCount == 0 {
		if p.LeftProof != nil || p.RightProof != nil {
			return fmt.Errorf("chain: bracket proofs on an empty carried set")
		}
		if h.EntriesRoot != merkle.Build(nil).Root() {
			return fmt.Errorf("chain: summary claims entries but proof claims none")
		}
		return nil
	}
	var left, right *block.CarriedEntry
	if p.LeftProof != nil {
		ce, err := block.DecodeCarried(p.LeftLeaf)
		if err != nil {
			return fmt.Errorf("chain: left bracket leaf: %w", err)
		}
		left = &ce
		if !refLess(ce.Ref(), p.Ref) {
			return fmt.Errorf("chain: left bracket %s not before %s", ce.Ref(), p.Ref)
		}
		if p.LeftProof.LeafCount != p.CarriedCount {
			return fmt.Errorf("chain: left bracket leaf count mismatch")
		}
		if !merkle.Verify(h.EntriesRoot, p.LeftLeaf, *p.LeftProof) {
			return fmt.Errorf("chain: left bracket proof invalid")
		}
	}
	if p.RightProof != nil {
		ce, err := block.DecodeCarried(p.RightLeaf)
		if err != nil {
			return fmt.Errorf("chain: right bracket leaf: %w", err)
		}
		right = &ce
		if !refLess(p.Ref, ce.Ref()) {
			return fmt.Errorf("chain: right bracket %s not after %s", ce.Ref(), p.Ref)
		}
		if p.RightProof.LeafCount != p.CarriedCount {
			return fmt.Errorf("chain: right bracket leaf count mismatch")
		}
		if !merkle.Verify(h.EntriesRoot, p.RightLeaf, *p.RightProof) {
			return fmt.Errorf("chain: right bracket proof invalid")
		}
	}
	switch {
	case left != nil && right != nil:
		if p.RightProof.Index != p.LeftProof.Index+1 {
			return fmt.Errorf("chain: bracket not adjacent (%d, %d)", p.LeftProof.Index, p.RightProof.Index)
		}
	case left != nil:
		if p.LeftProof.Index != p.CarriedCount-1 {
			return fmt.Errorf("chain: open right bracket but left index %d is not last", p.LeftProof.Index)
		}
	case right != nil:
		if p.RightProof.Index != 0 {
			return fmt.Errorf("chain: open left bracket but right index %d is not first", p.RightProof.Index)
		}
	default:
		return fmt.Errorf("chain: bracket missing both sides on a non-empty carried set")
	}
	return nil
}
