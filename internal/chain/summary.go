package chain

import (
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/merkle"
)

// summaryPlan is the deterministic retention decision taken when a
// summary block is created: which prefix of the chain is merged away and
// how many temporary entries expired in the process. Every honest node
// derives the identical plan from the identical chain state (§IV-B), so
// the plan never needs to be propagated.
type summaryPlan struct {
	// newMarker is the Genesis marker after the merge (unchanged when
	// nothing is merged).
	newMarker uint64
	// expired counts temporary entries dropped because their deadline
	// passed (§IV-D.4).
	expired uint64
}

// seqOf returns the sequence index containing block number n.
func (c *Chain) seqOf(n uint64) uint64 { return n / uint64(c.cfg.SequenceLength) }

// seqStart returns the first block number of sequence s.
func (c *Chain) seqStart(s uint64) uint64 { return s * uint64(c.cfg.SequenceLength) }

// retentionPlanLocked decides how far the next summary at block num
// shrinks the chain: the new Genesis marker per Eq. 1 iterated under the
// configured policy, bounded by the §IV-D.3 floors.
func (c *Chain) retentionPlanLocked(num, headTime uint64) summaryPlan {
	currentSeq := c.seqOf(num)
	firstSeq := c.seqOf(c.marker)

	// Decide how far to shrink (Eq. 1, iterated per the configured
	// policy), measured as the first sequence to KEEP.
	keepFrom := firstSeq
	if c.limitExceeded(firstSeq, num) {
		switch c.cfg.Shrink {
		case ShrinkAllButNewest:
			keepFrom = currentSeq
		default: // ShrinkMinimal
			for keepFrom < currentSeq && c.limitExceeded(keepFrom, num) {
				keepFrom++
			}
		}
	}
	// Floors (§IV-D.3): never shrink below MinBlocks live blocks or below
	// MinTimeSpan of covered logical time.
	for keepFrom > firstSeq && c.violatesFloors(keepFrom, num, headTime) {
		keepFrom--
	}

	plan := summaryPlan{newMarker: c.marker}
	if keepFrom > firstSeq {
		plan.newMarker = c.seqStart(keepFrom)
	}
	return plan
}

// planSummaryLocked computes the next summary block Σ and its retention
// plan from the carried-entry ledger: instead of rescanning every merged
// block (and every entry already carried inside a previous summary, the
// dominant cost as chains grow), it copies the ledger's origin-ordered
// prefix below the new marker — O(carried output). The result is
// bit-identical to planSummaryReferenceLocked, which the golden tests
// enforce. Callers must hold the chain lock (read or write) and must
// have verified that the next slot is a summary slot; the method never
// mutates chain state (nodes re-plan freely while voting).
func (c *Chain) planSummaryLocked() (*block.Block, summaryPlan) {
	head := c.head()
	num := head.Header.Number + 1

	plan := c.retentionPlanLocked(num, head.Header.Time)

	var carried []block.CarriedEntry
	if plan.newMarker > c.marker {
		// An entry's origin never exceeds its holder, so every entry of
		// the merged prefix sits in the ledger's origin-< newMarker
		// prefix; entries already migrated into a summary that survives
		// the cut (ShrinkMinimal partial merges) are skipped by holder.
		checkExpiry := c.ledger.expiryPossible(head.Header.Time, num)
		for _, cand := range c.ledger.ordered {
			if cand.ce.OriginBlock >= plan.newMarker {
				break
			}
			if cand.holder >= plan.newMarker || cand.marked {
				continue
			}
			if checkExpiry && cand.ce.Entry.ExpiredAt(head.Header.Time, num) {
				plan.expired++
				continue
			}
			carried = append(carried, cand.ce)
		}
	}

	var seqRef *block.SequenceRef
	if c.cfg.RedundancyReference {
		seqRef = c.middleSequenceRef(c.seqOf(plan.newMarker), c.seqOf(num))
	}

	return block.NewSummaryWith(c.cfg.Verifier, num, head.Header.Time, head.Hash(), carried, seqRef), plan
}

// limitExceeded reports whether the configured MaxBlocks/MaxSequences
// limit is exceeded for a chain whose first kept sequence is keepFrom and
// whose newest block (the summary being created) is num.
func (c *Chain) limitExceeded(keepFrom, num uint64) bool {
	liveLen := num - c.seqStart(keepFrom) + 1
	if c.cfg.MaxBlocks > 0 && liveLen > uint64(c.cfg.MaxBlocks) {
		return true
	}
	if c.cfg.MaxSequences > 0 {
		seqCount := c.seqOf(num) - keepFrom + 1
		if seqCount > uint64(c.cfg.MaxSequences) {
			return true
		}
	}
	return false
}

// violatesFloors reports whether keeping only sequences ≥ keepFrom would
// violate the MinBlocks or MinTimeSpan floor.
func (c *Chain) violatesFloors(keepFrom, num, summaryTime uint64) bool {
	start := c.seqStart(keepFrom)
	liveLen := num - start + 1
	if c.cfg.MinBlocks > 0 && liveLen < uint64(c.cfg.MinBlocks) {
		return true
	}
	if c.cfg.MinTimeSpan > 0 {
		first, ok := c.blockAt(start)
		if ok && summaryTime-first.Header.Time < c.cfg.MinTimeSpan {
			return true
		}
	}
	return false
}

// middleSequenceRef builds the Fig. 9 redundancy reference: the Merkle
// root over the block hashes of the middle live sequence ω_{lβ/2}. Nil
// when fewer than two complete sequences remain.
func (c *Chain) middleSequenceRef(firstLiveSeq, currentSeq uint64) *block.SequenceRef {
	if currentSeq <= firstLiveSeq {
		return nil
	}
	mid := firstLiveSeq + (currentSeq-firstLiveSeq)/2
	if mid >= currentSeq { // only the in-progress sequence remains
		return nil
	}
	start := c.seqStart(mid)
	end := c.seqStart(mid+1) - 1
	hashes := make([]codec.Hash, 0, c.cfg.SequenceLength)
	for n := start; n <= end; n++ {
		b, ok := c.blockAt(n)
		if !ok {
			return nil
		}
		hashes = append(hashes, b.Hash())
	}
	return &block.SequenceRef{
		FirstBlock: start,
		LastBlock:  end,
		Root:       merkle.BuildFromHashes(hashes).Root(),
	}
}

// BuildSummary computes the next summary block Σ from local state. Every
// honest node produces a bit-identical block (§IV-B). The block is not
// appended; call AppendBlock with it.
func (c *Chain) BuildSummary() (*block.Block, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	next := c.head().Header.Number + 1
	if !c.isSummarySlot(next) {
		return nil, fmt.Errorf("%w: block %d is not a summary slot", ErrWrongSlot, next)
	}
	b, _ := c.planSummaryLocked()
	return b, nil
}

// applyPlanLocked executes the LOGICAL side of the retention plan after
// its summary block was appended: shift the Genesis marker, drop the cut
// prefix from the live view, and sweep the entry index, mark set, and
// carried-entry ledger — everything later validations and summary plans
// depend on (§IV-C: "the old sequence can be cut off and deleted").
// The physical side — releasing the cut blocks' memory, sweeping dead
// dependency edges, pruning persistent stores — is described by the
// returned compact.Event and executed by the background compactor off
// the append path. Returns nil when nothing was cut.
func (c *Chain) applyPlanLocked(plan summaryPlan) *compact.Event {
	c.stats.ExpiredEntries += plan.expired
	if plan.newMarker == c.marker {
		return nil
	}
	old := c.marker
	cut := int(plan.newMarker - old)
	// Alias the cut prefix before the re-slice: the deletion record
	// below must resolve entry bytes and request co-signatures from
	// blocks that are about to leave the live view — after the cut they
	// are unreachable by design, which is exactly why the record is
	// built here and nowhere else.
	cutBlocks := c.blocks[:cut]
	var cutBytes int64
	for _, b := range cutBlocks {
		cutBytes += int64(b.EncodedSize())
	}
	c.liveBytes -= cutBytes
	c.stats.CutBlocks += uint64(cut)
	// Cheap re-slice only: the compactor copies the tail into a fresh
	// backing array so the cut blocks become collectable without the
	// append path paying for it.
	c.blocks = c.blocks[cut:]
	c.marker = plan.newMarker

	// Sweep the entry index: references whose current location was cut
	// are physically gone. Marks pointing at them are now executed;
	// unmarked leftovers are expired temporaries the merge dropped.
	// (Marked entries left the live counters when their mark was
	// approved, so only the expired ones are decremented here.)
	for ref, loc := range c.index {
		if loc.Block >= c.marker {
			continue
		}
		delete(c.index, ref)
		if m, marked := c.marks[ref]; marked {
			delete(c.marks, ref)
			c.stats.ForgottenEntries++
			c.tombstoneLocked(m, loc, cutBlocks, old)
			continue
		}
		c.liveEntries--
		if loc.Carried {
			c.carriedEntries--
		}
	}
	// The ledger prune must stay logical/synchronous too: a deferred
	// prune would let the NEXT summary plan carry entries whose holder
	// blocks were already cut.
	c.ledger.prune(c.marker)
	ev := &compact.Event{
		OldMarker: old,
		NewMarker: c.marker,
		Blocks:    uint64(cut),
		Bytes:     cutBytes,
	}
	ev.Record = c.sealDeletionRecordLocked(old, cutBlocks)
	return ev
}
