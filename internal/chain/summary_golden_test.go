package chain

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

var updateGolden = flag.Bool("update", false, "rewrite the summary golden file")

// buildSummaryBothForTest runs the incremental and the naive reference
// planner on identical chain state.
func (c *Chain) buildSummaryBothForTest() (inc, ref *block.Block, incPlan, refPlan summaryPlan) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	inc, incPlan = c.planSummaryLocked()
	ref, refPlan = c.planSummaryReferenceLocked()
	return inc, ref, incPlan, refPlan
}

// recountStatsForTest recomputes the live/carried counters the way the
// pre-ledger Stats() did: a full scan of the entry index.
func (c *Chain) recountStatsForTest() (live, carried int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for ref, loc := range c.index {
		if _, marked := c.marks[ref]; marked {
			continue
		}
		live++
		if loc.Carried {
			carried++
		}
	}
	return live, carried
}

// ledgerSortedForTest verifies the carried-entry ledger's ordering
// invariant.
func (c *Chain) ledgerSortedForTest() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 1; i < len(c.ledger.ordered); i++ {
		if !candidateLess(c.ledger.ordered[i-1], c.ledger.ordered[i]) {
			return false
		}
	}
	return true
}

// goldenEnv is the deterministic participant set of the golden runs.
type goldenEnv struct {
	reg   *identity.Registry
	alice *identity.KeyPair
	bob   *identity.KeyPair
}

func newGoldenEnv(t *testing.T) *goldenEnv {
	t.Helper()
	reg := identity.NewRegistry()
	alice := identity.Deterministic("alice", "summary-golden")
	bob := identity.Deterministic("bob", "summary-golden")
	for _, kp := range []*identity.KeyPair{alice, bob} {
		if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
			t.Fatal(err)
		}
	}
	return &goldenEnv{reg: reg, alice: alice, bob: bob}
}

// driveGolden runs a deterministic mixed workload — plain data,
// temporaries expiring by time and by block, dependencies, and deletion
// requests — comparing the two planners byte-for-byte at every summary
// slot and the incremental Stats counters against a full recount after
// every block. It returns the hex hash of every summary block produced.
func driveGolden(t *testing.T, c *Chain, env *goldenEnv, rounds int) []string {
	t.Helper()
	var hashes []string
	var aliceRefs []block.Ref
	deleted := 0

	checkSummaries := func() {
		for c.NextIsSummary() {
			inc, ref, incPlan, refPlan := c.buildSummaryBothForTest()
			if incPlan != refPlan {
				t.Fatalf("plan mismatch at block %d: incremental %+v, reference %+v",
					inc.Header.Number, incPlan, refPlan)
			}
			if !bytes.Equal(inc.Encode(), ref.Encode()) {
				t.Fatalf("summary block %d differs: incremental %d carried, reference %d carried",
					inc.Header.Number, len(inc.Carried), len(ref.Carried))
			}
			hashes = append(hashes, inc.Hash().String())
			if err := c.AppendBlock(inc); err != nil {
				t.Fatalf("append summary %d: %v", inc.Header.Number, err)
			}
		}
	}
	checkStats := func() {
		live, carried := c.recountStatsForTest()
		s := c.Stats()
		if s.LiveEntries != live || s.CarriedEntries != carried {
			t.Fatalf("stats diverged after block %d: incremental live=%d carried=%d, recount live=%d carried=%d",
				c.Head().Number, s.LiveEntries, s.CarriedEntries, live, carried)
		}
		if !c.ledgerSortedForTest() {
			t.Fatalf("ledger ordering invariant broken after block %d", c.Head().Number)
		}
	}

	for r := 0; r < rounds; r++ {
		checkSummaries()
		now := c.Head().Time
		entries := []*block.Entry{
			block.NewData("alice", []byte(fmt.Sprintf("alice-%03d", r))).Sign(env.alice),
		}
		switch r % 3 {
		case 0:
			entries = append(entries,
				block.NewTemporary("bob", []byte(fmt.Sprintf("ttl-time-%03d", r)), now+4, 0).Sign(env.bob))
		case 1:
			entries = append(entries,
				block.NewTemporary("bob", []byte(fmt.Sprintf("ttl-block-%03d", r)), 0, c.Head().Number+5).Sign(env.bob))
		case 2:
			if len(aliceRefs) > 0 {
				dep := aliceRefs[len(aliceRefs)-1]
				if !c.IsMarked(dep) {
					entries = append(entries,
						block.NewData("bob", []byte(fmt.Sprintf("dep-%03d", r))).WithDependsOn(dep).Sign(env.bob))
				}
			}
		}
		// Every 4th round alice asks to forget an older entry of hers
		// (§IV-D); some requests target already-cut refs and are
		// rejected on-chain, which the planners must agree on too.
		if r%4 == 3 && deleted < len(aliceRefs) {
			entries = append(entries,
				block.NewDeletion("alice", aliceRefs[deleted]).Sign(env.alice))
			deleted++
		}
		normal, err := c.BuildNormal(entries)
		if err != nil {
			t.Fatalf("round %d: build: %v", r, err)
		}
		if err := c.AppendBlock(normal); err != nil {
			t.Fatalf("round %d: append: %v", r, err)
		}
		aliceRefs = append(aliceRefs, block.Ref{Block: normal.Header.Number, Entry: 0})
		checkStats()
	}
	checkSummaries()
	checkStats()
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	return hashes
}

// goldenConfigs are the retention geometries the planners are compared
// under: both shrink policies, block- and sequence-based limits, floors,
// and the Fig. 9 redundancy reference.
func goldenConfigs(reg *identity.Registry) map[string]Config {
	return map[string]Config{
		"all-but-newest": {
			SequenceLength: 3, MaxSequences: 2,
			Shrink: ShrinkAllButNewest, Registry: reg,
			Clock: simclock.NewLogical(0),
		},
		"minimal": {
			SequenceLength: 3, MaxBlocks: 9,
			Shrink: ShrinkMinimal, Registry: reg,
			Clock: simclock.NewLogical(0),
		},
		"minimal-redundancy": {
			SequenceLength: 4, MaxBlocks: 16, MinBlocks: 6,
			Shrink: ShrinkMinimal, RedundancyReference: true,
			Registry: reg, Clock: simclock.NewLogical(0),
		},
		"unbounded": {
			SequenceLength: 3, Registry: reg,
			Clock: simclock.NewLogical(0),
		},
	}
}

// TestSummaryPlannerGolden asserts that the incremental planner emits
// byte-identical summary blocks to the naive reference planner across
// every retention geometry, and pins the resulting block hashes in a
// golden file so any planner change is a conscious decision
// (regenerate with `go test ./internal/chain -run Golden -update`).
func TestSummaryPlannerGolden(t *testing.T) {
	env := newGoldenEnv(t)
	got := make(map[string][]string)
	for name, cfg := range goldenConfigs(env.reg) {
		t.Run(name, func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got[name] = driveGolden(t, c, env, 40)
			if len(got[name]) == 0 {
				t.Fatal("scenario produced no summary blocks")
			}
		})
	}

	goldenPath := filepath.Join("testdata", "summary_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	var want map[string][]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for name, hashes := range got {
		wantHashes, ok := want[name]
		if !ok {
			t.Errorf("scenario %q missing from golden file (re-run with -update)", name)
			continue
		}
		if len(hashes) != len(wantHashes) {
			t.Errorf("scenario %q: %d summaries, golden has %d", name, len(hashes), len(wantHashes))
			continue
		}
		for i := range hashes {
			if hashes[i] != wantHashes[i] {
				t.Errorf("scenario %q: summary %d hash %s, golden %s", name, i, hashes[i], wantHashes[i])
				break
			}
		}
	}
}

// TestSummaryPlannerGoldenAfterRestore persists a mid-scenario chain,
// restores it (exercising the ledger's merge-insert path: the restored
// summaries' carried entries have no surviving origin blocks), and
// checks that both planners still agree while the workload continues.
func TestSummaryPlannerGoldenAfterRestore(t *testing.T) {
	env := newGoldenEnv(t)
	for name, cfg := range goldenConfigs(env.reg) {
		t.Run(name, func(t *testing.T) {
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			driveGolden(t, c, env, 25)

			restored, err := Restore(cfg, c.Blocks())
			if err != nil {
				t.Fatal(err)
			}
			if !restored.ledgerSortedForTest() {
				t.Fatal("restored ledger not sorted")
			}
			// Restored counters must be internally consistent with a
			// full index recount. (They may legitimately differ from the
			// original chain's: mark reconstruction re-processes the
			// deletion entries still present, and a request that was
			// historically rejected because of a since-forgotten
			// dependent validates on replay — the history proving the
			// rejection was physically deleted, which is the point of
			// the system.)
			live, carried := restored.recountStatsForTest()
			rs := restored.Stats()
			if rs.LiveEntries != live || rs.CarriedEntries != carried {
				t.Fatalf("restored counters live=%d carried=%d, recount live=%d carried=%d",
					rs.LiveEntries, rs.CarriedEntries, live, carried)
			}
			driveGolden(t, restored, env, 15)
		})
	}
}

// TestSummaryPlannerGoldenWithInjectedMarks covers the fault-injection
// path: marks added without authorization must affect both planners
// identically.
func TestSummaryPlannerGoldenWithInjectedMarks(t *testing.T) {
	env := newGoldenEnv(t)
	cfg := Config{
		SequenceLength: 3, MaxSequences: 2,
		Registry: env.reg, Clock: simclock.NewLogical(0),
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveGolden(t, c, env, 10)
	// Mark one live entry directly, and one ref that does not exist.
	for ref := range c.index {
		c.InjectMarkForTest(ref)
		break
	}
	c.InjectMarkForTest(block.Ref{Block: 1 << 40, Entry: 7})
	driveGolden(t, c, env, 10)
}
