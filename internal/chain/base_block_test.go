package chain

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestBaseBlockStripesNumbering pins the partition-striping primitive:
// a chain built with BaseBlock numbers its genesis (and marker) there,
// seals subsequent blocks above it, and keeps the summary-slot rule and
// retention machinery working in the offset stripe.
func TestBaseBlockStripesNumbering(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.BaseBlock = 3 * uint64(cfg.SequenceLength) // sequence-aligned offset
	c := newChain(t, cfg)
	defer c.Close()

	if got := c.Head().Number; got != cfg.BaseBlock {
		t.Fatalf("genesis number %d, want %d", got, cfg.BaseBlock)
	}
	if got := c.Marker(); got != cfg.BaseBlock {
		t.Fatalf("marker %d, want %d", got, cfg.BaseBlock)
	}
	ctx := context.Background()
	sealed, err := c.SubmitWait(ctx, env.data("alpha", "striped"))
	if err != nil {
		t.Fatal(err)
	}
	if sealed[0].Ref.Block <= cfg.BaseBlock {
		t.Fatalf("sealed block %d not above base %d", sealed[0].Ref.Block, cfg.BaseBlock)
	}
	// Drive enough churn to truncate inside the stripe: the marker must
	// advance past the base but stay sequence-aligned relative to 0
	// (absolute numbering), proving summary slots work in the stripe.
	for i := 0; c.Marker() == cfg.BaseBlock; i++ {
		if i > 64 {
			t.Fatal("no truncation in the stripe")
		}
		if _, err := c.SubmitWait(ctx, env.data("alpha", fmt.Sprintf("churn-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.CompactWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if m := c.Marker(); m%uint64(cfg.SequenceLength) != 0 {
		t.Errorf("marker %d not sequence-aligned", m)
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBaseBlockMustAlign rejects a base block that is not a multiple of
// the sequence length — it would desynchronize the summary-slot rule.
func TestBaseBlockMustAlign(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.BaseBlock = uint64(cfg.SequenceLength) + 1
	if _, err := New(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("misaligned BaseBlock accepted: %v", err)
	}
}
