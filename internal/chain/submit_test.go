package chain

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/mempool"
)

func TestSubmitSealsAndResolves(t *testing.T) {
	env := newEnv(t, "alice")
	c := newChain(t, defaultConfig(env))
	defer c.Close()

	receipts, err := c.Submit(context.Background(), env.data("alice", "a"), env.data("alice", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(receipts) != 2 {
		t.Fatalf("got %d receipts", len(receipts))
	}
	for i, r := range receipts {
		sealed, err := r.Wait(context.Background())
		if err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
		e, loc, ok := c.Lookup(sealed.Ref)
		if !ok {
			t.Fatalf("receipt %d: ref %s not resolvable", i, sealed.Ref)
		}
		if loc.Block != sealed.Block {
			t.Errorf("receipt %d: location block %d, sealed block %d", i, loc.Block, sealed.Block)
		}
		holder, _ := c.Block(sealed.Block)
		if holder.Hash() != sealed.BlockHash {
			t.Errorf("receipt %d: block hash mismatch", i)
		}
		if string(e.Payload) != []string{"a", "b"}[i] {
			t.Errorf("receipt %d: wrong entry payload %q", i, e.Payload)
		}
	}
}

func TestSubmitPerEntryValidationError(t *testing.T) {
	env := newEnv(t, "alice", "mallory")
	c := newChain(t, defaultConfig(env))
	defer c.Close()

	// mallory forges an entry owned by alice: the signature does not
	// verify, so the entry must be rejected through its receipt while
	// the good entry seals.
	forged := block.NewData("alice", []byte("forged")).Sign(env.keys["mallory"])
	receipts, err := c.Submit(context.Background(), env.data("alice", "good"), forged)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := receipts[0].Wait(context.Background()); err != nil {
		t.Errorf("good entry: %v", err)
	}
	if _, err := receipts[1].Wait(context.Background()); !errors.Is(err, ErrEntryInvalid) {
		t.Errorf("forged entry resolved with %v, want ErrEntryInvalid", err)
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAfterCloseAndIdempotentClose(t *testing.T) {
	env := newEnv(t, "alice")
	c := newChain(t, defaultConfig(env))
	if _, err := c.SubmitWait(context.Background(), env.data("alice", "x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), env.data("alice", "y")); !errors.Is(err, mempool.ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	// Never-submitted chains close cleanly too.
	c2 := newChain(t, defaultConfig(env))
	if err := c2.Close(); err != nil {
		t.Errorf("Close on fresh chain = %v", err)
	}
}

// TestSubmitConcurrentProducers is the pipeline's core concurrency
// guarantee: ≥16 goroutines submitting data and deletion entries at once,
// every receipt resolves, and the chain stays structurally intact. Run
// with -race.
func TestSubmitConcurrentProducers(t *testing.T) {
	env := newEnv(t, "alice", "bob")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 0 // keep refs alive so deletions target live entries
	c := newChain(t, cfg)
	defer c.Close()

	// Seed data entries so the deletion producers have committed targets.
	seeded, err := c.SubmitWait(context.Background(),
		env.data("alice", "victim-0"), env.data("alice", "victim-1"),
		env.data("bob", "victim-2"), env.data("bob", "victim-3"))
	if err != nil {
		t.Fatal(err)
	}

	const producers = 16
	const perProducer = 25
	var wg sync.WaitGroup
	errs := make(chan error, producers*perProducer)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			owner := "alice"
			if p%2 == 1 {
				owner = "bob"
			}
			for i := 0; i < perProducer; i++ {
				var e *block.Entry
				if i == perProducer/2 && p < len(seeded) {
					// Interleave deletion requests with data writes. Only
					// the seeded ref's owner issues the request; wrong
					// requests would simply be recorded with no effect.
					owner = []string{"alice", "alice", "bob", "bob"}[p]
					e = env.del(owner, seeded[p].Ref)
				} else {
					e = env.data(owner, fmt.Sprintf("p%d-%d", p, i))
				}
				receipts, err := c.Submit(context.Background(), e)
				if err != nil {
					errs <- fmt.Errorf("producer %d: %w", p, err)
					return
				}
				if _, err := receipts[0].Wait(context.Background()); err != nil {
					errs <- fmt.Errorf("producer %d entry %d: %w", p, i, err)
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := c.VerifyIntegrity(); err != nil {
		t.Fatalf("VerifyIntegrity: %v", err)
	}
	st := c.Stats()
	ps := c.PipelineStats()
	if ps.Entries != producers*perProducer+4 {
		t.Errorf("pipeline sealed %d entries, want %d", ps.Entries, producers*perProducer+4)
	}
	if ps.Batches == 0 || uint64(st.AppendedBlocks) < ps.Batches {
		t.Errorf("implausible counters: %+v vs %+v", ps, st)
	}
	// Coalescing must actually happen: far fewer blocks than entries.
	if ps.Batches >= ps.Entries {
		t.Errorf("no coalescing: %d batches for %d entries", ps.Batches, ps.Entries)
	}
	for _, ref := range []block.Ref{seeded[0].Ref, seeded[1].Ref, seeded[2].Ref, seeded[3].Ref} {
		if !c.IsMarked(ref) {
			t.Errorf("deletion request for %s did not mark", ref)
		}
	}
}

func TestBlocksSeqAndEntriesSeq(t *testing.T) {
	env := newEnv(t, "alice")
	c := newChain(t, defaultConfig(env))
	for i := 0; i < 7; i++ {
		mustSeal(t, c, env.data("alice", fmt.Sprintf("e%d", i)))
	}

	var seqBlocks []*block.Block
	for b := range c.BlocksSeq() {
		seqBlocks = append(seqBlocks, b)
	}
	copied := c.Blocks()
	if len(seqBlocks) != len(copied) {
		t.Fatalf("BlocksSeq yielded %d, Blocks %d", len(seqBlocks), len(copied))
	}
	for i := range copied {
		if seqBlocks[i] != copied[i] {
			t.Errorf("block %d differs", i)
		}
	}

	// Early break must not deadlock or leak the lock.
	for range c.BlocksSeq() {
		break
	}
	if c.Len() != len(copied) {
		t.Error("chain unusable after early break")
	}

	// EntriesSeq yields every live entry with a resolvable stable ref,
	// and mutation mid-iteration is allowed (snapshot semantics).
	count := 0
	for ref, e := range c.EntriesSeq() {
		if e.Kind != block.KindData {
			continue
		}
		if got, _, ok := c.Lookup(ref); !ok || got.Hash() != e.Hash() {
			t.Errorf("ref %s does not resolve to yielded entry", ref)
		}
		if count == 0 {
			mustSeal(t, c, env.data("alice", "mid-iteration"))
		}
		count++
	}
	if count != 7 {
		t.Errorf("EntriesSeq yielded %d data entries, want 7", count)
	}
}

func TestPipelineStatsSurviveClose(t *testing.T) {
	env := newEnv(t, "alice")
	c := newChain(t, defaultConfig(env))
	if _, err := c.SubmitWait(context.Background(), env.data("alice", "x"), env.data("alice", "y")); err != nil {
		t.Fatal(err)
	}
	before := c.PipelineStats()
	if before.Entries != 2 {
		t.Fatalf("pre-close stats = %+v", before)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if after := c.PipelineStats(); after != before {
		t.Errorf("stats lost on Close: %+v != %+v", after, before)
	}
}
