// Package chain implements the selective-deletion blockchain of the
// paper: a hash chain partitioned into sequences ω by periodically
// inserted summary blocks Σ (§IV-B), a shifting Genesis marker m (§IV-C),
// bounded live length per Eq. 1, deletion on request (§IV-D), and
// temporary entries (§IV-D.4).
package chain

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/codec"
	"github.com/seldel/seldel/internal/compact"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/manifest"
	"github.com/seldel/seldel/internal/mempool"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/verify"
)

// ShrinkPolicy selects how many sequences are merged into a new summary
// block once the configured limit is exceeded.
type ShrinkPolicy uint8

const (
	// ShrinkMinimal cuts the oldest sequence, repeating until the limit
	// holds again — the literal iteration of Eq. 1.
	ShrinkMinimal ShrinkPolicy = iota + 1
	// ShrinkAllButNewest merges every complete sequence except the newest
	// one (the round-robin picture of Fig. 3; reproduces the prototype
	// behaviour of Figs. 6–8, where two sequences were merged at once).
	ShrinkAllButNewest
)

// Valid reports whether p is a defined policy.
func (p ShrinkPolicy) Valid() bool {
	return p == ShrinkMinimal || p == ShrinkAllButNewest
}

// Config parameterizes a Chain.
type Config struct {
	// SequenceLength is l, the distance δl between summary blocks: a
	// summary block occupies every block number α with (α+1) mod l == 0.
	// Must be at least 2 (one data block + the summary).
	SequenceLength int
	// MaxBlocks is lmax measured in live blocks; 0 disables the limit.
	MaxBlocks int
	// MaxSequences caps the number of complete live sequences instead
	// ("another property can be used, for example the maximum number of
	// sequences", §IV-C); 0 disables the limit.
	MaxSequences int
	// MinBlocks is a floor: truncation never leaves fewer live blocks
	// ("a minimum length … can be specified", §IV-D.3). 0 disables.
	MinBlocks int
	// MinTimeSpan is a floor on the logical time covered by live blocks
	// ("a minimum time span coverage", §IV-D.3). 0 disables.
	MinTimeSpan uint64
	// Shrink selects the merge policy; defaults to ShrinkAllButNewest.
	Shrink ShrinkPolicy
	// RedundancyReference enables the Fig. 9 middle-sequence Merkle
	// reference in summary blocks.
	RedundancyReference bool
	// Registry validates entry signatures and roles. Required.
	Registry *identity.Registry
	// Clock supplies logical timestamps. Defaults to a fresh Logical
	// clock starting at 0.
	Clock simclock.Clock
	// DeletionPolicy selects requester authorization strictness.
	// Defaults to role-based (§IV-D.1).
	DeletionPolicy deletion.Policy
	// AutoCohesion, when set, auto-approves cohesion for dependents whose
	// owners the requester's clearance dominates (the Bell-LaPadula-style
	// automatic approach of §IV-D.2). Nil keeps the pure co-signature rule.
	AutoCohesion *deletion.AutoPolicy
	// Seal, when set, finalizes freshly built normal blocks (e.g. mines
	// a proof-of-work nonce). Summary blocks are never sealed: every
	// node computes them locally (§IV-B).
	Seal func(*block.Block) error
	// VerifySeal, when set, checks the seal of appended normal blocks.
	VerifySeal func(*block.Block) error
	// Verifier is the signature-verification engine used by every
	// validation path (candidate entries, gossiped blocks, restores).
	// Nil means the process-wide shared pool (verify.Shared()), so
	// chains in one process share workers and the verified-signature
	// cache.
	Verifier *verify.Pool
	// MaxBatch is the submission pipeline's soft flush threshold: Submit
	// batches are sealed once they hold at least this many entries.
	// 0 means mempool.DefaultMaxBatch.
	MaxBatch int
	// BatchLinger bounds how long the pipeline waits to grow a non-full
	// batch once the submission stream goes idle. 0 flushes immediately
	// on idle (lowest latency; batches still fill under load).
	BatchLinger time.Duration
	// Durability selects when submission receipts resolve relative to
	// the store's durability point: the zero value resolves at seal
	// time (durability follows the store's policy), DurabilityGroup
	// holds receipts until a group fsync confirmed their blocks on
	// stable storage — many sealed blocks per sync under load.
	Durability Durability
	// Compaction parameterizes the background compactor that executes
	// the physical side of truncation (memory release, dependency-graph
	// sweep, store pruning via OnTruncate) off the append path. The
	// zero value is the asynchronous default; set Synchronous to run
	// that work inline on the append path instead.
	Compaction compact.Options
	// BaseBlock offsets the chain's block numbering: the genesis block
	// is created with this number and the Genesis marker starts here
	// instead of 0. Partitioned deployments (internal/partition) give
	// each sub-chain a disjoint number stripe so entry references stay
	// globally unique and the owning partition of any Ref is recovered
	// by integer division. Must be a multiple of SequenceLength so the
	// summary-slot rule ((α+1) mod l == 0) and the restore alignment
	// check keep holding; 0 is the classic single-chain numbering.
	BaseBlock uint64
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.SequenceLength < 2 {
		return cfg, fmt.Errorf("%w: SequenceLength %d < 2", ErrConfig, cfg.SequenceLength)
	}
	if cfg.Registry == nil {
		return cfg, fmt.Errorf("%w: Registry is required", ErrConfig)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewLogical(0)
	}
	if cfg.Shrink == 0 {
		cfg.Shrink = ShrinkAllButNewest
	}
	if !cfg.Shrink.Valid() {
		return cfg, fmt.Errorf("%w: invalid shrink policy %d", ErrConfig, cfg.Shrink)
	}
	if cfg.MaxBlocks < 0 || cfg.MaxSequences < 0 || cfg.MinBlocks < 0 {
		return cfg, fmt.Errorf("%w: negative limit", ErrConfig)
	}
	if cfg.MaxBatch < 0 || cfg.BatchLinger < 0 {
		return cfg, fmt.Errorf("%w: negative batch parameter", ErrConfig)
	}
	if cfg.MaxBlocks > 0 && cfg.MaxBlocks < cfg.SequenceLength {
		return cfg, fmt.Errorf("%w: MaxBlocks %d < SequenceLength %d", ErrConfig, cfg.MaxBlocks, cfg.SequenceLength)
	}
	if cfg.DeletionPolicy == 0 {
		cfg.DeletionPolicy = deletion.PolicyRoleBased
	}
	if cfg.Verifier == nil {
		cfg.Verifier = verify.Shared()
	}
	if cfg.BaseBlock%uint64(cfg.SequenceLength) != 0 {
		return cfg, fmt.Errorf("%w: BaseBlock %d is not a multiple of SequenceLength %d",
			ErrConfig, cfg.BaseBlock, cfg.SequenceLength)
	}
	if err := cfg.Durability.validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// newAuthorizer builds the deletion authorizer from a validated config.
func newAuthorizer(cfg Config) *deletion.Authorizer {
	a := deletion.NewAuthorizer(cfg.Registry, cfg.DeletionPolicy)
	if cfg.AutoCohesion != nil {
		a = a.WithAutoPolicy(cfg.AutoCohesion)
	}
	return a
}

// Errors returned by chain operations.
var (
	ErrConfig          = errors.New("chain: invalid configuration")
	ErrNotNext         = errors.New("chain: block does not extend the head")
	ErrWrongSlot       = errors.New("chain: block kind does not match its slot")
	ErrTimeRegression  = errors.New("chain: block timestamp precedes head")
	ErrSummaryMismatch = errors.New("chain: summary block differs from locally computed summary")
	ErrEntryInvalid    = errors.New("chain: invalid entry")
	ErrDependsMissing  = errors.New("chain: dependency does not exist in the live chain")
	ErrDependsMarked   = errors.New("chain: dependency is marked for deletion")
	ErrNotFound        = errors.New("chain: entry not found")
	ErrSealFailed      = errors.New("chain: seal verification failed")
)

// Location says where an entry currently lives.
type Location struct {
	// Block is the number of the block currently holding the entry
	// (the origin block, or the summary block it migrated into).
	Block uint64
	// Index is the position within Entries (normal) or Carried (summary).
	Index int
	// Carried is true when the entry lives inside a summary block.
	Carried bool
}

// Mark is an approved deletion mark (§IV-D.3: "the specified data is
// marked to be deleted in the future").
type Mark struct {
	// Target is the entry to be forgotten.
	Target block.Ref
	// Requester is the participant whose request was approved.
	Requester string
	// RequestRef locates the deletion entry that created the mark.
	RequestRef block.Ref
	// MarkedAtBlock is the block number at which the mark was approved
	// (used by the delayed-deletion experiments, E8).
	MarkedAtBlock uint64
}

// Listener observes chain mutations. OnAppend runs synchronously after
// the mutation completed and the chain lock was released; OnTruncate
// runs on the background compactor's goroutine, off the append path
// (CompactWait barriers on it). Implementations must not mutate the
// chain reentrantly from callbacks.
type Listener interface {
	// OnAppend fires for every appended block (normal and summary).
	OnAppend(b *block.Block)
	// OnTruncate fires after a marker shift logically removed the
	// blocks with numbers in [oldMarker, newMarker), when the
	// compactor executes the physical cleanup. Store implementations
	// prune here.
	OnTruncate(oldMarker, newMarker uint64)
}

// Stats is a snapshot of chain size and deletion counters.
type Stats struct {
	// LiveBlocks is the number of blocks from marker to head.
	LiveBlocks int
	// LiveBytes is the total canonical encoded size of live blocks.
	LiveBytes int64
	// LiveEntries counts live, unexpired, unmarked data entries.
	LiveEntries int
	// CarriedEntries counts data entries living inside summary blocks.
	CarriedEntries int
	// AppendedBlocks counts every block ever appended (incl. genesis).
	AppendedBlocks uint64
	// CutBlocks counts blocks physically deleted by marker shifts.
	CutBlocks uint64
	// ActiveMarks counts approved deletion marks not yet physically
	// executed.
	ActiveMarks int
	// ForgottenEntries counts entries physically deleted on request.
	ForgottenEntries uint64
	// ExpiredEntries counts temporary entries dropped at summarization.
	ExpiredEntries uint64
	// RejectedRequests counts deletion requests that were included but
	// had no effect ("wrong requests … have no further effects", §V).
	RejectedRequests uint64
}

// Chain is a live selective-deletion blockchain. All methods are safe for
// concurrent use.
type Chain struct {
	mu   sync.RWMutex
	cfg  Config
	auth *deletion.Authorizer

	// blocks holds the live blocks; blocks[i].Header.Number == marker+i.
	blocks []*block.Block
	// marker is the shifting Genesis marker m: the number of the first
	// live block.
	marker uint64

	// index maps stable entry references (origin block, entry number) to
	// current locations; it covers data entries only.
	index map[block.Ref]Location
	// indexPeak is the high-water entry count of index since its last
	// rebuild. Go maps never release their buckets, so after a large cut
	// the map can pin an arbitrary multiple of its live size; the
	// compactor rebuilds it when live/peak falls below the shrink
	// threshold (see maybeShrinkIndexLocked).
	indexPeak int
	// indexRebuilds counts those shrink rebuilds (PipelineStats gauge).
	indexRebuilds uint64
	// dependents maps a target reference to the entries depending on it.
	dependents map[block.Ref][]deletion.Dependent
	// marks holds approved, not-yet-executed deletion marks.
	marks map[block.Ref]Mark

	// ledger is the incremental summary-planning state: the origin-
	// ordered carried-entry candidates plus expiry heaps (ledger.go).
	ledger carriedLedger
	// liveEntries / carriedEntries are maintained incrementally on
	// append, mark, and truncate, so Stats() is O(1).
	liveEntries    int
	carriedEntries int

	liveBytes int64
	stats     Stats

	// Deletion audit state (tombstone.go): every executed truncation
	// appends one manifest.Record here; tombIndex resolves an erased
	// entry's origin ref to its record, tombFloor is the highest
	// recorded NewMarker (the resurrection floor consulted by sync),
	// and pendingTombs is the scratch list the current truncation's
	// sweep accumulates into before sealing its record.
	tombRecs     []manifest.Record
	tombIndex    map[block.Ref]int
	tombFloor    uint64
	nextTombSeq  uint64
	pendingTombs []manifest.Tombstone

	listeners []Listener

	// pipe is the lazily started submission pipeline behind Submit,
	// read lock-free on the hot path and retained after Close so stats
	// stay readable; pipeMu serializes start/close transitions only.
	pipeMu     sync.Mutex
	pipe       atomic.Pointer[mempool.Batcher]
	pipeClosed bool
	// gc is the group-commit committer (DurabilityGroup only), started
	// with the pipeline and closed strictly after it so every sealed
	// batch's resolution reaches its final sync.
	gc *groupCommitter

	// comp is the lazily started background compactor executing the
	// physical side of truncation; same lifecycle discipline as pipe.
	compMu     sync.Mutex
	comp       atomic.Pointer[compact.Compactor]
	compClosed bool

	// owned are resources whose lifecycle the chain adopted (e.g. a
	// store opened internally by seldel.WithSegmentStore). Close shuts
	// them down last — after the pipeline drained and the compactor
	// executed its final store pruning.
	ownMu sync.Mutex
	owned []io.Closer
}

// Own transfers a resource's lifecycle to the chain: it is closed by
// Chain.Close after the submission pipeline and compactor have drained.
// Used by the façade for stores it opens on the caller's behalf;
// resources the caller constructed stay the caller's to close.
func (c *Chain) Own(r io.Closer) {
	c.ownMu.Lock()
	defer c.ownMu.Unlock()
	c.owned = append(c.owned, r)
}

// New creates a chain with a fresh genesis block (number Config.BaseBlock,
// normally 0; previous hash GenesisPrevHash, no entries).
func New(cfg Config) (*Chain, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Chain{
		cfg:         full,
		auth:        newAuthorizer(full),
		marker:      full.BaseBlock,
		index:       make(map[block.Ref]Location),
		dependents:  make(map[block.Ref][]deletion.Dependent),
		marks:       make(map[block.Ref]Mark),
		ledger:      newCarriedLedger(),
		tombIndex:   make(map[block.Ref]int),
		nextTombSeq: 1,
	}
	genesis := block.NewNormal(full.BaseBlock, full.Clock.Tick(), block.GenesisPrevHash, nil)
	c.blocks = append(c.blocks, genesis)
	c.liveBytes = int64(genesis.EncodedSize())
	c.stats.AppendedBlocks = 1
	return c, nil
}

// AddListener registers a mutation observer.
func (c *Chain) AddListener(l Listener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, l)
}

// Registry returns the identity registry the chain validates against.
func (c *Chain) Registry() *identity.Registry { return c.cfg.Registry }

// Verifier returns the signature-verification pool the chain validates
// through, so adjacent layers (mempool warming, node gossip screening)
// share its workers and verified-signature cache.
func (c *Chain) Verifier() *verify.Pool { return c.cfg.Verifier }

// SequenceLength returns the configured summary distance l.
func (c *Chain) SequenceLength() int { return c.cfg.SequenceLength }

// Marker returns the current Genesis marker m.
func (c *Chain) Marker() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.marker
}

// Head returns the header of the newest block.
func (c *Chain) Head() block.Header {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head().Header
}

func (c *Chain) head() *block.Block { return c.blocks[len(c.blocks)-1] }

// Len returns the number of live blocks (lβ).
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.blocks)
}

// NextNumber returns the block number the next appended block must carry.
func (c *Chain) NextNumber() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head().Header.Number + 1
}

// isSummarySlot reports whether block number α is a summary position.
func (c *Chain) isSummarySlot(num uint64) bool {
	return (num+1)%uint64(c.cfg.SequenceLength) == 0
}

// NextIsSummary reports whether the next block must be a summary block.
func (c *Chain) NextIsSummary() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.isSummarySlot(c.head().Header.Number + 1)
}

// blockAt returns the live block with the given number.
func (c *Chain) blockAt(num uint64) (*block.Block, bool) {
	if num < c.marker {
		return nil, false
	}
	i := int(num - c.marker)
	if i >= len(c.blocks) {
		return nil, false
	}
	return c.blocks[i], true
}

// Block returns the live block with the given number.
func (c *Chain) Block(num uint64) (*block.Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.blockAt(num)
	return b, ok
}

// Blocks returns the live blocks in order. The returned slice is fresh
// but shares the (immutable-by-convention) block values. Prefer
// BlocksSeq for scans that may stop early.
func (c *Chain) Blocks() []*block.Block {
	return c.snapshotBlocks()
}

// Lookup resolves a stable entry reference to the entry and its current
// location (possibly inside a summary block).
func (c *Chain) Lookup(ref block.Ref) (*block.Entry, Location, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookup(ref)
}

func (c *Chain) lookup(ref block.Ref) (*block.Entry, Location, bool) {
	loc, ok := c.index[ref]
	if !ok {
		return nil, Location{}, false
	}
	b, ok := c.blockAt(loc.Block)
	if !ok {
		return nil, Location{}, false
	}
	if loc.Carried {
		return b.Carried[loc.Index].Entry, loc, true
	}
	return b.Entries[loc.Index], loc, true
}

// IsMarked reports whether ref carries an approved deletion mark.
func (c *Chain) IsMarked(ref block.Ref) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.marks[ref]
	return ok
}

// Marks returns the active deletion marks.
func (c *Chain) Marks() []Mark {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Mark, 0, len(c.marks))
	for _, m := range c.marks {
		out = append(out, m)
	}
	return out
}

// Confirmations returns how many blocks confirm the entry at ref: the
// distance from the block currently holding the entry to the head.
func (c *Chain) Confirmations(ref block.Ref) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	loc, ok := c.index[ref]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	return c.head().Header.Number - loc.Block, nil
}

// Stats returns a snapshot of the chain's size and deletion counters.
// All counters are maintained incrementally, so the call is O(1).
func (c *Chain) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.stats
	s.LiveBlocks = len(c.blocks)
	s.LiveBytes = c.liveBytes
	s.ActiveMarks = len(c.marks)
	s.LiveEntries = c.liveEntries
	s.CarriedEntries = c.carriedEntries
	return s
}

// verifyEntries checks the chain-state-independent rules of a candidate
// entry batch — structural shape and owner signature — through the
// parallel verification pool. It takes no lock: signature checking is
// the dominant validation cost and must not serialize behind Chain.mu.
func (c *Chain) verifyEntries(entries []*block.Entry) error {
	if err := c.cfg.Verifier.Entries(c.cfg.Registry, entries); err != nil {
		var ee *verify.EntryError
		if errors.As(err, &ee) {
			return fmt.Errorf("%w: entry %d: %v", ErrEntryInvalid, ee.Index, ee.Err)
		}
		return fmt.Errorf("%w: %v", ErrEntryInvalid, err)
	}
	return nil
}

// validateDepsLocked checks the chain-state-dependent rules of a
// candidate entry batch: dependency existence and mark status. Callers
// must hold the chain lock; signatures are checked separately (and
// before) by verifyEntries.
func (c *Chain) validateDepsLocked(entries []*block.Entry) error {
	for i, e := range entries {
		if e.Kind != block.KindData {
			continue
		}
		for _, dep := range e.DependsOn {
			if _, ok := c.index[dep]; !ok {
				return fmt.Errorf("%w: entry %d depends on %s", ErrDependsMissing, i, dep)
			}
			// §IV-D.3: "Subsequent incoming transactions based on this
			// marked data are no longer permitted."
			if _, marked := c.marks[dep]; marked {
				return fmt.Errorf("%w: entry %d depends on %s", ErrDependsMarked, i, dep)
			}
		}
	}
	return nil
}

// ValidateEntries checks candidate entries against the live chain state
// (shape, signature, dependency rules) without building a block or
// advancing the clock. Signatures verify in parallel outside the chain
// lock; only the dependency rules are checked under it. Note that
// entries cannot depend on other entries in the same candidate set:
// dependencies must already be committed.
func (c *Chain) ValidateEntries(entries []*block.Entry) error {
	if err := c.verifyEntries(entries); err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.validateDepsLocked(entries)
}

// InjectMarkForTest forcibly adds a deletion mark, bypassing all
// authorization. It exists solely for fault injection — modelling a
// corrupted node whose locally computed summary diverges from the quorum
// (§IV-B) — and must never be called on a production chain.
func (c *Chain) InjectMarkForTest(ref block.Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, already := c.marks[ref]; !already {
		if loc, ok := c.index[ref]; ok {
			c.liveEntries--
			if loc.Carried {
				c.carriedEntries--
			}
			c.ledger.mark(ref)
		}
	}
	c.marks[ref] = Mark{Target: ref, Requester: "<fault-injection>"}
}

// BuildNormal assembles (but does not append) the next normal block from
// the given entries. The block is unsealed; callers with a consensus
// engine seal it before appending. Fails if the next slot is a summary
// slot or any entry is invalid. Signatures verify in parallel before the
// chain lock is taken; only slot and dependency rules run under it.
func (c *Chain) BuildNormal(entries []*block.Entry) (*block.Block, error) {
	if err := c.verifyEntries(entries); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next := c.head().Header.Number + 1
	if c.isSummarySlot(next) {
		return nil, fmt.Errorf("%w: block %d is a summary slot", ErrWrongSlot, next)
	}
	if err := c.validateDepsLocked(entries); err != nil {
		return nil, err
	}
	return block.NewNormalWith(c.cfg.Verifier, next, c.cfg.Clock.Tick(), c.head().Hash(), entries), nil
}

// AppendBlock validates and appends a block received from consensus or
// gossip. Summary blocks are compared bit-for-bit against the locally
// computed summary (§IV-B); a mismatch signals a fork. Entry signatures
// of normal blocks — including the co-signatures of deletion requests —
// verify in parallel before the chain lock is taken, but only after the
// cheap chain-position screen, so a flood of stale or mispositioned
// blocks is rejected in O(1) instead of costing one Ed25519 check per
// entry. The chain-state-dependent rules (hash link, slot kind,
// dependencies, seal, deletion cohesion) are checked under the lock,
// consuming the precomputed signature verdicts. Truncation triggered by
// a summary block is executed logically under the lock; its physical
// side is handed to the background compactor (see CompactWait).
func (c *Chain) AppendBlock(b *block.Block) error {
	_, err := c.appendBlock(b)
	return err
}

// AppendBlockOutcomes is AppendBlock surfacing the deletion-mark
// outcomes of the appended block's entries (aligned with b.Entries).
// Distributed proposers (internal/node) seal blocks through their own
// engine rather than the chain's submission pipeline; this hook lets
// them resolve mark outcomes onto their receipts exactly like the
// local pipeline does.
func (c *Chain) AppendBlockOutcomes(b *block.Block) ([]mempool.MarkOutcome, error) {
	return c.appendBlock(b)
}

// appendBlock is AppendBlock surfacing the deletion-mark outcomes of
// the appended block's entries, for the submission pipeline's receipts.
func (c *Chain) appendBlock(b *block.Block) ([]mempool.MarkOutcome, error) {
	if err := b.CheckShape(); err != nil {
		return nil, err
	}
	var checks cosigChecks
	if !b.IsSummary() {
		if err := c.screenPosition(b); err != nil {
			return nil, err
		}
		if err := c.verifyEntries(b.Entries); err != nil {
			return nil, err
		}
		checks = c.precheckDeletions(b.Entries)
	}
	return c.appendVerified(b, checks)
}

// appendVerified finishes an append whose lock-free verification
// already ran, returning the mark outcomes of the block's deletion
// entries (aligned with b.Entries; nil for summary blocks) so the
// submission pipeline can resolve them onto receipts.
func (c *Chain) appendVerified(b *block.Block, checks cosigChecks) ([]mempool.MarkOutcome, error) {
	c.mu.Lock()
	events, err := c.appendLocked(b, checks)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for _, l := range c.listenersSnapshot() {
		for _, ab := range events.appended {
			l.OnAppend(ab)
		}
	}
	if events.truncated != nil {
		c.compactor().Enqueue(*events.truncated)
	}
	return events.outcomes, nil
}

// cosigChecks holds the lock-free co-signature prechecks of a candidate
// batch, keyed by the entry's position. Entries without a precheck fail
// closed (zero CoSigCheck approves nobody).
type cosigChecks map[int]deletion.CoSigCheck

// precheckDeletions batch-verifies the co-signatures of every deletion
// entry in the batch through the verification pool, WITHOUT taking the
// chain lock — the signature half of §IV-D authorization. Returns nil
// when the batch holds no deletion entries.
func (c *Chain) precheckDeletions(entries []*block.Entry) cosigChecks {
	var checks cosigChecks
	for i, e := range entries {
		if e.Kind != block.KindDeletion {
			continue
		}
		if checks == nil {
			checks = make(cosigChecks)
		}
		checks[i] = deletion.PrecheckRequest(c.cfg.Verifier, c.cfg.Registry, e)
	}
	return checks
}

// screenPosition cheaply pre-checks a candidate block's chain position
// under the read lock, before signature verification pays per-entry
// Ed25519 cost. appendLocked re-checks everything authoritatively; a
// block that passes here can still lose the race to a concurrent
// append, and a block rejected here could at worst have become
// appendable in that same window (gossip recovers it via sync).
func (c *Chain) screenPosition(b *block.Block) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	head := c.head()
	next := head.Header.Number + 1
	if b.Header.Number != next {
		return fmt.Errorf("%w: got %d, want %d", ErrNotNext, b.Header.Number, next)
	}
	if b.Header.PrevHash != head.Hash() {
		return fmt.Errorf("%w: previous hash mismatch at %d", ErrNotNext, b.Header.Number)
	}
	if b.IsSummary() != c.isSummarySlot(next) {
		return fmt.Errorf("%w: block %d: summary=%v, slot wants %v", ErrWrongSlot, next, b.IsSummary(), c.isSummarySlot(next))
	}
	return nil
}

type chainEvents struct {
	appended  []*block.Block
	truncated *compact.Event
	// outcomes are the per-entry deletion-mark outcomes of an appended
	// normal block (nil when it held no deletion entries).
	outcomes []mempool.MarkOutcome
}

func (c *Chain) listenersSnapshot() []Listener {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Listener, len(c.listeners))
	copy(out, c.listeners)
	return out
}

// appendLocked applies the chain-state-dependent checks and mutations of
// an append. Shape, entry signatures, and deletion co-signatures were
// already verified lock-free by AppendBlock; checks carries the
// co-signature verdicts for the batch's deletion entries.
func (c *Chain) appendLocked(b *block.Block, checks cosigChecks) (chainEvents, error) {
	var events chainEvents
	head := c.head()
	next := head.Header.Number + 1
	if b.Header.Number != next {
		return events, fmt.Errorf("%w: got %d, want %d", ErrNotNext, b.Header.Number, next)
	}
	if b.Header.PrevHash != head.Hash() {
		return events, fmt.Errorf("%w: previous hash mismatch at %d", ErrNotNext, b.Header.Number)
	}
	wantSummary := c.isSummarySlot(next)
	if b.IsSummary() != wantSummary {
		return events, fmt.Errorf("%w: block %d: summary=%v, slot wants %v", ErrWrongSlot, next, b.IsSummary(), wantSummary)
	}

	if b.IsSummary() {
		expected, plan := c.planSummaryLocked()
		if expected.Hash() != b.Hash() {
			return events, fmt.Errorf("%w: block %d: got %s, computed %s",
				ErrSummaryMismatch, next, b.Hash(), expected.Hash())
		}
		c.pushBlock(b)
		events.appended = append(events.appended, b)
		if ev := c.applyPlanLocked(plan); ev != nil {
			// Stage the physical work while still under the chain lock:
			// the compactor's intake is non-blocking, and staging here
			// is what keeps truncation events in marker order across
			// concurrent appenders. A synchronous (or closed) compactor
			// instead runs inline after the lock is released —
			// AppendBlock executes events.truncated then.
			if !c.compactor().TryEnqueue(*ev) {
				events.truncated = ev
			}
		}
		return events, nil
	}

	// Normal block.
	if b.Header.Time < head.Header.Time {
		return events, fmt.Errorf("%w: %d < %d", ErrTimeRegression, b.Header.Time, head.Header.Time)
	}
	if c.cfg.VerifySeal != nil {
		if err := c.cfg.VerifySeal(b); err != nil {
			return events, fmt.Errorf("%w: %v", ErrSealFailed, err)
		}
	}
	if err := c.validateDepsLocked(b.Entries); err != nil {
		return events, err
	}
	c.pushBlock(b)
	events.outcomes = c.processNormal(b, checks)
	events.appended = append(events.appended, b)
	return events, nil
}

// indexShrinkMinPeak is the smallest index high-water mark at which a
// shrink rebuild is considered: below it the pinned buckets are noise
// and a rebuild would just churn.
const indexShrinkMinPeak = 1024

// indexShrinkFactor triggers a rebuild when live entries fall below
// peak/indexShrinkFactor — i.e. at least 75% of the map's bucket
// capacity is dead weight.
const indexShrinkFactor = 4

// maybeShrinkIndexLocked rebuilds the entry index into a right-sized
// map when a cut left it mostly empty. Runs on the compactor goroutine
// under the chain lock: the rebuild is O(live), off the append path,
// and invisible to readers.
func (c *Chain) maybeShrinkIndexLocked() {
	if c.indexPeak < indexShrinkMinPeak || len(c.index)*indexShrinkFactor >= c.indexPeak {
		return
	}
	fresh := make(map[block.Ref]Location, len(c.index))
	for ref, loc := range c.index {
		fresh[ref] = loc
	}
	c.index = fresh
	c.indexPeak = len(fresh)
	c.indexRebuilds++
}

// pushBlock links b into the live slice, indexes its entries, and feeds
// the carried-entry ledger and the incremental live/carried counters.
func (c *Chain) pushBlock(b *block.Block) {
	c.blocks = append(c.blocks, b)
	c.liveBytes += int64(b.EncodedSize())
	c.stats.AppendedBlocks++
	num := b.Header.Number
	if b.IsSummary() {
		for i, carried := range b.Carried {
			ref := carried.Ref()
			if loc, ok := c.index[ref]; !ok {
				// Restored summary whose merge history is gone: the
				// entry enters the live set directly as carried.
				c.liveEntries++
				c.carriedEntries++
			} else if !loc.Carried {
				c.carriedEntries++
			}
			c.index[ref] = Location{Block: num, Index: i, Carried: true}
		}
		c.ledger.migrate(num, b.Carried)
		if len(c.index) > c.indexPeak {
			c.indexPeak = len(c.index)
		}
		return
	}
	for i, e := range b.Entries {
		if e.Kind != block.KindData {
			continue
		}
		ref := block.Ref{Block: num, Entry: uint32(i)}
		c.index[ref] = Location{Block: num, Index: i}
		c.ledger.add(ref, block.CarriedEntry{
			OriginBlock: num,
			OriginTime:  b.Header.Time,
			EntryNumber: uint32(i),
			Entry:       e,
		})
		c.liveEntries++
	}
	if len(c.index) > c.indexPeak {
		c.indexPeak = len(c.index)
	}
}

// processNormal applies the side effects of a freshly appended normal
// block: dependency registration and deletion-request processing.
// checks holds the lock-free co-signature verdicts of the block's
// deletion entries (precheckDeletions), so no signature is verified
// while the chain lock is held. The returned outcomes (aligned with
// b.Entries, nil when the block held no deletion entries) say which
// requests created marks and which were silently rejected — the
// submission pipeline resolves them onto receipts.
func (c *Chain) processNormal(b *block.Block, checks cosigChecks) []mempool.MarkOutcome {
	num := b.Header.Number
	var outcomes []mempool.MarkOutcome
	for i, e := range b.Entries {
		ref := block.Ref{Block: num, Entry: uint32(i)}
		switch e.Kind {
		case block.KindData:
			for _, dep := range e.DependsOn {
				c.dependents[dep] = append(c.dependents[dep], deletion.Dependent{Ref: ref, Owner: e.Owner})
			}
		case block.KindDeletion:
			if outcomes == nil {
				outcomes = make([]mempool.MarkOutcome, len(b.Entries))
			}
			if c.processDeletionRequest(e, ref, num, checks[i]) {
				outcomes[i] = mempool.MarkApproved
			} else {
				outcomes[i] = mempool.MarkRejected
			}
		}
	}
	return outcomes
}

// processDeletionRequest validates a deletion request against §IV-D and
// creates a mark on success, reporting whether the mark was approved.
// Invalid requests stay in the chain but have no effect ("wrong request
// of deletions can be included in the blockchain, but these have no
// further effects", §V). The co-signature verdicts arrive precomputed;
// only the stateful rules run here.
func (c *Chain) processDeletionRequest(e *block.Entry, ref block.Ref, atBlock uint64, pre deletion.CoSigCheck) bool {
	target, _, ok := c.lookup(e.Target)
	if !ok {
		c.stats.RejectedRequests++
		return false
	}
	if err := c.auth.ValidateRequestPrechecked(e, target, c.liveDependents(e.Target), pre); err != nil {
		c.stats.RejectedRequests++
		return false
	}
	if _, already := c.marks[e.Target]; !already {
		// The target leaves the live set logically; physical deletion
		// happens at the next marker shift.
		if loc, ok := c.index[e.Target]; ok {
			c.liveEntries--
			if loc.Carried {
				c.carriedEntries--
			}
		}
		c.ledger.mark(e.Target)
	}
	c.marks[e.Target] = Mark{
		Target:        e.Target,
		Requester:     e.Owner,
		RequestRef:    ref,
		MarkedAtBlock: atBlock,
	}
	return true
}

// liveDependents returns the dependents of target that are still alive
// and not themselves marked for deletion.
func (c *Chain) liveDependents(target block.Ref) []deletion.Dependent {
	var out []deletion.Dependent
	for _, dep := range c.dependents[target] {
		if _, ok := c.index[dep.Ref]; !ok {
			continue
		}
		if _, marked := c.marks[dep.Ref]; marked {
			continue
		}
		out = append(out, dep)
	}
	return out
}

// CheckDeletionRequest eagerly validates a deletion request without
// appending anything, so clients learn about rejections before paying for
// a block (§IV-D). The chain still tolerates invalid requests on-chain.
// Co-signatures verify through the pool before the read lock is taken.
func (c *Chain) CheckDeletionRequest(e *block.Entry) error {
	if e.Kind != block.KindDeletion {
		return fmt.Errorf("%w: not a deletion entry", ErrEntryInvalid)
	}
	pre := deletion.PrecheckRequest(c.cfg.Verifier, c.cfg.Registry, e)
	c.mu.RLock()
	defer c.mu.RUnlock()
	target, _, ok := c.lookup(e.Target)
	if !ok {
		return fmt.Errorf("%w: target %s", ErrNotFound, e.Target)
	}
	return c.auth.ValidateRequestPrechecked(e, target, c.liveDependents(e.Target), pre)
}

// commit builds, seals, and appends a normal block holding entries, then
// automatically creates and appends the summary block if the following
// slot is a summary slot (the consensus-extension behaviour of §IV-B).
// It returns every block appended (one or two).
//
// commit is the single-writer sealing primitive behind the submission
// pipeline: concurrent calls do not corrupt the chain, but they can fail
// with ErrNotNext when they race for the same head slot. The pipeline's
// single flusher serializes them; everything else writes through Submit.
// (The exported Chain.Commit facade was removed at the end of its
// deprecation window — use Submit/SubmitWait, or AppendEmpty for filler
// blocks.) The returned outcomes are the normal block's deletion-mark
// verdicts, aligned with entries.
func (c *Chain) commit(entries []*block.Entry) ([]*block.Block, []mempool.MarkOutcome, error) {
	normal, err := c.BuildNormal(entries)
	if err != nil {
		return nil, nil, err
	}
	if c.cfg.Seal != nil {
		if err := c.cfg.Seal(normal); err != nil {
			return nil, nil, fmt.Errorf("chain: seal: %w", err)
		}
	}
	outcomes, err := c.appendBlock(normal)
	if err != nil {
		return nil, nil, err
	}
	appended := []*block.Block{normal}
	for c.NextIsSummary() {
		summary, err := c.BuildSummary()
		if err != nil {
			return appended, outcomes, err
		}
		if err := c.AppendBlock(summary); err != nil {
			return appended, outcomes, err
		}
		appended = append(appended, summary)
	}
	return appended, outcomes, nil
}

// AppendEmpty appends an empty filler block (and any due summary block).
// Deployed "to prevent a long delay in deletion … by regularly adding
// empty blocks … if no transaction has occurred" (§IV-D.3). Like Submit
// it can lose a head race against concurrent writers (ErrNotNext);
// retention tickers simply retry on the next tick.
func (c *Chain) AppendEmpty() ([]*block.Block, error) {
	blocks, _, err := c.commit(nil)
	return blocks, err
}

// VerifyIntegrity re-validates the whole live chain: hash links, body
// commitments, and slot kinds. It returns the first violation found.
func (c *Chain) VerifyIntegrity() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, b := range c.blocks {
		if err := b.CheckShape(); err != nil {
			return fmt.Errorf("block %d: %w", b.Header.Number, err)
		}
		wantNum := c.marker + uint64(i)
		if b.Header.Number != wantNum {
			return fmt.Errorf("block at offset %d has number %d, want %d", i, b.Header.Number, wantNum)
		}
		if b.IsSummary() != c.isSummarySlot(b.Header.Number) {
			return fmt.Errorf("block %d: kind %s does not match slot", b.Header.Number, b.Header.Kind)
		}
		if i == 0 {
			continue
		}
		prev := c.blocks[i-1]
		if b.Header.PrevHash != prev.Hash() {
			return fmt.Errorf("block %d: broken hash link", b.Header.Number)
		}
		if b.IsSummary() && b.Header.Time != prev.Header.Time {
			return fmt.Errorf("summary %d: timestamp differs from predecessor", b.Header.Number)
		}
		if !b.IsSummary() && b.Header.Time < prev.Header.Time {
			return fmt.Errorf("block %d: timestamp regression", b.Header.Number)
		}
	}
	return nil
}

// HeadHash returns the hash of the newest block.
func (c *Chain) HeadHash() codec.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head().Hash()
}

// compactor lazily starts the background compactor on the first
// truncation. After Close it returns the retained instance, whose
// Enqueue runs inline. Read-only paths (PipelineStats, CompactWait)
// deliberately avoid this accessor while the pointer is nil, so a
// monitoring loop never spawns the goroutine.
func (c *Chain) compactor() *compact.Compactor {
	if k := c.comp.Load(); k != nil {
		return k
	}
	c.compMu.Lock()
	defer c.compMu.Unlock()
	if k := c.comp.Load(); k != nil {
		return k
	}
	opts := c.cfg.Compaction
	if c.compClosed {
		// Started after Close: run inline, nothing to shut down later.
		opts.Synchronous = true
	}
	k := compact.New(c.runCompaction, opts)
	c.comp.Store(k)
	return k
}

// runCompaction executes the physical side of one truncation: release
// the cut prefix's memory, sweep dead dependency edges, then let the
// listeners prune their stores. The logical truncation (marker shift,
// entry-index sweep, ledger prune) already happened under the append
// lock — validation correctness never waits for the compactor.
func (c *Chain) runCompaction(ev compact.Event) {
	c.mu.Lock()
	// Copy the live slice into a fresh backing array so the cut prefix
	// (still pinned by the shared array after the appender's cheap
	// re-slice) becomes collectable.
	c.blocks = append(make([]*block.Block, 0, len(c.blocks)+8), c.blocks...)
	// Sweep the dependency graph: drop edges whose endpoints died.
	// liveDependents filters through the entry index, so stale edges
	// are invisible in the meantime — this is pure space reclamation.
	for target, deps := range c.dependents {
		if _, ok := c.index[target]; !ok {
			delete(c.dependents, target)
			continue
		}
		kept := deps[:0]
		for _, dep := range deps {
			if _, ok := c.index[dep.Ref]; ok {
				kept = append(kept, dep)
			}
		}
		if len(kept) == 0 {
			delete(c.dependents, target)
		} else {
			c.dependents[target] = kept
		}
	}
	// Large cuts leave the entry index mostly dead buckets; rebuild it
	// right-sized while we are already off the append path.
	c.maybeShrinkIndexLocked()
	c.mu.Unlock()
	for _, l := range c.listenersSnapshot() {
		if tl, ok := l.(TruncateEventListener); ok {
			tl.OnTruncateEvent(ev)
			continue
		}
		l.OnTruncate(ev.OldMarker, ev.NewMarker)
	}
}

// TruncateEventListener is an optional Listener extension: listeners
// implementing it receive the full truncation event — including the
// deletion-manifest record built under the append lock — instead of the
// bare marker pair. Persistent stores use it to write the audit record
// durably in the same operation as the physical prune.
type TruncateEventListener interface {
	OnTruncateEvent(ev compact.Event)
}

// CompactWait blocks until every truncation that happened before the
// call has been physically compacted (memory released, stores pruned,
// OnTruncate listeners notified), or ctx is cancelled. It is the
// determinism barrier for tests and experiments that assert on
// post-truncation state; on a never-truncated chain it returns
// immediately (without starting the compactor).
func (c *Chain) CompactWait(ctx context.Context) error {
	c.compMu.Lock()
	k := c.comp.Load()
	c.compMu.Unlock()
	if k == nil {
		// No compactor means no truncation was ever staged.
		return nil
	}
	return k.Wait(ctx)
}
