package chain

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
)

// restoreFixture builds a live chain with data, deletion marks, and at
// least one summary block, returning its blocks and config.
func restoreFixture(t *testing.T, n int) (Config, []*block.Block, *Chain) {
	t.Helper()
	reg := identity.NewRegistry()
	kp := identity.Deterministic("writer", "restore-lookahead")
	if err := reg.RegisterKey(kp, identity.RoleUser); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		SequenceLength: 3,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx := context.Background()
	for i := 0; i < n; i++ {
		e := block.NewData("writer", []byte(fmt.Sprintf("r-%02d", i))).Sign(kp)
		sealed, err := c.SubmitWait(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := c.SubmitWait(ctx, block.NewDeletion("writer", sealed[0].Ref).Sign(kp)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A fresh logical clock for each restore, so timestamps replay.
	restoreCfg := cfg
	restoreCfg.Clock = simclock.NewLogical(0)
	return restoreCfg, c.Blocks(), c
}

// TestRestoreStreamLookahead pins that the pipelined restore (verify
// block N+1 while registering block N) reproduces the same chain state
// as the live one: head hash, marker, marks, and entry index.
func TestRestoreStreamLookahead(t *testing.T) {
	cfg, blocks, live := restoreFixture(t, 20)
	restored, err := RestoreStream(cfg, func(yield func(*block.Block, error) bool) {
		for _, b := range blocks {
			if !yield(b, nil) {
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("RestoreStream: %v", err)
	}
	defer restored.Close()
	if restored.HeadHash() != live.HeadHash() {
		t.Error("restored head hash differs")
	}
	if restored.Marker() != live.Marker() {
		t.Errorf("restored marker %d, want %d", restored.Marker(), live.Marker())
	}
	if got, want := len(restored.Marks()), len(live.Marks()); got != want {
		t.Errorf("restored %d marks, want %d", got, want)
	}
	if err := restored.VerifyIntegrity(); err != nil {
		t.Errorf("restored integrity: %v", err)
	}
}

// TestRestoreStreamRejectsTamperedBlock pins that the look-ahead window
// does not let a tampered block slip through: the restore fails at the
// offending block even when later blocks are already verified ahead.
func TestRestoreStreamRejectsTamperedBlock(t *testing.T) {
	cfg, blocks, _ := restoreFixture(t, 20)
	if len(blocks) < restoreLookahead+4 {
		t.Fatalf("fixture too short: %d blocks", len(blocks))
	}
	// Tamper with a mid-stream block's payload (breaks the hash link of
	// its successor AND its own entries root — either way the restore
	// must stop there, with the window already past it).
	tampered := make([]*block.Block, len(blocks))
	copy(tampered, blocks)
	victim := tampered[len(blocks)/2].Clone()
	if len(victim.Entries) == 0 {
		victim = tampered[len(blocks)/2+1].Clone()
	}
	if len(victim.Entries) > 0 {
		victim.Entries[0].Payload = []byte("tampered")
	}
	tampered[len(blocks)/2] = victim
	_, err := RestoreStream(cfg, func(yield func(*block.Block, error) bool) {
		for _, b := range tampered {
			if !yield(b, nil) {
				return
			}
		}
	})
	if err == nil {
		t.Fatal("tampered chain restored without error")
	}
}

// TestRestoreStreamPropagatesSourceError pins that an error yielded by
// the stream itself surfaces and the pipeline shuts down cleanly.
func TestRestoreStreamPropagatesSourceError(t *testing.T) {
	cfg, blocks, _ := restoreFixture(t, 12)
	srcErr := errors.New("disk exploded")
	var seq iter.Seq2[*block.Block, error] = func(yield func(*block.Block, error) bool) {
		for i, b := range blocks {
			if i == 5 {
				yield(nil, srcErr)
				return
			}
			if !yield(b, nil) {
				return
			}
		}
	}
	_, err := RestoreStream(cfg, seq)
	if !errors.Is(err, srcErr) {
		t.Fatalf("RestoreStream error = %v, want wrapped source error", err)
	}
}
