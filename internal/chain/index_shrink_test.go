package chain

import (
	"context"
	"fmt"
	"testing"

	"github.com/seldel/seldel/internal/block"
)

// TestIndexShrinksAfterLargeCut pins the compactor's map rebuild: a
// chain indexes well past indexShrinkMinPeak entries, a retention merge
// cuts almost all of them (expired temporaries are not carried), and
// the background compactor must rebuild the entry index instead of
// leaving a map whose buckets still size to the peak.
func TestIndexShrinksAfterLargeCut(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.SequenceLength = 4
	cfg.MaxSequences = 0
	cfg.MaxBlocks = 48
	c := newChain(t, cfg)
	defer c.Close()
	ctx := context.Background()

	// Fill the index beyond the shrink threshold with temporaries that
	// are already expired at the first merge (expire at block 1), so
	// the cut drops essentially everything.
	const total = indexShrinkMinPeak + 400
	const batch = 64
	for submitted := 0; submitted < total; submitted += batch {
		entries := make([]*block.Entry, 0, batch)
		for i := 0; i < batch; i++ {
			entries = append(entries, env.temp("alpha", fmt.Sprintf("t-%05d", submitted+i), 0, 1))
		}
		if _, err := c.SubmitWait(ctx, entries...); err != nil {
			t.Fatal(err)
		}
	}
	peak := c.PipelineStats().Index.Peak
	if peak < indexShrinkMinPeak {
		t.Fatalf("fixture too small: index peak %d < %d", peak, indexShrinkMinPeak)
	}

	// Push the chain over its block bound so a summary merge cuts the
	// prefix, then barrier on the compactor.
	for c.Marker() == 0 {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CompactWait(ctx); err != nil {
		t.Fatal(err)
	}

	idx := c.PipelineStats().Index
	if idx.Rebuilds == 0 {
		t.Fatalf("no index rebuild after cutting %d of %d entries (live=%d peak=%d)",
			peak-idx.Live, peak, idx.Live, idx.Peak)
	}
	if idx.Peak >= peak {
		t.Errorf("peak did not reset on rebuild: %d -> %d", peak, idx.Peak)
	}
	if idx.Live*indexShrinkFactor >= peak {
		t.Errorf("cut too small to prove anything: live=%d peak=%d", idx.Live, peak)
	}
}
