package chain

import (
	"container/heap"

	"github.com/seldel/seldel/internal/block"
)

// This file maintains the carried-entry ledger: a running, origin-ordered
// view of every live data entry as the CarriedEntry it would become in
// the next summary block. The naive planner (summary_reference.go)
// rescans every merged block and every previously carried entry at each
// summary slot; the ledger keeps that list materialized and updated on
// append, mark, and truncate, so planSummaryLocked assembles Σ by
// copying a prefix — O(carried output) with no per-slot rescans — and
// Stats() reads live/carried counters in O(1).
//
// Ordering invariant: `ordered` is sorted by (OriginBlock, EntryNumber).
// Live appends preserve it naturally (origins only grow, and entries
// migrating into a summary keep their origin coordinates); restoring a
// persisted chain can interleave origins, which insertBatch repairs with
// a linear merge.

// candidate is one live data entry viewed as a future summary carry.
type candidate struct {
	// ce is the exact CarriedEntry the next summary would hold. For an
	// entry still in its origin block this is pre-built at append time;
	// after a migration it is re-pointed at the live summary's copy.
	ce block.CarriedEntry
	// holder is the number of the block currently holding the entry.
	holder uint64
	// marked mirrors the deletion-mark set for O(1) skipping during
	// plan assembly.
	marked bool
}

// carriedLedger is the incremental summary-planning state.
type carriedLedger struct {
	ordered []*candidate
	byRef   map[block.Ref]*candidate
	// expireTime / expireBlock are min-heaps over the pending expiry
	// deadlines of temporary entries (§IV-D.4). Planning peeks them to
	// skip per-entry expiry checks entirely when no deadline has passed
	// — the common case for chains without temporaries. Items are
	// removed lazily when their entry leaves the ledger.
	expireTime  deadlineHeap
	expireBlock deadlineHeap
}

func newCarriedLedger() carriedLedger {
	return carriedLedger{byRef: make(map[block.Ref]*candidate)}
}

// add registers a fresh data entry from a normal block.
func (l *carriedLedger) add(ref block.Ref, ce block.CarriedEntry) {
	cand := &candidate{ce: ce, holder: ce.OriginBlock}
	l.ordered = append(l.ordered, cand)
	l.byRef[ref] = cand
	l.pushDeadlines(ref, ce.Entry)
}

func (l *carriedLedger) pushDeadlines(ref block.Ref, e *block.Entry) {
	if e.ExpireTime != 0 {
		heap.Push(&l.expireTime, deadlineItem{deadline: e.ExpireTime, ref: ref})
	}
	if e.ExpireBlock != 0 {
		heap.Push(&l.expireBlock, deadlineItem{deadline: e.ExpireBlock, ref: ref})
	}
}

// migrate records that an appended summary block now holds the carried
// entries. Known refs are re-homed (and re-pointed at the summary's own
// copy, so entries of cut blocks become collectable); unknown refs —
// which occur only when rebuilding from persisted blocks whose merge
// history is gone — are inserted, preserving the ordering invariant.
func (l *carriedLedger) migrate(summaryNum uint64, carried []block.CarriedEntry) {
	var fresh []*candidate
	for i := range carried {
		ce := carried[i]
		ref := ce.Ref()
		if cand, ok := l.byRef[ref]; ok {
			cand.ce = ce
			cand.holder = summaryNum
			continue
		}
		cand := &candidate{ce: ce, holder: summaryNum}
		l.byRef[ref] = cand
		l.pushDeadlines(ref, ce.Entry)
		fresh = append(fresh, cand)
	}
	if len(fresh) > 0 {
		l.insertBatch(fresh)
	}
}

// insertBatch adds candidates (themselves origin-ordered) into ordered.
// The fast path appends; when origins interleave with existing ones (a
// restored chain holding several non-empty summaries), a linear merge
// restores sortedness.
func (l *carriedLedger) insertBatch(fresh []*candidate) {
	if n := len(l.ordered); n == 0 || candidateLess(l.ordered[n-1], fresh[0]) {
		l.ordered = append(l.ordered, fresh...)
		return
	}
	merged := make([]*candidate, 0, len(l.ordered)+len(fresh))
	i, j := 0, 0
	for i < len(l.ordered) && j < len(fresh) {
		if candidateLess(l.ordered[i], fresh[j]) {
			merged = append(merged, l.ordered[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, l.ordered[i:]...)
	merged = append(merged, fresh[j:]...)
	l.ordered = merged
}

func candidateLess(a, b *candidate) bool {
	if a.ce.OriginBlock != b.ce.OriginBlock {
		return a.ce.OriginBlock < b.ce.OriginBlock
	}
	return a.ce.EntryNumber < b.ce.EntryNumber
}

// mark flags ref's candidate as deletion-marked. Reports whether a
// candidate existed.
func (l *carriedLedger) mark(ref block.Ref) bool {
	cand, ok := l.byRef[ref]
	if !ok {
		return false
	}
	cand.marked = true
	return true
}

// prune drops every candidate whose holder block was cut by a marker
// shift (marked entries now physically forgotten, expired temporaries
// dropped) and lazily clears dead expiry-heap items.
func (l *carriedLedger) prune(newMarker uint64) {
	kept := l.ordered[:0]
	for _, cand := range l.ordered {
		if cand.holder < newMarker {
			delete(l.byRef, cand.ce.Ref())
			continue
		}
		kept = append(kept, cand)
	}
	// Release the tail so dropped candidates become collectable.
	for i := len(kept); i < len(l.ordered); i++ {
		l.ordered[i] = nil
	}
	l.ordered = kept
	l.dropDeadHeapItems(&l.expireTime)
	l.dropDeadHeapItems(&l.expireBlock)
}

// dropDeadHeapItems pops heap tops whose entries left the ledger.
func (l *carriedLedger) dropDeadHeapItems(h *deadlineHeap) {
	for h.Len() > 0 {
		if _, alive := l.byRef[(*h)[0].ref]; alive {
			return
		}
		heap.Pop(h)
	}
}

// expiryPossible reports whether any pending deadline has passed at the
// given logical time and block number — the gate for per-entry expiry
// checks during plan assembly. Dead heap tops can only make this
// spuriously true (falling back to exact per-entry checks), never
// falsely false, because live deadlines are always present.
func (l *carriedLedger) expiryPossible(now, blockNum uint64) bool {
	if l.expireTime.Len() > 0 && l.expireTime[0].deadline <= now {
		return true
	}
	if l.expireBlock.Len() > 0 && l.expireBlock[0].deadline <= blockNum {
		return true
	}
	return false
}

// deadlineItem is one pending expiry deadline.
type deadlineItem struct {
	deadline uint64
	ref      block.Ref
}

// deadlineHeap is a min-heap over deadlines (container/heap).
type deadlineHeap []deadlineItem

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(deadlineItem)) }
func (h *deadlineHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
