package chain

import (
	"strings"
	"sync"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/simclock"
)

func TestRenderPayloadHeuristics(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c,
		env.data("alpha", "printable text"),
		block.NewData("alpha", []byte{0x00, 0x01, 0xFF}).Sign(env.keys["alpha"]),
		block.NewData("alpha", nil).Sign(env.keys["alpha"]),
	)
	out := c.RenderString(nil)
	if !strings.Contains(out, "printable text") {
		t.Errorf("printable payload not shown as text:\n%s", out)
	}
	if !strings.Contains(out, "0x0001ff") {
		t.Errorf("binary payload not hex-escaped:\n%s", out)
	}
	if !strings.Contains(out, "D - K alpha") {
		t.Errorf("empty payload placeholder missing:\n%s", out)
	}
}

func TestRenderHideMarkerAndCustomPayload(t *testing.T) {
	env := newEnv(t, "alpha")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c, env.data("alpha", "x"))
	out := c.RenderString(&RenderOptions{
		HideMarker:  true,
		PayloadText: func([]byte) string { return "<redacted>" },
	})
	if strings.Contains(out, "m ->") {
		t.Error("marker line shown despite HideMarker")
	}
	if !strings.Contains(out, "<redacted>") {
		t.Error("custom payload renderer not used")
	}
}

func TestRenderSequenceReference(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.RedundancyReference = true
	cfg.MaxSequences = 4
	c := newChain(t, cfg)
	for i := 0; i < 8; i++ {
		mustSeal(t, c, env.data("alpha", "x"))
	}
	out := c.RenderString(nil)
	if !strings.Contains(out, "ref w[") {
		t.Errorf("Fig. 9 reference line missing:\n%s", out)
	}
}

func TestConcurrentReadersDuringSeals(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 1
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Len()
				_ = c.Marker()
				_ = c.Stats()
				_, _, _ = c.Lookup(block.Ref{Block: 1, Entry: 0})
				_ = c.Blocks()
				_ = c.RenderString(nil)
				_ = c.VerifyIntegrity()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		mustSeal(t, c, env.data("alpha", "payload"))
	}
	close(stop)
	wg.Wait()
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreReconstructsMarks(t *testing.T) {
	// A deletion entry still live after a restart must re-create its
	// mark, so the pending deletion executes on the restored chain too.
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxSequences:   3,
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("alpha", "victim"))
	target := block.Ref{Block: 1, Entry: 0}
	mustSeal(t, c, env.del("alpha", target))
	if !c.IsMarked(target) {
		t.Fatal("precondition: not marked")
	}

	cfg2 := cfg
	cfg2.Clock = simclock.NewLogical(0)
	restored, err := Restore(cfg2, c.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.IsMarked(target) {
		t.Fatal("mark lost across restore")
	}
	// The restored chain executes the deletion like the original.
	for restored.IsMarked(target) {
		if _, err := restored.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := restored.Lookup(target); ok {
		t.Error("entry survived on restored chain")
	}
}

func TestRestorePreservesDependencyGraph(t *testing.T) {
	env := newEnv(t, "ALPHA", "BRAVO")
	cfg := defaultConfig(env)
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("ALPHA", "base"))
	base := block.Ref{Block: 1, Entry: 0}
	dep := block.NewData("BRAVO", []byte("dependent")).WithDependsOn(base).Sign(env.keys["BRAVO"])
	mustSeal(t, c, dep)

	cfg2 := defaultConfig(env)
	restored, err := Restore(cfg2, c.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	// Cohesion still enforced after restore: plain request rejected.
	plain := env.del("ALPHA", base)
	if err := restored.CheckDeletionRequest(plain); err == nil {
		t.Error("restored chain lost the dependency edge")
	}
}
