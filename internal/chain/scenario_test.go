package chain

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/deletion"
	"github.com/seldel/seldel/internal/simclock"
)

// paperScenario drives the evaluation scenario of §V: logins by ALPHA,
// BRAVO, CHARLIE with a summary block every third block, BRAVO's deletion
// request for block 3 / entry 1 in block 6.
//
// Block layout (l = 3, summaries at 2, 5, 8, …):
//
//	0  genesis
//	1  ALPHA login            (entry 1/0)
//	Σ2 (empty)
//	3  ALPHA, BRAVO logins    (entries 3/0, 3/1)
//	4  CHARLIE login          (entry 4/0)
//	Σ5 (empty)
//	6  BRAVO's deletion request for 3/1
//	7  ALPHA login
//	Σ8 merges sequences 0 and 1 → marker shifts to 6 (Fig. 7)
func paperScenario(t *testing.T) (*Chain, *testEnv) {
	t.Helper()
	env := newEnv(t, "ALPHA", "BRAVO", "CHARLIE")
	cfg := Config{
		SequenceLength: 3,
		MaxSequences:   2,
		Shrink:         ShrinkAllButNewest,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	return newChain(t, cfg), env
}

func TestFigure6StateAfterThreeLogins(t *testing.T) {
	c, env := paperScenario(t)
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty1"))
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty2"), env.data("BRAVO", "login BRAVO tty1"))
	mustSeal(t, c, env.data("CHARLIE", "login CHARLIE tty1"))

	// Chain is 0,1,Σ2,3,4,Σ5 — marker still at genesis, nothing deleted.
	if got := c.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if c.Marker() != 0 {
		t.Errorf("Marker = %d, want 0", c.Marker())
	}
	blocks := c.Blocks()
	for _, num := range []int{2, 5} {
		if !blocks[num].IsSummary() {
			t.Errorf("block %d is not a summary", num)
		}
		if len(blocks[num].Carried) != 0 {
			t.Errorf("summary %d is not empty: %d carried (Fig. 6: first two summaries empty)",
				num, len(blocks[num].Carried))
		}
	}
	out := c.RenderString(nil)
	for _, want := range []string{"m -> 0", "DEADB", "S2;", "S5;", "login BRAVO tty1", "K CHARLIE"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7DeletionAndMerge(t *testing.T) {
	c, env := paperScenario(t)
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty1"))
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty2"), env.data("BRAVO", "login BRAVO tty1"))
	mustSeal(t, c, env.data("CHARLIE", "login CHARLIE tty1"))

	// Block 6: BRAVO requests deletion of its entry at 3/1.
	target := block.Ref{Block: 3, Entry: 1}
	mustSeal(t, c, env.del("BRAVO", target))
	if !c.IsMarked(target) {
		t.Fatal("deletion request was not approved")
	}
	// Block 7 completes sequence 2; Σ8 merges sequences 0 and 1.
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty3"))

	if got := c.Marker(); got != 6 {
		t.Fatalf("Marker = %d, want 6 (Fig. 7: marker changed to block 6)", got)
	}
	// All information before block 6 is deleted.
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3 (blocks 6, 7, Σ8)", c.Len())
	}
	if _, ok := c.Block(5); ok {
		t.Error("block 5 still present after cut")
	}
	// The summary block must carry the surviving entries with original
	// coordinates, but NOT the deleted 3/1.
	head := c.Blocks()[c.Len()-1]
	if !head.IsSummary() || head.Header.Number != 8 {
		t.Fatalf("head is %s %d", head.Header.Kind, head.Header.Number)
	}
	carriedRefs := make(map[block.Ref]bool)
	for _, ce := range head.Carried {
		carriedRefs[ce.Ref()] = true
	}
	for _, want := range []block.Ref{{Block: 1, Entry: 0}, {Block: 3, Entry: 0}, {Block: 4, Entry: 0}} {
		if !carriedRefs[want] {
			t.Errorf("summary lost surviving entry %s", want)
		}
	}
	if carriedRefs[target] {
		t.Error("deleted entry 3/1 was copied into the summary (must be forgotten)")
	}
	// The deleted entry is physically gone; survivors resolve via the
	// summary block.
	if _, _, ok := c.Lookup(target); ok {
		t.Error("deleted entry still resolvable")
	}
	e, loc, ok := c.Lookup(block.Ref{Block: 3, Entry: 0})
	if !ok || !loc.Carried || loc.Block != 8 {
		t.Errorf("surviving entry: ok=%v loc=%+v", ok, loc)
	}
	if ok && e.Owner != "ALPHA" {
		t.Errorf("surviving entry owner = %q", e.Owner)
	}
	// The mark has been executed.
	if c.IsMarked(target) {
		t.Error("mark still active after physical deletion")
	}
	if got := c.Stats().ForgottenEntries; got != 1 {
		t.Errorf("ForgottenEntries = %d, want 1", got)
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Errorf("VerifyIntegrity: %v", err)
	}
}

func TestFigure8DeletionRequestNeverCarried(t *testing.T) {
	c, env := paperScenario(t)
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty1"))
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty2"), env.data("BRAVO", "login BRAVO tty1"))
	mustSeal(t, c, env.data("CHARLIE", "login CHARLIE tty1"))
	mustSeal(t, c, env.del("BRAVO", block.Ref{Block: 3, Entry: 1}))
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty3"))
	// One cycle ahead (Fig. 8): drive to the next merge, which cuts the
	// sequence holding the deletion request (block 6).
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty4"))     // block 9
	mustSeal(t, c, env.data("BRAVO", "login BRAVO tty2"))     // block 10 + Σ11
	mustSeal(t, c, env.data("CHARLIE", "login CHARLIE tty2")) // block 12
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty5"))     // block 13 + Σ14: merge

	if got := c.Marker(); got != 12 {
		t.Fatalf("Marker = %d, want 12 after second merge cycle", got)
	}
	// No live block may contain a deletion entry or carry one.
	for _, b := range c.Blocks() {
		for _, e := range b.Entries {
			if e.Kind == block.KindDeletion {
				t.Errorf("block %d still holds a deletion entry", b.Header.Number)
			}
		}
		for _, ce := range b.Carried {
			if ce.Entry.Kind == block.KindDeletion {
				t.Errorf("summary %d carries a deletion entry (never transferred, §V)", b.Header.Number)
			}
		}
	}
	// Survivors from the first merge must still be alive, re-carried.
	if _, loc, ok := c.Lookup(block.Ref{Block: 3, Entry: 0}); !ok || !loc.Carried {
		t.Errorf("entry 3/0 lost after second merge (loc=%+v ok=%v)", loc, ok)
	}
	// The deleted entry stays deleted.
	if _, _, ok := c.Lookup(block.Ref{Block: 3, Entry: 1}); ok {
		t.Error("deleted entry reappeared")
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Errorf("VerifyIntegrity: %v", err)
	}
}

func TestWrongDeletionRequestsHaveNoEffect(t *testing.T) {
	// §V: "wrong request of deletions can be included in the blockchain,
	// but these have no further effects."
	c, env := paperScenario(t)
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty1"))

	tests := []struct {
		name string
		req  *block.Entry
	}{
		{"foreign owner", env.del("BRAVO", block.Ref{Block: 1, Entry: 0})},
		{"missing target", env.del("ALPHA", block.Ref{Block: 42, Entry: 7})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			before := c.Stats().RejectedRequests
			if _, _, err := c.commit([]*block.Entry{tt.req}); err != nil {
				t.Fatalf("request not included: %v", err)
			}
			if c.IsMarked(block.Ref{Block: 1, Entry: 0}) {
				t.Error("invalid request created a mark")
			}
			if got := c.Stats().RejectedRequests; got != before+1 {
				t.Errorf("RejectedRequests = %d, want %d", got, before+1)
			}
		})
	}
	// The target entry must survive all merges.
	for i := 0; i < 8; i++ {
		mustSeal(t, c, env.data("CHARLIE", fmt.Sprintf("noise %d", i)))
	}
	if _, _, ok := c.Lookup(block.Ref{Block: 1, Entry: 0}); !ok {
		t.Error("entry was deleted despite only invalid requests")
	}
}

func TestAdminMayDeleteForeignEntries(t *testing.T) {
	env := newEnv(t, "ALPHA", "admin")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c, env.data("ALPHA", "private"))
	mustSeal(t, c, env.del("admin", block.Ref{Block: 1, Entry: 0}))
	if !c.IsMarked(block.Ref{Block: 1, Entry: 0}) {
		t.Error("admin deletion request rejected")
	}
}

func TestOwnerOnlyPolicyBlocksAdmin(t *testing.T) {
	env := newEnv(t, "ALPHA", "admin")
	cfg := defaultConfig(env)
	cfg.DeletionPolicy = deletion.PolicyOwnerOnly
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("ALPHA", "private"))
	mustSeal(t, c, env.del("admin", block.Ref{Block: 1, Entry: 0}))
	if c.IsMarked(block.Ref{Block: 1, Entry: 0}) {
		t.Error("owner-only policy allowed admin deletion")
	}
}

func TestShrinkMinimalEquationOne(t *testing.T) {
	// Eq. 1: lβnew = lβold − lω1, iterated until lβ ≤ lmax.
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxBlocks:      6,
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	merges := 0
	for i := 0; i < 30; i++ {
		blocks := mustSeal(t, c, env.data("alpha", fmt.Sprintf("e%d", i)))
		// Retention is enforced at summary creation; between summaries
		// the live length may overshoot by up to l-1 blocks.
		if got := c.Len(); got > 6+2 {
			t.Fatalf("live length %d exceeds lmax+l-1 after block %d", got, i)
		}
		if len(blocks) == 2 { // a summary block was just created
			if got := c.Len(); got > 6 {
				t.Fatalf("live length %d exceeds lmax 6 right after summary %d",
					got, blocks[1].Header.Number)
			}
			if c.Len() == 6 {
				merges++
			}
		}
		if c.Marker()%3 != 0 {
			t.Fatalf("marker %d not sequence-aligned", c.Marker())
		}
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Errorf("VerifyIntegrity: %v", err)
	}
	// ShrinkMinimal trims to exactly lmax live blocks at each merge.
	if merges == 0 {
		t.Error("no merge cycle trimmed the chain to lmax")
	}
}

func TestMinBlocksFloor(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxBlocks:      3,
		MinBlocks:      9, // floor dominates the (smaller) MaxBlocks limit
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	prevMarker := c.Marker()
	merged := false
	for i := 0; i < 12; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("e%d", i)))
		if m := c.Marker(); m != prevMarker {
			merged = true
			prevMarker = m
			// Right after any merge, the floor must hold even though
			// MaxBlocks alone would demand a much shorter chain.
			if got := c.Len(); got < 9 {
				t.Fatalf("Len = %d < MinBlocks 9 after merge to marker %d", got, m)
			}
		}
	}
	if !merged {
		t.Error("no merge happened; floor test exercised nothing")
	}
}

func TestMinTimeSpanFloor(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxBlocks:      3,
		MinTimeSpan:    1 << 40, // impossible to cover: never shrink
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	for i := 0; i < 10; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("e%d", i)))
	}
	if c.Marker() != 0 {
		t.Errorf("marker moved to %d although MinTimeSpan floor binds", c.Marker())
	}
}

func TestTemporaryEntriesExpireAtSummarization(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxSequences:   1,
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	// Temporary entry expiring at block 4 — it will be expired when the
	// merge at Σ5 happens; a durable entry in the same block survives.
	mustSeal(t, c, env.temp("alpha", "ephemeral", 0, 4), env.data("alpha", "durable"))
	for i := 0; i < 3; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("n%d", i)))
	}
	if _, _, ok := c.Lookup(block.Ref{Block: 1, Entry: 0}); ok {
		t.Error("expired temporary entry survived summarization (§IV-D.4)")
	}
	if _, _, ok := c.Lookup(block.Ref{Block: 1, Entry: 1}); !ok {
		t.Error("durable entry was lost")
	}
	if got := c.Stats().ExpiredEntries; got == 0 {
		t.Error("ExpiredEntries not counted")
	}
}

func TestTemporaryEntryByTimestamp(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxSequences:   1,
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	// Expire at logical time 2 (the clock ticks once per block).
	mustSeal(t, c, env.temp("alpha", "by-time", 2, 0))
	for i := 0; i < 3; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("n%d", i)))
	}
	if _, _, ok := c.Lookup(block.Ref{Block: 1, Entry: 0}); ok {
		t.Error("time-expired entry survived")
	}
}

func TestUnexpiredTemporaryEntryIsCarried(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength: 3,
		MaxSequences:   1,
		Shrink:         ShrinkMinimal,
		Registry:       env.registry,
		Clock:          simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	mustSeal(t, c, env.temp("alpha", "long-lived", 0, 10_000))
	for i := 0; i < 3; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("n%d", i)))
	}
	if _, loc, ok := c.Lookup(block.Ref{Block: 1, Entry: 0}); !ok || !loc.Carried {
		t.Errorf("unexpired temporary entry not carried (ok=%v loc=%+v)", ok, loc)
	}
}

func TestSemanticCohesionRequiresCoSignature(t *testing.T) {
	env := newEnv(t, "ALPHA", "BRAVO")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c, env.data("ALPHA", "base record"))
	base := block.Ref{Block: 1, Entry: 0}
	// BRAVO appends an entry depending on ALPHA's record.
	depEntry := block.NewData("BRAVO", []byte("follow-up")).WithDependsOn(base).Sign(env.keys["BRAVO"])
	mustSeal(t, c, depEntry)

	// ALPHA's plain deletion request must be rejected (live dependent).
	plain := env.del("ALPHA", base)
	if err := c.CheckDeletionRequest(plain); !errors.Is(err, deletion.ErrMissingCoSign) {
		t.Errorf("err = %v, want ErrMissingCoSign", err)
	}
	mustSeal(t, c, plain)
	if c.IsMarked(base) {
		t.Fatal("deletion approved despite live dependent without co-signature")
	}

	// With BRAVO's co-signature the request passes.
	cosigned := block.NewDeletion("ALPHA", base).AddCoSignature(env.keys["BRAVO"]).Sign(env.keys["ALPHA"])
	if err := c.CheckDeletionRequest(cosigned); err != nil {
		t.Fatalf("co-signed request rejected: %v", err)
	}
	mustSeal(t, c, cosigned)
	if !c.IsMarked(base) {
		t.Error("co-signed deletion not approved")
	}
}

func TestDependingOnMarkedEntryIsRejected(t *testing.T) {
	// §IV-D.3: subsequent transactions based on marked data are no longer
	// permitted.
	env := newEnv(t, "ALPHA")
	c := newChain(t, defaultConfig(env))
	mustSeal(t, c, env.data("ALPHA", "to be deleted"))
	target := block.Ref{Block: 1, Entry: 0}
	mustSeal(t, c, env.del("ALPHA", target))
	if !c.IsMarked(target) {
		t.Fatal("mark not created")
	}
	dep := block.NewData("ALPHA", []byte("late dependent")).WithDependsOn(target).Sign(env.keys["ALPHA"])
	if _, _, err := c.commit([]*block.Entry{dep}); !errors.Is(err, ErrDependsMarked) {
		t.Errorf("err = %v, want ErrDependsMarked", err)
	}
}

func TestDependencyOnMissingEntryRejected(t *testing.T) {
	env := newEnv(t, "ALPHA")
	c := newChain(t, defaultConfig(env))
	dep := block.NewData("ALPHA", []byte("orphan")).WithDependsOn(block.Ref{Block: 9, Entry: 9}).Sign(env.keys["ALPHA"])
	if _, _, err := c.commit([]*block.Entry{dep}); !errors.Is(err, ErrDependsMissing) {
		t.Errorf("err = %v, want ErrDependsMissing", err)
	}
}

func TestDeletionOfCarriedEntry(t *testing.T) {
	// "It may happen that an entry is located in a summary block. This
	// must be taken into account" (§IV-D).
	c, env := paperScenario(t)
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty1"))
	mustSeal(t, c, env.data("ALPHA", "login ALPHA tty2"), env.data("BRAVO", "login BRAVO tty1"))
	mustSeal(t, c, env.data("CHARLIE", "login CHARLIE tty1"))
	mustSeal(t, c, env.data("ALPHA", "filler"))
	mustSeal(t, c, env.data("ALPHA", "filler2"))
	// Entries 1/0, 3/0, 3/1, 4/0 now live inside summary block 8.
	target := block.Ref{Block: 3, Entry: 1}
	if _, loc, ok := c.Lookup(target); !ok || !loc.Carried {
		t.Fatalf("precondition: target not carried (ok=%v loc=%+v)", ok, loc)
	}
	mustSeal(t, c, env.del("BRAVO", target))
	if !c.IsMarked(target) {
		t.Fatal("deletion of carried entry not approved")
	}
	// Drive to the next merge: the carried entry must not be re-carried.
	for i := 0; i < 6; i++ {
		mustSeal(t, c, env.data("ALPHA", fmt.Sprintf("drive%d", i)))
	}
	if _, _, ok := c.Lookup(target); ok {
		t.Error("carried entry still alive after deletion + merge")
	}
	// Its siblings survive.
	if _, _, ok := c.Lookup(block.Ref{Block: 3, Entry: 0}); !ok {
		t.Error("sibling carried entry lost")
	}
}

func TestRedundancyReferenceFig9(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := Config{
		SequenceLength:      3,
		MaxSequences:        4,
		Shrink:              ShrinkMinimal,
		RedundancyReference: true,
		Registry:            env.registry,
		Clock:               simclock.NewLogical(0),
	}
	c := newChain(t, cfg)
	for i := 0; i < 12; i++ {
		mustSeal(t, c, env.data("alpha", fmt.Sprintf("e%d", i)))
	}
	// Find the newest summary block; it must reference a middle sequence.
	blocks := c.Blocks()
	var lastSummary *block.Block
	for _, b := range blocks {
		if b.IsSummary() {
			lastSummary = b
		}
	}
	if lastSummary == nil {
		t.Fatal("no summary block")
	}
	if lastSummary.SeqRef == nil {
		t.Fatal("summary lacks Fig. 9 redundancy reference")
	}
	ref := lastSummary.SeqRef
	if ref.LastBlock-ref.FirstBlock+1 != 3 {
		t.Errorf("reference spans %d blocks, want one sequence (3)", ref.LastBlock-ref.FirstBlock+1)
	}
	if ref.FirstBlock < c.Marker() {
		t.Errorf("reference points below the marker (%d < %d)", ref.FirstBlock, c.Marker())
	}
	if ref.Root.IsZero() {
		t.Error("reference root is zero")
	}
}

func TestEmptyBlockFiller(t *testing.T) {
	env := newEnv(t, "alpha")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 1
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("alpha", "lonely"))
	mustSeal(t, c, env.del("alpha", block.Ref{Block: 1, Entry: 0}))
	// No further transactions arrive; empty filler blocks still push the
	// deletion to physical execution (§IV-D.3).
	for i := 0; i < 6 && c.Stats().ActiveMarks > 0; i++ {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().ActiveMarks != 0 {
		t.Error("empty-block filler never executed the deletion")
	}
	if _, _, ok := c.Lookup(block.Ref{Block: 1, Entry: 0}); ok {
		t.Error("entry survived")
	}
}

func TestRenderMarksAndDeletionEntries(t *testing.T) {
	c, env := paperScenario(t)
	mustSeal(t, c, env.data("ALPHA", "visible"))
	mustSeal(t, c, env.del("ALPHA", block.Ref{Block: 1, Entry: 0}))
	out := c.RenderString(&RenderOptions{ShowMarks: true})
	if !strings.Contains(out, "DEL 1/0 K ALPHA") {
		t.Errorf("deletion entry not rendered:\n%s", out)
	}
	if !strings.Contains(out, "*marked*") {
		t.Errorf("mark annotation missing:\n%s", out)
	}
	// TTL annotation.
	mustSeal(t, c, env.temp("ALPHA", "short", 99, 0))
	out = c.RenderString(nil)
	if !strings.Contains(out, "T t99") {
		t.Errorf("TTL annotation missing:\n%s", out)
	}
}

// TestQuickChainInvariants drives random workloads and asserts the global
// invariants from DESIGN.md §5 after every step.
func TestQuickChainInvariants(t *testing.T) {
	env := newEnv(t, "u0", "u1", "u2")
	users := []string{"u0", "u1", "u2"}
	f := func(ops []uint16, maxSeq uint8, shrinkAll bool) bool {
		cfg := Config{
			SequenceLength:      3,
			MaxSequences:        int(maxSeq%4) + 1,
			RedundancyReference: true,
			Registry:            env.registry,
			Clock:               simclock.NewLogical(0),
		}
		if shrinkAll {
			cfg.Shrink = ShrinkAllButNewest
		} else {
			cfg.Shrink = ShrinkMinimal
		}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		if len(ops) > 40 {
			ops = ops[:40]
		}
		var livingRefs []block.Ref
		for _, op := range ops {
			user := users[int(op)%len(users)]
			switch op % 4 {
			case 0, 1: // data entry
				blocks, _, err := c.commit([]*block.Entry{env.data(user, fmt.Sprintf("p%d", op))})
				if err != nil {
					return false
				}
				livingRefs = append(livingRefs, block.Ref{Block: blocks[0].Header.Number, Entry: 0})
			case 2: // temporary entry
				if _, _, err := c.commit([]*block.Entry{env.temp(user, "tmp", uint64(op%16), 0)}); err != nil {
					return false
				}
			case 3: // deletion attempt on a random earlier ref
				if len(livingRefs) == 0 {
					continue
				}
				target := livingRefs[int(op)%len(livingRefs)]
				owner := ""
				if e, _, ok := c.Lookup(target); ok {
					owner = e.Owner
				} else {
					owner = user
				}
				if _, _, err := c.commit([]*block.Entry{env.del(owner, target)}); err != nil {
					return false
				}
			}
			// Invariants.
			if err := c.VerifyIntegrity(); err != nil {
				t.Logf("integrity: %v", err)
				return false
			}
			if c.Marker()%3 != 0 {
				return false
			}
			if cfg.MaxSequences > 0 {
				maxLive := (cfg.MaxSequences + 1) * 3 // current partial + allowed complete
				if c.Len() > maxLive {
					t.Logf("live %d > bound %d", c.Len(), maxLive)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAutoCohesionPolicyThroughConfig(t *testing.T) {
	// §IV-D.2's automatic approach: a high-clearance requester deletes an
	// entry with a lower-clearance dependent without co-signatures.
	env := newEnv(t, "ALPHA", "BRAVO")
	cfg := defaultConfig(env)
	cfg.AutoCohesion = deletion.NewAutoPolicy(map[string]int{"ALPHA": 2, "BRAVO": 1})
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("ALPHA", "base"))
	base := block.Ref{Block: 1, Entry: 0}
	dep := block.NewData("BRAVO", []byte("downstream")).WithDependsOn(base).Sign(env.keys["BRAVO"])
	mustSeal(t, c, dep)

	plain := env.del("ALPHA", base)
	if err := c.CheckDeletionRequest(plain); err != nil {
		t.Fatalf("auto policy did not clear dominated dependent: %v", err)
	}
	mustSeal(t, c, plain)
	if !c.IsMarked(base) {
		t.Error("auto-approved deletion not marked")
	}
}

func TestCorrectionDeleteAndResubmit(t *testing.T) {
	// §V-A "Corrections: change information, which maybe submitted
	// wrongly" — a deletion request and the corrected entry land in the
	// same block; the old value is forgotten, the correction persists.
	env := newEnv(t, "ALPHA")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 1
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("ALPHA", "odometer 95000 km")) // typo: should be 59000
	wrong := block.Ref{Block: 1, Entry: 0}

	blocks := mustSeal(t, c,
		env.del("ALPHA", wrong),
		env.data("ALPHA", "odometer 59000 km"),
	)
	corrected := block.Ref{Block: blocks[0].Header.Number, Entry: 1}
	if !c.IsMarked(wrong) {
		t.Fatal("correction did not mark the wrong entry")
	}
	for c.IsMarked(wrong) {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Lookup(wrong); ok {
		t.Error("wrong value still on chain")
	}
	e, _, ok := c.Lookup(corrected)
	if !ok || string(e.Payload) != "odometer 59000 km" {
		t.Errorf("correction lost: ok=%v payload=%q", ok, e.Payload)
	}
}

func TestRecoveryOfOrphanedEntries(t *testing.T) {
	// §V-A "Recovery": the system (admin/quorum role) can clean up
	// entries whose keys are lost, "not for a single user, but for the
	// entire blockchain system" — modelled as role-based deletion of a
	// stale participant's records.
	env := newEnv(t, "ALPHA", "lostuser", "admin")
	cfg := defaultConfig(env)
	cfg.MaxSequences = 1
	cfg.Shrink = ShrinkMinimal
	c := newChain(t, cfg)
	mustSeal(t, c, env.data("lostuser", "coins nobody can move"))
	stale := block.Ref{Block: 1, Entry: 0}
	activeBlocks := mustSeal(t, c, env.data("ALPHA", "active record"))
	active := block.Ref{Block: activeBlocks[0].Header.Number, Entry: 0}

	// lostuser's key is gone; the quorum-backed admin reclaims the entry.
	// (The merge triggered by this very commit may execute the mark
	// immediately, so "marked" and "already gone" are both success.)
	mustSeal(t, c, env.del("admin", stale))
	if _, _, alive := c.Lookup(stale); alive && !c.IsMarked(stale) {
		t.Fatal("admin recovery request rejected")
	}
	for c.IsMarked(stale) {
		if _, err := c.AppendEmpty(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Lookup(stale); ok {
		t.Error("stale entry still present after recovery")
	}
	if _, _, ok := c.Lookup(active); !ok {
		t.Error("active record lost during recovery")
	}
}
