package chain

import (
	"context"
	"testing"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/mempool"
)

// TestReceiptCarriesMarkOutcome pins that a sealed deletion request's
// receipt reports whether the mark was approved or silently rejected —
// no IsMarked poll required — and that data entries report MarkNone.
func TestReceiptCarriesMarkOutcome(t *testing.T) {
	env := newEnv(t, "ALPHA", "BRAVO")
	c := newChain(t, defaultConfig(env))
	defer c.Close()
	ctx := context.Background()

	sealed, err := c.SubmitWait(ctx, env.data("ALPHA", "payload"))
	if err != nil {
		t.Fatal(err)
	}
	if sealed[0].Mark != mempool.MarkNone {
		t.Errorf("data entry Mark = %v, want none", sealed[0].Mark)
	}
	target := sealed[0].Ref

	// BRAVO (plain user, not the owner, no co-signature) is included
	// on-chain but has no effect (§V) — the receipt says so directly.
	rejected, err := c.SubmitWait(ctx, env.del("BRAVO", target))
	if err != nil {
		t.Fatal(err)
	}
	if rejected[0].Mark != mempool.MarkRejected {
		t.Errorf("foreign deletion Mark = %v, want rejected", rejected[0].Mark)
	}
	if c.IsMarked(target) {
		t.Fatal("rejected request created a mark")
	}

	// The owner's request is approved, and the receipt agrees with the
	// chain's mark set.
	approved, err := c.SubmitWait(ctx, env.del("ALPHA", target))
	if err != nil {
		t.Fatal(err)
	}
	if approved[0].Mark != mempool.MarkApproved {
		t.Errorf("owner deletion Mark = %v, want approved", approved[0].Mark)
	}
	if !c.IsMarked(target) {
		t.Fatal("approved request left no mark")
	}

	// A request for a target that never existed is also rejected.
	ghost, err := c.SubmitWait(ctx, env.del("ALPHA", block.Ref{Block: 999, Entry: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if ghost[0].Mark != mempool.MarkRejected {
		t.Errorf("ghost-target deletion Mark = %v, want rejected", ghost[0].Mark)
	}

	// Mixed batch in one Submit call: outcomes stay aligned per entry.
	dataE := env.data("ALPHA", "second")
	sealedBatch, err := c.SubmitWait(ctx, dataE, env.del("ALPHA", block.Ref{Block: 998, Entry: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if sealedBatch[0].Mark != mempool.MarkNone || sealedBatch[1].Mark != mempool.MarkRejected {
		t.Errorf("mixed batch outcomes = %v/%v, want none/rejected",
			sealedBatch[0].Mark, sealedBatch[1].Mark)
	}
}
