package chain

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/identity"
	"github.com/seldel/seldel/internal/simclock"
	"github.com/seldel/seldel/internal/verify"
)

// TestParallelVerifier16Producers pushes 16 concurrent producers through
// the submission pipeline with a dedicated multi-worker verification
// pool while readers hammer Stats, PipelineStats, and the summary
// planner — the -race exercise for the lock-free verification path, the
// carried-entry ledger, and the warm/flush cache interplay. Run with
// `go test -race ./internal/chain`.
func TestParallelVerifier16Producers(t *testing.T) {
	reg := identity.NewRegistry()
	keys := make([]*identity.KeyPair, 16)
	for i := range keys {
		keys[i] = identity.Deterministic(fmt.Sprintf("producer-%02d", i), "race-test")
		if err := reg.RegisterKey(keys[i], identity.RoleUser); err != nil {
			t.Fatal(err)
		}
	}
	pool := verify.New(verify.Options{Workers: 4, CacheSize: 1 << 10})
	defer pool.Close()
	c, err := New(Config{
		SequenceLength: 4,
		MaxSequences:   3,
		Registry:       reg,
		Clock:          simclock.NewLogical(0),
		Verifier:       pool,
		MaxBatch:       64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const perProducer = 50
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshots and summary planning must be safe against the
	// parallel write path. They poll instead of spinning so the write
	// path keeps the CPU on small machines, and run on their own
	// WaitGroup (they only exit once the producers are done).
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			tick := time.NewTicker(500 * time.Microsecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				_ = c.Stats()
				_ = c.PipelineStats()
				_, _ = c.BuildSummary() // errors off-slot; must never race
				for range c.EntriesSeq() {
					break
				}
			}
		}()
	}

	errCh := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kp := keys[w]
			var lastRef block.Ref
			for i := 0; i < perProducer; i++ {
				var e *block.Entry
				switch {
				case i%7 == 6 && lastRef != (block.Ref{}):
					e = block.NewDeletion(kp.Name(), lastRef).Sign(kp)
				case i%3 == 1:
					e = block.NewTemporary(kp.Name(), []byte(fmt.Sprintf("tmp-%d-%d", w, i)), 0, 1<<40).Sign(kp)
				default:
					e = block.NewData(kp.Name(), []byte(fmt.Sprintf("data-%d-%d", w, i))).Sign(kp)
				}
				sealed, err := c.SubmitWait(ctx, e)
				if err != nil {
					errCh <- fmt.Errorf("producer %d entry %d: %w", w, i, err)
					return
				}
				if e.Kind == block.KindData {
					lastRef = sealed[0].Ref
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := c.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The ledger-backed planner and the naive reference must agree on
	// the final state reached through the fully concurrent path. Advance
	// to the next summary slot with bare appends (a pipelined seal would append
	// the due summary itself and never rest on the slot).
	for !c.NextIsSummary() {
		b, err := c.BuildNormal(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	inc, ref, _, _ := c.buildSummaryBothForTest()
	if inc.Hash() != ref.Hash() {
		t.Fatalf("planners disagree after concurrent run: %s vs %s", inc.Hash(), ref.Hash())
	}
	live, carried := c.recountStatsForTest()
	s := c.Stats()
	if s.LiveEntries != live || s.CarriedEntries != carried {
		t.Fatalf("stats diverged: incremental live=%d carried=%d, recount live=%d carried=%d",
			s.LiveEntries, s.CarriedEntries, live, carried)
	}
	ps := c.PipelineStats()
	if ps.QueueCap == 0 {
		t.Fatal("PipelineStats missing intake queue capacity")
	}
	if ps.Verify.Workers != 4 {
		t.Fatalf("PipelineStats verify workers = %d, want 4", ps.Verify.Workers)
	}
	if ps.Verify.Verified == 0 {
		t.Fatal("verify pool performed no verifications")
	}
	if ps.Verify.CacheHits == 0 {
		t.Fatal("warm pre-verification produced no cache hits")
	}
}
