package chain

import (
	"fmt"
	"iter"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/deletion"
)

// Restore rebuilds a chain from persisted live blocks, e.g. after an
// anchor node restart. The blocks must be the exact live suffix of a
// selective-deletion chain: consecutive numbers starting at the marker,
// hash-linked, with summary blocks in their slots, the first block being
// the current Genesis marker (§IV-C: the marker block "is a trusted
// anchor for the left blockchain part already approved by the anchor
// nodes"). It is RestoreStream over an in-memory slice; stores feed
// RestoreStream directly so large persisted chains never materialize
// twice.
func Restore(cfg Config, blocks []*block.Block) (*Chain, error) {
	return RestoreStream(cfg, func(yield func(*block.Block, error) bool) {
		for _, b := range blocks {
			if !yield(b, nil) {
				return
			}
		}
	})
}

// restoreLookahead is the restore pipeline's window: how many streamed
// blocks may sit decoded-and-verified ahead of the registration stage.
// Small on purpose — the window bounds extra memory to a handful of
// blocks while still overlapping the CPU-heavy verification of block
// N+1 with the state registration of block N.
const restoreLookahead = 4

// restoreVerified is one block that has passed the stream's stateless
// stage (shape check, pooled signature verification, deletion
// co-signature prechecks) and awaits ordered registration.
type restoreVerified struct {
	b      *block.Block
	checks cosigChecks
	err    error
}

// RestoreStream rebuilds a chain from a stream of persisted live blocks
// (e.g. Store.Stream), bounding memory to the live chain itself plus a
// small look-ahead window: a pipeline stage decodes each block and
// verifies its signatures — including entries carried inside summary
// blocks and the co-signatures of deletion requests — through the
// parallel verification pool, while the registration stage applies the
// order-dependent checks (hash link, slot kind) and chain state (index,
// dependency edges, marks, carried-entry ledger) of the block before
// it. Verification is chain-state independent, so overlapping block
// N+1's verification with block N's registration is sound; a tampered
// persisted chain (or a malicious status-quo offer) is still rejected
// at the offending block instead of poisoning later validations.
//
// Deletion marks are reconstructed by re-processing the deletion entries
// present in the live blocks; marks whose targets were already physically
// forgotten are (correctly) not recreated. Lifetime statistics counters
// (CutBlocks, ForgottenEntries, …) restart from zero — they describe the
// current process, not the chain's full history.
func RestoreStream(cfg Config, blocks iter.Seq2[*block.Block, error]) (*Chain, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Chain{
		cfg:         full,
		auth:        newAuthorizer(full),
		index:       make(map[block.Ref]Location),
		dependents:  make(map[block.Ref][]deletion.Dependent),
		marks:       make(map[block.Ref]Mark),
		ledger:      newCarriedLedger(),
		tombIndex:   make(map[block.Ref]int),
		nextTombSeq: 1,
	}
	// Producer: stream, shape-check, and pool-verify up to
	// restoreLookahead blocks ahead of registration. It stops at the
	// first error it produces and unblocks promptly when the consumer
	// abandons the restore.
	ch := make(chan restoreVerified, restoreLookahead)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(ch)
		for b, err := range blocks {
			v := restoreVerified{b: b, err: err}
			if v.err != nil {
				v.err = fmt.Errorf("chain: restore: %w", v.err)
			} else {
				v.checks, v.err = c.verifyRestoredBlock(b)
			}
			select {
			case ch <- v:
			case <-stop:
				return
			}
			if v.err != nil {
				return
			}
		}
	}()

	var prev *block.Block
	n := uint64(0)
	for v := range ch {
		if v.err != nil {
			return nil, v.err
		}
		if prev == nil {
			c.marker = v.b.Header.Number
			if c.marker%uint64(full.SequenceLength) != 0 {
				return nil, fmt.Errorf("%w: first block %d is not sequence-aligned", ErrConfig, c.marker)
			}
		}
		if err := c.registerRestoredBlock(v.b, prev, v.checks); err != nil {
			return nil, err
		}
		prev = v.b
		n++
	}
	if prev == nil {
		return nil, fmt.Errorf("%w: no blocks to restore", ErrConfig)
	}
	// Make sure a restored clock never reissues timestamps from the past.
	if setter, ok := full.Clock.(interface{ Set(uint64) }); ok {
		setter.Set(c.head().Header.Time)
	}
	c.stats.AppendedBlocks = n
	return c, nil
}

// verifyRestoredBlock runs the chain-state-independent half of a
// streamed block's restore: structural shape, pooled signature
// verification, and the deletion co-signature prechecks. It only reads
// the chain's immutable configuration, so the restore pipeline may run
// it for block N+1 while block N is still being registered.
func (c *Chain) verifyRestoredBlock(b *block.Block) (cosigChecks, error) {
	if err := b.CheckShape(); err != nil {
		return nil, fmt.Errorf("chain: restore block %d: %w", b.Header.Number, err)
	}
	if err := c.cfg.Verifier.Blocks(c.cfg.Registry, []*block.Block{b}); err != nil {
		return nil, fmt.Errorf("chain: restore: %w", err)
	}
	if b.IsSummary() {
		return nil, nil
	}
	return c.precheckDeletions(b.Entries), nil
}

// registerRestoredBlock applies the order-dependent checks and state
// registration of one pipeline-verified block. The chain is not yet
// shared, so no lock is held.
func (c *Chain) registerRestoredBlock(b *block.Block, prev *block.Block, checks cosigChecks) error {
	if prev != nil {
		wantNum := prev.Header.Number + 1
		if b.Header.Number != wantNum {
			return fmt.Errorf("chain: restore: block %d out of order (want %d)", b.Header.Number, wantNum)
		}
		if b.Header.PrevHash != prev.Hash() {
			return fmt.Errorf("chain: restore: broken hash link at block %d", b.Header.Number)
		}
	}
	if b.IsSummary() != c.isSummarySlot(b.Header.Number) {
		return fmt.Errorf("chain: restore: block %d kind %s does not match slot", b.Header.Number, b.Header.Kind)
	}
	if !b.IsSummary() {
		c.pushBlock(b)
		c.processNormal(b, checks)
		return nil
	}
	c.pushBlock(b)
	// Re-register the dependency edges of carried entries. A live
	// chain keeps these edges when entries migrate into a summary;
	// dropping them here would let a replayed deletion request slip
	// past a cohesion rejection it historically received (§IV-D.2).
	for _, ce := range b.Carried {
		ref := ce.Ref()
		for _, dep := range ce.Entry.DependsOn {
			if _, ok := c.index[dep]; ok {
				c.dependents[dep] = append(c.dependents[dep], deletion.Dependent{Ref: ref, Owner: ce.Entry.Owner})
			}
		}
	}
	return nil
}
