package chain

import (
	"fmt"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/deletion"
)

// Restore rebuilds a chain from persisted live blocks, e.g. after an
// anchor node restart. The blocks must be the exact live suffix of a
// selective-deletion chain: consecutive numbers starting at the marker,
// hash-linked, with summary blocks in their slots, the first block being
// the current Genesis marker (§IV-C: the marker block "is a trusted
// anchor for the left blockchain part already approved by the anchor
// nodes").
//
// Deletion marks are reconstructed by re-processing the deletion entries
// present in the live blocks; marks whose targets were already physically
// forgotten are (correctly) not recreated. Lifetime statistics counters
// (CutBlocks, ForgottenEntries, …) restart from zero — they describe the
// current process, not the chain's full history.
//
// Every entry signature — including entries carried inside summary
// blocks — is re-verified through the parallel verification pool before
// any block is trusted, so a tampered persisted chain (or a malicious
// status-quo offer) is rejected at restore time instead of poisoning
// later validations.
func Restore(cfg Config, blocks []*block.Block) (*Chain, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks to restore", ErrConfig)
	}
	c := &Chain{
		cfg:        full,
		auth:       newAuthorizer(full),
		index:      make(map[block.Ref]Location),
		dependents: make(map[block.Ref][]deletion.Dependent),
		marks:      make(map[block.Ref]Mark),
		ledger:     newCarriedLedger(),
		marker:     blocks[0].Header.Number,
	}
	if c.marker%uint64(full.SequenceLength) != 0 {
		return nil, fmt.Errorf("%w: first block %d is not sequence-aligned", ErrConfig, c.marker)
	}
	// Structural pass first (cheap, sequential), then all signatures in
	// one concurrent sweep, then the stateful rebuild.
	for i, b := range blocks {
		if err := b.CheckShape(); err != nil {
			return nil, fmt.Errorf("chain: restore block %d: %w", b.Header.Number, err)
		}
		wantNum := c.marker + uint64(i)
		if b.Header.Number != wantNum {
			return nil, fmt.Errorf("chain: restore: block %d out of order (want %d)", b.Header.Number, wantNum)
		}
		if b.IsSummary() != c.isSummarySlot(b.Header.Number) {
			return nil, fmt.Errorf("chain: restore: block %d kind %s does not match slot", b.Header.Number, b.Header.Kind)
		}
		if i > 0 && b.Header.PrevHash != blocks[i-1].Hash() {
			return nil, fmt.Errorf("chain: restore: broken hash link at block %d", b.Header.Number)
		}
	}
	if err := full.Verifier.Blocks(full.Registry, blocks); err != nil {
		return nil, fmt.Errorf("chain: restore: %w", err)
	}
	for _, b := range blocks {
		c.pushBlock(b)
		if !b.IsSummary() {
			c.processNormal(b)
			continue
		}
		// Re-register the dependency edges of carried entries. A live
		// chain keeps these edges when entries migrate into a summary;
		// dropping them here would let a replayed deletion request slip
		// past a cohesion rejection it historically received (§IV-D.2).
		for _, ce := range b.Carried {
			ref := ce.Ref()
			for _, dep := range ce.Entry.DependsOn {
				if _, ok := c.index[dep]; ok {
					c.dependents[dep] = append(c.dependents[dep], deletion.Dependent{Ref: ref, Owner: ce.Entry.Owner})
				}
			}
		}
	}
	// Make sure a restored clock never reissues timestamps from the past.
	if setter, ok := full.Clock.(interface{ Set(uint64) }); ok {
		setter.Set(c.head().Header.Time)
	}
	c.stats.AppendedBlocks = uint64(len(blocks))
	return c, nil
}
