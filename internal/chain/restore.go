package chain

import (
	"fmt"
	"iter"

	"github.com/seldel/seldel/internal/block"
	"github.com/seldel/seldel/internal/deletion"
)

// Restore rebuilds a chain from persisted live blocks, e.g. after an
// anchor node restart. The blocks must be the exact live suffix of a
// selective-deletion chain: consecutive numbers starting at the marker,
// hash-linked, with summary blocks in their slots, the first block being
// the current Genesis marker (§IV-C: the marker block "is a trusted
// anchor for the left blockchain part already approved by the anchor
// nodes"). It is RestoreStream over an in-memory slice; stores feed
// RestoreStream directly so large persisted chains never materialize
// twice.
func Restore(cfg Config, blocks []*block.Block) (*Chain, error) {
	return RestoreStream(cfg, func(yield func(*block.Block, error) bool) {
		for _, b := range blocks {
			if !yield(b, nil) {
				return
			}
		}
	})
}

// RestoreStream rebuilds a chain from a stream of persisted live blocks
// (e.g. Store.Stream), bounding memory to the live chain itself: each
// block is structurally checked, its signatures — including entries
// carried inside summary blocks and the co-signatures of deletion
// requests — are verified through the parallel verification pool, and
// its state (index, dependency edges, marks, carried-entry ledger) is
// registered, all before the next block is decoded. A tampered
// persisted chain (or a malicious status-quo offer) is therefore
// rejected at the offending block instead of poisoning later
// validations.
//
// Deletion marks are reconstructed by re-processing the deletion entries
// present in the live blocks; marks whose targets were already physically
// forgotten are (correctly) not recreated. Lifetime statistics counters
// (CutBlocks, ForgottenEntries, …) restart from zero — they describe the
// current process, not the chain's full history.
func RestoreStream(cfg Config, blocks iter.Seq2[*block.Block, error]) (*Chain, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Chain{
		cfg:        full,
		auth:       newAuthorizer(full),
		index:      make(map[block.Ref]Location),
		dependents: make(map[block.Ref][]deletion.Dependent),
		marks:      make(map[block.Ref]Mark),
		ledger:     newCarriedLedger(),
	}
	var prev *block.Block
	n := uint64(0)
	for b, err := range blocks {
		if err != nil {
			return nil, fmt.Errorf("chain: restore: %w", err)
		}
		if prev == nil {
			c.marker = b.Header.Number
			if c.marker%uint64(full.SequenceLength) != 0 {
				return nil, fmt.Errorf("%w: first block %d is not sequence-aligned", ErrConfig, c.marker)
			}
		}
		if err := c.restoreBlock(b, prev); err != nil {
			return nil, err
		}
		prev = b
		n++
	}
	if prev == nil {
		return nil, fmt.Errorf("%w: no blocks to restore", ErrConfig)
	}
	// Make sure a restored clock never reissues timestamps from the past.
	if setter, ok := full.Clock.(interface{ Set(uint64) }); ok {
		setter.Set(c.head().Header.Time)
	}
	c.stats.AppendedBlocks = n
	return c, nil
}

// restoreBlock checks and registers one streamed block. The chain is
// not yet shared, so no lock is held — but signature work still routes
// through the pool (parallel within the block, warm cache for later
// gossip re-checks), and deletion requests consume pooled co-signature
// prechecks exactly like the live append path.
func (c *Chain) restoreBlock(b *block.Block, prev *block.Block) error {
	if err := b.CheckShape(); err != nil {
		return fmt.Errorf("chain: restore block %d: %w", b.Header.Number, err)
	}
	if prev != nil {
		wantNum := prev.Header.Number + 1
		if b.Header.Number != wantNum {
			return fmt.Errorf("chain: restore: block %d out of order (want %d)", b.Header.Number, wantNum)
		}
		if b.Header.PrevHash != prev.Hash() {
			return fmt.Errorf("chain: restore: broken hash link at block %d", b.Header.Number)
		}
	}
	if b.IsSummary() != c.isSummarySlot(b.Header.Number) {
		return fmt.Errorf("chain: restore: block %d kind %s does not match slot", b.Header.Number, b.Header.Kind)
	}
	if err := c.cfg.Verifier.Blocks(c.cfg.Registry, []*block.Block{b}); err != nil {
		return fmt.Errorf("chain: restore: %w", err)
	}
	if !b.IsSummary() {
		checks := c.precheckDeletions(b.Entries)
		c.pushBlock(b)
		c.processNormal(b, checks)
		return nil
	}
	c.pushBlock(b)
	// Re-register the dependency edges of carried entries. A live
	// chain keeps these edges when entries migrate into a summary;
	// dropping them here would let a replayed deletion request slip
	// past a cohesion rejection it historically received (§IV-D.2).
	for _, ce := range b.Carried {
		ref := ce.Ref()
		for _, dep := range ce.Entry.DependsOn {
			if _, ok := c.index[dep]; ok {
				c.dependents[dep] = append(c.dependents[dep], deletion.Dependent{Ref: ref, Owner: ce.Entry.Owner})
			}
		}
	}
	return nil
}
