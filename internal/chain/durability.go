package chain

import (
	"fmt"
	"sync"
	"time"
)

// DurabilityMode selects when submission receipts resolve relative to
// the store's durability point.
type DurabilityMode uint8

const (
	// DurabilitySeal is the default contract: a receipt resolves as
	// soon as its block is sealed, appended, and handed to the store
	// listeners. Durability then follows the store's own policy (fsync
	// on segment roll and Close, or per block with SyncEvery) — a crash
	// can lose the unsynced tail even though its receipts resolved.
	DurabilitySeal DurabilityMode = iota
	// DurabilityGroup is the group-commit contract: receipts resolve
	// only after Durability.Sync confirmed their blocks on stable
	// storage. Sealing keeps running ahead; a single committer
	// goroutine drains every batch sealed since the previous sync and
	// makes them durable with ONE fsync, so under load many blocks
	// share each sync while an idle chain still syncs per batch.
	DurabilityGroup
)

// Valid reports whether m is a defined mode.
func (m DurabilityMode) Valid() bool {
	return m == DurabilitySeal || m == DurabilityGroup
}

// Durability configures the receipt-durability contract of the
// submission pipeline (Config.Durability).
type Durability struct {
	// Mode selects the contract; zero is DurabilitySeal.
	Mode DurabilityMode
	// Sync forces everything the store buffered to stable storage. It
	// is required for DurabilityGroup (the façade wires the attached
	// store's Sync) and is called from the committer goroutine only,
	// outside the chain lock.
	Sync func() error
	// GroupWindow bounds how long the committer waits after the first
	// pending batch before issuing the group sync, accumulating more
	// sealed blocks into the same fsync. It is an upper bound on the
	// extra receipt latency group commit adds. Zero syncs as soon as
	// the committer is free (pure self-clocking: batching then comes
	// only from fsync latency itself, which on a slow disk is plenty;
	// on a fast device each block tends to get its own sync). Set a
	// few multiples of the expected sealing cadence to trade bounded
	// latency for fewer fsyncs.
	GroupWindow time.Duration
}

// groupCommitter is the single goroutine that turns "sealed" into
// "durable" under DurabilityGroup. Batches hand it their receipt-
// resolution closure; it drains everything queued since the last sync,
// issues one Sync, then runs the closures (with the sync error, if
// any, so receipts fail rather than claim durability). The batching is
// self-clocking: while one fsync is in flight, later batches queue up
// and ride the next one.
type groupCommitter struct {
	sync   func() error
	window time.Duration
	ch     chan func(error)

	quit    chan struct{}
	done    chan struct{}
	closeMu sync.Mutex
	closed  bool
}

func newGroupCommitter(sync func() error, window time.Duration) *groupCommitter {
	g := &groupCommitter{
		sync:   sync,
		window: window,
		ch:     make(chan func(error), 1024),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go g.run()
	return g
}

// enqueue schedules one batch's resolution for the next sync. Called
// by the pipeline flusher only, which the chain guarantees has exited
// before Close is allowed to run.
func (g *groupCommitter) enqueue(resolve func(error)) {
	g.ch <- resolve
}

func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		select {
		case f := <-g.ch:
			g.commit(f)
		case <-g.quit:
			// Drain: the flusher has stopped enqueueing (the batcher
			// closes strictly before the committer), so whatever is
			// queued now is everything that will ever arrive.
			for {
				select {
				case f := <-g.ch:
					g.commit(f)
				default:
					return
				}
			}
		}
	}
}

// commit gathers every resolution queued so far — waiting out the
// group window, if one is configured, so later seals can join — makes
// their blocks durable with one sync, and releases them.
func (g *groupCommitter) commit(first func(error)) {
	batch := []func(error){first}
	if g.window > 0 {
		timer := time.NewTimer(g.window)
	window:
		for {
			select {
			case f := <-g.ch:
				batch = append(batch, f)
			case <-timer.C:
				break window
			case <-g.quit:
				// Shutdown cancels the wait, not the sync: whatever has
				// been collected commits now, the run loop drains the rest.
				timer.Stop()
				break window
			}
		}
	}
drain:
	for {
		select {
		case f := <-g.ch:
			batch = append(batch, f)
		default:
			break drain
		}
	}
	err := g.sync()
	for _, f := range batch {
		f(err)
	}
}

// Close drains pending resolutions (issuing their final sync) and
// stops the committer. Idempotent; concurrent calls block until the
// drain completes.
func (g *groupCommitter) Close() error {
	g.closeMu.Lock()
	if !g.closed {
		g.closed = true
		close(g.quit)
	}
	g.closeMu.Unlock()
	<-g.done
	return nil
}

// validate checks the durability configuration at chain construction.
func (d Durability) validate() error {
	if !d.Mode.Valid() {
		return fmt.Errorf("%w: invalid durability mode %d", ErrConfig, d.Mode)
	}
	if d.Mode == DurabilityGroup && d.Sync == nil {
		return fmt.Errorf("%w: DurabilityGroup requires Durability.Sync (attach a durable store)", ErrConfig)
	}
	if d.GroupWindow < 0 {
		return fmt.Errorf("%w: negative GroupWindow", ErrConfig)
	}
	return nil
}
